// Scenarios: walk one what-if end to end through the declarative DSL.
//
// The question: ESCAT takes a rolling 16-node I/O outage mid-run — does
// failover-with-replication actually buy anything over naked
// checkpoint/restart? Instead of two bespoke flag incantations, the what-if
// is two scenario documents that differ in one feature block, each carrying
// its own assertions. The DSL turns the comparison into a pair of replayable
// regression tests: the protected run must stay "ok" (the outage is absorbed
// invisibly), the unprotected one must stay exactly "degraded" (one attempt
// dies, the checkpoint restart saves the run).
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

const protected = `
name: protected
description: failover + replication absorb the outage
seed: 7
workload:
  app: escat
chaos:
  cascades:
    - kind: ionode-outage
      at_s: 4.2
      nodes: 16
      first_node: 0
      duration_s: 1.2
assertions:
  expected: ok
  max_failed_attempts: 0
`

const unprotected = `
name: unprotected
description: same outage, failover off - checkpointing carries the run
seed: 7
workload:
  app: escat
features:
  failover:
    enabled: false
chaos:
  cascades:
    - kind: ionode-outage
      at_s: 4.2
      nodes: 16
      first_node: 0
      duration_s: 1.2
assertions:
  expected: degraded
  max_failed_attempts: 2
`

func main() {
	log.SetFlags(0)

	for _, doc := range []string{protected, unprotected} {
		sc, err := iochar.ParseScenario([]byte(doc), "")
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.Execute()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s: %s ===\n", sc.Name, sc.Description)
		fmt.Printf("completed in %d attempt(s), wall %.2f s\n",
			len(res.Report.Attempts), res.Report.Wall.Seconds())
		for _, inc := range res.Report.Incidents {
			fmt.Printf("  incident %8.3fs..%.3fs node %2d %s\n",
				inc.Start.Seconds(), inc.End.Seconds(), inc.Node, inc.Kind)
		}
		fmt.Print(iochar.RenderScenarioChecks(sc.Name, res.M, res.Checks))
		fmt.Println()
	}

	fmt.Println("The same pair ships as scenarios/outage-recovery.yaml and")
	fmt.Println("scenarios/unprotected-outage.yaml; CI replays them with")
	fmt.Println("  stress scenario run scenarios/")
}
