// Renderflyby reproduces the paper's §6 RENDER scenario: a Mars "virtual
// flyby" where a gateway node streams a multi-hundred-megabyte terrain data
// set in with prefetched asynchronous reads and then emits one ~1 MB frame
// per rendered view. The example reports the two §6.2 headline numbers —
// initialization read throughput and frame cadence — and sketches the
// frame-rate implications of directing output to a HiPPi frame buffer
// instead of the file system.
package main

import (
	"fmt"
	"log"

	iochar "repro"
	"repro/internal/analysis"
	"repro/internal/apps/render"
	"repro/internal/iotrace"
)

func main() {
	log.SetFlags(0)

	// A mid-sized flyby: production terrain layout, 20 frames.
	cfg := render.DefaultConfig()
	cfg.Frames = 20
	study := iochar.PaperStudy(iochar.RENDER)
	study.RENDERConfig = &cfg

	report, err := iochar.Run(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flyby complete: %.0f simulated seconds, %s of terrain data, %d frames\n\n",
		report.Wall.Seconds(),
		analysis.HumanBytes(report.Summary.Row("AsynchRead").Volume),
		cfg.Frames)

	fmt.Printf("initialization read throughput: %.1f MB/s (paper: ~9.5 MB/s)\n",
		report.InitReadThroughput()/1e6)

	// Frame cadence from the write timeline.
	renderEvents := analysis.FilterPhase(report.Events, render.PhaseRender)
	var frames []analysis.Point
	for _, pt := range analysis.WriteTimeline(renderEvents) {
		if pt.Y >= 256*1024 {
			frames = append(frames, pt)
		}
	}
	if len(frames) > 1 {
		span := (frames[len(frames)-1].T - frames[0].T).Seconds()
		perFrame := span / float64(len(frames)-1)
		fmt.Printf("frame cadence: %.2f s/frame (%.2f frames/s; paper: several seconds per frame)\n",
			perFrame, 1/perFrame)

		// §6.2: production output goes to a HiPPi frame buffer, removing
		// the per-frame file create/write/close. Estimate the cadence
		// without that file-system time.
		var ioPerFrame float64
		for _, e := range renderEvents {
			switch e.Op {
			case iotrace.OpWrite, iotrace.OpOpen, iotrace.OpClose:
				ioPerFrame += e.Duration().Seconds()
			}
		}
		ioPerFrame /= float64(len(frames))
		fmt.Printf("with HiPPi output (no per-frame file I/O): ~%.2f s/frame (%.2f frames/s; target: 10)\n",
			perFrame-ioPerFrame, 1/(perFrame-ioPerFrame))
	}

	// The paper's Figure 6/7 shapes, rendered as ASCII.
	for _, n := range []int{6, 7} {
		fig, err := report.Figure(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(analysis.RenderScatter(fig.Points, analysis.PlotOptions{
			Title: fig.Title, Width: 72, Height: 14, LogY: true,
			YLabel: "request size", XLabel: "time",
		}))
	}
}
