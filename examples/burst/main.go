// Burst demonstrates the host-side burst-buffer tier: a per-compute-node
// local log between the application and the PFS. Checkpoint and M_LOG writes
// commit at node-local bandwidth and return immediately; seeded drain daemons
// flush them to the PFS in the background, through a modeled compression
// stage, with backpressure when a log fills.
//
// The walkthrough has three parts:
//
//   - ESCAT under an every-sweep checkpoint policy, direct and through the
//     tier: the synchronous checkpoint stall collapses to the local commit
//     cost, and the drain hides under the next compute sweep;
//   - the same pair with compression disabled — the drained PFS image is
//     byte-identical to the direct run's, which is how the regression suite
//     proves the tier is transparent;
//   - the three-application sweep, direct versus tier, under one policy.
//
// Everything is deterministic: rerunning prints byte-identical tables.
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

// escatResilient runs the small ESCAT study under an every-sweep checkpoint
// policy, optionally through the burst tier.
func escatResilient(bcfg iochar.BurstConfig) *iochar.ResilientReport {
	study := iochar.SmallStudy(iochar.ESCAT)
	study.Burst = bcfg
	rr, err := iochar.RunResilient(iochar.ResilientStudy{
		Study:       study,
		Ckpt:        iochar.CheckpointConfig{Interval: 1, BytesPerNode: 1 << 20},
		MaxAttempts: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rr
}

func main() {
	log.SetFlags(0)

	fmt.Println("ESCAT, checkpointing every sweep, direct to the PFS: each")
	fmt.Println("checkpoint is a synchronous all-node write burst.")
	direct := escatResilient(iochar.BurstConfig{})
	fmt.Printf("  wall clock %.2f s, checkpoint stall %.2f s\n\n",
		direct.Wall.Seconds(), direct.Ckpt.Overhead.Seconds())

	fmt.Println("The same run through the burst tier: checkpoints commit to the")
	fmt.Println("node-local log and drain behind the next compute sweep.")
	tier := escatResilient(iochar.DefaultBurstConfig())
	fmt.Printf("  wall clock %.2f s, checkpoint stall %.2f s\n\n",
		tier.Wall.Seconds(), tier.Ckpt.Overhead.Seconds())
	fmt.Println(iochar.RenderBurstReport(tier.Final.Burst))

	fmt.Println("With compression off the tier is bit-transparent: the drained")
	fmt.Println("PFS image matches the direct run's byte for byte (the identity")
	fmt.Println("regression in internal/core proves this for every app and mode).")
	plain := iochar.DefaultBurstConfig()
	plain.Compress = iochar.BurstCompressConfig{}
	ident := escatResilient(plain)
	fmt.Printf("  wall clock %.2f s, %s drained, 0 B saved\n\n",
		ident.Wall.Seconds(), humanish(ident.Final.Burst.Stats.DrainedBytes))

	rows, err := iochar.BurstSweep(true,
		iochar.CheckpointConfig{Interval: 1, BytesPerNode: 1 << 20},
		iochar.DefaultBurstConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iochar.RenderBurstSweep("Applications, burst tier vs direct (small scale):", rows))

	fmt.Println("ESCAT and HTF checkpoint their work loops, so the tier absorbs")
	fmt.Println("their stalls; RENDER has no checkpointer — its frame outputs")
	fmt.Println("route through the log by name prefix as the control.")
}

// humanish prints a byte count the way the report tables do.
func humanish(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
