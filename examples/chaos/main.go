// Chaos: run the reduced-scale ESCAT skeleton under an injected fault
// schedule — two disk failures (each flipping one I/O node's RAID-3 array
// into degraded mode while a background rebuild competes for the drives) and
// a mid-run I/O-node outage that kills the application outright — first
// without checkpointing (every failure restarts the run from the beginning),
// then with coordinated checkpoints every two quadrature iterations, and
// print the resilience reports side by side.
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

func main() {
	log.SetFlags(0)

	study := iochar.SmallStudy(iochar.ESCAT)
	// Small drives keep the background RAID rebuild in the seconds range so
	// its contention with the application is visible but not dominant.
	study.Machine.PFS.Disk.DiskCapacity = 32 << 20
	study.Faults = iochar.FaultPlan{
		Events: []iochar.FaultEvent{
			{Kind: iochar.DiskFailure, At: iochar.Seconds(2), Node: 3},
			{Kind: iochar.DiskFailure, At: iochar.Seconds(3), Node: 9},
		},
		// The outage lands after the second checkpoint commit on the
		// degraded machine, so the checkpointed run resumes mid-flight
		// while the unprotected one starts over.
		Cascades: []iochar.FaultCascade{{
			Kind: iochar.IONodeOutage, At: iochar.Seconds(11),
			Nodes: 16, FirstNode: 0, Duration: iochar.Seconds(1.2),
		}},
	}
	study.FaultSeed = 7

	base := iochar.ResilientStudy{
		Study:       study,
		RestartCost: iochar.Seconds(1.5),
	}

	without := base
	report("Without checkpointing", without)

	with := base
	with.Ckpt = iochar.CheckpointConfig{Interval: 2, BytesPerNode: 4096}
	report("With checkpoints every 2 iterations", with)
}

func report(title string, rs iochar.ResilientStudy) {
	rr, err := iochar.RunResilient(rs)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("==== %s ====\n\n", title)
	for i, a := range rr.Attempts {
		outcome := "completed"
		if a.Failed {
			outcome = "failed (" + a.Err + ")"
		}
		fmt.Printf("attempt %d: %.3fs -> %.3fs, from unit %d, %s\n",
			i+1, a.Start.Seconds(), a.End.Seconds(), a.ResumeUnit, outcome)
	}
	fmt.Println()
	fmt.Println(iochar.RenderResilience(rr.Resilience()))
}
