// Quickstart: run the ESCAT electron-scattering skeleton at reduced scale
// and print its operation-summary table — the minimal end-to-end use of the
// public iochar API.
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

func main() {
	log.SetFlags(0)

	// A small, seconds-scale study; swap in PaperStudy for the full
	// 128-node configuration from the paper.
	study := iochar.SmallStudy(iochar.ESCAT)

	report, err := iochar.Run(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ESCAT ran for %.2f simulated seconds and issued %d I/O operations.\n\n",
		report.Wall.Seconds(), report.Summary.Total.Count)
	for _, table := range report.Tables() {
		fmt.Println(table)
	}
	fmt.Println("Phases captured:", phaseList(report))
}

func phaseList(r *iochar.Report) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range r.Events {
		if !seen[e.Phase] {
			seen[e.Phase] = true
			out = append(out, e.Phase)
		}
	}
	return out
}
