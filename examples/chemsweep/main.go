// Chemsweep explores the paper's §7.2 question for the Hartree-Fock code:
// when is it better to precompute and reread the two-electron integrals than
// to recompute them on every SCF pass? It sweeps the per-node I/O rate
// through the analytic crossover model, then validates the model's
// "measured" side against a simulated pscf pass.
package main

import (
	"fmt"
	"log"

	iochar "repro"
	"repro/internal/analysis"
	"repro/internal/apps/htf"
	"repro/internal/core"
	"repro/internal/iotrace"
)

func main() {
	log.SetFlags(0)

	model := iochar.DefaultCrossoverModel()
	fmt.Printf("§7.2 crossover model: %.0f FLOPs/integral at %.0f MFLOP/s, %.0f bytes/integral\n",
		model.FlopsPerIntegral, model.NodeFlopRate/1e6, model.BytesPerIntegral)
	fmt.Printf("break-even per-node I/O rate: %.1f MB/s (paper: \"approximately 5-10 Mbytes/second per node\")\n\n",
		model.BreakEvenRate()/1e6)

	rates := []float64{0.5e6, 1e6, 2e6, 4e6, model.BreakEvenRate(), 8e6, 16e6, 32e6}
	fmt.Println(core.RenderSweep(model.Sweep(rates)))

	// Measure what the simulated machine actually delivers per node during
	// the SCF phase, and place it on the sweep.
	cfg := htf.SmallConfig()
	cfg.Nodes = 16
	cfg.IntegralRecords = 96
	study := iochar.PaperStudy(iochar.HTF)
	study.HTFConfig = &cfg
	study.Machine.ComputeNodes = cfg.Nodes
	report, err := iochar.Run(study)
	if err != nil {
		log.Fatal(err)
	}
	pscf := analysis.FilterPhase(report.Events, htf.PhasePscf)
	var bytes int64
	var nodeSeconds float64
	for _, e := range pscf {
		if e.Op == iotrace.OpRead && e.Bytes >= 64*1024 {
			bytes += e.Bytes
			nodeSeconds += e.Duration().Seconds()
		}
	}
	if nodeSeconds > 0 {
		perNode := float64(bytes) / nodeSeconds
		fmt.Printf("simulated pscf delivered %.2f MB/s per node while reading integrals\n", perNode/1e6)
		if perNode < model.BreakEvenRate() {
			fmt.Println("=> on this I/O system, recomputing integrals beats rereading them,")
			fmt.Println("   which is exactly why the HTF group ships the recomputing variant (§7.2).")
		} else {
			fmt.Println("=> this I/O system is fast enough that rereading stored integrals wins.")
		}
	}

	// The paper's scale argument: integral I/O volume grows as O(N^4).
	fmt.Println("\nData-volume scaling (two-electron integrals ~ N^4/8 x 8 bytes):")
	fmt.Printf("%8s %14s\n", "atoms", "integral data")
	for _, atoms := range []int{8, 16, 32, 64} {
		basis := float64(atoms * 6) // ~6 basis functions per atom
		integrals := basis * basis * basis * basis / 8
		fmt.Printf("%8d %14s\n", atoms, analysis.HumanBytes(int64(integrals*8)))
	}
}
