// Collective demonstrates the interface the paper's conclusions (§10) ask
// for: collective I/O, where a round of matched per-node requests is handed
// to the file system as one operation. The two-phase implementation gathers
// each M_RECORD/M_SYNC round at aggregator nodes, merges the per-node
// extents into stripe-aligned bulk transfers, and shuffles the data over the
// mesh — so the arrays see a few large requests instead of many small ones.
//
// The walkthrough has three parts:
//
//   - ESCAT's reload phase — the paper's canonical M_RECORD pattern, every
//     node rereading the electron-scattering integrals — run once direct and
//     once collectively, printing the request-size histogram both ways: the
//     small-request bucket collapses into a handful of stripe-sized runs;
//   - the three application skeletons, direct versus collective, with the
//     C-SCAN elevator scheduling the aggregated runs at each array;
//   - the six PFS access modes on a phase-aligned synthetic workload — only
//     the round-structured M_RECORD and M_SYNC disciplines aggregate; the
//     other four pass through unchanged as controls.
//
// Everything is deterministic: rerunning prints byte-identical tables.
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

// escatReport runs the small ESCAT study, optionally with collective
// aggregation and C-SCAN scheduling.
func escatReport(coll bool) *iochar.Report {
	study := iochar.SmallStudy(iochar.ESCAT)
	if coll {
		study.Machine.PFS.Collective = iochar.CollectiveConfig{Enabled: true}
		study.Machine.PFS.Sched = iochar.SchedConfig{
			Policy: "cscan",
			Window: iochar.DefaultSchedWindow,
		}
	}
	report, err := iochar.Run(study)
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func main() {
	log.SetFlags(0)

	fmt.Println("ESCAT reload (M_RECORD), direct: every node rereads every")
	fmt.Println("integral record itself, one small array request per record.")
	direct := escatReport(false)
	fmt.Printf("  wall clock %.2f s, %d physical array requests\n\n",
		direct.Wall.Seconds(), direct.PhysRequests)

	fmt.Println("The same reload, collectively: each round's matched requests")
	fmt.Println("merge into stripe-aligned runs before touching the arrays.")
	coll := escatReport(true)
	fmt.Printf("  wall clock %.2f s, %d physical array requests\n\n",
		coll.Wall.Seconds(), coll.PhysRequests)
	fmt.Println(iochar.RenderCollectiveReport(coll.Collective))

	rows, err := iochar.CollectiveSweep(true, iochar.CollectiveConfig{},
		iochar.SchedConfig{Policy: "cscan", Window: iochar.DefaultSchedWindow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iochar.RenderCollectiveSweep("Applications, collective vs direct (small scale, C-SCAN):", rows))

	modeRows, err := iochar.ModeCollectiveSweep(iochar.CollectiveConfig{}, iochar.SchedConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iochar.RenderCollectiveSweep("PFS access modes, collective vs direct (8 nodes, fixed records):", modeRows))

	fmt.Println("Only the round-structured modes aggregate: M_RECORD and M_SYNC")
	fmt.Println("collapse their per-node records; the other four are controls.")
}
