// Adaptive demonstrates the paper's §5.2 policy experiment and its §10
// adaptive-prefetching direction: the ESCAT skeleton runs once on raw PFS
// and once through the PPFS policy layer (write-behind + global request
// aggregation), and the example contrasts the application-visible write
// cost, the burst structure of Figure 4, and the physical request stream.
// It finishes by showing the access-pattern classifier at work.
package main

import (
	"fmt"
	"log"

	iochar "repro"
	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/iotrace"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A mid-scale ESCAT so both runs finish quickly: 32 nodes, 20 cycles.
	cfg := escat.DefaultConfig()
	cfg.Nodes = 32
	cfg.Iterations = 20
	cfg.ComputeStart = 20 * sim.Second
	cfg.ComputeEnd = 10 * sim.Second

	base := run(cfg, nil)
	pol := iochar.DefaultPolicy()
	layered := run(cfg, &pol)

	fmt.Println("ESCAT on raw PFS vs PPFS (write-behind + aggregation), §5.2:")
	fmt.Printf("%-34s %14s %14s\n", "", "PFS", "PPFS")
	row := func(name string, a, b string) { fmt.Printf("%-34s %14s %14s\n", name, a, b) }
	row("wall clock",
		fmt.Sprintf("%.1f s", base.Wall.Seconds()),
		fmt.Sprintf("%.1f s", layered.Wall.Seconds()))
	row("app-visible write node-time",
		fmt.Sprintf("%.1f s", base.Summary.Row("Write").NodeTime.Seconds()),
		fmt.Sprintf("%.1f s", layered.Summary.Row("Write").NodeTime.Seconds()))
	row("app-visible seek node-time",
		fmt.Sprintf("%.1f s", base.Summary.Row("Seek").NodeTime.Seconds()),
		fmt.Sprintf("%.1f s", layered.Summary.Row("Seek").NodeTime.Seconds()))

	// Physical request streams: how many writes actually hit the disks,
	// and how large they were.
	pw := analysis.FilterOps(base.Physical, iotrace.OpWrite)
	lw := analysis.FilterOps(layered.Physical, iotrace.OpWrite)
	row("physical write requests",
		fmt.Sprintf("%d", len(pw)), fmt.Sprintf("%d", len(lw)))
	row("mean physical write size",
		analysis.HumanBytes(meanBytes(pw)), analysis.HumanBytes(meanBytes(lw)))
	if layered.PolicyStats != nil {
		fmt.Printf("\nPPFS absorbed %d small writes into %d aggregated extents (mean %s).\n",
			layered.PolicyStats.BufferedWrites, layered.PolicyStats.Flushes,
			analysis.HumanBytes(layered.PolicyStats.MeanFlushExtent()))
	}

	// Figure 4's synchronized bursts: present on PFS, gone from the
	// application's critical path on PPFS.
	gap := 5 * sim.Second
	_, _, baseBursts := base.WriteBurstTrend(gap)
	fmt.Printf("\nFigure 4 burst groups on PFS: %d (the synchronized write clusters)\n", baseBursts)
	fmt.Printf("On PPFS the same application writes cost ~%.0f ms each instead of seconds,\n",
		meanWriteMillis(layered))
	fmt.Println("\"effectively eliminating the behavior seen in Figure 4\" (§5.2).")

	fmt.Println("\n§10 access-pattern classification of the ESCAT streams (PPFS classifier):")
	demoClassifier()
}

func run(cfg escat.Config, pol *iochar.Policy) *iochar.Report {
	study := iochar.PaperStudy(iochar.ESCAT)
	study.ESCATConfig = &cfg
	study.Machine.ComputeNodes = cfg.Nodes
	study.Policy = pol
	report, err := iochar.Run(study)
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func meanBytes(events []iotrace.Event) int64 {
	if len(events) == 0 {
		return 0
	}
	var total int64
	for _, e := range events {
		total += e.Bytes
	}
	return total / int64(len(events))
}

func meanWriteMillis(r *iochar.Report) float64 {
	row := r.Summary.Row("Write")
	if row == nil || row.Count == 0 {
		return 0
	}
	return row.NodeTime.Milliseconds() / float64(row.Count)
}

// demoClassifier feeds the §10 classifier the three stream shapes ESCAT
// exhibits and prints its verdicts.
func demoClassifier() {
	c := ppfs.NewClassifier()
	// Node 0 reading the problem definition: sequential small reads.
	for i := int64(0); i < 50; i++ {
		c.Observe(9, 0, iotrace.OpRead, i*2048, 2048)
	}
	// A node's quadrature writes: sequential within its region.
	for i := int64(0); i < 20; i++ {
		c.Observe(7, 3, iotrace.OpWrite, 3*106496+i*2048, 2048)
	}
	// A hypothetical node-interleaved stride (M_RECORD-style).
	for i := int64(0); i < 20; i++ {
		c.Observe(8, 5, iotrace.OpRead, i*128*2048+5*2048, 2048)
	}
	show := func(name string, file iotrace.FileID, node int) {
		cl := c.Classify(file, node)
		fmt.Printf("  %-38s -> %-10s (reads %.0f%%, mean %s)\n",
			name, cl.Pattern, cl.ReadFraction*100, analysis.HumanBytes(cl.MeanBytes))
	}
	show("input scan (file 9, node 0)", 9, 0)
	show("quadrature writes (file 7, node 3)", 7, 3)
	show("interleaved records (file 8, node 5)", 8, 5)
}
