// Caching demonstrates the §8 what-if the paper could not run: what if each
// Paragon I/O node had carried a block cache with write-behind and
// pattern-driven prefetch between its request queue and its RAID-3 array?
//
// It runs two sweeps, each workload once uncached and once cached:
//
//   - the three application skeletons, comparing mean read latency — ESCAT's
//     small sequential reads and HTF's record-oriented integral traffic are
//     exactly the patterns the paper's conclusions (§10) say a cache should
//     serve well;
//   - the six PFS access modes on a synthetic fixed-record workload, plus a
//     fully random read control whose working set exceeds the cache — the
//     case where a cache buys nothing.
//
// Everything is deterministic: rerunning prints byte-identical tables.
package main

import (
	"fmt"
	"log"

	iochar "repro"
)

func main() {
	log.SetFlags(0)

	ccfg := iochar.DefaultCacheConfig()
	fmt.Printf("Per-node cache: %d MB, %d KB blocks, write-behind, prefetch depth %d\n\n",
		ccfg.CapacityBytes>>20, ccfg.BlockBytes>>10, ccfg.PrefetchDepth)

	rows, err := iochar.CacheSweep(true, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iochar.RenderCacheSweep("Applications, cached vs uncached (small scale):", rows))

	modeRows, err := iochar.ModeCacheSweep(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(iochar.RenderCacheSweep("PFS access modes, cached vs uncached (8 nodes, fixed records):", modeRows))

	fmt.Println("The random-read control's working set is far larger than the cache:")
	fmt.Println("its hit ratio and latency change should both be near zero.")
}
