// Sixmodes demonstrates the semantics and cost of Intel PFS's six parallel
// file access modes (§3.2) on one workload: eight nodes each appending
// eight 4 KB records to a shared file. It prints, per mode, where each
// node's data landed and what the access discipline cost — the §8 point
// that mode choice (i.e. synchronization discipline) dominates small-request
// performance on a parallel file system.
package main

import (
	"fmt"
	"log"

	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	nodes   = 8
	records = 8
	recSize = 4096
)

func main() {
	log.SetFlags(0)
	fmt.Println("Eight nodes, eight 4 KB records each, one shared file — per PFS mode:")
	fmt.Printf("%-10s %10s %10s   %s\n", "mode", "wall", "node0@", "discipline")

	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		wall, node0First, note := runMode(mode)
		fmt.Printf("%-10s %9.2fs %10d   %s\n", mode, wall.Seconds(), node0First, note)
	}
}

// runMode executes the workload under one mode and reports the makespan,
// the offset node 0's first record landed at, and a semantics note.
func runMode(mode iotrace.AccessMode) (sim.Time, int64, string) {
	m, err := workload.NewMachine(workload.MachineConfig{
		ComputeNodes: nodes,
		PFS:          pfs.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	name := "shared-" + mode.String()

	if mode == iotrace.ModeGlobal {
		// M_GLOBAL is a read discipline (all nodes fetch the same data):
		// demonstrate with reads of a preloaded file instead of writes.
		m.PFS.Preload(name, records*recSize)
	} else {
		m.PFS.Preload(name, 0)
	}

	for node := 0; node < nodes; node++ {
		node := node
		m.Eng.Spawn(fmt.Sprintf("n%d", node), func(p *sim.Process) {
			var h *pfs.Handle
			var err error
			if mode == iotrace.ModeRecord {
				h, err = m.PFS.OpenRecord(p, node, name, recSize)
			} else {
				h, err = m.PFS.Open(p, node, name, mode)
			}
			if err != nil {
				log.Fatal(err)
			}
			if mode == iotrace.ModeUnix || mode == iotrace.ModeAsync {
				// Independent pointers: the application computes disjoint
				// regions itself.
				if _, err := h.Seek(p, int64(node)*records*recSize, pfs.SeekStart); err != nil {
					log.Fatal(err)
				}
			}
			for r := 0; r < records; r++ {
				if mode == iotrace.ModeGlobal {
					_, err = h.Read(p, recSize)
				} else {
					_, err = h.Write(p, recSize)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	if err := m.Eng.Run(); err != nil {
		log.Fatal(err)
	}

	var node0First int64 = -1
	for _, e := range tr.Events() {
		if e.Node == 0 && e.Op.Moves() && node0First == -1 {
			node0First = e.Offset
		}
	}
	return m.Eng.Now(), node0First, semantics(mode)
}

func semantics(mode iotrace.AccessMode) string {
	switch mode {
	case iotrace.ModeUnix:
		return "independent pointers, POSIX atomicity (file token serializes)"
	case iotrace.ModeLog:
		return "shared pointer, first-come-first-served appends"
	case iotrace.ModeSync:
		return "shared pointer, strict node-number order"
	case iotrace.ModeRecord:
		return "fixed records interleaved node-major: record j*N+k"
	case iotrace.ModeGlobal:
		return "all nodes get the same data, one physical read per round"
	case iotrace.ModeAsync:
		return "independent pointers, no atomicity: full overlap"
	}
	return ""
}
