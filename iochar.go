// Package iochar is the public API of this reproduction of "Input/Output
// Characteristics of Scalable Parallel Applications" (Crandall, Aydt, Chien,
// Reed; Supercomputing '95).
//
// It re-exports the characterization surface from the internal packages: a
// Study composes a simulated Intel Paragon XP/S with PFS, one of the paper's
// three application skeletons (ESCAT, RENDER, HTF), Pablo-style
// instrumentation, and optional PPFS client policies; Run produces a Report
// from which every table and figure of the paper regenerates.
//
// Quick start:
//
//	report, err := iochar.Run(iochar.PaperStudy(iochar.ESCAT))
//	if err != nil { ... }
//	for _, table := range report.Tables() {
//	    fmt.Println(table)
//	}
package iochar

import (
	"repro/internal/core"
	"repro/internal/ppfs"
)

// AppID names one of the characterized applications.
type AppID = core.AppID

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  = core.ESCAT
	RENDER = core.RENDER
	HTF    = core.HTF
)

// Study describes one characterization run; see core.Study.
type Study = core.Study

// Report is a completed run's traces, tables and reductions.
type Report = core.Report

// Figure is one reproduced paper figure.
type Figure = core.Figure

// Policy selects PPFS client-side behaviors for policy studies.
type Policy = ppfs.Policy

// CrossoverModel is the §7.2 recompute-vs-reread analysis.
type CrossoverModel = core.CrossoverModel

// Apps lists the available applications.
func Apps() []AppID { return core.Apps() }

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study { return core.PaperStudy(app) }

// SmallStudy returns a fast, reduced-scale study of app.
func SmallStudy(app AppID) Study { return core.SmallStudy(app) }

// Run executes a study to completion.
func Run(s Study) (*Report, error) { return core.Run(s) }

// DefaultPolicy returns the §5.2 experiment's PPFS policies (write-behind,
// aggregation, caching, sequential prefetch).
func DefaultPolicy() Policy { return ppfs.DefaultPolicy() }

// DefaultCrossoverModel returns the paper-calibrated §7.2 parameters.
func DefaultCrossoverModel() CrossoverModel { return core.DefaultCrossoverModel() }
