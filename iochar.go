// Package iochar is the public API of this reproduction of "Input/Output
// Characteristics of Scalable Parallel Applications" (Crandall, Aydt, Chien,
// Reed; Supercomputing '95).
//
// It re-exports the characterization surface from the internal packages: a
// Study composes a simulated Intel Paragon XP/S with PFS, one of the paper's
// three application skeletons (ESCAT, RENDER, HTF), Pablo-style
// instrumentation, and optional PPFS client policies; Run produces a Report
// from which every table and figure of the paper regenerates.
//
// Quick start:
//
//	report, err := iochar.Run(iochar.PaperStudy(iochar.ESCAT))
//	if err != nil { ... }
//	for _, table := range report.Tables() {
//	    fmt.Println(table)
//	}
package iochar

import (
	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

// AppID names one of the characterized applications.
type AppID = core.AppID

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  = core.ESCAT
	RENDER = core.RENDER
	HTF    = core.HTF
)

// Study describes one characterization run; see core.Study.
type Study = core.Study

// Report is a completed run's traces, tables and reductions.
type Report = core.Report

// Figure is one reproduced paper figure.
type Figure = core.Figure

// Policy selects PPFS client-side behaviors for policy studies.
type Policy = ppfs.Policy

// CrossoverModel is the §7.2 recompute-vs-reread analysis.
type CrossoverModel = core.CrossoverModel

// Apps lists the available applications.
func Apps() []AppID { return core.Apps() }

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study { return core.PaperStudy(app) }

// SmallStudy returns a fast, reduced-scale study of app.
func SmallStudy(app AppID) Study { return core.SmallStudy(app) }

// Run executes a study to completion.
func Run(s Study) (*Report, error) { return core.Run(s) }

// DefaultPolicy returns the §5.2 experiment's PPFS policies (write-behind,
// aggregation, caching, sequential prefetch).
func DefaultPolicy() Policy { return ppfs.DefaultPolicy() }

// DefaultCrossoverModel returns the paper-calibrated §7.2 parameters.
func DefaultCrossoverModel() CrossoverModel { return core.DefaultCrossoverModel() }

// Fault injection & resilience (the chaos side of the machine model).

// Time is the simulated clock's type; Seconds converts wall seconds into it.
type Time = sim.Time

// Seconds converts a duration in seconds to simulated Time.
func Seconds(s float64) Time { return sim.FromSeconds(s) }

// FaultPlan is a declarative chaos schedule; the zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultEvent, FaultExp and FaultCascade are a plan's building blocks: fixed
// events, Poisson failure processes, and correlated multi-node cascades.
type (
	FaultEvent   = fault.Event
	FaultExp     = fault.Exp
	FaultCascade = fault.Cascade
)

// Fault kinds, and the AnyNode random-target selector.
const (
	DiskFailure  = fault.DiskFailure
	IONodeOutage = fault.IONodeOutage
	LatencyStorm = fault.LatencyStorm
	AnyNode      = fault.AnyNode
)

// Incident is one realized fault on the timeline.
type Incident = fault.Incident

// CheckpointConfig is the coordinated checkpoint policy for resilient runs.
type CheckpointConfig = ckpt.Config

// ResilientStudy is a Study run under its fault plan with restart-from-
// checkpoint semantics; ResilientReport its outcome.
type (
	ResilientStudy  = core.ResilientStudy
	ResilientReport = core.ResilientReport
)

// ResilienceReport is the analysis-layer resilience summary; render it with
// RenderResilience.
type ResilienceReport = analysis.ResilienceReport

// RunResilient executes the study under its fault plan, restarting from the
// last committed checkpoint after each fatal fault.
func RunResilient(rs ResilientStudy) (*ResilientReport, error) { return core.RunResilient(rs) }

// TradeoffSweep reruns a resilient study across checkpoint intervals and
// collects the overhead-versus-lost-work curve; render it with
// analysis.RenderTradeoff.
func TradeoffSweep(rs ResilientStudy, intervals []int) ([]analysis.TradeoffPoint, error) {
	return core.TradeoffSweep(rs, intervals)
}

// RenderResilience formats a resilience summary as text.
func RenderResilience(r ResilienceReport) string { return analysis.RenderResilience(r) }

// I/O-node caching (the §8 what-if: PFS had no cache between the request
// queue and the arrays).

// CacheConfig configures the per-I/O-node block cache: capacity, block size,
// write-behind, pattern-driven prefetch, and the outage policy for dirty
// blocks. Set it as Study.Machine.PFS.Cache.
type CacheConfig = cache.Config

// CacheStats is one cache's (or the aggregate's) counter set.
type CacheStats = cache.Stats

// CacheReport is a run's cache-effectiveness section; Report.Cache carries it
// when the study ran with caching enabled.
type CacheReport = analysis.CacheReport

// CacheComparison is one workload's cached-versus-uncached outcome.
type CacheComparison = analysis.CacheComparison

// DefaultCacheConfig returns the default cache policy: 8 MB per node,
// stripe-unit blocks, write-behind, prefetch depth 4.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// CacheSweep runs the three applications cached and uncached and reports the
// mean read-latency change per application.
func CacheSweep(small bool, ccfg CacheConfig) ([]CacheComparison, error) {
	return core.CacheSweep(small, ccfg)
}

// ModeCacheSweep compares cached against uncached synthetic runs under all
// six PFS access modes plus a random-read control.
func ModeCacheSweep(ccfg CacheConfig) ([]CacheComparison, error) {
	return core.ModeCacheSweep(ccfg)
}

// RenderCacheReport formats a cache-effectiveness report as text.
func RenderCacheReport(r *CacheReport) string { return analysis.RenderCacheReport(r) }

// RenderCacheSweep formats a cached-versus-uncached comparison table.
func RenderCacheSweep(title string, rows []CacheComparison) string {
	return analysis.RenderCacheSweep(title, rows)
}

// RenderTradeoff formats a tradeoff sweep as text.
func RenderTradeoff(points []analysis.TradeoffPoint) string { return analysis.RenderTradeoff(points) }
