// Package iochar is the public API of this reproduction of "Input/Output
// Characteristics of Scalable Parallel Applications" (Crandall, Aydt, Chien,
// Reed; Supercomputing '95).
//
// It re-exports the characterization surface from the internal packages: a
// Study composes a simulated Intel Paragon XP/S with PFS, one of the paper's
// three application skeletons (ESCAT, RENDER, HTF), Pablo-style
// instrumentation, and optional PPFS client policies; Run produces a Report
// from which every table and figure of the paper regenerates.
//
// Quick start:
//
//	report, err := iochar.Run(iochar.PaperStudy(iochar.ESCAT))
//	if err != nil { ... }
//	for _, table := range report.Tables() {
//	    fmt.Println(table)
//	}
package iochar

import (
	"repro/internal/analysis"
	"repro/internal/burst"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/pfs"
	"repro/internal/ppfs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// AppID names one of the characterized applications.
type AppID = core.AppID

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  = core.ESCAT
	RENDER = core.RENDER
	HTF    = core.HTF
)

// Study describes one characterization run; see core.Study.
type Study = core.Study

// Report is a completed run's traces, tables and reductions.
type Report = core.Report

// Figure is one reproduced paper figure.
type Figure = core.Figure

// Policy selects PPFS client-side behaviors for policy studies.
type Policy = ppfs.Policy

// CrossoverModel is the §7.2 recompute-vs-reread analysis.
type CrossoverModel = core.CrossoverModel

// Apps lists the available applications.
func Apps() []AppID { return core.Apps() }

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study { return core.PaperStudy(app) }

// SmallStudy returns a fast, reduced-scale study of app.
func SmallStudy(app AppID) Study { return core.SmallStudy(app) }

// Run executes a study to completion.
func Run(s Study) (*Report, error) { return core.Run(s) }

// DefaultPolicy returns the §5.2 experiment's PPFS policies (write-behind,
// aggregation, caching, sequential prefetch).
func DefaultPolicy() Policy { return ppfs.DefaultPolicy() }

// DefaultCrossoverModel returns the paper-calibrated §7.2 parameters.
func DefaultCrossoverModel() CrossoverModel { return core.DefaultCrossoverModel() }

// Fault injection & resilience (the chaos side of the machine model).

// Time is the simulated clock's type; Seconds converts wall seconds into it.
type Time = sim.Time

// Seconds converts a duration in seconds to simulated Time.
func Seconds(s float64) Time { return sim.FromSeconds(s) }

// FaultPlan is a declarative chaos schedule; the zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultEvent, FaultExp and FaultCascade are a plan's building blocks: fixed
// events, Poisson failure processes, and correlated multi-node cascades.
type (
	FaultEvent   = fault.Event
	FaultExp     = fault.Exp
	FaultCascade = fault.Cascade
)

// Fault kinds, and the AnyNode random-target selector.
const (
	DiskFailure  = fault.DiskFailure
	IONodeOutage = fault.IONodeOutage
	LatencyStorm = fault.LatencyStorm
	AnyNode      = fault.AnyNode
)

// Corruption kinds (incident-timeline labels of the silent-data-corruption
// classes; scheduled via FaultPlan.Corruption, not discrete events).
const (
	BitRot           = fault.BitRot
	TornWrite        = fault.TornWrite
	MisdirectedWrite = fault.MisdirectedWrite
)

// CorruptionPlan schedules silent data corruption — bit-rot arrivals plus
// torn/misdirected write probabilities — as FaultPlan.Corruption. It requires
// the integrity layer (Study.Machine.PFS.Integrity).
type CorruptionPlan = fault.CorruptionPlan

// Incident is one realized fault on the timeline.
type Incident = fault.Incident

// CheckpointConfig is the coordinated checkpoint policy for resilient runs.
type CheckpointConfig = ckpt.Config

// ResilientStudy is a Study run under its fault plan with restart-from-
// checkpoint semantics; ResilientReport its outcome.
type (
	ResilientStudy  = core.ResilientStudy
	ResilientReport = core.ResilientReport
)

// ResilienceReport is the analysis-layer resilience summary; render it with
// RenderResilience.
type ResilienceReport = analysis.ResilienceReport

// RunResilient executes the study under its fault plan, restarting from the
// last committed checkpoint after each fatal fault.
func RunResilient(rs ResilientStudy) (*ResilientReport, error) { return core.RunResilient(rs) }

// TradeoffSweep reruns a resilient study across checkpoint intervals and
// collects the overhead-versus-lost-work curve; render it with
// analysis.RenderTradeoff.
func TradeoffSweep(rs ResilientStudy, intervals []int) ([]analysis.TradeoffPoint, error) {
	return core.TradeoffSweep(rs, intervals)
}

// RenderResilience formats a resilience summary as text.
func RenderResilience(r ResilienceReport) string { return analysis.RenderResilience(r) }

// I/O-node caching (the §8 what-if: PFS had no cache between the request
// queue and the arrays).

// CacheConfig configures the per-I/O-node block cache: capacity, block size,
// write-behind, pattern-driven prefetch, and the outage policy for dirty
// blocks. Set it as Study.Machine.PFS.Cache.
type CacheConfig = cache.Config

// CacheStats is one cache's (or the aggregate's) counter set.
type CacheStats = cache.Stats

// CacheReport is a run's cache-effectiveness section; Report.Cache carries it
// when the study ran with caching enabled.
type CacheReport = analysis.CacheReport

// CacheComparison is one workload's cached-versus-uncached outcome.
type CacheComparison = analysis.CacheComparison

// DefaultCacheConfig returns the default cache policy: 8 MB per node,
// stripe-unit blocks, write-behind, prefetch depth 4.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// CacheSweep runs the three applications cached and uncached and reports the
// mean read-latency change per application.
func CacheSweep(small bool, ccfg CacheConfig) ([]CacheComparison, error) {
	return core.CacheSweep(small, ccfg)
}

// ModeCacheSweep compares cached against uncached synthetic runs under all
// six PFS access modes plus a random-read control.
func ModeCacheSweep(ccfg CacheConfig) ([]CacheComparison, error) {
	return core.ModeCacheSweep(ccfg)
}

// RenderCacheReport formats a cache-effectiveness report as text.
func RenderCacheReport(r *CacheReport) string { return analysis.RenderCacheReport(r) }

// RenderCacheSweep formats a cached-versus-uncached comparison table.
func RenderCacheSweep(title string, rows []CacheComparison) string {
	return analysis.RenderCacheSweep(title, rows)
}

// RenderTradeoff formats a tradeoff sweep as text.
func RenderTradeoff(points []analysis.TradeoffPoint) string { return analysis.RenderTradeoff(points) }

// End-to-end data integrity: checksummed blocks, scrub/repair, corruption
// injection, and the deadline-aware client reliability layer.

// IntegrityConfig attaches a checksum store to every I/O node (set as
// Study.Machine.PFS.Integrity); ScrubConfig its background scrubber.
type (
	IntegrityConfig = integrity.Config
	ScrubConfig     = integrity.ScrubConfig
)

// ReliabilityConfig layers per-request deadlines, bounded corrupt-read
// retries with seeded jittered backoff, and hedged reads onto the PFS client
// (set as Study.Machine.PFS.Reliability).
type ReliabilityConfig = pfs.ReliabilityConfig

// IntegrityReport is a run's end-to-end data-integrity section; Report.
// Integrity carries it when the checksum or reliability layer was active.
type IntegrityReport = analysis.IntegrityReport

// CorruptionSweepRow and IntegrityOverheadRow are the integrity sweeps' row
// types.
type (
	CorruptionSweepRow   = analysis.CorruptionSweepRow
	IntegrityOverheadRow = analysis.IntegrityOverheadRow
)

// DefaultIntegrityConfig returns the enabled checksum layer with calibrated
// verify costs (scrubbing off; enable via the Scrub field).
func DefaultIntegrityConfig() IntegrityConfig { return integrity.DefaultConfig() }

// DefaultScrubConfig returns the default background-scrub policy (4 MB/s,
// 512 KB slices, 600 s window).
func DefaultScrubConfig() ScrubConfig { return integrity.DefaultScrubConfig() }

// DefaultReliabilityConfig returns the enabled client reliability policy:
// 3 retries, 10 ms initial backoff with 20% seeded jitter, hedged reads at
// the 95th latency percentile.
func DefaultReliabilityConfig() ReliabilityConfig { return pfs.DefaultReliabilityConfig() }

// CorruptionSweep runs every application under every corruption class with
// the integrity layer, scrubber, replication and client retries enabled, and
// tallies detection coverage; render with RenderCorruptionSweep.
func CorruptionSweep(small bool, seed uint64) ([]CorruptionSweepRow, error) {
	return core.CorruptionSweep(small, seed)
}

// ModeIntegritySweep measures the checksum layer's healthy-path verify
// overhead under all six PFS access modes; render with
// RenderIntegrityOverhead.
func ModeIntegritySweep(icfg IntegrityConfig) ([]IntegrityOverheadRow, error) {
	return core.ModeIntegritySweep(icfg)
}

// RenderIntegrityReport formats a run's integrity section as text.
func RenderIntegrityReport(r *IntegrityReport) string { return analysis.RenderIntegrityReport(r) }

// RenderCorruptionSweep formats the detection-coverage sweep as a table.
func RenderCorruptionSweep(rows []CorruptionSweepRow) string {
	return analysis.RenderCorruptionSweep(rows)
}

// RenderIntegrityOverhead formats the verify-overhead sweep as a table.
func RenderIntegrityOverhead(rows []IntegrityOverheadRow) string {
	return analysis.RenderIntegrityOverhead(rows)
}

// Host-side burst buffering: a per-compute-node log tier between the
// application and the PFS, absorbing checkpoint and M_LOG writes at local
// bandwidth and draining them asynchronously through a modeled compression
// stage.

// BurstConfig parameterizes the burst tier (set as Study.Burst; mutually
// exclusive with a PPFS Policy — both are client-side layers over the same
// seam). BurstCompressConfig is its drain-stage compression model.
type (
	BurstConfig         = burst.Config
	BurstCompressConfig = burst.CompressConfig
)

// BurstStats is the tier's counter set: commits, drains, bypasses,
// backpressure, and the undrained residue.
type BurstStats = burst.Stats

// BurstReport is a run's burst-tier section (Report.Burst carries it when the
// study ran with the tier); BurstComparison one application's direct-versus-
// tier outcome.
type (
	BurstReport     = analysis.BurstReport
	BurstComparison = analysis.BurstComparison
)

// DefaultBurstConfig returns the default tier: a 64 MB node log committing at
// 400 MB/s with 1.8x compression on the drain path.
func DefaultBurstConfig() BurstConfig { return burst.DefaultConfig() }

// BurstOutputPrefixes returns the file-name prefixes of an application's bulk
// output traffic, for routing ordinary writes through the log (none of the
// paper's applications use M_LOG).
func BurstOutputPrefixes(app AppID) []string { return core.OutputPrefixes(app) }

// BurstSweep runs the three applications direct and through the tier under
// one checkpoint policy and reports the makespan and checkpoint-stall change.
func BurstSweep(small bool, ck CheckpointConfig, bcfg BurstConfig) ([]BurstComparison, error) {
	return core.BurstSweep(small, ck, bcfg)
}

// RenderBurstReport formats a run's burst-tier section as text.
func RenderBurstReport(r *BurstReport) string { return analysis.RenderBurstReport(r) }

// RenderBurstSweep formats a direct-versus-tier comparison table.
func RenderBurstSweep(title string, rows []BurstComparison) string {
	return analysis.RenderBurstSweep(title, rows)
}

// Two-phase collective I/O and disk scheduling (the paper's §10 call for
// collective interfaces, plus the arrays' elevator what-if).

// CollectiveConfig enables two-phase aggregation of round-structured
// M_RECORD/M_SYNC traffic (set as Study.Machine.PFS.Collective).
type CollectiveConfig = collective.Config

// CollectiveStats counts a run's collective rounds, the logical-to-physical
// request collapse, and the shuffle traffic; Report.Collective carries it.
type CollectiveStats = collective.Stats

// SchedConfig selects the per-I/O-node disk-scheduling policy — fcfs, cscan,
// sstf, or random — with an anticipatory batching window (set as
// Study.Machine.PFS.Sched). The zero value keeps the legacy FIFO queue.
type SchedConfig = ionode.SchedConfig

// SchedStats counts one node dispatcher's grants, reorders and elevator
// wraps; Report.Sched carries one entry per I/O node.
type SchedStats = ionode.SchedStats

// CollectiveComparison is one workload's collective-versus-direct outcome.
type CollectiveComparison = analysis.CollectiveComparison

// DefaultSchedWindow is the default anticipatory batching bound for named
// scheduling policies.
const DefaultSchedWindow = ionode.DefaultWindow

// CollectiveSweep runs the three applications with and without collective
// aggregation and reports the physical-request and makespan change.
func CollectiveSweep(small bool, ccfg CollectiveConfig, sched SchedConfig) ([]CollectiveComparison, error) {
	return core.CollectiveSweep(small, ccfg, sched)
}

// ModeCollectiveSweep compares collective against direct synthetic runs under
// all six PFS access modes (only the round-structured M_RECORD and M_SYNC
// modes aggregate; the rest pass through unchanged as controls).
func ModeCollectiveSweep(ccfg CollectiveConfig, sched SchedConfig) ([]CollectiveComparison, error) {
	return core.ModeCollectiveSweep(ccfg, sched)
}

// RenderCollectiveReport formats a run's collective-aggregation section,
// including the logical-versus-physical request-size histogram.
func RenderCollectiveReport(st *CollectiveStats) string { return analysis.RenderCollectiveReport(st) }

// RenderSchedReport formats the per-node disk-scheduling counters.
func RenderSchedReport(rows []SchedStats) string { return analysis.RenderSchedReport(rows) }

// RenderCollectiveSweep formats a collective-versus-direct comparison table.
func RenderCollectiveSweep(title string, rows []CollectiveComparison) string {
	return analysis.RenderCollectiveSweep(title, rows)
}

// The declarative scenario DSL: YAML/JSON files describing a generated
// (possibly heterogeneous) fleet, a workload, a chaos schedule, and
// first-class assertions — versioned, replayable what-ifs. See the
// "Scenarios" section of the README and `stress scenario run`.

// Scenario is one parsed scenario file.
type Scenario = scenario.Scenario

// ScenarioResult is one executed scenario: the resilient report, the
// realized fleet, the measurements, and the assertion verdicts.
type ScenarioResult = scenario.Result

// ScenarioFleet is the realized machine shape a fleet_gen section expands to.
type ScenarioFleet = scenario.Fleet

// ParseScenario decodes and validates a scenario from YAML or JSON bytes.
func ParseScenario(data []byte, path string) (*Scenario, error) { return scenario.Parse(data, path) }

// LoadScenario reads and parses one scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// RenderScenarioFleet formats the realized fleet section (empty for the
// default homogeneous shape).
func RenderScenarioFleet(f *ScenarioFleet) string { return scenario.RenderFleet(f) }

// RenderScenarioChecks formats the assertion verdict section.
func RenderScenarioChecks(name string, m scenario.Measurements, checks []scenario.Check) string {
	return scenario.RenderChecks(name, m, checks)
}
