// Package iochar is the public API of this reproduction of "Input/Output
// Characteristics of Scalable Parallel Applications" (Crandall, Aydt, Chien,
// Reed; Supercomputing '95).
//
// It re-exports the characterization surface from the internal packages: a
// Study composes a simulated Intel Paragon XP/S with PFS, one of the paper's
// three application skeletons (ESCAT, RENDER, HTF), Pablo-style
// instrumentation, and optional PPFS client policies; Run produces a Report
// from which every table and figure of the paper regenerates.
//
// Quick start:
//
//	report, err := iochar.Run(iochar.PaperStudy(iochar.ESCAT))
//	if err != nil { ... }
//	for _, table := range report.Tables() {
//	    fmt.Println(table)
//	}
package iochar

import (
	"repro/internal/analysis"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

// AppID names one of the characterized applications.
type AppID = core.AppID

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  = core.ESCAT
	RENDER = core.RENDER
	HTF    = core.HTF
)

// Study describes one characterization run; see core.Study.
type Study = core.Study

// Report is a completed run's traces, tables and reductions.
type Report = core.Report

// Figure is one reproduced paper figure.
type Figure = core.Figure

// Policy selects PPFS client-side behaviors for policy studies.
type Policy = ppfs.Policy

// CrossoverModel is the §7.2 recompute-vs-reread analysis.
type CrossoverModel = core.CrossoverModel

// Apps lists the available applications.
func Apps() []AppID { return core.Apps() }

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study { return core.PaperStudy(app) }

// SmallStudy returns a fast, reduced-scale study of app.
func SmallStudy(app AppID) Study { return core.SmallStudy(app) }

// Run executes a study to completion.
func Run(s Study) (*Report, error) { return core.Run(s) }

// DefaultPolicy returns the §5.2 experiment's PPFS policies (write-behind,
// aggregation, caching, sequential prefetch).
func DefaultPolicy() Policy { return ppfs.DefaultPolicy() }

// DefaultCrossoverModel returns the paper-calibrated §7.2 parameters.
func DefaultCrossoverModel() CrossoverModel { return core.DefaultCrossoverModel() }

// Fault injection & resilience (the chaos side of the machine model).

// Time is the simulated clock's type; Seconds converts wall seconds into it.
type Time = sim.Time

// Seconds converts a duration in seconds to simulated Time.
func Seconds(s float64) Time { return sim.FromSeconds(s) }

// FaultPlan is a declarative chaos schedule; the zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultEvent, FaultExp and FaultCascade are a plan's building blocks: fixed
// events, Poisson failure processes, and correlated multi-node cascades.
type (
	FaultEvent   = fault.Event
	FaultExp     = fault.Exp
	FaultCascade = fault.Cascade
)

// Fault kinds, and the AnyNode random-target selector.
const (
	DiskFailure  = fault.DiskFailure
	IONodeOutage = fault.IONodeOutage
	LatencyStorm = fault.LatencyStorm
	AnyNode      = fault.AnyNode
)

// Incident is one realized fault on the timeline.
type Incident = fault.Incident

// CheckpointConfig is the coordinated checkpoint policy for resilient runs.
type CheckpointConfig = ckpt.Config

// ResilientStudy is a Study run under its fault plan with restart-from-
// checkpoint semantics; ResilientReport its outcome.
type (
	ResilientStudy  = core.ResilientStudy
	ResilientReport = core.ResilientReport
)

// ResilienceReport is the analysis-layer resilience summary; render it with
// RenderResilience.
type ResilienceReport = analysis.ResilienceReport

// RunResilient executes the study under its fault plan, restarting from the
// last committed checkpoint after each fatal fault.
func RunResilient(rs ResilientStudy) (*ResilientReport, error) { return core.RunResilient(rs) }

// TradeoffSweep reruns a resilient study across checkpoint intervals and
// collects the overhead-versus-lost-work curve; render it with
// analysis.RenderTradeoff.
func TradeoffSweep(rs ResilientStudy, intervals []int) ([]analysis.TradeoffPoint, error) {
	return core.TradeoffSweep(rs, intervals)
}

// RenderResilience formats a resilience summary as text.
func RenderResilience(r ResilienceReport) string { return analysis.RenderResilience(r) }

// RenderTradeoff formats a tradeoff sweep as text.
func RenderTradeoff(points []analysis.TradeoffPoint) string { return analysis.RenderTradeoff(points) }
