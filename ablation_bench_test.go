// Ablation benchmarks for the design decisions DESIGN.md calls out and the
// file-system implications §8 discusses: initialization-read strategies
// (single-reader-plus-broadcast vs independent vs collective), the six PFS
// access modes under a many-small-writes workload, the I/O-node stream
// cache, and PPFS aggregation granularity.
package iochar_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/workload"
)

// newBenchMachine builds a small machine for micro-ablations.
func newBenchMachine(b *testing.B, nodes int, mut func(*workload.MachineConfig)) *workload.Machine {
	b.Helper()
	cfg := workload.DefaultMachineConfig()
	cfg.ComputeNodes = nodes
	if mut != nil {
		mut(&cfg)
	}
	m, err := workload.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationInitStrategies compares the three ways ESCAT/RENDER could
// load their initialization data (§5.2/§6.2/§8): one node reads and
// broadcasts (what both codes do), every node reads the file independently
// (what ESCAT's developers measured to be slower), and a collective
// M_GLOBAL read (what §8 argues file systems should offer).
func BenchmarkAblationInitStrategies(b *testing.B) {
	const (
		nodes    = 32
		dataSize = 8 << 20
	)
	strategies := map[string]func(m *workload.Machine) sim.Time{
		"broadcast": func(m *workload.Machine) sim.Time {
			m.PFS.Preload("data", dataSize)
			m.Eng.Spawn("reader", func(p *sim.Process) {
				h, err := m.PFS.Open(p, 0, "data", iotrace.ModeUnix)
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := h.Read(p, dataSize); err != nil {
					b.Error(err)
				}
				m.Mesh.Broadcast(p, 0, nodes, dataSize)
			})
			if err := m.Eng.Run(); err != nil {
				b.Fatal(err)
			}
			return m.Eng.Now()
		},
		"independent": func(m *workload.Machine) sim.Time {
			m.PFS.Preload("data", dataSize)
			for node := 0; node < nodes; node++ {
				node := node
				m.Eng.Spawn(fmt.Sprintf("r%d", node), func(p *sim.Process) {
					h, err := m.PFS.Open(p, node, "data", iotrace.ModeUnix)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := h.Read(p, dataSize); err != nil {
						b.Error(err)
					}
				})
			}
			if err := m.Eng.Run(); err != nil {
				b.Fatal(err)
			}
			return m.Eng.Now()
		},
		"collective": func(m *workload.Machine) sim.Time {
			m.PFS.Preload("data", dataSize)
			for node := 0; node < nodes; node++ {
				node := node
				m.Eng.Spawn(fmt.Sprintf("r%d", node), func(p *sim.Process) {
					h, err := m.PFS.Open(p, node, "data", iotrace.ModeGlobal)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := h.Read(p, dataSize); err != nil {
						b.Error(err)
					}
				})
			}
			if err := m.Eng.Run(); err != nil {
				b.Fatal(err)
			}
			return m.Eng.Now()
		},
	}
	results := map[string]sim.Time{}
	for i := 0; i < b.N; i++ {
		for name, fn := range strategies {
			results[name] = fn(newBenchMachine(b, nodes, nil))
		}
	}
	for name, d := range results {
		b.ReportMetric(d.Seconds(), name+"-s")
	}
}

// BenchmarkAblationAccessModes drives the same workload — every node writes
// 32 x 4 KB records — through each PFS access mode, quantifying §8's point
// that mode choice (synchronization discipline) dominates small-request
// performance.
func BenchmarkAblationAccessModes(b *testing.B) {
	const (
		nodes   = 16
		records = 32
		recSize = 4096
	)
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeAsync,
	}
	results := map[iotrace.AccessMode]sim.Time{}
	for i := 0; i < b.N; i++ {
		for _, mode := range modes {
			mode := mode
			m := newBenchMachine(b, nodes, nil)
			m.PFS.Preload("shared", 0)
			for node := 0; node < nodes; node++ {
				node := node
				m.Eng.Spawn(fmt.Sprintf("w%d", node), func(p *sim.Process) {
					var h *pfs.Handle
					var err error
					if mode == iotrace.ModeRecord {
						h, err = m.PFS.OpenRecord(p, node, "shared", recSize)
					} else {
						h, err = m.PFS.Open(p, node, "shared", mode)
					}
					if err != nil {
						b.Error(err)
						return
					}
					if mode == iotrace.ModeUnix || mode == iotrace.ModeAsync {
						// Independent pointers need disjoint regions.
						if _, err := h.Seek(p, int64(node)*records*recSize, pfs.SeekStart); err != nil {
							b.Error(err)
							return
						}
					}
					for r := 0; r < records; r++ {
						if _, err := h.Write(p, recSize); err != nil {
							b.Error(err)
							return
						}
					}
				})
			}
			if err := m.Eng.Run(); err != nil {
				b.Fatal(err)
			}
			results[mode] = m.Eng.Now()
		}
	}
	for mode, d := range results {
		b.ReportMetric(d.Seconds(), mode.String()+"-s")
	}
}

// BenchmarkAblationStreamCache varies the I/O nodes' stream-cache depth
// under interleaved per-node sequential read streams — the design decision
// that separates RENDER's cheap control-file reads from HTF's
// positioning-bound integral rereads.
func BenchmarkAblationStreamCache(b *testing.B) {
	const (
		nodes  = 16
		reads  = 64 // 64 chunks round-robin over 16 arrays: 4 per array per file
		rdSize = 64 * 1024
	)
	for _, depth := range []int{1, 4, 16} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			var wall sim.Time
			for i := 0; i < b.N; i++ {
				m := newBenchMachine(b, nodes, func(c *workload.MachineConfig) {
					c.PFS.Disk.StreamCache = depth
					// Cheap opens so the storm does not mask the read phase.
					c.PFS.Cost.OpenService = 1 * sim.Millisecond
				})
				for node := 0; node < nodes; node++ {
					name := fmt.Sprintf("f%d", node)
					m.PFS.Preload(name, reads*rdSize)
				}
				for node := 0; node < nodes; node++ {
					node := node
					m.Eng.Spawn(fmt.Sprintf("r%d", node), func(p *sim.Process) {
						h, err := m.PFS.Open(p, node, fmt.Sprintf("f%d", node), iotrace.ModeUnix)
						if err != nil {
							b.Error(err)
							return
						}
						for r := 0; r < reads; r++ {
							if _, err := h.Read(p, rdSize); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				if err := m.Eng.Run(); err != nil {
					b.Fatal(err)
				}
				wall = m.Eng.Now()
			}
			b.ReportMetric(wall.Seconds(), "wall-s")
		})
	}
}

// BenchmarkReplayIONodeSweep replays the reduced ESCAT trace across I/O-node
// populations — the §8 question of how much parallel storage an application
// pattern can exploit.
func BenchmarkReplayIONodeSweep(b *testing.B) {
	trace, err := func() ([]iotrace.Event, error) {
		r, err := core.Run(core.SmallStudy(core.ESCAT))
		if err != nil {
			return nil, err
		}
		return r.Events, nil
	}()
	if err != nil {
		b.Fatal(err)
	}
	results := map[int]sim.Time{}
	for i := 0; i < b.N; i++ {
		for _, ion := range []int{1, 4, 16} {
			mc := workload.DefaultMachineConfig()
			mc.ComputeNodes = 8
			mc.PFS.IONodes = ion
			res, err := replay.Run(trace, replay.Options{Machine: mc})
			if err != nil {
				b.Fatal(err)
			}
			results[ion] = res.Makespan
		}
	}
	for ion, d := range results {
		b.ReportMetric(d.Seconds(), fmt.Sprintf("ionodes%d-s", ion))
	}
}
