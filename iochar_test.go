// Tests of the public facade: everything a library consumer touches.
package iochar_test

import (
	"strings"
	"testing"

	iochar "repro"
)

func TestFacadeAppsAndStudies(t *testing.T) {
	apps := iochar.Apps()
	if len(apps) != 3 {
		t.Fatalf("apps %v", apps)
	}
	for _, app := range apps {
		s := iochar.PaperStudy(app)
		if s.App != app || s.Machine.ComputeNodes == 0 {
			t.Fatalf("paper study %+v", s)
		}
		small := iochar.SmallStudy(app)
		if small.Machine.ComputeNodes >= s.Machine.ComputeNodes {
			t.Fatalf("%s small study not smaller", app)
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	report, err := iochar.Run(iochar.SmallStudy(iochar.RENDER))
	if err != nil {
		t.Fatal(err)
	}
	if report.App != iochar.RENDER {
		t.Fatalf("app %v", report.App)
	}
	tables := report.Tables()
	if len(tables) != 2 || !strings.Contains(tables[0], "RENDER") {
		t.Fatalf("tables %v", tables)
	}
	if _, err := report.Figure(7); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePolicyRun(t *testing.T) {
	pol := iochar.DefaultPolicy()
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	s := iochar.SmallStudy(iochar.ESCAT)
	s.Policy = &pol
	report, err := iochar.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.PolicyStats == nil || report.PolicyStats.BufferedWrites == 0 {
		t.Fatalf("policy stats %+v", report.PolicyStats)
	}
}

func TestFacadeCrossover(t *testing.T) {
	m := iochar.DefaultCrossoverModel()
	if be := m.BreakEvenRate(); be < 5e6 || be > 10e6 {
		t.Fatalf("break-even %f", be)
	}
}
