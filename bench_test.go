// Benchmark harness: one benchmark per reproduced table and figure (the
// experiment index E1-E21 of DESIGN.md). Each benchmark runs the relevant
// paper-scale study end to end and reports, alongside the harness timing,
// the simulated quantities the paper's table or figure is about — so
// `go test -bench=. -benchmem` regenerates every headline number.
package iochar_test

import (
	"testing"

	"fmt"
	iochar "repro"
	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/apps/render"

	"repro/internal/core"
	"repro/internal/iotrace"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

// runPaper executes a paper-scale study once per iteration and returns the
// last report.
func runPaper(b *testing.B, app iochar.AppID, pol *iochar.Policy) *iochar.Report {
	b.Helper()
	var report *iochar.Report
	for i := 0; i < b.N; i++ {
		study := iochar.PaperStudy(app)
		study.Policy = pol
		r, err := iochar.Run(study)
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	return report
}

// --- ESCAT: Tables 1-2, Figures 2-5 (E1-E6) ---

func BenchmarkTable1ESCATOps(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	b.ReportMetric(float64(r.Summary.Total.Count), "ops")
	b.ReportMetric(r.Summary.Total.NodeTime.Seconds(), "io-node-s")
	b.ReportMetric(r.Summary.Row("Seek").Pct, "seek-pct")
	b.ReportMetric(r.Summary.Row("Write").Pct, "write-pct")
}

func BenchmarkTable2ESCATSizes(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	rb := r.Sizes.Read.Buckets()
	wb := r.Sizes.Write.Buckets()
	b.ReportMetric(float64(rb[0]), "reads-lt4K")
	b.ReportMetric(float64(rb[2]), "reads-lt256K")
	b.ReportMetric(float64(wb[0]), "writes-lt4K")
}

func BenchmarkFigure2ESCATReadTimeline(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	fig, err := r.Figure(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(fig.Points)), "points")
}

func BenchmarkFigure3ESCATReadDetail(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	fig, err := r.Figure(3)
	if err != nil {
		b.Fatal(err)
	}
	// The detail figure covers only the initialization spike.
	span := fig.Points[len(fig.Points)-1].T - fig.Points[0].T
	b.ReportMetric(span.Seconds(), "init-span-s")
	b.ReportMetric(float64(len(fig.Points)), "points")
}

func BenchmarkFigure4ESCATWriteTimeline(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	early, late, bursts := r.WriteBurstTrend(30 * sim.Second)
	b.ReportMetric(float64(bursts), "bursts")
	b.ReportMetric(early.Seconds(), "early-spacing-s")
	b.ReportMetric(late.Seconds(), "late-spacing-s")
}

func BenchmarkFigure5ESCATFileAccess(b *testing.B) {
	r := runPaper(b, iochar.ESCAT, nil)
	fig, err := r.Figure(5)
	if err != nil {
		b.Fatal(err)
	}
	files := map[int64]bool{}
	for _, p := range fig.Points {
		files[p.Y] = true
	}
	b.ReportMetric(float64(len(files)), "active-files")
}

// --- RENDER: Tables 3-4, Figures 6-8 (E7-E11, E20) ---

func BenchmarkTable3RENDEROps(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	b.ReportMetric(float64(r.Summary.Total.Count), "ops")
	b.ReportMetric(r.Summary.Row("I/O Wait").Pct, "iowait-pct")
	b.ReportMetric(r.Summary.Row("Write").Pct, "write-pct")
}

func BenchmarkTable4RENDERSizes(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	rb := r.Sizes.Read.Buckets()
	wb := r.Sizes.Write.Buckets()
	b.ReportMetric(float64(rb[3]), "reads-ge256K")
	b.ReportMetric(float64(wb[3]), "writes-ge256K")
}

func BenchmarkFigure6RENDERReadTimeline(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	fig, err := r.Figure(6)
	if err != nil {
		b.Fatal(err)
	}
	// The init->render transition time (paper: ~210 s).
	var transition sim.Time
	for _, e := range r.Events {
		if e.Phase == render.PhaseInit && e.End > transition {
			transition = e.End
		}
	}
	b.ReportMetric(transition.Seconds(), "transition-s")
	b.ReportMetric(float64(len(fig.Points)), "points")
}

func BenchmarkFigure7RENDERWriteTimeline(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	fig, err := r.Figure(7)
	if err != nil {
		b.Fatal(err)
	}
	frames := 0
	for _, p := range fig.Points {
		if p.Y >= 256*1024 {
			frames++
		}
	}
	b.ReportMetric(float64(frames), "frame-writes")
	_ = fig
}

func BenchmarkFigure8RENDERFileAccess(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	fig, err := r.Figure(8)
	if err != nil {
		b.Fatal(err)
	}
	files := map[int64]bool{}
	for _, p := range fig.Points {
		files[p.Y] = true
	}
	b.ReportMetric(float64(len(files)), "active-files")
}

func BenchmarkRENDERInitThroughput(b *testing.B) {
	r := runPaper(b, iochar.RENDER, nil)
	b.ReportMetric(r.InitReadThroughput()/1e6, "MBps")
}

// --- HTF: Tables 5-6, Figures 9-17 (E12-E17) ---

func BenchmarkTable5HTFOps(b *testing.B) {
	r := runPaper(b, iochar.HTF, nil)
	for _, ph := range []string{htf.PhasePsetup, htf.PhasePargos, htf.PhasePscf} {
		s := r.PhaseSummary(ph)
		b.ReportMetric(float64(s.Total.Count), ph+"-ops")
	}
	b.ReportMetric(r.PhaseSummary(htf.PhasePargos).Row("Open").Pct, "pargos-open-pct")
	b.ReportMetric(r.PhaseSummary(htf.PhasePscf).Row("Read").Pct, "pscf-read-pct")
}

func BenchmarkTable6HTFSizes(b *testing.B) {
	r := runPaper(b, iochar.HTF, nil)
	pargos := r.PhaseSizes(htf.PhasePargos)
	pscf := r.PhaseSizes(htf.PhasePscf)
	b.ReportMetric(float64(pargos.Write.Buckets()[2]), "pargos-writes-lt256K")
	b.ReportMetric(float64(pscf.Read.Buckets()[2]), "pscf-reads-lt256K")
}

func benchHTFPhaseFigure(b *testing.B, readFig int) {
	r := runPaper(b, iochar.HTF, nil)
	rf, err := r.Figure(readFig)
	if err != nil {
		b.Fatal(err)
	}
	wf, err := r.Figure(readFig + 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(rf.Points)), "read-points")
	b.ReportMetric(float64(len(wf.Points)), "write-points")
}

func BenchmarkFigure9And10HTFInitTimelines(b *testing.B)      { benchHTFPhaseFigure(b, 9) }
func BenchmarkFigure11And12HTFIntegralTimelines(b *testing.B) { benchHTFPhaseFigure(b, 11) }
func BenchmarkFigure13And14HTFSCFTimelines(b *testing.B)      { benchHTFPhaseFigure(b, 13) }

func BenchmarkFigure15To17HTFFileAccess(b *testing.B) {
	r := runPaper(b, iochar.HTF, nil)
	for _, n := range []int{15, 16, 17} {
		fig, err := r.Figure(n)
		if err != nil {
			b.Fatal(err)
		}
		files := map[int64]bool{}
		for _, p := range fig.Points {
			files[p.Y] = true
		}
		b.ReportMetric(float64(len(files)), fig.ID+"-files")
	}
}

// --- Policy and analysis experiments (E18, E19, E21) ---

// BenchmarkAblationESCATWriteBehind is the §5.2 experiment: ESCAT through
// PPFS write-behind + aggregation, against the raw-PFS baseline. It uses a
// 32-node, 20-cycle configuration so both sides run in one benchmark
// iteration.
func BenchmarkAblationESCATWriteBehind(b *testing.B) {
	cfg := escat.DefaultConfig()
	cfg.Nodes = 32
	cfg.Iterations = 20
	cfg.ComputeStart = 20 * sim.Second
	cfg.ComputeEnd = 10 * sim.Second
	var baseWrite, layeredWrite sim.Time
	var sweeps int64
	for i := 0; i < b.N; i++ {
		run := func(pol *iochar.Policy) *iochar.Report {
			study := iochar.PaperStudy(iochar.ESCAT)
			study.ESCATConfig = &cfg
			study.Machine.ComputeNodes = cfg.Nodes
			study.Policy = pol
			r, err := iochar.Run(study)
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		base := run(nil)
		pol := iochar.DefaultPolicy()
		layered := run(&pol)
		baseWrite = base.Summary.Row("Write").NodeTime
		layeredWrite = layered.Summary.Row("Write").NodeTime
		sweeps = layered.PolicyStats.Flushes
	}
	b.ReportMetric(baseWrite.Seconds(), "pfs-write-s")
	b.ReportMetric(layeredWrite.Seconds(), "ppfs-write-s")
	b.ReportMetric(float64(sweeps), "aggregated-sweeps")
}

// BenchmarkCacheESCATReads is the §8 I/O-node cache what-if at paper scale:
// ESCAT's small sequential reads with and without the per-node block cache.
// The simulated metrics record the pre/post mean read latency and the hit
// ratio that produced the change.
func BenchmarkCacheESCATReads(b *testing.B) {
	meanRead := func(r *iochar.Report) sim.Time {
		var n int64
		var t sim.Time
		for _, label := range []string{"Read", "AsynchRead"} {
			if row := r.Summary.Row(label); row != nil {
				n += row.Count
				t += row.NodeTime
			}
		}
		if n == 0 {
			return 0
		}
		return t / sim.Time(n)
	}
	var base, cached sim.Time
	var hit float64
	for i := 0; i < b.N; i++ {
		run := func(on bool) *iochar.Report {
			study := iochar.PaperStudy(iochar.ESCAT)
			if on {
				study.Machine.PFS.Cache = iochar.DefaultCacheConfig()
			}
			r, err := iochar.Run(study)
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		baseR, cachedR := run(false), run(true)
		base, cached = meanRead(baseR), meanRead(cachedR)
		hit = cachedR.Cache.Total.HitRatio()
	}
	b.ReportMetric(base.Seconds()*1e3, "pfs-read-ms")
	b.ReportMetric(cached.Seconds()*1e3, "cached-read-ms")
	b.ReportMetric(100*hit, "hit-pct")
}

func BenchmarkCrossoverHTFRecompute(b *testing.B) {
	m := core.DefaultCrossoverModel()
	var breakEven float64
	for i := 0; i < b.N; i++ {
		rates := make([]float64, 0, 64)
		for r := 0.5e6; r <= 32e6; r *= 1.1 {
			rates = append(rates, r)
		}
		pts := m.Sweep(rates)
		for _, p := range pts {
			if p.ReadWins {
				breakEven = p.IORate
				break
			}
		}
	}
	b.ReportMetric(breakEven/1e6, "breakeven-MBps")
}

func BenchmarkAdaptiveClassifier(b *testing.B) {
	// Classify the full ESCAT trace's streams (E21): throughput of the
	// classifier plus the resulting pattern mix.
	study := iochar.PaperStudy(iochar.ESCAT)
	report, err := iochar.Run(study)
	if err != nil {
		b.Fatal(err)
	}
	events := report.Events
	b.ResetTimer()
	var seq, other int
	for i := 0; i < b.N; i++ {
		c := ppfs.NewClassifier()
		for _, e := range events {
			c.Observe(e.File, e.Node, e.Op, e.Offset, e.Bytes)
		}
		seq, other = 0, 0
		for node := 0; node < 128; node++ {
			for _, f := range []iotrace.FileID{7, 8} {
				if c.Classify(f, node).Pattern == ppfs.PatternSequential {
					seq++
				} else {
					other++
				}
			}
		}
	}
	b.ReportMetric(float64(seq), "sequential-streams")
	b.ReportMetric(float64(other), "other-streams")
	_ = analysis.HumanBytes
}

// BenchmarkScalingESCATNodes sweeps the compute-partition size with per-node
// work fixed (experiment A5): the superlinear node-time growth of the
// shared-file small-write pattern.
func BenchmarkScalingESCATNodes(b *testing.B) {
	var pts []core.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.ESCATScaling([]int{16, 32, 64}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.SeekWrite.Seconds(), fmt.Sprintf("nodes%d-seekwrite-s", p.Nodes))
	}
}

// BenchmarkRecomputeVsRereadHTF runs the §7.2 decision in simulation: the
// SCF phase with stored-integral rereads vs integral recomputation, on the
// traced (slow) I/O system. The paper's conclusion — recomputation wins
// until per-node I/O reaches 5-10 MB/s — shows up as wall-clock times.
func BenchmarkRecomputeVsRereadHTF(b *testing.B) {
	var reread, recompute float64
	for i := 0; i < b.N; i++ {
		run := func(rc bool) float64 {
			cfg := htf.SmallConfig()
			cfg.Nodes = 16
			cfg.IntegralRecords = 96
			cfg.SCFPasses = 3
			cfg.RecomputeIntegrals = rc
			study := iochar.PaperStudy(iochar.HTF)
			study.HTFConfig = &cfg
			study.Machine.ComputeNodes = cfg.Nodes
			r, err := iochar.Run(study)
			if err != nil {
				b.Fatal(err)
			}
			return r.Wall.Seconds()
		}
		reread = run(false)
		recompute = run(true)
	}
	b.ReportMetric(reread, "reread-wall-s")
	b.ReportMetric(recompute, "recompute-wall-s")
}
