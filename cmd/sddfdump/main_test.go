package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sddf"
)

func TestSmokeDumpAndConvert(t *testing.T) {
	r, err := core.Run(core.SmallStudy(core.ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "escat.sddf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sddf.WriteTrace(f, r.Events, false); err != nil {
		t.Fatal(err)
	}
	f.Close()

	capture := func(args ...string) string {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	conv := filepath.Join(dir, "escat.ascii.sddf")
	a := capture("-events", "3", "-convert", conv, "-ascii", path)
	if a != capture("-events", "3", "-convert", conv, "-ascii", path) {
		t.Error("dump output nondeterministic")
	}
	for _, want := range []string{"Operation summary", "Request sizes", "node=", "converted to"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The converted ASCII file must round-trip.
	cf, err := os.Open(conv)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sddf.ReadTrace(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(r.Events) {
		t.Errorf("round-trip %d events, want %d", len(back), len(r.Events))
	}
}

func TestSmokeDumpUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file argument accepted")
	}
}
