// Command sddfdump inspects and converts SDDF trace files produced by
// iochar: it prints a summary, dumps events, or converts between the binary
// and ASCII encodings.
//
// Usage:
//
//	sddfdump [-summary] [-events N] [-convert OUT -ascii] FILE
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/sddf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sddfdump: ")
	summary := flag.Bool("summary", true, "print an operation summary")
	events := flag.Int("events", 0, "print the first N events")
	convert := flag.String("convert", "", "re-encode the trace to this file")
	ascii := flag.Bool("ascii", false, "use ASCII SDDF for -convert output")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: sddfdump [flags] FILE")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sddf.ReadTrace(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d events\n\n", flag.Arg(0), len(trace))

	if *summary {
		fmt.Println(analysis.Summarize(trace).Render("Operation summary"))
		fmt.Println(analysis.Sizes(trace).Render("Request sizes"))
	}
	for i := 0; i < *events && i < len(trace); i++ {
		e := trace[i]
		fmt.Printf("%10.6fs node=%-3d %-10s file=%-3d off=%-10d bytes=%-8d dur=%.6fs mode=%s phase=%q\n",
			e.Start.Seconds(), e.Node, e.Op, e.File, e.Offset, e.Bytes,
			e.Duration().Seconds(), e.Mode, e.Phase)
	}

	if *convert != "" {
		out, err := os.Create(*convert)
		if err != nil {
			log.Fatal(err)
		}
		if err := sddf.WriteTrace(out, trace, *ascii); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("converted to %s (ascii=%v)\n", *convert, *ascii)
	}
}
