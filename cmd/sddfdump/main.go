// Command sddfdump inspects and converts SDDF trace files produced by
// iochar: it prints a summary, dumps events, or converts between the binary
// and ASCII encodings.
//
// Usage:
//
//	sddfdump [-summary] [-events N] [-convert OUT -ascii] FILE
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/sddf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sddfdump: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sddfdump", flag.ContinueOnError)
	summary := fs.Bool("summary", true, "print an operation summary")
	events := fs.Int("events", 0, "print the first N events")
	convert := fs.String("convert", "", "re-encode the trace to this file")
	ascii := fs.Bool("ascii", false, "use ASCII SDDF for -convert output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sddfdump [flags] FILE")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	trace, err := sddf.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d events\n\n", fs.Arg(0), len(trace))

	if *summary {
		fmt.Fprintln(out, analysis.Summarize(trace).Render("Operation summary"))
		fmt.Fprintln(out, analysis.Sizes(trace).Render("Request sizes"))
	}
	for i := 0; i < *events && i < len(trace); i++ {
		e := trace[i]
		fmt.Fprintf(out, "%10.6fs node=%-3d %-10s file=%-3d off=%-10d bytes=%-8d dur=%.6fs mode=%s phase=%q\n",
			e.Start.Seconds(), e.Node, e.Op, e.File, e.Offset, e.Bytes,
			e.Duration().Seconds(), e.Mode, e.Phase)
	}

	if *convert != "" {
		o, err := os.Create(*convert)
		if err != nil {
			return err
		}
		if err := sddf.WriteTrace(o, trace, *ascii); err != nil {
			return err
		}
		if err := o.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "converted to %s (ascii=%v)\n", *convert, *ascii)
	}
	return nil
}
