package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmokeSmallRunDeterministic(t *testing.T) {
	capture := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-app", "escat", "-small"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := capture(), capture()
	if a == "" {
		t.Fatal("no output")
	}
	if a != b {
		t.Error("two identical runs produced different output")
	}
	for _, want := range []string{"escat: wall clock", "I/O operations", "File lifetime summary"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSmokeChaosRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-app", "escat", "-small", "-mtbf", "3", "-outage", "0.5", "-seed", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Resilience report:") {
		t.Errorf("chaos run printed no resilience report:\n%.400s", buf.String())
	}
}

func TestSmokeBadPolicy(t *testing.T) {
	if err := run([]string{"-small", "-policy", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// capture runs the CLI with args and returns its full output.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// sections returns the first line of every report section (lines ending in
// a colon plus the table headers), the schema the cache flag must not alter.
func sections(out string) []string {
	var heads []string
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasSuffix(trimmed, ":") && !strings.Contains(trimmed, " -> ") {
			heads = append(heads, trimmed)
		}
	}
	return heads
}

func TestSmokeCacheFlagAddsStatsKeepsSchema(t *testing.T) {
	off := capture(t, "-app", "escat", "-small")
	on := capture(t, "-app", "escat", "-small", "-cache")

	if strings.Contains(off, "Cache effectiveness:") {
		t.Error("uncached run printed a cache report")
	}
	if !strings.Contains(on, "Cache effectiveness:") {
		t.Error("cached run printed no cache report")
	}
	// Apart from the added cache section, the report schema is identical.
	offHeads := sections(off)
	var onHeads []string
	for _, h := range sections(on) {
		if h == "Cache effectiveness:" || h == "per node:" {
			continue
		}
		onHeads = append(onHeads, h)
	}
	if strings.Join(offHeads, "\n") != strings.Join(onHeads, "\n") {
		t.Errorf("cache flag changed the report sections:\noff: %v\non:  %v", offHeads, onHeads)
	}
}

func TestSmokeCachedRunsByteIdentical(t *testing.T) {
	args := []string{"-app", "htf", "-small", "-cache", "-cache-mb", "4"}
	a := capture(t, args...)
	b := capture(t, args...)
	if a == "" {
		t.Fatal("no output")
	}
	if a != b {
		t.Error("two identical cached runs produced different output")
	}
}

func TestSmokeCacheNoPrefetch(t *testing.T) {
	out := capture(t, "-app", "escat", "-small", "-cache", "-prefetch=false")
	if !strings.Contains(out, "Cache effectiveness:") {
		t.Fatal("no cache report")
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "prefetch") && strings.Contains(line, "issued") {
			if !strings.Contains(line, "0 issued") {
				t.Errorf("prefetch disabled but line says %q", strings.TrimSpace(line))
			}
		}
	}
}
