package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmokeSmallRunDeterministic(t *testing.T) {
	capture := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-app", "escat", "-small"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := capture(), capture()
	if a == "" {
		t.Fatal("no output")
	}
	if a != b {
		t.Error("two identical runs produced different output")
	}
	for _, want := range []string{"escat: wall clock", "I/O operations", "File lifetime summary"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSmokeChaosRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-app", "escat", "-small", "-mtbf", "3", "-outage", "0.5", "-seed", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Resilience report:") {
		t.Errorf("chaos run printed no resilience report:\n%.400s", buf.String())
	}
}

func TestSmokeBadPolicy(t *testing.T) {
	if err := run([]string{"-small", "-policy", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad policy accepted")
	}
}
