// Command iochar runs one application under the simulated Paragon/PFS
// machine (optionally through the PPFS policy layer) and reports its I/O
// characterization: operation-summary and request-size tables, per-file
// lifetime summaries, and (optionally) an SDDF trace file.
//
// Usage:
//
//	iochar -app escat [-small] [-policy none|ppfs|adaptive]
//	       [-cache] [-cache-mb MB] [-prefetch=false]
//	       [-collective] [-aggregators N] [-sched cscan]
//	       [-burst] [-burst-mb MB] [-burst-drain MB/s] [-compress RATIO]
//	       [-trace FILE] [-trace-ascii] [-window SECONDS] [-figures DIR]
//	       [-mtbf SECONDS -seed N]
//	       [-corrupt all|bit-rot,torn-write,misdirected-write] [-scrub]
//	       [-deadline SECONDS] [-retries N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/ppfs"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/sddf"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iochar: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iochar", flag.ContinueOnError)
	app := fs.String("app", "escat", "application to run (escat, render, htf)")
	small := fs.Bool("small", false, "reduced-scale configuration (fast)")
	policy := fs.String("policy", "none", "file system policy layer: none, ppfs, adaptive")
	traceFile := fs.String("trace", "", "write the SDDF event trace to this file")
	traceASCII := fs.Bool("trace-ascii", false, "write the trace in ASCII SDDF instead of binary")
	summaryFile := fs.String("summaries", "", "write the Pablo reductions as SDDF records to this file")
	jsonFile := fs.String("json", "", "write the characterization results as JSON to this file")
	window := fs.Float64("window", 10, "time-window reduction width in seconds")
	figures := fs.String("figures", "", "write figure CSV/ASCII files to this directory")
	cacheFlags := cliflags.AddCache(fs)
	collFlags := cliflags.AddCollective(fs)
	burstFlags := cliflags.AddBurst(fs)
	scenarioFlag := cliflags.AddScenario(fs, "scenario")
	shardFlags := cliflags.AddShards(fs)
	shardFlags.AddIOShards(fs)
	mtbf := fs.Float64("mtbf", 0, "inject I/O-node outages with this exponential mean time between failures in seconds (0 = none)")
	outage := fs.Float64("outage", 5, "duration in seconds of each injected outage")
	chaosWindow := fs.Float64("chaos-window", 600, "stop injecting faults after this many simulated seconds")
	seed := fs.Uint64("seed", 0, "seed for the injected-fault schedule")
	relFlags := cliflags.AddReliability(fs)
	repFlags := cliflags.AddReplication(fs)
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	var study core.Study
	var fleetOpts *core.FleetOptions
	ioShards := shardFlags.IOShardCount()
	if sc, ok, err := scenarioFlag.Load(); err != nil {
		return err
	} else if ok {
		// A scenario file drives the whole study — app, scale, policy,
		// features, fleet and chaos — so the flag-driven knobs below are
		// bypassed. iochar runs a single attempt of it (no restart loop;
		// use 'stress scenario run' for the resilience semantics).
		rs, fleet, err := sc.Build()
		if err != nil {
			return err
		}
		study = rs.Study
		*app = sc.Workload.App
		if study.Burst.Enabled {
			// iochar runs without checkpointing: route the application's
			// bulk output through the log by name prefix, as with -burst.
			study.Burst.Prefixes = append(core.OutputPrefixes(core.AppID(*app)), study.Burst.Prefixes...)
		}
		if fl := scenario.RenderFleet(fleet); fl != "" {
			fmt.Fprint(out, fl)
		}
		if fo, isFleet := sc.FleetOptions(shardFlags.Count()); isFleet {
			fleetOpts = &fo
		} else if sc.IOShards() > 0 {
			ioShards = sc.IOShards()
		}
	} else {
		if *small {
			study = core.SmallStudy(core.AppID(*app))
		} else {
			study = core.PaperStudy(core.AppID(*app))
		}
		study.WindowWidth = sim.FromSeconds(*window)

		switch *policy {
		case "none":
		case "ppfs":
			pol := ppfs.DefaultPolicy()
			study.Policy = &pol
		case "adaptive":
			pol := ppfs.DefaultPolicy()
			pol.Adaptive = true
			study.Policy = &pol
		default:
			return fmt.Errorf("unknown policy %q", *policy)
		}

		cacheFlags.Apply(&study.Machine.PFS)
		if err := collFlags.Apply(&study.Machine.PFS); err != nil {
			return err
		}
		if bcfg, err := burstFlags.Config(); err != nil {
			return err
		} else if bcfg.Enabled {
			// iochar runs without checkpointing, so route the application's bulk
			// output files through the log by name prefix — otherwise the tier
			// would sit idle (no application in the suite uses M_LOG).
			bcfg.Prefixes = append(core.OutputPrefixes(core.AppID(*app)), bcfg.Prefixes...)
			study.Burst = bcfg
		}

		if *mtbf > 0 {
			// Chaos runs need the failover policy on (with replication) so the
			// application survives the injected outages.
			study.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
			study.Machine.PFS.Failover.Replicate = true
			study.Faults = fault.Plan{Exps: []fault.Exp{{
				Kind:        fault.IONodeOutage,
				MeanBetween: sim.FromSeconds(*mtbf),
				Start:       0, End: sim.FromSeconds(*chaosWindow),
				Node:     fault.AnyNode,
				Duration: sim.FromSeconds(*outage),
			}}}
			study.FaultSeed = *seed
		}

		relFlags.Apply(&study.Machine.PFS, sim.FromSeconds(*chaosWindow))
		if err := repFlags.Apply(&study.Machine.PFS); err != nil {
			return err
		}
		if cp, ok, err := relFlags.CorruptionPlan(&study.Machine.PFS, sim.FromSeconds(*chaosWindow)); err != nil {
			return err
		} else if ok {
			study.Faults.Corruption = cp
			study.FaultSeed = *seed
		}
	}

	var report *core.Report
	if fleetOpts != nil {
		// Multi-cell scenario: run the fleet on the sharded engine and
		// characterize the representative cell (cell 0 keeps the study's
		// own fault timeline).
		fr, err := core.RunFleet(study, *fleetOpts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, scenario.RenderFleetRun(fr))
		report = fr.Cells[0]
	} else if ioShards > 0 {
		// Intra-machine partitioned run: the compute partition on a frontend
		// shard, the I/O nodes split across -ioshards server shards. Results
		// match at any -shards worker bound.
		sr, err := core.RunSharded(study, core.ShardedOptions{
			IOShards: ioShards, Workers: shardFlags.Count(), Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Partitioned machine: %d fabric shards (%d workers), %d cross-shard mails\n",
			sr.Fabric.Shards, sr.Fabric.Workers, sr.Fabric.Mail)
		report = sr.Report
	} else {
		var err error
		report, err = core.Run(study)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "%s: wall clock %.2f s, %d I/O events\n\n", *app, report.Wall.Seconds(), len(report.Events))
	for _, table := range report.Tables() {
		fmt.Fprintln(out, table)
	}
	printLifetimes(out, report)
	fmt.Fprintln(out, analysis.RenderPurposes(report.Purposes()))
	fmt.Fprintln(out, analysis.RenderPatternSummary(report.Events))
	fmt.Fprintln(out, analysis.RenderActivity(report.Windows, 72))
	if report.PolicyStats != nil {
		s := *report.PolicyStats
		fmt.Fprintf(out, "PPFS policy activity: %d buffered writes, %d direct, %d flush extents (mean %s), %d drains, %d prefetches\n\n",
			s.BufferedWrites, s.DirectWrites, s.Flushes,
			analysis.HumanBytes(s.MeanFlushExtent()), s.Drains, s.Prefetches)
	}
	if report.Cache != nil {
		fmt.Fprintln(out, analysis.RenderCacheReport(report.Cache))
	}
	if report.Collective != nil {
		fmt.Fprintln(out, analysis.RenderCollectiveReport(report.Collective))
	}
	if len(report.Sched) > 0 {
		fmt.Fprintln(out, analysis.RenderSchedReport(report.Sched))
	}
	if report.Burst != nil {
		fmt.Fprintln(out, analysis.RenderBurstReport(report.Burst))
	}
	if report.Integrity != nil {
		fmt.Fprintln(out, analysis.RenderIntegrityReport(report.Integrity))
	}
	if len(report.Incidents) > 0 {
		fmt.Fprintln(out, analysis.RenderResilience(report.Resilience()))
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := sddf.WriteTrace(f, report.Events, *traceASCII); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d events -> %s\n", len(report.Events), *traceFile)
	}

	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "json -> %s\n", *jsonFile)
	}

	if *summaryFile != "" {
		f, err := os.Create(*summaryFile)
		if err != nil {
			return err
		}
		if err := sddf.WriteSummaries(f, *traceASCII, report.Lifetime, report.Windows, nil, report.Wall); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "summaries -> %s\n", *summaryFile)
	}

	if *figures != "" {
		if err := os.MkdirAll(*figures, 0o755); err != nil {
			return err
		}
		for _, fig := range report.Figures() {
			f, err := os.Create(filepath.Join(*figures, fig.ID+".csv"))
			if err != nil {
				return err
			}
			if err := analysis.WriteCSV(f, fig.Points); err != nil {
				return err
			}
			f.Close()
			txt := analysis.RenderScatter(fig.Points, analysis.PlotOptions{Title: fig.Title, LogY: fig.LogY})
			if err := os.WriteFile(filepath.Join(*figures, fig.ID+".txt"), []byte(txt), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "figures: %d -> %s\n", len(report.Figures()), *figures)
	}
	return nil
}

// printLifetimes shows the Pablo file-lifetime reduction.
func printLifetimes(out io.Writer, r *core.Report) {
	fmt.Fprintln(out, "File lifetime summary (Pablo reduction):")
	fmt.Fprintf(out, "%4s %8s %8s %8s %12s %12s %12s\n",
		"file", "reads", "writes", "seeks", "bytes read", "bytes written", "open time")
	for _, f := range r.Lifetime.Files() {
		fmt.Fprintf(out, "%4d %8d %8d %8d %12s %12s %12.2fs\n",
			f.File,
			f.Count[iotrace.OpRead]+f.Count[iotrace.OpAsyncRead],
			f.Count[iotrace.OpWrite],
			f.Count[iotrace.OpSeek],
			analysis.HumanBytes(f.BytesRead),
			analysis.HumanBytes(f.BytesWritten),
			f.FinalOpenTime(r.Wall).Seconds())
	}
	fmt.Fprintln(out)
}
