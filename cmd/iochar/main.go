// Command iochar runs one application under the simulated Paragon/PFS
// machine (optionally through the PPFS policy layer) and reports its I/O
// characterization: operation-summary and request-size tables, per-file
// lifetime summaries, and (optionally) an SDDF trace file.
//
// Usage:
//
//	iochar -app escat [-small] [-policy none|ppfs|adaptive]
//	       [-trace FILE] [-trace-ascii] [-window SECONDS] [-figures DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/iotrace"
	"repro/internal/ppfs"
	"repro/internal/sddf"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iochar: ")
	app := flag.String("app", "escat", "application to run (escat, render, htf)")
	small := flag.Bool("small", false, "reduced-scale configuration (fast)")
	policy := flag.String("policy", "none", "file system policy layer: none, ppfs, adaptive")
	traceFile := flag.String("trace", "", "write the SDDF event trace to this file")
	traceASCII := flag.Bool("trace-ascii", false, "write the trace in ASCII SDDF instead of binary")
	summaryFile := flag.String("summaries", "", "write the Pablo reductions as SDDF records to this file")
	jsonFile := flag.String("json", "", "write the characterization results as JSON to this file")
	window := flag.Float64("window", 10, "time-window reduction width in seconds")
	figures := flag.String("figures", "", "write figure CSV/ASCII files to this directory")
	flag.Parse()

	var study core.Study
	if *small {
		study = core.SmallStudy(core.AppID(*app))
	} else {
		study = core.PaperStudy(core.AppID(*app))
	}
	study.WindowWidth = sim.FromSeconds(*window)

	switch *policy {
	case "none":
	case "ppfs":
		pol := ppfs.DefaultPolicy()
		study.Policy = &pol
	case "adaptive":
		pol := ppfs.DefaultPolicy()
		pol.Adaptive = true
		study.Policy = &pol
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	report, err := core.Run(study)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: wall clock %.2f s, %d I/O events\n\n", *app, report.Wall.Seconds(), len(report.Events))
	for _, table := range report.Tables() {
		fmt.Println(table)
	}
	printLifetimes(report)
	fmt.Println(analysis.RenderPurposes(report.Purposes()))
	fmt.Println(analysis.RenderPatternSummary(report.Events))
	fmt.Println(analysis.RenderActivity(report.Windows, 72))
	if report.PolicyStats != nil {
		s := *report.PolicyStats
		fmt.Printf("PPFS policy activity: %d buffered writes, %d direct, %d flush extents (mean %s), %d drains, %d prefetches\n\n",
			s.BufferedWrites, s.DirectWrites, s.Flushes,
			analysis.HumanBytes(s.MeanFlushExtent()), s.Drains, s.Prefetches)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := sddf.WriteTrace(f, report.Events, *traceASCII); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(report.Events), *traceFile)
	}

	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("json -> %s\n", *jsonFile)
	}

	if *summaryFile != "" {
		f, err := os.Create(*summaryFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := sddf.WriteSummaries(f, *traceASCII, report.Lifetime, report.Windows, nil, report.Wall); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("summaries -> %s\n", *summaryFile)
	}

	if *figures != "" {
		if err := os.MkdirAll(*figures, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, fig := range report.Figures() {
			f, err := os.Create(filepath.Join(*figures, fig.ID+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := analysis.WriteCSV(f, fig.Points); err != nil {
				log.Fatal(err)
			}
			f.Close()
			txt := analysis.RenderScatter(fig.Points, analysis.PlotOptions{Title: fig.Title, LogY: fig.LogY})
			if err := os.WriteFile(filepath.Join(*figures, fig.ID+".txt"), []byte(txt), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("figures: %d -> %s\n", len(report.Figures()), *figures)
	}
}

// printLifetimes shows the Pablo file-lifetime reduction.
func printLifetimes(r *core.Report) {
	fmt.Println("File lifetime summary (Pablo reduction):")
	fmt.Printf("%4s %8s %8s %8s %12s %12s %12s\n",
		"file", "reads", "writes", "seeks", "bytes read", "bytes written", "open time")
	for _, f := range r.Lifetime.Files() {
		fmt.Printf("%4d %8d %8d %8d %12s %12s %12.2fs\n",
			f.File,
			f.Count[iotrace.OpRead]+f.Count[iotrace.OpAsyncRead],
			f.Count[iotrace.OpWrite],
			f.Count[iotrace.OpSeek],
			analysis.HumanBytes(f.BytesRead),
			analysis.HumanBytes(f.BytesWritten),
			f.FinalOpenTime(r.Wall).Seconds())
	}
	fmt.Println()
}
