package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioFlagDrivesStudy: -scenario replaces the flag-driven knobs with
// the file's study and stays deterministic.
func TestScenarioFlagDrivesStudy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cachey.yaml")
	body := `
name: cachey
workload:
  app: escat
  scale: small
features:
  cache:
    enabled: true
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	a := capture(t, "-scenario", path)
	b := capture(t, "-scenario", path)
	if a != b {
		t.Error("scenario-driven iochar run not byte-identical")
	}
	if !strings.Contains(a, "escat:") || !strings.Contains(a, "Cache effectiveness:") {
		t.Errorf("scenario study not applied (app header or cache section missing):\n%.600s", a)
	}
}

// TestScenarioFlagMatchesFlagRun: the default-shape scenario reproduces the
// equivalent flag invocation byte for byte. The scenario DSL defaults
// failover on (stress parity); bare iochar runs without it, so the scenario
// pins it off to match.
func TestScenarioFlagMatchesFlagRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "default.yaml")
	body := `
workload:
  app: escat
  scale: small
features:
  failover:
    enabled: false
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	flags := capture(t, "-app", "escat", "-small")
	scen := capture(t, "-scenario", path)
	if flags != scen {
		t.Fatalf("scenario run diverged from flag run\nflags:\n%.400s\nscenario:\n%.400s", flags, scen)
	}
}

func TestScenarioFlagBadFile(t *testing.T) {
	if err := run([]string{"-scenario", "/does/not/exist.yaml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing scenario file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(path, []byte("workload:\n  app: doom\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
