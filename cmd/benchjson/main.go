// Command benchjson runs the repository's Go benchmarks and writes the
// results as JSON — a make-free wrapper so CI and PR descriptions can record
// ns/op (and the simulated metrics each benchmark reports) without scraping
// test output by hand.
//
// Usage:
//
//	benchjson [-bench REGEXP] [-pkg PKG] [-benchtime 1x] [-count 1] [-shards N] [-out BENCH_2.json]
//
// It shells out to `go test -run ^$ -bench ...` (the toolchain is a build
// prerequisite of this repository, so no extra tooling is needed) and parses
// the standard benchmark output lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cliflags"
)

// Result is one benchmark's parsed outcome. WallS is the measured loop's
// total wall-clock (ns/op × iterations) and is emitted for every benchmark
// line — single-machine runs and fleet sweeps alike — so scaling curves can
// be plotted without re-deriving it. B/op and allocs/op get first-class
// fields (matching the names the BENCH_*.json records use) instead of
// landing in the free-form metrics map.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	WallS       float64            `json:"wall_s"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the JSON document benchjson writes. GOMAXPROCS, NumCPU and
// Shards record the host parallelism the numbers were taken at — a sweep's
// wall-clock only reflects the executor's fan-out when the host has cores to
// fan out to, so cross-machine comparisons need this context.
type Output struct {
	Package    string   `json:"package"`
	Bench      string   `json:"bench"`
	BenchTime  string   `json:"benchtime"`
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Shards     int      `json:"shards"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	bench := fs.String("bench", ".", "benchmark regexp passed to -bench")
	pkg := fs.String("pkg", ".", "package to benchmark")
	benchtime := fs.String("benchtime", "1x", "passed to -benchtime")
	count := fs.Int("count", 1, "passed to -count")
	out := fs.String("out", "BENCH_2.json", "output JSON file")
	cpuprofile := fs.String("cpuprofile", "", "passed through to go test: write the benchmarks' CPU profile here")
	memprofile := fs.String("memprofile", "", "passed through to go test: write the benchmarks' heap profile here")
	shardFlags := cliflags.AddShards(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shards := shardFlags.Resolve()

	testArgs := []string{"test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count)}
	if *cpuprofile != "" {
		testArgs = append(testArgs, "-cpuprofile", *cpuprofile)
	}
	if *memprofile != "" {
		testArgs = append(testArgs, "-memprofile", *memprofile)
	}
	cmd := exec.Command("go", append(testArgs, *pkg)...)
	// Shard-sweeping benchmarks read REPRO_SHARDS to bench exactly the
	// host's configured parallelism instead of the default sweep.
	cmd.Env = append(os.Environ(), "REPRO_SHARDS="+strconv.Itoa(shards))
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	results := Parse(string(raw))
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines in go test output")
	}
	doc := Output{
		Package:    *pkg,
		Bench:      *bench,
		BenchTime:  *benchtime,
		GoVersion:  goVersion(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     shards,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("%d benchmarks -> %s", len(results), *out)
	return nil
}

// Parse extracts benchmark results from `go test -bench` output. A line looks
// like:
//
//	BenchmarkName-8   3   12345678 ns/op   4.50 extra-metric   2 ops
//
// Lines that do not start with "Benchmark" are ignored. Results are sorted by
// name (stable across map-free parsing anyway, but explicit).
func Parse(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: name, Procs: procs, Iters: iters}
		// Remaining fields come in (value, unit) pairs.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				r.WallS = v * float64(r.Iters) / 1e9
				ok = true
				continue
			}
			if unit == "B/op" {
				r.BytesPerOp = v
				continue
			}
			if unit == "allocs/op" {
				r.AllocsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		if ok {
			results = append(results, r)
		}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8).
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], n
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
