package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1ESCATOps-8   	       3	  45123456 ns/op	     12345 ops	        88.20 io-node-s
BenchmarkCacheESCATReads-8  	       1	 987654321 ns/op	        38.50 pfs-read-ms	        13.20 cached-read-ms	        69.20 hit-pct
BenchmarkNoMetrics          	     100	     50000 ns/op
BenchmarkSingleMachinePaperScale/app=escat/serial 	       2	 150000000 ns/op	      9205 sim-wall-s	  32625728 B/op	    104236 allocs/op
garbage line that is not a benchmark
BenchmarkBroken-8           	     abc	     50000 ns/op
PASS
ok  	repro	4.567s
`

func TestParse(t *testing.T) {
	rs := Parse(sample)
	if len(rs) != 4 {
		t.Fatalf("%d results, want 4: %+v", len(rs), rs)
	}
	// Sorted by name.
	if rs[0].Name != "BenchmarkCacheESCATReads" || rs[1].Name != "BenchmarkNoMetrics" ||
		rs[2].Name != "BenchmarkSingleMachinePaperScale/app=escat/serial" ||
		rs[3].Name != "BenchmarkTable1ESCATOps" {
		t.Fatalf("order: %+v", rs)
	}
	c := rs[0]
	if c.Procs != 8 || c.Iters != 1 || c.NsPerOp != 987654321 {
		t.Fatalf("cache result %+v", c)
	}
	if c.Metrics["pfs-read-ms"] != 38.50 || c.Metrics["cached-read-ms"] != 13.20 ||
		c.Metrics["hit-pct"] != 69.20 {
		t.Fatalf("cache metrics %+v", c.Metrics)
	}
	n := rs[1]
	if n.Procs != 1 || n.Iters != 100 || n.NsPerOp != 50000 || n.Metrics != nil {
		t.Fatalf("no-metrics result %+v", n)
	}
	// Every line gets wall_s = ns/op x iters, single-machine runs included.
	for _, r := range rs {
		want := r.NsPerOp * float64(r.Iters) / 1e9
		if r.WallS != want {
			t.Errorf("%s: wall_s = %v, want %v", r.Name, r.WallS, want)
		}
	}
	s := rs[2]
	if s.Iters != 2 || s.WallS != 0.3 {
		t.Fatalf("single-machine result %+v", s)
	}
	if s.BytesPerOp != 32625728 || s.AllocsPerOp != 104236 {
		t.Fatalf("single-machine alloc fields %+v", s)
	}
	if s.Metrics["sim-wall-s"] != 9205 || len(s.Metrics) != 1 {
		t.Fatalf("single-machine metrics %+v (B/op and allocs/op must not leak into metrics)", s.Metrics)
	}
	e := rs[3]
	if e.Metrics["ops"] != 12345 || e.Metrics["io-node-s"] != 88.20 {
		t.Fatalf("escat metrics %+v", e.Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	if rs := Parse("PASS\nok repro 0.1s\n"); len(rs) != 0 {
		t.Fatalf("parsed %d results from empty output", len(rs))
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q, %d", tc.in, name, procs)
		}
	}
}
