package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sddf"
)

// captureTrace writes a small ESCAT trace to an SDDF file for the smoke runs.
func captureTrace(t *testing.T) string {
	t.Helper()
	r, err := core.Run(core.SmallStudy(core.ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "escat.sddf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sddf.WriteTrace(f, r.Events, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSmokeReplayDeterministic(t *testing.T) {
	trace := captureTrace(t)
	capture := func(args ...string) string {
		var buf bytes.Buffer
		if err := run(append(args, trace), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := capture(), capture()
	if a == "" || a != b {
		t.Error("replay output empty or nondeterministic")
	}
	if !strings.Contains(a, "Replayed operation summary") {
		t.Errorf("output missing summary:\n%.400s", a)
	}

	j1 := capture("-jitter", "0.3", "-seed", "5")
	j2 := capture("-jitter", "0.3", "-seed", "5")
	if j1 != j2 {
		t.Error("same-seed jittered replays differ")
	}
	if j3 := capture("-jitter", "0.3", "-seed", "6"); j3 == j1 {
		t.Error("different seeds gave identical jittered replay")
	}
}

func TestSmokeReplayUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing trace argument accepted")
	}
}
