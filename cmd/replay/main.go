// Command replay re-executes a captured SDDF application trace against an
// alternative machine configuration — trace-driven "what-if" evaluation:
//
//	iochar -app escat -small -trace escat.sddf     # capture
//	replay -ionodes 32 -stripe 131072 escat.sddf   # what if the machine differed?
//
// It prints the replayed operation summary, the makespan, and (with -sweep)
// an I/O-node scaling table. With -jitter the preserved think gaps are
// perturbed by a seeded random fraction (-seed picks the perturbation).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/replay"
	"repro/internal/sddf"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	ionodes := fs.Int("ionodes", 16, "I/O nodes in the replay machine")
	stripe := fs.Int64("stripe", 64*1024, "stripe unit in bytes")
	nodes := fs.Int("nodes", 0, "compute nodes (0 = infer from trace, min 1 more than max node)")
	think := fs.Bool("think", true, "preserve the trace's inter-request compute gaps")
	jitter := fs.Float64("jitter", 0, "perturb each think gap by up to this fraction (0 = exact replay)")
	seed := fs.Uint64("seed", 0, "seed for the think-gap jitter streams")
	sweep := fs.Bool("sweep", false, "replay across 1..64 I/O nodes and print the scaling table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("usage: replay [flags] TRACE.sddf")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	trace, err := sddf.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	maxNode := 0
	for _, e := range trace {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	compute := *nodes
	if compute == 0 {
		compute = maxNode + 1
	}

	mkOpt := func(ion int) replay.Options {
		mc := workload.DefaultMachineConfig()
		mc.ComputeNodes = compute
		mc.PFS.IONodes = ion
		mc.PFS.StripeUnit = *stripe
		return replay.Options{
			Machine: mc, PreserveThinkTime: *think,
			ThinkJitter: *jitter, Seed: *seed,
		}
	}

	if *sweep {
		fmt.Fprintf(out, "%-10s %12s %14s %10s\n", "I/O nodes", "makespan", "I/O node-time", "skipped")
		for _, ion := range []int{1, 2, 4, 8, 16, 32, 64} {
			res, err := replay.Run(trace, mkOpt(ion))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10d %11.2fs %13.2fs %10d\n",
				ion, res.Makespan.Seconds(), res.Summary.Total.NodeTime.Seconds(), res.Skipped)
		}
		return nil
	}

	res, err := replay.Run(trace, mkOpt(*ionodes))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d events on %d compute + %d I/O nodes (stripe %s)\n",
		len(trace), compute, *ionodes, humanStripe(*stripe))
	fmt.Fprintf(out, "makespan: %.2f s, skipped: %d\n\n", res.Makespan.Seconds(), res.Skipped)
	fmt.Fprintln(out, res.Summary.Render("Replayed operation summary"))
	return nil
}

func humanStripe(n int64) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
