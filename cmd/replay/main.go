// Command replay re-executes a captured SDDF application trace against an
// alternative machine configuration — trace-driven "what-if" evaluation:
//
//	iochar -app escat -small -trace escat.sddf     # capture
//	replay -ionodes 32 -stripe 131072 escat.sddf   # what if the machine differed?
//
// It prints the replayed operation summary, the makespan, and (with -sweep)
// an I/O-node scaling table.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/replay"
	"repro/internal/sddf"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")
	ionodes := flag.Int("ionodes", 16, "I/O nodes in the replay machine")
	stripe := flag.Int64("stripe", 64*1024, "stripe unit in bytes")
	nodes := flag.Int("nodes", 0, "compute nodes (0 = infer from trace, min 1 more than max node)")
	think := flag.Bool("think", true, "preserve the trace's inter-request compute gaps")
	sweep := flag.Bool("sweep", false, "replay across 1..64 I/O nodes and print the scaling table")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: replay [flags] TRACE.sddf")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sddf.ReadTrace(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	maxNode := 0
	for _, e := range trace {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	compute := *nodes
	if compute == 0 {
		compute = maxNode + 1
	}

	mkOpt := func(ion int) replay.Options {
		mc := workload.DefaultMachineConfig()
		mc.ComputeNodes = compute
		mc.PFS.IONodes = ion
		mc.PFS.StripeUnit = *stripe
		return replay.Options{Machine: mc, PreserveThinkTime: *think}
	}

	if *sweep {
		fmt.Printf("%-10s %12s %14s %10s\n", "I/O nodes", "makespan", "I/O node-time", "skipped")
		for _, ion := range []int{1, 2, 4, 8, 16, 32, 64} {
			res, err := replay.Run(trace, mkOpt(ion))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10d %11.2fs %13.2fs %10d\n",
				ion, res.Makespan.Seconds(), res.Summary.Total.NodeTime.Seconds(), res.Skipped)
		}
		return
	}

	res, err := replay.Run(trace, mkOpt(*ionodes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d events on %d compute + %d I/O nodes (stripe %s)\n",
		len(trace), compute, *ionodes, humanStripe(*stripe))
	fmt.Printf("makespan: %.2f s, skipped: %d\n\n", res.Makespan.Seconds(), res.Skipped)
	fmt.Println(res.Summary.Render("Replayed operation summary"))
	_ = sim.Second
}

func humanStripe(n int64) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
