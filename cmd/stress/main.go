// Command stress runs an application under a chaos scenario — disk failures
// degrading RAID-3 arrays, I/O-node outages, latency storms — with
// checkpoint/restart, and prints the resilience report: the attempt history,
// the realized incident timeline, fault exposure, per-fault latency impact,
// and the checkpoint-overhead-versus-lost-work accounting.
//
// Scenarios come from a built-in catalog (-scenario) or a JSON file
// (-config). Everything is seeded: two runs with the same flags produce
// byte-identical reports.
//
// Usage:
//
//	stress -scenario outage -seed 7
//	stress -scenario disks -sweep 0,1,2,4
//	stress -config chaos.json -app escat -ckpt-interval 2
//	stress -scenario none -corrupt all -scrub -deadline 0.5 -retries 4
//	stress -scenario none -burst -burst-mb 64 -compress 1.8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ckpt"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/pfs"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stress: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "scenario" {
		return runScenarioCmd(args[1:], out)
	}
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	app := fs.String("app", "escat", "application to stress (escat, render, htf)")
	small := fs.Bool("small", true, "reduced-scale configuration (chaos scenarios are tuned to it)")
	scenario := fs.String("scenario", "outage", "built-in scenario: outage, disks, storm, mixed, none")
	config := fs.String("config", "", "chaos file: the scenario DSL's chaos section at top level (deprecated alias; prefer 'stress scenario run FILE')")
	seed := fs.Uint64("seed", 0, "seed for the fault schedule's random choices")
	interval := fs.Int("ckpt-interval", 2, "work units between checkpoints (0 = no checkpointing)")
	ckptBytes := fs.Int64("ckpt-bytes", 4096, "checkpoint bytes written per node")
	restartCost := fs.Float64("restart-cost", 1.5, "fixed restart charge in seconds")
	maxAttempts := fs.Int("max-attempts", 8, "give up after this many attempts")
	failover := fs.Bool("failover", true, "enable PFS request failover (off: any outage kills the attempt)")
	replicate := fs.Bool("replicate", true, "mirror stripes so reads survive outages")
	repFlags := cliflags.AddReplication(fs)
	cacheFlags := cliflags.AddCache(fs)
	cacheFlags.AddFlushOnFail(fs)
	collFlags := cliflags.AddCollective(fs)
	burstFlags := cliflags.AddBurst(fs)
	relFlags := cliflags.AddReliability(fs)
	chaosWindow := fs.Float64("chaos-window", 600, "stop injecting corruption (and scrubbing) after this many simulated seconds")
	sweep := fs.String("sweep", "", "comma-separated checkpoint intervals to sweep (e.g. 0,1,2,4)")
	parallel := fs.Int("parallel", 0, "worker goroutines for -sweep (0 = GOMAXPROCS); results are identical at any setting")
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	exec.SetWorkers(*parallel)
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	var study core.Study
	if *small {
		study = core.SmallStudy(core.AppID(*app))
	} else {
		study = core.PaperStudy(core.AppID(*app))
	}
	if *failover {
		study.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
		study.Machine.PFS.Failover.Replicate = *replicate
	}
	if err := repFlags.Apply(&study.Machine.PFS); err != nil {
		return err
	}
	cacheFlags.Apply(&study.Machine.PFS)
	if err := collFlags.Apply(&study.Machine.PFS); err != nil {
		return err
	}
	if bcfg, err := burstFlags.Config(); err != nil {
		return err
	} else if bcfg.Enabled {
		study.Burst = bcfg
	}
	relFlags.Apply(&study.Machine.PFS, sim.FromSeconds(*chaosWindow))

	plan, err := loadPlan(*scenario, *config)
	if err != nil {
		return err
	}
	if cp, ok, err := relFlags.CorruptionPlan(&study.Machine.PFS, sim.FromSeconds(*chaosWindow)); err != nil {
		return err
	} else if ok {
		plan.Corruption = cp
	}
	study.Faults = plan
	study.FaultSeed = *seed

	rs := core.ResilientStudy{
		Study:       study,
		MaxAttempts: *maxAttempts,
		RestartCost: sim.FromSeconds(*restartCost),
	}
	if *interval > 0 {
		rs.Ckpt = ckpt.Config{Interval: *interval, BytesPerNode: *ckptBytes}
	}

	if *sweep != "" {
		intervals, err := parseIntervals(*sweep)
		if err != nil {
			return err
		}
		pts, err := core.TradeoffSweep(rs, intervals)
		if err != nil {
			return err
		}
		fmt.Fprint(out, analysis.RenderTradeoff(pts))
		return nil
	}

	rr, err := core.RunResilient(rs)
	if err != nil {
		return err
	}
	printResilientReport(out, rr)
	return nil
}

// printResilientReport renders the standard stress report sections; the
// scenario runner shares it so scenario-driven and flag-driven runs of the
// same study print byte-identical reports.
func printResilientReport(out io.Writer, rr *core.ResilientReport) {
	printAttempts(out, rr.Attempts)
	printIncidents(out, rr.Incidents)
	if rr.Final != nil && rr.Final.Cache != nil {
		fmt.Fprintln(out, analysis.RenderCacheReport(rr.Final.Cache))
	}
	if rr.Final != nil && rr.Final.Integrity != nil {
		fmt.Fprintln(out, analysis.RenderIntegrityReport(rr.Final.Integrity))
	}
	if rr.Final != nil && rr.Final.Collective != nil {
		fmt.Fprintln(out, analysis.RenderCollectiveReport(rr.Final.Collective))
	}
	if rr.Final != nil && len(rr.Final.Sched) > 0 {
		fmt.Fprintln(out, analysis.RenderSchedReport(rr.Final.Sched))
	}
	if rr.Final != nil && rr.Final.Burst != nil {
		fmt.Fprintln(out, analysis.RenderBurstReport(rr.Final.Burst))
	}
	fmt.Fprint(out, analysis.RenderResilience(rr.Resilience()))
}

// Built-in scenarios, tuned to the small ESCAT run (~7.5 simulated seconds):
// the faults land after the first checkpoint commit and across the
// quadrature writes.
func builtinPlan(name string) (fault.Plan, error) {
	disks := []fault.Event{
		{Kind: fault.DiskFailure, At: 2 * sim.Second, Node: 0},
		{Kind: fault.DiskFailure, At: 3 * sim.Second, Node: 1},
	}
	outage := fault.Cascade{
		Kind: fault.IONodeOutage, At: 4200 * sim.Millisecond,
		Nodes: 16, FirstNode: 0, Duration: 1200 * sim.Millisecond,
	}
	storm := fault.Event{
		Kind: fault.LatencyStorm, At: 2 * sim.Second, Node: fault.AnyNode,
		Duration: 4 * sim.Second, Factor: 4,
	}
	switch name {
	case "none":
		return fault.Plan{}, nil
	case "outage":
		return fault.Plan{Cascades: []fault.Cascade{outage}}, nil
	case "disks":
		return fault.Plan{Events: disks}, nil
	case "storm":
		return fault.Plan{Events: []fault.Event{storm}}, nil
	case "mixed":
		return fault.Plan{
			Events:   append(append([]fault.Event{}, disks...), storm),
			Cascades: []fault.Cascade{outage},
		}, nil
	}
	return fault.Plan{}, fmt.Errorf("unknown scenario %q (want outage, disks, storm, mixed, none)", name)
}

// loadPlan resolves the fault plan: a builtin scenario by name, or — the
// deprecated -config alias — a standalone chaos file parsed by the scenario
// DSL loader (the legacy JSON format is exactly the DSL's chaos section at
// top level, so old files keep working).
func loadPlan(scenario, path string) (fault.Plan, error) {
	if path == "" {
		return builtinPlan(scenario)
	}
	return cliflags.LoadChaosPlan(path)
}

func parseIntervals(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -sweep interval %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func printAttempts(out io.Writer, attempts []core.Attempt) {
	fmt.Fprintf(out, "Attempts:\n")
	fmt.Fprintf(out, "  %3s %12s %12s %12s %6s  %s\n",
		"#", "start", "end", "wall", "from", "outcome")
	for i, a := range attempts {
		outcome := "completed"
		if a.Failed {
			outcome = "failed: " + a.Err
		}
		fmt.Fprintf(out, "  %3d %11.3fs %11.3fs %11.3fs %6d  %s\n",
			i+1, a.Start.Seconds(), a.End.Seconds(), a.Wall().Seconds(),
			a.ResumeUnit, outcome)
	}
	fmt.Fprintln(out)
}

func printIncidents(out io.Writer, incidents []fault.Incident) {
	if len(incidents) == 0 {
		return
	}
	fmt.Fprintf(out, "Incidents:\n")
	fmt.Fprintf(out, "  %12s %12s %6s %-14s %s\n", "start", "end", "node", "kind", "note")
	for _, inc := range incidents {
		fmt.Fprintf(out, "  %11.3fs %11.3fs %6d %-14s %s\n",
			inc.Start.Seconds(), inc.End.Seconds(), inc.Node, inc.Kind, inc.Note)
	}
	fmt.Fprintln(out)
}
