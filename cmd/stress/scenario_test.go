package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioDefaultShapeIsBytePrefixOfFlagRun is the DSL's oracle: a
// default-shape scenario file must reproduce the flag-driven report byte for
// byte, with only the scenario sections appended after it.
func TestScenarioDefaultShapeIsBytePrefixOfFlagRun(t *testing.T) {
	path := writeScenario(t, "default.yaml", "name: default-shape\nworkload:\n  app: escat\n")
	flags := capture(t, "-scenario", "none")
	scen := capture(t, "scenario", "run", path)
	if !strings.HasPrefix(scen, flags) {
		t.Fatalf("flag-driven report is not a byte-prefix of the scenario report\nflags:\n%.400s\nscenario:\n%.400s", flags, scen)
	}
	if !strings.Contains(scen[len(flags):], "Assertions (default-shape)") {
		t.Fatalf("scenario suffix missing assertion section:\n%s", scen[len(flags):])
	}
}

func TestScenarioRunDeterministic(t *testing.T) {
	path := writeScenario(t, "chaos.yaml", `
name: outage-regression
seed: 7
workload:
  app: escat
chaos:
  cascades:
    - kind: ionode-outage
      at_s: 4.2
      nodes: 16
      first_node: 0
      duration_s: 1.2
assertions:
  expected: ok
`)
	a := capture(t, "scenario", "run", path)
	b := capture(t, "scenario", "run", path)
	if a != b {
		t.Error("same scenario file not byte-identical across runs")
	}
	for _, want := range []string{"Attempts:", "ionode-outage", "Assertions (outage-regression): PASS"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q:\n%.600s", want, a)
		}
	}
}

func TestScenarioRunMatchesEquivalentFlagRun(t *testing.T) {
	// The scenario's chaos section mirrors the builtin "outage" plan; the
	// flag run must be a byte-prefix of the scenario run.
	path := writeScenario(t, "outage.yaml", `
name: outage
seed: 7
workload:
  app: escat
chaos:
  cascades:
    - kind: ionode-outage
      at_s: 4.2
      nodes: 16
      first_node: 0
      duration_s: 1.2
`)
	flags := capture(t, "-scenario", "outage", "-seed", "7")
	scen := capture(t, "scenario", "run", path)
	if !strings.HasPrefix(scen, flags) {
		t.Fatalf("outage scenario diverged from -scenario outage:\nflags:\n%.400s\nscenario:\n%.400s", flags, scen)
	}
}

func TestScenarioValidateReportsPerFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.yaml")
	bad := filepath.Join(dir, "bad.yaml")
	os.WriteFile(good, []byte("workload:\n  app: escat\n"), 0o644)
	os.WriteFile(bad, []byte("workload:\n  app: doom\n"), 0o644)

	var buf bytes.Buffer
	err := run([]string{"scenario", "validate", dir}, &buf)
	if err == nil {
		t.Fatal("validate accepted an invalid scenario")
	}
	out := buf.String()
	if !strings.Contains(out, "ok   "+good) || !strings.Contains(out, "FAIL "+bad) {
		t.Fatalf("per-file verdicts missing:\n%s", out)
	}
	if !strings.Contains(out, "2 scenarios, 1 invalid") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestScenarioRunFailingAssertionFailsCommand(t *testing.T) {
	path := writeScenario(t, "doomed.yaml", `
name: doomed
workload:
  app: escat
assertions:
  expected: failed
`)
	var buf bytes.Buffer
	err := run([]string{"scenario", "run", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "failed their assertions") {
		t.Fatalf("want assertion failure, got %v", err)
	}
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Fatalf("violated bound not surfaced:\n%s", buf.String())
	}
}

func TestScenarioSubcommandErrors(t *testing.T) {
	if err := run([]string{"scenario"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bare scenario subcommand accepted")
	}
	if err := run([]string{"scenario", "frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := run([]string{"scenario", "run", "/does/not/exist.yaml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLegacyConfigStillWorksViaScenarioLoader(t *testing.T) {
	// A legacy chaos JSON and a scenario embedding the same chaos section
	// must produce the same incidents.
	chaos := `{"cascades": [{"kind": "ionode-outage", "at_s": 4.2, "nodes": 4, "first_node": 0, "duration_s": 0.4}]}`
	path := filepath.Join(t.TempDir(), "chaos.json")
	if err := os.WriteFile(path, []byte(chaos), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, "-config", path, "-seed", "3")
	if !strings.Contains(out, "ionode-outage") {
		t.Fatalf("legacy config incidents missing:\n%.600s", out)
	}
	// Strict parsing: a scenario-shaped file through -config is a clear error.
	full := filepath.Join(t.TempDir(), "full.yaml")
	os.WriteFile(full, []byte("workload:\n  app: escat\n"), 0o644)
	if err := run([]string{"-config", full}, &bytes.Buffer{}); err == nil {
		t.Fatal("-config accepted a full scenario file")
	}
}

func TestScenarioHeterogeneousFleetSections(t *testing.T) {
	path := writeScenario(t, "hetero.yaml", `
name: hetero
seed: 11
workload:
  app: escat
fleet_gen:
  io_nodes: 8
  templates:
    - name: fast
      count: 2
      disk_mb_s: 9
    - name: slow
      disk_mb_s: 2
      zone: 1
assertions:
  expected: ok
`)
	out := capture(t, "scenario", "run", path)
	if !strings.Contains(out, "Fleet:") || !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatalf("fleet section missing:\n%s", out)
	}
	if !strings.Contains(out, "Assertions (hetero): PASS") {
		t.Fatalf("assertions did not pass:\n%s", out)
	}
}
