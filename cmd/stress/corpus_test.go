package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

const corpusDir = "../../scenarios"

// TestCorpusValidates: every checked-in scenario parses, validates and
// builds. This is the cheap half of the CI smoke job.
func TestCorpusValidates(t *testing.T) {
	files, err := collectScenarioFiles([]string{corpusDir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus has shrunk to %d scenarios; want at least 10", len(files))
	}
	for _, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, _, err := sc.Build(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if sc.Assertions == nil || sc.Assertions.Expected == "" {
			t.Errorf("%s: corpus scenarios must declare assertions.expected", f)
		}
	}
}

// TestCorpusExemplars executes one expected-ok and one expected-degraded
// scenario end to end and checks the verdicts, mirroring the CI smoke job.
func TestCorpusExemplars(t *testing.T) {
	for _, name := range []string{"outage-recovery.yaml", "unprotected-outage.yaml"} {
		path := filepath.Join(corpusDir, name)
		sc, err := scenario.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Execute()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Pass() {
			t.Errorf("%s: assertions failed: %+v", name, res.Checks)
		}
		want := scenario.Outcome(sc.Assertions.Expected)
		if res.M.Outcome != want {
			t.Errorf("%s: outcome %v, want %v", name, res.M.Outcome, want)
		}
	}
}

// TestCorpusRunAll executes the entire corpus through the CLI: the
// long-running guarantee that every what-if in scenarios/ stays green.
func TestCorpusRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus execution in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"scenario", "run", corpusDir}, &buf); err != nil {
		t.Fatalf("corpus run failed: %v\n%s", err, tail(buf.String(), 2000))
	}
	if strings.Contains(buf.String(), "VIOLATED") {
		t.Fatalf("corpus run has violated bounds:\n%s", tail(buf.String(), 2000))
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}
