package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/scenario"
)

// runScenarioCmd dispatches the "stress scenario <verb>" subcommands: the
// declarative-DSL front door.
func runScenarioCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: stress scenario <validate|run> [-shards N] FILE-OR-DIR...")
	}
	switch args[0] {
	case "validate":
		return scenarioValidate(args[1:], out)
	case "run":
		return scenarioRun(args[1:], out)
	}
	return fmt.Errorf("unknown scenario subcommand %q (want validate or run)", args[0])
}

// collectScenarioFiles expands file and directory arguments into a sorted
// list of scenario files (*.yaml, *.yml, *.json inside directories).
func collectScenarioFiles(args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"scenarios"}
	}
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			switch filepath.Ext(e.Name()) {
			case ".yaml", ".yml", ".json":
				files = append(files, filepath.Join(arg, e.Name()))
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no scenario files found under %s", strings.Join(args, ", "))
	}
	sort.Strings(files)
	return files, nil
}

// scenarioValidate parses every file and reports per-file verdicts; any
// invalid file fails the command.
func scenarioValidate(args []string, out io.Writer) error {
	files, err := collectScenarioFiles(args)
	if err != nil {
		return err
	}
	bad := 0
	for _, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			bad++
			fmt.Fprintf(out, "FAIL %s\n     %v\n", f, err)
			continue
		}
		// Validate includes the build-time cross-checks (zone membership,
		// app node-count fit) so "validate" means "would run".
		if _, _, err := sc.Build(); err != nil {
			bad++
			fmt.Fprintf(out, "FAIL %s\n     %v\n", f, err)
			continue
		}
		fmt.Fprintf(out, "ok   %s (%s)\n", f, sc.Name)
	}
	fmt.Fprintf(out, "%d scenarios, %d invalid\n", len(files), bad)
	if bad > 0 {
		return fmt.Errorf("%d of %d scenarios failed validation", bad, len(files))
	}
	return nil
}

// scenarioRun executes each scenario and prints the standard stress report
// followed by the fleet and assertion sections; any failed assertion fails
// the command. With a single file the report is byte-identical to the
// equivalent flag-driven invocation, with the scenario sections appended.
func scenarioRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stress scenario run", flag.ContinueOnError)
	shardFlags := cliflags.AddShards(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files, err := collectScenarioFiles(fs.Args())
	if err != nil {
		return err
	}
	failed := 0
	for i, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			return err
		}
		sc.Shards = shardFlags.Count()
		if len(files) > 1 {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprintf(out, "=== %s (%s) ===\n", sc.Name, f)
		}
		res, err := sc.Execute()
		if err != nil {
			return err
		}
		printResilientReport(out, res.Report)
		if res.FleetRun != nil {
			fmt.Fprint(out, scenario.RenderFleetRun(res.FleetRun))
		}
		if fl := scenario.RenderFleet(res.Fleet); fl != "" {
			fmt.Fprint(out, fl)
		}
		fmt.Fprint(out, scenario.RenderChecks(sc.Name, res.M, res.Checks))
		if !res.Pass() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed their assertions", failed, len(files))
	}
	return nil
}
