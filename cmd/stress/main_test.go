package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSmokeSameSeedByteIdentical(t *testing.T) {
	a := capture(t, "-scenario", "outage", "-seed", "7")
	b := capture(t, "-scenario", "outage", "-seed", "7")
	if a == "" {
		t.Fatal("no output")
	}
	if a != b {
		t.Error("same-seed chaos runs not byte-identical")
	}
	for _, want := range []string{"Attempts:", "Incidents:", "Resilience report:", "ionode-outage"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSmokeRestartWithoutFailover(t *testing.T) {
	out := capture(t, "-scenario", "outage", "-seed", "7", "-failover=false")
	if !strings.Contains(out, "failed:") || !strings.Contains(out, "completed") {
		t.Errorf("expected a failed attempt then a completed one:\n%.600s", out)
	}
	if !strings.Contains(out, "1 failures") {
		t.Errorf("resilience report missing the failure count:\n%.600s", out)
	}
}

func TestSmokeDiskScenarioDegradesArrays(t *testing.T) {
	out := capture(t, "-scenario", "disks", "-seed", "1")
	if !strings.Contains(out, "disk-failure") || !strings.Contains(out, "rebuilt") {
		t.Errorf("disk scenario missing failure/rebuild incidents:\n%.600s", out)
	}
}

func TestSmokeTradeoffSweep(t *testing.T) {
	out := capture(t, "-scenario", "outage", "-seed", "7", "-failover=false", "-sweep", "0,2")
	if !strings.Contains(out, "Checkpoint interval tradeoff") || !strings.Contains(out, "none") {
		t.Errorf("sweep output:\n%.600s", out)
	}
}

func TestSmokeJSONScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.json")
	cfg := `{
		"events":   [{"kind": "latency-storm", "at_s": 2, "node": -1, "duration_s": 1, "factor": 3}],
		"cascades": [{"kind": "ionode-outage", "at_s": 4.2, "nodes": 2, "first_node": 0, "duration_s": 0.4}]
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, "-config", path, "-seed", "3")
	if !strings.Contains(out, "latency-storm") || !strings.Contains(out, "ionode-outage") {
		t.Errorf("JSON scenario incidents missing:\n%.600s", out)
	}
}

func TestSmokeBadInputs(t *testing.T) {
	if err := run([]string{"-scenario", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-sweep", "1,x"}, &bytes.Buffer{}); err == nil {
		t.Fatal("malformed sweep accepted")
	}
}
