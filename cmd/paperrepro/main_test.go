package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSmokePaperTablesDeterministic(t *testing.T) {
	capture := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-app", "escat", "-no-figures"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := capture(), capture()
	if a == "" || a != b {
		t.Error("paperrepro output empty or nondeterministic")
	}
	for _, want := range []string{"==== escat", "paper", "Figure 4 burst structure"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSmokeFigures(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-app", "escat", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "plus .txt and .svg renderings") {
		t.Errorf("no figure files reported:\n%.400s", buf.String())
	}
}
