// Command paperrepro regenerates every table and figure of the paper:
// it runs the three application studies at paper scale, prints
// paper-vs-measured comparisons for Tables 1-6, and writes each figure
// (2-17) as CSV data plus an ASCII rendering.
//
// Usage:
//
//	paperrepro [-app escat|render|htf] [-out DIR] [-no-figures] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	appFilter := fs.String("app", "", "run only this application (escat, render, htf)")
	outDir := fs.String("out", "out", "directory for figure data and renderings")
	noFigures := fs.Bool("no-figures", false, "skip writing figure files")
	parallel := fs.Int("parallel", 0, "worker goroutines for the application runs (0 = GOMAXPROCS); output is identical at any setting")
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	exec.SetWorkers(*parallel)
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	apps := core.Apps()
	if *appFilter != "" {
		apps = []core.AppID{core.AppID(*appFilter)}
	}

	// The three paper-scale studies are independent simulations; fan them out
	// and print in app order.
	reports, err := exec.Map(apps, func(_ int, app core.AppID) (*core.Report, error) {
		report, err := core.Run(core.PaperStudy(app))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", app, err)
		}
		return report, nil
	})
	if err != nil {
		return err
	}

	for i, app := range apps {
		report := reports[i]
		fmt.Fprintf(out, "==== %s (wall clock %.0f s, %d events) ====\n\n",
			app, report.Wall.Seconds(), len(report.Events))

		for _, pt := range core.PaperTables() {
			if pt.App == app {
				fmt.Fprintln(out, core.CompareTable(pt, report))
			}
		}
		for _, st := range core.PaperSizeTables() {
			if st.App == app {
				fmt.Fprintln(out, core.CompareSizeTable(st, report))
			}
		}
		printHeadlines(out, app, report)

		if !*noFigures {
			if err := writeFigures(out, *outDir, app, report); err != nil {
				return fmt.Errorf("%s: %v", app, err)
			}
		}
	}
	return nil
}

// printHeadlines reports the running-text claims each application supports.
func printHeadlines(out io.Writer, app core.AppID, r *core.Report) {
	switch app {
	case core.ESCAT:
		early, late, bursts := r.WriteBurstTrend(30_000_000) // 30 s in µs
		fmt.Fprintf(out, "Figure 4 burst structure: %d bursts, spacing %.0f s early -> %.0f s late (paper: ~160 -> ~80)\n\n",
			bursts, early.Seconds(), late.Seconds())
	case core.RENDER:
		fmt.Fprintf(out, "§6.2 initialization read throughput: %.1f MB/s (paper: ~9.5)\n\n",
			r.InitReadThroughput()/1e6)
	case core.HTF:
		m := core.DefaultCrossoverModel()
		fmt.Fprintf(out, "§7.2 recompute-vs-reread break-even: %.1f MB/s per node (paper: 5-10)\n\n",
			m.BreakEvenRate()/1e6)
	}
}

func writeFigures(out io.Writer, dir string, app core.AppID, r *core.Report) error {
	sub := filepath.Join(dir, string(app))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	for _, fig := range r.Figures() {
		csvPath := filepath.Join(sub, fig.ID+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := analysis.WriteCSV(f, fig.Points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		txt := analysis.RenderScatter(fig.Points, analysis.PlotOptions{
			Title: fig.Title, LogY: fig.LogY,
			YLabel: yLabel(fig.LogY), XLabel: "time",
		})
		if err := os.WriteFile(filepath.Join(sub, fig.ID+".txt"), []byte(txt), 0o644); err != nil {
			return err
		}
		svg := analysis.RenderSVG(fig.Points, analysis.SVGOptions{
			Title: fig.Title, LogY: fig.LogY,
			YLabel: yLabel(fig.LogY), XLabel: "time (s)",
		})
		if err := os.WriteFile(filepath.Join(sub, fig.ID+".svg"), []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d points) plus .txt and .svg renderings\n", csvPath, len(fig.Points))
	}
	fmt.Fprintln(out)
	return nil
}

func yLabel(logY bool) string {
	if logY {
		return "request size"
	}
	return "file id"
}
