// Package replay re-executes a captured application I/O trace against an
// alternative machine configuration — trace-driven evaluation, the
// methodology the paper positions its traces for ("file system and storage
// hierarchy designers have little empirical data on parallel input/output
// access patterns", §1). A trace captured from one simulated machine (or
// loaded from an SDDF file) can be replayed with a different I/O-node
// count, striping unit, disk model, or cost model, answering "what would
// this application's I/O have cost on that configuration?".
//
// Replay preserves the logical request stream: every data-moving operation
// is reissued at its recorded offset and size by its recorded node, in the
// recorded per-node order, with the recorded inter-request think time
// (optionally). Pointer bookkeeping (seeks) and mode synchronization are
// already baked into the recorded offsets, so replays issue raw positioned
// requests; the opens, closes and metadata operations are replayed against
// the new machine's metadata service.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures a replay.
type Options struct {
	// Machine is the configuration to replay against.
	Machine workload.MachineConfig

	// PreserveThinkTime keeps the trace's inter-request gaps per node
	// (compute time); false issues each node's requests back to back,
	// measuring the configuration's peak response to the request stream.
	PreserveThinkTime bool

	// ThinkJitter perturbs each preserved think gap by up to ±this
	// fraction (0 replays the gaps exactly). Jitter models run-to-run
	// compute variability around the recorded trace; it only applies with
	// PreserveThinkTime.
	ThinkJitter float64

	// Seed drives the jitter streams: the same (trace, options) replay is
	// bit-identical, a different seed gives an independent perturbation.
	Seed uint64
}

// Result is the outcome of a replay.
type Result struct {
	// Events is the replayed trace: same logical stream, new timings.
	Events []iotrace.Event

	// Makespan is the replay's simulated duration.
	Makespan sim.Time

	// Summary is the operation summary over the replayed events.
	Summary analysis.OpSummary

	// Skipped counts trace records that could not be replayed (e.g.
	// closes without a matching open in a sliced trace).
	Skipped int64
}

// Run replays events (an application-level trace, e.g. a Report's Events or
// an SDDF file's contents) against the machine in opt.
func Run(events []iotrace.Event, opt Options) (*Result, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	if opt.Machine.ComputeNodes == 0 {
		opt.Machine = workload.DefaultMachineConfig()
	}
	// The machine must span every node appearing in the trace.
	maxNode := 0
	for _, e := range events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	if opt.Machine.ComputeNodes <= maxNode {
		return nil, fmt.Errorf("replay: trace uses node %d, machine has %d nodes",
			maxNode, opt.Machine.ComputeNodes)
	}
	m, err := workload.NewMachine(opt.Machine)
	if err != nil {
		return nil, err
	}
	tracer := pablo.NewTracer(true)
	m.PFS.SetRecorder(tracer)

	// Preload every file at its maximum observed extent so recorded reads
	// succeed regardless of write order.
	sizes := map[iotrace.FileID]int64{}
	for _, e := range events {
		if end := e.Offset + e.Bytes; e.Op.Moves() && end > sizes[e.File] {
			sizes[e.File] = end
		}
	}
	names := map[iotrace.FileID]string{}
	ids := make([]iotrace.FileID, 0, len(sizes))
	for id := range sizes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		names[id] = fmt.Sprintf("replay-file-%d", id)
		if _, err := m.PFS.Preload(names[id], sizes[id]); err != nil {
			return nil, err
		}
	}

	// Split the trace into per-node streams, preserving order.
	streams := map[int][]iotrace.Event{}
	for _, e := range events {
		streams[e.Node] = append(streams[e.Node], e)
	}

	// Spawn in node order: each node draws its jitter stream from the
	// shared seed in a fixed sequence, and event-time ties break the same
	// way on every run.
	nodeIDs := make([]int, 0, len(streams))
	for node := range streams {
		nodeIDs = append(nodeIDs, node)
	}
	sort.Ints(nodeIDs)
	base := sim.NewRNG(opt.Seed)
	res := &Result{}
	for _, node := range nodeIDs {
		node, stream := node, streams[node]
		var rng *sim.RNG
		if opt.PreserveThinkTime && opt.ThinkJitter > 0 {
			rng = base.Split()
		}
		m.Eng.Spawn(fmt.Sprintf("replay-n%d", node), func(p *sim.Process) {
			res.Skipped += replayNode(p, m, names, node, stream, opt.PreserveThinkTime, rng, opt.ThinkJitter)
		})
	}
	if err := m.Eng.Run(); err != nil {
		return nil, err
	}
	res.Events = tracer.Events()
	res.Makespan = m.Eng.Now()
	res.Summary = analysis.Summarize(res.Events)
	return res, nil
}

// asyncSlot tracks an in-flight replayed asynchronous read.
type asyncSlot struct {
	comp *sim.Completion
}

// replayNode reissues one node's stream. It returns the number of records
// it had to skip.
func replayNode(p *sim.Process, m *workload.Machine, names map[iotrace.FileID]string,
	node int, stream []iotrace.Event, think bool, rng *sim.RNG, jitter float64) int64 {
	var skipped int64
	var prevEnd sim.Time
	pending := map[iotrace.FileID][]*asyncSlot{}

	for _, e := range stream {
		if think && e.Start > prevEnd {
			gap := e.Start - prevEnd
			if rng != nil {
				gap = rng.Jitter(gap, jitter)
			}
			p.Sleep(gap)
		}
		prevEnd = e.End

		name, known := names[e.File]
		switch e.Op {
		case iotrace.OpRead:
			if !known {
				skipped++
				continue
			}
			if _, err := m.PFS.Access(p, node, name, iotrace.OpRead, e.Offset, e.Bytes); err != nil {
				skipped++
			}
		case iotrace.OpWrite:
			if !known {
				skipped++
				continue
			}
			if _, err := m.PFS.Access(p, node, name, iotrace.OpWrite, e.Offset, e.Bytes); err != nil {
				skipped++
			}
		case iotrace.OpAsyncRead:
			if !known || e.Bytes == 0 {
				skipped++
				continue
			}
			slot := &asyncSlot{comp: sim.NewCompletion(fmt.Sprintf("replay-ar-%d-%d", node, e.Seq))}
			pending[e.File] = append(pending[e.File], slot)
			off, n := e.Offset, e.Bytes
			// The issue cost is the configured async-issue overhead.
			p.Sleep(m.PFS.Config().Cost.AsyncIssue)
			m.Eng.Spawn(fmt.Sprintf("replay-bg-%d-%d", node, e.Seq), func(bg *sim.Process) {
				m.PFS.Access(bg, node, name, iotrace.OpRead, off, n)
				slot.comp.Complete(bg)
			})
		case iotrace.OpIOWait:
			slots := pending[e.File]
			if len(slots) == 0 {
				skipped++
				continue
			}
			slot := slots[0]
			pending[e.File] = slots[1:]
			slot.comp.Await(p)
		case iotrace.OpOpen, iotrace.OpClose, iotrace.OpLsize, iotrace.OpFlush:
			// Metadata operations replay as their configured service cost
			// without handle bookkeeping (the data path above is
			// handle-free). Opens/closes contend at the new machine's
			// metadata server via a raw service visit.
			replayMeta(p, m, e)
		case iotrace.OpSeek:
			// Pointer movement is baked into the recorded offsets.
		default:
			skipped++
		}
	}
	// Drain any un-awaited async reads so the engine can finish cleanly.
	for _, slots := range pending {
		for _, s := range slots {
			s.comp.Await(p)
		}
	}
	return skipped
}

// replayMeta charges a metadata operation's cost on the replay machine.
func replayMeta(p *sim.Process, m *workload.Machine, e iotrace.Event) {
	cost := m.PFS.Config().Cost
	switch e.Op {
	case iotrace.OpOpen:
		m.PFS.MetaVisit(p, e.Node, iotrace.OpOpen, cost.OpenService)
	case iotrace.OpClose:
		m.PFS.MetaVisit(p, e.Node, iotrace.OpClose, cost.CloseService)
	case iotrace.OpLsize:
		m.PFS.MetaVisit(p, e.Node, iotrace.OpLsize, cost.LsizeService)
	case iotrace.OpFlush:
		m.PFS.MetaVisit(p, e.Node, iotrace.OpFlush, cost.FlushService)
	}
}
