package replay

import (
	"testing"

	"repro/internal/apps/escat"
	"repro/internal/core"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// smallTrace captures a reduced ESCAT run's application trace.
func smallTrace(t testing.TB) []iotrace.Event {
	t.Helper()
	r, err := core.Run(core.SmallStudy(core.ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	return r.Events
}

func baseOptions() Options {
	mc := escat.MachineConfig()
	mc.ComputeNodes = escat.SmallConfig().Nodes
	return Options{Machine: mc, PreserveThinkTime: true}
}

func TestReplayPreservesLogicalStream(t *testing.T) {
	trace := smallTrace(t)
	res, err := Run(trace, baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Fatalf("skipped %d records", res.Skipped)
	}
	// Data-moving counts and bytes survive the replay exactly.
	orig := map[iotrace.Op][2]int64{}
	replayed := map[iotrace.Op][2]int64{}
	for _, e := range trace {
		if e.Op.Moves() {
			v := orig[e.Op]
			orig[e.Op] = [2]int64{v[0] + 1, v[1] + e.Bytes}
		}
	}
	for _, e := range res.Events {
		if e.Op.Moves() {
			v := replayed[e.Op]
			replayed[e.Op] = [2]int64{v[0] + 1, v[1] + e.Bytes}
		}
	}
	for op, want := range orig {
		if replayed[op] != want {
			t.Errorf("%v: replayed %v, want %v", op, replayed[op], want)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestReplayWithoutThinkTimeIsFaster(t *testing.T) {
	trace := smallTrace(t)
	with, err := Run(trace, baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := baseOptions()
	opt.PreserveThinkTime = false
	without, err := Run(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if without.Makespan >= with.Makespan {
		t.Fatalf("back-to-back replay (%v) not faster than think-time replay (%v)",
			without.Makespan, with.Makespan)
	}
}

func TestReplayMoreIONodesCutsIOTime(t *testing.T) {
	trace := smallTrace(t)
	opt := baseOptions()
	opt.PreserveThinkTime = false

	narrow := opt
	narrow.Machine.PFS.IONodes = 1
	wide := opt
	wide.Machine.PFS.IONodes = 16

	nres, err := Run(trace, narrow)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := Run(trace, wide)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Makespan >= nres.Makespan {
		t.Fatalf("16 I/O nodes (%v) not faster than 1 (%v)", wres.Makespan, nres.Makespan)
	}
}

func TestReplayCostModelSweep(t *testing.T) {
	// Replaying on a machine with free metadata operations must shrink
	// open/close time to ~client overhead.
	trace := smallTrace(t)
	opt := baseOptions()
	opt.Machine.PFS.Cost.OpenService = 0
	opt.Machine.PFS.Cost.CloseService = 0
	res, err := Run(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	open := res.Summary.Row("Open")
	if open == nil {
		t.Fatal("no open row")
	}
	perOpen := open.NodeTime.Seconds() / float64(open.Count)
	if perOpen > 0.01 {
		t.Fatalf("free opens still cost %.3fs each", perOpen)
	}
}

func TestReplayRejectsBadInputs(t *testing.T) {
	if _, err := Run(nil, baseOptions()); err == nil {
		t.Fatal("empty trace accepted")
	}
	trace := smallTrace(t)
	opt := baseOptions()
	opt.Machine.ComputeNodes = 2 // trace uses 8 nodes
	if _, err := Run(trace, opt); err == nil {
		t.Fatal("undersized machine accepted")
	}
}

func TestReplayDefaultsMachine(t *testing.T) {
	trace := smallTrace(t)
	res, err := Run(trace, Options{PreserveThinkTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan with defaulted machine")
	}
}

func TestReplaySlicedTraceSkipsGracefully(t *testing.T) {
	// A trace slice starting mid-run has waits without issues; replay
	// counts them as skipped instead of failing.
	trace := []iotrace.Event{
		{Node: 0, Op: iotrace.OpIOWait, File: 1, Start: 0, End: sim.Second},
		{Node: 0, Op: iotrace.OpRead, File: 1, Offset: 0, Bytes: 1000,
			Start: sim.Second, End: 2 * sim.Second},
	}
	mc := workload.MachineConfig{ComputeNodes: 2, PFS: pfs.DefaultConfig()}
	res, err := Run(trace, Options{Machine: mc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("skipped %d, want 1", res.Skipped)
	}
}

func TestReplayThinkJitterSeeded(t *testing.T) {
	trace := smallTrace(t)
	jittered := func(seed uint64) sim.Time {
		opt := baseOptions()
		opt.ThinkJitter = 0.3
		opt.Seed = seed
		res, err := Run(trace, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	exact, err := Run(trace, baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := jittered(1), jittered(1), jittered(2)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a == c {
		t.Errorf("seeds 1 and 2 gave identical makespan %v", a)
	}
	if a == exact.Makespan && c == exact.Makespan {
		t.Error("jitter had no effect on makespan")
	}
}

func TestReplayAsyncReadsComplete(t *testing.T) {
	trace := []iotrace.Event{
		{Seq: 1, Node: 0, Op: iotrace.OpAsyncRead, File: 1, Offset: 0, Bytes: 1 << 20,
			Start: 0, End: sim.Millisecond},
		{Seq: 2, Node: 0, Op: iotrace.OpAsyncRead, File: 1, Offset: 1 << 20, Bytes: 1 << 20,
			Start: sim.Millisecond, End: 2 * sim.Millisecond},
		{Seq: 3, Node: 0, Op: iotrace.OpIOWait, File: 1, Start: 2 * sim.Millisecond, End: sim.Second},
		// Second wait intentionally missing: replay drains it at the end.
	}
	mc := workload.MachineConfig{ComputeNodes: 2, PFS: pfs.DefaultConfig()}
	res, err := Run(trace, Options{Machine: mc})
	if err != nil {
		t.Fatal(err)
	}
	reads := res.Summary.Row("Read")
	if reads == nil || reads.Count != 2 || reads.Volume != 2<<20 {
		t.Fatalf("replayed reads %+v", reads)
	}
}
