package integrity

import "repro/internal/sim"

// Config describes one I/O node's integrity layer. The zero value disables
// it entirely: no checksum state, no verify cost, data path bit-identical to
// a build without the package.
type Config struct {
	// Enabled turns the layer on. All other fields are ignored when false.
	Enabled bool

	// BlockBytes is the checksum granule: one stored sum covers one block.
	// PFS sets this to its stripe unit when left zero, so one stripe chunk
	// verifies as one unit.
	BlockBytes int64

	// VerifyOverhead is the fixed node cost per request for checksum
	// bookkeeping (on writes: computing sums; on reads: verifying them).
	VerifyOverhead sim.Time

	// VerifyBWBytesPerS is the checksum-compute bandwidth; every read and
	// write additionally pays bytes/rate on the I/O node.
	VerifyBWBytesPerS float64

	// Scrub configures the background scrubber.
	Scrub ScrubConfig
}

// ScrubConfig drives the background scrubber: a per-node process that sweeps
// written blocks at a bounded rate, verifying and repairing latent errors
// before a demand read trips over them.
type ScrubConfig struct {
	// Enabled turns the scrubber on.
	Enabled bool

	// RateBytesPerS bounds the scrub bandwidth: each slice's array time plus
	// idle pause average out to this rate. Default 4 MB/s.
	RateBytesPerS float64

	// SliceBytes is the work quantum per queue acquisition, so scrub traffic
	// interleaves with (and is delayed by) foreground requests. Default 512 KB.
	SliceBytes int64

	// Window is the simulated instant the scrubber stands down (it must
	// terminate for the run to drain). Default 600 s, matching the chaos
	// window convention of the fault plans.
	Window sim.Time
}

// DefaultConfig returns the enabled default policy: stripe-unit blocks (once
// normalized by PFS), 50 µs verify overhead, 400 MB/s checksum bandwidth,
// scrubbing off.
func DefaultConfig() Config {
	return Config{
		Enabled:           true,
		VerifyOverhead:    50 * sim.Microsecond,
		VerifyBWBytesPerS: 400e6,
	}
}

// DefaultScrubConfig returns the enabled default scrub policy.
func DefaultScrubConfig() ScrubConfig {
	return ScrubConfig{
		Enabled:       true,
		RateBytesPerS: 4 << 20,
		SliceBytes:    512 << 10,
		Window:        600 * sim.Second,
	}
}

// Normalized fills zero fields with defaults; blockDefault overrides the
// default block size (PFS passes its stripe unit).
func (c Config) Normalized(blockDefault int64) Config {
	d := DefaultConfig()
	if c.BlockBytes <= 0 {
		if blockDefault > 0 {
			c.BlockBytes = blockDefault
		} else {
			c.BlockBytes = 64 << 10
		}
	}
	if c.VerifyOverhead <= 0 {
		c.VerifyOverhead = d.VerifyOverhead
	}
	if c.VerifyBWBytesPerS <= 0 {
		c.VerifyBWBytesPerS = d.VerifyBWBytesPerS
	}
	if c.Scrub.Enabled {
		sd := DefaultScrubConfig()
		if c.Scrub.RateBytesPerS <= 0 {
			c.Scrub.RateBytesPerS = sd.RateBytesPerS
		}
		if c.Scrub.SliceBytes <= 0 {
			c.Scrub.SliceBytes = sd.SliceBytes
		}
		if c.Scrub.Window <= 0 {
			c.Scrub.Window = sd.Window
		}
	}
	return c
}
