package integrity

import "repro/internal/sim"

// numClasses sizes the per-class counters (ClassNone..Misdirected).
const numClasses = 4

// Stats are one store's accumulated integrity counters. Aggregate sums them
// across nodes; Node is the owning I/O node (-1 for an aggregate).
type Stats struct {
	Node          int
	TrackedBlocks int64 // blocks with checksum state (ever written)

	// Verification traffic.
	ChecksummedWrites int64 // blocks checksummed on the write path
	VerifiedBlocks    int64 // blocks verified (reads + scrub)
	VerifiedBytes     int64

	// Injection.
	Injected        int64 // corruptions injected on this store
	InjectedByClass [numClasses]int64
	Carried         int64 // re-injected from a previous attempt's ledger

	// Detection, by first detector.
	DetectedRead    int64
	DetectedScrub   int64
	DetectedRestart int64 // checkpoint restart verification
	DetectedAudit   int64 // end-of-run audit only — silent during the run

	// Resolution.
	RepairedParity    int64 // reconstructed from parity (incl. audit repairs)
	AuditRepairs      int64 // subset of RepairedParity done by the audit
	HealedByRewrite   int64 // detected corruption cleared by a later write
	ClearedUndetected int64 // corruption overwritten before anything saw it

	// Read-path failures.
	CorruptReads int64 // read requests failed with ErrCorrupt

	// Scrubber activity.
	ScrubbedBlocks int64
	ScrubPasses    int64 // full sweeps completed
	ScrubRepairs   int64 // subset of RepairedParity driven by the scrubber
	ScrubTime      sim.Time

	// Computed at Stats() time.
	OutstandingCorrupt int64 // blocks still corrupt
	UnrepairableOpen   int64 // detected, reported, but not repairable
}

// Detected is the total corruptions found by any detector.
func (s Stats) Detected() int64 {
	return s.DetectedRead + s.DetectedScrub + s.DetectedRestart + s.DetectedAudit
}

// Resolved is the total corruptions no longer present.
func (s Stats) Resolved() int64 {
	return s.RepairedParity + s.HealedByRewrite + s.ClearedUndetected
}

// Silent is the corruptions nothing caught while the run was live: first
// found by the end-of-run audit.
func (s Stats) Silent() int64 { return s.DetectedAudit }

// Aggregate sums per-node stats into one report row with Node = -1.
func Aggregate(per []Stats) Stats {
	t := Stats{Node: -1}
	for _, s := range per {
		t.TrackedBlocks += s.TrackedBlocks
		t.ChecksummedWrites += s.ChecksummedWrites
		t.VerifiedBlocks += s.VerifiedBlocks
		t.VerifiedBytes += s.VerifiedBytes
		t.Injected += s.Injected
		for c := range s.InjectedByClass {
			t.InjectedByClass[c] += s.InjectedByClass[c]
		}
		t.Carried += s.Carried
		t.DetectedRead += s.DetectedRead
		t.DetectedScrub += s.DetectedScrub
		t.DetectedRestart += s.DetectedRestart
		t.DetectedAudit += s.DetectedAudit
		t.RepairedParity += s.RepairedParity
		t.AuditRepairs += s.AuditRepairs
		t.HealedByRewrite += s.HealedByRewrite
		t.ClearedUndetected += s.ClearedUndetected
		t.CorruptReads += s.CorruptReads
		t.ScrubbedBlocks += s.ScrubbedBlocks
		t.ScrubPasses += s.ScrubPasses
		t.ScrubRepairs += s.ScrubRepairs
		t.ScrubTime += s.ScrubTime
		t.OutstandingCorrupt += s.OutstandingCorrupt
		t.UnrepairableOpen += s.UnrepairableOpen
	}
	return t
}
