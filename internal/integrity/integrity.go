// Package integrity is the end-to-end data-integrity layer of the storage
// model: a per-block checksum store attached to each I/O node's RAID-3 array,
// corruption bookkeeping for the fault injectors, and the detection/repair
// accounting the analysis layer reports.
//
// Like the rest of the simulation, blocks carry no payload. A block's
// "checksum" is a deterministic 64-bit hash of its identity and write
// version; corrupting a block perturbs the stored sum so that verification —
// recomputing the hash and comparing — mismatches, exactly as a real
// content checksum would. Three corruption classes model the three injectors:
//
//   - BitRot flips bits on a single drive's lane, so the RAID-3 parity drive
//     still holds enough information to reconstruct the block: bit-rot is
//     parity-repairable whenever the array is not already degraded.
//   - TornWrite persists only part of a physical write; the parity lane is
//     torn along with the data lanes, so parity is consistent with the torn
//     state and cannot repair it. Recovery needs a rewrite or a replica.
//   - MisdirectedWrite lands a write at the wrong address, overwriting a
//     victim block with well-formed but wrong data; parity matches the wrong
//     data, so again only a rewrite or a replica recovers it. The embedded
//     (block, version) identity in the checksum is what detects it.
//
// Every injected corruption is tracked as an Event from injection through
// detection (demand read, scrubber, restart verification, or the end-of-run
// audit) to resolution (parity repair, overwrite, or still-open —
// unrepairable). The zero Config disables the layer entirely and leaves the
// data path bit-identical to a build without it.
package integrity

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ErrCorrupt is returned by a read that detected an unrepairable checksum
// mismatch. The PFS client reliability layer treats it like a dead node:
// retry against the replica, then heal the primary with a repair write.
var ErrCorrupt = errors.New("integrity: unrepairable checksum mismatch")

// Class labels a corruption's physical cause, which determines whether
// RAID-3 parity can repair it.
type Class int

const (
	ClassNone   Class = iota
	BitRot            // single-lane flip: parity-repairable
	TornWrite         // partial stripe persisted: parity torn too
	Misdirected       // block landed at the wrong offset: parity consistent
)

// String returns the class's report label.
func (c Class) String() string {
	switch c {
	case BitRot:
		return "bit-rot"
	case TornWrite:
		return "torn-write"
	case Misdirected:
		return "misdirected-write"
	}
	return fmt.Sprintf("integrity.Class(%d)", int(c))
}

// Repairable reports whether RAID-3 parity can reconstruct this class (on a
// non-degraded array).
func (c Class) Repairable() bool { return c == BitRot }

// Checksum is the deterministic 64-bit block hash: a splitmix-style mix of
// the block identity and its write version, standing in for a content hash
// over the (payload-free) block.
func Checksum(block int64, version uint64) uint64 {
	x := uint64(block)*0x9e3779b97f4a7c15 + version*0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Resolution is how a corruption event ended.
type Resolution int

const (
	ResOpen           Resolution = iota // still corrupt (latent or detected-unrepairable)
	ResRepairedParity                   // reconstructed from surviving lanes + parity
	ResRewritten                        // cleared by a later write of the block
)

// String returns the resolution's report label.
func (r Resolution) String() string {
	switch r {
	case ResRepairedParity:
		return "parity-repaired"
	case ResRewritten:
		return "rewritten"
	}
	return "open"
}

// Event is one corruption's lifetime on this store, from injection to
// resolution.
type Event struct {
	Node       int
	Block      int64
	Class      Class
	InjectedAt sim.Time
	Detected   bool
	DetectedAt sim.Time
	DetectedBy string // "read", "scrub", "restart", "audit"
	Resolution Resolution
	ResolvedAt sim.Time
	Carried    bool // re-injected from a previous attempt (restart ledger)
}

// Detection is one corrupt block found by a read, reported to the I/O node so
// it can charge the repair or fail the request.
type Detection struct {
	Block int64
	Class Class
}

// blockSum is one block's integrity state.
type blockSum struct {
	version  uint64
	sum      uint64 // stored checksum; != Checksum(idx, version) when corrupt
	class    Class  // non-zero while latent corruption is present
	detected bool
	eventIdx int // open event in Store.events, valid while class != ClassNone
}

func (b *blockSum) corrupt() bool { return b.class != ClassNone }

// injection is the seeded write-path corruption policy armed by the fault
// injector.
type injection struct {
	tornProb      float64
	misdirectProb float64
	rng           *sim.RNG
}

// Store is one I/O node's checksum store: per-block write versions and stored
// sums for every block ever written through the node.
type Store struct {
	node int
	cfg  Config

	blocks map[int64]*blockSum
	inj    *injection

	// written lists every block index in blocks. Indices mostly arrive in
	// ascending order (sequential writes), so creation appends and marks the
	// list dirty only on out-of-order arrival; ordered consumers re-sort
	// lazily via sortedWritten. This keeps the scrubber's per-slice cost at a
	// binary search instead of a full map scan and sort.
	written  []int64
	unsorted bool

	scrubCursor int64
	scrubBuf    []int64 // reusable slice handed out by ScrubNext

	events []Event
	s      Stats
}

// NewStore creates the checksum store for I/O node `node` with a normalized
// config.
func NewStore(node int, cfg Config) *Store {
	return &Store{node: node, cfg: cfg, blocks: make(map[int64]*blockSum)}
}

// Config returns the store's (normalized) configuration.
func (st *Store) Config() Config { return st.cfg }

// BlockBytes returns the checksum granule size.
func (st *Store) BlockBytes() int64 { return st.cfg.BlockBytes }

// ResidentBytes returns the bytes of tracked (ever-written) data — the
// exposure base for the bit-rot arrival process.
func (st *Store) ResidentBytes() int64 {
	return int64(len(st.blocks)) * st.cfg.BlockBytes
}

// VerifyCost is the node time to checksum (on write) or verify (on read)
// `bytes` of data: a fixed per-request overhead plus the data at the
// configured checksum-compute bandwidth.
func (st *Store) VerifyCost(bytes int64) sim.Time {
	return st.cfg.VerifyOverhead +
		sim.Time(float64(bytes)/st.cfg.VerifyBWBytesPerS*float64(sim.Second))
}

// span returns the inclusive block-index range overlapped by [addr, addr+n).
func (st *Store) span(addr, n int64) (first, last int64) {
	bs := st.cfg.BlockBytes
	return addr / bs, (addr + n - 1) / bs
}

// track records a newly created block index. Must be called exactly once per
// index, when it first enters st.blocks.
func (st *Store) track(idx int64) {
	if n := len(st.written); n > 0 && idx < st.written[n-1] {
		st.unsorted = true
	}
	st.written = append(st.written, idx)
}

// sortedWritten returns the ascending list of every written block index,
// re-sorting in place only when out-of-order creations have landed since the
// last ordered read. Callers must not hold the slice across simulated time.
func (st *Store) sortedWritten() []int64 {
	if st.unsorted {
		sort.Slice(st.written, func(i, j int) bool { return st.written[i] < st.written[j] })
		st.unsorted = false
	}
	return st.written
}

// Arm installs the seeded write-path corruption policy (torn and misdirected
// writes). Called by the fault injector before the run.
func (st *Store) Arm(tornProb, misdirectProb float64, rng *sim.RNG) {
	if tornProb <= 0 && misdirectProb <= 0 {
		return
	}
	st.inj = &injection{tornProb: tornProb, misdirectProb: misdirectProb, rng: rng}
}

// CommitWrite records a write of [addr, addr+n): every overlapped block's
// version advances and its stored sum is recomputed, which clears any latent
// corruption (an overwrite destroys the corrupt data). With an armed
// injection policy, the write may itself be torn (its last block persisted
// partially) or misdirected (a random resident victim block overwritten).
// Call with the request's completion time, while holding the node queue.
func (st *Store) CommitWrite(now sim.Time, addr, n int64) {
	if n <= 0 {
		return
	}
	first, last := st.span(addr, n)
	for idx := first; idx <= last; idx++ {
		st.writeBlock(now, idx)
	}
	st.s.ChecksummedWrites += last - first + 1
	if st.inj == nil {
		return
	}
	// Fixed draw order keeps the schedule a pure function of the write
	// sequence: torn first, then misdirect.
	if st.inj.tornProb > 0 && st.inj.rng.Float64() < st.inj.tornProb {
		st.corruptBlock(now, last, TornWrite, false)
	}
	if st.inj.misdirectProb > 0 && st.inj.rng.Float64() < st.inj.misdirectProb {
		if victim, ok := st.pickVictim(first, last); ok {
			st.corruptBlock(now, victim, Misdirected, false)
		}
	}
}

// writeBlock applies one block's write: version bump, fresh sum, corruption
// cleared.
func (st *Store) writeBlock(now sim.Time, idx int64) {
	b := st.blocks[idx]
	if b == nil {
		b = &blockSum{}
		st.blocks[idx] = b
		st.track(idx)
	}
	if b.corrupt() {
		st.resolve(now, b, ResRewritten)
	}
	b.version++
	b.sum = Checksum(idx, b.version)
}

// pickVictim selects a deterministic random resident block outside
// [first, last] as a misdirected write's landing site.
func (st *Store) pickVictim(first, last int64) (int64, bool) {
	// Candidates are the written blocks outside [first, last]: the ascending
	// list with the span [lo, hi) cut out. Indexing around the gap draws the
	// same victim the explicit filtered-and-sorted copy used to.
	all := st.sortedWritten()
	lo := sort.Search(len(all), func(k int) bool { return all[k] >= first })
	hi := sort.Search(len(all), func(k int) bool { return all[k] > last })
	n := len(all) - (hi - lo)
	if n == 0 {
		return 0, false
	}
	k := st.inj.rng.Intn(n)
	if k < lo {
		return all[k], true
	}
	return all[k-lo+hi], true
}

// InjectBitRot corrupts one uniformly chosen resident non-corrupt block with
// bit-rot; it reports whether a victim existed. Driven by the fault
// injector's per-node exponential arrival process.
func (st *Store) InjectBitRot(now sim.Time, rng *sim.RNG) bool {
	all := st.sortedWritten()
	cands := make([]int64, 0, len(all))
	for _, idx := range all {
		if !st.blocks[idx].corrupt() {
			cands = append(cands, idx)
		}
	}
	if len(cands) == 0 {
		return false
	}
	st.corruptBlock(now, cands[rng.Intn(len(cands))], BitRot, false)
	return true
}

// MarkCorrupt re-injects latent corruption carried over from a previous
// attempt (the restart ledger): every block overlapping [addr, addr+n) is
// corrupted with the given class, creating block state if the extent was
// only preloaded. No-op on blocks already corrupt.
func (st *Store) MarkCorrupt(now sim.Time, addr, n int64, class Class) {
	if n <= 0 || class == ClassNone {
		return
	}
	first, last := st.span(addr, n)
	for idx := first; idx <= last; idx++ {
		b := st.blocks[idx]
		if b == nil {
			b = &blockSum{sum: Checksum(idx, 0)}
			st.blocks[idx] = b
			st.track(idx)
		}
		if b.corrupt() {
			continue
		}
		st.corruptBlock(now, idx, class, true)
	}
}

// corruptBlock flips a block's stored sum and opens its event.
func (st *Store) corruptBlock(now sim.Time, idx int64, class Class, carried bool) {
	b := st.blocks[idx]
	if b == nil {
		b = &blockSum{sum: Checksum(idx, 0)}
		st.blocks[idx] = b
		st.track(idx)
	}
	if b.corrupt() {
		// One corruption at a time per block: the first is still latent and
		// its sum already mismatches; layering another adds no new event.
		return
	}
	b.class = class
	b.detected = false
	// Class-tagged perturbation: guaranteed to differ from every Checksum
	// value reachable by honest writes of this block.
	b.sum ^= 0x8000000000000001 + uint64(class)<<32
	b.eventIdx = len(st.events)
	st.events = append(st.events, Event{
		Node: st.node, Block: idx, Class: class, InjectedAt: now, Carried: carried,
	})
	st.s.Injected++
	st.s.InjectedByClass[class]++
	if carried {
		st.s.Carried++
	}
}

// resolve closes a block's open event.
func (st *Store) resolve(now sim.Time, b *blockSum, res Resolution) {
	ev := &st.events[b.eventIdx]
	ev.Resolution = res
	ev.ResolvedAt = now
	switch res {
	case ResRepairedParity:
		st.s.RepairedParity++
	case ResRewritten:
		if b.detected {
			st.s.HealedByRewrite++
		} else {
			st.s.ClearedUndetected++
		}
	}
	b.class = ClassNone
	b.detected = false
}

// detect marks a corrupt block found by `by`, counting first detections only.
func (st *Store) detect(now sim.Time, b *blockSum, by string) {
	if b.detected {
		return
	}
	b.detected = true
	ev := &st.events[b.eventIdx]
	ev.Detected = true
	ev.DetectedAt = now
	ev.DetectedBy = by
	switch by {
	case "read":
		st.s.DetectedRead++
	case "scrub":
		st.s.DetectedScrub++
	case "restart":
		st.s.DetectedRestart++
	case "audit":
		st.s.DetectedAudit++
	}
}

// CheckRead verifies every block overlapping a read of [addr, addr+n),
// counting the verification, and returns the corrupt blocks found (already
// marked detected). The caller — the I/O node — decides per detection
// whether parity repair applies (class and array state) and either charges
// the repair and calls Repair, or fails the read with ErrCorrupt.
func (st *Store) CheckRead(now sim.Time, addr, n int64) []Detection {
	if n <= 0 {
		return nil
	}
	first, last := st.span(addr, n)
	st.s.VerifiedBlocks += last - first + 1
	st.s.VerifiedBytes += n
	var dets []Detection
	for idx := first; idx <= last; idx++ {
		b := st.blocks[idx]
		if b == nil || b.sum == Checksum(idx, b.version) {
			continue
		}
		st.detect(now, b, "read")
		dets = append(dets, Detection{Block: idx, Class: b.class})
	}
	return dets
}

// Repair records a completed parity reconstruction of a block: its stored
// sum is recomputed from the surviving lanes and the event closes. `by` is
// the path that drove it ("read" or "scrub").
func (st *Store) Repair(now sim.Time, idx int64, by string) {
	b := st.blocks[idx]
	if b == nil || !b.corrupt() {
		return
	}
	st.detect(now, b, by)
	st.resolve(now, b, ResRepairedParity)
	b.sum = Checksum(idx, b.version)
	if by == "scrub" {
		st.s.ScrubRepairs++
	}
}

// ScrubNext returns up to max written block indices starting at the scrub
// cursor, in ascending order, advancing the cursor past them. When the
// cursor passes the last written block the pass wraps: wrapped is true, the
// cursor resets, and the next call starts over.
func (st *Store) ScrubNext(max int) (idxs []int64, wrapped bool) {
	if max <= 0 || len(st.blocks) == 0 {
		return nil, false
	}
	all := st.sortedWritten()
	i := sort.Search(len(all), func(k int) bool { return all[k] >= st.scrubCursor })
	if i == len(all) {
		st.scrubCursor = 0
		st.s.ScrubPasses++
		return nil, true
	}
	j := i + max
	if j > len(all) {
		j = len(all)
	}
	st.scrubCursor = all[j-1] + 1
	// Copy into the reusable buffer: the caller iterates the slice across
	// simulated time, during which new writes may dirty and re-sort written.
	st.scrubBuf = append(st.scrubBuf[:0], all[i:j]...)
	return st.scrubBuf, false
}

// ScrubCheck verifies one block on behalf of the scrubber and reports
// whether it is corrupt and its class. Detection is recorded; repair is the
// caller's job (it must charge array time).
func (st *Store) ScrubCheck(now sim.Time, idx int64) (Class, bool) {
	b := st.blocks[idx]
	if b == nil {
		return ClassNone, false
	}
	st.s.VerifiedBlocks++
	st.s.VerifiedBytes += st.cfg.BlockBytes
	if b.sum == Checksum(idx, b.version) {
		return ClassNone, false
	}
	st.detect(now, b, "scrub")
	return b.class, true
}

// CountScrub accumulates one scrub slice's bookkeeping.
func (st *Store) CountScrub(blocks int64, took sim.Time) {
	st.s.ScrubbedBlocks += blocks
	st.s.ScrubTime += took
}

// CountCorruptRead counts one read request failed with ErrCorrupt.
func (st *Store) CountCorruptRead() { st.s.CorruptReads++ }

// VerifyExtent reports whether any block overlapping [addr, addr+n) holds
// latent corruption, marking detections with the given label ("restart" for
// checkpoint restart verification). It is a bookkeeping query — no
// simulation time — used where no process context exists.
func (st *Store) VerifyExtent(now sim.Time, addr, n int64, by string) bool {
	if n <= 0 {
		return false
	}
	first, last := st.span(addr, n)
	corrupt := false
	for idx := first; idx <= last; idx++ {
		b := st.blocks[idx]
		if b == nil || b.sum == Checksum(idx, b.version) {
			continue
		}
		st.detect(now, b, by)
		corrupt = true
	}
	return corrupt
}

// Audit is the end-of-run sweep: a full verification pass over every tracked
// block, charged no simulation time (the run is over — this is the report's
// bookkeeping, standing in for the scrub pass that would eventually reach
// these blocks). Corruption first found here was silent during the run.
// Parity-repairable blocks are repaired (when the array still has parity);
// the rest stay open — the unrepairable count of the report.
func (st *Store) Audit(now sim.Time, degraded bool) {
	for _, idx := range st.sortedWritten() {
		b := st.blocks[idx]
		if b.sum == Checksum(idx, b.version) {
			continue
		}
		st.detect(now, b, "audit")
		if b.class.Repairable() && !degraded {
			st.resolve(now, b, ResRepairedParity)
			b.sum = Checksum(idx, b.version)
			st.s.AuditRepairs++
		}
	}
}

// CorruptBlock is one still-corrupt block, for the restart ledger.
type CorruptBlock struct {
	Block int64
	Class Class
}

// CorruptBlocks returns the blocks still holding latent corruption, in
// ascending order.
func (st *Store) CorruptBlocks() []CorruptBlock {
	var out []CorruptBlock
	for _, idx := range st.sortedWritten() {
		if b := st.blocks[idx]; b.corrupt() {
			out = append(out, CorruptBlock{Block: idx, Class: b.class})
		}
	}
	return out
}

// Events returns the corruption event timeline, in injection order.
func (st *Store) Events() []Event {
	out := make([]Event, len(st.events))
	copy(out, st.events)
	return out
}

// Stats returns the accumulated counters, with the outstanding-corruption
// count computed at call time.
func (st *Store) Stats() Stats {
	s := st.s
	s.Node = st.node
	s.TrackedBlocks = int64(len(st.blocks))
	for _, b := range st.blocks {
		if b.corrupt() {
			s.OutstandingCorrupt++
			if b.detected {
				s.UnrepairableOpen++
			}
		}
	}
	return s
}
