package iotrace

import (
	"testing"

	"repro/internal/sim"
)

func TestOpNames(t *testing.T) {
	cases := map[Op]string{
		OpRead:      "Read",
		OpWrite:     "Write",
		OpSeek:      "Seek",
		OpOpen:      "Open",
		OpClose:     "Close",
		OpAsyncRead: "AsynchRead",
		OpIOWait:    "I/O Wait",
		OpLsize:     "Lsize",
		OpFlush:     "Forflush",
	}
	if len(cases) != NumOps {
		t.Fatalf("test covers %d ops, NumOps=%d", len(cases), NumOps)
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d: %q, want %q", int(op), op.String(), want)
		}
		if !op.Valid() {
			t.Errorf("%v not valid", op)
		}
	}
	if Op(99).Valid() || Op(-1).Valid() {
		t.Error("out-of-range op valid")
	}
	if Op(99).String() != "Op(99)" {
		t.Errorf("out-of-range name %q", Op(99).String())
	}
}

func TestOpMoves(t *testing.T) {
	moves := map[Op]bool{
		OpRead: true, OpWrite: true, OpAsyncRead: true,
		OpSeek: false, OpOpen: false, OpClose: false,
		OpIOWait: false, OpLsize: false, OpFlush: false,
	}
	for op, want := range moves {
		if op.Moves() != want {
			t.Errorf("%v.Moves() = %v", op, op.Moves())
		}
	}
}

func TestModeNames(t *testing.T) {
	cases := map[AccessMode]string{
		ModeNone:   "NONE",
		ModeUnix:   "M_UNIX",
		ModeLog:    "M_LOG",
		ModeSync:   "M_SYNC",
		ModeRecord: "M_RECORD",
		ModeGlobal: "M_GLOBAL",
		ModeAsync:  "M_ASYNC",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d: %q, want %q", int(m), m.String(), want)
		}
		if !m.Valid() {
			t.Errorf("%v not valid", m)
		}
	}
	if AccessMode(42).Valid() {
		t.Error("mode 42 valid")
	}
	if AccessMode(42).String() != "AccessMode(42)" {
		t.Errorf("out-of-range mode name %q", AccessMode(42).String())
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 2 * sim.Second, End: 5 * sim.Second}
	if e.Duration() != 3*sim.Second {
		t.Fatalf("duration %v", e.Duration())
	}
}

func TestDiscardAcceptsAnything(t *testing.T) {
	Discard.Record(Event{Op: OpRead})
	Discard.Record(Event{}) // no panic, no state
}
