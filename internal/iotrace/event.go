// Package iotrace defines the canonical vocabulary for captured I/O events:
// the operation taxonomy and the timestamped event record emitted by the file
// system layers and consumed by the Pablo instrumentation, the SDDF codec,
// and the analysis tools.
//
// It deliberately mirrors the categories of the SC '95 paper: reads, writes,
// seeks, opens, closes, asynchronous reads with separately-accounted I/O wait
// (RENDER, Table 3), and the Fortran runtime operations lsize and forflush
// that appear in the Hartree–Fock integral phase (Table 5).
package iotrace

import (
	"fmt"

	"repro/internal/sim"
)

// Op identifies an I/O operation class.
type Op int

// Operation classes, matching the rows of the paper's Tables 1, 3 and 5.
const (
	OpRead Op = iota
	OpWrite
	OpSeek
	OpOpen
	OpClose
	OpAsyncRead // issue of an asynchronous read (cost of issuing only)
	OpIOWait    // wait for a previously issued asynchronous read
	OpLsize     // Fortran LSIZE: query file size
	OpFlush     // Fortran FORFLUSH: flush buffered output
	numOps
)

// NumOps is the number of distinct operation classes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpRead:      "Read",
	OpWrite:     "Write",
	OpSeek:      "Seek",
	OpOpen:      "Open",
	OpClose:     "Close",
	OpAsyncRead: "AsynchRead",
	OpIOWait:    "I/O Wait",
	OpLsize:     "Lsize",
	OpFlush:     "Forflush",
}

// String returns the paper's name for the operation class.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o >= 0 && o < numOps }

// Moves reports whether the operation transfers data bytes (reads, writes,
// and asynchronous reads; seeks "move" the pointer but transfer nothing).
func (o Op) Moves() bool {
	return o == OpRead || o == OpWrite || o == OpAsyncRead
}

// FileID identifies a file within one traced run, mirroring the small
// integer file identifiers on the y-axis of the paper's file-access
// timelines (Figures 5, 8, 15–17).
type FileID int

// Event is one captured I/O operation: who, what, where, how much, and when.
// Start/End are simulated times; End-Start is the operation's duration as it
// would be measured by instrumentation bracketing the call.
type Event struct {
	Seq    int64      // capture sequence number, unique per trace
	Node   int        // compute node performing the operation
	Op     Op         // operation class
	File   FileID     // file operated on (0 = none, e.g. a failed open)
	Offset int64      // file offset of the access (or seek target)
	Bytes  int64      // bytes transferred (seek: distance moved; others: 0)
	Start  sim.Time   // operation begin
	End    sim.Time   // operation end (return to application)
	Mode   AccessMode // file access mode of the handle used
	Phase  string     // application phase label active at capture time
}

// Duration returns the operation's elapsed time.
func (e Event) Duration() sim.Time { return e.End - e.Start }

// AccessMode mirrors Intel PFS's six parallel file access modes (§3.2 of the
// paper). It lives here (rather than in the pfs package) so trace records and
// analyses can name modes without importing the file system.
type AccessMode int

// The six PFS access modes, plus ModeNone for events with no file context.
const (
	ModeNone   AccessMode = iota
	ModeUnix              // M_UNIX: independent file pointers, POSIX atomicity
	ModeLog               // M_LOG: shared pointer, first-come-first-served, variable length
	ModeSync              // M_SYNC: shared pointer, accesses in node-number order
	ModeRecord            // M_RECORD: independent pointers, FCFS, fixed-length records
	ModeGlobal            // M_GLOBAL: shared pointer, all nodes access the same data
	ModeAsync             // M_ASYNC: independent pointers, unrestricted, no atomicity
)

var modeNames = [...]string{
	ModeNone:   "NONE",
	ModeUnix:   "M_UNIX",
	ModeLog:    "M_LOG",
	ModeSync:   "M_SYNC",
	ModeRecord: "M_RECORD",
	ModeGlobal: "M_GLOBAL",
	ModeAsync:  "M_ASYNC",
}

// String returns Intel's name for the mode.
func (m AccessMode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
	return modeNames[m]
}

// Valid reports whether m is a defined access mode (including ModeNone).
func (m AccessMode) Valid() bool { return m >= 0 && m <= ModeAsync }

// Recorder receives events as they are captured. The Pablo tracer implements
// Recorder; the file-system layers emit into one.
type Recorder interface {
	Record(e Event)
}

// Discard is a Recorder that drops all events (for uninstrumented runs).
var Discard Recorder = discard{}

type discard struct{}

func (discard) Record(Event) {}
