// Package htf is an I/O-faithful skeleton of the Hartree-Fock quantum
// chemistry application (three Fortran programs run as a pipeline)
// characterized in §7 of the paper:
//
//   - psetup ("initialization"): node 0 reads the initial 16-atom input,
//     transforms it, and writes the setup files — hundreds of small-to-mid
//     reads and writes, with the writes visibly cheapened by Fortran runtime
//     buffering (Table 5's 5.5 s for 452 writes).
//   - pargos ("integral calculation"): every node creates its own integral
//     file (the open storm that makes open 63% of the phase's I/O time),
//     sizes it (LSIZE), then alternates long integral computations with
//     ~80 KB record writes, each followed by FORFLUSH.
//   - pscf ("self-consistent field"): every node rereads its integral file
//     once per SCF pass — the files are too large to keep in memory — with a
//     rewind seek between passes (Table 5's 3.5 GB of seek "volume"), while
//     node 0 maintains density/Fock side files.
//
// Request counts, sizes, file roles and mode usage (M_UNIX exclusively)
// match Tables 5-6 and Figures 9-17; see EXPERIMENTS.md.
package htf

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes the skeleton.
type Config struct {
	Nodes           int   // compute nodes (paper: 128)
	IntegralRecords int   // total two-electron integral records (8,532)
	RecordBytes     int64 // integral record size (81,920)
	SCFPasses       int   // full rereads of the integral files (6)
	ExtraSCFRecords int   // node 0's partial convergence pass (33)

	ComputePerIntegral sim.Time // pargos: integral block computation (~16.5 s)
	ComputePerSCFRead  sim.Time // pscf: Fock contribution per record (~1.8 s)
	PsetupCompute      sim.Time // psetup: transform time between operations

	// RecomputeIntegrals selects the §7.2 alternative the HTF group
	// actually ships: instead of rereading stored integral records in
	// every SCF pass, recompute them (~500 FLOPs per integral). The traced
	// run — and the default — is the reread variant the developers would
	// *like* to use.
	RecomputeIntegrals bool
	// BytesPerIntegral and NodeFlopRate parameterize the recomputation
	// cost (defaults: 56 B/integral, 50 MFLOP/s).
	BytesPerIntegral int64
	NodeFlopRate     float64

	Seed uint64

	// Ckpt, when non-nil, checkpoints the SCF loop: each completed pass is
	// one work unit. On a restart (ResumeUnit > 0) the skeleton skips
	// psetup and pargos — their outputs are pre-populated — restores node
	// state from the checkpoint file, and resumes pscf at the committed
	// pass.
	Ckpt workload.Checkpointer
}

// RecomputeTimePerRecord returns the time to recompute one integral
// record's worth of integrals instead of reading it.
func (c Config) RecomputeTimePerRecord() sim.Time {
	bpi := c.BytesPerIntegral
	if bpi <= 0 {
		bpi = 56
	}
	rate := c.NodeFlopRate
	if rate <= 0 {
		rate = 50e6
	}
	integrals := float64(c.RecordBytes) / float64(bpi)
	return sim.Time(integrals * 500 / rate * float64(sim.Second))
}

// DefaultConfig returns the paper-scale configuration (16 atoms, 128 nodes).
func DefaultConfig() Config {
	return Config{
		Nodes:              128,
		IntegralRecords:    8532,
		RecordBytes:        81920,
		SCFPasses:          6,
		ExtraSCFRecords:    33,
		ComputePerIntegral: 16500 * sim.Millisecond,
		ComputePerSCFRead:  1750 * sim.Millisecond,
		PsetupCompute:      80 * sim.Millisecond,
		Seed:               0x48544600, // "HTF"
	}
}

// SmallConfig returns a reduced configuration for fast tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Nodes = 8
	c.IntegralRecords = 36
	c.SCFPasses = 2
	c.ExtraSCFRecords = 3
	c.ComputePerIntegral = 50 * sim.Millisecond
	c.ComputePerSCFRead = 20 * sim.Millisecond
	c.PsetupCompute = 1 * sim.Millisecond
	return c
}

// CostModel returns the PFS calibration for the HTF runs (see
// EXPERIMENTS.md; the Fortran runtime's write buffering and the LSIZE and
// FORFLUSH costs are specific to this code).
func CostModel() pfs.CostModel {
	return pfs.CostModel{
		ClientOverhead:     500 * sim.Microsecond,
		AsyncIssue:         10 * sim.Millisecond,
		OpenService:        63 * sim.Millisecond,
		CreateService:      495 * sim.Millisecond,
		FirstOpenPenalty:   31200 * sim.Millisecond,
		CloseService:       73 * sim.Millisecond,
		SeekService:        1 * sim.Millisecond,
		LsizeService:       119 * sim.Millisecond,
		FlushService:       35 * sim.Millisecond,
		SharedTokenService: 2 * sim.Millisecond,
		WriteBufferBytes:   64 * 1024,
		ReadCopyBytesPerS:  325e3,
		ReadCopyMin:        64 * 1024,
	}
}

// MachineConfig returns the machine configuration for the paper runs. The
// disk parameters reflect the heavier per-request software path of the HTF
// epoch's I/O system (see EXPERIMENTS.md).
func MachineConfig() workload.MachineConfig {
	mc := workload.DefaultMachineConfig()
	mc.ComputeNodes = DefaultConfig().Nodes
	mc.PFS.Cost = CostModel()
	mc.PFS.Disk.Position = 50 * sim.Millisecond
	mc.PFS.Disk.Overhead = 25 * sim.Millisecond
	mc.PFS.Disk.BWBytesPerS = 1.2e6
	return mc
}

// Phase labels attached to trace events — the paper's three program names.
const (
	PhasePsetup = "psetup"
	PhasePargos = "pargos"
	PhasePscf   = "pscf"
)

// App is the runnable skeleton.
type App struct {
	cfg  Config
	errs *workload.NodeErrors
}

// New validates the configuration and builds the app.
func New(cfg Config) (*App, error) {
	if cfg.Nodes < 1 || cfg.IntegralRecords < cfg.Nodes || cfg.RecordBytes < 1 {
		return nil, fmt.Errorf("htf: invalid config %+v", cfg)
	}
	if cfg.SCFPasses < 1 || cfg.ExtraSCFRecords < 0 {
		return nil, fmt.Errorf("htf: invalid passes in config %+v", cfg)
	}
	return &App{cfg: cfg}, nil
}

// Name implements workload.App.
func (*App) Name() string { return "htf" }

// RecordsForNode distributes the integral records across nodes (remainder to
// the low-numbered nodes): at paper scale, nodes 0-83 hold 67 records and
// nodes 84-127 hold 66.
func (a *App) RecordsForNode(node int) int {
	base := a.cfg.IntegralRecords / a.cfg.Nodes
	if node < a.cfg.IntegralRecords%a.cfg.Nodes {
		return base + 1
	}
	return base
}

// readRun is a run of identical requests.
type readRun struct {
	count int
	bytes int64
}

// psetup I/O profiles (node 0 only). Together with the two 26/27-byte
// correction writes: 371 reads (151 < 4 KB, 220 < 64 KB, ~3.52 MB) and 452
// writes (218 < 4 KB, 234 < 64 KB, ~3.76 MB), matching Tables 5-6.
var (
	psetupReads = map[string][]readRun{
		"htf.input": {{75, 2200}, {110, 14500}},
		"htf.basis": {{76, 2200}, {110, 14500}},
	}
	psetupWrites = map[string][]readRun{
		"htf.setup":  {{108, 2200}, {117, 14000}},
		"htf.setup2": {{108, 2200}, {117, 14000}},
	}
)

// pscf per-pass node-0 side-file activity: 27 small + 18 mid reads, 7 small
// + 26 mid + 1 large writes, 7 seeks, 4 scratch open/close pairs — summing
// with the initial activity to Table 5's 165/109 small/mid reads, 43/158/6
// writes, 45 extra seeks, and 29/28 extra opens/closes.
const (
	pscfPassSmallReads  = 27
	pscfPassMidReads    = 18
	pscfPassSmallWrites = 7
	pscfPassMidWrites   = 26
	pscfPassLargeWrites = 1
	pscfPassSeeks       = 7
	pscfPassScratch     = 4
	pscfSmallBytes      = 2200
	pscfMidReadBytes    = 30000
	pscfMidWriteBytes   = 20000
	pscfLargeBytes      = 100000
)

// Launch implements workload.App.
func (a *App) Launch(m *workload.Machine, fs workload.FS) error {
	cfg := a.cfg
	if cfg.Nodes > m.Nodes {
		return fmt.Errorf("htf: config wants %d nodes, machine has %d", cfg.Nodes, m.Nodes)
	}

	// A configured checkpointer may resume the SCF loop mid-way: the
	// machine is freshly built after a crash, so psetup and pargos are not
	// re-run and their output files must be pre-populated with exactly the
	// extent the completed programs had produced.
	resume := 0
	if cfg.Ckpt != nil {
		resume = cfg.Ckpt.ResumeUnit()
	}
	if resume > cfg.SCFPasses {
		return fmt.Errorf("htf: resume pass %d beyond %d SCF passes", resume, cfg.SCFPasses)
	}
	if resume > 0 {
		for _, name := range []string{"htf.setup", "htf.setup2"} {
			var size int64
			for _, r := range psetupWrites[name] {
				size += int64(r.count) * r.bytes
			}
			if _, err := fs.Preload(name, size); err != nil {
				return fmt.Errorf("htf: %w", err)
			}
		}
		for node := 0; node < cfg.Nodes; node++ {
			size := int64(a.RecordsForNode(node)) * cfg.RecordBytes
			if node == 0 {
				size += 2000 + 2000 + 30000 // pargos header records
			}
			if _, err := fs.Preload(integralFile(node), size); err != nil {
				return fmt.Errorf("htf: %w", err)
			}
		}
	}

	fs.ReserveIDs(2)
	for _, name := range []string{"htf.input", "htf.basis"} {
		var size int64
		for _, r := range psetupReads[name] {
			size += int64(r.count) * r.bytes
		}
		if _, err := fs.Preload(name, size); err != nil {
			return fmt.Errorf("htf: %w", err)
		}
	}
	// Density/overlap restart files from a previous production run, reread
	// by every SCF pass.
	sideSizes := []int64{
		int64(3+pscfPassSmallReads*cfg.SCFPasses+8) * pscfSmallBytes,
		int64(1+pscfPassMidReads*cfg.SCFPasses+4) * pscfMidReadBytes,
		256 * 1024,
		256 * 1024,
		256 * 1024,
	}
	for i, size := range sideSizes {
		if _, err := fs.Preload(fmt.Sprintf("pscf.side%d", i), size); err != nil {
			return fmt.Errorf("htf: %w", err)
		}
	}

	var errs workload.NodeErrors
	errs.Attach(m.Eng)
	a.errs = &errs
	pargosStart := sim.NewBarrier(m.Eng, "htf-pargos-start", cfg.Nodes)
	pscfStart := sim.NewBarrier(m.Eng, "htf-pscf-start", cfg.Nodes)
	passBarrier := sim.NewBarrier(m.Eng, "htf-pass", cfg.Nodes)
	rng := sim.NewRNG(cfg.Seed)
	nodeRNG := make([]*sim.RNG, cfg.Nodes)
	for i := range nodeRNG {
		nodeRNG[i] = rng.Split()
	}

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		m.Eng.Spawn(fmt.Sprintf("htf-n%d", node), func(p *sim.Process) {
			if resume > 0 {
				if node == 0 {
					fs.SetPhase(PhasePscf)
				}
				pscfStart.Wait(p)
				if err := cfg.Ckpt.Restore(p, fs, node); err != nil {
					errs.Addf("pscf node %d restore: %v", node, err)
					return
				}
				if err := a.runPscf(p, fs, node, resume, nodeRNG[node], passBarrier); err != nil {
					errs.Addf("pscf node %d: %v", node, err)
					return
				}
				return
			}
			if node == 0 {
				if err := a.runPsetup(p, fs); err != nil {
					errs.Addf("psetup: %v", err)
					return
				}
				fs.SetPhase(PhasePargos)
			}
			pargosStart.Wait(p)
			if err := a.runPargos(p, fs, node, nodeRNG[node]); err != nil {
				errs.Addf("pargos node %d: %v", node, err)
				return
			}
			pscfStart.Wait(p)
			if node == 0 {
				fs.SetPhase(PhasePscf)
			}
			if err := a.runPscf(p, fs, node, 0, nodeRNG[node], passBarrier); err != nil {
				errs.Addf("pscf node %d: %v", node, err)
				return
			}
		})
	}
	return nil
}

// runPsetup is the first program: node 0 reads the initial input, transforms
// it, and writes the setup files.
func (a *App) runPsetup(p *sim.Process, fs workload.FS) error {
	fs.SetPhase(PhasePsetup)
	r := sim.NewRNG(a.cfg.Seed ^ 0x9e7)

	inNames := []string{"htf.input", "htf.basis"}
	outNames := []string{"htf.setup", "htf.setup2"}
	in := make([]workload.Handle, len(inNames))
	out := make([]workload.Handle, len(outNames))
	for i, name := range inNames {
		h, err := fs.Open(p, 0, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		in[i] = h
	}
	for i, name := range outNames {
		h, err := fs.Create(p, 0, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		out[i] = h
	}

	// Interleave reads, transforms, and buffered writes.
	for i := range inNames {
		reads, writes := psetupReads[inNames[i]], psetupWrites[outNames[i]]
		ri, wi := expand(reads), expand(writes)
		n := len(ri)
		if len(wi) > n {
			n = len(wi)
		}
		for k := 0; k < n; k++ {
			if k < len(ri) {
				if _, err := in[i].Read(p, ri[k]); err != nil {
					return err
				}
			}
			p.Sleep(r.Jitter(a.cfg.PsetupCompute, 0.3))
			if k < len(wi) {
				if _, err := out[i].Write(p, wi[k]); err != nil {
					return err
				}
			}
		}
		// A small backward correction seek on each output — Table 5's two
		// psetup seeks of 26 and 27 bytes.
		if _, err := out[i].Seek(p, -int64(26+i), pfs.SeekCurrent); err != nil {
			return err
		}
		if _, err := out[i].Write(p, int64(26+i)); err != nil {
			return err
		}
	}

	// Three of the four files close; htf.input is inherited by pargos.
	for _, h := range []workload.Handle{in[1], out[0], out[1]} {
		if err := h.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// expand flattens readRuns into per-request sizes.
func expand(runs []readRun) []int64 {
	var out []int64
	for _, r := range runs {
		for i := 0; i < r.count; i++ {
			out = append(out, r.bytes)
		}
	}
	return out
}

// integralFile names node k's integral file.
func integralFile(node int) string { return fmt.Sprintf("integrals.%03d", node) }

// runPargos is the second program: per-node integral files, written record
// by record with a FORFLUSH after every write.
func (a *App) runPargos(p *sim.Process, fs workload.FS, node int, rng *sim.RNG) error {
	cfg := a.cfg
	var setup workload.Handle
	if node == 0 {
		// Node 0 consults the setup data and broadcasts parameters: 143
		// small and 2 mid reads (Table 5's integral-phase reads), plus the
		// two zero-distance rewinds that, with the per-node ones below,
		// give the phase's 130 zero-volume seeks.
		h, err := fs.Open(p, 0, "htf.setup", iotrace.ModeUnix)
		if err != nil {
			return err
		}
		setup = h
		if _, err := setup.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
		for i := 0; i < 143; i++ {
			if _, err := h.Read(p, 2200); err != nil {
				return err
			}
		}
		h2, err := fs.Open(p, 0, "htf.setup2", iotrace.ModeUnix)
		if err != nil {
			return err
		}
		if _, err := h2.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, err := h2.Read(p, 14500); err != nil {
				return err
			}
		}
		// setup2 is consulted once and inherited by the environment (its
		// close is not part of the traced program).
	}

	h, err := fs.Create(p, node, integralFile(node), iotrace.ModeUnix)
	if err != nil {
		return err
	}
	// Every node rewinds its fresh integral file: 128 of the phase's 130
	// zero-distance seeks.
	if _, err := h.Seek(p, 0, pfs.SeekStart); err != nil {
		return err
	}
	if node == 0 {
		// Header records ahead of the integrals: the phase's 2 small + 1
		// mid writes.
		for _, n := range []int64{2000, 2000, 30000} {
			if _, err := h.Write(p, n); err != nil {
				return err
			}
			if err := h.Flush(p); err != nil {
				return err
			}
		}
	}
	if _, err := h.Lsize(p); err != nil {
		return err
	}

	for rec := 0; rec < a.RecordsForNode(node); rec++ {
		p.Sleep(rng.Jitter(cfg.ComputePerIntegral, 0.05))
		if _, err := h.Write(p, cfg.RecordBytes); err != nil {
			return err
		}
		if err := h.Flush(p); err != nil {
			return err
		}
	}
	// The original code flushes once more before close unless the last
	// record drained the runtime buffer; the traced run shows 8,657
	// FORFLUSHes = 8,535 writes + 122 residual flushes.
	if node < residualFlushNodes(cfg.Nodes) {
		if err := h.Flush(p); err != nil {
			return err
		}
	}
	if err := h.Close(p); err != nil {
		return err
	}
	if node == 0 {
		if err := setup.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// residualFlushNodes scales the 122-of-128 residual-flush count.
func residualFlushNodes(nodes int) int {
	n := nodes * 122 / 128
	if n < 1 {
		n = 1
	}
	return n
}

// runPscf is the third program: every node rereads its integral file once
// per SCF pass; node 0 additionally maintains the density/Fock side files.
// resume is the first pass to run (> 0 after a checkpoint restart).
func (a *App) runPscf(p *sim.Process, fs workload.FS, node, resume int, rng *sim.RNG, pass *sim.Barrier) error {
	cfg := a.cfg
	h, err := fs.Open(p, node, integralFile(node), iotrace.ModeUnix)
	if err != nil {
		return err
	}

	var side []workload.Handle
	if node == 0 {
		// Open the five restart/side files (with the integral opens: the
		// phase's 157 opens), rewind the two densities (2 of the 45 node-0
		// seeks), and seed the iteration: 3 small + 1 mid reads, 1 small +
		// 2 mid writes.
		for i := 0; i < 5; i++ {
			s, err := fs.Open(p, 0, fmt.Sprintf("pscf.side%d", i), iotrace.ModeUnix)
			if err != nil {
				return err
			}
			side = append(side, s)
		}
		for i := 0; i < 2; i++ {
			if _, err := side[i].Seek(p, 0, pfs.SeekStart); err != nil {
				return err
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := side[0].Read(p, pscfSmallBytes); err != nil {
				return err
			}
		}
		if _, err := side[1].Read(p, pscfMidReadBytes); err != nil {
			return err
		}
		if _, err := side[2].Write(p, pscfSmallBytes); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, err := side[3].Write(p, pscfMidWriteBytes); err != nil {
				return err
			}
		}
	}

	records := a.RecordsForNode(node)
	for ps := resume; ps < cfg.SCFPasses; ps++ {
		pass.Wait(p)
		// Rewind to the start of the integral file. On the first pass the
		// pointer is already at zero, so the traced seek distance sums to
		// (passes-1) x file size per node — Table 5's 3.5 GB.
		if _, err := h.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
		if node == 0 {
			if err := a.pscfSideWork(p, fs, side, ps); err != nil {
				return err
			}
		}
		for rec := 0; rec < records; rec++ {
			if cfg.RecomputeIntegrals {
				// §7.2 recompute variant: ~500 FLOPs per integral instead
				// of a record read.
				p.Sleep(cfg.RecomputeTimePerRecord())
			} else if _, err := h.Read(p, cfg.RecordBytes); err != nil {
				return err
			}
			p.Sleep(rng.Jitter(cfg.ComputePerSCFRead, 0.05))
		}
		if cfg.Ckpt != nil {
			if err := cfg.Ckpt.AfterUnit(p, fs, node, ps); err != nil {
				return err
			}
		}
	}

	if node == 0 {
		// Convergence check: a partial extra pass over the first records.
		if _, err := h.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
		extra := cfg.ExtraSCFRecords
		if extra > records {
			extra = records
		}
		for rec := 0; rec < extra; rec++ {
			if _, err := h.Read(p, cfg.RecordBytes); err != nil {
				return err
			}
		}
	}

	// Final Fock assembly and diagonalization before the files close; its
	// data-dependent duration staggers the nodes' closes.
	p.Sleep(rng.Uniform(2*sim.Second, 40*sim.Second))
	if err := h.Close(p); err != nil {
		return err
	}
	if node == 0 {
		// Close four of the five side files; one is left open (Table 5:
		// 157 opens, 156 closes).
		for _, s := range side[1:] {
			if err := s.Close(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// pscfSideWork is node 0's per-pass density/Fock maintenance: 4 scratch
// files created and closed, 7 seeks, 27 small + 18 mid reads, 7 small + 26
// mid + 1 large writes.
func (a *App) pscfSideWork(p *sim.Process, fs workload.FS, side []workload.Handle, pass int) error {
	var scratch []workload.Handle
	for i := 0; i < pscfPassScratch; i++ {
		s, err := fs.Create(p, 0, fmt.Sprintf("pscf.scratch%d.%d", pass, i), iotrace.ModeUnix)
		if err != nil {
			return err
		}
		scratch = append(scratch, s)
	}
	// Rewinds on the fresh scratch files and the writable side files: the
	// 7 near-zero-distance seeks per pass.
	for _, s := range scratch {
		if _, err := s.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
	}
	for _, s := range side[2:5] {
		if _, err := s.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
	}
	// Reread the densities: the streams continue from the previous pass.
	for i := 0; i < pscfPassSmallReads; i++ {
		if _, err := side[0].Read(p, pscfSmallBytes); err != nil {
			return err
		}
	}
	for i := 0; i < pscfPassMidReads; i++ {
		if _, err := side[1].Read(p, pscfMidReadBytes); err != nil {
			return err
		}
	}
	// New Fock/density data.
	for i := 0; i < pscfPassSmallWrites; i++ {
		if _, err := scratch[0].Write(p, pscfSmallBytes); err != nil {
			return err
		}
	}
	for i := 0; i < pscfPassMidWrites; i++ {
		if _, err := scratch[1+i%2].Write(p, pscfMidWriteBytes); err != nil {
			return err
		}
	}
	for i := 0; i < pscfPassLargeWrites; i++ {
		if _, err := scratch[3].Write(p, pscfLargeBytes); err != nil {
			return err
		}
	}
	for _, s := range scratch {
		if err := s.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// Err reports failures recorded during the run.
func (a *App) Err() error {
	if a.errs == nil {
		return nil
	}
	return a.errs.Err()
}

// FailedAt returns the simulated instant of the run's first node failure, if
// any — the fault-injection driver's lost-work anchor.
func (a *App) FailedAt() (sim.Time, bool) {
	if a.errs == nil {
		return 0, false
	}
	return a.errs.FirstAt()
}
