package htf

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
	"repro/internal/workload"
)

func runHTF(t testing.TB, cfg Config) ([]iotrace.Event, *workload.Machine) {
	t.Helper()
	mc := MachineConfig()
	mc.ComputeNodes = cfg.Nodes
	m, err := workload.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		t.Fatal(err)
	}
	if err := app.Err(); err != nil {
		t.Fatal(err)
	}
	return tr.Events(), m
}

var (
	paperTrace   []iotrace.Event
	paperMachine *workload.Machine
)

func paperRun(t testing.TB) []iotrace.Event {
	if paperTrace == nil {
		paperTrace, paperMachine = runHTF(t, DefaultConfig())
	}
	return paperTrace
}

func phase(t testing.TB, name string) []iotrace.Event {
	return analysis.FilterPhase(paperRun(t), name)
}

func TestPsetupCounts(t *testing.T) {
	s := analysis.Summarize(phase(t, PhasePsetup))
	cases := map[string]int64{
		"Read": 371, "Write": 452, "Seek": 2, "Open": 4, "Close": 3,
	}
	for label, want := range cases {
		row := s.Row(label)
		if row == nil || row.Count != want {
			t.Errorf("psetup %s = %v, want %d (Table 5)", label, row, want)
		}
	}
	// Seek volume 53 bytes (26 + 27) — exactly the paper's value.
	if v := s.Row("Seek").Volume; v != 53 {
		t.Errorf("psetup seek volume %d, want 53", v)
	}
}

func TestPsetupSizesAndVolumes(t *testing.T) {
	events := phase(t, PhasePsetup)
	sizes := analysis.Sizes(events)
	rb := sizes.Read.Buckets()
	if rb[0] != 151 || rb[1] != 220 || rb[2] != 0 || rb[3] != 0 {
		t.Errorf("psetup read buckets %v, want [151 220 0 0] (Table 6)", rb)
	}
	wb := sizes.Write.Buckets()
	if wb[0] != 218 || wb[1] != 234 || wb[2] != 0 || wb[3] != 0 {
		t.Errorf("psetup write buckets %v, want [218 234 0 0] (Table 6)", wb)
	}
	s := analysis.Summarize(events)
	if r := s.Row("Read").Volume; r < 3_300_000 || r > 3_700_000 {
		t.Errorf("psetup read volume %d, paper 3,522,497", r)
	}
	if w := s.Row("Write").Volume; w < 3_500_000 || w > 4_000_000 {
		t.Errorf("psetup write volume %d, paper 3,744,872", w)
	}
}

func TestPargosCounts(t *testing.T) {
	s := analysis.Summarize(phase(t, PhasePargos))
	cases := map[string]int64{
		"Read": 145, "Write": 8535, "Seek": 130, "Open": 130, "Close": 129,
		"Lsize": 128, "Forflush": 8657,
	}
	for label, want := range cases {
		row := s.Row(label)
		if row == nil || row.Count != want {
			t.Errorf("pargos %s = %v, want %d (Table 5)", label, row, want)
		}
	}
	if v := s.Row("Seek").Volume; v != 0 {
		t.Errorf("pargos seek volume %d, want 0", v)
	}
	// Write volume: paper 698,958,109; ours 8,532 x 81,920 + 34,000.
	if w := s.Row("Write").Volume; w < 695_000_000 || w > 702_000_000 {
		t.Errorf("pargos write volume %d", w)
	}
}

func TestPargosSizes(t *testing.T) {
	sizes := analysis.Sizes(phase(t, PhasePargos))
	rb := sizes.Read.Buckets()
	if rb[0] != 143 || rb[1] != 2 || rb[2] != 0 || rb[3] != 0 {
		t.Errorf("pargos read buckets %v, want [143 2 0 0]", rb)
	}
	wb := sizes.Write.Buckets()
	if wb[0] != 2 || wb[1] != 1 || wb[2] != 8532 || wb[3] != 0 {
		t.Errorf("pargos write buckets %v, want [2 1 8532 0]", wb)
	}
}

func TestPscfCounts(t *testing.T) {
	s := analysis.Summarize(phase(t, PhasePscf))
	cases := map[string]int64{
		"Read": 51499, "Write": 207, "Seek": 813, "Open": 157, "Close": 156,
	}
	for label, want := range cases {
		row := s.Row(label)
		if row == nil || row.Count != want {
			t.Errorf("pscf %s = %v, want %d (Table 5)", label, row, want)
		}
	}
}

func TestPscfSizesAndVolumes(t *testing.T) {
	events := phase(t, PhasePscf)
	sizes := analysis.Sizes(events)
	rb := sizes.Read.Buckets()
	if rb[0] != 165 || rb[1] != 109 || rb[2] != 51225 || rb[3] != 0 {
		t.Errorf("pscf read buckets %v, want [165 109 51225 0]", rb)
	}
	wb := sizes.Write.Buckets()
	if wb[0] != 43 || wb[1] != 158 || wb[2] != 6 || wb[3] != 0 {
		t.Errorf("pscf write buckets %v, want [43 158 6 0]", wb)
	}
	s := analysis.Summarize(events)
	// Read volume: paper 4,201,634,304.
	if r := s.Row("Read").Volume; r < 4_150_000_000 || r > 4_250_000_000 {
		t.Errorf("pscf read volume %d", r)
	}
	// Seek volume ("distance"): paper 3,495,198,798 = 5 rewinds x ~700 MB.
	if v := s.Row("Seek").Volume; v < 3_300_000_000 || v > 3_700_000_000 {
		t.Errorf("pscf seek volume %d", v)
	}
}

func TestTimeShapes(t *testing.T) {
	// The headline shape claims of Table 5.
	psetup := analysis.Summarize(phase(t, PhasePsetup))
	if o := psetup.Row("Open"); o.Pct < 35 {
		t.Errorf("psetup open pct %.1f, paper 57.0 (dominant)", o.Pct)
	}
	if r, w := psetup.Row("Read"), psetup.Row("Write"); r.NodeTime <= w.NodeTime {
		t.Errorf("psetup reads (%v) should cost more than buffered writes (%v)",
			r.NodeTime, w.NodeTime)
	}

	pargos := analysis.Summarize(phase(t, PhasePargos))
	if o := pargos.Row("Open"); o.Pct < 45 || o.Pct > 80 {
		t.Errorf("pargos open pct %.1f, paper 63.4 (dominant: the create storm)", o.Pct)
	}
	if w := pargos.Row("Write"); w.Pct < 18 || w.Pct > 45 {
		t.Errorf("pargos write pct %.1f, paper 31.2", w.Pct)
	}

	pscf := analysis.Summarize(phase(t, PhasePscf))
	if r := pscf.Row("Read"); r.Pct < 90 {
		t.Errorf("pscf read pct %.1f, paper 98.4 (dominant)", r.Pct)
	}
}

func TestProgramWallClocks(t *testing.T) {
	events := paperRun(t)
	bounds := func(name string) (sim.Time, sim.Time) {
		ph := analysis.FilterPhase(events, name)
		first, last := ph[0].Start, ph[0].End
		for _, e := range ph {
			if e.Start < first {
				first = e.Start
			}
			if e.End > last {
				last = e.End
			}
		}
		return first, last
	}
	_, psetupEnd := bounds(PhasePsetup)
	pargosStart, pargosEnd := bounds(PhasePargos)
	pscfStart, pscfEnd := bounds(PhasePscf)
	// Paper: 127 s, 1173 s, 1008 s. Accept generous bands — the split
	// between compute and I/O within each program is estimated.
	if s := psetupEnd.Seconds(); s < 80 || s > 200 {
		t.Errorf("psetup ends at %.0f s, paper ~127 s", s)
	}
	if d := (pargosEnd - pargosStart).Seconds(); d < 900 || d > 1500 {
		t.Errorf("pargos spans %.0f s, paper ~1173 s", d)
	}
	if d := (pscfEnd - pscfStart).Seconds(); d < 750 || d > 1350 {
		t.Errorf("pscf spans %.0f s, paper ~1008 s", d)
	}
}

func TestEveryNodeHasOwnIntegralFile(t *testing.T) {
	// Figures 15-17: each node writes the integral data to a separate file
	// and rereads that same file.
	writers := map[iotrace.FileID]int{}
	for _, e := range phase(t, PhasePargos) {
		if e.Op == iotrace.OpWrite && e.Bytes == DefaultConfig().RecordBytes {
			if prev, seen := writers[e.File]; seen && prev != e.Node {
				t.Fatalf("file %d written by nodes %d and %d", e.File, prev, e.Node)
			}
			writers[e.File] = e.Node
		}
	}
	if len(writers) != 128 {
		t.Fatalf("%d integral files, want 128", len(writers))
	}
	for _, e := range phase(t, PhasePscf) {
		if e.Op == iotrace.OpRead && e.Bytes == DefaultConfig().RecordBytes {
			if owner, ok := writers[e.File]; ok && owner != e.Node {
				t.Fatalf("node %d read node %d's integral file", e.Node, owner)
			}
		}
	}
}

func TestAllIOIsMUnix(t *testing.T) {
	// §7: "The Intel M_UNIX file mode is used exclusively in all three
	// codes."
	for _, e := range paperRun(t) {
		if e.Mode != iotrace.ModeUnix {
			t.Fatalf("op %v in mode %v", e.Op, e.Mode)
		}
	}
}

func TestRecordsDistribution(t *testing.T) {
	app, _ := New(DefaultConfig())
	total := 0
	for n := 0; n < 128; n++ {
		r := app.RecordsForNode(n)
		if r != 66 && r != 67 {
			t.Fatalf("node %d has %d records", n, r)
		}
		total += r
	}
	if total != 8532 {
		t.Fatalf("total records %d", total)
	}
}

func TestSmallConfigDeterministic(t *testing.T) {
	run := func() sim.Time {
		_, m := runHTF(t, SmallConfig())
		return m.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSmallConfigPhases(t *testing.T) {
	events, _ := runHTF(t, SmallConfig())
	for _, name := range []string{PhasePsetup, PhasePargos, PhasePscf} {
		if len(analysis.FilterPhase(events, name)) == 0 {
			t.Errorf("no events in phase %s", name)
		}
	}
	// 2 passes x 36 records + 3 extra reread reads.
	s := analysis.Summarize(analysis.FilterPhase(events, PhasePscf))
	var recReads int64
	for _, e := range analysis.FilterPhase(events, PhasePscf) {
		if e.Op == iotrace.OpRead && e.Bytes == SmallConfig().RecordBytes {
			recReads++
		}
	}
	if recReads != 2*36+3 {
		t.Errorf("pscf record reads %d, want 75", recReads)
	}
	_ = s
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 0, IntegralRecords: 10, RecordBytes: 1, SCFPasses: 1},
		{Nodes: 16, IntegralRecords: 10, RecordBytes: 1, SCFPasses: 1}, // fewer records than nodes
		{Nodes: 4, IntegralRecords: 10, RecordBytes: 0, SCFPasses: 1},
		{Nodes: 4, IntegralRecords: 10, RecordBytes: 1, SCFPasses: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRecomputeVariantBeatsRereadOnSlowIO(t *testing.T) {
	// §7.2: "the integrals are recomputed as needed, substantially
	// increasing the computation requirements but reducing... the total
	// execution time" — on the traced machine's slow I/O, the recompute
	// variant must win.
	reread := SmallConfig()
	recompute := SmallConfig()
	recompute.RecomputeIntegrals = true
	_, mRead := runHTF(t, reread)
	_, mComp := runHTF(t, recompute)
	if mComp.Eng.Now() >= mRead.Eng.Now() {
		t.Fatalf("recompute (%v) not faster than reread (%v) on slow I/O",
			mComp.Eng.Now(), mRead.Eng.Now())
	}
}

func TestRereadWinsOnFastIO(t *testing.T) {
	// With per-node-disk-class I/O (the paper's 5-10 MB/s/node threshold
	// met), rereading stored integrals beats recomputation.
	fast := func(cfg Config) *workload.Machine {
		mc := MachineConfig()
		mc.ComputeNodes = cfg.Nodes
		mc.PFS.IONodes = cfg.Nodes // a disk per node, as §7.2 prescribes
		mc.PFS.Disk.Position = 1 * sim.Millisecond
		mc.PFS.Disk.Overhead = 200 * sim.Microsecond
		mc.PFS.Disk.BWBytesPerS = 50e6
		mc.PFS.Cost.ReadCopyBytesPerS = 0 // no client copy path
		m, err := workload.NewMachine(mc)
		if err != nil {
			t.Fatal(err)
		}
		app, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
			t.Fatal(err)
		}
		if err := app.Err(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	reread := SmallConfig()
	recompute := SmallConfig()
	recompute.RecomputeIntegrals = true
	mRead := fast(reread)
	mComp := fast(recompute)
	if mRead.Eng.Now() >= mComp.Eng.Now() {
		t.Fatalf("reread (%v) not faster than recompute (%v) on fast I/O",
			mRead.Eng.Now(), mComp.Eng.Now())
	}
}

func TestRecomputeTimePerRecord(t *testing.T) {
	cfg := DefaultConfig()
	// 81,920 B / 56 B-per-integral x 500 FLOP / 50 MFLOP/s = ~14.6 ms.
	got := cfg.RecomputeTimePerRecord()
	if got < 14*sim.Millisecond || got > 15*sim.Millisecond {
		t.Fatalf("recompute time %v, want ~14.6ms", got)
	}
}
