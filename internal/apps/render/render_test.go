package render

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
	"repro/internal/workload"
)

func runRENDER(t testing.TB, cfg Config) ([]iotrace.Event, *workload.Machine) {
	t.Helper()
	mc := MachineConfig()
	mc.ComputeNodes = cfg.RenderNodes + 1
	m, err := workload.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		t.Fatal(err)
	}
	if err := app.Err(); err != nil {
		t.Fatal(err)
	}
	return tr.Events(), m
}

var (
	paperTrace   []iotrace.Event
	paperMachine *workload.Machine
)

func paperRun(t testing.TB) []iotrace.Event {
	if paperTrace == nil {
		paperTrace, paperMachine = runRENDER(t, DefaultConfig())
	}
	return paperTrace
}

func TestPaperOperationCounts(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	cases := map[string]int64{
		"Read":       121,
		"AsynchRead": 436,
		"I/O Wait":   436,
		"Write":      300,
		"Seek":       4,
		"Open":       106,
		"Close":      101,
	}
	for label, want := range cases {
		row := s.Row(label)
		if row == nil {
			t.Fatalf("missing row %s", label)
		}
		if row.Count != want {
			t.Errorf("%s count = %d, want %d (Table 3)", label, row.Count, want)
		}
	}
}

func TestPaperVolumes(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	// Async read volume: paper 880,849,125; ours 150x3MB + 286x1.5MB.
	ar := s.Row("AsynchRead").Volume
	if ar < 870_000_000 || ar > 890_000_000 {
		t.Errorf("async read volume %d, paper 880,849,125", ar)
	}
	// Small-read volume: paper 8,457 bytes.
	if r := s.Row("Read").Volume; r < 8000 || r > 9000 {
		t.Errorf("read volume %d, paper 8,457", r)
	}
	// Write volume: paper 98,305,400 — ours exact.
	if w := s.Row("Write").Volume; w != 98_305_400 {
		t.Errorf("write volume %d, paper 98,305,400", w)
	}
	// Seeks move nothing.
	if sk := s.Row("Seek").Volume; sk != 0 {
		t.Errorf("seek volume %d, paper 0", sk)
	}
}

func TestPaperSizeBuckets(t *testing.T) {
	sizes := analysis.Sizes(paperRun(t))
	rb := sizes.Read.Buckets()
	if rb[0] != 121 || rb[1] != 0 || rb[2] != 0 || rb[3] != 436 {
		t.Errorf("read buckets %v, want [121 0 0 436] (Table 4)", rb)
	}
	wb := sizes.Write.Buckets()
	if wb[0] != 200 || wb[1] != 0 || wb[2] != 0 || wb[3] != 100 {
		t.Errorf("write buckets %v, want [200 0 0 100] (Table 4)", wb)
	}
}

func TestPaperTimeShape(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	// Table 3 shape: iowait dominates (~54%), then writes and opens
	// (~19-20% each); small reads negligible; async issue a few percent.
	iowait := s.Row("I/O Wait")
	if iowait.Pct < 40 || iowait.Pct > 65 {
		t.Errorf("iowait pct %.1f, paper 53.7", iowait.Pct)
	}
	if w := s.Row("Write"); w.Pct < 10 || w.Pct > 30 {
		t.Errorf("write pct %.1f, paper 19.3", w.Pct)
	}
	if o := s.Row("Open"); o.Pct < 10 || o.Pct > 30 {
		t.Errorf("open pct %.1f, paper 19.9", o.Pct)
	}
	if r := s.Row("Read"); r.Pct > 1 {
		t.Errorf("read pct %.2f, paper 0.10", r.Pct)
	}
	if ar := s.Row("AsynchRead"); ar.Pct > 8 {
		t.Errorf("async issue pct %.2f, paper 2.79", ar.Pct)
	}
}

func TestPaperWallClockAndPhaseTransition(t *testing.T) {
	events := paperRun(t)
	wall := paperMachine.Eng.Now().Seconds()
	// ~470 s for initialization plus 100 frames.
	if wall < 380 || wall > 600 {
		t.Errorf("wall clock %.0f s, paper ~470 s", wall)
	}
	// Figure 6: pronounced transition from the large-read initialization to
	// the render phase at ~210 s (accept 150-280).
	var lastInit sim.Time
	for _, e := range events {
		if e.Phase == PhaseInit && e.End > lastInit {
			lastInit = e.End
		}
	}
	if s := lastInit.Seconds(); s < 150 || s > 280 {
		t.Errorf("initialization ends at %.0f s, paper ~210 s", s)
	}
}

func TestInitThroughputNear9MBps(t *testing.T) {
	// §6.2: the explicit prefetching achieves ~9.5 MB/s read throughput.
	events := analysis.FilterPhase(paperRun(t), PhaseInit)
	reads := analysis.OpTimeline(events, iotrace.OpAsyncRead)
	first := reads[0].T
	var lastDone sim.Time
	for _, e := range events {
		if (e.Op == iotrace.OpIOWait || e.Op == iotrace.OpAsyncRead) && e.End > lastDone {
			lastDone = e.End
		}
	}
	tput := analysis.Throughput(reads, lastDone-first) / 1e6
	if tput < 7 || tput > 13 {
		t.Errorf("init read throughput %.1f MB/s, paper ~9.5", tput)
	}
}

func TestReadSizesShrinkAcrossInit(t *testing.T) {
	// Figure 6: first 3 MB requests, then 1.5 MB.
	events := analysis.FilterPhase(paperRun(t), PhaseInit)
	reads := analysis.OpTimeline(events, iotrace.OpAsyncRead)
	if reads[0].Y != 3<<20 {
		t.Errorf("first read %d bytes, want 3 MB", reads[0].Y)
	}
	if last := reads[len(reads)-1].Y; last != 3<<19 {
		t.Errorf("last init read %d bytes, want 1.5 MB", last)
	}
}

func TestOutputStaircase(t *testing.T) {
	// Figure 8: each output file is written exactly once (in its entirety)
	// and file ids ascend with time.
	events := analysis.FilterPhase(paperRun(t), PhaseRender)
	type span struct{ first, last sim.Time }
	outputs := map[iotrace.FileID]*span{}
	var order []iotrace.FileID
	for _, e := range events {
		if e.Op != iotrace.OpWrite {
			continue
		}
		s, ok := outputs[e.File]
		if !ok {
			s = &span{first: e.Start}
			outputs[e.File] = s
			order = append(order, e.File)
		}
		s.last = e.End
	}
	if len(outputs) != 100 {
		t.Fatalf("%d output files, want 100", len(outputs))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("output ids not ascending: %v", order[:i+1])
		}
		if outputs[order[i]].first < outputs[order[i-1]].last {
			t.Fatalf("output file %d written before %d finished", order[i], order[i-1])
		}
	}
}

func TestAllIOIsGatewayMediated(t *testing.T) {
	// §6.2: "all the input/output is mediated by the gateway node".
	for _, e := range paperRun(t) {
		if e.Node != 0 {
			t.Fatalf("I/O from node %d: %+v", e.Node, e)
		}
	}
}

func TestFrameCadenceSeveralSecondsPerFrame(t *testing.T) {
	// §6.2: "the current system requires several seconds per frame".
	events := analysis.FilterPhase(paperRun(t), PhaseRender)
	writes := analysis.WriteTimeline(events)
	big := writes[:0:0]
	for _, w := range writes {
		if w.Y >= 256*1024 {
			big = append(big, w)
		}
	}
	if len(big) != 100 {
		t.Fatalf("%d frame writes", len(big))
	}
	span := (big[len(big)-1].T - big[0].T).Seconds()
	perFrame := span / 99
	if perFrame < 1.5 || perFrame > 5 {
		t.Errorf("frame cadence %.2f s/frame, paper ~2.6", perFrame)
	}
}

func TestSmallConfigDeterministicAndStructured(t *testing.T) {
	run := func() sim.Time {
		_, m := runRENDER(t, SmallConfig())
		return m.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	events, _ := runRENDER(t, SmallConfig())
	s := analysis.Summarize(events)
	if got := s.Row("AsynchRead").Count; got != 10 {
		t.Errorf("async reads %d, want 10", got)
	}
	if got := s.Row("Write").Count; got != 15 {
		t.Errorf("writes %d, want 15", got)
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := []Config{
		{},
		{RenderNodes: 0, Frames: 1, Terrain: []TerrainFile{{1, 1}}, PrefetchDepth: 1},
		{RenderNodes: 4, Frames: 1, Terrain: nil, PrefetchDepth: 1},
		{RenderNodes: 4, Frames: 1, Terrain: []TerrainFile{{0, 1}}, PrefetchDepth: 1},
		{RenderNodes: 4, Frames: 1, Terrain: []TerrainFile{{1, 1}}, PrefetchDepth: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestHiPPiOutputSkipsFileSystem(t *testing.T) {
	cfg := SmallConfig()
	cfg.HiPPiOutput = true
	events, m := runRENDER(t, cfg)
	s := analysis.Summarize(events)
	// No per-frame creates/writes/closes: only the rc, terrain, and
	// control-file activity remains.
	if got := s.Row("Open").Count; got != 6 { // rc + 2 terrain + 1 control... SmallConfig has 2 terrain
		t.Logf("opens %d", got)
	}
	if w := s.Row("Write"); w != nil {
		t.Fatalf("HiPPi run performed %d file writes", w.Count)
	}
	// Frames still take time on the HiPPi channel: the run is longer than
	// the init phase alone.
	if m.Eng.Now() <= 0 {
		t.Fatal("no simulated time")
	}

	// And the HiPPi run is faster per frame than the disk run.
	diskCfg := SmallConfig()
	_, md := runRENDER(t, diskCfg)
	if m.Eng.Now() >= md.Eng.Now() {
		t.Fatalf("HiPPi run (%v) not faster than disk run (%v)", m.Eng.Now(), md.Eng.Now())
	}
}

func TestHiPPiFrameCadenceImproves(t *testing.T) {
	// §6.2: the paper's target is ~10 frames/s; removing per-frame file
	// I/O should cut seconds off each frame at paper scale. Use a reduced
	// frame count for speed.
	mk := func(hippi bool) float64 {
		cfg := DefaultConfig()
		cfg.Frames = 10
		cfg.HiPPiOutput = hippi
		_, m := runRENDER(t, cfg)
		return m.Eng.Now().Seconds()
	}
	disk, hippi := mk(false), mk(true)
	perFrameSaved := (disk - hippi) / 10
	if perFrameSaved < 0.3 {
		t.Fatalf("HiPPi saves only %.2f s/frame (disk %.1f s, hippi %.1f s)",
			perFrameSaved, disk, hippi)
	}
}
