// Package render is an I/O-faithful skeleton of the RENDER terrain-rendering
// code (JPL's parallel ray-identification renderer for planetary flybys)
// characterized in §6 of the paper.
//
// The skeleton reproduces the hybrid control/data-parallel organization of
// Figure 1: a single gateway node mediates all file I/O for a group of
// renderer nodes. Its two phases:
//
//  1. Initialization: the gateway reads the multi-hundred-megabyte terrain
//     data set from four files using explicitly prefetched asynchronous
//     M_UNIX reads (3 MB requests, then 1.5 MB — Figure 6), and broadcasts
//     the data to the renderers, which select their subsets.
//  2. Rendering: per frame, the gateway reads a ~70-byte view-coordinate
//     record from the control file, the renderers produce the view, and the
//     gateway collects and writes a 640x512 24-bit frame (983,040 bytes,
//     plus two tiny header/trailer writes) to a fresh output file — the
//     staircase of Figure 8. In production these writes go to a HiPPi frame
//     buffer; the traced runs (and this skeleton) direct them to the file
//     system.
//
// Request counts, sizes and file population match Tables 3-4 and Figures
// 6-8; see EXPERIMENTS.md.
package render

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TerrainFile describes one input data file: how many asynchronous reads it
// takes and at what request size.
type TerrainFile struct {
	Reads     int
	ReadBytes int64
}

// Config parameterizes the skeleton. Defaults reproduce the paper's traced
// run (Mars Viking data, 100 frames).
type Config struct {
	RenderNodes   int           // renderer group size (paper: 128)
	Frames        int           // views rendered (100)
	Terrain       []TerrainFile // input data set layout
	PrefetchDepth int           // async reads kept in flight (2)
	HeaderReads   int           // small control-file reads at startup (21)
	HeaderBytes   int64         // size of each header read (~60 B)
	ViewBytes     int64         // size of each per-frame view read (~72 B)
	FrameBytes    int64         // image size: 640*512*3 = 983,040
	FrameExtra    int64         // tiny header/trailer writes around each frame (7 B)
	SetupCompute  sim.Time      // renderer subset selection after broadcast
	FrameCompute  sim.Time      // rendering time per frame (~1.9 s)

	// HiPPiOutput streams frames to the HiPPi frame buffer instead of the
	// file system — the production configuration of §6.2 ("in actual
	// production use, all of this output would be directed to a HiPPi
	// frame buffer"). The traced runs (and the default) write files.
	HiPPiOutput bool
	// HiPPiBytesPerS is the frame-buffer channel rate (default 80 MB/s,
	// a mid-1990s HiPPi link after protocol overhead).
	HiPPiBytesPerS float64

	Seed uint64
}

// DefaultConfig returns the paper-scale configuration: 436 asynchronous
// reads totalling ~880 MB across four terrain files.
func DefaultConfig() Config {
	return Config{
		RenderNodes: 128,
		Frames:      100,
		// 124 reads of 3 MiB plus 312 of 1.5 MiB: 436 asynchronous reads
		// moving 880,803,840 bytes (paper: 436 reads, 880,849,125 bytes).
		Terrain: []TerrainFile{
			{Reads: 62, ReadBytes: 3 << 20},
			{Reads: 62, ReadBytes: 3 << 20},
			{Reads: 156, ReadBytes: 3 << 19}, // 1.5 MB
			{Reads: 156, ReadBytes: 3 << 19},
		},
		PrefetchDepth: 2,
		HeaderReads:   21,
		HeaderBytes:   60,
		ViewBytes:     72,
		FrameBytes:    640 * 512 * 3,
		FrameExtra:    7,
		SetupCompute:  30 * sim.Second,
		FrameCompute:  1900 * sim.Millisecond,
		Seed:          0x52454e44, // "REND"
	}
}

// SmallConfig returns a reduced configuration for fast tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.RenderNodes = 8
	c.Frames = 5
	c.Terrain = []TerrainFile{
		{Reads: 4, ReadBytes: 3 << 20},
		{Reads: 6, ReadBytes: 3 << 19},
	}
	c.HeaderReads = 3
	c.SetupCompute = 100 * sim.Millisecond
	c.FrameCompute = 50 * sim.Millisecond
	return c
}

// CostModel returns the PFS calibration for the RENDER run (its OSF/1
// version; see EXPERIMENTS.md).
func CostModel() pfs.CostModel {
	return pfs.CostModel{
		ClientOverhead:     500 * sim.Microsecond,
		AsyncIssue:         10500 * sim.Microsecond,
		OpenService:        250 * sim.Millisecond,
		CreateService:      300 * sim.Millisecond,
		CloseService:       68 * sim.Millisecond,
		SeekService:        30 * sim.Millisecond,
		LsizeService:       2 * sim.Millisecond,
		FlushService:       10 * sim.Millisecond,
		SharedTokenService: 2 * sim.Millisecond,
	}
}

// MachineConfig returns the machine configuration for the paper run: the
// gateway plus 128 renderers.
func MachineConfig() workload.MachineConfig {
	mc := workload.DefaultMachineConfig()
	mc.ComputeNodes = DefaultConfig().RenderNodes + 1
	mc.PFS.Cost = CostModel()
	mc.PFS.Disk.Overhead = 1 * sim.Millisecond
	mc.PFS.Disk.BWBytesPerS = 12e6
	return mc
}

// Phase labels attached to trace events.
const (
	PhaseInit   = "initialization"
	PhaseRender = "rendering"
)

// App is the runnable skeleton. The gateway is node 0; renderers are nodes
// 1..RenderNodes.
type App struct {
	cfg  Config
	errs *workload.NodeErrors
}

// New validates the configuration and builds the app.
func New(cfg Config) (*App, error) {
	if cfg.RenderNodes < 1 || cfg.Frames < 0 || len(cfg.Terrain) == 0 {
		return nil, fmt.Errorf("render: invalid config %+v", cfg)
	}
	if cfg.PrefetchDepth < 1 {
		return nil, fmt.Errorf("render: prefetch depth %d", cfg.PrefetchDepth)
	}
	for _, tf := range cfg.Terrain {
		if tf.Reads < 1 || tf.ReadBytes < 1 {
			return nil, fmt.Errorf("render: invalid terrain file %+v", tf)
		}
	}
	return &App{cfg: cfg}, nil
}

// Name implements workload.App.
func (*App) Name() string { return "render" }

// TerrainBytes returns the total data-set size.
func (a *App) TerrainBytes() int64 {
	var total int64
	for _, tf := range a.cfg.Terrain {
		total += int64(tf.Reads) * tf.ReadBytes
	}
	return total
}

// Launch implements workload.App.
func (a *App) Launch(m *workload.Machine, fs workload.FS) error {
	cfg := a.cfg
	if cfg.RenderNodes+1 > m.Nodes {
		return fmt.Errorf("render: config wants %d nodes, machine has %d", cfg.RenderNodes+1, m.Nodes)
	}

	// File population: ids 0-2 are the standard streams; then the rc file,
	// the four terrain files, and the view control file. Output files are
	// created per frame during rendering, so their ids ascend with time —
	// Figure 8's staircase.
	fs.ReserveIDs(2)
	if _, err := fs.Preload("render.rc", 64); err != nil {
		return fmt.Errorf("render: %w", err)
	}
	terrainNames := make([]string, len(cfg.Terrain))
	for i, tf := range cfg.Terrain {
		terrainNames[i] = fmt.Sprintf("terrain%d", i)
		if _, err := fs.Preload(terrainNames[i], int64(tf.Reads)*tf.ReadBytes); err != nil {
			return fmt.Errorf("render: %w", err)
		}
	}
	viewsSize := int64(cfg.HeaderReads)*cfg.HeaderBytes + int64(cfg.Frames)*cfg.ViewBytes
	if _, err := fs.Preload("views", viewsSize); err != nil {
		return fmt.Errorf("render: %w", err)
	}

	var errs workload.NodeErrors
	a.errs = &errs
	frameStart := sim.NewBarrier(m.Eng, "render-frame-start", cfg.RenderNodes+1)
	frameDone := sim.NewBarrier(m.Eng, "render-frame-done", cfg.RenderNodes+1)
	rng := sim.NewRNG(cfg.Seed)
	nodeRNG := make([]*sim.RNG, cfg.RenderNodes+1)
	for i := range nodeRNG {
		nodeRNG[i] = rng.Split()
	}

	m.Eng.Spawn("render-gateway", func(p *sim.Process) {
		if err := a.runGateway(p, m, fs, terrainNames, frameStart, frameDone); err != nil {
			errs.Addf("gateway: %v", err)
		}
	})
	for r := 1; r <= cfg.RenderNodes; r++ {
		r := r
		m.Eng.Spawn(fmt.Sprintf("render-r%d", r), func(p *sim.Process) {
			a.runRenderer(p, nodeRNG[r], frameStart, frameDone)
		})
	}
	return nil
}

// runGateway is node 0: all file I/O plus frame orchestration.
func (a *App) runGateway(p *sim.Process, m *workload.Machine, fs workload.FS,
	terrainNames []string, frameStart, frameDone *sim.Barrier) error {
	cfg := a.cfg
	fs.SetPhase(PhaseInit)

	// Startup: consult the run-control file.
	rc, err := fs.Open(p, 0, "render.rc", iotrace.ModeUnix)
	if err != nil {
		return err
	}
	if err := rc.Close(p); err != nil {
		return err
	}

	// Read the terrain data set with explicitly prefetched async reads.
	for i, name := range terrainNames {
		h, err := fs.Open(p, 0, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		// Rewind to the file origin — the four zero-distance seeks of
		// Table 3.
		if _, err := h.Seek(p, 0, pfs.SeekStart); err != nil {
			return err
		}
		tf := cfg.Terrain[i]
		var inflight []workload.AsyncRead
		for r := 0; r < tf.Reads; r++ {
			ar, err := h.ReadAsync(p, tf.ReadBytes)
			if err != nil {
				return err
			}
			inflight = append(inflight, ar)
			if len(inflight) >= cfg.PrefetchDepth {
				if _, err := inflight[0].Wait(p); err != nil {
					return err
				}
				inflight = inflight[1:]
			}
		}
		for _, ar := range inflight {
			if _, err := ar.Wait(p); err != nil {
				return err
			}
		}
		// Terrain files stay open for the life of the run.
	}

	// Broadcast the data set; renderers select their subsets.
	m.Mesh.Broadcast(p, 0, cfg.RenderNodes+1, a.TerrainBytes())
	p.Sleep(cfg.SetupCompute)

	// Read the control-file header.
	views, err := fs.Open(p, 0, "views", iotrace.ModeUnix)
	if err != nil {
		return err
	}
	for i := 0; i < cfg.HeaderReads; i++ {
		if _, err := views.Read(p, cfg.HeaderBytes); err != nil {
			return err
		}
	}

	fs.SetPhase(PhaseRender)
	for frame := 0; frame < cfg.Frames; frame++ {
		// Next view perspective request.
		if _, err := views.Read(p, cfg.ViewBytes); err != nil {
			return err
		}
		m.Mesh.Broadcast(p, 0, cfg.RenderNodes+1, cfg.ViewBytes)
		frameStart.Wait(p) // release the renderers
		frameDone.Wait(p)  // rendering complete
		m.Mesh.Gather(p, 0, cfg.RenderNodes+1, cfg.FrameBytes/int64(cfg.RenderNodes))

		if cfg.HiPPiOutput {
			// Stream the frame to the HiPPi frame buffer: a channel
			// transfer, no file-system involvement.
			rate := cfg.HiPPiBytesPerS
			if rate <= 0 {
				rate = 80e6
			}
			p.Sleep(sim.Time(float64(cfg.FrameBytes+2*cfg.FrameExtra) / rate * float64(sim.Second)))
			continue
		}
		out, err := fs.Create(p, 0, fmt.Sprintf("frame%04d", frame), iotrace.ModeUnix)
		if err != nil {
			return err
		}
		if _, err := out.Write(p, cfg.FrameExtra); err != nil {
			return err
		}
		if _, err := out.Write(p, cfg.FrameBytes); err != nil {
			return err
		}
		if _, err := out.Write(p, cfg.FrameExtra); err != nil {
			return err
		}
		if err := out.Close(p); err != nil {
			return err
		}
	}
	// The control file, like the terrain files, is never closed: Table 3
	// counts 106 opens but only 101 closes.
	return nil
}

// runRenderer is one renderer node: no file I/O, just the per-frame compute
// between the gateway's barriers.
func (a *App) runRenderer(p *sim.Process, rng *sim.RNG, frameStart, frameDone *sim.Barrier) {
	p.Sleep(a.cfg.SetupCompute)
	for frame := 0; frame < a.cfg.Frames; frame++ {
		frameStart.Wait(p)
		p.Sleep(rng.Jitter(a.cfg.FrameCompute, 0.05))
		frameDone.Wait(p)
	}
}

// Err reports failures recorded during the run.
func (a *App) Err() error {
	if a.errs == nil {
		return nil
	}
	return a.errs.Err()
}
