package escat

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runESCAT executes the skeleton under the given config and returns the
// captured trace plus the machine.
func runESCAT(t testing.TB, cfg Config) ([]iotrace.Event, *workload.Machine) {
	t.Helper()
	mc := MachineConfig()
	mc.ComputeNodes = cfg.Nodes
	m, err := workload.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		t.Fatal(err)
	}
	if err := app.Err(); err != nil {
		t.Fatal(err)
	}
	return tr.Events(), m
}

// Cached full-scale run, shared across tests (the simulation is
// deterministic, so sharing is safe).
var (
	paperTrace   []iotrace.Event
	paperMachine *workload.Machine
)

func paperRun(t testing.TB) []iotrace.Event {
	events, _ := runESCATCached(t)
	return events
}

func runESCATCached(t testing.TB) ([]iotrace.Event, *workload.Machine) {
	if paperTrace == nil {
		paperTrace, paperMachine = runESCAT(t, DefaultConfig())
	}
	return paperTrace, paperMachine
}

func TestPaperOperationCounts(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	// Table 1 counts, reproduced exactly.
	cases := map[string]int64{
		"Read":  560,
		"Write": 13330,
		"Seek":  12034,
		"Open":  262,
		"Close": 262,
	}
	for label, want := range cases {
		row := s.Row(label)
		if row == nil {
			t.Fatalf("missing row %s", label)
		}
		if row.Count != want {
			t.Errorf("%s count = %d, want %d (Table 1)", label, row.Count, want)
		}
	}
}

func TestPaperSizeBuckets(t *testing.T) {
	sizes := analysis.Sizes(paperRun(t))
	// Table 2: reads 297 / 3 / 260 / 0, writes 13330 / 0 / 0 / 0.
	rb := sizes.Read.Buckets()
	if rb[0] != 297 || rb[1] != 3 || rb[2] != 260 || rb[3] != 0 {
		t.Errorf("read buckets %v, want [297 3 260 0] (Table 2)", rb)
	}
	wb := sizes.Write.Buckets()
	if wb[0] != 13330 || wb[1] != 0 || wb[2] != 0 || wb[3] != 0 {
		t.Errorf("write buckets %v, want [13330 0 0 0] (Table 2)", wb)
	}
}

func TestPaperVolumesApproximate(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	read := s.Row("Read").Volume
	write := s.Row("Write").Volume
	// Write volume: 13,330 ~2KB records vs paper 26,757,088 (within 5%).
	if write < 25_000_000 || write > 28_500_000 {
		t.Errorf("write volume %d, paper 26,757,088", write)
	}
	// Read volume: paper reports 34.2 MB; the reread-what-you-wrote
	// structure bounds it near the write volume plus initialization, so we
	// accept 26-35 MB (see EXPERIMENTS.md on the paper's internal
	// inconsistency).
	if read < 26_000_000 || read > 35_000_000 {
		t.Errorf("read volume %d, paper 34,226,048", read)
	}
}

func TestPaperTimeShape(t *testing.T) {
	s := analysis.Summarize(paperRun(t))
	// Table 1 shape: seek and write dominate (~96% together), seek > write,
	// reads negligible (<1%), opens ~3%.
	seek, write := s.Row("Seek"), s.Row("Write")
	read, open := s.Row("Read"), s.Row("Open")
	if seek.Pct+write.Pct < 85 {
		t.Errorf("seek+write = %.1f%%, paper 95.8%%", seek.Pct+write.Pct)
	}
	if seek.Pct <= write.Pct {
		t.Errorf("seek (%.1f%%) should exceed write (%.1f%%)", seek.Pct, write.Pct)
	}
	if read.Pct > 2 {
		t.Errorf("read pct %.2f, paper 0.21", read.Pct)
	}
	if open.Pct > 10 {
		t.Errorf("open pct %.2f, paper 3.04", open.Pct)
	}
}

func TestPaperWallClock(t *testing.T) {
	_, m := runESCATCached(t)
	// "roughly one and three quarter hours" = ~6300 s; accept 4500-8000.
	wall := m.Eng.Now().Seconds()
	if wall < 4500 || wall > 8000 {
		t.Errorf("wall clock %.0f s, paper ~6300 s", wall)
	}
}

func TestReadsOnlyInInitAndReloadPhases(t *testing.T) {
	// Figure 2: reads appear only at the start (initialization) and the far
	// right (reload staging).
	for _, e := range paperRun(t) {
		if e.Op == iotrace.OpRead {
			if e.Phase != PhaseInit && e.Phase != PhaseReload {
				t.Fatalf("read in phase %q at %v", e.Phase, e.Start)
			}
		}
	}
}

func TestWriteBurstSpacingShrinks(t *testing.T) {
	events := paperRun(t)
	writes := analysis.WriteTimeline(analysis.FilterPhase(events, PhaseQuadrature))
	bursts := analysis.Bursts(writes, 30*sim.Second)
	if len(bursts) != 52 {
		t.Fatalf("quadrature bursts = %d, want 52", len(bursts))
	}
	sp := analysis.BurstSpacings(bursts)
	early := sp[0].Seconds()
	late := sp[len(sp)-1].Seconds()
	// Figure 4: spacing ~160 s early, about half that late.
	if early < 120 || early > 200 {
		t.Errorf("early spacing %.0f s, paper ~160 s", early)
	}
	if late > 0.65*early {
		t.Errorf("late spacing %.0f s not roughly half of early %.0f s", late, early)
	}
}

func TestEachNodeRereadsItsOwnRegion(t *testing.T) {
	// §5.1: each node rereads the same quadrature data it wrote. Check
	// reload read offsets equal the node's write region start.
	events := paperRun(t)
	region := int64(52) * 2048
	for _, e := range analysis.FilterPhase(events, PhaseReload) {
		if e.Op != iotrace.OpRead {
			continue
		}
		if e.Offset != int64(e.Node)*region {
			t.Fatalf("node %d reload at offset %d, want %d", e.Node, e.Offset, int64(e.Node)*region)
		}
		if e.Bytes != region {
			t.Fatalf("reload read %d bytes, want %d", e.Bytes, region)
		}
		if e.Mode != iotrace.ModeRecord {
			t.Fatalf("reload mode %v, want M_RECORD", e.Mode)
		}
	}
}

func TestQuadratureWritesUseMUnixSmallRecords(t *testing.T) {
	for _, e := range analysis.FilterPhase(paperRun(t), PhaseQuadrature) {
		if e.Op == iotrace.OpWrite {
			if e.Mode != iotrace.ModeUnix {
				t.Fatalf("quadrature write mode %v", e.Mode)
			}
			if e.Bytes != 2048 {
				t.Fatalf("quadrature write %d bytes", e.Bytes)
			}
		}
	}
}

func TestFileAccessRoles(t *testing.T) {
	// Figure 5: inputs (9-11) only read; staging (7-8) written then read;
	// outputs (3-5) only written.
	events := paperRun(t)
	readFiles := map[iotrace.FileID]bool{}
	writeFiles := map[iotrace.FileID]bool{}
	for _, e := range events {
		switch e.Op {
		case iotrace.OpRead:
			readFiles[e.File] = true
		case iotrace.OpWrite:
			writeFiles[e.File] = true
		}
	}
	for _, id := range []iotrace.FileID{9, 10, 11} {
		if !readFiles[id] || writeFiles[id] {
			t.Errorf("input file %d roles wrong (read=%v write=%v)", id, readFiles[id], writeFiles[id])
		}
	}
	for _, id := range []iotrace.FileID{7, 8} {
		if !readFiles[id] || !writeFiles[id] {
			t.Errorf("staging file %d roles wrong", id)
		}
	}
	for _, id := range []iotrace.FileID{3, 4, 5} {
		if readFiles[id] || !writeFiles[id] {
			t.Errorf("output file %d roles wrong", id)
		}
	}
}

func TestSmallConfigDeterministic(t *testing.T) {
	run := func() sim.Time {
		_, m := runESCAT(t, SmallConfig())
		return m.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSmallConfigStructure(t *testing.T) {
	cfg := SmallConfig()
	events, _ := runESCAT(t, cfg)
	s := analysis.Summarize(events)
	// 8 nodes x 2 files x 6 iterations = 96 quadrature writes + 18 output.
	if got := s.Row("Write").Count; got != 96+18 {
		t.Errorf("writes %d, want 114", got)
	}
	// Opens: 8 nodes x 2 staging + 3 inputs + 3 outputs = 22.
	if got := s.Row("Open").Count; got != 22 {
		t.Errorf("opens %d, want 22", got)
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 0, Iterations: 5, OutcomeFiles: 1, QuadRecordBytes: 1},
		{Nodes: 4, Iterations: 0, OutcomeFiles: 1, QuadRecordBytes: 1},
		{Nodes: 4, Iterations: 5, OutcomeFiles: 0, QuadRecordBytes: 1},
		{Nodes: 4, Iterations: 5, OutcomeFiles: 1, QuadRecordBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigLargerThanMachineRejected(t *testing.T) {
	cfg := SmallConfig()
	mc := MachineConfig()
	mc.ComputeNodes = cfg.Nodes - 1
	m, err := workload.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := New(cfg)
	if err := app.Launch(m, workload.WrapPFS(m.PFS)); err == nil {
		t.Fatal("oversized config accepted")
	}
}
