// Package escat is an I/O-faithful skeleton of the ESCAT electron-scattering
// code (Schwinger multichannel method) characterized in §5 of the paper.
//
// The skeleton reproduces the code's four I/O phases on 128 nodes:
//
//  1. Initialization: node 0 reads the problem definition from three input
//     files with M_UNIX (bimodal request sizes, temporally irregular — Figure
//  3. and broadcasts it over the mesh.
//  2. Quadrature: 52 synchronized compute/write cycles; every node seeks to a
//     calculated offset in each of two staging files (one per collision
//     outcome) and writes a 2 KB quadrature record with M_UNIX. The cycles'
//     compute time shrinks as the phase proceeds, giving Figure 4's burst
//     spacing of roughly 160 s early and half that late.
//  3. Reload: each node switches the staging handles to M_RECORD (setiomode)
//     and rereads exactly the quadrature data it wrote as one ~104 KB record
//     per file.
//  4. Output: the linear-system matrices are gathered to node 0 and written
//     to three output files as small writes.
//
// Request counts, sizes, file population and mode usage are constructed to
// match Tables 1-2 and Figures 2-5; see EXPERIMENTS.md for the mapping.
package escat

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes the skeleton. The defaults reproduce the paper's
// traced run; smaller values give fast smoke tests.
type Config struct {
	Nodes           int      // compute nodes (paper: 128)
	Iterations      int      // quadrature compute/write cycles (52)
	QuadRecordBytes int64    // quadrature record size (2 KB)
	OutcomeFiles    int      // staging files, one per collision outcome (2)
	ComputeStart    sim.Time // compute per cycle at phase start (~145 s)
	ComputeEnd      sim.Time // compute per cycle at phase end (~65 s)
	OutputWrites    int      // small matrix writes per output file (6)
	OutputBytes     int64    // size of each output write (~1.5 KB)
	Seed            uint64

	// Ckpt, when non-nil, checkpoints the quadrature loop: every node
	// reports each completed iteration and the coordinator periodically
	// writes a consistent checkpoint. On a restart (ResumeUnit > 0) the
	// skeleton skips initialization, restores node state from the
	// checkpoint file, and resumes the loop at the committed iteration.
	Ckpt workload.Checkpointer
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:           128,
		Iterations:      52,
		QuadRecordBytes: 2048,
		OutcomeFiles:    2,
		ComputeStart:    145 * sim.Second,
		ComputeEnd:      65 * sim.Second,
		OutputWrites:    6,
		OutputBytes:     1500,
		Seed:            0x45534341, // "ESCA"
	}
}

// SmallConfig returns a reduced configuration for fast tests: 8 nodes, 6
// cycles, millisecond-scale compute.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Nodes = 8
	c.Iterations = 6
	c.ComputeStart = 200 * sim.Millisecond
	c.ComputeEnd = 100 * sim.Millisecond
	return c
}

// CostModel returns the PFS calibration under which the skeleton reproduces
// Table 1's time columns (the ESCAT run's OSF/1 + PFS version; see
// EXPERIMENTS.md for the derivation of each constant).
func CostModel() pfs.CostModel {
	return pfs.CostModel{
		ClientOverhead:     500 * sim.Microsecond,
		AsyncIssue:         10 * sim.Millisecond,
		OpenService:        48 * sim.Millisecond,
		CreateService:      490 * sim.Millisecond,
		CloseService:       17 * sim.Millisecond,
		SeekService:        8800 * sim.Microsecond,
		LsizeService:       2 * sim.Millisecond,
		FlushService:       10 * sim.Millisecond,
		SharedTokenService: 2 * sim.Millisecond,
	}
}

// MachineConfig returns the full machine configuration for the paper run.
func MachineConfig() workload.MachineConfig {
	mc := workload.DefaultMachineConfig()
	mc.PFS.Cost = CostModel()
	mc.PFS.Disk.Position = 20 * sim.Millisecond
	return mc
}

// Phase labels attached to trace events.
const (
	PhaseInit       = "initialization"
	PhaseQuadrature = "quadrature"
	PhaseReload     = "reload"
	PhaseOutput     = "output"
)

// App is the runnable skeleton.
type App struct {
	cfg  Config
	errs *workload.NodeErrors
}

// New validates the configuration and builds the app.
func New(cfg Config) (*App, error) {
	if cfg.Nodes < 1 || cfg.Iterations < 1 || cfg.OutcomeFiles < 1 {
		return nil, fmt.Errorf("escat: invalid config %+v", cfg)
	}
	if cfg.QuadRecordBytes < 1 || cfg.OutputWrites < 0 || cfg.OutputBytes < 0 {
		return nil, fmt.Errorf("escat: invalid sizes in config %+v", cfg)
	}
	return &App{cfg: cfg}, nil
}

// Name implements workload.App.
func (*App) Name() string { return "escat" }

// regionBytes is the extent of one node's contiguous quadrature region in a
// staging file (all its iterations' records back to back) — also the
// M_RECORD record length used for the reload.
func (a *App) regionBytes() int64 {
	return int64(a.cfg.Iterations) * a.cfg.QuadRecordBytes
}

// inputProfile describes node 0's reads of one input file: (count, size)
// runs issued in order. Across the three files the profile yields the
// bimodal distribution of Table 2: 297 reads under 4 KB, 3 of ~32 KB, 4 of
// ~200 KB. For reduced node counts the small-read count scales down.
type readRun struct {
	count int
	bytes int64
}

func (a *App) inputProfiles() [3][]readRun {
	small := a.cfg.Nodes * 100 / 128 // 100 at paper scale
	if small < 2 {
		small = 2
	}
	return [3][]readRun{
		{{small, 2048}},
		{{small - 1, 2048}, {2, 32 * 1024}, {2, 200 * 1024}},
		{{small - 2, 2048}, {1, 32 * 1024}, {2, 200 * 1024}},
	}
}

func (a *App) inputBytes() int64 {
	var total int64
	for _, runs := range a.inputProfiles() {
		for _, r := range runs {
			total += int64(r.count) * r.bytes
		}
	}
	return total
}

// pointerCached reports whether the original code's offset cache knows the
// pointer is already positioned for iteration it, so no repositioning seek is
// issued after the previous write. The calculated offsets are per-node
// contiguous, and the traced run shows 12,034 seeks against 13,330 writes
// (Table 1) — 47 repositionings per node and file over 52 cycles; the
// every-10th-cycle rule reproduces that ratio.
func pointerCached(it int) bool { return it > 0 && it%10 == 0 }

// Launch implements workload.App.
func (a *App) Launch(m *workload.Machine, fs workload.FS) error {
	cfg := a.cfg
	if cfg.Nodes > m.Nodes {
		return fmt.Errorf("escat: config wants %d nodes, machine has %d", cfg.Nodes, m.Nodes)
	}

	// A configured checkpointer may resume the quadrature loop mid-way: the
	// machine is freshly built after a crash, so the staging files must be
	// pre-populated with exactly the extent the completed iterations had
	// produced (node Nodes-1's region start plus resume records).
	resume := 0
	if cfg.Ckpt != nil {
		resume = cfg.Ckpt.ResumeUnit()
	}
	if resume > cfg.Iterations {
		return fmt.Errorf("escat: resume unit %d beyond %d iterations", resume, cfg.Iterations)
	}
	var quadSize int64
	if resume > 0 {
		quadSize = int64(cfg.Nodes-1)*a.regionBytes() + int64(resume)*cfg.QuadRecordBytes
	}

	// File id layout mirrors Figure 5 (descriptor-style numbering): ids 0-2
	// are the standard streams, outputs land on 3-5, id 6 is the job
	// control stream, staging on 7-8, inputs on 9-11.
	fs.ReserveIDs(2)
	outNames := []string{"escat.sys0", "escat.sys1", "escat.sys2"}
	for _, n := range outNames {
		if _, err := fs.Preload(n, 0); err != nil {
			return fmt.Errorf("escat: %w", err)
		}
	}
	fs.ReserveIDs(1)
	quadNames := make([]string, cfg.OutcomeFiles)
	for i := range quadNames {
		quadNames[i] = fmt.Sprintf("escat.quad%d", i)
		if _, err := fs.Preload(quadNames[i], quadSize); err != nil {
			return fmt.Errorf("escat: %w", err)
		}
	}
	inNames := []string{"escat.in0", "escat.in1", "escat.in2"}
	profiles := a.inputProfiles()
	for i, n := range inNames {
		var size int64
		for _, r := range profiles[i] {
			size += int64(r.count) * r.bytes
		}
		if _, err := fs.Preload(n, size); err != nil {
			return fmt.Errorf("escat: %w", err)
		}
	}

	var errs workload.NodeErrors
	errs.Attach(m.Eng)
	initDone := sim.NewCompletion("escat-init")
	cycle := sim.NewBarrier(m.Eng, "escat-cycle", cfg.Nodes)
	reload := sim.NewBarrier(m.Eng, "escat-reload", cfg.Nodes)
	rng := sim.NewRNG(cfg.Seed)
	nodeRNG := make([]*sim.RNG, cfg.Nodes)
	for i := range nodeRNG {
		nodeRNG[i] = rng.Split()
	}

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		m.Eng.Spawn(fmt.Sprintf("escat-n%d", node), func(p *sim.Process) {
			if node == 0 {
				// A restart resumes from the checkpoint, not from the
				// inputs: initialization is already covered.
				if resume == 0 {
					if err := a.runInit(p, m, fs, profiles, inNames); err != nil {
						errs.Addf("node 0 init: %v", err)
					}
				}
				fs.SetPhase(PhaseQuadrature)
				initDone.Complete(p)
			} else {
				initDone.Await(p)
			}
			if resume > 0 {
				if err := cfg.Ckpt.Restore(p, fs, node); err != nil {
					errs.Addf("node %d restore: %v", node, err)
					return
				}
			}
			if err := a.runQuadrature(p, fs, node, resume, quadNames, nodeRNG[node], cycle); err != nil {
				errs.Addf("node %d quadrature: %v", node, err)
				return // a lost node would deadlock the barrier group
			}
			reload.Wait(p)
			if node == 0 {
				fs.SetPhase(PhaseOutput)
				if err := a.runOutput(p, m, fs, outNames); err != nil {
					errs.Addf("node 0 output: %v", err)
				}
			}
			_ = errs // final check is in Err below
		})
	}
	a.errs = &errs
	return nil
}

// runInit is node 0's compulsory input phase.
func (a *App) runInit(p *sim.Process, m *workload.Machine, fs workload.FS,
	profiles [3][]readRun, inNames []string) error {
	fs.SetPhase(PhaseInit)
	r := sim.NewRNG(a.cfg.Seed ^ 0x1717)
	for i, name := range inNames {
		h, err := fs.Open(p, 0, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		first := true
		for _, run := range profiles[i] {
			for k := 0; k < run.count; k++ {
				if _, err := h.Read(p, run.bytes); err != nil {
					return fmt.Errorf("read %s: %w", name, err)
				}
				// Parsing between reads gives Figure 3's temporal
				// irregularity.
				p.Sleep(r.Uniform(2*sim.Millisecond, 40*sim.Millisecond))
			}
			if first && i > 0 {
				// Rewind after the header scan of files 2 and 3 — the two
				// initialization seeks in Table 1.
				if _, err := h.Seek(p, 0, pfs.SeekStart); err != nil {
					return err
				}
				first = false
			}
		}
		if err := h.Close(p); err != nil {
			return err
		}
	}
	// Broadcast the initialization data to the compute partition.
	m.Mesh.Broadcast(p, 0, a.cfg.Nodes, a.inputBytes())
	return nil
}

// runQuadrature is every node's synchronized compute/seek/write loop plus
// the M_RECORD reload.
func (a *App) runQuadrature(p *sim.Process, fs workload.FS,
	node, resume int, quadNames []string, rng *sim.RNG, cycle *sim.Barrier) error {
	handles := make([]workload.Handle, len(quadNames))
	for i, name := range quadNames {
		h, err := fs.Open(p, node, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		handles[i] = h
	}
	region := a.regionBytes()
	span := float64(a.cfg.ComputeStart - a.cfg.ComputeEnd)
	// Position each file's pointer at this node's region — at the resumed
	// iteration's record on a restart — before the first cycle.
	for _, h := range handles {
		if _, err := h.Seek(p, int64(node)*region+int64(resume)*a.cfg.QuadRecordBytes, pfs.SeekStart); err != nil {
			return err
		}
	}
	for it := resume; it < a.cfg.Iterations; it++ {
		frac := 0.0
		if a.cfg.Iterations > 1 {
			frac = float64(it) / float64(a.cfg.Iterations-1)
		}
		compute := a.cfg.ComputeStart - sim.Time(frac*span)
		p.Sleep(rng.Jitter(compute, 0.03))
		cycle.Wait(p)
		for _, h := range handles {
			// The pointer was positioned by the initial seek or the
			// previous cycle's repositioning.
			if _, err := h.Write(p, a.cfg.QuadRecordBytes); err != nil {
				return err
			}
			// Reposition for the next cycle's calculated offset unless the
			// offset cache already matches (pointerCached).
			next := it + 1
			if next < a.cfg.Iterations && !pointerCached(next) {
				target := int64(node)*region + int64(next)*a.cfg.QuadRecordBytes
				if _, err := h.Seek(p, target, pfs.SeekStart); err != nil {
					return err
				}
			}
		}
		if a.cfg.Ckpt != nil {
			if err := a.cfg.Ckpt.AfterUnit(p, fs, node, it); err != nil {
				return err
			}
		}
	}

	// Phase 3: reload this node's quadrature data as one M_RECORD record
	// per file (record k of round 0 belongs to node k — exactly the region
	// the node wrote, which is why ESCAT wrote with M_UNIX at calculated
	// offsets rather than M_RECORD; §5.2).
	cycle.Wait(p)
	if node == 0 {
		fs.SetPhase(PhaseReload)
	}
	for _, h := range handles {
		if err := h.SetIOMode(p, iotrace.ModeRecord, region); err != nil {
			return err
		}
		if _, err := h.Read(p, region); err != nil {
			return err
		}
	}
	for _, h := range handles {
		if err := h.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// runOutput is node 0's final gather-and-write phase.
func (a *App) runOutput(p *sim.Process, m *workload.Machine, fs workload.FS, outNames []string) error {
	m.Mesh.Gather(p, 0, a.cfg.Nodes, 256)
	for _, name := range outNames {
		h, err := fs.Open(p, 0, name, iotrace.ModeUnix)
		if err != nil {
			return err
		}
		for k := 0; k < a.cfg.OutputWrites; k++ {
			if _, err := h.Write(p, a.cfg.OutputBytes); err != nil {
				return err
			}
		}
		if err := h.Close(p); err != nil {
			return err
		}
	}
	return nil
}

// Err reports failures recorded by node programs during the run.
func (a *App) Err() error {
	if a.errs == nil {
		return nil
	}
	return a.errs.Err()
}

// FailedAt returns the simulated instant of the run's first node failure, if
// any — the fault-injection driver's lost-work anchor.
func (a *App) FailedAt() (sim.Time, bool) {
	if a.errs == nil {
		return 0, false
	}
	return a.errs.FirstAt()
}
