// Package collective implements the planning half of two-phase collective
// I/O: a round's per-node requests are merged into the minimal set of
// disjoint extents, then decomposed into per-I/O-node runs that are
// contiguous in array address space — the "handful of large transfers" the
// paper's authors call for in place of the observed floods of sub-stripe
// requests. The execution half (round barriers, shuffle traffic, aggregator
// processes) lives in the pfs package; this package is pure geometry so it
// can be tested and fuzzed in isolation.
package collective

import "sort"

// Extent is a half-open byte range [Start, End) of a file.
type Extent struct {
	Start, End int64
}

// Len returns the extent's size in bytes.
func (e Extent) Len() int64 { return e.End - e.Start }

// Merge coalesces extents into the minimal sorted set of disjoint extents
// covering exactly the union of the inputs: overlapping and adjacent inputs
// fuse, empty (or inverted) inputs are dropped. The input slice is not
// modified.
func Merge(extents []Extent) []Extent {
	in := make([]Extent, 0, len(extents))
	for _, e := range extents {
		if e.End > e.Start {
			in = append(in, e)
		}
	}
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].Start != in[j].Start {
			return in[i].Start < in[j].Start
		}
		return in[i].End < in[j].End
	})
	out := in[:1]
	for _, e := range in[1:] {
		last := &out[len(out)-1]
		if e.Start <= last.End {
			if e.End > last.End {
				last.End = e.End
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Layout is the striping geometry the planner decomposes merged extents
// against: the file's stripe unit, the I/O-node population, and the node
// holding the file's first stripe (files start on different nodes so small
// files spread across the machine).
type Layout struct {
	StripeUnit  int64
	IONodes     int
	FirstIONode int
}

// Run is one bulk transfer: a span of one I/O node's array address space
// covering Chunks stripe chunks of a merged extent. Offset and Bytes are in
// file coordinates; the caller maps Offset to the node's array address. The
// span is contiguous there because consecutive stripes of a file on the same
// node are neighbours in its address space.
type Run struct {
	ION    int
	Offset int64 // file offset of the run's first byte
	Bytes  int64
	Chunks int // stripe chunks coalesced into this run
}

// Runs decomposes merged (disjoint, ascending) extents into per-I/O-node
// runs. Within one extent every chunk landing on the same I/O node is
// contiguous in that node's array address space — interior chunks are whole
// stripes, only the extent's first and last chunk can be partial — so each
// (extent, node) pair yields exactly one run. The result is sorted by
// (ION, Offset).
func Runs(merged []Extent, lay Layout) []Run {
	if lay.StripeUnit < 1 || lay.IONodes < 1 {
		return nil
	}
	su := lay.StripeUnit
	nion := int64(lay.IONodes)
	var out []Run
	open := make([]int, lay.IONodes) // per-node index+1 of this extent's run
	for _, e := range merged {
		for i := range open {
			open[i] = 0
		}
		cur := e.Start
		for cur < e.End {
			stripe := cur / su
			chunkEnd := (stripe + 1) * su
			if chunkEnd > e.End {
				chunkEnd = e.End
			}
			ion := (lay.FirstIONode + int(stripe%nion)) % lay.IONodes
			if idx := open[ion]; idx > 0 {
				out[idx-1].Bytes += chunkEnd - cur
				out[idx-1].Chunks++
			} else {
				out = append(out, Run{ION: ion, Offset: cur, Bytes: chunkEnd - cur, Chunks: 1})
				open[ion] = len(out)
			}
			cur = chunkEnd
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ION != out[j].ION {
			return out[i].ION < out[j].ION
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}
