package collective

import (
	"reflect"
	"testing"
)

func TestMergeTable(t *testing.T) {
	cases := []struct {
		name string
		in   []Extent
		want []Extent
	}{
		{"empty", nil, nil},
		{"single", []Extent{{0, 10}}, []Extent{{0, 10}}},
		{"drops-empty", []Extent{{5, 5}, {9, 3}}, nil},
		{"disjoint-sorted", []Extent{{0, 10}, {20, 30}}, []Extent{{0, 10}, {20, 30}}},
		{"disjoint-unsorted", []Extent{{20, 30}, {0, 10}}, []Extent{{0, 10}, {20, 30}}},
		{"adjacent", []Extent{{0, 10}, {10, 20}}, []Extent{{0, 20}}},
		{"overlapping", []Extent{{0, 15}, {10, 20}}, []Extent{{0, 20}}},
		{"contained", []Extent{{0, 100}, {10, 20}, {30, 40}}, []Extent{{0, 100}}},
		{"duplicate", []Extent{{5, 9}, {5, 9}}, []Extent{{5, 9}}},
		{"chain", []Extent{{30, 40}, {0, 10}, {10, 20}, {20, 30}}, []Extent{{0, 40}}},
		{
			"mixed",
			[]Extent{{50, 60}, {0, 5}, {4, 12}, {12, 20}, {58, 70}, {100, 101}},
			[]Extent{{0, 20}, {50, 70}, {100, 101}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := append([]Extent(nil), tc.in...)
			got := Merge(tc.in)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Merge(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !reflect.DeepEqual(in, tc.in) {
				t.Fatalf("Merge modified its input: %v -> %v", in, tc.in)
			}
		})
	}
}

func TestRunsTable(t *testing.T) {
	lay := Layout{StripeUnit: 64, IONodes: 4, FirstIONode: 0}
	cases := []struct {
		name string
		in   []Extent
		lay  Layout
		want []Run
	}{
		{"empty", nil, lay, nil},
		{
			"within-one-stripe",
			[]Extent{{10, 30}},
			lay,
			[]Run{{ION: 0, Offset: 10, Bytes: 20, Chunks: 1}},
		},
		{
			"cross-stripe",
			[]Extent{{10, 100}}, // stripes 0 (node 0) and 1 (node 1)
			lay,
			[]Run{
				{ION: 0, Offset: 10, Bytes: 54, Chunks: 1},
				{ION: 1, Offset: 64, Bytes: 36, Chunks: 1},
			},
		},
		{
			// Stripes 0..7 over 4 nodes: each node gets two whole stripes that
			// are contiguous in its array address space — one run each.
			"two-rounds-coalesce",
			[]Extent{{0, 512}},
			lay,
			[]Run{
				{ION: 0, Offset: 0, Bytes: 128, Chunks: 2},
				{ION: 1, Offset: 64, Bytes: 128, Chunks: 2},
				{ION: 2, Offset: 128, Bytes: 128, Chunks: 2},
				{ION: 3, Offset: 192, Bytes: 128, Chunks: 2},
			},
		},
		{
			// Two disjoint extents on the same node stay two runs: the gap
			// between them is a positioning break, not a contiguity.
			"disjoint-extents-same-node",
			[]Extent{{0, 64}, {256, 320}}, // stripes 0 and 4, both node 0
			lay,
			[]Run{
				{ION: 0, Offset: 0, Bytes: 64, Chunks: 1},
				{ION: 0, Offset: 256, Bytes: 64, Chunks: 1},
			},
		},
		{
			"first-ionode-rotation",
			[]Extent{{0, 64}},
			Layout{StripeUnit: 64, IONodes: 4, FirstIONode: 3},
			[]Run{{ION: 3, Offset: 0, Bytes: 64, Chunks: 1}},
		},
		{
			"single-node-layout",
			[]Extent{{0, 200}},
			Layout{StripeUnit: 64, IONodes: 1, FirstIONode: 0},
			[]Run{{ION: 0, Offset: 0, Bytes: 200, Chunks: 4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Runs(tc.in, tc.lay)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Runs(%v, %+v) = %v, want %v", tc.in, tc.lay, got, tc.want)
			}
		})
	}
}

// TestRunsConservation: whatever the extents, the planner's runs move exactly
// the merged byte count, and chunk counts match the stripe walk.
func TestRunsConservation(t *testing.T) {
	lay := Layout{StripeUnit: 64, IONodes: 4, FirstIONode: 2}
	merged := Merge([]Extent{{3, 130}, {130, 700}, {900, 901}, {64, 80}})
	runs := Runs(merged, lay)
	var want, got int64
	for _, e := range merged {
		want += e.Len()
	}
	for _, r := range runs {
		got += r.Bytes
		if r.Bytes <= 0 || r.Chunks < 1 || r.ION < 0 || r.ION >= lay.IONodes {
			t.Fatalf("malformed run %+v", r)
		}
	}
	if got != want {
		t.Fatalf("runs move %d bytes, merged extents hold %d", got, want)
	}
}

func TestSizeHist(t *testing.T) {
	var h SizeHist
	sizes := []int64{1, 512, 513, 64 << 10, 3 << 20}
	for _, n := range sizes {
		h.Add(n)
	}
	if h.Total() != int64(len(sizes)) {
		t.Fatalf("Total = %d, want %d", h.Total(), len(sizes))
	}
	if h.Buckets[0] != 2 { // 1 and 512 both land in the first bucket
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h.Buckets[NumBuckets-1])
	}
	for i := 0; i < NumBuckets; i++ {
		if BucketLabel(i) == "" {
			t.Fatalf("empty label for bucket %d", i)
		}
	}
}

func TestStatsReduction(t *testing.T) {
	if r := (Stats{}).Reduction(); r != 0 {
		t.Fatalf("zero stats reduction = %v, want 0", r)
	}
	s := Stats{RequestsIn: 256, RequestsOut: 32}
	if r := s.Reduction(); r != 8 {
		t.Fatalf("reduction = %v, want 8", r)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{Enabled: true}.Normalized(16)
	if c.Aggregators != 16 || c.Window != DefaultWindow {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c = Config{Enabled: true, Aggregators: 99, Window: -1}.Normalized(16)
	if c.Aggregators != 16 || c.Window != 0 {
		t.Fatalf("clamps not applied: %+v", c)
	}
}
