package collective

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultWindow is the straggler window a partially filled round waits
// before its flusher runs with the members that have arrived. It exists so
// workloads where not every compute node participates in a round (a node
// past EOF, an irregular access count) cannot stall the barrier forever.
const DefaultWindow = 2 * sim.Millisecond

// Config enables and parameterizes two-phase collective I/O for the
// round-structured access modes (M_RECORD, M_SYNC). The zero value leaves
// the per-request data path untouched.
type Config struct {
	// Enabled turns on round aggregation.
	Enabled bool

	// Aggregators is how many of a round's member nodes act as aggregators,
	// partitioning the I/O nodes among themselves (aggregator a serves the
	// I/O nodes congruent to a modulo Aggregators). <= 0 selects the
	// default of one aggregator per I/O node.
	Aggregators int

	// Window bounds how long a partially filled round waits for stragglers
	// before flushing with the members present. 0 selects DefaultWindow;
	// negative disables the timer entirely (rounds then flush only when the
	// whole compute group has arrived).
	Window sim.Time
}

// Normalized resolves defaults against the I/O-node population.
func (c Config) Normalized(ionodes int) Config {
	if c.Aggregators <= 0 {
		c.Aggregators = ionodes
	}
	if c.Aggregators > ionodes {
		c.Aggregators = ionodes
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Window < 0 {
		c.Window = 0
	}
	return c
}

// NumBuckets is the size-histogram resolution. Bucket i holds requests of at
// most bucketMax[i] bytes; the last bucket is unbounded.
const NumBuckets = 8

var bucketMax = [NumBuckets - 1]int64{
	512, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20,
}

// SizeHist is a power-of-four request-size histogram, the unit the paper's
// request-size tables (Tables 2, 4, 6) are expressed in.
type SizeHist struct {
	Buckets [NumBuckets]int64
}

// Add counts one request of n bytes.
func (h *SizeHist) Add(n int64) {
	for i, max := range bucketMax {
		if n <= max {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[NumBuckets-1]++
}

// Total returns the number of requests counted.
func (h *SizeHist) Total() int64 {
	var t int64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// BucketLabel names histogram bucket i ("≤512B", …, ">2MB").
func BucketLabel(i int) string {
	if i >= NumBuckets-1 {
		return "> " + sizeLabel(bucketMax[NumBuckets-2])
	}
	return "<= " + sizeLabel(bucketMax[i])
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Stats counts the aggregation machinery's activity. In counts the member
// requests as the application issued them; Out counts the aggregated runs
// actually sent to the I/O nodes — the before/after pair behind the
// request-histogram collapse the report renders.
type Stats struct {
	Rounds        int64 // rounds flushed
	FullRounds    int64 // flushed because the whole compute group arrived
	TimeoutRounds int64 // flushed by the straggler-window timer
	RequestsIn    int64 // member requests submitted to round barriers
	BytesIn       int64
	RequestsOut   int64 // aggregated runs issued to the I/O nodes
	BytesOut      int64
	MergedExtents int64 // disjoint extents after interval merging, summed over rounds
	ShuffleMsgs   int64 // gather/scatter data messages exchanged over the mesh
	ShuffleBytes  int64

	In  SizeHist // member request sizes
	Out SizeHist // aggregated run sizes
}

// Reduction returns the physical request-count reduction factor
// (RequestsIn / RequestsOut), or 0 when nothing was aggregated.
func (s Stats) Reduction() float64 {
	if s.RequestsOut == 0 {
		return 0
	}
	return float64(s.RequestsIn) / float64(s.RequestsOut)
}
