package collective

import (
	"testing"
)

// FuzzMerge decodes the fuzz input into a set of small extents, merges them,
// and checks the result against a brute-force bitmap of the union: the merged
// extents must be sorted, pairwise disjoint, non-adjacent, and cover exactly
// the union of the inputs. It then cross-checks the run planner's byte
// conservation on the merged set.
func FuzzMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 10, 10})            // adjacent pair
	f.Add([]byte{0, 15, 10, 10})            // overlapping pair
	f.Add([]byte{0, 10, 40, 10, 80, 10})    // disjoint triple
	f.Add([]byte{60, 10, 0, 200, 120, 40})  // containment, cross-stripe
	f.Add([]byte{5, 0, 7, 3, 7, 3, 200, 1}) // empty + duplicates
	f.Fuzz(func(t *testing.T, data []byte) {
		const domain = 1024
		var in []Extent
		for i := 0; i+1 < len(data); i += 2 {
			start := int64(data[i]) * 4 % domain
			n := int64(data[i+1])
			in = append(in, Extent{Start: start, End: start + n})
		}

		var ref [domain + 256]bool
		for _, e := range in {
			for b := e.Start; b < e.End; b++ {
				ref[b] = true
			}
		}

		got := Merge(in)
		var covered [domain + 256]bool
		prevEnd := int64(-1)
		for _, e := range got {
			if e.End <= e.Start {
				t.Fatalf("empty merged extent %v in %v", e, got)
			}
			if e.Start <= prevEnd {
				// Equal would mean adjacent extents that should have fused.
				t.Fatalf("merged extents unsorted or touching: %v", got)
			}
			prevEnd = e.End
			for b := e.Start; b < e.End; b++ {
				covered[b] = true
			}
		}
		for b := range ref {
			if ref[b] != covered[b] {
				t.Fatalf("byte %d: input coverage %v, merged coverage %v (in=%v merged=%v)",
					b, ref[b], covered[b], in, got)
			}
		}

		lay := Layout{StripeUnit: 64, IONodes: 5, FirstIONode: 2}
		var mergedBytes, runBytes int64
		chunks := 0
		for _, e := range got {
			mergedBytes += e.Len()
		}
		for _, r := range Runs(got, lay) {
			runBytes += r.Bytes
			chunks += r.Chunks
			if r.ION < 0 || r.ION >= lay.IONodes || r.Bytes <= 0 || r.Chunks < 1 {
				t.Fatalf("malformed run %+v", r)
			}
		}
		if runBytes != mergedBytes {
			t.Fatalf("runs move %d bytes, merged extents hold %d", runBytes, mergedBytes)
		}
	})
}
