package pablo

import (
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

func ev(op iotrace.Op, file iotrace.FileID, off, bytes int64, start, end sim.Time) iotrace.Event {
	return iotrace.Event{Op: op, File: file, Offset: off, Bytes: bytes, Start: start, End: end}
}

func TestTracerBuffersAndFeedsReducers(t *testing.T) {
	tr := NewTracer(true)
	lt := NewLifetimeReducer()
	tr.Attach(lt)
	tr.Record(ev(iotrace.OpWrite, 1, 0, 100, 0, sim.Second))
	tr.Record(ev(iotrace.OpRead, 1, 0, 50, 2*sim.Second, 3*sim.Second))
	if tr.Len() != 2 {
		t.Fatalf("buffered %d", tr.Len())
	}
	f := lt.File(1)
	if f == nil || f.BytesWritten != 100 || f.BytesRead != 50 {
		t.Fatalf("lifetime %+v", f)
	}
}

func TestTracerReductionOnlyMode(t *testing.T) {
	tr := NewTracer(false)
	tr.Record(ev(iotrace.OpRead, 1, 0, 10, 0, 1))
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("reduction-only tracer buffered events")
	}
}

func TestTracerPerturbation(t *testing.T) {
	tr := NewTracer(false)
	tr.SetPerEventOverhead(50 * sim.Microsecond)
	if got := tr.Perturbation(1000); got != 50*sim.Millisecond {
		t.Fatalf("perturbation %v", got)
	}
}

func TestLifetimeOpenTimeBracketsSessions(t *testing.T) {
	lt := NewLifetimeReducer()
	// Open at 10s (ends 11s), close at 20s (ends 21s): open for 10s.
	lt.Reduce(ev(iotrace.OpOpen, 5, 0, 0, 10*sim.Second, 11*sim.Second))
	lt.Reduce(ev(iotrace.OpClose, 5, 0, 0, 20*sim.Second, 21*sim.Second))
	// Second session 30s-41s.
	lt.Reduce(ev(iotrace.OpOpen, 5, 0, 0, 30*sim.Second, 31*sim.Second))
	lt.Reduce(ev(iotrace.OpClose, 5, 0, 0, 40*sim.Second, 41*sim.Second))
	f := lt.File(5)
	if f.OpenTime != 20*sim.Second {
		t.Fatalf("open time %v, want 20s", f.OpenTime)
	}
	if f.Count[iotrace.OpOpen] != 2 || f.Count[iotrace.OpClose] != 2 {
		t.Fatalf("counts %+v", f.Count)
	}
}

func TestLifetimeNestedOpens(t *testing.T) {
	lt := NewLifetimeReducer()
	// Two nodes hold the file open with overlap: 0-100s and 50-200s; the
	// file is open 0-200s.
	lt.Reduce(ev(iotrace.OpOpen, 1, 0, 0, 0, 0))
	lt.Reduce(ev(iotrace.OpOpen, 1, 0, 0, 50*sim.Second, 50*sim.Second))
	lt.Reduce(ev(iotrace.OpClose, 1, 0, 0, 100*sim.Second, 100*sim.Second))
	lt.Reduce(ev(iotrace.OpClose, 1, 0, 0, 200*sim.Second, 200*sim.Second))
	if got := lt.File(1).OpenTime; got != 200*sim.Second {
		t.Fatalf("open time %v, want 200s", got)
	}
}

func TestLifetimeStillOpenFile(t *testing.T) {
	lt := NewLifetimeReducer()
	lt.Reduce(ev(iotrace.OpOpen, 1, 0, 0, 10*sim.Second, 10*sim.Second))
	f := lt.File(1)
	if f.OpenTime != 0 {
		t.Fatal("unclosed file accumulated OpenTime early")
	}
	if got := f.FinalOpenTime(50 * sim.Second); got != 40*sim.Second {
		t.Fatalf("final open time %v, want 40s", got)
	}
}

func TestLifetimeFilesSorted(t *testing.T) {
	lt := NewLifetimeReducer()
	for _, id := range []iotrace.FileID{9, 3, 7} {
		lt.Reduce(ev(iotrace.OpRead, id, 0, 1, 0, 1))
	}
	files := lt.Files()
	if len(files) != 3 || files[0].File != 3 || files[1].File != 7 || files[2].File != 9 {
		t.Fatalf("order %v", files)
	}
}

func TestWindowReducerBucketsByStartTime(t *testing.T) {
	w := NewWindowReducer(10 * sim.Second)
	w.Reduce(ev(iotrace.OpWrite, 1, 0, 100, 5*sim.Second, 6*sim.Second))   // window 0
	w.Reduce(ev(iotrace.OpWrite, 1, 0, 200, 15*sim.Second, 16*sim.Second)) // window 1
	w.Reduce(ev(iotrace.OpRead, 1, 0, 300, 15*sim.Second, 18*sim.Second))  // window 1
	ws := w.Windows()
	if len(ws) != 2 || ws[0].Index != 0 || ws[1].Index != 1 {
		t.Fatalf("windows %v", ws)
	}
	if ws[1].Count[iotrace.OpWrite] != 1 || ws[1].Bytes[iotrace.OpRead] != 300 {
		t.Fatalf("window 1 %+v", ws[1])
	}
	if ws[1].Duration[iotrace.OpRead] != 3*sim.Second {
		t.Fatalf("window 1 read duration %v", ws[1].Duration[iotrace.OpRead])
	}
	if w.Window(5) != nil {
		t.Fatal("empty window not nil")
	}
	if w.Width() != 10*sim.Second {
		t.Fatal("width")
	}
}

// Property: total counts across windows equal total events, regardless of
// window width.
func TestWindowConservationProperty(t *testing.T) {
	prop := func(starts []uint32, width uint16) bool {
		w := NewWindowReducer(sim.Time(width%1000+1) * sim.Millisecond)
		for _, s := range starts {
			start := sim.Time(s)
			w.Reduce(ev(iotrace.OpRead, 1, 0, 1, start, start+1))
		}
		var total int64
		for _, s := range w.Windows() {
			total += s.Count[iotrace.OpRead]
		}
		return total == int64(len(starts))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionReducerSplitsSpanningAccesses(t *testing.T) {
	r := NewRegionReducer(1000)
	// 2500-byte write starting at 500 touches regions 0,1,2,3.
	r.Reduce(ev(iotrace.OpWrite, 1, 500, 2500, 0, 1))
	regions := r.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions %d, want 3 (offsets 500-2999)", len(regions))
	}
	if r.Region(1, 0).Bytes != 500 || r.Region(1, 1).Bytes != 1000 || r.Region(1, 2).Bytes != 1000 {
		t.Fatalf("region bytes: %+v %+v %+v", r.Region(1, 0), r.Region(1, 1), r.Region(1, 2))
	}
	for _, reg := range regions {
		if reg.Writes != 1 || reg.Reads != 0 {
			t.Fatalf("region counts %+v", reg)
		}
	}
}

func TestRegionReducerIgnoresNonDataOps(t *testing.T) {
	r := NewRegionReducer(1000)
	r.Reduce(ev(iotrace.OpSeek, 1, 0, 500, 0, 1))
	r.Reduce(ev(iotrace.OpOpen, 1, 0, 0, 0, 1))
	if len(r.Regions()) != 0 {
		t.Fatal("non-data ops created regions")
	}
}

// Property: bytes across regions equal bytes of all accesses.
func TestRegionConservationProperty(t *testing.T) {
	prop := func(accesses []struct {
		Off   uint16
		Bytes uint16
	}) bool {
		r := NewRegionReducer(777)
		var want int64
		for _, a := range accesses {
			want += int64(a.Bytes)
			r.Reduce(ev(iotrace.OpRead, 2, int64(a.Off), int64(a.Bytes), 0, 1))
		}
		var got int64
		for _, reg := range r.Regions() {
			got += reg.Bytes
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReducerNames(t *testing.T) {
	if NewLifetimeReducer().Name() != "file-lifetime" {
		t.Fail()
	}
	if NewWindowReducer(sim.Second).Name() != "time-window" {
		t.Fail()
	}
	if NewRegionReducer(1).Name() != "file-region" {
		t.Fail()
	}
}

func TestBadReducerConfigsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"window": func() { NewWindowReducer(0) },
		"region": func() { NewRegionReducer(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
