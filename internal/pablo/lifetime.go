package pablo

import (
	"sort"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// FileLifetime is one file's lifetime summary: "the number and total
// duration of file reads, writes, seeks, opens, and closes, as well as the
// number of bytes accessed for each file, and the total time each file was
// open" (§3.1).
type FileLifetime struct {
	File iotrace.FileID

	Count    [iotrace.NumOps]int64
	Duration [iotrace.NumOps]sim.Time

	BytesRead    int64
	BytesWritten int64

	// OpenTime accumulates time the file had at least one open handle,
	// approximated from open/close event bracketing.
	OpenTime sim.Time

	openDepth  int
	openedAt   sim.Time
	everOpened bool
	lastEvent  sim.Time
}

// LifetimeReducer maintains FileLifetime summaries for every file seen.
type LifetimeReducer struct {
	files map[iotrace.FileID]*FileLifetime
}

// NewLifetimeReducer creates an empty lifetime reducer.
func NewLifetimeReducer() *LifetimeReducer {
	return &LifetimeReducer{files: make(map[iotrace.FileID]*FileLifetime)}
}

// Name implements Reducer.
func (l *LifetimeReducer) Name() string { return "file-lifetime" }

// Reduce implements Reducer.
func (l *LifetimeReducer) Reduce(e iotrace.Event) {
	f := l.files[e.File]
	if f == nil {
		f = &FileLifetime{File: e.File}
		l.files[e.File] = f
	}
	f.Count[e.Op]++
	f.Duration[e.Op] += e.Duration()
	f.lastEvent = e.End
	switch e.Op {
	case iotrace.OpRead, iotrace.OpAsyncRead:
		f.BytesRead += e.Bytes
	case iotrace.OpWrite:
		f.BytesWritten += e.Bytes
	case iotrace.OpOpen:
		if f.openDepth == 0 {
			f.openedAt = e.End
			f.everOpened = true
		}
		f.openDepth++
	case iotrace.OpClose:
		if f.openDepth > 0 {
			f.openDepth--
			if f.openDepth == 0 {
				f.OpenTime += e.End - f.openedAt
			}
		}
	}
}

// File returns the summary for one file (nil if never seen).
func (l *LifetimeReducer) File(id iotrace.FileID) *FileLifetime { return l.files[id] }

// Files returns all summaries ordered by file id. Files still open report
// OpenTime up to their last captured event.
func (l *LifetimeReducer) Files() []*FileLifetime {
	out := make([]*FileLifetime, 0, len(l.files))
	for _, f := range l.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

// FinalOpenTime returns the file's open time, counting a still-open file as
// open through `end`.
func (f *FileLifetime) FinalOpenTime(end sim.Time) sim.Time {
	t := f.OpenTime
	if f.openDepth > 0 {
		t += end - f.openedAt
	}
	return t
}
