package pablo

import (
	"fmt"
	"sort"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// WindowSummary aggregates the activity that *started* within one time
// window: counts, durations and bytes per operation class. Time-window
// summaries "contain similar data [to lifetime summaries], but allow one to
// specify a window of time; this window defines the granularity at which
// data is summarized" (§3.1).
type WindowSummary struct {
	Index    int64 // window number: [Index*W, (Index+1)*W)
	Count    [iotrace.NumOps]int64
	Duration [iotrace.NumOps]sim.Time
	Bytes    [iotrace.NumOps]int64
}

// WindowReducer buckets events by start time into fixed windows.
type WindowReducer struct {
	width   sim.Time
	windows map[int64]*WindowSummary
}

// NewWindowReducer creates a reducer with the given window width (> 0).
func NewWindowReducer(width sim.Time) *WindowReducer {
	if width <= 0 {
		panic(fmt.Sprintf("pablo: window width %v <= 0", width))
	}
	return &WindowReducer{width: width, windows: make(map[int64]*WindowSummary)}
}

// Name implements Reducer.
func (w *WindowReducer) Name() string { return "time-window" }

// Width returns the window width.
func (w *WindowReducer) Width() sim.Time { return w.width }

// Reduce implements Reducer.
func (w *WindowReducer) Reduce(e iotrace.Event) {
	idx := int64(e.Start / w.width)
	s := w.windows[idx]
	if s == nil {
		s = &WindowSummary{Index: idx}
		w.windows[idx] = s
	}
	s.Count[e.Op]++
	s.Duration[e.Op] += e.Duration()
	if e.Op.Moves() {
		s.Bytes[e.Op] += e.Bytes
	}
}

// Windows returns the non-empty windows in time order.
func (w *WindowReducer) Windows() []*WindowSummary {
	out := make([]*WindowSummary, 0, len(w.windows))
	for _, s := range w.windows {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Window returns the summary for window idx (nil if empty).
func (w *WindowReducer) Window(idx int64) *WindowSummary { return w.windows[idx] }

// RegionSummary aggregates accesses to one fixed-size region of one file —
// "file region summaries are the spatial analog of time window summaries"
// (§3.1).
type RegionSummary struct {
	File   iotrace.FileID
	Index  int64 // region number: bytes [Index*R, (Index+1)*R)
	Reads  int64
	Writes int64
	Bytes  int64
}

// RegionReducer buckets data-moving events by file region. An access that
// spans several regions counts once in each region it touches, with its
// bytes split by region.
type RegionReducer struct {
	size    int64
	regions map[regionKey]*RegionSummary
}

type regionKey struct {
	file iotrace.FileID
	idx  int64
}

// NewRegionReducer creates a reducer with the given region size in bytes.
func NewRegionReducer(size int64) *RegionReducer {
	if size <= 0 {
		panic(fmt.Sprintf("pablo: region size %d <= 0", size))
	}
	return &RegionReducer{size: size, regions: make(map[regionKey]*RegionSummary)}
}

// Name implements Reducer.
func (r *RegionReducer) Name() string { return "file-region" }

// Size returns the region size.
func (r *RegionReducer) Size() int64 { return r.size }

// Reduce implements Reducer.
func (r *RegionReducer) Reduce(e iotrace.Event) {
	if !e.Op.Moves() || e.Bytes == 0 {
		return
	}
	cur := e.Offset
	end := e.Offset + e.Bytes
	for cur < end {
		idx := cur / r.size
		regionEnd := (idx + 1) * r.size
		if regionEnd > end {
			regionEnd = end
		}
		key := regionKey{e.File, idx}
		s := r.regions[key]
		if s == nil {
			s = &RegionSummary{File: e.File, Index: idx}
			r.regions[key] = s
		}
		switch e.Op {
		case iotrace.OpRead, iotrace.OpAsyncRead:
			s.Reads++
		case iotrace.OpWrite:
			s.Writes++
		}
		s.Bytes += regionEnd - cur
		cur = regionEnd
	}
}

// Regions returns all touched regions ordered by (file, region index).
func (r *RegionReducer) Regions() []*RegionSummary {
	out := make([]*RegionSummary, 0, len(r.regions))
	for _, s := range r.regions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Region returns the summary for one (file, region) pair, or nil.
func (r *RegionReducer) Region(file iotrace.FileID, idx int64) *RegionSummary {
	return r.regions[regionKey{file, idx}]
}
