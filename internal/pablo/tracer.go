// Package pablo reimplements the input/output instrumentation layer of the
// Pablo performance environment as used in the paper (§3.1): invocations of
// I/O routines are bracketed with capture code that records the parameters
// and duration of each call. The captured stream can be kept as a full event
// trace for off-line analysis, reduced in real time into file-lifetime,
// time-window and file-region summaries — the paper's three reduction kinds —
// or both.
package pablo

import (
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Tracer is an iotrace.Recorder that buffers the full event trace and feeds
// any number of attached real-time reducers.
type Tracer struct {
	keep     bool
	events   []iotrace.Event
	reducers []Reducer

	perEvent sim.Time // modeled capture overhead per event (perturbation)
}

// Reducer consumes events in capture order and maintains a running summary;
// the paper calls these "real-time reductions" and notes they trade
// computation perturbation for I/O perturbation.
type Reducer interface {
	// Name identifies the reduction in reports.
	Name() string
	// Reduce incorporates one event.
	Reduce(e iotrace.Event)
}

// NewTracer creates a tracer. If keepTrace is false, events are not buffered
// (reduction-only capture, Pablo's low-perturbation configuration).
func NewTracer(keepTrace bool) *Tracer {
	return &Tracer{keep: keepTrace}
}

// NewTracerSized creates a keep-trace tracer with capacity for hint events,
// so steady-state capture appends without growth reallocations. A hint <= 0
// is the plain NewTracer(true).
func NewTracerSized(hint int) *Tracer {
	t := &Tracer{keep: true}
	if hint > 0 {
		t.events = make([]iotrace.Event, 0, hint)
	}
	return t
}

// Reserve grows the event buffer's capacity to at least n total events. It
// does nothing in reduction-only mode or when the buffer is already large
// enough.
func (t *Tracer) Reserve(n int) {
	if !t.keep || cap(t.events) >= n {
		return
	}
	grown := make([]iotrace.Event, len(t.events), n)
	copy(grown, t.events)
	t.events = grown
}

// Attach adds a reducer that will see every subsequently captured event.
func (t *Tracer) Attach(r Reducer) { t.reducers = append(t.reducers, r) }

// SetPerEventOverhead sets the modeled instrumentation cost per captured
// event, used by Perturbation.
func (t *Tracer) SetPerEventOverhead(d sim.Time) { t.perEvent = d }

// Record implements iotrace.Recorder.
func (t *Tracer) Record(e iotrace.Event) {
	if t.keep {
		t.events = append(t.events, e)
	}
	for _, r := range t.reducers {
		r.Reduce(e)
	}
}

// Events returns the buffered trace (nil in reduction-only mode). The slice
// is owned by the tracer; callers must not modify it.
func (t *Tracer) Events() []iotrace.Event { return t.events }

// Len returns the number of buffered events.
func (t *Tracer) Len() int { return len(t.events) }

// Perturbation estimates total instrumentation overhead: captured events
// times the per-event cost. The paper reports this overhead is modest and
// largely independent of whether data is reduced on line or traced.
func (t *Tracer) Perturbation(captured int64) sim.Time {
	return sim.Time(captured) * t.perEvent
}
