package pablo

import (
	"testing"

	"repro/internal/iotrace"
)

// TestRecordAllocCeiling guards the keep-trace append path: once the event
// buffer has been Reserved, Record must append without allocating.
func TestRecordAllocCeiling(t *testing.T) {
	const runs = 4096
	tr := NewTracer(true)
	tr.Reserve(runs + 1)
	ev := iotrace.Event{Op: iotrace.OpWrite, Bytes: 4096}
	avg := testing.AllocsPerRun(runs, func() {
		tr.Record(ev)
	})
	if avg != 0 {
		t.Fatalf("Record allocated %.2f times per event with reserved capacity; want 0", avg)
	}
}

// TestNewTracerSized checks that the sized constructor pre-reserves and that
// Reserve preserves already-captured events.
func TestNewTracerSized(t *testing.T) {
	tr := NewTracerSized(128)
	for i := 0; i < 100; i++ {
		tr.Record(iotrace.Event{Op: iotrace.OpRead, Bytes: int64(i)})
	}
	tr.Reserve(4096)
	if got := tr.Len(); got != 100 {
		t.Fatalf("Len after Reserve = %d, want 100", got)
	}
	if tr.Events()[99].Bytes != 99 {
		t.Fatalf("events reshuffled by Reserve")
	}
	// Reduction-only tracers must stay nil-buffered.
	off := NewTracer(false)
	off.Reserve(1024)
	off.Record(iotrace.Event{Op: iotrace.OpRead})
	if off.Events() != nil {
		t.Fatalf("reduction-only tracer buffered events after Reserve")
	}
}
