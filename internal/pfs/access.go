package pfs

import (
	"fmt"

	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Access performs a raw, handle-less transfer against a file: no file
// pointer, no mode semantics, no atomicity token. It is the physical entry
// point for client-side policy layers — PPFS's write-behind flushers and
// prefetch daemons — which do their own scheduling and aggregation. The
// operation is charged the client overhead plus the physical transfer, and
// is captured in this (physical-level) file system's trace.
//
// op must be OpRead or OpWrite. Reads are clamped at end of file (returning
// ErrEOF at or past it); writes extend the file.
func (fs *FileSystem) Access(p *sim.Process, node int, name string, op iotrace.Op, off, n int64) (int64, error) {
	if op != iotrace.OpRead && op != iotrace.OpWrite {
		return 0, fmt.Errorf("pfs: Access with op %v: %w", op, ErrBadRequest)
	}
	if off < 0 || n < 0 {
		return 0, fmt.Errorf("pfs: Access at %d for %d: %w", off, n, ErrBadRequest)
	}
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("access %q: %w", name, ErrNotExist)
	}
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	if op == iotrace.OpRead {
		if off >= f.size {
			return 0, ErrEOF
		}
		if off+n > f.size {
			n = f.size - off
		}
	}
	if n > 0 {
		if err := fs.transfer(p, node, f, off, n, op == iotrace.OpRead); err != nil {
			return 0, err
		}
		if op == iotrace.OpWrite {
			f.extend(off + n)
		}
	}
	fs.record(node, op, f, off, n, start, iotrace.ModeAsync)
	return n, nil
}

// PhaseBurstDrain labels trace events issued by the burst tier's drain
// daemons, so analyses (and the run's wall-clock accounting) can separate
// background drain traffic from the application's own.
const PhaseBurstDrain = "burst-drain"

// DrainWrite is the burst tier's drain entry point: it transfers wire bytes
// (the post-compression volume) through the normal chunk path at [off,
// off+wire) but extends the file to off+logical, since compression shrinks
// the physical transfer, not the logical image. The event is recorded under
// PhaseBurstDrain with the logical size. Failover, caching, and integrity
// tracking all apply — the drain is a regular client of the storage stack.
func (fs *FileSystem) DrainWrite(p *sim.Process, node int, name string, off, logical, wire int64) error {
	if off < 0 || logical < 0 || wire < 0 || wire > logical {
		return fmt.Errorf("pfs: drain write at %d for %d/%d: %w", off, logical, wire, ErrBadRequest)
	}
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("drain write %q: %w", name, ErrNotExist)
	}
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	if wire > 0 {
		if err := fs.transfer(p, node, f, off, wire, false); err != nil {
			return err
		}
	}
	f.extend(off + logical)
	fs.recordPhase(node, iotrace.OpWrite, f, off, logical, start, iotrace.ModeAsync, PhaseBurstDrain)
	return nil
}

// RecordClientOp captures an operation a client-side layer completed without
// touching the PFS (a burst-tier commit): the application saw it, so the
// trace must too. No simulation time is charged; the caller already modeled
// the cost.
func (fs *FileSystem) RecordClientOp(node int, op iotrace.Op, name string, off, bytes int64,
	start sim.Time, mode iotrace.AccessMode) {
	fs.record(node, op, fs.files[name], off, bytes, start, mode)
}

// MetaVisit charges one visit to the metadata server with the given service
// time and records it as an operation of class op (with no file context).
// Trace-replay engines use it to reproduce open/close/metadata contention on
// alternative configurations without handle bookkeeping.
func (fs *FileSystem) MetaVisit(p *sim.Process, node int, op iotrace.Op, service sim.Time) {
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	fs.meta.Acquire(p)
	p.Sleep(service)
	fs.meta.Release(p)
	fs.record(node, op, nil, 0, 0, start, iotrace.ModeNone)
}

// Extent is a [Start, End) byte range within a file.
type Extent struct {
	Start, End int64
}

// WriteGather writes a batch of disjoint extents in one aggregated
// operation: the extents' stripe chunks are grouped by I/O node and each
// group is serviced as a single sorted scatter-gather sweep. This is the
// physical mechanism behind PPFS's global request aggregation (§5.2/§8):
// many small disjoint writes become one efficient arm pass per array.
//
// It returns the bytes written and the number of physical sweeps issued (one
// per I/O node touched). One write event per sweep is recorded, so physical
// traces show the aggregated requests.
func (fs *FileSystem) WriteGather(p *sim.Process, node int, name string, extents []Extent) (int64, int, error) {
	f, ok := fs.files[name]
	if !ok {
		return 0, 0, fmt.Errorf("write-gather %q: %w", name, ErrNotExist)
	}
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)

	// Split extents into stripe chunks and group them per I/O node.
	type group struct {
		bytes    int64
		requests int
		firstOff int64 // file offset of the group's first chunk
		addr     int64 // array address of the group's first chunk
	}
	groups := make([]group, len(fs.ion))
	su := fs.cfg.StripeUnit
	var total, maxEnd int64
	for _, e := range extents {
		if e.Start < 0 || e.End < e.Start {
			return 0, 0, fmt.Errorf("write-gather %q: extent %+v: %w", name, e, ErrBadRequest)
		}
		if e.End > maxEnd {
			maxEnd = e.End
		}
		cur := e.Start
		for cur < e.End {
			stripe := cur / su
			chunkEnd := (stripe + 1) * su
			if chunkEnd > e.End {
				chunkEnd = e.End
			}
			ion := f.stripeIONode(stripe, len(fs.ion))
			g := &groups[ion]
			if g.requests == 0 {
				g.firstOff = cur
				g.addr = f.arrayAddr(stripe, cur%su, len(fs.ion), su)
			}
			g.bytes += chunkEnd - cur
			g.requests++
			total += chunkEnd - cur
			cur = chunkEnd
		}
	}

	sweeps := 0
	for ion, g := range groups {
		if g.requests == 0 {
			continue
		}
		sweeps++
		if err := fs.ionSweep(p, node, ion, int64(f.id), g.addr, g.bytes, g.requests); err != nil {
			return total, sweeps, fmt.Errorf("write-gather %q at ionode %d: %w", name, ion, ErrIONodeDown)
		}
		fs.record(node, iotrace.OpWrite, f, g.firstOff, g.bytes, start, iotrace.ModeAsync)
		start = p.Now()
	}
	f.extend(maxEnd)
	return total, sweeps, nil
}

// ionSweep issues one aggregated scatter-gather sweep to an I/O node: direct
// on a serial instance, as an RPC on a partitioned one.
func (fs *FileSystem) ionSweep(p *sim.Process, node, ion int, stream, addr, bytes int64, requests int) error {
	if fs.part == nil {
		fs.msh.Transfer(p, node, fs.ionHome[ion], bytes)
		_, err := fs.ion[ion].DoSweep(p, stream, addr, bytes, requests)
		return err
	}
	return fs.ionRPC(p, node, ion, bytes, "pfs-sweep", func(sp *sim.Process, n *ionode.Node) error {
		_, err := n.DoSweep(sp, stream, addr, bytes, requests)
		return err
	})
}
