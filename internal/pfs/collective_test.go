package pfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/collective"
	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// collRig builds a rig with collective I/O on and a fixed compute partition.
func collRig(t *testing.T, nodes int, mut func(*Config)) *testRig {
	t.Helper()
	return newRig(t, func(c *Config) {
		c.ComputeNodes = nodes
		c.Collective = collective.Config{Enabled: true}
		if mut != nil {
			mut(c)
		}
	})
}

// spawnGroup runs fn once per compute node and finishes the simulation.
func spawnGroup(t *testing.T, r *testRig, nodes int, fn func(p *sim.Process, node int)) {
	t.Helper()
	for i := 0; i < nodes; i++ {
		i := i
		r.eng.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Process) { fn(p, i) })
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// openGroup opens one handle per node in its own engine run, so that a
// following spawnGroup starts every node's I/O at the same instant — the
// barrier-then-I/O-phase structure of the paper's applications. (Opens
// serialize at the metadata server, so doing them inside the I/O phase would
// stagger nodes beyond any reasonable straggler window.)
func openGroup(t *testing.T, r *testRig, nodes int, open func(p *sim.Process, node int) (*Handle, error)) []*Handle {
	t.Helper()
	hs := make([]*Handle, nodes)
	spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
		h, err := open(p, node)
		if err != nil {
			t.Errorf("node %d open: %v", node, err)
			return
		}
		hs[node] = h
	})
	if t.Failed() {
		t.FailNow()
	}
	return hs
}

// TestCollectiveRecordWriteAggregates: a full M_RECORD round of small
// records becomes a handful of bulk runs — same file image, far fewer
// physical requests.
func TestCollectiveRecordWriteAggregates(t *testing.T) {
	const (
		nodes   = 8
		recLen  = 4096
		records = 16
	)
	run := func(on bool) (size int64, phys int64, stats collective.Stats) {
		var r *testRig
		if on {
			r = collRig(t, nodes, nil)
		} else {
			r = newRig(t, func(c *Config) { c.ComputeNodes = nodes })
		}
		r.run(t, func(p *sim.Process) {
			h, err := r.fs.Create(p, 0, "rec", iotrace.ModeRecord)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			_ = h
		})
		hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
			return r.fs.OpenRecord(p, node, "rec", recLen)
		})
		spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
			for j := 0; j < records; j++ {
				done, err := hs[node].Write(p, recLen)
				if err != nil || done != recLen {
					t.Fatalf("node %d write %d: %d, %v", node, j, done, err)
				}
			}
		})
		info, _ := r.fs.Stat("rec")
		st, _ := r.fs.CollectiveStats()
		return info.Size, r.fs.PhysRequests(), st
	}

	sizeOff, physOff, _ := run(false)
	sizeOn, physOn, st := run(true)
	if sizeOn != sizeOff {
		t.Fatalf("file size with collective %d, without %d", sizeOn, sizeOff)
	}
	if want := int64(nodes * records * recLen); sizeOn != want {
		t.Fatalf("file size %d, want %d", sizeOn, want)
	}
	if physOn*4 > physOff {
		t.Fatalf("physical requests %d (collective) vs %d (per-request): want >= 4x reduction", physOn, physOff)
	}
	if st.Rounds != records || st.FullRounds != records {
		t.Fatalf("rounds %d full %d, want %d full rounds", st.Rounds, st.FullRounds, records)
	}
	if st.RequestsIn != nodes*records {
		t.Fatalf("requests in %d, want %d", st.RequestsIn, nodes*records)
	}
	if st.RequestsOut >= st.RequestsIn || st.BytesOut != st.BytesIn {
		t.Fatalf("stats out %d/%d bytes vs in %d/%d", st.RequestsOut, st.BytesOut, st.RequestsIn, st.BytesIn)
	}
}

// TestCollectiveRecordReadBack: writes per-request, reads collectively; every
// node must get its own records back with correct EOF behaviour at the tail.
func TestCollectiveRecordReadBack(t *testing.T) {
	const (
		nodes  = 4
		recLen = 2048
	)
	r := collRig(t, nodes, nil)
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "rr", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		// 2 full record rounds for 4 nodes, then one extra record so the
		// third round exists only for node 0: its peers hit EOF and the
		// straggler window must flush node 0's singleton round.
		if _, err := h.Write(p, int64(recLen*(2*nodes+1))); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	var got [nodes][]int64
	var errs [nodes]error
	hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
		return r.fs.OpenRecord(p, node, "rr", recLen)
	})
	spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
		h := hs[node]
		for {
			done, err := h.Read(p, recLen)
			if err != nil {
				errs[node] = err
				return
			}
			got[node] = append(got[node], done)
		}
	})
	for node := 0; node < nodes; node++ {
		want := 2
		if node == 0 {
			want = 3
		}
		if len(got[node]) != want {
			t.Fatalf("node %d read %d records, want %d", node, len(got[node]), want)
		}
		if !errors.Is(errs[node], ErrEOF) {
			t.Fatalf("node %d final error %v, want ErrEOF", node, errs[node])
		}
	}
	st, _ := r.fs.CollectiveStats()
	if st.TimeoutRounds == 0 {
		t.Fatalf("expected a straggler-window flush, stats %+v", st)
	}
}

// TestCollectiveSyncMatchesBaseline: M_SYNC through the round barrier must
// produce the same final file size and shared-pointer state as the
// sequencer-ordered baseline.
func TestCollectiveSyncMatchesBaseline(t *testing.T) {
	const (
		nodes  = 6
		nBytes = 3000
		rounds = 5
	)
	run := func(on bool) (size int64, phys int64) {
		var r *testRig
		if on {
			r = collRig(t, nodes, nil)
		} else {
			r = newRig(t, func(c *Config) { c.ComputeNodes = nodes })
		}
		r.run(t, func(p *sim.Process) {
			if _, err := r.fs.Create(p, 0, "s", iotrace.ModeSync); err != nil {
				t.Fatal(err)
			}
		})
		hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
			return r.fs.Open(p, node, "s", iotrace.ModeSync)
		})
		spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
			h := hs[node]
			for j := 0; j < rounds; j++ {
				// Variable per-node sizes: offsets still line up because both
				// disciplines assign them in node order per round.
				n := int64(nBytes + node*128)
				done, err := h.Write(p, n)
				if err != nil || done != n {
					t.Fatalf("node %d round %d: %d, %v", node, j, done, err)
				}
			}
		})
		info, _ := r.fs.Stat("s")
		return info.Size, r.fs.PhysRequests()
	}
	sizeOff, physOff := run(false)
	sizeOn, physOn := run(true)
	if sizeOn != sizeOff {
		t.Fatalf("file size with collective %d, without %d", sizeOn, sizeOff)
	}
	if physOn >= physOff {
		t.Fatalf("collective did not reduce physical requests: %d vs %d", physOn, physOff)
	}
}

// TestCollectiveSyncReadEOF: collective M_SYNC reads clamp and EOF exactly
// like the shared-pointer baseline — node order decides who hits the end.
func TestCollectiveSyncReadEOF(t *testing.T) {
	const nodes = 3
	r := collRig(t, nodes, nil)
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "se", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(p, 2500); err != nil { // 2.5 of three 1000-byte reads
			t.Fatal(err)
		}
		if err := h.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	var done [nodes]int64
	var errs [nodes]error
	hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
		return r.fs.Open(p, node, "se", iotrace.ModeSync)
	})
	spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
		done[node], errs[node] = hs[node].Read(p, 1000)
	})
	if done[0] != 1000 || done[1] != 1000 || done[2] != 500 {
		t.Fatalf("read sizes %v, want [1000 1000 500]", done)
	}
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d unexpected error %v", node, err)
		}
	}
	// One more round on the same handles: the shared pointer sits at the
	// end, so every member must see ErrEOF.
	spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
		if _, err := hs[node].Read(p, 1000); !errors.Is(err, ErrEOF) {
			t.Fatalf("node %d: %v, want ErrEOF", node, err)
		}
	})
}

// TestCollectiveWithCSCANAndCache: aggregation composes with the elevator
// scheduler and the I/O-node cache without deadlock or data loss.
func TestCollectiveWithCSCANAndCache(t *testing.T) {
	const (
		nodes  = 8
		recLen = 4096
	)
	r := collRig(t, nodes, func(c *Config) {
		c.Sched = ionode.SchedConfig{Policy: "cscan", Window: 200 * sim.Microsecond}
		c.Cache = cache.Config{Enabled: true}
	})
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Create(p, 0, "cc", iotrace.ModeRecord); err != nil {
			t.Fatal(err)
		}
	})
	hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
		return r.fs.OpenRecord(p, node, "cc", recLen)
	})
	spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
		for j := 0; j < 8; j++ {
			if _, err := hs[node].Write(p, recLen); err != nil {
				t.Fatalf("node %d: %v", node, err)
			}
		}
	})
	info, _ := r.fs.Stat("cc")
	if want := int64(nodes * 8 * recLen); info.Size != want {
		t.Fatalf("size %d, want %d", info.Size, want)
	}
	if stats := r.fs.SchedStats(); len(stats) == 0 {
		t.Fatal("no scheduler stats with cscan installed")
	}
}

// TestCollectiveDeterministic: two identical runs produce identical stats,
// file sizes, and clocks.
func TestCollectiveDeterministic(t *testing.T) {
	run := func() string {
		const nodes = 5
		r := collRig(t, nodes, func(c *Config) {
			c.Sched = ionode.SchedConfig{Policy: "cscan", Window: 200 * sim.Microsecond, Seed: 11}
		})
		r.run(t, func(p *sim.Process) {
			if _, err := r.fs.Create(p, 0, "d", iotrace.ModeSync); err != nil {
				t.Fatal(err)
			}
		})
		hs := openGroup(t, r, nodes, func(p *sim.Process, node int) (*Handle, error) {
			return r.fs.Open(p, node, "d", iotrace.ModeSync)
		})
		spawnGroup(t, r, nodes, func(p *sim.Process, node int) {
			for j := 0; j < 6; j++ {
				if _, err := hs[node].Write(p, int64(1000+node*7)); err != nil {
					t.Fatalf("node %d: %v", node, err)
				}
			}
		})
		st, _ := r.fs.CollectiveStats()
		info, _ := r.fs.Stat("d")
		return fmt.Sprintf("%+v|%+v|%d", st, info, r.eng.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("collective runs diverged:\n%s\n%s", a, b)
	}
}
