package pfs

import (
	"sort"

	"repro/internal/sim"
)

// ReliabilityConfig governs the client-side reliability layer layered over
// the transfer path: per-request deadlines, bounded retries with seeded
// exponential backoff + jitter for corrupt reads, and hedged reads against
// the mirror path of a slow (degraded) I/O node. The zero value disables the
// layer entirely and leaves the data path bit-identical to the pre-existing
// failover behaviour.
type ReliabilityConfig struct {
	// Enabled turns the layer on. All other fields are ignored when false.
	Enabled bool

	// Deadline bounds each Read/Write call end to end: once it passes, the
	// retry machinery stops and the call fails with ErrDeadline instead of
	// backing off further. Zero means no deadline.
	Deadline sim.Time

	// MaxRetries bounds the corrupt-read retry loop (distinct from the
	// failover retry budget, which covers dead nodes).
	MaxRetries int

	// Backoff is the first corrupt-retry delay; it doubles per attempt.
	Backoff sim.Time

	// JitterFrac perturbs every reliability-layer backoff (including the
	// failover path's, when the layer is enabled) by a seeded uniform factor
	// in [1-f, 1+f], decorrelating retry storms across clients.
	JitterFrac float64

	// Seed drives the jitter stream; same seed, same timeline.
	Seed uint64

	// Hedge enables hedged reads: once enough latency samples exist, a read
	// still outstanding at the observed HedgeQuantile latency issues a second
	// attempt to the chunk's replica, and the first completion wins. Requires
	// failover replication.
	Hedge bool

	// HedgeQuantile is the latency quantile that arms the hedge timer
	// (default 0.95).
	HedgeQuantile float64

	// HedgeMinSamples is how many chunk-read latencies must be observed
	// before hedging engages (default 32).
	HedgeMinSamples int
}

// DefaultReliabilityConfig returns the enabled default policy: no deadline,
// 3 corrupt retries starting at a 10 ms backoff with 20% jitter, hedging off.
func DefaultReliabilityConfig() ReliabilityConfig {
	return ReliabilityConfig{
		Enabled:         true,
		MaxRetries:      3,
		Backoff:         10 * sim.Millisecond,
		JitterFrac:      0.2,
		Seed:            0x524c4941, // "RLIA"
		HedgeQuantile:   0.95,
		HedgeMinSamples: 32,
	}
}

// Normalized fills zero fields with defaults (only meaningful when Enabled).
func (c ReliabilityConfig) Normalized() ReliabilityConfig {
	if !c.Enabled {
		return c
	}
	d := DefaultReliabilityConfig()
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = d.Backoff
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = d.HedgeQuantile
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = d.HedgeMinSamples
	}
	return c
}

// ReliabilityStats counts the reliability layer's activity. All zeros when
// the layer is disabled or the run is healthy.
type ReliabilityStats struct {
	Requests         int64    // transfers entered with the layer enabled
	DeadlineExceeded int64    // transfers abandoned at their deadline
	Retries          int64    // corrupt-read retry attempts issued
	RetryBackoffTime sim.Time // total seeded backoff slept by retries
	CorruptRetries   int64    // retry rounds triggered by ErrCorrupt
	CorruptReroutes  int64    // corrupt chunks completed from the replica
	CorruptFailed    int64    // chunks abandoned still corrupt
	RepairWrites     int64    // background heal writes to corrupt primaries
	QuorumReads      int64    // extra replica reads issued by the quorum policy
	HedgesIssued     int64    // hedge attempts that actually issued I/O
	HedgeWins        int64    // hedges that completed before the primary
	HedgeLosses      int64    // hedges that lost the race (wasted I/O)
	HedgeExtraBytes  int64    // replica bytes moved by hedges
}

// latRingSize is the hedge latency window: quantiles are computed over the
// most recent latRingSize successful primary chunk-read latencies.
const latRingSize = 256

// latencyTracker is a fixed ring of recent chunk-read latencies feeding the
// hedge threshold.
type latencyTracker struct {
	samples [latRingSize]sim.Time
	n       int64 // total recorded (ring holds min(n, latRingSize))
}

func (t *latencyTracker) record(d sim.Time) {
	t.samples[t.n%latRingSize] = d
	t.n++
}

func (t *latencyTracker) ready(min int) bool { return t.n >= int64(min) }

// quantile returns the q-quantile of the recorded window (nearest-rank).
func (t *latencyTracker) quantile(q float64) sim.Time {
	n := t.n
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return 0
	}
	buf := make([]sim.Time, n)
	copy(buf, t.samples[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	k := int(q * float64(n-1))
	return buf[k]
}
