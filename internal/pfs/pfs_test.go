package pfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/iotrace"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// testRig bundles a small simulated machine: 32 compute nodes + 4 I/O nodes.
type testRig struct {
	eng *sim.Engine
	fs  *FileSystem
	rec *sliceRecorder
}

type sliceRecorder struct {
	events []iotrace.Event
}

func (r *sliceRecorder) Record(e iotrace.Event) { r.events = append(r.events, e) }

func (r *sliceRecorder) count(op iotrace.Op) int {
	n := 0
	for _, e := range r.events {
		if e.Op == op {
			n++
		}
	}
	return n
}

func newRig(t *testing.T, mut func(*Config)) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	m := mesh.New(mesh.Config{
		Cols: 6, Rows: 6,
		SWLatency: 100 * sim.Microsecond, HopLatency: 1 * sim.Microsecond,
		BWBytesPerS: 10e6,
	})
	cfg := DefaultConfig()
	cfg.IONodes = 4
	if mut != nil {
		mut(&cfg)
	}
	fs, err := New(eng, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &sliceRecorder{}
	fs.SetRecorder(rec)
	return &testRig{eng: eng, fs: fs, rec: rec}
}

// run executes fn as node 0's program and finishes the simulation.
func (r *testRig) run(t *testing.T, fn func(p *sim.Process)) {
	t.Helper()
	r.eng.Spawn("test", fn)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenAndErrors(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Open(p, 0, "missing", iotrace.ModeUnix); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing: %v", err)
		}
		h, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix); !errors.Is(err, ErrExist) {
			t.Errorf("re-create: %v", err)
		}
		if !r.fs.Exists("f") {
			t.Error("Exists(f) = false")
		}
		if err := h.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := h.Close(p); !errors.Is(err, ErrClosed) {
			t.Errorf("double close: %v", err)
		}
		if _, err := h.Read(p, 10); !errors.Is(err, ErrClosed) {
			t.Errorf("read after close: %v", err)
		}
	})
	if got := r.rec.count(iotrace.OpOpen); got != 1 {
		t.Errorf("open events = %d, want 1", got)
	}
	if got := r.rec.count(iotrace.OpClose); got != 1 {
		t.Errorf("close events = %d, want 1", got)
	}
}

func TestWriteExtendsAndReadClampsAtEOF(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := h.Write(p, 100_000); err != nil || n != 100_000 {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		info, _ := r.fs.Stat("f")
		if info.Size != 100_000 {
			t.Fatalf("size %d", info.Size)
		}
		if _, err := h.Seek(p, 0, SeekStart); err != nil {
			t.Fatal(err)
		}
		if n, err := h.Read(p, 60_000); err != nil || n != 60_000 {
			t.Fatalf("read1: n=%d err=%v", n, err)
		}
		// 40k left: request 60k, get 40k short.
		if n, err := h.Read(p, 60_000); err != nil || n != 40_000 {
			t.Fatalf("short read: n=%d err=%v", n, err)
		}
		// At EOF: zero bytes + ErrEOF.
		if n, err := h.Read(p, 10); !errors.Is(err, ErrEOF) || n != 0 {
			t.Fatalf("eof read: n=%d err=%v", n, err)
		}
	})
}

func TestStripingSpreadsAcrossIONodes(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "big", iotrace.ModeUnix)
		// 8 stripes of 64 KB over 4 I/O nodes: each services 2 chunks.
		if _, err := h.Write(p, 8*64*1024); err != nil {
			t.Fatal(err)
		}
	})
	for i, ion := range r.fs.IONodes() {
		req, bytes := ion.Stats()
		if req != 2 || bytes != 2*64*1024 {
			t.Errorf("ionode %d: %d req %d bytes, want 2 req 128KiB", i, req, bytes)
		}
	}
}

func TestSubStripeAccessTouchesOneIONode(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "small", iotrace.ModeUnix)
		if _, err := h.Write(p, 2048); err != nil {
			t.Fatal(err)
		}
	})
	touched := 0
	for _, ion := range r.fs.IONodes() {
		if req, _ := ion.Stats(); req > 0 {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("2 KB write touched %d I/O nodes, want 1", touched)
	}
}

func TestMUnixAtomicitySerializesSharedFile(t *testing.T) {
	// Two nodes writing the same M_UNIX file serialize on the atomicity
	// token; the same pattern on M_ASYNC overlaps. Compare makespans.
	elapsed := func(mode iotrace.AccessMode) sim.Time {
		r := newRig(t, nil)
		setup := make(chan *FileSystem, 1)
		_ = setup
		var hs [2]*Handle
		r.eng.Spawn("setup", func(p *sim.Process) {
			h, err := r.fs.Create(p, 0, "shared", mode)
			if err != nil {
				t.Fatal(err)
			}
			hs[0] = h
			h2, err := r.fs.Open(p, 1, "shared", mode)
			if err != nil {
				t.Fatal(err)
			}
			hs[1] = h2
			// Pre-extend so both can "read" too if needed.
			for node := 0; node < 2; node++ {
				node := node
				r.eng.Spawn(fmt.Sprintf("w%d", node), func(p *sim.Process) {
					hs[node].Seek(p, int64(node)*10<<20, SeekStart)
					if _, err := hs[node].Write(p, 1<<20); err != nil {
						t.Errorf("write: %v", err)
					}
				})
			}
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.eng.Now()
	}
	serial := elapsed(iotrace.ModeUnix)
	overlapped := elapsed(iotrace.ModeAsync)
	if overlapped >= serial {
		t.Fatalf("M_ASYNC (%v) not faster than M_UNIX (%v) under contention", overlapped, serial)
	}
}

func TestMLogSharedPointerAssignsDisjointRegions(t *testing.T) {
	r := newRig(t, nil)
	offsets := map[int64]bool{}
	r.eng.Spawn("setup", func(p *sim.Process) {
		h0, err := r.fs.Create(p, 0, "log", iotrace.ModeLog)
		if err != nil {
			t.Fatal(err)
		}
		handles := []*Handle{h0}
		for node := 1; node < 4; node++ {
			h, err := r.fs.Open(p, node, "log", iotrace.ModeLog)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for i, h := range handles {
			h := h
			r.eng.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Process) {
				if _, err := h.Write(p, 1000); err != nil {
					t.Errorf("write: %v", err)
				}
			})
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range r.rec.events {
		if e.Op == iotrace.OpWrite {
			if offsets[e.Offset] {
				t.Fatalf("duplicate M_LOG offset %d", e.Offset)
			}
			offsets[e.Offset] = true
		}
	}
	for _, want := range []int64{0, 1000, 2000, 3000} {
		if !offsets[want] {
			t.Fatalf("missing M_LOG offset %d; got %v", want, offsets)
		}
	}
	info, _ := r.fs.Stat("log")
	if info.Size != 4000 {
		t.Fatalf("log size %d, want 4000", info.Size)
	}
}

func TestMSyncAccessesInNodeOrder(t *testing.T) {
	r := newRig(t, nil)
	var writeOrder []int
	r.eng.Spawn("setup", func(p *sim.Process) {
		h0, err := r.fs.Create(p, 0, "sync", iotrace.ModeSync)
		if err != nil {
			t.Fatal(err)
		}
		handles := []*Handle{h0}
		for node := 1; node < 4; node++ {
			h, err := r.fs.Open(p, node, "sync", iotrace.ModeSync)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		// Spawn in reverse arrival order; writes must still land 0,1,2,3.
		for i := len(handles) - 1; i >= 0; i-- {
			i := i
			h := handles[i]
			r.eng.SpawnAt(fmt.Sprintf("w%d", i), sim.Time(len(handles)-i)*sim.Millisecond, func(p *sim.Process) {
				if _, err := h.Write(p, 100); err != nil {
					t.Errorf("write: %v", err)
				}
				writeOrder = append(writeOrder, i)
			})
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range writeOrder {
		if v != i {
			t.Fatalf("M_SYNC order %v", writeOrder)
		}
	}
}

func TestMRecordFixedLengthAndInterleaving(t *testing.T) {
	r := newRig(t, nil)
	const rec = 512
	ncompute := int64(32) // 36 mesh positions - 4 I/O nodes
	r.eng.Spawn("setup", func(p *sim.Process) {
		hw, err := r.fs.Create(p, 0, "rec", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-populate enough data for the reads below.
		if _, err := hw.Write(p, rec*3*ncompute); err != nil {
			t.Fatal(err)
		}
		for node := 0; node < 3; node++ {
			node := node
			r.eng.Spawn(fmt.Sprintf("r%d", node), func(p *sim.Process) {
				h, err := r.fs.OpenRecord(p, node, "rec", rec)
				if err != nil {
					t.Errorf("open record: %v", err)
					return
				}
				// Wrong size rejected.
				if _, err := h.Read(p, rec+1); !errors.Is(err, ErrRecordLength) {
					t.Errorf("variable-size M_RECORD access: %v", err)
				}
				for j := int64(0); j < 2; j++ {
					if _, err := h.Read(p, rec); err != nil {
						t.Errorf("record read: %v", err)
					}
					want := (j*ncompute + int64(node)) * rec
					if h.Offset() != want+rec {
						t.Errorf("node %d rec %d: offset %d, want %d", node, j, h.Offset(), want+rec)
					}
				}
			})
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMGlobalOnePhysicalTransfer(t *testing.T) {
	r := newRig(t, nil)
	r.eng.Spawn("setup", func(p *sim.Process) {
		hw, err := r.fs.Create(p, 0, "g", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hw.Write(p, 64*1024); err != nil {
			t.Fatal(err)
		}
		before := totalRequests(r.fs)
		handles := make([]*Handle, 4)
		for node := 0; node < 4; node++ {
			h, err := r.fs.Open(p, node, "g", iotrace.ModeGlobal)
			if err != nil {
				t.Fatal(err)
			}
			handles[node] = h
		}
		done := 0
		for node := 0; node < 4; node++ {
			node := node
			r.eng.Spawn(fmt.Sprintf("g%d", node), func(p *sim.Process) {
				n, err := handles[node].Read(p, 64*1024)
				if err != nil || n != 64*1024 {
					t.Errorf("global read node %d: n=%d err=%v", node, n, err)
				}
				done++
				if done == 4 {
					after := totalRequests(r.fs)
					if after-before != 1 {
						t.Errorf("M_GLOBAL issued %d physical requests, want 1", after-before)
					}
				}
			})
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func totalRequests(fs *FileSystem) int64 {
	var total int64
	for _, ion := range fs.IONodes() {
		req, _ := ion.Stats()
		total += req
	}
	return total
}

func TestSharedModeMismatchRejected(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Create(p, 0, "s", iotrace.ModeLog); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Open(p, 1, "s", iotrace.ModeSync); !errors.Is(err, ErrModeMismatch) {
			t.Fatalf("mode mismatch not rejected: %v", err)
		}
		// Same mode is fine.
		if _, err := r.fs.Open(p, 1, "s", iotrace.ModeLog); err != nil {
			t.Fatalf("same-mode open rejected: %v", err)
		}
	})
}

func TestSeekSemanticsAndDistance(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 1000)
		if off, err := h.Seek(p, 100, SeekStart); err != nil || off != 100 {
			t.Fatalf("seek start: %d %v", off, err)
		}
		if off, err := h.Seek(p, 50, SeekCurrent); err != nil || off != 150 {
			t.Fatalf("seek current: %d %v", off, err)
		}
		if off, err := h.Seek(p, -200, SeekEnd); err != nil || off != 800 {
			t.Fatalf("seek end: %d %v", off, err)
		}
		if _, err := h.Seek(p, -10, SeekStart); !errors.Is(err, ErrBadSeek) {
			t.Fatalf("negative seek: %v", err)
		}
		if _, err := h.Seek(p, 0, 99); !errors.Is(err, ErrBadSeek) {
			t.Fatalf("bad whence: %v", err)
		}
	})
	// Distances recorded as event bytes: 1000->100 = 900, then 50, then
	// 150->800 = 650.
	var dists []int64
	for _, e := range r.rec.events {
		if e.Op == iotrace.OpSeek {
			dists = append(dists, e.Bytes)
		}
	}
	want := []int64{900, 50, 650}
	if len(dists) != len(want) {
		t.Fatalf("seek events %v", dists)
	}
	for i := range want {
		if dists[i] != want[i] {
			t.Fatalf("seek distances %v, want %v", dists, want)
		}
	}
}

func TestAsyncReadOverlapsWithCompute(t *testing.T) {
	// Issue a large async read, compute for its duration, then wait: total
	// time should be close to max(compute, read), not the sum.
	var syncTime, asyncTime sim.Time
	const size = 4 << 20
	const compute = 2 * sim.Second

	{
		r := newRig(t, nil)
		r.run(t, func(p *sim.Process) {
			h, _ := r.fs.Create(p, 0, "d", iotrace.ModeUnix)
			h.Write(p, size)
			h.Seek(p, 0, SeekStart)
			start := p.Now()
			if _, err := h.Read(p, size); err != nil {
				t.Fatal(err)
			}
			p.Sleep(compute)
			syncTime = p.Now() - start
		})
	}
	{
		r := newRig(t, nil)
		r.run(t, func(p *sim.Process) {
			h, _ := r.fs.Create(p, 0, "d", iotrace.ModeUnix)
			h.Write(p, size)
			h.Seek(p, 0, SeekStart)
			start := p.Now()
			ar, err := h.ReadAsync(p, size)
			if err != nil {
				t.Fatal(err)
			}
			p.Sleep(compute)
			if n, err := ar.Wait(p); err != nil || n != size {
				t.Fatalf("wait: n=%d err=%v", n, err)
			}
			asyncTime = p.Now() - start
		})
		// Fully overlapped: iowait events exist and are ~0 in duration.
		for _, e := range r.rec.events {
			if e.Op == iotrace.OpIOWait && e.Duration() > 100*sim.Millisecond {
				t.Fatalf("iowait %v despite full overlap", e.Duration())
			}
		}
	}
	if asyncTime >= syncTime-sim.Second {
		t.Fatalf("async %v not much faster than sync %v", asyncTime, syncTime)
	}
}

func TestAsyncReadIOWaitChargedWhenNotOverlapped(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "d", iotrace.ModeUnix)
		h.Write(p, 4<<20)
		h.Seek(p, 0, SeekStart)
		ar, err := h.ReadAsync(p, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ar.Wait(p); err != nil {
			t.Fatal(err)
		}
		// Second Wait returns immediately with the same result.
		if n, err := ar.Wait(p); err != nil || n != 4<<20 {
			t.Fatalf("re-wait: n=%d err=%v", n, err)
		}
	})
	var waits []sim.Time
	for _, e := range r.rec.events {
		if e.Op == iotrace.OpIOWait {
			waits = append(waits, e.Duration())
		}
	}
	if len(waits) != 1 {
		t.Fatalf("iowait events %d, want 1", len(waits))
	}
	if waits[0] < 100*sim.Millisecond {
		t.Fatalf("iowait %v suspiciously small for un-overlapped 4 MB read", waits[0])
	}
}

func TestAsyncReadAtEOF(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "d", iotrace.ModeUnix)
		h.Write(p, 100)
		// Pointer at 100 == EOF.
		ar, err := h.ReadAsync(p, 50)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := ar.Wait(p); !errors.Is(err, ErrEOF) || n != 0 {
			t.Fatalf("eof async: n=%d err=%v", n, err)
		}
	})
}

func TestAsyncReadRejectedOnSharedModes(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "l", iotrace.ModeLog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.ReadAsync(p, 100); err == nil {
			t.Fatal("ReadAsync on M_LOG accepted")
		}
	})
}

func TestLsizeAndFlush(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 12345)
		size, err := h.Lsize(p)
		if err != nil || size != 12345 {
			t.Fatalf("lsize: %d %v", size, err)
		}
		if err := h.Flush(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
	})
	if r.rec.count(iotrace.OpLsize) != 1 || r.rec.count(iotrace.OpFlush) != 1 {
		t.Fatal("lsize/flush events missing")
	}
}

func TestFirstOpenPenaltyAppliedOnce(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cost.FirstOpenPenalty = 5 * sim.Second
	})
	var first, second sim.Time
	r.run(t, func(p *sim.Process) {
		t0 := p.Now()
		r.fs.Create(p, 0, "a", iotrace.ModeUnix)
		first = p.Now() - t0
		t1 := p.Now()
		r.fs.Create(p, 0, "b", iotrace.ModeUnix)
		second = p.Now() - t1
	})
	if first < 5*sim.Second {
		t.Fatalf("first open %v did not include penalty", first)
	}
	if second >= 5*sim.Second {
		t.Fatalf("second open %v re-paid penalty", second)
	}
}

func TestOpCountersMatchRecorder(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 1000)
		h.Write(p, 500)
		h.Seek(p, 0, SeekStart)
		h.Read(p, 1500)
		h.Close(p)
	})
	fs := r.fs
	if fs.OpCount(iotrace.OpWrite) != 2 || fs.OpBytes(iotrace.OpWrite) != 1500 {
		t.Fatalf("write counters: %d ops %d bytes", fs.OpCount(iotrace.OpWrite), fs.OpBytes(iotrace.OpWrite))
	}
	if fs.OpCount(iotrace.OpRead) != 1 || fs.OpBytes(iotrace.OpRead) != 1500 {
		t.Fatal("read counters wrong")
	}
	if fs.OpTime(iotrace.OpWrite) <= 0 {
		t.Fatal("no write time accumulated")
	}
	if len(r.rec.events) != int(fs.OpCount(iotrace.OpOpen)+fs.OpCount(iotrace.OpClose)+
		fs.OpCount(iotrace.OpRead)+fs.OpCount(iotrace.OpWrite)+fs.OpCount(iotrace.OpSeek)) {
		t.Fatalf("recorder has %d events", len(r.rec.events))
	}
}

func TestPhaseLabelsCaptured(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		r.fs.SetPhase("init")
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		r.fs.SetPhase("main")
		h.Write(p, 100)
	})
	if r.rec.events[0].Phase != "init" || r.rec.events[1].Phase != "main" {
		t.Fatalf("phases: %q %q", r.rec.events[0].Phase, r.rec.events[1].Phase)
	}
}

func TestFilesListedInCreationOrder(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		for _, name := range []string{"c", "a", "b"} {
			if _, err := r.fs.Create(p, 0, name, iotrace.ModeUnix); err != nil {
				t.Fatal(err)
			}
		}
	})
	files := r.fs.Files()
	if len(files) != 3 || files[0].Name != "c" || files[1].Name != "a" || files[2].Name != "b" {
		t.Fatalf("files %v", files)
	}
	if files[0].ID != 1 || files[2].ID != 3 {
		t.Fatalf("ids %v", files)
	}
}

func TestNegativeRequestRejected(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if _, err := h.Write(p, -5); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("negative write: %v", err)
		}
		if _, err := h.Read(p, -5); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("negative read: %v", err)
		}
	})
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.IONodes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("0 ionodes accepted")
	}
	bad = DefaultConfig()
	bad.StripeUnit = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("0 stripe accepted")
	}
	eng := sim.NewEngine()
	m := mesh.New(mesh.DefaultConfig(16))
	if _, err := New(eng, m, bad); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		r := newRig(t, nil)
		r.eng.Spawn("setup", func(p *sim.Process) {
			h0, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
			if err != nil {
				t.Fatal(err)
			}
			_ = h0
			for node := 0; node < 8; node++ {
				node := node
				r.eng.Spawn(fmt.Sprintf("n%d", node), func(p *sim.Process) {
					h, err := r.fs.Open(p, node, "f", iotrace.ModeUnix)
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					for i := 0; i < 5; i++ {
						h.Seek(p, int64(node*1000+i*100), SeekStart)
						h.Write(p, 100)
					}
				})
			}
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
