// The repair control plane. An I/O-node outage opens a window of
// vulnerability: writes whose primary is down land sloppily on a surviving
// replica (recorded in the redirect ledger), and mirror writes whose target
// is down are skipped (recorded as mirror misses). Both feed an
// under-replication index keyed by (node, tagged address); outage events from
// internal/fault stamp the window boundaries and nudge the drain. A
// background repair daemon — spawned on demand, exiting when the ledger is
// empty so the engine can drain — re-replicates each missing copy through
// the normal node path (mesh hop, queueing, cache, integrity verify-on-read,
// disk scheduler) under a configurable bandwidth throttle, restoring full
// redundancy some finite time after the outage ends.
package pfs

import (
	"errors"
	"fmt"

	"repro/internal/integrity"
	"repro/internal/sim"
)

// RepairConfig governs the background repair daemon. The zero value disables
// it: missed copies stay missing, exactly as before this subsystem existed.
type RepairConfig struct {
	// Enabled turns the repair control plane on. Requires an effective
	// replication factor >= 2 to have anything to repair.
	Enabled bool

	// BandwidthBytesPerS caps the average re-replication rate: after each
	// repaired chunk the daemon sleeps chunk/bandwidth, so repair traffic
	// cannot monopolize the arrays. 0 = unthrottled.
	BandwidthBytesPerS float64

	// GiveUp abandons a ledger entry still unrepaired this long after it
	// was enqueued (a bandwidth-starved or perpetually-blocked backlog
	// surfaces as permanently lost redundancy instead of an ever-growing
	// queue). 0 = never give up.
	GiveUp sim.Time
}

// DefaultRepairConfig returns the enabled policy: repair throttled to
// 32 MB/s, never giving up.
func DefaultRepairConfig() RepairConfig {
	return RepairConfig{Enabled: true, BandwidthBytesPerS: 32 << 20}
}

func (c RepairConfig) validate() error {
	if c.BandwidthBytesPerS < 0 {
		return fmt.Errorf("pfs: negative repair bandwidth %g B/s", c.BandwidthBytesPerS)
	}
	if c.GiveUp < 0 {
		return fmt.Errorf("pfs: negative repair give-up %v", c.GiveUp)
	}
	return nil
}

// RepairStats counts the repair control plane's activity. All zeros on a
// healthy run or with repair disabled.
type RepairStats struct {
	Outages      int64 // I/O-node outage windows observed
	SloppyWrites int64 // writes that completed on a replica while the primary was down
	MirrorMisses int64 // replica copies skipped because their target was down

	LedgerPuts   int64 // under-replication entries enqueued (after dedup)
	LedgerDrains int64 // entries resolved by the daemon (repaired or abandoned)
	LedgerPeak   int64 // deepest the redirect ledger ever got

	Sweeps         int64    // daemon activations
	ChunksRepaired int64    // copies restored
	BytesRepaired  int64    // bytes re-replicated
	Abandoned      int64    // entries given up on (dead array, corrupt source, or GiveUp age)
	ThrottleTime   sim.Time // total bandwidth-throttle sleep

	FirstVulnerableAt    sim.Time // first outage start (0 = never vulnerable)
	LastOutageEndAt      sim.Time // most recent outage end
	RedundancyRestoredAt sim.Time // instant the ledger last drained to empty
}

// TimeToFullRedundancy is how long after the last outage ended the fleet
// stayed under-replicated (0 when nothing needed repair).
func (s RepairStats) TimeToFullRedundancy() sim.Time {
	if s.RedundancyRestoredAt <= s.LastOutageEndAt {
		return 0
	}
	return s.RedundancyRestoredAt - s.LastOutageEndAt
}

// WindowOfVulnerability spans from the first outage to the instant
// redundancy was last restored (the period a second failure could have lost
// data).
func (s RepairStats) WindowOfVulnerability() sim.Time {
	end := s.RedundancyRestoredAt
	if s.LastOutageEndAt > end {
		end = s.LastOutageEndAt
	}
	if s.FirstVulnerableAt == 0 || end <= s.FirstVulnerableAt {
		return 0
	}
	return end - s.FirstVulnerableAt
}

// Capped truncates the outage-side stamps at the app's last traced
// operation, mirroring the incident-timeline convention: fault windows
// scheduled past completion must not widen the reported vulnerability.
// Repair-side stamps are left untouched — the daemon legitimately drains
// its backlog after the app finishes.
func (s RepairStats) Capped(end sim.Time) RepairStats {
	if s.FirstVulnerableAt > end {
		s.FirstVulnerableAt = 0
		s.LastOutageEndAt = 0
		return s
	}
	if s.LastOutageEndAt > end {
		s.LastOutageEndAt = end
	}
	return s
}

// repairKey identifies one missing copy: the tagged address names both the
// chunk and the copy index, target the node that should hold it.
type repairKey struct {
	target int
	addr   int64
}

// repairEntry is one under-replicated chunk copy awaiting repair.
type repairEntry struct {
	f       *File
	primary int      // the chunk's primary I/O node
	copy    int      // which copy is missing (0 = the primary copy itself)
	src     int      // copy index known to hold fresh data
	addr    int64    // untagged array address of the chunk
	chunk   int64    // bytes
	enq     sim.Time // enqueue instant, for GiveUp aging
}

// repairState is the under-replication index plus the daemon's bookkeeping.
type repairState struct {
	cfg     RepairConfig
	queue   []repairEntry
	keys    map[repairKey]struct{}
	running bool
	seq     int64
	stats   RepairStats
}

func newRepairState(cfg RepairConfig) *repairState {
	return &repairState{cfg: cfg, keys: make(map[repairKey]struct{})}
}

// RepairEnabled reports whether the repair control plane is active.
func (fs *FileSystem) RepairEnabled() bool { return fs.rep != nil }

// RepairStats returns the accumulated repair counters (zero when disabled).
func (fs *FileSystem) RepairStats() RepairStats {
	if fs.rep == nil {
		return RepairStats{}
	}
	return fs.rep.stats
}

// RepairBacklog returns the current redirect-ledger depth.
func (fs *FileSystem) RepairBacklog() int {
	if fs.rep == nil {
		return 0
	}
	return len(fs.rep.queue)
}

// NoteOutageStart records an I/O-node outage opening — the fault injector's
// feed into the under-replication index. No-op with repair disabled.
func (fs *FileSystem) NoteOutageStart(node int, at sim.Time) {
	if fs.rep == nil || node < 0 || node >= len(fs.ion) {
		return
	}
	if fs.part != nil {
		fs.part.down[node]++
	}
	fs.rep.stats.Outages++
	if fs.rep.stats.FirstVulnerableAt == 0 {
		fs.rep.stats.FirstVulnerableAt = at
	}
}

// NoteOutageEnd records an outage closing and nudges the daemon: entries
// destined for the restored node become repairable.
func (fs *FileSystem) NoteOutageEnd(node int, at sim.Time) {
	if fs.rep == nil || node < 0 || node >= len(fs.ion) {
		return
	}
	if fs.part != nil {
		// End fires when the node is actually back in service (the last
		// overlapping outage closed), so the mirror resets outright.
		fs.part.down[node] = 0
	}
	fs.rep.stats.LastOutageEndAt = at
	fs.ensureRepair()
}

// noteSloppyWrite records a write that completed on replica copy r while the
// primary was down: every other copy of the chunk is now stale and enters
// the ledger with r as its source.
func (fs *FileSystem) noteSloppyWrite(f *File, primary, r int, addr, chunk int64) {
	if fs.rep == nil {
		return
	}
	fs.rep.stats.SloppyWrites++
	for c := 0; c < fs.rf; c++ {
		if c != r {
			fs.enqueueRepair(f, primary, c, r, addr, chunk)
		}
	}
}

// noteMirrorMiss records a replica write that could not reach its target;
// the primary copy (just written) is the repair source.
func (fs *FileSystem) noteMirrorMiss(f *File, primary, r int, addr, chunk int64) {
	if fs.rep == nil {
		return
	}
	fs.rep.stats.MirrorMisses++
	fs.enqueueRepair(f, primary, r, 0, addr, chunk)
}

// enqueueRepair adds one missing copy to the index, deduplicating repeated
// writes to the same chunk, and makes sure a daemon is draining.
func (fs *FileSystem) enqueueRepair(f *File, primary, copy, src int, addr, chunk int64) {
	rp := fs.rep
	target := fs.placer().target(primary, copy)
	if fs.arrayDead(target) {
		return // nothing will ever accept this copy again
	}
	key := repairKey{target: target, addr: replicaAddr(addr, copy)}
	if _, dup := rp.keys[key]; dup {
		return
	}
	rp.keys[key] = struct{}{}
	rp.queue = append(rp.queue, repairEntry{
		f: f, primary: primary, copy: copy, src: src,
		addr: addr, chunk: chunk, enq: fs.eng.Now(),
	})
	rp.stats.LedgerPuts++
	if d := int64(len(rp.queue)); d > rp.stats.LedgerPeak {
		rp.stats.LedgerPeak = d
	}
	fs.ensureRepair()
}

// ensureRepair spawns the repair daemon when there is work and none running.
// The daemon exits once the ledger is empty, so a run with no misses never
// pays for it and the engine always drains.
func (fs *FileSystem) ensureRepair() {
	rp := fs.rep
	if rp == nil || rp.running || len(rp.queue) == 0 {
		return
	}
	rp.running = true
	rp.seq++
	rp.stats.Sweeps++
	fs.eng.Spawn(fmt.Sprintf("pfs-repair%d", rp.seq), fs.repairSweep)
}

// repairStallPoll is how long the daemon sleeps when every pending entry is
// blocked on a node that is still down. Outages are finite (their driver
// processes restore the node), so the poll always ends.
const repairStallPoll = 100 * sim.Millisecond

// repairSweep drains the ledger: each entry is re-replicated from its source
// copy through the normal node path, throttled to the configured bandwidth.
// Entries whose target or source is still down cycle to the back of the
// queue; when a full pass makes no progress the daemon sleeps and retries.
func (fs *FileSystem) repairSweep(p *sim.Process) {
	rp := fs.rep
	stalled := 0
	for len(rp.queue) > 0 {
		e := rp.queue[0]
		rp.queue = rp.queue[1:]
		key := repairKey{target: fs.placer().target(e.primary, e.copy), addr: replicaAddr(e.addr, e.copy)}
		if rp.cfg.GiveUp > 0 && p.Now()-e.enq > rp.cfg.GiveUp {
			fs.resolveRepair(key, false)
			continue
		}
		switch fs.repairChunk(p, e) {
		case repairDone:
			stalled = 0
			fs.resolveRepair(key, true)
			rp.stats.BytesRepaired += e.chunk
			if bw := rp.cfg.BandwidthBytesPerS; bw > 0 {
				d := sim.FromSeconds(float64(e.chunk) / bw)
				rp.stats.ThrottleTime += d
				p.Sleep(d)
			}
		case repairBlocked:
			rp.queue = append(rp.queue, e)
			stalled++
			if stalled > len(rp.queue) {
				p.Sleep(repairStallPoll)
				stalled = 0
			}
		case repairHopeless:
			fs.resolveRepair(key, false)
		}
	}
	rp.running = false
	rp.stats.RedundancyRestoredAt = p.Now()
}

// resolveRepair closes one ledger entry.
func (fs *FileSystem) resolveRepair(key repairKey, repaired bool) {
	rp := fs.rep
	delete(rp.keys, key)
	rp.stats.LedgerDrains++
	if repaired {
		rp.stats.ChunksRepaired++
	} else {
		rp.stats.Abandoned++
	}
}

type repairOutcome int

const (
	repairDone repairOutcome = iota
	repairBlocked
	repairHopeless
)

// repairChunk restores one missing copy: read the chunk from its source copy
// and write it to the target, both through tryNode so the mesh hop, node
// queueing, cache, integrity verification and disk scheduling all apply.
func (fs *FileSystem) repairChunk(p *sim.Process, e repairEntry) repairOutcome {
	pl := fs.placer()
	srcIon := pl.target(e.primary, e.src)
	dstIon := pl.target(e.primary, e.copy)
	if fs.arrayDead(dstIon) {
		return repairHopeless
	}
	if fs.nodeDown(srcIon) || fs.nodeDown(dstIon) {
		return repairBlocked
	}
	fid := int64(e.f.id)
	if err := fs.tryNode(p, fs.ionHome[dstIon], srcIon,
		replicaStream(fid, e.src), replicaAddr(e.addr, e.src), e.chunk, true); err != nil {
		if errors.Is(err, integrity.ErrCorrupt) {
			// The only copy we can read from is corrupt; rewriting it onto
			// the target would launder the corruption into a valid
			// checksum. Leave the entry to the integrity machinery.
			return repairHopeless
		}
		return repairBlocked
	}
	if err := fs.tryNode(p, fs.ionHome[srcIon], dstIon,
		replicaStream(fid, e.copy), replicaAddr(e.addr, e.copy), e.chunk, false); err != nil {
		return repairBlocked
	}
	return repairDone
}
