package pfs

import (
	"errors"
	"testing"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

const failoverFile = int64(256 << 10) // 4 stripes: one chunk per I/O node

// With failover disabled (the paper-faithful default), a transfer whose I/O
// node is down fails immediately with ErrIONodeDown.
func TestFailoverDisabledFailsFast(t *testing.T) {
	r := newRig(t, nil)
	if _, err := r.fs.Preload("f", failoverFile); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		_, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, failoverFile)
		if !errors.Is(err, ErrIONodeDown) {
			t.Errorf("read with node down: %v, want ErrIONodeDown", err)
		}
	})
	if fo := r.fs.FailoverStats(); fo.Failed == 0 || fo.Retries != 0 {
		t.Errorf("stats %+v: want Failed > 0 and no retries", fo)
	}
}

// With failover + replication enabled, a read whose primary node is down
// reroutes to the replica stripe after the detection timeout and one backoff,
// and the request succeeds.
func TestFailoverReroutesToReplica(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Failover.Replicate = true
	})
	if _, err := r.fs.Preload("f", failoverFile); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		n, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, failoverFile)
		if err != nil {
			t.Fatalf("read with failover: %v", err)
		}
		if n != failoverFile {
			t.Fatalf("read %d bytes, want %d", n, failoverFile)
		}
	})
	fo := r.fs.FailoverStats()
	if fo.Timeouts == 0 || fo.Reroutes == 0 {
		t.Errorf("stats %+v: want timeouts and reroutes", fo)
	}
	if fo.BackoffTime < r.fs.cfg.Failover.DetectTimeout {
		t.Errorf("BackoffTime %v below detection timeout", fo.BackoffTime)
	}
	if down := r.fs.IONodes()[1].FaultStats(); down.Failures != 1 || down.Rejected == 0 {
		t.Errorf("ionode fault stats %+v", down)
	}
}

// Without a replica the policy retries the primary; if the outage ends inside
// the backoff window the transfer completes on the original node.
func TestFailoverRetriesPrimaryUntilRestored(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
	})
	if _, err := r.fs.Preload("f", failoverFile); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
		p.Sleep(200 * sim.Millisecond)
		r.fs.IONodes()[1].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, failoverFile); err != nil {
			t.Fatalf("read spanning outage: %v", err)
		}
	})
	fo := r.fs.FailoverStats()
	if fo.Retries == 0 {
		t.Error("no retries recorded")
	}
	if fo.Reroutes != 0 {
		t.Errorf("Reroutes = %d without replication", fo.Reroutes)
	}
	if fo.Failed != 0 {
		t.Errorf("Failed = %d, want 0", fo.Failed)
	}
	if ds := r.fs.IONodes()[1].FaultStats(); ds.DownTime != 200*sim.Millisecond {
		t.Errorf("DownTime = %v, want 200ms", ds.DownTime)
	}
}

// Replicated writes mirror each chunk to the neighbouring node.
func TestReplicatedWritesMirror(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Failover.Replicate = true
	})
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err == nil {
			t.Error("Access write on missing file should fail")
		}
		if _, err := r.fs.Preload("f", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
	if fo := r.fs.FailoverStats(); fo.MirrorWrites != 4 {
		t.Errorf("MirrorWrites = %d, want 4 (one per chunk)", fo.MirrorWrites)
	}
}

// With no faults injected, enabling failover (without replication) must leave
// the simulated timeline bit-identical to the failover-disabled baseline.
func TestHealthyPathBitIdentical(t *testing.T) {
	elapsed := func(mut func(*Config)) sim.Time {
		r := newRig(t, mut)
		if _, err := r.fs.Preload("f", failoverFile); err != nil {
			t.Fatal(err)
		}
		r.run(t, func(p *sim.Process) {
			if _, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, failoverFile); err != nil {
				t.Fatal(err)
			}
			if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, failoverFile, 128<<10); err != nil {
				t.Fatal(err)
			}
		})
		return r.eng.Now()
	}
	base := elapsed(nil)
	withFO := elapsed(func(c *Config) { c.Failover = DefaultFailoverConfig() })
	if base != withFO {
		t.Errorf("healthy timeline differs: disabled %v, failover %v", base, withFO)
	}
}
