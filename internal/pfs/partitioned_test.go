package pfs

import (
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
)

// partitionedHarness builds the minimal fabric shape NewPartitioned needs: a
// frontend shard plus one server shard per requested I/O shard.
func partitionedHarness(ioShards int) (*sim.Shard, []*sim.Shard) {
	fab := sim.NewFabric(1)
	fe := fab.AddShard("fe", 1)
	srv := make([]*sim.Shard, ioShards)
	for g := range srv {
		srv[g] = fab.AddShard("io", 1)
	}
	return fe, srv
}

// TestNewPartitionedRejectsZeroLookahead pins the setup-time guard: a mesh
// whose software and hop latencies are both zero has no positive lookahead,
// so every fabric edge would carry a zero bound and the conservative
// horizon loop could never admit cross-shard work. The configuration must be
// rejected with an actionable error, not deadlock at run time.
func TestNewPartitionedRejectsZeroLookahead(t *testing.T) {
	cfg := DefaultConfig()
	mcfg := mesh.DefaultConfig(cfg.ComputeNodes + cfg.IONodes)
	mcfg.SWLatency, mcfg.HopLatency = 0, 0
	fe, srv := partitionedHarness(2)
	assign := make([]int, cfg.IONodes)
	for i := range assign {
		assign[i] = i % len(srv)
	}
	_, err := NewPartitioned(fe, srv, assign, mesh.New(mcfg), cfg)
	if err == nil {
		t.Fatal("NewPartitioned accepted a zero-lookahead mesh")
	}
	if !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("zero-lookahead rejection should name the lookahead, got: %v", err)
	}
}

// TestNewPartitionedValidatesShape covers the remaining setup errors: no
// server shards, an assignment that does not cover the I/O nodes, and an
// assignment referencing a shard that does not exist.
func TestNewPartitionedValidatesShape(t *testing.T) {
	cfg := DefaultConfig()
	msh := mesh.New(mesh.DefaultConfig(cfg.ComputeNodes + cfg.IONodes))
	full := make([]int, cfg.IONodes)

	fe, _ := partitionedHarness(0)
	if _, err := NewPartitioned(fe, nil, full, msh, cfg); err == nil {
		t.Fatal("NewPartitioned accepted an empty server-shard set")
	}

	fe, srv := partitionedHarness(2)
	if _, err := NewPartitioned(fe, srv, full[:1], msh, cfg); err == nil {
		t.Fatal("NewPartitioned accepted a short assignment")
	}

	fe, srv = partitionedHarness(2)
	bad := make([]int, cfg.IONodes)
	bad[0] = len(srv)
	if _, err := NewPartitioned(fe, srv, bad, msh, cfg); err == nil {
		t.Fatal("NewPartitioned accepted an out-of-range shard assignment")
	}
}
