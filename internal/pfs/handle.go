package pfs

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Handle is one node's open descriptor on a file. Independent-pointer modes
// (M_UNIX, M_RECORD, M_ASYNC) keep their position here; shared-pointer modes
// keep it on the File.
type Handle struct {
	fs   *FileSystem
	file *File
	node int
	mode iotrace.AccessMode

	offset      int64 // independent file pointer
	recordRound int64 // M_RECORD: how many records this node has accessed
	syncRound   int   // M_SYNC: this node's round counter
	globalRound int64 // M_GLOBAL: this node's round counter
	closed      bool

	// client write buffer (CostModel.WriteBufferBytes > 0, M_UNIX only)
	bufStart int64
	bufLen   int64
}

// buffered reports whether this handle coalesces small sequential writes.
func (h *Handle) buffered() bool {
	return h.fs.cfg.Cost.WriteBufferBytes > 0 && h.mode == iotrace.ModeUnix
}

// drainWriteBuffer pushes any buffered bytes to the I/O nodes, charging the
// caller the physical transfer under the file's atomicity token.
func (h *Handle) drainWriteBuffer(p *sim.Process) error {
	if h.bufLen == 0 {
		return nil
	}
	f := h.file
	start, n := h.bufStart, h.bufLen
	h.bufStart, h.bufLen = 0, 0
	f.token.Acquire(p)
	err := h.fs.transfer(p, h.node, f, start, n, false)
	f.token.Release(p)
	return err
}

// bufferedWrite appends a small sequential write to the client buffer,
// performing a physical transfer for each full buffer. It returns false if
// the write cannot be buffered (non-sequential or too large), in which case
// the caller drains and falls back to the direct path. A non-nil error means
// a full buffer's physical transfer failed.
func (h *Handle) bufferedWrite(p *sim.Process, n int64) (bool, error) {
	limit := h.fs.cfg.Cost.WriteBufferBytes
	if n >= limit {
		return false, nil
	}
	if h.bufLen > 0 && h.offset != h.bufStart+h.bufLen {
		return false, nil
	}
	if h.bufLen == 0 {
		h.bufStart = h.offset
	}
	h.bufLen += n
	h.offset += n
	h.file.extend(h.offset)
	for h.bufLen >= limit {
		f := h.file
		f.token.Acquire(p)
		err := h.fs.transfer(p, h.node, f, h.bufStart, limit, false)
		f.token.Release(p)
		if err != nil {
			return true, err
		}
		h.bufStart += limit
		h.bufLen -= limit
	}
	return true, nil
}

// Node returns the compute node that owns the handle.
func (h *Handle) Node() int { return h.node }

// Mode returns the access mode the handle was opened with.
func (h *Handle) Mode() iotrace.AccessMode { return h.mode }

// File returns the underlying file.
func (h *Handle) File() *File { return h.file }

// Offset returns the handle's independent file pointer (meaningful for
// M_UNIX, M_RECORD and M_ASYNC handles).
func (h *Handle) Offset() int64 { return h.offset }

func (h *Handle) check(n int64) error {
	if h.closed {
		return ErrClosed
	}
	if n < 0 {
		return ErrBadRequest
	}
	return nil
}

// Read transfers n bytes from the file at the position implied by the
// handle's mode. It returns the bytes actually read, which is short (or zero
// with ErrEOF) at end of file for the independent- and shared-pointer modes.
func (h *Handle) Read(p *sim.Process, n int64) (int64, error) {
	return h.access(p, iotrace.OpRead, n)
}

// Write transfers n bytes to the file at the position implied by the
// handle's mode, extending the file as needed.
func (h *Handle) Write(p *sim.Process, n int64) (int64, error) {
	return h.access(p, iotrace.OpWrite, n)
}

// access implements the synchronous data path for every mode.
func (h *Handle) access(p *sim.Process, op iotrace.Op, n int64) (int64, error) {
	if err := h.check(n); err != nil {
		return 0, err
	}
	fs, f := h.fs, h.file
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)

	var done, at int64
	var err error
	switch h.mode {
	case iotrace.ModeUnix, iotrace.ModeNone:
		// Independent pointer; POSIX atomicity via the file token.
		at = h.offset
		if h.buffered() && op == iotrace.OpWrite {
			if ok, berr := h.bufferedWrite(p, n); ok {
				done, err = n, berr
				break
			}
		}
		if err := h.drainWriteBuffer(p); err != nil {
			return 0, err
		}
		at = h.offset
		f.token.Acquire(p)
		done, err = h.doAt(p, op, at, n)
		h.offset += done
		f.token.Release(p)

	case iotrace.ModeAsync:
		// Independent pointer, no atomicity: transfers overlap freely.
		at = h.offset
		done, err = h.doAt(p, op, at, n)
		h.offset += done

	case iotrace.ModeLog:
		// Shared pointer, FCFS, variable length: the token orders and
		// serializes accesses and carries the pointer.
		p.Sleep(fs.cfg.Cost.SharedTokenService)
		f.token.Acquire(p)
		at = f.sharedOff
		done, err = h.doAt(p, op, at, n)
		f.sharedOff += done
		f.token.Release(p)

	case iotrace.ModeSync:
		// Shared pointer, node-number order: node k of round r holds turn
		// r*N + k. N is the mesh's compute-node population. With collective
		// I/O the round's requests meet at a barrier instead and the flusher
		// assigns offsets in node order — the same discipline, one
		// aggregated transfer.
		p.Sleep(fs.cfg.Cost.SharedTokenService)
		if fs.coll != nil && (op == iotrace.OpRead || op == iotrace.OpWrite) {
			idx := int64(h.syncRound)
			h.syncRound++
			done, at, err = fs.coll.syncAccess(p, h, op, idx, n)
			break
		}
		turn := h.syncRound*h.computeNodes() + h.node
		h.syncRound++
		f.seq.WaitTurn(p, turn)
		at = f.sharedOff
		done, err = h.doAt(p, op, at, n)
		f.sharedOff += done
		f.seq.Done(p)

	case iotrace.ModeRecord:
		// Independent pointers over fixed-length records, interleaved
		// node-major: node k's j-th record is record j*N + k.
		if f.recordLen == 0 {
			if err := f.setRecordLen(n); err != nil {
				return 0, err
			}
		}
		if n != f.recordLen {
			return 0, fmt.Errorf("%s %q: got %d, record length %d: %w",
				op, f.name, n, f.recordLen, ErrRecordLength)
		}
		rec := h.recordRound*int64(h.computeNodes()) + int64(h.node)
		h.recordRound++
		at = rec * f.recordLen
		if fs.coll != nil && (op == iotrace.OpRead || op == iotrace.OpWrite) {
			done, err = fs.coll.recordAccess(p, h, op, h.recordRound-1, at, n)
			h.offset = at + done
			break
		}
		done, err = h.doAt(p, op, at, n)
		h.offset = at + done

	case iotrace.ModeGlobal:
		// All nodes access the same data: one physical transfer per round,
		// the rest receive the result over the interconnect.
		done, at, err = h.globalAccess(p, op, n)

	default:
		return 0, fmt.Errorf("pfs: unsupported mode %v", h.mode)
	}

	fs.record(h.node, op, f, at, done, start, h.mode)
	return done, err
}

// computeNodes returns the compute-partition size N used by the interleaved
// modes: the configured partition, or (when unconfigured) the mesh positions
// not occupied by I/O nodes.
func (h *Handle) computeNodes() int {
	if n := h.fs.cfg.ComputeNodes; n > 0 {
		return n
	}
	n := h.fs.msh.Nodes() - len(h.fs.ion)
	if n < 1 {
		n = h.fs.msh.Nodes()
	}
	return n
}

// doAt performs a transfer at an explicit offset, clamping reads at EOF and
// extending the file on writes. The caller holds whatever synchronization
// the mode requires.
func (h *Handle) doAt(p *sim.Process, op iotrace.Op, off, n int64) (int64, error) {
	f := h.file
	if op == iotrace.OpRead || op == iotrace.OpAsyncRead {
		if off >= f.size {
			return 0, ErrEOF
		}
		if off+n > f.size {
			n = f.size - off
		}
	}
	if n == 0 {
		return 0, nil
	}
	if err := h.fs.transfer(p, h.node, f, off, n, op != iotrace.OpWrite); err != nil {
		return 0, err
	}
	if op == iotrace.OpWrite {
		f.extend(off + n)
	}
	cost := h.fs.cfg.Cost
	if op == iotrace.OpRead && cost.ReadCopyBytesPerS > 0 && n >= cost.ReadCopyMin {
		p.Sleep(sim.Time(float64(n) / cost.ReadCopyBytesPerS * float64(sim.Second)))
	}
	return n, nil
}

func (h *Handle) globalAccess(p *sim.Process, op iotrace.Op, n int64) (int64, int64, error) {
	fs, f := h.fs, h.file
	p.Sleep(fs.cfg.Cost.SharedTokenService)
	round := h.globalRound
	h.globalRound++
	g := f.global[round]
	if g == nil {
		// Leader: perform the physical transfer and publish the round.
		g = &globalRound{comp: sim.NewCompletion(fmt.Sprintf("%s.g%d", f.name, round))}
		f.global[round] = g
		at := f.sharedOff
		done, err := h.doAt(p, op, at, n)
		g.bytes, g.off = done, at
		f.sharedOff += done
		g.comp.Complete(p)
		return done, at, err
	}
	g.comp.Await(p)
	// Non-leaders receive the data over the mesh from the leader's node.
	fs.msh.Transfer(p, h.node, h.node, g.bytes)
	return g.bytes, g.off, nil
}

// Seek repositions the handle's pointer. On M_UNIX shared files this is a
// synchronous, serializing operation (the behaviour behind ESCAT's dominant
// seek cost); on private files it contends with nobody and is cheap. The
// returned offset is the new position; the traced "bytes" of a seek is the
// distance moved, matching the seek-volume column of Table 5.
func (h *Handle) Seek(p *sim.Process, offset int64, whence int) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	fs, f := h.fs, h.file
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)

	base := int64(0)
	switch whence {
	case SeekStart:
	case SeekCurrent:
		base = h.offset
	case SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("whence %d: %w", whence, ErrBadSeek)
	}
	target := base + offset
	if target < 0 {
		return 0, fmt.Errorf("offset %d: %w", target, ErrBadSeek)
	}
	if err := h.drainWriteBuffer(p); err != nil {
		return 0, err
	}

	f.token.Acquire(p)
	p.Sleep(fs.cfg.Cost.SeekService)
	f.token.Release(p)

	dist := target - h.offset
	if dist < 0 {
		dist = -dist
	}
	h.offset = target
	fs.record(h.node, iotrace.OpSeek, f, target, dist, start, h.mode)
	return target, nil
}

// Close releases the handle. Closes serialize at the metadata server.
func (h *Handle) Close(p *sim.Process) error {
	if h.closed {
		return ErrClosed
	}
	fs, f := h.fs, h.file
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	if err := h.drainWriteBuffer(p); err != nil {
		return err
	}
	fs.meta.Acquire(p)
	p.Sleep(fs.cfg.Cost.CloseService)
	fs.meta.Release(p)
	h.closed = true
	f.openHandles--
	if f.openHandles == 0 {
		f.sharedMode = iotrace.ModeNone
	}
	fs.record(h.node, iotrace.OpClose, f, 0, 0, start, h.mode)
	return nil
}

// Lsize queries the file's size (the Fortran LSIZE call of Table 5). The
// query resolves at the I/O node holding the file's first stripe, not at the
// metadata server, so it does not queue behind open/create storms.
func (h *Handle) Lsize(p *sim.Process) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	fs, f := h.fs, h.file
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	ion := f.stripeIONode(0, len(fs.ion))
	if err := fs.syncIO(p, h.node, ion, fs.cfg.Cost.LsizeService); err != nil {
		return 0, fmt.Errorf("lsize %q: %w", f.name, err)
	}
	fs.record(h.node, iotrace.OpLsize, f, 0, 0, start, h.mode)
	return f.size, nil
}

// Flush forces buffered data to the I/O node holding the handle's current
// stripe (the Fortran FORFLUSH call of Table 5). With I/O-node caching it
// additionally drains the file's write-behind residue on every node, so
// data is on disk when Flush returns.
func (h *Handle) Flush(p *sim.Process) error {
	if h.closed {
		return ErrClosed
	}
	fs, f := h.fs, h.file
	start := p.Now()
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	if err := h.drainWriteBuffer(p); err != nil {
		return err
	}
	fs.drainCache(p, h.node, f)
	stripe := h.offset / fs.cfg.StripeUnit
	ion := f.stripeIONode(stripe, len(fs.ion))
	if err := fs.syncIO(p, h.node, ion, fs.cfg.Cost.FlushService); err != nil {
		return fmt.Errorf("flush %q: %w", f.name, err)
	}
	fs.record(h.node, iotrace.OpFlush, f, h.offset, 0, start, h.mode)
	return nil
}
