// Failure-domain-aware replica placement. The legacy rule — every stripe
// chunk keeps its single mirror on the next I/O node, (i+1) mod N — is the
// degenerate case of a zone-interleaved replica ring: nodes are ordered
// round-robin across their outage zones, and copy r of a chunk whose primary
// sits at ring position k lives at ring position (k+r) mod N. Because each
// rotation of the ring is a bijection, every replica address maps back to
// exactly one primary (the corruption ledger and the repair daemon both need
// that inverse), and because consecutive ring entries alternate zones,
// consecutive copies land in distinct outage domains whenever the fleet has
// them — a full zone loss leaves at least one live copy of every chunk at
// RF >= 2 with >= 2 balanced zones.
package pfs

import (
	"fmt"

	"repro/internal/sim"
)

// Read policies for replicated reads.
const (
	// ReadPrimaryFirst always reads the primary copy and touches replicas
	// only on failover — the legacy behaviour, and the default.
	ReadPrimaryFirst = "primary-first"

	// ReadAnyReplica spreads healthy reads across all copies of a chunk
	// (copy index derived from the chunk address), trading the primary's
	// sequential stream locality for balanced load.
	ReadAnyReplica = "any-replica"

	// ReadQuorum answers detected corruption by reading enough replicas to
	// form a majority of the replication factor before trusting any copy,
	// instead of accepting the first replica that verifies.
	ReadQuorum = "quorum"
)

// ReplicationConfig generalizes the failover layer's single hardcoded mirror
// to an N-way replication policy. The zero value defers to the legacy
// FailoverConfig.Replicate flag: Replicate=true behaves exactly as before
// (factor 2 on the zone-interleaved ring, which over a homogeneous fleet is
// the old (i+1) mod N rule, bit for bit).
type ReplicationConfig struct {
	// Factor is the number of copies of every stripe chunk, primary
	// included. 0 derives the factor from Failover.Replicate (2 when set,
	// else 1); 1 disables replication explicitly. Clamped to the I/O-node
	// count. Replication is inert without Failover.Enabled.
	Factor int

	// Seed perturbs the within-zone node order of the replica ring. 0 keeps
	// the nodes in index order, which over a single-zone fleet reproduces
	// the legacy neighbour placement exactly.
	Seed uint64

	// ReadPolicy selects how replicated reads pick a copy: primary-first
	// (default), any-replica, or quorum.
	ReadPolicy string

	// Repair configures the background repair control plane that
	// re-replicates chunks whose copies were missed during an outage.
	Repair RepairConfig
}

// MaxReplicationFactor bounds the configurable copy count.
const MaxReplicationFactor = 4

// validate checks the replication section of a Config.
func (c ReplicationConfig) validate() error {
	if c.Factor < 0 || c.Factor > MaxReplicationFactor {
		return fmt.Errorf("pfs: replication factor %d: want 0 (legacy) or 1..%d", c.Factor, MaxReplicationFactor)
	}
	switch c.ReadPolicy {
	case "", ReadPrimaryFirst, ReadAnyReplica, ReadQuorum:
	default:
		return fmt.Errorf("pfs: read policy %q: want %s, %s or %s",
			c.ReadPolicy, ReadPrimaryFirst, ReadAnyReplica, ReadQuorum)
	}
	return c.Repair.validate()
}

// normalized resolves the effective policy against the failover config and
// fleet size: the legacy Replicate flag maps to factor 2, replication without
// failover (no reroute machinery to reach the copies) collapses to factor 1,
// and the factor is clamped to the node population.
func (c ReplicationConfig) normalized(fo FailoverConfig, nion int) ReplicationConfig {
	if c.Factor == 0 {
		c.Factor = 1
		if fo.Replicate {
			c.Factor = 2
		}
	}
	if !fo.Enabled {
		c.Factor = 1
	}
	if c.Factor > nion {
		c.Factor = nion
	}
	if c.ReadPolicy == "" {
		c.ReadPolicy = ReadPrimaryFirst
	}
	return c
}

// Replica copy tags. A chunk's copy r > 0 occupies a separate region of the
// target node's array address space and a separate sequential-detection
// stream, so replica traffic neither masquerades as a continuation of primary
// streams nor collides between copies at RF > 2. The copy index is encoded in
// high bits clear of both the per-file local space (bits 0..32) and the file
// id (bits 34 up): streams carry it at bit 40 (copy 1 matches the legacy
// single replica-stream bit), addresses at bit 56.
const (
	replicaStreamShift = 40
	replicaAddrShift   = 56

	// localAddrMask extracts a file-local byte address from an array
	// address; the per-file region must stay below bit 33.
	localAddrMask = int64(1)<<33 - 1
)

// replicaStream tags a file's node stream key with a copy index (0 = the
// primary stream, untagged).
func replicaStream(fid int64, r int) int64 { return fid | int64(r)<<replicaStreamShift }

// replicaAddr tags an array address with a copy index.
func replicaAddr(addr int64, r int) int64 { return addr | int64(r)<<replicaAddrShift }

// splitReplicaAddr undoes replicaAddr: the untagged address and copy index.
func splitReplicaAddr(addr int64) (base int64, r int) {
	return addr & (int64(1)<<replicaAddrShift - 1), int(addr >> replicaAddrShift)
}

// placer is the materialized placement function: the zone-interleaved
// replica ring and its inverse.
type placer struct {
	ring []int // ring position -> node
	pos  []int // node -> ring position
}

// newPlacer builds the ring for a fleet described by per-node zones. Nodes
// are grouped by zone (zones in ascending order, members in index order,
// optionally shuffled within their zone by seed) and interleaved round-robin
// across the zones, so ring neighbours sit in different outage domains
// wherever the zone populations allow.
func newPlacer(zones []int, seed uint64) *placer {
	members := map[int][]int{}
	var order []int
	for node, z := range zones {
		if len(members[z]) == 0 {
			order = append(order, z)
		}
		members[z] = append(members[z], node)
	}
	sortInts(order)
	if seed != 0 {
		for _, z := range order {
			shuffle(members[z], seed^uint64(z)*0x9e3779b97f4a7c15)
		}
	}
	ring := make([]int, 0, len(zones))
	for i := 0; len(ring) < len(zones); i++ {
		for _, z := range order {
			if m := members[z]; i < len(m) {
				ring = append(ring, m[i])
			}
		}
	}
	pos := make([]int, len(ring))
	for i, n := range ring {
		pos[n] = i
	}
	return &placer{ring: ring, pos: pos}
}

// target returns the node holding copy r of a chunk whose primary is the
// given node (r = 0 is the primary itself).
func (pl *placer) target(primary, r int) int {
	n := len(pl.ring)
	return pl.ring[(pl.pos[primary]+r)%n]
}

// primaryOf inverts target: the primary whose copy r lives on node.
func (pl *placer) primaryOf(node, r int) int {
	n := len(pl.ring)
	return pl.ring[((pl.pos[node]-r)%n+n)%n]
}

// group returns the nodes holding copies 0..rf-1 of a chunk with the given
// primary, in copy order.
func (pl *placer) group(primary, rf int) []int {
	out := make([]int, rf)
	for r := 0; r < rf; r++ {
		out[r] = pl.target(primary, r)
	}
	return out
}

// place returns the file system's placer, building the identity (single
// zone, unseeded) ring on demand for skeleton instances tests assemble by
// hand.
func (fs *FileSystem) placer() *placer {
	if fs.plc == nil {
		fs.plc = newPlacer(make([]int, len(fs.ion)), 0)
	}
	return fs.plc
}

// ReplicationFactor returns the effective copy count per chunk (1 = no
// replication).
func (fs *FileSystem) ReplicationFactor() int {
	if fs.rf < 1 {
		return 1
	}
	return fs.rf
}

// shuffle is a seeded Fisher-Yates over a node list.
func shuffle(nodes []int, seed uint64) {
	rng := sim.NewRNG(seed)
	for i := len(nodes) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
}

// sortInts is insertion sort (zone lists are tiny; avoids pulling sort into
// the hot-path file for one call).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
