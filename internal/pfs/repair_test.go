package pfs

import (
	"testing"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// repairRig builds a rig with replication factor rf and the repair daemon on.
func repairRig(t *testing.T, rf int, mut func(*Config)) *testRig {
	t.Helper()
	return newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Replication = ReplicationConfig{Factor: rf, Repair: DefaultRepairConfig()}
		if mut != nil {
			mut(c)
		}
	})
}

// A mirror write that cannot reach its down target enters the redirect
// ledger, and once the node returns the daemon re-replicates the chunk and
// drains the ledger to empty.
func TestRepairDrainsMirrorMiss(t *testing.T) {
	r := repairRig(t, 2, nil)
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[2].Fail(p)
		p.Sleep(800 * sim.Millisecond)
		r.fs.IONodes()[2].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		// File id 1 starts at node 1: chunk 0's primary is node 1 and its
		// mirror target node 2 is down.
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, 64<<10); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	})
	st := r.fs.RepairStats()
	if st.MirrorMisses != 1 {
		t.Errorf("MirrorMisses = %d, want 1", st.MirrorMisses)
	}
	if st.ChunksRepaired != 1 || st.BytesRepaired != 64<<10 {
		t.Errorf("repaired %d chunks / %d bytes, want 1 / %d", st.ChunksRepaired, st.BytesRepaired, 64<<10)
	}
	if st.LedgerPuts != st.LedgerDrains || r.fs.RepairBacklog() != 0 {
		t.Errorf("ledger not drained: puts=%d drains=%d backlog=%d",
			st.LedgerPuts, st.LedgerDrains, r.fs.RepairBacklog())
	}
	if st.Abandoned != 0 {
		t.Errorf("Abandoned = %d, want 0", st.Abandoned)
	}
	if st.RedundancyRestoredAt == 0 {
		t.Error("RedundancyRestoredAt never stamped")
	}
	// The repaired copy verifies: after the run, a read that is forced onto
	// the replica (primary down again) succeeds.
	r2 := r // the engine has drained; spawn a fresh probe run
	r2.eng.Spawn("probe", func(p *sim.Process) {
		r2.fs.IONodes()[1].Fail(p)
		if _, err := r2.fs.Access(p, 0, "f", iotrace.OpRead, 0, 64<<10); err != nil {
			t.Errorf("read from repaired replica: %v", err)
		}
		r2.fs.IONodes()[1].Restore(p)
	})
	if err := r2.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// A write whose primary is down lands sloppily on a replica; the ledger
// records the stale primary copy and the daemon restores it from the replica.
func TestRepairRestoresSloppyWrite(t *testing.T) {
	r := repairRig(t, 2, nil)
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
		p.Sleep(800 * sim.Millisecond)
		r.fs.IONodes()[1].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		// Chunk 0's primary node 1 is down: the write reroutes to copy 1 on
		// node 2 and the primary copy becomes stale.
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, 64<<10); err != nil {
			t.Fatalf("write during primary outage: %v", err)
		}
	})
	st := r.fs.RepairStats()
	if st.SloppyWrites != 1 {
		t.Errorf("SloppyWrites = %d, want 1", st.SloppyWrites)
	}
	if st.ChunksRepaired != 1 {
		t.Errorf("ChunksRepaired = %d, want 1 (the stale primary copy)", st.ChunksRepaired)
	}
	if r.fs.RepairBacklog() != 0 {
		t.Errorf("backlog %d after drain", r.fs.RepairBacklog())
	}
	// After repair the primary copy answers reads again.
	r.eng.Spawn("probe", func(p *sim.Process) {
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, 64<<10); err != nil {
			t.Errorf("read after primary repair: %v", err)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// At RF=3, a single node outage leaves two live copies; every chunk whose
// group touches the down node acquires exactly one ledger entry, and all of
// them are repaired.
func TestRepairAtRF3(t *testing.T) {
	r := repairRig(t, 3, nil)
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[2].Fail(p)
		p.Sleep(800 * sim.Millisecond)
		r.fs.IONodes()[2].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		// 4 chunks, primaries 1,2,3,0. Node 2 holds copy 0 of chunk 1,
		// copy 1 of chunk 0, copy 2 of chunk 3: one sloppy write + two
		// mirror misses.
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	})
	st := r.fs.RepairStats()
	if st.SloppyWrites != 1 || st.MirrorMisses != 2 {
		t.Errorf("sloppy=%d misses=%d, want 1 and 2", st.SloppyWrites, st.MirrorMisses)
	}
	// The sloppy write stales rf-1 = 2 copies; each mirror miss is 1 entry.
	if st.LedgerPuts != 4 || st.ChunksRepaired != 4 {
		t.Errorf("puts=%d repaired=%d, want 4 and 4", st.LedgerPuts, st.ChunksRepaired)
	}
	if r.fs.RepairBacklog() != 0 || st.Abandoned != 0 {
		t.Errorf("backlog=%d abandoned=%d after drain", r.fs.RepairBacklog(), st.Abandoned)
	}
}

// The bandwidth throttle stretches the drain: the daemon sleeps
// chunk/bandwidth per repaired chunk and accounts the sleep.
func TestRepairBandwidthThrottle(t *testing.T) {
	elapsed := func(bw float64) (sim.Time, RepairStats) {
		r := repairRig(t, 2, func(c *Config) {
			c.Replication.Repair.BandwidthBytesPerS = bw
		})
		if _, err := r.fs.Preload("f", 0); err != nil {
			t.Fatal(err)
		}
		r.eng.Spawn("chaos", func(p *sim.Process) {
			r.fs.IONodes()[1].Fail(p)
			p.Sleep(400 * sim.Millisecond)
			r.fs.IONodes()[1].Restore(p)
		})
		r.run(t, func(p *sim.Process) {
			p.Sleep(sim.Millisecond)
			if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err != nil {
				t.Fatal(err)
			}
		})
		return r.eng.Now(), r.fs.RepairStats()
	}
	fastEnd, fast := elapsed(0)       // unthrottled
	slowEnd, slow := elapsed(1 << 20) // 1 MB/s: >= 64 ms per 64 KB chunk
	if fast.ChunksRepaired == 0 || slow.ChunksRepaired != fast.ChunksRepaired {
		t.Fatalf("repaired fast=%d slow=%d", fast.ChunksRepaired, slow.ChunksRepaired)
	}
	if fast.ThrottleTime != 0 {
		t.Errorf("unthrottled ThrottleTime = %v", fast.ThrottleTime)
	}
	wantSleep := sim.FromSeconds(float64(slow.BytesRepaired) / float64(1<<20))
	if slow.ThrottleTime != wantSleep {
		t.Errorf("ThrottleTime = %v, want %v", slow.ThrottleTime, wantSleep)
	}
	if slowEnd <= fastEnd {
		t.Errorf("throttled run ended at %v, unthrottled at %v", slowEnd, fastEnd)
	}
}

// GiveUp bounds a hopeless backlog: entries still blocked past the age limit
// are abandoned (surfacing as permanently lost redundancy) and the daemon
// still exits so the run completes.
func TestRepairGiveUpAbandons(t *testing.T) {
	r := repairRig(t, 2, func(c *Config) {
		c.Replication.Repair.GiveUp = 200 * sim.Millisecond
	})
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
		p.Sleep(2 * sim.Second) // far past GiveUp
		r.fs.IONodes()[1].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, 64<<10); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	})
	st := r.fs.RepairStats()
	if st.Abandoned == 0 {
		t.Errorf("Abandoned = 0, want the aged-out entry given up")
	}
	if st.ChunksRepaired != 0 {
		t.Errorf("ChunksRepaired = %d, want 0", st.ChunksRepaired)
	}
	if r.fs.RepairBacklog() != 0 {
		t.Errorf("backlog %d, want empty after abandoning", r.fs.RepairBacklog())
	}
}

// Capped mirrors the incident-timeline convention: outage windows scheduled
// past the app's completion must not widen the reported vulnerability.
func TestRepairStatsCapped(t *testing.T) {
	base := RepairStats{
		FirstVulnerableAt:    sim.FromSeconds(2),
		LastOutageEndAt:      sim.FromSeconds(500),
		RedundancyRestoredAt: sim.FromSeconds(3),
	}
	capped := base.Capped(sim.FromSeconds(10))
	if got, want := capped.LastOutageEndAt, sim.FromSeconds(10); got != want {
		t.Errorf("LastOutageEndAt = %v, want clamped to %v", got, want)
	}
	if got, want := capped.WindowOfVulnerability(), sim.FromSeconds(8); got != want {
		t.Errorf("WindowOfVulnerability = %v, want %v", got, want)
	}
	// A repair tail after completion is legitimate and stays uncapped.
	base.RedundancyRestoredAt = sim.FromSeconds(12)
	if got, want := base.Capped(sim.FromSeconds(10)).WindowOfVulnerability(), sim.FromSeconds(10); got != want {
		t.Errorf("WindowOfVulnerability with repair tail = %v, want %v", got, want)
	}
	// Vulnerability that only began after the app finished reports as none.
	late := RepairStats{
		FirstVulnerableAt: sim.FromSeconds(20),
		LastOutageEndAt:   sim.FromSeconds(21),
	}
	if got := late.Capped(sim.FromSeconds(10)).WindowOfVulnerability(); got != 0 {
		t.Errorf("post-completion-only WindowOfVulnerability = %v, want 0", got)
	}
}

// With repair disabled (the default), outage writes behave exactly as before
// this subsystem existed: misses are not tracked and no daemon runs.
func TestRepairDisabledIsInert(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Failover.Replicate = true
	})
	if r.fs.RepairEnabled() {
		t.Fatal("repair enabled without being configured")
	}
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("chaos", func(p *sim.Process) {
		r.fs.IONodes()[1].Fail(p)
		p.Sleep(400 * sim.Millisecond)
		r.fs.IONodes()[1].Restore(p)
	})
	r.run(t, func(p *sim.Process) {
		p.Sleep(sim.Millisecond)
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, 64<<10); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	})
	if st := r.fs.RepairStats(); st != (RepairStats{}) {
		t.Errorf("stats %+v with repair disabled", st)
	}
}

// Replicated writes at RF=3 mirror each chunk twice, with each copy's
// traffic tagged by its own stream/address so RF>2 copies never collide.
func TestMirrorWritesAtRF3(t *testing.T) {
	r := repairRig(t, 3, nil)
	if _, err := r.fs.Preload("f", 0); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err != nil {
			t.Fatal(err)
		}
	})
	if fo := r.fs.FailoverStats(); fo.MirrorWrites != 8 {
		t.Errorf("MirrorWrites = %d, want 8 (two per chunk)", fo.MirrorWrites)
	}
	// Each node carries its primary chunk plus two replica copies.
	for i, ion := range r.fs.IONodes() {
		if _, bytes := ion.Stats(); bytes != 3*64<<10 {
			t.Errorf("node %d carries %d bytes, want %d", i, bytes, 3*64<<10)
		}
	}
}

// The any-replica read policy spreads healthy replicated reads across copies
// while leaving the file image intact.
func TestAnyReplicaReadsSpread(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Replication = ReplicationConfig{Factor: 2, ReadPolicy: ReadAnyReplica}
	})
	if _, err := r.fs.Preload("f", failoverFile); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		// Write first so both copies exist, then read everything back.
		if _, err := r.fs.Access(p, 0, "f", iotrace.OpWrite, 0, failoverFile); err != nil {
			t.Fatal(err)
		}
		if n, err := r.fs.Access(p, 0, "f", iotrace.OpRead, 0, failoverFile); err != nil || n != failoverFile {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
	})
	if fo := r.fs.FailoverStats(); fo.Failed != 0 {
		t.Errorf("Failed = %d", fo.Failed)
	}
}
