package pfs

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/collective"
	"repro/internal/disk"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/sim"
)

// Config describes a PFS instance: the I/O-node population, striping, the
// disk arrays, and the software cost model.
type Config struct {
	IONodes    int              // number of I/O nodes (paper: 16)
	StripeUnit int64            // striping unit in bytes (paper: 64 KB)
	Disk       disk.ArrayConfig // RAID-3 array behind each I/O node
	Cost       CostModel        // software path costs

	// Nodes, when non-empty, makes the I/O-node population heterogeneous:
	// entry i overrides the fleet-wide defaults for node i. Its length must
	// equal IONodes. Empty keeps the homogeneous shape (every node gets
	// Disk and Cache verbatim), byte-identical to earlier revisions.
	Nodes []NodeConfig

	// ComputeNodes is the compute-partition size N used by the interleaved
	// modes (M_SYNC node ordering, M_RECORD's record k = round*N + node).
	// Zero derives N from the mesh (total positions minus I/O nodes),
	// which is only correct when the mesh holds exactly the partition.
	ComputeNodes int

	// Failover governs what a request does when its I/O node is down. The
	// zero value disables failover entirely: a request to a dead node
	// errors out immediately (the paper-faithful behaviour — PFS had no
	// redundancy across I/O nodes).
	Failover FailoverConfig

	// Replication generalizes Failover.Replicate to a configurable N-way
	// policy: replication factor 1..4, failure-domain-aware placement over
	// the zones in Nodes, read policies, and the background repair control
	// plane. The zero value defers to Failover.Replicate (factor 2 when set)
	// and places replicas exactly where earlier revisions did.
	Replication ReplicationConfig

	// Cache attaches a block cache to every I/O node (the §8 what-if: the
	// real PFS had none, every request went straight to the arrays). The
	// zero value leaves the data path untouched; the cache block size
	// defaults to the stripe unit so one block fetch is one stripe chunk.
	Cache cache.Config

	// Integrity attaches a checksum store to every I/O node: writes are
	// checksummed, reads verified, parity-repairable mismatches repaired in
	// place, and a background scrubber (when configured) sweeps for latent
	// errors. The zero value leaves the data path untouched; the checksum
	// block size defaults to the stripe unit.
	Integrity integrity.Config

	// Reliability layers per-request deadlines, corrupt-read retries with
	// seeded backoff + jitter, and hedged reads over the transfer path. The
	// zero value disables it.
	Reliability ReliabilityConfig

	// Collective enables two-phase aggregation for the round-structured
	// access modes (M_RECORD, M_SYNC): a round's per-node requests meet at a
	// barrier, are interval-merged into stripe runs, and issued as a handful
	// of large transfers by aggregator nodes, with the member↔aggregator
	// shuffle charged on the mesh. The zero value keeps the per-request
	// paths. (M_GLOBAL needs no aggregation: one leader transfer per round
	// already serves the whole group.)
	Collective collective.Config

	// Sched selects the disk-scheduling policy at every I/O node. The zero
	// value keeps the legacy strict-FIFO queue, byte-identical to earlier
	// revisions; "cscan" installs the elevator with its anticipatory
	// batching window. Each node's policy draws from its own substream of
	// Sched.Seed.
	Sched ionode.SchedConfig
}

// NodeConfig overrides the fleet-wide defaults for one I/O node — the unit of
// heterogeneity template-driven fleets are generated from. The zero value
// overrides nothing: the node behaves exactly as under the homogeneous
// configuration.
type NodeConfig struct {
	// Disk, when non-nil, replaces Config.Disk for this node (a slower or
	// faster array, a different drive population).
	Disk *disk.ArrayConfig

	// CacheBytes, when positive, overrides the cache capacity for this node.
	// It only applies when Config.Cache is enabled — per-node capacities
	// shape an existing cache tier, they do not switch it on.
	CacheBytes int64

	// BurstBytes, when positive, is the per-node burst-log capacity hint
	// recorded by fleet generation. The PFS itself ignores it (the burst
	// tier lives client-side), but it rides along so one NodeConfig slice
	// describes the whole template expansion.
	BurstBytes int64

	// Zone is the node's outage domain (rack, power feed). Zone-scoped
	// chaos targets every node sharing a zone; zero is the default domain.
	Zone int

	// Template names the fleet template this node was generated from, for
	// reports. Empty for hand-built configurations.
	Template string
}

// FailoverConfig describes the request failover policy used under injected
// I/O-node outages. With Enabled, a request that finds (or is ejected from)
// a dead node charges DetectTimeout, then retries up to MaxRetries times
// with exponential backoff. With Replicate, every stripe additionally keeps
// a replica on the next I/O node: writes are mirrored to it, and retries
// re-route to it instead of hammering the dead primary — so reads survive an
// outage at the cost of doubled write traffic.
type FailoverConfig struct {
	Enabled       bool
	DetectTimeout sim.Time // cost to conclude the primary is dead
	Backoff       sim.Time // first retry delay; doubles per retry
	MaxRetries    int
	Replicate     bool
}

// DefaultFailoverConfig returns a failover policy with a 50 ms detection
// timeout, 100 ms initial backoff, and 4 retries. Replication is off;
// callers wanting reroute-to-replica set Replicate.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Enabled:       true,
		DetectTimeout: 50 * sim.Millisecond,
		Backoff:       100 * sim.Millisecond,
		MaxRetries:    4,
	}
}

// DefaultConfig returns the CCSF Paragon configuration from §3.2: 16 I/O
// nodes, 64 KB stripes, RAID-3 arrays of five 1.2 GB disks.
func DefaultConfig() Config {
	return Config{
		IONodes:    16,
		StripeUnit: 64 * 1024,
		Disk:       disk.DefaultArrayConfig(),
		Cost:       DefaultCostModel(),
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	if c.IONodes < 1 {
		return fmt.Errorf("pfs: config needs >= 1 I/O node, got %d", c.IONodes)
	}
	if c.StripeUnit < 1 {
		return fmt.Errorf("pfs: stripe unit %d < 1", c.StripeUnit)
	}
	if len(c.Nodes) != 0 && len(c.Nodes) != c.IONodes {
		return fmt.Errorf("pfs: %d per-node configs for %d I/O nodes (Nodes must be empty or exactly IONodes long)",
			len(c.Nodes), c.IONodes)
	}
	for i, n := range c.Nodes {
		if n.Disk != nil {
			if n.Disk.Disks < 2 {
				return fmt.Errorf("pfs: node %d (%s): RAID-3 needs >= 2 drives, got %d",
					i, templateLabel(n), n.Disk.Disks)
			}
			if n.Disk.BWBytesPerS <= 0 {
				return fmt.Errorf("pfs: node %d (%s): non-positive disk bandwidth %g B/s",
					i, templateLabel(n), n.Disk.BWBytesPerS)
			}
		}
		if n.CacheBytes < 0 {
			return fmt.Errorf("pfs: node %d (%s): negative cache capacity %d", i, templateLabel(n), n.CacheBytes)
		}
		if n.CacheBytes > 0 && !c.Cache.Enabled {
			return fmt.Errorf("pfs: node %d (%s): per-node cache capacity set but the cache tier is disabled (enable Config.Cache)",
				i, templateLabel(n))
		}
		if n.Zone < 0 {
			return fmt.Errorf("pfs: node %d (%s): negative zone %d", i, templateLabel(n), n.Zone)
		}
	}
	if err := c.Replication.validate(); err != nil {
		return err
	}
	if err := c.Sched.Validate(); err != nil {
		return err
	}
	return nil
}

func templateLabel(n NodeConfig) string {
	if n.Template == "" {
		return "untemplated"
	}
	return "template " + n.Template
}

// nodeDisk resolves node i's array configuration.
func (c Config) nodeDisk(i int) disk.ArrayConfig {
	if i < len(c.Nodes) && c.Nodes[i].Disk != nil {
		return *c.Nodes[i].Disk
	}
	return c.Disk
}

// nodeCache resolves node i's cache configuration (normalized against the
// stripe unit); Enabled is false when the cache tier is off.
func (c Config) nodeCache(i int) cache.Config {
	if !c.Cache.Enabled {
		return cache.Config{}
	}
	cc := c.Cache
	if i < len(c.Nodes) && c.Nodes[i].CacheBytes > 0 {
		cc.CapacityBytes = c.Nodes[i].CacheBytes
	}
	return cc.Normalized(c.StripeUnit)
}

// Zones returns each I/O node's outage domain, all zeros for homogeneous
// configurations.
func (c Config) Zones() []int {
	zones := make([]int, c.IONodes)
	for i := range zones {
		if i < len(c.Nodes) {
			zones[i] = c.Nodes[i].Zone
		}
	}
	return zones
}

// Heterogeneous reports whether any node overrides the fleet-wide defaults.
func (c Config) Heterogeneous() bool {
	for _, n := range c.Nodes {
		if n.Disk != nil || n.CacheBytes > 0 || n.Zone != 0 {
			return true
		}
	}
	return false
}

// CostModel collects the software-path service times of the file system.
// The defaults are calibrated so that the three application skeletons
// reproduce the time columns of the paper's Tables 1, 3 and 5 in shape and
// rough magnitude; per-application presets (the authors ran "several versions
// of Intel OSF/1" whose costs differed) live with each application package
// and are documented in EXPERIMENTS.md.
type CostModel struct {
	// ClientOverhead is charged on the compute node for every file-system
	// call: trap, library, and PFS client work.
	ClientOverhead sim.Time

	// AsyncIssue is the cost of issuing an asynchronous read (the part the
	// paper measures as the AsynchRead row of Table 3); the transfer itself
	// proceeds in the background and un-overlapped remainder surfaces as
	// I/O-wait time.
	AsyncIssue sim.Time

	// OpenService is the metadata-server service time to open an existing
	// file; CreateService the (much larger, on PFS) time to create one.
	// Opens serialize at the metadata server, which is how the paper's
	// open storms (HTF integral phase, 63% of I/O time) arise.
	OpenService   sim.Time
	CreateService sim.Time

	// FirstOpenPenalty is a one-time client initialization cost added to a
	// program's first open — PFS attached the client to the I/O subsystem
	// on first contact.
	FirstOpenPenalty sim.Time

	// CloseService is the metadata-server service time for close.
	CloseService sim.Time

	// SeekService models PFS's synchronous seek, which validated the new
	// position with the I/O subsystem; on shared files it additionally
	// serializes on the file's atomicity token (ESCAT's 54% seek time).
	SeekService sim.Time

	// LsizeService and FlushService cover the Fortran runtime's LSIZE and
	// FORFLUSH calls observed in the Hartree-Fock integral phase.
	LsizeService sim.Time
	FlushService sim.Time

	// SharedTokenService is the token round-trip cost charged per access in
	// the shared-file-pointer modes (M_LOG, M_SYNC, M_GLOBAL).
	SharedTokenService sim.Time

	// ReadCopyBytesPerS, when positive, charges the client an extra
	// bytes/rate copy cost on reads of at least ReadCopyMin bytes. It
	// models the Fortran runtime's record-copy path for large records,
	// which in the HTF self-consistent-field phase roughly doubled the
	// application-visible read time without occupying the I/O nodes.
	ReadCopyBytesPerS float64
	ReadCopyMin       int64

	// WriteBufferBytes, when positive, enables client-side buffering of
	// small sequential M_UNIX writes: a write smaller than the buffer
	// appends locally at roughly the client overhead, and physical
	// transfers happen one buffer at a time (or when a read, seek, flush,
	// or close drains the residue). This models the Fortran runtime
	// buffering visible in the HTF initialization trace, where hundreds of
	// multi-KB writes average ~12 ms while comparable reads pay full disk
	// positioning.
	WriteBufferBytes int64
}

// DefaultCostModel returns mid-range calibration values.
func DefaultCostModel() CostModel {
	return CostModel{
		ClientOverhead:     500 * sim.Microsecond,
		AsyncIssue:         10 * sim.Millisecond,
		OpenService:        70 * sim.Millisecond,
		CreateService:      490 * sim.Millisecond,
		FirstOpenPenalty:   0,
		CloseService:       70 * sim.Millisecond,
		SeekService:        10 * sim.Millisecond,
		LsizeService:       2 * sim.Millisecond,
		FlushService:       10 * sim.Millisecond,
		SharedTokenService: 2 * sim.Millisecond,
	}
}
