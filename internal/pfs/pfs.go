// Package pfs models the Intel Paragon Parallel File System (PFS) as
// described in §3.2 of the paper: files striped in 64 KB units across the
// I/O nodes, a metadata server where opens, closes and size queries
// serialize, POSIX atomicity on M_UNIX files, and the six parallel access
// modes (M_UNIX, M_LOG, M_SYNC, M_RECORD, M_GLOBAL, M_ASYNC) with their real
// sharing semantics.
//
// The package is a *performance model*, not a data store: requests carry
// offsets and sizes but no payload, because the characterization study is
// about access patterns and costs. Every operation is charged its software
// cost on the calling compute node, contends for the metadata server or the
// file's atomicity token as the mode requires, and queues chunk-by-chunk at
// the I/O nodes its stripes live on.
package pfs

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// FileSystem is one PFS instance bound to a simulated machine.
type FileSystem struct {
	eng *sim.Engine
	msh *mesh.Mesh
	cfg Config

	meta    *sim.Resource // metadata server: opens/closes/lsize serialize here
	ion     []*ionode.Node
	ionHome []int // compute-node id of each I/O node (for mesh distance)

	files  map[string]*File
	nextID iotrace.FileID

	rec      iotrace.Recorder
	phase    string
	seq      int64
	coldOpen bool // first open of this instance already happened

	opCount [iotrace.NumOps]int64
	opBytes [iotrace.NumOps]int64
	opTime  [iotrace.NumOps]sim.Time

	fo FailoverStats

	rel    ReliabilityStats
	relRNG *sim.RNG // jitter stream; nil when the reliability layer is off
	lat    latencyTracker
	hseq   int64 // hedge process name sequence

	coll *collState // nil when collective I/O is disabled

	plc        *placer      // zone-interleaved replica ring
	rf         int          // effective replication factor (1 = no replication)
	readPolicy string       // how replicated reads pick a copy
	rep        *repairState // nil when the repair control plane is off

	part *partition // nil on a serial instance
}

// partition wires a FileSystem split across a conservative fabric: clients,
// the metadata server, and every policy daemon live on the frontend shard,
// while each I/O node's state (queue, cache, integrity store, disk array,
// scrubber) lives on its owning shard. All client↔ionode traffic crosses the
// seam as fabric mail: requests ride the positive-lookahead edge delayed by
// the modeled mesh cost, completions ride the zero-lookahead reply edge.
type partition struct {
	fe    *sim.Shard
	owner []*sim.Shard // owning shard per I/O node
	down  []int        // frontend mirror of each node's outage state (repair only)
}

// FailoverStats counts the failover machinery's activity under injected
// I/O-node outages. All zeros on a healthy run.
type FailoverStats struct {
	Timeouts     int64    // requests that found their primary I/O node dead
	Retries      int64    // retry attempts issued
	Reroutes     int64    // chunks completed on a replica node
	MirrorWrites int64    // replica write chunks issued (Replicate only)
	Failed       int64    // chunks abandoned with ErrIONodeDown
	BackoffTime  sim.Time // total time spent in detection + backoff delays
}

// New creates a PFS instance on the given engine and mesh. The I/O nodes are
// placed at the highest mesh coordinates (as on the CCSF machine, where
// service and I/O nodes occupied dedicated columns).
func New(eng *sim.Engine, msh *mesh.Mesh, cfg Config) (*FileSystem, error) {
	return newFS(eng, msh, cfg, nil)
}

// NewPartitioned creates a PFS split across fabric shards: the client side on
// frontend shard fe, and I/O node i's state on shard srv[assign[i]]. It
// declares the fabric edges itself — a positive-lookahead request edge and a
// zero-lookahead reply edge per I/O shard — so results are a pure function of
// the (fe, srv, assign) topology, independent of the fabric's worker count.
func NewPartitioned(fe *sim.Shard, srv []*sim.Shard, assign []int, msh *mesh.Mesh, cfg Config) (*FileSystem, error) {
	if la := msh.Lookahead(); la <= 0 {
		return nil, fmt.Errorf("pfs: partitioned file system needs a positive mesh lookahead, got %v (SWLatency+HopLatency == 0 would deadlock the fabric's bounded-horizon loop)", la)
	}
	if len(srv) == 0 {
		return nil, fmt.Errorf("pfs: partitioned file system needs at least one I/O shard")
	}
	if len(assign) != cfg.IONodes {
		return nil, fmt.Errorf("pfs: partition assignment covers %d of %d I/O nodes", len(assign), cfg.IONodes)
	}
	part := &partition{
		fe:    fe,
		owner: make([]*sim.Shard, cfg.IONodes),
		down:  make([]int, cfg.IONodes),
	}
	used := make([]bool, len(srv))
	for i, g := range assign {
		if g < 0 || g >= len(srv) {
			return nil, fmt.Errorf("pfs: I/O node %d assigned to shard %d of %d", i, g, len(srv))
		}
		part.owner[i] = srv[g]
		used[g] = true
	}
	fab := fe.Fabric()
	for g, u := range used {
		if !u {
			continue
		}
		fab.Connect(fe, srv[g], msh.Lookahead())
		fab.ConnectReply(srv[g], fe)
	}
	return newFS(fe.Engine(), msh, cfg, part)
}

// newFS is the shared constructor: eng is the client-side engine, and part
// (when non-nil) reroutes each I/O node's state onto its owning shard.
func newFS(eng *sim.Engine, msh *mesh.Mesh, cfg Config, part *partition) (*FileSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FileSystem{
		eng:   eng,
		msh:   msh,
		cfg:   cfg,
		meta:  sim.NewResource(eng, "pfs-meta", 1),
		files: make(map[string]*File),
		rec:   iotrace.Discard,
	}
	fs.cfg.Reliability = cfg.Reliability.Normalized()
	if fs.cfg.Reliability.Enabled {
		fs.relRNG = sim.NewRNG(fs.cfg.Reliability.Seed)
	}
	fs.cfg.Replication = cfg.Replication.normalized(cfg.Failover, cfg.IONodes)
	fs.rf = fs.cfg.Replication.Factor
	fs.readPolicy = fs.cfg.Replication.ReadPolicy
	fs.plc = newPlacer(cfg.Zones(), fs.cfg.Replication.Seed)
	// Keep the legacy Replicate flag in sync with the effective factor so the
	// paths that gate on it (hedged reads, the CLI reports) see one truth.
	fs.cfg.Failover.Replicate = fs.rf > 1
	if fs.cfg.Replication.Repair.Enabled && fs.rf > 1 {
		fs.rep = newRepairState(fs.cfg.Replication.Repair)
	}
	fs.part = part
	total := msh.Nodes()
	for i := 0; i < cfg.IONodes; i++ {
		neng := eng
		if part != nil {
			neng = part.owner[i].Engine()
		}
		n := ionode.New(neng, i, cfg.nodeDisk(i))
		if cfg.Cache.Enabled {
			n.EnableCache(neng, cfg.nodeCache(i))
		}
		if cfg.Integrity.Enabled {
			n.EnableIntegrity(cfg.Integrity.Normalized(cfg.StripeUnit))
			n.StartScrubber(neng)
		}
		if cfg.Sched.Policy != "" {
			sc := cfg.Sched
			sc.Seed += uint64(i) * 0x9e3779b97f4a7c15 // per-node substream
			if err := n.EnableSched(sc); err != nil {
				return nil, err
			}
		}
		fs.ion = append(fs.ion, n)
		home := total - cfg.IONodes + i
		if home < 0 {
			home = i % total
		}
		fs.ionHome = append(fs.ionHome, home)
	}
	if cfg.Collective.Enabled {
		fs.cfg.Collective = cfg.Collective.Normalized(cfg.IONodes)
		fs.coll = newCollState(fs)
	}
	return fs, nil
}

// SchedStats returns every I/O node's scheduling-dispatcher counters, in node
// order; nil when the legacy FIFO queue is in use.
func (fs *FileSystem) SchedStats() []ionode.SchedStats {
	var out []ionode.SchedStats
	for _, n := range fs.ion {
		if s, ok := n.SchedStats(); ok {
			out = append(out, s)
		}
	}
	return out
}

// PhysRequests sums the physical request count over the I/O nodes — the
// array-level traffic after caching and collective aggregation have had
// their effect.
func (fs *FileSystem) PhysRequests() int64 {
	var total int64
	for _, n := range fs.ion {
		r, _ := n.Stats()
		total += r
	}
	return total
}

// Config returns the file-system configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetRecorder installs the trace recorder (e.g. a pablo.Tracer). Passing nil
// disables recording.
func (fs *FileSystem) SetRecorder(r iotrace.Recorder) {
	if r == nil {
		r = iotrace.Discard
	}
	fs.rec = r
}

// SetPhase labels subsequently captured events with an application phase
// name; the analysis tools use it to separate the paper's per-phase figures.
func (fs *FileSystem) SetPhase(name string) { fs.phase = name }

// Phase returns the current phase label.
func (fs *FileSystem) Phase() string { return fs.phase }

// IONodes exposes the I/O-node population (read-only use intended).
func (fs *FileSystem) IONodes() []*ionode.Node { return fs.ion }

// record captures one completed operation and accumulates summary counters.
func (fs *FileSystem) record(node int, op iotrace.Op, f *File, offset, bytes int64,
	start sim.Time, mode iotrace.AccessMode) {
	fs.recordPhase(node, op, f, offset, bytes, start, mode, fs.phase)
}

// recordPhase is record with an explicit phase label, for operations that are
// not the application's own (the burst tier's drain writes carry their phase
// regardless of what the application is doing at drain time).
func (fs *FileSystem) recordPhase(node int, op iotrace.Op, f *File, offset, bytes int64,
	start sim.Time, mode iotrace.AccessMode, phase string) {
	fs.seq++
	var id iotrace.FileID
	if f != nil {
		id = f.id
	}
	end := fs.eng.Now()
	fs.rec.Record(iotrace.Event{
		Seq: fs.seq, Node: node, Op: op, File: id,
		Offset: offset, Bytes: bytes, Start: start, End: end,
		Mode: mode, Phase: phase,
	})
	fs.opCount[op]++
	if op.Moves() {
		fs.opBytes[op] += bytes
	}
	fs.opTime[op] += end - start
}

// OpCount returns the number of operations of class op performed so far.
func (fs *FileSystem) OpCount(op iotrace.Op) int64 { return fs.opCount[op] }

// OpBytes returns the bytes moved by operations of class op.
func (fs *FileSystem) OpBytes(op iotrace.Op) int64 { return fs.opBytes[op] }

// OpTime returns the summed node time spent in operations of class op.
func (fs *FileSystem) OpTime(op iotrace.Op) sim.Time { return fs.opTime[op] }

// Create creates a new file and returns an open handle on it for the calling
// node. Creation is the expensive metadata operation on PFS.
func (fs *FileSystem) Create(p *sim.Process, node int, name string, mode iotrace.AccessMode) (*Handle, error) {
	start := p.Now()
	fs.chargeColdOpen(p)
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	fs.meta.Acquire(p)
	if _, exists := fs.files[name]; exists {
		fs.meta.Release(p)
		return nil, fmt.Errorf("create %q: %w", name, ErrExist)
	}
	p.Sleep(fs.cfg.Cost.CreateService)
	fs.nextID++
	f := newFile(fs, fs.nextID, name)
	fs.files[name] = f
	fs.meta.Release(p)
	if err := f.checkMode(mode); err != nil {
		return nil, fmt.Errorf("create %q: %w", name, err)
	}
	h := f.newHandle(node, mode)
	fs.record(node, iotrace.OpOpen, f, 0, 0, start, mode)
	return h, nil
}

// Open opens an existing file. All nodes of a parallel program open shared
// files with the same mode; conflicting shared-pointer modes are an error.
func (fs *FileSystem) Open(p *sim.Process, node int, name string, mode iotrace.AccessMode) (*Handle, error) {
	start := p.Now()
	fs.chargeColdOpen(p)
	p.Sleep(fs.cfg.Cost.ClientOverhead)
	fs.meta.Acquire(p)
	f, exists := fs.files[name]
	if !exists {
		fs.meta.Release(p)
		return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
	}
	p.Sleep(fs.cfg.Cost.OpenService)
	fs.meta.Release(p)
	if err := f.checkMode(mode); err != nil {
		return nil, fmt.Errorf("open %q: %w", name, err)
	}
	h := f.newHandle(node, mode)
	fs.record(node, iotrace.OpOpen, f, 0, 0, start, mode)
	return h, nil
}

// OpenRecord opens an existing file in M_RECORD mode with the given fixed
// record length, which every subsequent access must match exactly.
func (fs *FileSystem) OpenRecord(p *sim.Process, node int, name string, recordLen int64) (*Handle, error) {
	if recordLen < 1 {
		return nil, fmt.Errorf("open %q: record length %d: %w", name, recordLen, ErrBadRequest)
	}
	h, err := fs.Open(p, node, name, iotrace.ModeRecord)
	if err != nil {
		return nil, err
	}
	if err := h.file.setRecordLen(recordLen); err != nil {
		return nil, fmt.Errorf("open %q: %w", name, err)
	}
	return h, nil
}

// Exists reports whether a file has been created.
func (fs *FileSystem) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// FileInfo describes a file's identity and extent.
type FileInfo struct {
	ID   iotrace.FileID
	Name string
	Size int64
}

// Stat returns metadata for a file without charging simulation time (it is a
// bookkeeping query for tests and reports, not a modeled operation; modeled
// size queries go through Handle.Lsize).
func (fs *FileSystem) Stat(name string) (FileInfo, bool) {
	f, ok := fs.files[name]
	if !ok {
		return FileInfo{}, false
	}
	return FileInfo{ID: f.id, Name: f.name, Size: f.size}, true
}

// Files returns info for all files, in creation order.
func (fs *FileSystem) Files() []FileInfo {
	out := make([]FileInfo, 0, len(fs.files))
	for _, f := range fs.files {
		out = append(out, FileInfo{ID: f.id, Name: f.name, Size: f.size})
	}
	// creation order == id order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (fs *FileSystem) chargeColdOpen(p *sim.Process) {
	if fs.coldOpen || fs.cfg.Cost.FirstOpenPenalty == 0 {
		fs.coldOpen = true
		return
	}
	fs.coldOpen = true
	p.Sleep(fs.cfg.Cost.FirstOpenPenalty)
}

// FailoverStats returns the accumulated failover counters.
func (fs *FileSystem) FailoverStats() FailoverStats { return fs.fo }

// ReliabilityStats returns the accumulated reliability-layer counters.
func (fs *FileSystem) ReliabilityStats() ReliabilityStats { return fs.rel }

// CacheStats returns every I/O node's cache counters, in node order; nil
// when caching is disabled.
func (fs *FileSystem) CacheStats() []cache.Stats {
	var out []cache.Stats
	for _, n := range fs.ion {
		if s, ok := n.CacheStats(); ok {
			out = append(out, s)
		}
	}
	return out
}

// drainCache synchronously flushes a file's write-behind residue on every
// I/O node, in node order. Down nodes are skipped: their dirty blocks were
// already disposed of by the outage policy. node is the requesting compute
// node, which the partitioned path charges the control message from.
func (fs *FileSystem) drainCache(p *sim.Process, node int, f *File) {
	if !fs.cfg.Cache.Enabled {
		return
	}
	if fs.part == nil {
		for _, n := range fs.ion {
			_ = n.Drain(p, int64(f.id))
		}
		return
	}
	fid := int64(f.id)
	for i := range fs.ion {
		_ = fs.ionRPC(p, node, i, 0, "pfs-drain", func(sp *sim.Process, n *ionode.Node) error {
			return n.Drain(sp, fid)
		})
	}
}

// transfer moves bytes between compute node `node` and the stripes of f in
// [off, off+n), charging mesh and I/O-node costs chunk by chunk. It is the
// physical data path shared by every mode. When a chunk's I/O node is down,
// the configured failover policy runs; with failover disabled or exhausted,
// the transfer stops with ErrIONodeDown.
func (fs *FileSystem) transfer(p *sim.Process, node int, f *File, off, n int64, read bool) error {
	su := fs.cfg.StripeUnit
	rel := fs.cfg.Reliability
	var dl sim.Time // absolute deadline for this whole request; 0 = none
	if rel.Enabled {
		fs.rel.Requests++
		if rel.Deadline > 0 {
			dl = p.Now() + rel.Deadline
		}
	}
	cur := off
	end := off + n
	for cur < end {
		stripe := cur / su
		chunkEnd := (stripe + 1) * su
		if chunkEnd > end {
			chunkEnd = end
		}
		chunk := chunkEnd - cur
		ion := f.stripeIONode(stripe, len(fs.ion))
		addr := f.arrayAddr(stripe, cur%su, len(fs.ion), su)
		if err := fs.chunkIO(p, node, f, ion, addr, chunk, read, dl); err != nil {
			return err
		}
		cur = chunkEnd
	}
	return nil
}

// Partitioned reports whether the file system is split across fabric shards.
func (fs *FileSystem) Partitioned() bool { return fs.part != nil }

// OwnerEngine returns the engine owning I/O node ion's state: the owning
// shard's engine when partitioned, else the file system's own engine. Fault
// injectors use it to run outage and disk-failure actuators where the state
// lives.
func (fs *FileSystem) OwnerEngine(ion int) *sim.Engine {
	if fs.part != nil {
		return fs.part.owner[ion].Engine()
	}
	return fs.eng
}

// FrontendEngine returns the client-side engine (the frontend shard's engine
// when partitioned).
func (fs *FileSystem) FrontendEngine() *sim.Engine { return fs.eng }

// nodeDown reports whether an I/O node is in an outage window. Partitioned
// instances consult the frontend's outage mirror (maintained by the
// NoteOutage hooks) instead of touching the node's own state cross-shard.
func (fs *FileSystem) nodeDown(ion int) bool {
	if fs.part != nil {
		return fs.part.down[ion] > 0
	}
	return fs.ion[ion].Down()
}

// arrayDead reports whether an I/O node's disk array has failed terminally.
// Partitioned runs reject disk-failure plans combined with repair (the only
// reader), so the mirror is trivially false there.
func (fs *FileSystem) arrayDead(ion int) bool {
	if fs.part != nil {
		return false
	}
	return fs.ion[ion].Array().Dead()
}

// ionRPC ships one request from a frontend process to I/O node ion's owning
// shard and parks the caller until the reply: the request mail is delayed by
// the modeled mesh cost (never below the fabric lookahead — a zero-hop
// request still pays one link), op runs in a proxy process on the owning
// engine with the node's full acquire/sleep behaviour, and a zero-lookahead
// reply wakes the caller the instant op completes, with its error staged by
// the delivery sort's canonical (time, shard, sequence) order.
func (fs *FileSystem) ionRPC(p *sim.Process, node, ion int, bytes int64, name string,
	op func(sp *sim.Process, n *ionode.Node) error) error {
	pt := fs.part
	delay := fs.msh.Count(node, fs.ionHome[ion], bytes)
	if la := fs.msh.Lookahead(); delay < la {
		delay = la
	}
	n := fs.ion[ion]
	own := pt.owner[ion]
	var err error
	pt.fe.Send(p, own, delay, name, func(sp *sim.Process) {
		e := op(sp, n)
		own.SendWake(sp, pt.fe, 0, name, p, func() { err = e })
	})
	p.Park("pfs: awaiting " + name)
	return err
}

// tryNode issues one chunk to a specific I/O node, charging the mesh hop and
// the node's queueing + service time. The serial path stays a direct call;
// the partitioned path realizes the same latency as cross-shard request and
// reply mail.
func (fs *FileSystem) tryNode(p *sim.Process, node, ion int, stream, addr, chunk int64, read bool) error {
	if fs.part == nil {
		fs.msh.Transfer(p, node, fs.ionHome[ion], chunk)
		_, err := fs.ion[ion].Do(p, stream, addr, chunk, read)
		return err
	}
	return fs.ionRPC(p, node, ion, chunk, "pfs-io", func(sp *sim.Process, n *ionode.Node) error {
		_, err := n.Do(sp, stream, addr, chunk, read)
		return err
	})
}

// chunkIO services one stripe chunk with failover and the reliability
// layer's corrupt-read retries, deadlines, and hedged reads. The healthy
// fast path (reliability off) is a single tryNode call, identical in cost to
// the pre-failover data path.
func (fs *FileSystem) chunkIO(p *sim.Process, node int, f *File, ion int, addr, chunk int64, read bool, dl sim.Time) error {
	rel := fs.cfg.Reliability
	fo := fs.cfg.Failover
	var err error
	if read && fs.hedgeEligible() {
		err = fs.hedgedRead(p, node, f, ion, addr, chunk)
	} else {
		r0 := fs.readCopy(addr, read)
		start := p.Now()
		err = fs.tryNode(p, node, fs.placer().target(ion, r0),
			replicaStream(int64(f.id), r0), replicaAddr(addr, r0), chunk, read)
		if err == nil && read && rel.Enabled && rel.Hedge {
			fs.lat.record(p.Now() - start)
		}
	}
	if err == nil {
		if !read && fs.rf > 1 {
			fs.mirrorWrite(p, node, f, ion, addr, chunk)
		}
		return nil
	}
	if errors.Is(err, integrity.ErrCorrupt) {
		// The node is healthy; its checksum verification rejected the data.
		// The dead-node detection timeout does not apply — go straight to
		// the corrupt-retry policy.
		if !rel.Enabled {
			fs.fo.Failed++
			return fmt.Errorf("pfs: %s chunk at ionode %d: %w", rw(read), ion, err)
		}
		return fs.corruptRetry(p, node, f, ion, fs.readCopy(addr, read), addr, chunk, dl)
	}
	if !fo.Enabled {
		fs.fo.Failed++
		return fmt.Errorf("pfs: %s chunk at ionode %d: %w", rw(read), ion, ErrIONodeDown)
	}

	// The node we tried is dead: charge the detection timeout, then retry
	// with exponential backoff — cycling through the chunk's other copies
	// when replicas exist, else against the primary in the hope the outage
	// ends first.
	fs.fo.Timeouts++
	fs.fo.BackoffTime += fo.DetectTimeout
	p.Sleep(fo.DetectTimeout)
	backoff := fo.Backoff
	r0 := fs.readCopy(addr, read)
	for attempt := 0; attempt < fo.MaxRetries; attempt++ {
		if rel.Enabled && dl > 0 && p.Now() >= dl {
			fs.rel.DeadlineExceeded++
			return fmt.Errorf("pfs: %s chunk at ionode %d: %w", rw(read), ion, ErrDeadline)
		}
		if backoff > 0 {
			d := backoff
			if fs.relRNG != nil && rel.JitterFrac > 0 {
				d = fs.relRNG.Jitter(backoff, rel.JitterFrac)
			}
			fs.fo.BackoffTime += d
			p.Sleep(d)
			backoff *= 2
		}
		fs.fo.Retries++
		r := 0
		if fs.rf > 1 {
			r = (r0 + 1 + attempt%(fs.rf-1)) % fs.rf
		}
		target := fs.placer().target(ion, r)
		err := fs.tryNode(p, node, target,
			replicaStream(int64(f.id), r), replicaAddr(addr, r), chunk, read)
		if err == nil {
			if target != ion {
				fs.fo.Reroutes++
			}
			if !read && r != 0 {
				// A degraded (sloppy) write: the data landed on copy r while
				// the primary was unreachable. Every other copy is now stale;
				// the repair daemon will reconcile from r.
				fs.noteSloppyWrite(f, ion, r, addr, chunk)
			}
			return nil
		}
	}
	fs.fo.Failed++
	return fmt.Errorf("pfs: %s chunk at ionode %d: %w", rw(read), ion, ErrIONodeDown)
}

// readCopy picks the copy a healthy read starts at: always the primary,
// except under the any-replica policy, where the chunk address spreads reads
// round-robin over all copies. Writes always start at the primary.
func (fs *FileSystem) readCopy(addr int64, read bool) int {
	if !read || fs.rf < 2 || fs.readPolicy != ReadAnyReplica {
		return 0
	}
	return int((addr / fs.cfg.StripeUnit) % int64(fs.rf))
}

// corruptRetry is the reliability layer's response to a read rejected by
// checksum verification on copy badCopy: bounded retries with seeded
// exponential backoff + jitter, cycling over the chunk's other copies when
// replicas exist (re-reading the corrupt copy cannot succeed until something
// rewrites the block). A replica read that succeeds schedules a background
// heal write restoring the corrupt copy; under the quorum read policy it
// additionally reads further copies until a majority of the replication
// factor has verified.
func (fs *FileSystem) corruptRetry(p *sim.Process, node int, f *File, ion, badCopy int, addr, chunk int64, dl sim.Time) error {
	rel := fs.cfg.Reliability
	fo := fs.cfg.Failover
	fs.rel.CorruptRetries++
	backoff := rel.Backoff
	var lastErr error = integrity.ErrCorrupt
	for attempt := 0; attempt < rel.MaxRetries; attempt++ {
		if dl > 0 && p.Now() >= dl {
			fs.rel.DeadlineExceeded++
			return fmt.Errorf("pfs: read chunk at ionode %d: %w", ion, ErrDeadline)
		}
		if backoff > 0 {
			d := fs.relRNG.Jitter(backoff, rel.JitterFrac)
			fs.rel.RetryBackoffTime += d
			p.Sleep(d)
			backoff *= 2
		}
		fs.rel.Retries++
		r := badCopy
		if fo.Enabled && fs.rf > 1 {
			r = (badCopy + 1 + attempt%(fs.rf-1)) % fs.rf
		}
		target := fs.placer().target(ion, r)
		err := fs.tryNode(p, node, target,
			replicaStream(int64(f.id), r), replicaAddr(addr, r), chunk, true)
		if err == nil {
			if r != badCopy {
				fs.rel.CorruptReroutes++
				fs.healCopy(node, f, ion, badCopy, addr, chunk)
				fs.quorumRead(p, node, f, ion, badCopy, r, addr, chunk)
			}
			return nil
		}
		lastErr = err
	}
	fs.rel.CorruptFailed++
	if errors.Is(lastErr, integrity.ErrCorrupt) {
		return fmt.Errorf("pfs: read chunk at ionode %d: %w", ion, integrity.ErrCorrupt)
	}
	return fmt.Errorf("pfs: read chunk at ionode %d: %w", ion, ErrIONodeDown)
}

// quorumRead implements the quorum read policy's answer to detected
// corruption: one verified copy (good) is not trusted on its own — further
// copies are read until a majority of the replication factor has verified or
// the copies run out. Extra reads that fail are tolerated; the already
// verified copy still answers.
func (fs *FileSystem) quorumRead(p *sim.Process, node int, f *File, ion, badCopy, good int, addr, chunk int64) {
	if fs.readPolicy != ReadQuorum || fs.rf < 3 {
		return // majority of rf <= 2 is one verified copy — already in hand
	}
	need := fs.rf/2 + 1
	have := 1
	for r := 0; r < fs.rf && have < need; r++ {
		if r == badCopy || r == good {
			continue
		}
		fs.rel.QuorumReads++
		if err := fs.tryNode(p, node, fs.placer().target(ion, r),
			replicaStream(int64(f.id), r), replicaAddr(addr, r), chunk, true); err == nil {
			have++
		}
	}
}

// healCopy spawns a background repair write of a chunk whose corrupt copy
// was recovered from another replica: the rewrite bumps the block version
// and restores a valid checksum, closing the corruption event.
func (fs *FileSystem) healCopy(node int, f *File, ion, badCopy int, addr, chunk int64) {
	target := fs.placer().target(ion, badCopy)
	stream := replicaStream(int64(f.id), badCopy)
	taddr := replicaAddr(addr, badCopy)
	fs.hseq++
	fs.eng.Spawn(fmt.Sprintf("pfs-heal%d-ion%d", fs.hseq, target), func(hp *sim.Process) {
		var err error
		if fs.part == nil {
			fs.msh.Transfer(hp, node, fs.ionHome[target], chunk)
			err = fs.ion[target].BlockIO(hp, stream, taddr, chunk, false)
		} else {
			err = fs.ionRPC(hp, node, target, chunk, "pfs-heal", func(sp *sim.Process, n *ionode.Node) error {
				return n.BlockIO(sp, stream, taddr, chunk, false)
			})
		}
		if err == nil {
			fs.rel.RepairWrites++
		}
	})
}

// hedgeEligible reports whether hedged reads can engage: layer + hedging on,
// replicas exist, and enough latency samples have been observed.
func (fs *FileSystem) hedgeEligible() bool {
	rel := fs.cfg.Reliability
	fo := fs.cfg.Failover
	return rel.Enabled && rel.Hedge && fo.Enabled && fo.Replicate &&
		len(fs.ion) > 1 && fs.lat.ready(rel.HedgeMinSamples)
}

// hedgedRead races the primary chunk read against a delayed replica read:
// the hedge timer fires at the observed HedgeQuantile of recent chunk-read
// latencies, and the first completion wins (the loser's I/O still occupies
// its node — hedging trades extra load for tail latency). Both attempts
// failing returns the primary's error; corrupt-read recovery is then the
// caller's corruptRetry path.
func (fs *FileSystem) hedgedRead(p *sim.Process, node int, f *File, ion int, addr, chunk int64) error {
	rel := fs.cfg.Reliability
	threshold := fs.lat.quantile(rel.HedgeQuantile)
	fs.hseq++
	comp := sim.NewCompletion(fmt.Sprintf("pfs-hedge%d", fs.hseq))
	var (
		settled               bool
		result                error
		pDone, hIssued, hDone bool
		pErr                  error
	)
	settle := func(sp *sim.Process, err error) {
		if settled {
			return
		}
		settled = true
		result = err
		comp.Complete(sp)
	}
	fs.eng.Spawn(fmt.Sprintf("pfs-hedge%d-primary", fs.hseq), func(pp *sim.Process) {
		start := pp.Now()
		err := fs.tryNode(pp, node, ion, int64(f.id), addr, chunk, true)
		pDone, pErr = true, err
		if err == nil {
			fs.lat.record(pp.Now() - start)
			settle(pp, nil)
			return
		}
		// Primary failed: settle now unless a hedge is still in flight and
		// might yet deliver the data.
		if !hIssued || hDone {
			settle(pp, err)
		}
	})
	fs.eng.Spawn(fmt.Sprintf("pfs-hedge%d-timer", fs.hseq), func(hp *sim.Process) {
		hp.Sleep(threshold)
		if settled || pDone {
			return
		}
		hIssued = true
		fs.rel.HedgesIssued++
		fs.rel.HedgeExtraBytes += chunk
		target := fs.placer().target(ion, 1)
		err := fs.tryNode(hp, node, target, replicaStream(int64(f.id), 1), replicaAddr(addr, 1), chunk, true)
		hDone = true
		if err == nil {
			if !settled {
				fs.rel.HedgeWins++
				settle(hp, nil)
			} else {
				fs.rel.HedgeLosses++
			}
			return
		}
		if pDone && !settled {
			settle(hp, pErr) // both attempts failed: report the primary's error
		}
	})
	comp.Await(p)
	return result
}

// mirrorWrite pushes a chunk's copies 1..rf-1 to their placement targets. A
// failed mirror is not fatal — the primary holds the data — but is counted,
// and with the repair control plane on, the missed copy enters the
// under-replication index for the daemon to restore.
func (fs *FileSystem) mirrorWrite(p *sim.Process, node int, f *File, ion int, addr, chunk int64) {
	for r := 1; r < fs.rf; r++ {
		target := fs.placer().target(ion, r)
		fs.fo.MirrorWrites++
		err := fs.tryNode(p, node, target, replicaStream(int64(f.id), r), replicaAddr(addr, r), chunk, false)
		if err != nil {
			fs.noteMirrorMiss(f, ion, r, addr, chunk)
		}
	}
}

func rw(read bool) string {
	if read {
		return "read"
	}
	return "write"
}

// syncIO charges a control round-trip (flush, lsize) at an I/O node, falling
// over to the neighbouring node after the detection timeout when the primary
// is down and failover is enabled. node is the requesting compute node, which
// the partitioned path charges the control message from.
func (fs *FileSystem) syncIO(p *sim.Process, node, ion int, cost sim.Time) error {
	if err := fs.ionSync(p, node, ion, cost); err == nil {
		return nil
	}
	fo := fs.cfg.Failover
	if !fo.Enabled || len(fs.ion) < 2 {
		fs.fo.Failed++
		return ErrIONodeDown
	}
	fs.fo.Timeouts++
	fs.fo.BackoffTime += fo.DetectTimeout
	p.Sleep(fo.DetectTimeout)
	fs.fo.Retries++
	if err := fs.ionSync(p, node, fs.placer().target(ion, 1), cost); err != nil {
		fs.fo.Failed++
		return ErrIONodeDown
	}
	fs.fo.Reroutes++
	return nil
}

// ionSync issues one control round (Sync) to an I/O node: direct on a serial
// instance, as a zero-byte RPC on a partitioned one.
func (fs *FileSystem) ionSync(p *sim.Process, node, ion int, cost sim.Time) error {
	if fs.part == nil {
		_, err := fs.ion[ion].Sync(p, cost)
		return err
	}
	return fs.ionRPC(p, node, ion, 0, "pfs-sync", func(sp *sim.Process, n *ionode.Node) error {
		_, err := n.Sync(sp, cost)
		return err
	})
}

// DiskConfig is re-exported for callers needing the array model defaults.
type DiskConfig = disk.ArrayConfig
