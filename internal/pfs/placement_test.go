package pfs

import (
	"testing"
)

// zonesOf labels n nodes round-robin-free: counts[z] nodes carry zone z, in
// index order (node 0..counts[0]-1 in zone 0, and so on) — the layout the
// scenario fleet templates generate.
func zonesOf(counts ...int) []int {
	var zones []int
	for z, c := range counts {
		for i := 0; i < c; i++ {
			zones = append(zones, z)
		}
	}
	return zones
}

// The identity ring: a homogeneous (single-zone) fleet at seed 0 must place
// copy r of primary p on node (p+r) mod N — copy 1 is exactly the legacy
// (i+1) mod N mirror.
func TestPlacementLegacyEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		pl := newPlacer(make([]int, n), 0)
		for p := 0; p < n; p++ {
			for r := 0; r < n && r < MaxReplicationFactor; r++ {
				if got, want := pl.target(p, r), (p+r)%n; got != want {
					t.Errorf("n=%d target(%d,%d) = %d, want %d", n, p, r, got, want)
				}
			}
		}
	}
}

// Bijection: for every copy index r, target(·, r) must be a permutation of
// the fleet and primaryOf must invert it — the corruption ledger and repair
// daemon both map replica addresses back to their primaries.
func TestPlacementBijection(t *testing.T) {
	fleets := [][]int{
		zonesOf(8),          // homogeneous
		zonesOf(4, 4),       // two balanced zones
		zonesOf(3, 3, 3),    // three balanced zones
		zonesOf(5, 2, 1),    // skewed
		zonesOf(1, 1, 1, 1), // one node per zone
		{2, 0, 2, 0, 1},     // interleaved declaration order
	}
	for _, zones := range fleets {
		for _, seed := range []uint64{0, 1, 42, 1 << 60} {
			pl := newPlacer(zones, seed)
			n := len(zones)
			for r := 0; r < MaxReplicationFactor; r++ {
				seen := make([]bool, n)
				for p := 0; p < n; p++ {
					tgt := pl.target(p, r)
					if tgt < 0 || tgt >= n {
						t.Fatalf("zones=%v seed=%d target(%d,%d) = %d out of range", zones, seed, p, r, tgt)
					}
					if seen[tgt] {
						t.Fatalf("zones=%v seed=%d copy %d not a permutation: node %d hit twice", zones, seed, r, tgt)
					}
					seen[tgt] = true
					if inv := pl.primaryOf(tgt, r); inv != p {
						t.Fatalf("zones=%v seed=%d primaryOf(%d,%d) = %d, want %d", zones, seed, tgt, r, inv, p)
					}
				}
			}
		}
	}
}

// Zone spread: over balanced zones, the first min(rf, zones) copies of every
// chunk must land in distinct outage domains — that is the invariant that
// makes a full zone loss survivable at RF >= 2.
func TestPlacementZoneSpreadBalanced(t *testing.T) {
	cases := []struct {
		zones []int
		rf    int
	}{
		{zonesOf(4, 4), 2},
		{zonesOf(4, 4, 4), 3},
		{zonesOf(2, 2, 2, 2), 4},
		{zonesOf(8, 8), 2},
		{zonesOf(3, 3, 3), 3},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{0, 7, 99} {
			pl := newPlacer(tc.zones, seed)
			for p := range tc.zones {
				used := map[int]bool{}
				for _, node := range pl.group(p, tc.rf) {
					z := tc.zones[node]
					if used[z] {
						t.Fatalf("zones=%v seed=%d rf=%d primary %d: group %v reuses zone %d",
							tc.zones, seed, tc.rf, p, pl.group(p, tc.rf), z)
					}
					used[z] = true
				}
			}
		}
	}
}

// Heterogeneous (skewed) fleets cannot always alternate zones, but each
// chunk's copy group must still cover as many distinct zones as possible:
// min(rf, zone count) distinct domains whenever the largest zone doesn't
// dominate the ring.
func TestPlacementZoneSpreadSkewed(t *testing.T) {
	// 6+2: ring interleaves 0 1 0 1 0 1 0 0 — pairs starting in the
	// alternating prefix spread, and every RF=2 group that can spread does.
	zones := zonesOf(6, 2)
	pl := newPlacer(zones, 0)
	spread := 0
	for p := range zones {
		g := pl.group(p, 2)
		if zones[g[0]] != zones[g[1]] {
			spread++
		}
	}
	// 8 primaries; at most 2*min(|z0|,|z1|) = 4 adjacencies cross zones on
	// the ring, so expect exactly 4 spread pairs.
	if spread != 4 {
		t.Errorf("6+2 fleet: %d/8 RF=2 groups cross zones, want 4", spread)
	}

	// A zone with a strict majority still never co-locates two copies on the
	// same *node* (bijection) and spreads wherever the interleave allows.
	zones = zonesOf(5, 1, 1)
	pl = newPlacer(zones, 0)
	for p := range zones {
		g := pl.group(p, 3)
		if g[0] == g[1] || g[1] == g[2] || g[0] == g[2] {
			t.Fatalf("5+1+1 fleet: group %v reuses a node", g)
		}
	}
}

// Determinism: the same zones and seed must always build the same ring, and
// different seeds must (for a multi-node zone) reorder within zones without
// ever breaking the interleave structure.
func TestPlacementDeterminismAcrossSeeds(t *testing.T) {
	zones := zonesOf(4, 4)
	for _, seed := range []uint64{0, 1, 2, 3, 1234567} {
		a := newPlacer(zones, seed)
		b := newPlacer(zones, seed)
		for p := range zones {
			for r := 0; r < MaxReplicationFactor; r++ {
				if a.target(p, r) != b.target(p, r) {
					t.Fatalf("seed %d not deterministic at (%d,%d)", seed, p, r)
				}
			}
		}
		// The interleave invariant holds at every seed: ring neighbours
		// alternate zones on a balanced two-zone fleet.
		for i := range a.ring {
			if zones[a.ring[i]] == zones[a.ring[(i+1)%len(a.ring)]] {
				t.Fatalf("seed %d ring %v: neighbours share a zone", seed, a.ring)
			}
		}
	}
	// Seeds actually permute: some seed must differ from the unseeded ring.
	base := newPlacer(zones, 0)
	differs := false
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		pl := newPlacer(zones, seed)
		for i := range pl.ring {
			if pl.ring[i] != base.ring[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("no seed in 1..5 permutes the ring; shuffle is inert")
	}
}

// The FileSystem-level wiring: zones from Config.Nodes reach the placer, and
// the effective factor normalizes against failover and fleet size.
func TestPlacementFromConfig(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Failover = DefaultFailoverConfig()
		c.Replication = ReplicationConfig{Factor: 3}
		c.Nodes = []NodeConfig{{Zone: 0}, {Zone: 0}, {Zone: 1}, {Zone: 1}}
	})
	if got := r.fs.ReplicationFactor(); got != 3 {
		t.Fatalf("ReplicationFactor = %d, want 3", got)
	}
	pl := r.fs.placer()
	zones := []int{0, 0, 1, 1}
	for p := range zones {
		g := pl.group(p, 2)
		if zones[g[0]] == zones[g[1]] {
			t.Errorf("primary %d: first two copies %v share zone %d", p, g, zones[g[0]])
		}
	}

	// Factor clamps to the fleet and collapses without failover.
	r2 := newRig(t, func(c *Config) {
		c.IONodes = 2
		c.Failover = DefaultFailoverConfig()
		c.Replication = ReplicationConfig{Factor: 4}
	})
	if got := r2.fs.ReplicationFactor(); got != 2 {
		t.Errorf("factor over 2-node fleet = %d, want clamp to 2", got)
	}
	r3 := newRig(t, func(c *Config) {
		c.Replication = ReplicationConfig{Factor: 3}
	})
	if got := r3.fs.ReplicationFactor(); got != 1 {
		t.Errorf("factor without failover = %d, want 1", got)
	}
}

// FuzzPlacement drives newPlacer with arbitrary fleet shapes and seeds and
// checks the structural invariants: every rotation is a bijection that
// primaryOf inverts, the ring is a permutation of the fleet, and over
// balanced zones consecutive copies never share a domain.
func FuzzPlacement(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint64(0), uint8(2))
	f.Add(uint8(8), uint8(2), uint64(1), uint8(3))
	f.Add(uint8(9), uint8(3), uint64(42), uint8(3))
	f.Add(uint8(6), uint8(2), uint64(1<<40), uint8(4))
	f.Add(uint8(5), uint8(4), uint64(7), uint8(2))
	f.Fuzz(func(t *testing.T, nRaw, zRaw uint8, seed uint64, rfRaw uint8) {
		n := int(nRaw)%32 + 1
		nz := int(zRaw)%4 + 1
		if nz > n {
			nz = n
		}
		rf := int(rfRaw)%MaxReplicationFactor + 1
		if rf > n {
			rf = n
		}
		zones := make([]int, n)
		for i := range zones {
			zones[i] = i % nz
		}
		pl := newPlacer(zones, seed)

		// Ring is a permutation of 0..n-1 and pos inverts it.
		if len(pl.ring) != n {
			t.Fatalf("ring length %d, want %d", len(pl.ring), n)
		}
		seen := make([]bool, n)
		for i, node := range pl.ring {
			if node < 0 || node >= n || seen[node] {
				t.Fatalf("ring %v is not a permutation", pl.ring)
			}
			seen[node] = true
			if pl.pos[node] != i {
				t.Fatalf("pos[%d] = %d, want %d", node, pl.pos[node], i)
			}
		}

		// Every rotation is a bijection with a working inverse.
		for r := 0; r < rf; r++ {
			hit := make([]bool, n)
			for p := 0; p < n; p++ {
				tgt := pl.target(p, r)
				if hit[tgt] {
					t.Fatalf("copy %d maps two primaries to node %d", r, tgt)
				}
				hit[tgt] = true
				if pl.primaryOf(tgt, r) != p {
					t.Fatalf("primaryOf(target(%d,%d),%d) != %d", p, r, r, p)
				}
			}
		}

		// Balanced zones (n divisible by nz, round-robin labels): the first
		// min(rf, nz) copies sit in distinct zones.
		if n%nz == 0 {
			spread := rf
			if nz < spread {
				spread = nz
			}
			for p := 0; p < n; p++ {
				used := map[int]bool{}
				for r := 0; r < spread; r++ {
					z := zones[pl.target(p, r)]
					if used[z] {
						t.Fatalf("n=%d nz=%d seed=%d primary %d: copies 0..%d reuse zone %d",
							n, nz, seed, p, spread-1, z)
					}
					used[z] = true
				}
			}
		}

		// Determinism: rebuilding with the same inputs gives the same ring.
		pl2 := newPlacer(zones, seed)
		for i := range pl.ring {
			if pl.ring[i] != pl2.ring[i] {
				t.Fatal("placer is not deterministic")
			}
		}
	})
}
