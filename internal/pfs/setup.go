package pfs

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Preload installs a file with the given extent without charging simulated
// time or emitting trace events. It models data sets that exist before the
// traced run begins — ESCAT's problem-definition files, RENDER's terrain
// data, HTF's initial inputs.
func (fs *FileSystem) Preload(name string, size int64) (FileInfo, error) {
	if size < 0 {
		return FileInfo{}, fmt.Errorf("preload %q: size %d: %w", name, size, ErrBadRequest)
	}
	if _, exists := fs.files[name]; exists {
		return FileInfo{}, fmt.Errorf("preload %q: %w", name, ErrExist)
	}
	fs.nextID++
	f := newFile(fs, fs.nextID, name)
	f.size = size
	fs.files[name] = f
	return FileInfo{ID: f.id, Name: name, Size: size}, nil
}

// ReserveIDs skips the next n file identifiers. Runs use it to align trace
// file ids with conventional descriptor numbering (ids 0-2 belong to the
// standard streams in the paper's figures, so its first data file is id 3).
func (fs *FileSystem) ReserveIDs(n int) {
	if n < 0 {
		panic("pfs: ReserveIDs with negative n")
	}
	fs.nextID += iotrace.FileID(n)
}

// SetIOMode switches the handle's access mode in place, modeling Intel PFS's
// setiomode(): ESCAT writes its quadrature files in M_UNIX and rereads them
// in M_RECORD through the same descriptors (§5.1), which is why the paper
// counts 262 opens rather than 518. For M_RECORD the fixed record length
// must be supplied (and must agree with any length already fixed on the
// file); for other modes recordLen must be zero.
func (h *Handle) SetIOMode(p *sim.Process, mode iotrace.AccessMode, recordLen int64) error {
	if h.closed {
		return ErrClosed
	}
	if !mode.Valid() || mode == iotrace.ModeNone {
		return fmt.Errorf("pfs: SetIOMode to %v", mode)
	}
	if (mode == iotrace.ModeRecord) != (recordLen > 0) {
		return fmt.Errorf("pfs: SetIOMode record length %d for mode %v: %w",
			recordLen, mode, ErrBadRequest)
	}
	if err := h.drainWriteBuffer(p); err != nil {
		return err
	}
	if err := h.file.checkMode(mode); err != nil {
		return err
	}
	if mode == iotrace.ModeRecord {
		if err := h.file.setRecordLen(recordLen); err != nil {
			return err
		}
	}
	// Mode switches synchronize with the I/O subsystem like other
	// shared-state changes, but are not an instrumented operation class.
	p.Sleep(h.fs.cfg.Cost.SharedTokenService)
	h.mode = mode
	return nil
}
