package pfs

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

func cacheOn() cache.Config { return cache.DefaultConfig() }

// timeFileIO writes and reads one striped file and returns the simulated
// finish instant.
func timeFileIO(t *testing.T, mut func(*Config)) sim.Time {
	t.Helper()
	r := newRig(t, mut)
	var end sim.Time
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(p, 1<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Seek(p, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Read(p, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(p); err != nil {
			t.Fatal(err)
		}
		end = p.Now()
	})
	return end
}

func TestZeroNodeConfigsMatchHomogeneous(t *testing.T) {
	base := timeFileIO(t, nil)
	hetero := timeFileIO(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.IONodes) // all-zero overrides
	})
	if base != hetero {
		t.Fatalf("zero-value NodeConfigs changed timing: %v vs %v", base, hetero)
	}
}

func TestSlowNodeOverrideSlowsTheRun(t *testing.T) {
	base := timeFileIO(t, nil)
	slow := timeFileIO(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.IONodes)
		d := DefaultConfig().Disk
		d.BWBytesPerS /= 10
		c.Nodes[1] = NodeConfig{Disk: &d, Template: "slow"}
	})
	if slow <= base {
		t.Fatalf("slow-disk override did not slow the run: base %v, slow %v", base, slow)
	}
}

func TestFastNodeOverrideSpeedsTheRun(t *testing.T) {
	base := timeFileIO(t, nil)
	fast := timeFileIO(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.IONodes)
		for i := range c.Nodes {
			d := DefaultConfig().Disk
			d.BWBytesPerS *= 10
			d.Position /= 5
			c.Nodes[i] = NodeConfig{Disk: &d, Template: "fast"}
		}
	})
	if fast >= base {
		t.Fatalf("fast-disk overrides did not speed the run: base %v, fast %v", base, fast)
	}
}

func TestPerNodeCacheCapacityOverride(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cache = cacheOn()
		c.Nodes = make([]NodeConfig, c.IONodes)
		c.Nodes[2] = NodeConfig{CacheBytes: 1 << 20}
	})
	caps := make([]int64, 0, 4)
	for _, n := range r.fs.IONodes() {
		caps = append(caps, n.Cache().Config().CapacityBytes)
	}
	want := cacheOn().CapacityBytes
	for i, c := range caps {
		if i == 2 {
			if c != 1<<20 {
				t.Fatalf("node 2 capacity %d, want %d", c, 1<<20)
			}
		} else if c != want {
			t.Fatalf("node %d capacity %d, want default %d", i, c, want)
		}
	}
}

func TestConfigValidateNodeMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = make([]NodeConfig, 3)
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "3 per-node configs for 16 I/O nodes") {
		t.Fatalf("want per-node count mismatch error, got %v", err)
	}

	cfg = DefaultConfig()
	cfg.Nodes = make([]NodeConfig, cfg.IONodes)
	cfg.Nodes[0].CacheBytes = 1 << 20
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "cache tier is disabled") {
		t.Fatalf("want cache-disabled error, got %v", err)
	}

	cfg = DefaultConfig()
	cfg.Nodes = make([]NodeConfig, cfg.IONodes)
	bad := disk.ArrayConfig{Disks: 1, BWBytesPerS: 1e6}
	cfg.Nodes[4] = NodeConfig{Disk: &bad, Template: "tiny"}
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "node 4 (template tiny)") {
		t.Fatalf("want per-node drive error, got %v", err)
	}
}

func TestZonesAndHeterogeneous(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Heterogeneous() {
		t.Fatal("default config reported heterogeneous")
	}
	if got := cfg.Zones(); len(got) != 16 || got[0] != 0 {
		t.Fatalf("zones %v", got)
	}
	cfg.Nodes = make([]NodeConfig, cfg.IONodes)
	for i := range cfg.Nodes {
		cfg.Nodes[i].Zone = i / 4
	}
	if !cfg.Heterogeneous() {
		t.Fatal("zoned config not reported heterogeneous")
	}
	z := cfg.Zones()
	if z[0] != 0 || z[15] != 3 {
		t.Fatalf("zones %v", z)
	}
}
