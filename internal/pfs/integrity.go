// Integrity plumbing: mapping between file extents and the per-node
// checksum stores, plus the corruption ledger used by resilient restarts
// (latent corruption survives an application restart on the same storage, so
// the harvested ledger is re-injected into the fresh PFS instance).
package pfs

import (
	"sort"

	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// IntegrityStats returns every I/O node's integrity counters, in node order;
// nil when the layer is disabled.
func (fs *FileSystem) IntegrityStats() []integrity.Stats {
	var out []integrity.Stats
	for _, n := range fs.ion {
		if s, ok := n.IntegrityStats(); ok {
			out = append(out, s)
		}
	}
	return out
}

// IntegrityEvents returns the corruption event timeline across all nodes,
// ordered by injection time (then node, then block).
func (fs *FileSystem) IntegrityEvents() []integrity.Event {
	var out []integrity.Event
	for _, n := range fs.ion {
		if st := n.Integrity(); st != nil {
			out = append(out, st.Events()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.InjectedAt != b.InjectedAt {
			return a.InjectedAt < b.InjectedAt
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Block < b.Block
	})
	return out
}

// AuditIntegrity runs the end-of-run verification sweep on every node: all
// tracked blocks are verified (no simulated time — the run is over),
// parity-repairable latent errors are repaired where the array still has
// parity, and the rest are left open for the report. Call once before
// reading IntegrityStats for a final report.
func (fs *FileSystem) AuditIntegrity() {
	now := fs.eng.Now()
	for _, n := range fs.ion {
		st := n.Integrity()
		if st == nil {
			continue
		}
		arr := n.Array()
		st.Audit(now, arr.Degraded() || arr.Dead())
	}
}

// VerifyFile checks the checksum state covering a file's primary stripes
// without charging simulated time, marking any detections with the given
// label ("restart" for checkpoint restart verification). It returns false
// when any covered block holds latent corruption. Unknown files verify
// trivially.
func (fs *FileSystem) VerifyFile(name, by string) bool {
	f, exists := fs.files[name]
	if !exists || f.size == 0 {
		return true
	}
	if !fs.cfg.Integrity.Enabled {
		return true
	}
	now := fs.eng.Now()
	su := fs.cfg.StripeUnit
	nion := len(fs.ion)
	ok := true
	for off := int64(0); off < f.size; {
		stripe := off / su
		chunkEnd := (stripe + 1) * su
		if chunkEnd > f.size {
			chunkEnd = f.size
		}
		st := fs.ion[f.stripeIONode(stripe, nion)].Integrity()
		addr := f.arrayAddr(stripe, off%su, nion, su)
		if st != nil && st.VerifyExtent(now, addr, chunkEnd-off, by) {
			ok = false
		}
		off = chunkEnd
	}
	return ok
}

// CorruptRange names one still-corrupt extent in file coordinates — the
// portable form of the corruption ledger that survives an application
// restart (array addresses depend on file IDs, which a fresh run reassigns).
type CorruptRange struct {
	File    string
	Offset  int64
	Bytes   int64
	Replica int // copy index the corruption sits on (0 = the primary copy)
	Class   integrity.Class
}

// fileOffset maps an I/O node's local byte address back to the owning
// file's offset (the inverse of stripeIONode + arrayAddr). For a replica
// copy the placement ring is inverted to find the chunk's primary first.
func (fs *FileSystem) fileOffset(f *File, node int, localByte int64, replica int) int64 {
	nion := len(fs.ion)
	su := fs.cfg.StripeUnit
	primary := fs.placer().primaryOf(node, replica)
	localChunk := localByte / su
	within := localByte % su
	slot := (primary - f.firstIONode + nion) % nion
	stripe := localChunk*int64(nion) + int64(slot)
	return stripe*su + within
}

// HarvestCorruption collects every block still holding latent corruption,
// mapped back to file coordinates, sorted by (file, offset, replica). A
// resilient restart harvests the dying instance's ledger and re-injects it
// into the fresh one — corruption on disk does not go away because the
// application restarted.
func (fs *FileSystem) HarvestCorruption() []CorruptRange {
	if !fs.cfg.Integrity.Enabled {
		return nil
	}
	byID := make(map[iotrace.FileID]*File, len(fs.files))
	for _, f := range fs.files {
		byID[f.id] = f
	}
	su := fs.cfg.StripeUnit
	var out []CorruptRange
	for i, n := range fs.ion {
		st := n.Integrity()
		if st == nil {
			continue
		}
		bs := st.BlockBytes()
		for _, cb := range st.CorruptBlocks() {
			base, replica := splitReplicaAddr(cb.Block * bs)
			local := base & localAddrMask
			f := byID[iotrace.FileID(base>>34)]
			if f == nil {
				continue // not PFS-addressed state; nothing to carry
			}
			bytes := su - local%su
			if bytes > bs {
				bytes = bs
			}
			out = append(out, CorruptRange{
				File:    f.name,
				Offset:  fs.fileOffset(f, i, local, replica),
				Bytes:   bytes,
				Replica: replica,
				Class:   cb.Class,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.Replica < b.Replica
	})
	return out
}

// InjectCorruption re-injects a harvested ledger into this instance,
// marking the mapped blocks corrupt (as carried events). Ranges naming
// files this instance has not (re)created yet are skipped — their storage
// was not reused. It returns the number of ranges applied.
func (fs *FileSystem) InjectCorruption(recs []CorruptRange) int {
	if !fs.cfg.Integrity.Enabled {
		return 0
	}
	su := fs.cfg.StripeUnit
	nion := len(fs.ion)
	now := fs.eng.Now()
	applied := 0
	for _, r := range recs {
		f, exists := fs.files[r.File]
		if !exists || r.Class == integrity.ClassNone {
			continue
		}
		stripe := r.Offset / su
		within := r.Offset % su
		ionIdx := f.stripeIONode(stripe, nion)
		addr := f.arrayAddr(stripe, within, nion, su)
		if r.Replica > 0 {
			ionIdx = fs.placer().target(ionIdx, r.Replica)
			addr = replicaAddr(addr, r.Replica)
		}
		st := fs.ion[ionIdx].Integrity()
		if st == nil {
			continue
		}
		n := r.Bytes
		if n <= 0 {
			n = 1
		}
		st.MarkCorrupt(now, addr, n, r.Class)
		applied++
	}
	return applied
}

// ScrubWindowEnd returns the instant the background scrubbers stand down
// (zero when scrubbing is off), so reports can cap the wall clock the way
// fault plans do.
func (fs *FileSystem) ScrubWindowEnd() sim.Time {
	if !fs.cfg.Integrity.Enabled || !fs.cfg.Integrity.Scrub.Enabled {
		return 0
	}
	return fs.cfg.Integrity.Normalized(fs.cfg.StripeUnit).Scrub.Window
}
