package pfs

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

func TestPreloadCreatesFileWithoutCostOrEvents(t *testing.T) {
	r := newRig(t, nil)
	info, err := r.fs.Preload("terrain", 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 5<<20 || info.ID != 1 {
		t.Fatalf("info %+v", info)
	}
	if len(r.rec.events) != 0 {
		t.Fatal("preload emitted events")
	}
	if _, err := r.fs.Preload("terrain", 1); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate preload: %v", err)
	}
	if _, err := r.fs.Preload("bad", -1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative preload: %v", err)
	}
	// The preloaded file opens and reads normally.
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Open(p, 0, "terrain", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := h.Read(p, 1<<20); err != nil || n != 1<<20 {
			t.Fatalf("read preloaded: n=%d err=%v", n, err)
		}
	})
}

func TestReserveIDsAlignsFileIDs(t *testing.T) {
	r := newRig(t, nil)
	r.fs.ReserveIDs(8)
	info, err := r.fs.Preload("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != 9 {
		t.Fatalf("id %d, want 9", info.ID)
	}
}

func TestSetIOModeSwitchesToRecord(t *testing.T) {
	r := newRig(t, nil)
	const rec = 1000
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "q", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		// Write node 0's region via M_UNIX, as ESCAT does.
		if _, err := h.Write(p, 3*rec); err != nil {
			t.Fatal(err)
		}
		if err := h.SetIOMode(p, iotrace.ModeRecord, rec); err != nil {
			t.Fatal(err)
		}
		// Node 0's first record is record 0 -> offset 0.
		if n, err := h.Read(p, rec); err != nil || n != rec {
			t.Fatalf("record read: n=%d err=%v", n, err)
		}
		if h.Offset() != rec {
			t.Fatalf("offset %d", h.Offset())
		}
		if h.Mode() != iotrace.ModeRecord {
			t.Fatalf("mode %v", h.Mode())
		}
	})
	// Opens counted once despite the mode switch.
	if r.fs.OpCount(iotrace.OpOpen) != 1 {
		t.Fatalf("opens %d", r.fs.OpCount(iotrace.OpOpen))
	}
}

func TestSetIOModeValidation(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if err := h.SetIOMode(p, iotrace.ModeRecord, 0); !errors.Is(err, ErrBadRequest) {
			t.Errorf("record without length: %v", err)
		}
		if err := h.SetIOMode(p, iotrace.ModeUnix, 100); !errors.Is(err, ErrBadRequest) {
			t.Errorf("length without record: %v", err)
		}
		if err := h.SetIOMode(p, iotrace.ModeNone, 0); err == nil {
			t.Error("ModeNone accepted")
		}
		h.Close(p)
		if err := h.SetIOMode(p, iotrace.ModeLog, 0); !errors.Is(err, ErrClosed) {
			t.Errorf("closed handle: %v", err)
		}
	})
}

func TestBufferedWritesCoalescePhysicalTransfers(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cost.WriteBufferBytes = 64 * 1024
	})
	var perWrite []sim.Time
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "buf", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		// 40 sequential 2 KB writes = 80 KB: exactly one 64 KB physical
		// transfer mid-stream, 16 KB residue left buffered.
		for i := 0; i < 40; i++ {
			t0 := p.Now()
			if _, err := h.Write(p, 2048); err != nil {
				t.Fatal(err)
			}
			perWrite = append(perWrite, p.Now()-t0)
		}
		info, _ := r.fs.Stat("buf")
		if info.Size != 40*2048 {
			t.Fatalf("size %d before drain", info.Size)
		}
		if err := h.Close(p); err != nil { // drains residue
			t.Fatal(err)
		}
	})
	cheap := 0
	for _, d := range perWrite {
		if d < 2*sim.Millisecond {
			cheap++
		}
	}
	if cheap < 38 {
		t.Fatalf("only %d/40 writes were buffered-cheap", cheap)
	}
	// Physical bytes reached the I/O nodes after the close drain.
	var bytes int64
	for _, ion := range r.fs.IONodes() {
		_, b := ion.Stats()
		bytes += b
	}
	if bytes != 40*2048 {
		t.Fatalf("physical bytes %d, want %d", bytes, 40*2048)
	}
	// Trace still shows 40 logical writes.
	if r.fs.OpCount(iotrace.OpWrite) != 40 {
		t.Fatalf("write events %d", r.fs.OpCount(iotrace.OpWrite))
	}
}

func TestBufferedWriteLargeRequestsBypass(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cost.WriteBufferBytes = 64 * 1024
	})
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		t0 := p.Now()
		if _, err := h.Write(p, 80*1024); err != nil { // >= buffer: direct
			t.Fatal(err)
		}
		if p.Now()-t0 < 5*sim.Millisecond {
			t.Fatal("large write did not pay physical cost")
		}
	})
	var bytes int64
	for _, ion := range r.fs.IONodes() {
		_, b := ion.Stats()
		bytes += b
	}
	if bytes != 80*1024 {
		t.Fatalf("physical bytes %d", bytes)
	}
}

func TestBufferedWriteDrainedBySeekAndRead(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cost.WriteBufferBytes = 64 * 1024
	})
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 2048) // buffered
		if _, err := h.Seek(p, 0, SeekStart); err != nil {
			t.Fatal(err)
		}
		var phys int64
		for _, ion := range r.fs.IONodes() {
			_, b := ion.Stats()
			phys += b
		}
		if phys != 2048 {
			t.Fatalf("seek did not drain: %d physical bytes", phys)
		}
		if n, err := h.Read(p, 2048); err != nil || n != 2048 {
			t.Fatalf("read back: n=%d err=%v", n, err)
		}
	})
}

func TestBufferedNonSequentialWriteDrainsFirst(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Cost.WriteBufferBytes = 64 * 1024
	})
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 2048)
		h.Seek(p, 100_000, SeekStart) // drains 2048
		h.Write(p, 2048)              // buffered at new position
		h.Close(p)                    // drains second chunk
	})
	var phys int64
	for _, ion := range r.fs.IONodes() {
		_, b := ion.Stats()
		phys += b
	}
	if phys != 4096 {
		t.Fatalf("physical bytes %d, want 4096", phys)
	}
	info, _ := r.fs.Stat("f")
	if info.Size != 102_048 {
		t.Fatalf("size %d", info.Size)
	}
}

// Property: WriteGather conserves bytes (sum of extents in, bytes reported
// out) and extends the file to the maximum extent end, for arbitrary
// disjoint extents.
func TestWriteGatherConservationProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		r := newRig(t, nil)
		if _, err := r.fs.Preload("g", 0); err != nil {
			return false
		}
		var extents []Extent
		var want, maxEnd int64
		for _, v := range raw {
			start := int64(v) * 8192 // disjoint by construction
			n := int64(v%7)*512 + 64
			extents = append(extents, Extent{Start: start, End: start + n})
			want += n
			if start+n > maxEnd {
				maxEnd = start + n
			}
		}
		var got int64
		var sweeps int
		ok := true
		r.eng.Spawn("g", func(p *sim.Process) {
			n, s, err := r.fs.WriteGather(p, 0, "g", extents)
			if err != nil {
				ok = false
				return
			}
			got, sweeps = n, s
		})
		if err := r.eng.Run(); err != nil {
			return false
		}
		info, _ := r.fs.Stat("g")
		return ok && got == want && info.Size == maxEnd &&
			sweeps >= 1 && sweeps <= len(r.fs.IONodes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteGatherValidation(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		if _, _, err := r.fs.WriteGather(p, 0, "missing", []Extent{{0, 10}}); !errors.Is(err, ErrNotExist) {
			t.Errorf("missing file: %v", err)
		}
		r.fs.Preload("g", 0)
		if _, _, err := r.fs.WriteGather(p, 0, "g", []Extent{{10, 5}}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("inverted extent: %v", err)
		}
		if n, s, err := r.fs.WriteGather(p, 0, "g", nil); err != nil || n != 0 || s != 0 {
			t.Errorf("empty gather: n=%d s=%d err=%v", n, s, err)
		}
	})
}

func TestAccessValidation(t *testing.T) {
	r := newRig(t, nil)
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Access(p, 0, "missing", iotrace.OpRead, 0, 10); !errors.Is(err, ErrNotExist) {
			t.Errorf("missing: %v", err)
		}
		r.fs.Preload("a", 1000)
		if _, err := r.fs.Access(p, 0, "a", iotrace.OpSeek, 0, 10); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad op: %v", err)
		}
		if _, err := r.fs.Access(p, 0, "a", iotrace.OpRead, -1, 10); !errors.Is(err, ErrBadRequest) {
			t.Errorf("negative: %v", err)
		}
		if _, err := r.fs.Access(p, 0, "a", iotrace.OpRead, 1000, 10); !errors.Is(err, ErrEOF) {
			t.Errorf("eof: %v", err)
		}
		if n, err := r.fs.Access(p, 0, "a", iotrace.OpRead, 500, 1000); err != nil || n != 500 {
			t.Errorf("clamp: n=%d err=%v", n, err)
		}
		if n, err := r.fs.Access(p, 0, "a", iotrace.OpWrite, 2000, 500); err != nil || n != 500 {
			t.Errorf("extend write: n=%d err=%v", n, err)
		}
		if info, _ := r.fs.Stat("a"); info.Size != 2500 {
			t.Errorf("size %d", info.Size)
		}
	})
}
