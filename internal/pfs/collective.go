package pfs

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// collPlanBytes is the size of the tiny control messages of the plan
// exchange: one request descriptor per member on the way in, one completion
// notification on the way out.
const collPlanBytes = 32

// collKey identifies one aggregation round: the round-structured modes
// (M_RECORD, M_SYNC) advance a per-handle round counter in lockstep across
// the compute group, so (file, mode, op, round index) names the set of
// requests that belong together.
type collKey struct {
	file iotrace.FileID
	mode iotrace.AccessMode
	op   iotrace.Op
	idx  int64
}

// collMember is one compute node's request within a round. M_RECORD members
// arrive with their offset (the mode's record interleaving fixes it);
// M_SYNC members are assigned offsets in node order when the round flushes,
// which is exactly the order the mode's sequencer would have imposed.
type collMember struct {
	node int
	off  int64
	n    int64
	done int64
	err  error
}

// collRound is an open round barrier: members accumulate until the whole
// compute group has arrived (or the straggler window expires), then the last
// arrival becomes the flusher and runs the two-phase exchange.
type collRound struct {
	key        collKey
	f          *File
	group      int
	comp       *sim.Completion
	members    []*collMember
	flushed    bool
	timerArmed bool
}

// collState is the per-FileSystem collective-I/O engine.
type collState struct {
	fs     *FileSystem
	cfg    collective.Config
	stats  collective.Stats
	rounds map[collKey]*collRound
	seq    int64
}

func newCollState(fs *FileSystem) *collState {
	return &collState{fs: fs, cfg: fs.cfg.Collective, rounds: make(map[collKey]*collRound)}
}

// CollectiveEnabled reports whether two-phase aggregation is active.
func (fs *FileSystem) CollectiveEnabled() bool { return fs.coll != nil }

// CollectiveStats returns the aggregation counters; ok is false when
// collective I/O is disabled.
func (fs *FileSystem) CollectiveStats() (collective.Stats, bool) {
	if fs.coll == nil {
		return collective.Stats{}, false
	}
	return fs.coll.stats, true
}

// recordAccess submits one M_RECORD access to its round barrier and blocks
// until the round's aggregated transfer completes. EOF clamping matches the
// per-request path: a read past the end returns ErrEOF without joining (its
// group-mates flush by timer), a read over the tail is shortened.
func (c *collState) recordAccess(p *sim.Process, h *Handle, op iotrace.Op, idx, at, n int64) (int64, error) {
	f := h.file
	if op == iotrace.OpRead {
		if at >= f.size {
			return 0, ErrEOF
		}
		if at+n > f.size {
			n = f.size - at
		}
	}
	m := &collMember{node: h.node, off: at, n: n}
	c.join(p, h, collKey{file: f.id, mode: iotrace.ModeRecord, op: op, idx: idx}, m)
	c.chargeReadCopy(p, op, m.done)
	return m.done, m.err
}

// syncAccess submits one M_SYNC access. The shared offset each member lands
// on is assigned at flush time in node order — the discipline the mode's
// sequencer enforces one request at a time on the per-request path.
func (c *collState) syncAccess(p *sim.Process, h *Handle, op iotrace.Op, idx, n int64) (done, at int64, err error) {
	m := &collMember{node: h.node, off: 0, n: n}
	c.join(p, h, collKey{file: h.file.id, mode: iotrace.ModeSync, op: op, idx: idx}, m)
	c.chargeReadCopy(p, op, m.done)
	return m.done, m.off, m.err
}

// join adds a member to its round, flushing when the compute group is
// complete, arming the straggler timer otherwise, and parking the caller
// until the round's transfer has been issued and completed.
func (c *collState) join(p *sim.Process, h *Handle, key collKey, m *collMember) {
	r := c.rounds[key]
	if r == nil {
		c.seq++
		r = &collRound{
			key:   key,
			f:     h.file,
			group: h.computeNodes(),
			comp:  sim.NewCompletion(fmt.Sprintf("pfs-coll%d", c.seq)),
		}
		c.rounds[key] = r
	}
	r.members = append(r.members, m)
	c.stats.RequestsIn++
	c.stats.BytesIn += m.n
	c.stats.In.Add(m.n)
	if len(r.members) >= r.group {
		c.flush(p, r, true)
	} else if c.cfg.Window > 0 && !r.timerArmed {
		r.timerArmed = true
		c.seq++
		c.fs.eng.Spawn(fmt.Sprintf("pfs-coll-timer%d", c.seq), func(tp *sim.Process) {
			tp.Sleep(c.cfg.Window)
			if !r.flushed {
				c.flush(tp, r, false)
			}
		})
	}
	r.comp.Await(p)
}

// flush runs the two-phase exchange for a round: assign offsets (M_SYNC),
// merge the members' extents, decompose them into per-I/O-node runs, charge
// the plan exchange, and spawn the aggregators that move the shuffle traffic
// and issue the bulk transfers. The flusher (the last-arriving member, or
// the straggler timer) waits for every aggregator, settles the members'
// results, and releases the round.
func (c *collState) flush(p *sim.Process, r *collRound, full bool) {
	fs, f := c.fs, r.f
	r.flushed = true
	delete(c.rounds, r.key)
	c.stats.Rounds++
	if full {
		c.stats.FullRounds++
	} else {
		c.stats.TimeoutRounds++
	}

	// Members in node order: M_SYNC's offset assignment follows the mode's
	// node-number discipline, and planning becomes arrival-order independent.
	sort.SliceStable(r.members, func(i, j int) bool { return r.members[i].node < r.members[j].node })

	read := r.key.op == iotrace.OpRead
	if r.key.mode == iotrace.ModeSync {
		off := f.sharedOff
		for _, m := range r.members {
			m.off = off
			if read {
				if off >= f.size {
					m.n, m.err = 0, ErrEOF
					continue
				}
				if off+m.n > f.size {
					m.n = f.size - off
				}
			}
			off += m.n
		}
		f.sharedOff = off
	}

	var exts []collective.Extent
	var maxEnd int64
	for _, m := range r.members {
		if m.err != nil || m.n <= 0 {
			continue
		}
		exts = append(exts, collective.Extent{Start: m.off, End: m.off + m.n})
		if end := m.off + m.n; end > maxEnd {
			maxEnd = end
		}
	}
	if len(exts) == 0 {
		r.comp.Complete(p)
		return
	}

	// Phase one: the plan exchange. The coordination root collects every
	// member's request descriptor, merges the extents, and partitions the
	// resulting runs among the aggregators.
	root := r.members[0].node
	fs.msh.Gather(p, root, len(r.members), collPlanBytes)
	merged := collective.Merge(exts)
	c.stats.MergedExtents += int64(len(merged))
	su := fs.cfg.StripeUnit
	runs := collective.Runs(merged, collective.Layout{
		StripeUnit: su, IONodes: len(fs.ion), FirstIONode: f.firstIONode,
	})

	rel := fs.cfg.Reliability
	var dl sim.Time
	if rel.Enabled {
		fs.rel.Requests += int64(len(runs))
		if rel.Deadline > 0 {
			dl = p.Now() + rel.Deadline
		}
	}

	// Phase two: aggregator a — a compute node drawn from the members —
	// serves the I/O nodes congruent to a, gathering the shuffle bytes from
	// its peers before bulk writes (or scattering after bulk reads), and
	// issues one large request per run through the normal chunk path, so
	// failover, reliability retries, caching and integrity all still apply.
	numAgg := c.cfg.Aggregators
	byAgg := make([][]collective.Run, numAgg)
	for _, run := range runs {
		a := run.ION % numAgg
		byAgg[a] = append(byAgg[a], run)
	}
	errs := make([]error, numAgg)
	remaining := 0
	for _, part := range byAgg {
		if len(part) > 0 {
			remaining++
		}
	}
	c.seq++
	aggDone := sim.NewCompletion(fmt.Sprintf("pfs-coll-aggs%d", c.seq))
	for a := 0; a < numAgg; a++ {
		part := byAgg[a]
		if len(part) == 0 {
			continue
		}
		a := a
		aggNode := r.members[a*len(r.members)/numAgg].node
		c.seq++
		fs.eng.Spawn(fmt.Sprintf("pfs-coll-agg%d", c.seq), func(ap *sim.Process) {
			if !read {
				c.shuffle(ap, r.members, part, aggNode, true)
			}
			for _, run := range part {
				addr := f.arrayAddr(run.Offset/su, run.Offset%su, len(fs.ion), su)
				c.stats.RequestsOut++
				c.stats.BytesOut += run.Bytes
				c.stats.Out.Add(run.Bytes)
				if err := fs.chunkIO(ap, aggNode, f, run.ION, addr, run.Bytes, read, dl); err != nil {
					errs[a] = err
					break
				}
			}
			if read && errs[a] == nil {
				c.shuffle(ap, r.members, part, aggNode, false)
			}
			remaining--
			if remaining == 0 {
				aggDone.Complete(ap)
			}
		})
	}
	aggDone.Await(p)

	var roundErr error
	for _, e := range errs {
		if e != nil {
			roundErr = e
			break
		}
	}
	if roundErr == nil {
		if !read {
			f.extend(maxEnd)
		}
		for _, m := range r.members {
			if m.err == nil {
				m.done = m.n
			}
		}
	} else {
		for _, m := range r.members {
			if m.err == nil {
				m.err = roundErr
			}
		}
	}
	fs.msh.Broadcast(p, root, len(r.members), collPlanBytes)
	r.comp.Complete(p)
}

// shuffle charges one aggregator partition's data movement over the mesh:
// gather (members ship their bytes to the aggregator before it writes) or
// scatter (the aggregator distributes what it read). A member co-located
// with the aggregator moves nothing.
func (c *collState) shuffle(ap *sim.Process, members []*collMember, part []collective.Run, aggNode int, gather bool) {
	fs := c.fs
	for _, m := range members {
		if m.err != nil || m.n <= 0 || m.node == aggNode {
			continue
		}
		var b int64
		for _, run := range part {
			b += overlap(m.off, m.off+m.n, run.Offset, run.Offset+run.Bytes)
		}
		if b == 0 {
			continue
		}
		c.stats.ShuffleMsgs++
		c.stats.ShuffleBytes += b
		if gather {
			fs.msh.Transfer(ap, m.node, aggNode, b)
		} else {
			fs.msh.Transfer(ap, aggNode, m.node, b)
		}
	}
}

// chargeReadCopy applies the client-side record-copy cost a per-request read
// would have paid in doAt, keeping the collective path cost-comparable.
func (c *collState) chargeReadCopy(p *sim.Process, op iotrace.Op, done int64) {
	cost := c.fs.cfg.Cost
	if op == iotrace.OpRead && done > 0 && cost.ReadCopyBytesPerS > 0 && done >= cost.ReadCopyMin {
		p.Sleep(sim.Time(float64(done) / cost.ReadCopyBytesPerS * float64(sim.Second)))
	}
}

func overlap(aStart, aEnd, bStart, bEnd int64) int64 {
	s, e := aStart, aEnd
	if bStart > s {
		s = bStart
	}
	if bEnd < e {
		e = bEnd
	}
	if e <= s {
		return 0
	}
	return e - s
}
