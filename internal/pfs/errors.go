package pfs

import "errors"

// Errors returned by file-system operations. They are sentinel values so
// application and policy code can test with errors.Is.
var (
	// ErrNotExist is returned when opening a file that was never created.
	ErrNotExist = errors.New("pfs: file does not exist")

	// ErrExist is returned when creating a file that already exists.
	ErrExist = errors.New("pfs: file already exists")

	// ErrClosed is returned when operating on a closed handle.
	ErrClosed = errors.New("pfs: handle is closed")

	// ErrRecordLength is returned by M_RECORD accesses whose size differs
	// from the file's fixed record length.
	ErrRecordLength = errors.New("pfs: M_RECORD access size differs from record length")

	// ErrModeMismatch is returned when a file is concurrently opened with
	// conflicting shared-pointer modes.
	ErrModeMismatch = errors.New("pfs: conflicting access modes on shared file")

	// ErrBadSeek is returned for seeks to negative offsets or with an
	// unknown whence value.
	ErrBadSeek = errors.New("pfs: invalid seek")

	// ErrBadRequest is returned for negative-size transfers.
	ErrBadRequest = errors.New("pfs: invalid request size")

	// ErrEOF is returned by reads positioned at or beyond end of file.
	ErrEOF = errors.New("pfs: end of file")

	// ErrIONodeDown is returned when a transfer's I/O node is out of
	// service and the failover policy (if any) could not complete the
	// request elsewhere. It is the fatal I/O error of the fault-injection
	// scenarios; applications that see it either die (and are restarted
	// from a checkpoint) or surface it to the caller.
	ErrIONodeDown = errors.New("pfs: I/O node down and failover exhausted")

	// ErrDeadline is returned when a transfer's reliability-layer deadline
	// passes before its retries complete. Distinct from ErrIONodeDown so
	// callers can tell "gave up early by policy" from "retries exhausted".
	ErrDeadline = errors.New("pfs: request deadline exceeded")
)

// Seek whence values, matching the os package's convention.
const (
	SeekStart   = 0 // relative to file origin
	SeekCurrent = 1 // relative to current pointer
	SeekEnd     = 2 // relative to end of file
)
