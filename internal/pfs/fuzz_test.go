package pfs

import (
	"testing"

	"repro/internal/ionode"
	"repro/internal/iotrace"
)

// fuzzFS builds the minimal FileSystem skeleton the striping math reads:
// a stripe unit and an I/O-node count. The nodes themselves are never
// touched — only len(fs.ion) matters to the mapping (the placement ring is
// built lazily as the identity ring, matching a homogeneous unseeded fleet).
func fuzzFS(nion int, su int64) *FileSystem {
	return &FileSystem{cfg: Config{StripeUnit: su}, ion: make([]*ionode.Node, nion)}
}

// FuzzStripeRoundtrip checks that fileOffset is the exact inverse of the
// stripeIONode + arrayAddr placement for every file offset, on the primary
// copy and every replica slot the placement ring can assign. The corruption
// ledger depends on this roundtrip: a corrupt block is harvested in file
// coordinates at restart and re-injected through the forward mapping.
func FuzzStripeRoundtrip(f *testing.F) {
	f.Add(uint16(0), uint8(15), uint32(64*1024), uint64(0))
	f.Add(uint16(3), uint8(15), uint32(64*1024), uint64(200_000))
	f.Add(uint16(7), uint8(0), uint32(1), uint64(12345))       // single node, 1-byte stripes
	f.Add(uint16(1023), uint8(63), uint32(512), uint64(1<<29)) // large offset, many nodes
	f.Add(uint16(42), uint8(7), uint32(4096), uint64(4095))    // last byte of stripe 0
	f.Fuzz(func(t *testing.T, idRaw uint16, nionRaw uint8, suRaw uint32, offRaw uint64) {
		nion := int(nionRaw%64) + 1
		su := int64(suRaw%(1<<20)) + 1
		off := int64(offRaw % (1 << 30))
		id := iotrace.FileID(idRaw % 1024)

		fs := fuzzFS(nion, su)
		// Mirror newFile's placement rule without building a live machine.
		file := &File{fs: fs, id: id, firstIONode: int(id) % nion}

		stripe := off / su
		within := off % su
		node := file.stripeIONode(stripe, nion)
		if node < 0 || node >= nion {
			t.Fatalf("stripe %d mapped to node %d of %d", stripe, node, nion)
		}
		addr := file.arrayAddr(stripe, within, nion, su)
		local := addr - int64(id)<<34
		if local < 0 || local > localAddrMask {
			t.Fatalf("local address %d escapes the per-file region (mask %d)",
				local, localAddrMask)
		}

		for r := 0; r < MaxReplicationFactor; r++ {
			copyNode := fs.placer().target(node, r)
			if got := fs.fileOffset(file, copyNode, local, r); got != off {
				t.Fatalf("copy %d roundtrip: offset %d -> node %d local %d -> %d",
					r, off, copyNode, local, got)
			}
		}

		// The identity ring reproduces the legacy neighbour placement: copy 1
		// of node i lives on (i+1) mod N.
		if got := fs.placer().target(node, 1); got != (node+1)%nion {
			t.Fatalf("identity ring places copy 1 of %d on %d, want %d", node, got, (node+1)%nion)
		}

		// Replica address tags round-trip and never collide with the base
		// address bits.
		for r := 0; r < MaxReplicationFactor; r++ {
			base, gotR := splitReplicaAddr(replicaAddr(addr, r))
			if base != addr || gotR != r {
				t.Fatalf("replica tag roundtrip: (%d,%d) -> (%d,%d)", addr, r, base, gotR)
			}
		}

		// Consecutive stripes of one file on the same node are adjacent in its
		// array address space — the property the positioning-time model needs.
		nextSameNode := stripe + int64(nion)
		if file.stripeIONode(nextSameNode, nion) != node {
			t.Fatalf("stripe %d and %d not on the same node", stripe, nextSameNode)
		}
		if got := file.arrayAddr(nextSameNode, 0, nion, su); got != file.arrayAddr(stripe, 0, nion, su)+su {
			t.Fatalf("same-node stripes not adjacent: %d then %d (su %d)",
				file.arrayAddr(stripe, 0, nion, su), got, su)
		}

		// Adjacent file offsets never invert: walking forward through the file
		// walks forward within each node's region.
		if off+1 < int64(1)<<30 && (off+1)/su == stripe {
			if got := file.arrayAddr(stripe, within+1, nion, su); got != addr+1 {
				t.Fatalf("intra-stripe step: addr %d then %d", addr, got)
			}
		}
	})
}

// FuzzFileOffsetForward feeds fileOffset arbitrary (node, local, copy)
// triples and requires the forward mapping to reproduce them — the inverse
// direction of FuzzStripeRoundtrip, covering locals that no real offset
// produced.
func FuzzFileOffsetForward(f *testing.F) {
	f.Add(uint16(0), uint8(15), uint32(64*1024), uint8(3), uint64(64*1024*5+17), uint8(0))
	f.Add(uint16(9), uint8(7), uint32(4096), uint8(0), uint64(0), uint8(1))
	f.Add(uint16(511), uint8(31), uint32(512), uint8(200), uint64(1<<20), uint8(3))
	f.Fuzz(func(t *testing.T, idRaw uint16, nionRaw uint8, suRaw uint32, nodeRaw uint8, localRaw uint64, replicaRaw uint8) {
		nion := int(nionRaw%64) + 1
		su := int64(suRaw%(1<<20)) + 1
		node := int(nodeRaw) % nion
		local := int64(localRaw % (1 << 30))
		id := iotrace.FileID(idRaw % 1024)
		replica := int(replicaRaw) % MaxReplicationFactor

		fs := fuzzFS(nion, su)
		file := &File{fs: fs, id: id, firstIONode: int(id) % nion}

		off := fs.fileOffset(file, node, local, replica)
		if off < 0 {
			t.Fatalf("negative file offset %d from node %d local %d", off, node, local)
		}
		stripe := off / su
		primary := file.stripeIONode(stripe, nion)
		if wantNode := fs.placer().target(primary, replica); wantNode != node {
			t.Fatalf("offset %d (stripe %d) places copy %d on node %d, came from node %d",
				off, stripe, replica, wantNode, node)
		}
		if got := file.arrayAddr(stripe, off%su, nion, su) - int64(id)<<34; got != local {
			t.Fatalf("forward remap of offset %d gives local %d, want %d", off, got, local)
		}
	})
}
