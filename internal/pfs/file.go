package pfs

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// File is the per-file shared state: identity, extent, striping placement,
// and the synchronization objects that implement the shared-pointer modes.
type File struct {
	fs   *FileSystem
	id   iotrace.FileID
	name string
	size int64

	firstIONode int // stripe 0 lives here; stripes proceed round-robin

	// atomicity token: held across M_UNIX transfers (POSIX atomicity) and
	// M_UNIX seeks (PFS validated seeks with the I/O subsystem).
	token *sim.Resource

	// shared file pointer for M_LOG / M_SYNC / M_GLOBAL.
	sharedOff  int64
	sharedMode iotrace.AccessMode // which shared mode owns the pointer, if any

	// M_SYNC node-order sequencing.
	seq *sim.Sequencer

	// M_RECORD fixed record length (0 = not yet fixed).
	recordLen int64

	// M_GLOBAL rounds: round index -> in-flight round state.
	global map[int64]*globalRound

	openHandles int
}

type globalRound struct {
	comp  *sim.Completion
	bytes int64
	off   int64
}

func newFile(fs *FileSystem, id iotrace.FileID, name string) *File {
	return &File{
		fs:          fs,
		id:          id,
		name:        name,
		firstIONode: int(id) % len(fs.ion),
		token:       sim.NewResource(fs.eng, fmt.Sprintf("pfs-token-%s", name), 1),
		seq:         sim.NewSequencer(fs.eng, fmt.Sprintf("pfs-sync-%s", name)),
		global:      make(map[int64]*globalRound),
	}
}

// ID returns the file's trace identifier.
func (f *File) ID() iotrace.FileID { return f.id }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the current extent.
func (f *File) Size() int64 { return f.size }

// stripeIONode maps a file-relative stripe index to an I/O node.
func (f *File) stripeIONode(stripe int64, nion int) int {
	return (f.firstIONode + int(stripe%int64(nion))) % nion
}

// arrayAddr maps a (stripe, intra-stripe offset) to a synthetic array byte
// address such that consecutive stripes of this file on the same array are
// adjacent — so sequential file access is sequential at each array, which is
// what drives the positioning-time model.
func (f *File) arrayAddr(stripe, within int64, nion int, su int64) int64 {
	localChunk := stripe / int64(nion)
	return int64(f.id)<<34 + localChunk*su + within
}

// extend grows the file if the access reaches past the current size.
func (f *File) extend(end int64) {
	if end > f.size {
		f.size = end
	}
}

// checkMode enforces that a file is not simultaneously driven through two
// different shared-pointer disciplines.
func (f *File) checkMode(mode iotrace.AccessMode) error {
	shared := mode == iotrace.ModeLog || mode == iotrace.ModeSync || mode == iotrace.ModeGlobal
	if !shared {
		return nil
	}
	if f.sharedMode == iotrace.ModeNone || f.openHandles == 0 {
		f.sharedMode = mode
		return nil
	}
	if f.sharedMode != mode {
		return ErrModeMismatch
	}
	return nil
}

func (f *File) setRecordLen(n int64) error {
	if f.recordLen != 0 && f.recordLen != n {
		return ErrRecordLength
	}
	f.recordLen = n
	return nil
}

func (f *File) newHandle(node int, mode iotrace.AccessMode) *Handle {
	f.openHandles++
	return &Handle{fs: f.fs, file: f, node: node, mode: mode}
}
