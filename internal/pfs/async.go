package pfs

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// AsyncRead is an in-flight asynchronous read. The issuing call returns
// after the (small) issue cost; the transfer proceeds on a background
// process, and Wait charges the caller only the un-overlapped remainder —
// which the paper's instrumentation reports as "I/O Wait" time (Table 3).
type AsyncRead struct {
	h      *Handle
	comp   *sim.Completion
	bytes  int64
	err    error
	offset int64
	waited bool
}

// ReadAsync issues an asynchronous read of n bytes at the handle's current
// (independent) file pointer and advances the pointer immediately, so a
// caller can pipeline several reads — RENDER's explicit prefetch of its
// terrain files (§6.2). Only independent-pointer modes support async reads.
func (h *Handle) ReadAsync(p *sim.Process, n int64) (*AsyncRead, error) {
	if err := h.check(n); err != nil {
		return nil, err
	}
	switch h.mode {
	case iotrace.ModeUnix, iotrace.ModeAsync, iotrace.ModeNone:
	default:
		return nil, fmt.Errorf("pfs: ReadAsync on %v handle", h.mode)
	}
	fs, f := h.fs, h.file
	start := p.Now()
	if err := h.drainWriteBuffer(p); err != nil {
		return nil, err
	}
	p.Sleep(fs.cfg.Cost.AsyncIssue)

	off := h.offset
	// Clamp at EOF now, like the synchronous path.
	if off >= f.size {
		fs.record(h.node, iotrace.OpAsyncRead, f, off, 0, start, h.mode)
		return &AsyncRead{h: h, comp: preCompleted(p), err: ErrEOF, offset: off}, nil
	}
	if off+n > f.size {
		n = f.size - off
	}
	h.offset = off + n

	ar := &AsyncRead{h: h, comp: sim.NewCompletion(fmt.Sprintf("%s.aread@%d", f.name, off)), bytes: n, offset: off}
	fs.eng.Spawn(fmt.Sprintf("aread:%s@%d", f.name, off), func(bg *sim.Process) {
		if h.mode == iotrace.ModeUnix {
			f.token.Acquire(bg)
			ar.err = fs.transfer(bg, h.node, f, off, n, true)
			f.token.Release(bg)
		} else {
			ar.err = fs.transfer(bg, h.node, f, off, n, true)
		}
		if ar.err != nil {
			ar.bytes = 0
		}
		ar.comp.Complete(bg)
	})
	fs.record(h.node, iotrace.OpAsyncRead, f, off, n, start, h.mode)
	return ar, nil
}

func preCompleted(p *sim.Process) *sim.Completion {
	c := sim.NewCompletion("eof")
	c.Complete(p)
	return c
}

// Wait blocks until the read's data has arrived and returns the bytes read.
// The blocked time is captured as an I/O-wait event; a Wait on an already
// complete read costs (and records) zero wait, mirroring fully-overlapped
// prefetches.
func (ar *AsyncRead) Wait(p *sim.Process) (int64, error) {
	if ar.waited {
		return ar.bytes, ar.err
	}
	ar.waited = true
	fs, f := ar.h.fs, ar.h.file
	start := p.Now()
	ar.comp.Await(p)
	fs.record(ar.h.node, iotrace.OpIOWait, f, ar.offset, 0, start, ar.h.mode)
	return ar.bytes, ar.err
}

// Done reports whether the transfer has completed (without blocking).
func (ar *AsyncRead) Done() bool { return ar.comp.Done() }

// Bytes returns the transfer size decided at issue time.
func (ar *AsyncRead) Bytes() int64 { return ar.bytes }
