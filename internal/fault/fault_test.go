package fault

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/sim"
)

func testPlan() Plan {
	return Plan{
		Events: []Event{
			{Kind: IONodeOutage, At: 2 * sim.Second, Node: AnyNode, Duration: sim.Second},
			{Kind: DiskFailure, At: 5 * sim.Second, Node: 1},
		},
		Exps: []Exp{
			{Kind: LatencyStorm, MeanBetween: 3 * sim.Second, Start: 0, End: 20 * sim.Second,
				Node: AnyNode, Duration: 500 * sim.Millisecond, Factor: 3},
		},
		Cascades: []Cascade{
			{Kind: IONodeOutage, At: 10 * sim.Second, Nodes: 3, FirstNode: 2,
				Spacing: 100 * sim.Millisecond, Duration: sim.Second},
		},
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	pl := testPlan()
	a := pl.Materialize(42, 4, 8)
	b := pl.Materialize(42, 4, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed materialized different schedules")
	}
	c := pl.Materialize(43, 4, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds materialized identical schedules (suspicious)")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
	for _, e := range a {
		if e.Node < 0 || e.Node >= 4 {
			t.Fatalf("unresolved node %d", e.Node)
		}
	}
}

func TestMaterializeExpWindow(t *testing.T) {
	pl := Plan{Exps: []Exp{{
		Kind: IONodeOutage, MeanBetween: sim.Second,
		Start: 10 * sim.Second, End: 30 * sim.Second, Node: 0, Duration: sim.Second,
	}}}
	evs := pl.Materialize(7, 2, 8)
	if len(evs) == 0 {
		t.Fatal("20 s window at 1 s mean produced no failures")
	}
	for _, e := range evs {
		if e.At <= 10*sim.Second || e.At >= 30*sim.Second {
			t.Fatalf("arrival %v outside (10s, 30s)", e.At)
		}
	}
}

func TestMaterializeCascade(t *testing.T) {
	pl := Plan{Cascades: []Cascade{{
		Kind: LatencyStorm, At: sim.Second, Nodes: 3, FirstNode: 3,
		Spacing: sim.Second, Duration: sim.Second, Factor: 2,
	}}}
	evs := pl.Materialize(1, 4, 8)
	if len(evs) != 3 {
		t.Fatalf("cascade produced %d events, want 3", len(evs))
	}
	wantNodes := []int{3, 0, 1} // wraps mod 4
	for i, e := range evs {
		if e.Node != wantNodes[i] {
			t.Errorf("cascade hit %d on node %d, want %d", i, e.Node, wantNodes[i])
		}
		if e.At != sim.Second+sim.Time(i)*sim.Second {
			t.Errorf("cascade hit %d at %v", i, e.At)
		}
	}
}

func TestShiftForRestart(t *testing.T) {
	evs := []Event{
		{Kind: IONodeOutage, At: 1 * sim.Second, Duration: 2 * sim.Second},  // completed: dropped
		{Kind: IONodeOutage, At: 4 * sim.Second, Duration: 5 * sim.Second},  // spans: clamped
		{Kind: IONodeOutage, At: 10 * sim.Second, Duration: 1 * sim.Second}, // future: shifted
		{Kind: DiskFailure, At: 2 * sim.Second},                             // past disk: persists at 0
		{Kind: DiskFailure, At: 8 * sim.Second},                             // future disk: shifted
	}
	got := ShiftForRestart(evs, 6*sim.Second)
	want := []Event{
		{Kind: IONodeOutage, At: 0, Duration: 3 * sim.Second},
		{Kind: IONodeOutage, At: 4 * sim.Second, Duration: 1 * sim.Second},
		{Kind: DiskFailure, At: 0},
		{Kind: DiskFailure, At: 2 * sim.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ShiftForRestart = %+v, want %+v", got, want)
	}
}

func testNodes(eng *sim.Engine, n int, cfg disk.ArrayConfig) []*ionode.Node {
	nodes := make([]*ionode.Node, n)
	for i := range nodes {
		nodes[i] = ionode.New(eng, i, cfg)
	}
	return nodes
}

func TestInjectorOutageWindow(t *testing.T) {
	eng := sim.NewEngine()
	cfg := disk.DefaultArrayConfig()
	nodes := testNodes(eng, 2, cfg)
	inj := Inject(eng, nodes, []Event{
		{Kind: IONodeOutage, At: sim.Second, Node: 1, Duration: 2 * sim.Second},
	}, NodeLossHooks{})
	var during, after bool
	eng.SpawnAt("probe", 1500*sim.Millisecond, func(p *sim.Process) {
		during = nodes[1].Down()
		p.Sleep(2 * sim.Second)
		after = nodes[1].Down()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !during || after {
		t.Fatalf("down during=%v after=%v, want true/false", during, after)
	}
	incs := inj.Incidents()
	if len(incs) != 1 || incs[0].Open || incs[0].End-incs[0].Start != 2*sim.Second {
		t.Fatalf("incidents %+v", incs)
	}
}

func TestInjectorDiskFailureRebuilds(t *testing.T) {
	eng := sim.NewEngine()
	cfg := disk.DefaultArrayConfig()
	cfg.DiskCapacity = 8 << 20 // small drive: rebuild finishes quickly
	cfg.RebuildSliceBytes = 1 << 20
	cfg.RebuildBWBytesPerS = 4 << 20
	nodes := testNodes(eng, 1, cfg)
	inj := Inject(eng, nodes, []Event{{Kind: DiskFailure, At: sim.Second, Node: 0}}, NodeLossHooks{})
	var during bool
	eng.SpawnAt("probe", 1100*sim.Millisecond, func(p *sim.Process) {
		during = nodes[0].Array().Degraded()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !during {
		t.Error("array not degraded right after injection")
	}
	if nodes[0].Array().Degraded() || nodes[0].Array().Dead() {
		t.Error("array not rebuilt by end of run")
	}
	incs := inj.Incidents()
	if len(incs) != 1 || incs[0].Note != "rebuilt" || incs[0].Open {
		t.Fatalf("incidents %+v", incs)
	}
	// 8 MB at 4 MB/s rebuild bandwidth = 2 s of rebuild work.
	if got := incs[0].End - incs[0].Start; got != 2*sim.Second {
		t.Errorf("rebuild took %v, want 2s", got)
	}
	if st := nodes[0].Array().Stats(); st.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d", st.Rebuilds)
	}
}

func TestInjectorSecondDiskFailureKills(t *testing.T) {
	eng := sim.NewEngine()
	cfg := disk.DefaultArrayConfig() // full 1.2 GB: rebuild won't finish in time
	nodes := testNodes(eng, 1, cfg)
	inj := Inject(eng, nodes, []Event{
		{Kind: DiskFailure, At: sim.Second, Node: 0},
		{Kind: DiskFailure, At: 2 * sim.Second, Node: 0},
	}, NodeLossHooks{})
	if err := eng.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !nodes[0].Array().Dead() {
		t.Fatal("array survived two drive failures")
	}
	incs := inj.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents %+v", incs)
	}
	if incs[1].Note != "array dead (second drive failure)" {
		t.Errorf("second incident note %q", incs[1].Note)
	}
}

func TestInjectorStorm(t *testing.T) {
	eng := sim.NewEngine()
	nodes := testNodes(eng, 1, disk.DefaultArrayConfig())
	Inject(eng, nodes, []Event{
		{Kind: LatencyStorm, At: sim.Second, Node: 0, Duration: sim.Second, Factor: 4},
	}, NodeLossHooks{})
	var during float64
	eng.SpawnAt("probe", 1500*sim.Millisecond, func(p *sim.Process) {
		during = nodes[0].LatencyFactor()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if during != 4 {
		t.Errorf("factor during storm = %v, want 4", during)
	}
	if f := nodes[0].LatencyFactor(); f != 1 {
		t.Errorf("factor after storm = %v, want 1", f)
	}
}
