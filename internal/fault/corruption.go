package fault

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/sim"
)

// CorruptionPlan schedules silent data corruption against the I/O nodes'
// checksum stores: bit-rot as a per-node exponential arrival process scaled
// by resident data, plus per-write torn-write and misdirected-write
// probabilities armed on the write path. The zero value schedules nothing.
type CorruptionPlan struct {
	// BitRotPerGBHour is the bit-rot arrival rate per resident gigabyte per
	// hour on each node. The instantaneous rate tracks the node's tracked
	// data, so empty stores never rot.
	BitRotPerGBHour float64

	// Start and End bound the bit-rot window. End defaults to 600 s (the
	// chaos-window convention); the driver process terminates at End so the
	// engine can drain.
	Start, End sim.Time

	// TornWriteProb is the per-write probability that the write's final
	// block persists torn (unrepairable by parity).
	TornWriteProb float64

	// MisdirectProb is the per-write probability that the write also lands
	// on a random resident victim block, silently overwriting it.
	MisdirectProb float64
}

// Empty reports whether the plan schedules no corruption.
func (c CorruptionPlan) Empty() bool {
	return c.BitRotPerGBHour <= 0 && c.TornWriteProb <= 0 && c.MisdirectProb <= 0
}

// ParseCorruptionClasses builds a corruption plan from a comma-separated
// class list ("bit-rot,torn-write", or "all" for every class), using
// moderate default rates: bit-rot at 2e5 arrivals per GB-hour inside
// [0, window), and 2% torn/misdirected write probabilities. The CLI form of
// CorruptionPlan.
func ParseCorruptionClasses(spec string, window sim.Time) (CorruptionPlan, error) {
	cp := CorruptionPlan{End: window}
	if spec == "all" {
		spec = "bit-rot,torn-write,misdirected-write"
	}
	for _, name := range strings.Split(spec, ",") {
		k, err := ParseKind(strings.TrimSpace(name))
		if err != nil {
			return CorruptionPlan{}, err
		}
		switch k {
		case BitRot:
			cp.BitRotPerGBHour = 2e5
		case TornWrite:
			cp.TornWriteProb = 0.02
		case MisdirectedWrite:
			cp.MisdirectProb = 0.02
		default:
			return CorruptionPlan{}, fmt.Errorf("fault: %s is not a corruption class", k)
		}
	}
	return cp, nil
}

// ArmCorruption installs the corruption plan on a machine's I/O nodes:
// write-path injection policies are armed on every checksum store, and a
// bit-rot driver process is spawned per node. Each node gets independent RNG
// streams split deterministically from the seed (split before the
// integrity-enabled check, so a node's streams do not depend on which other
// nodes have the layer on). No-op when the plan is empty or the integrity
// layer is disabled.
func ArmCorruption(eng *sim.Engine, nodes []*ionode.Node, cp CorruptionPlan, seed uint64) {
	armCorruption(func(*ionode.Node) *sim.Engine { return eng }, nodes, cp, seed)
}

// ArmCorruptionPartitioned is ArmCorruption for a machine whose I/O nodes
// live on fabric shards: each node's bit-rot driver spawns on the node's
// owning engine (the checksum store must only ever be touched from there).
// The RNG stream derivation is identical to the serial form — splits happen
// per node in node order, before any engine placement — so a given seed rots
// the same blocks at the same instants regardless of how the nodes are
// sharded.
func ArmCorruptionPartitioned(owner func(node int) *sim.Engine, nodes []*ionode.Node, cp CorruptionPlan, seed uint64) {
	armCorruption(func(n *ionode.Node) *sim.Engine { return owner(n.ID()) }, nodes, cp, seed)
}

func armCorruption(engFor func(*ionode.Node) *sim.Engine, nodes []*ionode.Node, cp CorruptionPlan, seed uint64) {
	if cp.Empty() {
		return
	}
	end := cp.End
	if end <= 0 {
		end = 600 * sim.Second
	}
	base := sim.NewRNG(seed ^ 0xc0442557)
	for _, n := range nodes {
		writeRNG := base.Split()
		rotRNG := base.Split()
		st := n.Integrity()
		if st == nil {
			continue
		}
		st.Arm(cp.TornWriteProb, cp.MisdirectProb, writeRNG)
		if cp.BitRotPerGBHour <= 0 {
			continue
		}
		node := n
		engFor(n).SpawnAt(fmt.Sprintf("fault:bit-rot@ion%d", node.ID()), cp.Start,
			func(p *sim.Process) { runBitRot(p, node, cp.BitRotPerGBHour, end, rotRNG) })
	}
}

// runBitRot is one node's bit-rot driver: exponential gaps whose rate scales
// with the store's resident bytes, polling while the store is empty, standing
// down at the window end.
func runBitRot(p *sim.Process, n *ionode.Node, perGBHour float64, end sim.Time, rng *sim.RNG) {
	const emptyPoll = 500 * sim.Millisecond
	st := n.Integrity()
	for p.Now() < end {
		residentGB := float64(st.ResidentBytes()) / float64(1<<30)
		if residentGB <= 0 {
			if p.Now()+emptyPoll >= end {
				return
			}
			p.Sleep(emptyPoll)
			continue
		}
		rate := perGBHour * residentGB / 3600 // arrivals per simulated second
		gap := sim.Time(-float64(sim.Second) / rate * math.Log(1-rng.Float64()))
		if gap < 1 {
			gap = 1
		}
		if p.Now()+gap >= end {
			return
		}
		p.Sleep(gap)
		st.InjectBitRot(p.Now(), rng)
	}
}

// CorruptionIncidents converts the integrity layer's corruption events into
// incident-timeline entries, one per injected corruption, so the resilience
// report shows silent-data-corruption events alongside outages and disk
// failures. An event is Open when the corruption was never resolved (latent,
// or detected but unrepairable).
func CorruptionIncidents(events []integrity.Event) []Incident {
	var out []Incident
	for _, ev := range events {
		var kind Kind
		switch ev.Class {
		case integrity.BitRot:
			kind = BitRot
		case integrity.TornWrite:
			kind = TornWrite
		case integrity.Misdirected:
			kind = MisdirectedWrite
		default:
			continue
		}
		inc := Incident{Kind: kind, Node: ev.Node, Start: ev.InjectedAt}
		note := fmt.Sprintf("block %d", ev.Block)
		if ev.Carried {
			note += " (carried from previous attempt)"
		}
		switch {
		case ev.Resolution != integrity.ResOpen:
			inc.End = ev.ResolvedAt
			note += ": " + ev.Resolution.String()
			if ev.Detected {
				note += fmt.Sprintf(", detected by %s", ev.DetectedBy)
			}
		case ev.Detected:
			inc.Open = true
			inc.End = ev.DetectedAt
			note += fmt.Sprintf(": detected by %s, unrepairable", ev.DetectedBy)
		default:
			inc.Open = true
			note += ": latent, undetected"
		}
		inc.Note = note
		out = append(out, inc)
	}
	return out
}
