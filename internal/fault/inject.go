package fault

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/ionode"
	"repro/internal/sim"
)

// Incident is one fault's realized lifetime, recorded by the injector for the
// resilience report.
type Incident struct {
	Kind  Kind
	Node  int
	Start sim.Time
	End   sim.Time // meaningful only when Open is false
	Open  bool     // still in effect when the run ended
	Note  string   // e.g. "array dead (second drive failure)"
}

// NodeLossHooks connects NodeLoss events to the compute side of the machine,
// which the injector cannot reach through the I/O-node population. Nodes is
// the compute-partition size (loss events targeting nodes outside it are
// ignored); Undrained reports a node's volatile burst-log content at the loss
// instant (nil or zero without a burst tier); Halt freezes the simulation —
// the job is dead, and nothing (including background drains from surviving
// nodes' logs, which are equally volatile job state in this model) runs on.
type NodeLossHooks struct {
	Nodes     int
	Undrained func(node int) (bytes, records int64)
	Halt      func()

	// OnOutageStart / OnOutageEnd observe I/O-node outage windows: Start
	// fires when an outage takes the node down, End when the last
	// overlapping outage releases it back to service. The file system's
	// repair control plane uses them to stamp availability windows and wake
	// its drain. Nil disables the notifications.
	OnOutageStart func(node int, at sim.Time)
	OnOutageEnd   func(node int, at sim.Time)
}

// NodeLossEvent is one realized compute-node loss.
type NodeLossEvent struct {
	Node             int
	At               sim.Time
	UndrainedBytes   int64
	UndrainedRecords int64
}

// Injector owns the driver processes that realize a materialized schedule
// against a machine's I/O nodes. Create one per simulation run with Inject,
// before the engine runs.
type Injector struct {
	nodes     []*ionode.Node
	incidents []Incident
	downCount []int // overlapping-outage refcount per node
	hooks     NodeLossHooks
	losses    []NodeLossEvent
	subs      []*Injector // per-engine actuators on a partitioned machine
}

// Inject arms every event in the schedule: each fault gets a driver process
// spawned at its injection time. Events targeting nodes outside the machine
// are ignored. hooks wires NodeLoss events to the compute partition; the zero
// value disables them. The returned Injector accumulates the incident
// timeline.
func Inject(eng *sim.Engine, nodes []*ionode.Node, events []Event, hooks NodeLossHooks) *Injector {
	inj := &Injector{nodes: nodes, downCount: make([]int, len(nodes)), hooks: hooks}
	for _, ev := range events {
		ev := ev
		if ev.Kind == NodeLoss {
			if ev.Node < 0 || ev.Node >= hooks.Nodes {
				continue
			}
			name := fmt.Sprintf("fault:%v@node%d", ev.Kind, ev.Node)
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { inj.runNodeLoss(p, ev) })
			continue
		}
		if ev.Node < 0 || ev.Node >= len(nodes) {
			continue
		}
		name := fmt.Sprintf("fault:%v@ion%d", ev.Kind, ev.Node)
		switch ev.Kind {
		case IONodeOutage:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { inj.runOutage(p, ev) })
		case LatencyStorm:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { inj.runStorm(p, ev) })
		case DiskFailure:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { inj.runDiskFailure(p, ev) })
		}
	}
	return inj
}

// InjectPartitioned arms a schedule against a machine whose I/O nodes live on
// fabric shards. Faults that touch a node's service state (outages, storms,
// disk failures) must run on the node's owning engine, so each event's driver
// is spawned there, grouped into per-engine sub-injectors whose incident
// timelines merge into the returned root. Outage start/end hooks observe
// frontend-resident state (the repair planner's availability windows), so a
// separate observer driver mirrors each outage window on the frontend engine:
// both drivers sleep the same simulated interval from the same start instant,
// so the observer fires at the exact simulated times the actuator takes the
// node down and brings it back.
//
// NodeLoss events are rejected with an error: a compute-node loss halts the
// whole simulation, and there is no way to freeze every shard of a fabric
// mid-window deterministically. Use the serial engine (or model the loss as a
// fleet-level cell failure) for those schedules.
func InjectPartitioned(frontend *sim.Engine, owner func(node int) *sim.Engine,
	nodes []*ionode.Node, events []Event, hooks NodeLossHooks) (*Injector, error) {
	root := &Injector{nodes: nodes, downCount: make([]int, len(nodes)), hooks: hooks}
	byEngine := make(map[*sim.Engine]*Injector)
	subFor := func(eng *sim.Engine) *Injector {
		sub := byEngine[eng]
		if sub == nil {
			sub = &Injector{nodes: nodes, downCount: make([]int, len(nodes))}
			byEngine[eng] = sub
			root.subs = append(root.subs, sub)
		}
		return sub
	}
	for _, ev := range events {
		ev := ev
		if ev.Kind == NodeLoss {
			if ev.Node < 0 || ev.Node >= hooks.Nodes {
				continue
			}
			return nil, fmt.Errorf("fault: NodeLoss at node %d cannot be injected on a partitioned machine (halting all shards mid-run is unsupported); run serially or model it as a fleet cell failure", ev.Node)
		}
		if ev.Node < 0 || ev.Node >= len(nodes) {
			continue
		}
		eng := owner(ev.Node)
		sub := subFor(eng)
		name := fmt.Sprintf("fault:%v@ion%d", ev.Kind, ev.Node)
		switch ev.Kind {
		case IONodeOutage:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { sub.runOutage(p, ev) })
			if hooks.OnOutageStart != nil || hooks.OnOutageEnd != nil {
				frontend.SpawnAt(name+":observer", ev.At,
					func(p *sim.Process) { root.runOutageObserver(p, ev) })
			}
		case LatencyStorm:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { sub.runStorm(p, ev) })
		case DiskFailure:
			eng.SpawnAt(name, ev.At, func(p *sim.Process) { sub.runDiskFailure(p, ev) })
		}
	}
	return root, nil
}

// runOutageObserver mirrors one outage window on the frontend: the root
// injector's downCount refcounts overlapping windows per node, Start fires
// per event and End when the last overlap releases the node — the same
// notification contract runOutage delivers on a serial machine. The sub-
// injectors' hooks are zero, so the actuators never call back across shards.
func (inj *Injector) runOutageObserver(p *sim.Process, ev Event) {
	inj.downCount[ev.Node]++
	if inj.hooks.OnOutageStart != nil {
		inj.hooks.OnOutageStart(ev.Node, p.Now())
	}
	p.Sleep(ev.Duration)
	inj.downCount[ev.Node]--
	if inj.downCount[ev.Node] == 0 && inj.hooks.OnOutageEnd != nil {
		inj.hooks.OnOutageEnd(ev.Node, p.Now())
	}
}

// runNodeLoss kills a compute node: it snapshots the node's volatile
// burst-log content for the lost-work accounting, records the incident, and
// halts the simulation — the parallel job cannot survive a member's death.
// Only the first loss acts; the machine is already dead for any later one.
func (inj *Injector) runNodeLoss(p *sim.Process, ev Event) {
	if len(inj.losses) > 0 {
		return
	}
	loss := NodeLossEvent{Node: ev.Node, At: p.Now()}
	if inj.hooks.Undrained != nil {
		loss.UndrainedBytes, loss.UndrainedRecords = inj.hooks.Undrained(ev.Node)
	}
	inj.losses = append(inj.losses, loss)
	i := inj.begin(ev, p.Now())
	note := "compute node lost"
	if loss.UndrainedBytes > 0 {
		note = fmt.Sprintf("compute node lost, %d undrained log bytes in %d records",
			loss.UndrainedBytes, loss.UndrainedRecords)
	}
	inj.close(i, p.Now(), note)
	if inj.hooks.Halt != nil {
		inj.hooks.Halt()
	}
}

// FirstNodeLoss returns the realized compute-node loss that killed the run,
// if any.
func (inj *Injector) FirstNodeLoss() (NodeLossEvent, bool) {
	if len(inj.losses) == 0 {
		return NodeLossEvent{}, false
	}
	return inj.losses[0], true
}

// NodeLosses returns all realized compute-node losses.
func (inj *Injector) NodeLosses() []NodeLossEvent {
	out := make([]NodeLossEvent, len(inj.losses))
	copy(out, inj.losses)
	return out
}

// begin opens an incident and returns its index.
func (inj *Injector) begin(ev Event, at sim.Time) int {
	inj.incidents = append(inj.incidents, Incident{
		Kind: ev.Kind, Node: ev.Node, Start: at, Open: true,
	})
	return len(inj.incidents) - 1
}

func (inj *Injector) close(i int, at sim.Time, note string) {
	inc := &inj.incidents[i]
	inc.End = at
	inc.Open = false
	if note != "" {
		inc.Note = note
	}
}

// runOutage takes the node down for the event duration. Overlapping outages
// on one node are refcounted: the node returns to service when the last one
// ends.
func (inj *Injector) runOutage(p *sim.Process, ev Event) {
	n := inj.nodes[ev.Node]
	i := inj.begin(ev, p.Now())
	inj.downCount[ev.Node]++
	lost0, drains0, ranges0 := cacheOutageCounters(n)
	n.Fail(p)
	if inj.hooks.OnOutageStart != nil {
		inj.hooks.OnOutageStart(ev.Node, p.Now())
	}
	note := cacheOutageNote(n, lost0, drains0, ranges0)
	p.Sleep(ev.Duration)
	inj.downCount[ev.Node]--
	if inj.downCount[ev.Node] == 0 {
		n.Restore(p)
		if inj.hooks.OnOutageEnd != nil {
			inj.hooks.OnOutageEnd(ev.Node, p.Now())
		}
	}
	inj.close(i, p.Now(), note)
}

// cacheOutageCounters snapshots the node cache's outage counters (zero
// without a cache), including how many lost ranges were already recorded so
// the note can report only this outage's losses.
func cacheOutageCounters(n *ionode.Node) (lost, drains int64, ranges int) {
	if s, ok := n.CacheStats(); ok {
		return s.LostDirtyBlocks, s.OutageDrains, len(s.LostRanges)
	}
	return 0, 0, 0
}

// cacheOutageNote describes what the outage did to the node cache's dirty
// blocks — data lost under the write-behind crash policy is invisible in
// latency terms, so the incident timeline records it explicitly, naming the
// exact block ranges lost so the damage is attributable.
func cacheOutageNote(n *ionode.Node, lost0, drains0 int64, ranges0 int) string {
	s, ok := n.CacheStats()
	if !ok {
		return ""
	}
	if lost := s.LostDirtyBlocks - lost0; lost > 0 {
		note := fmt.Sprintf("%d dirty cache blocks lost", lost)
		if ranges0 <= len(s.LostRanges) {
			if fresh := s.LostRanges[ranges0:]; len(fresh) > 0 {
				note += " (blocks " + cache.FormatRanges(fresh) + ")"
				if s.LostRangesDropped > 0 {
					note += ", range list truncated"
				}
			}
		}
		return note
	}
	if s.OutageDrains > drains0 {
		return "dirty cache drained before outage"
	}
	return ""
}

// runStorm raises the node's latency factor for the event duration.
// Overlapping storms on one node do not stack; the most recent setting wins
// and nominal service resumes when the last-started storm ends.
func (inj *Injector) runStorm(p *sim.Process, ev Event) {
	n := inj.nodes[ev.Node]
	i := inj.begin(ev, p.Now())
	f := ev.Factor
	if f <= 0 {
		f = 1
	}
	n.SetLatencyFactor(f)
	p.Sleep(ev.Duration)
	n.SetLatencyFactor(1)
	inj.close(i, p.Now(), fmt.Sprintf("factor %.2g", f))
}

// runDiskFailure fails one drive and then runs the background rebuild: each
// slice acquires the node's service slot, so rebuild bandwidth and foreground
// requests contend for the array (FIFO, or through the node's disk-scheduling
// policy when one is installed). The incident closes when
// the rebuild completes; a second failure in the meantime kills the array and
// the incident records it. While the node itself is down the rebuild stalls,
// polling for the node's return.
func (inj *Injector) runDiskFailure(p *sim.Process, ev Event) {
	n := inj.nodes[ev.Node]
	arr := n.Array()
	wasDegraded := arr.Degraded()
	arr.FailDisk(p.Now())
	i := inj.begin(ev, p.Now())
	if arr.Dead() {
		inj.close(i, p.Now(), "array dead (second drive failure)")
		return
	}
	if wasDegraded {
		// Shouldn't happen (Degraded + one more = Dead), but stay safe.
		inj.close(i, p.Now(), "already degraded")
		return
	}
	const stallPoll = 100 * sim.Millisecond
	for {
		if err := n.AcquireService(p, -1, 0); err != nil {
			// Node is down; rebuild can't touch the array. Outages are
			// finite (driver processes restore them), so poll.
			p.Sleep(stallPoll)
			if arr.Dead() {
				inj.close(i, p.Now(), "array dead (second drive failure)")
				return
			}
			continue
		}
		slice, done := arr.RebuildSlice(p.Now())
		p.Sleep(slice)
		n.ReleaseService(p)
		if arr.Dead() {
			inj.close(i, p.Now(), "array dead (second drive failure)")
			return
		}
		if done {
			inj.close(i, p.Now(), "rebuilt")
			return
		}
	}
}

// Incidents returns the realized fault timeline, sorted by start time (ties
// by node then kind). Incidents still in effect when the run ended have Open
// set and End zero; CloseOpen stamps them instead.
func (inj *Injector) Incidents() []Incident {
	out := make([]Incident, 0, len(inj.incidents))
	out = append(out, inj.incidents...)
	// A partitioned node's events all land on one sub-injector (the node→
	// engine assignment is fixed), so cross-sub ties never share a node and
	// the (Start, Node, Kind) sort yields one canonical merged timeline.
	for _, sub := range inj.subs {
		out = append(out, sub.incidents...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// CloseOpen stamps every still-open incident with the given end time (the
// run's end) without clearing its Open marker, so reports can show both the
// exposure and that the fault outlived the run.
func (inj *Injector) CloseOpen(at sim.Time) {
	for i := range inj.incidents {
		if inj.incidents[i].Open {
			inj.incidents[i].End = at
		}
	}
	for _, sub := range inj.subs {
		sub.CloseOpen(at)
	}
}
