// Package fault is the chaos side of the machine model: it turns a declarative
// fault plan — fixed events, exponential inter-failure processes, n-node
// cascades — into a concrete, seeded schedule of incidents and injects them
// into a running simulation. Faults land on the machine's I/O nodes in three
// forms: a disk failure flips an I/O node's RAID-3 array into degraded mode
// (with a background rebuild contending against foreground requests), an
// I/O-node outage takes the node out of service (requests fail over or error
// with ErrIONodeDown), and a latency storm multiplies the node's service
// times for a while.
//
// Everything is deterministic: the same plan, seed, and I/O-node count
// materialize the same schedule, so two chaos runs with the same seed produce
// byte-identical reports.
package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Kind classifies a fault.
type Kind int

const (
	// DiskFailure takes one drive out of the target I/O node's RAID-3
	// array. The array runs degraded (reads pay parity reconstruction)
	// while a background rebuild competes with foreground requests; a
	// second failure before the rebuild completes kills the array.
	DiskFailure Kind = iota

	// IONodeOutage takes the whole I/O node out of service for Duration.
	IONodeOutage

	// LatencyStorm multiplies the node's service times by Factor for
	// Duration.
	LatencyStorm

	// BitRot is latent single-lane corruption of one resident block —
	// parity-repairable while the array still has its parity lane. Injected
	// by the corruption plan's exponential arrival process, not by discrete
	// events; the constant exists for incident-timeline labeling.
	BitRot

	// TornWrite is a partially persisted physical write: the parity lane is
	// torn along with the data, so only a rewrite or a replica recovers it.
	TornWrite

	// MisdirectedWrite is a well-formed write landing at the wrong offset,
	// silently overwriting a victim block; parity is consistent with the
	// wrong data, so detection rides on the checksum's embedded identity.
	MisdirectedWrite

	// NodeLoss kills a compute node (Event.Node indexes the compute
	// partition, not the I/O nodes). The job dies with it — and so does
	// everything in the node's volatile burst-buffer log, which is the
	// point: undrained checkpoint records are lost work the resilience
	// driver must account for. Duration is ignored; a lost node stays
	// lost for the attempt.
	NodeLoss
)

// String returns the kind's report label.
func (k Kind) String() string {
	switch k {
	case DiskFailure:
		return "disk-failure"
	case IONodeOutage:
		return "ionode-outage"
	case LatencyStorm:
		return "latency-storm"
	case BitRot:
		return "bit-rot"
	case TornWrite:
		return "torn-write"
	case MisdirectedWrite:
		return "misdirected-write"
	case NodeLoss:
		return "node-loss"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// ParseKind parses a report label ("disk-failure", "ionode-outage",
// "latency-storm") back into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "disk-failure":
		return DiskFailure, nil
	case "ionode-outage":
		return IONodeOutage, nil
	case "latency-storm":
		return LatencyStorm, nil
	case "bit-rot":
		return BitRot, nil
	case "torn-write":
		return TornWrite, nil
	case "misdirected-write":
		return MisdirectedWrite, nil
	case "node-loss":
		return NodeLoss, nil
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// AnyNode as an Event/Exp/Cascade node selects a node uniformly at random
// (per failure) when the plan is materialized.
const AnyNode = -1

// Event is one concrete scheduled fault.
type Event struct {
	Kind     Kind
	At       sim.Time // injection instant
	Node     int      // I/O-node index (compute-node index for NodeLoss), or AnyNode
	Duration sim.Time // outage/storm length; ignored for DiskFailure and NodeLoss
	Factor   float64  // latency-storm service multiplier (> 1)
}

// Exp is a Poisson failure process: failures of the given kind arrive with
// exponentially distributed gaps of mean MeanBetween inside [Start, End).
type Exp struct {
	Kind        Kind
	MeanBetween sim.Time
	Start, End  sim.Time
	Node        int // fixed target, or AnyNode per failure
	Duration    sim.Time
	Factor      float64
}

// Cascade is a correlated multi-node failure: starting at At, Nodes
// consecutive I/O nodes (FirstNode, FirstNode+1, ...) suffer the same fault,
// Spacing apart — a rack losing power switch by switch.
type Cascade struct {
	Kind      Kind
	At        sim.Time
	Nodes     int
	FirstNode int // first node hit, or AnyNode
	Spacing   sim.Time
	Duration  sim.Time
	Factor    float64
}

// Plan is a declarative chaos schedule. The zero Plan is empty: no faults,
// and the simulation is bit-identical to a run without the fault subsystem.
type Plan struct {
	Events   []Event
	Exps     []Exp
	Cascades []Cascade

	// Corruption schedules silent data corruption (bit-rot arrivals plus
	// torn/misdirected write probabilities). It requires the PFS integrity
	// layer; without it the corruption plan has no stores to land on and is
	// ignored.
	Corruption CorruptionPlan
}

// Empty reports whether the plan schedules nothing.
func (pl Plan) Empty() bool {
	return len(pl.Events) == 0 && len(pl.Exps) == 0 && len(pl.Cascades) == 0 &&
		pl.Corruption.Empty()
}

// Materialize expands the plan into a concrete event schedule for a machine
// with the given number of I/O nodes and compute nodes, resolving AnyNode
// targets and drawing exponential arrivals from a generator seeded with seed.
// NodeLoss events resolve against the compute partition; every other kind
// against the I/O nodes. The expansion is deterministic: events are resolved
// in plan order, then each Exp and each Cascade in order, and the result is
// sorted by injection time (stable, so same-instant events keep plan order).
// Random node draws happen only for AnyNode targets, so a plan without them
// materializes identically at any partition size.
func (pl Plan) Materialize(seed uint64, ionodes, computeNodes int) []Event {
	if ionodes < 1 {
		panic("fault: Materialize with no I/O nodes")
	}
	if computeNodes < 1 {
		computeNodes = 1
	}
	rng := sim.NewRNG(seed)
	pickIn := func(node, pool int) int {
		if node == AnyNode {
			return rng.Intn(pool)
		}
		return ((node % pool) + pool) % pool
	}
	pool := func(k Kind) int {
		if k == NodeLoss {
			return computeNodes
		}
		return ionodes
	}
	pick := func(k Kind, node int) int { return pickIn(node, pool(k)) }

	var out []Event
	for _, e := range pl.Events {
		e.Node = pick(e.Kind, e.Node)
		out = append(out, e)
	}
	for _, x := range pl.Exps {
		if x.MeanBetween <= 0 || x.End <= x.Start {
			continue
		}
		at := x.Start
		for {
			// Exponential gap: -mean * ln(1-U).
			gap := sim.Time(-float64(x.MeanBetween) * math.Log(1-rng.Float64()))
			if gap < sim.Time(1) {
				gap = 1
			}
			at += gap
			if at >= x.End {
				break
			}
			out = append(out, Event{
				Kind: x.Kind, At: at, Node: pick(x.Kind, x.Node),
				Duration: x.Duration, Factor: x.Factor,
			})
		}
	}
	for _, c := range pl.Cascades {
		if c.Nodes < 1 {
			continue
		}
		first := pick(c.Kind, c.FirstNode)
		for i := 0; i < c.Nodes; i++ {
			out = append(out, Event{
				Kind: c.Kind, At: c.At + sim.Time(i)*c.Spacing,
				Node:     (first + i) % pool(c.Kind),
				Duration: c.Duration, Factor: c.Factor,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ShiftForRestart rebases a materialized schedule onto a machine rebuilt at
// absolute time start (a restart from checkpoint). Transient faults (outages,
// storms) that completed before start are dropped; one spanning start keeps
// only its remaining duration, injected immediately. Disk failures persist —
// a drive that failed before the restart is still out when the machine comes
// back, so its event is re-injected at time zero (restarting its rebuild from
// scratch, the pessimistic assumption).
func ShiftForRestart(events []Event, start sim.Time) []Event {
	var out []Event
	for _, e := range events {
		switch {
		case e.Kind == DiskFailure:
			if e.At >= start {
				e.At -= start
			} else {
				e.At = 0
			}
			out = append(out, e)
		case e.At >= start:
			e.At -= start
			out = append(out, e)
		case e.At+e.Duration > start:
			e.Duration = e.At + e.Duration - start
			e.At = 0
			out = append(out, e)
		}
	}
	return out
}
