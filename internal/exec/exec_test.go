package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapNPreservesSubmissionOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		got, err := MapN(workers, items, func(i, item int) (int, error) {
			if i != item {
				t.Errorf("index %d got item %d", i, item)
			}
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNEmpty(t *testing.T) {
	got, err := MapN(4, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

// The error returned must be the lowest-index failure — what a sequential
// loop would have surfaced — regardless of completion order.
func TestMapNLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4, 8} {
		_, err := MapN(workers, items, func(i, item int) (int, error) {
			if item >= 3 {
				// Later failures finish first.
				time.Sleep(time.Duration(8-item) * time.Millisecond)
				return 0, fmt.Errorf("item %d failed", item)
			}
			return item, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3's error", workers, err)
		}
	}
}

func TestMapNBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 64)
	_, err := MapN(workers, items, func(i, item int) (int, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("overridden workers = %d, want 5", got)
	}
	SetWorkers(-3)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative override should restore default, got %d", got)
	}
}

// Map results must be identical at every worker count — the executor-level
// half of the sweep determinism guarantee.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	defer SetWorkers(0)
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []int {
		SetWorkers(workers)
		got, err := Map(items, func(i, item int) (int, error) {
			return 31*item + i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMapNSingleWorkerStopsAtFirstError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := MapN(1, []int{0, 1, 2}, func(i, item int) (int, error) {
		calls.Add(1)
		if item == 1 {
			return 0, boom
		}
		return item, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("sequential path ran %d items, want 2 (stop at first error)", calls.Load())
	}
}
