// Package exec is the parallel sweep executor: a bounded worker pool that
// fans independent simulation runs out across cores and collects their
// results in deterministic submission order.
//
// Every sweep in this reproduction — the cache and corruption studies, the
// access-mode comparisons, the scaling and checkpoint-tradeoff curves — is a
// set of fully independent core.Run/core.RunResilient invocations: each run
// builds its own engine, machine, file system and analysis accumulators, and
// every stochastic component draws from an explicitly seeded sim.RNG. Runs
// therefore parallelize without any shared mutable state, and because results
// are delivered by submission index (never by completion order), a sweep's
// output is byte-identical at any worker count, including 1.
//
// Error handling is deterministic too: when items fail, Map runs the whole
// sweep and returns the error of the lowest-index failing item, exactly what
// a sequential loop would have surfaced first. (Sweeps fail rarely, so the
// extra work on the error path is irrelevant; determinism is not.)
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured default worker count; <= 0 selects
// GOMAXPROCS at call time.
var workers atomic.Int64

// Workers reports the worker count Map uses: the last SetWorkers value, or
// GOMAXPROCS when none has been set.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default worker count for subsequent Map calls
// (the CLIs' -parallel flag lands here). n <= 0 restores the GOMAXPROCS
// default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Map applies fn to every item on the default worker pool and returns the
// results in submission order. See MapN.
func Map[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapN(Workers(), items, fn)
}

// MapN applies fn to every item using up to workers concurrent goroutines
// (workers <= 0 selects the package default) and returns the results indexed
// exactly like items. fn must be safe to call concurrently for distinct
// items; each call receives the item's submission index.
//
// With one worker (or one item) fn runs inline on the caller's goroutine —
// the -parallel=1 path is the plain sequential loop, not a degenerate pool.
func MapN[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	if workers == 1 {
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
