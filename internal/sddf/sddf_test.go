package sddf

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

func sampleDescriptor() Descriptor {
	return Descriptor{
		Tag:  7,
		Name: "sample record",
		Fields: []Field{
			{Name: "count", Type: TInt32},
			{Name: "bytes", Type: TInt64},
			{Name: "ratio", Type: TFloat64},
			{Name: "label", Type: TString},
		},
	}
}

func sampleRecord() Record {
	return Record{Tag: 7, Values: []any{int32(-3), int64(1 << 40), 0.125, `quo"ted \ value`}}
}

func roundTrip(t *testing.T, ascii bool) {
	t.Helper()
	var buf bytes.Buffer
	var err error
	var wd interface {
		WriteDescriptor(Descriptor) error
		WriteRecord(Record) error
		Flush() error
	}
	if ascii {
		wd, err = NewASCIIWriter(&buf)
	} else {
		wd, err = NewBinaryWriter(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.WriteDescriptor(sampleDescriptor()); err != nil {
		t.Fatal(err)
	}
	if err := wd.WriteRecord(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := wd.Flush(); err != nil {
		t.Fatal(err)
	}

	var rd interface{ Next() (any, error) }
	if ascii {
		rd, err = NewASCIIReader(&buf)
	} else {
		rd, err = NewBinaryReader(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	item, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := item.(Descriptor)
	if !ok || !reflect.DeepEqual(d, sampleDescriptor()) {
		t.Fatalf("descriptor round trip: %#v", item)
	}
	item, err = rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := item.(Record)
	if !ok || !reflect.DeepEqual(r, sampleRecord()) {
		t.Fatalf("record round trip: %#v", item)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) { roundTrip(t, false) }
func TestASCIIRoundTrip(t *testing.T)  { roundTrip(t, true) }

func TestRecordBeforeDescriptorRejected(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	if err := bw.WriteRecord(sampleRecord()); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("binary: %v", err)
	}
	aw, _ := NewASCIIWriter(&buf)
	if err := aw.WriteRecord(sampleRecord()); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("ascii: %v", err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.WriteDescriptor(sampleDescriptor())
	bad := Record{Tag: 7, Values: []any{int64(1), int64(2), 0.5, "x"}} // first should be int32
	if err := bw.WriteRecord(bad); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("type mismatch: %v", err)
	}
	short := Record{Tag: 7, Values: []any{int32(1)}}
	if err := bw.WriteRecord(short); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("arity mismatch: %v", err)
	}
}

func TestDuplicateTagRejected(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.WriteDescriptor(sampleDescriptor())
	if err := bw.WriteDescriptor(sampleDescriptor()); !errors.Is(err, ErrDuplicateTag) {
		t.Fatalf("dup: %v", err)
	}
}

func TestBadHeaders(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("garbage stream")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("binary: %v", err)
	}
	if _, err := NewASCIIReader(strings.NewReader("not sddf\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ascii: %v", err)
	}
}

func TestTruncatedBinaryStream(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.WriteDescriptor(sampleDescriptor())
	bw.WriteRecord(sampleRecord())
	bw.Flush()
	full := buf.Bytes()
	// Chop mid-record.
	br, err := NewBinaryReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err != nil {
		t.Fatal(err) // descriptor ok
	}
	if _, err := br.Next(); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestASCIICommentsAndBlanksSkipped(t *testing.T) {
	text := "#SDDFA 1\n" +
		"# a comment\n" +
		"\n" +
		"#D 1 \"r\" x:int32\n" +
		"1 42\n"
	ar, err := NewASCIIReader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Next(); err != nil {
		t.Fatal(err)
	}
	item, err := ar.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r := item.(Record); r.Values[0].(int32) != 42 {
		t.Fatalf("record %v", r)
	}
}

func TestFieldTypeParse(t *testing.T) {
	for _, ft := range []FieldType{TInt32, TInt64, TFloat64, TString} {
		back, err := ParseFieldType(ft.String())
		if err != nil || back != ft {
			t.Fatalf("round trip %v: %v %v", ft, back, err)
		}
	}
	if _, err := ParseFieldType("bogus"); err == nil {
		t.Fatal("bogus type parsed")
	}
}

func sampleEvents() []iotrace.Event {
	return []iotrace.Event{
		{Seq: 1, Node: 0, Op: iotrace.OpOpen, File: 9, Start: 0, End: sim.Second, Mode: iotrace.ModeUnix, Phase: "init"},
		{Seq: 2, Node: 5, Op: iotrace.OpWrite, File: 9, Offset: 2048, Bytes: 2048,
			Start: 2 * sim.Second, End: 3 * sim.Second, Mode: iotrace.ModeUnix, Phase: "quadrature"},
		{Seq: 3, Node: 5, Op: iotrace.OpIOWait, File: 3, Start: 4 * sim.Second, End: 5 * sim.Second,
			Mode: iotrace.ModeAsync, Phase: "render \"x\""},
	}
}

func TestTraceRoundTripBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleEvents(), false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Fatalf("binary trace round trip:\n got %#v", got)
	}
}

func TestTraceRoundTripASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleEvents(), true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Fatalf("ascii trace round trip:\n got %#v", got)
	}
}

func TestReadTraceRejectsInvalidOp(t *testing.T) {
	bad := sampleEvents()
	bad[0].Op = iotrace.Op(99)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, bad, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("invalid op accepted: %v", err)
	}
}

func TestReadTraceEmpty(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty stream: %v", err)
	}
}

// Property: any event with printable phase text survives binary round trip.
func TestEventRoundTripProperty(t *testing.T) {
	prop := func(seq int64, node uint8, op uint8, file uint8, off, n int64, s, e uint32, phase string) bool {
		ev := iotrace.Event{
			Seq:  seq,
			Node: int(node),
			Op:   iotrace.Op(int(op) % iotrace.NumOps),
			File: iotrace.FileID(file),
			Offset: func() int64 {
				if off < 0 {
					return -off
				}
				return off
			}(),
			Bytes: func() int64 {
				if n < 0 {
					return -n
				}
				return n
			}(),
			Start: sim.Time(s),
			End:   sim.Time(s) + sim.Time(e),
			Mode:  iotrace.ModeUnix,
			Phase: phase,
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, []iotrace.Event{ev}, false); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == ev
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
