package sddf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// binaryMagic introduces a binary SDDF stream.
const binaryMagic = "SDDFB1\n"

const (
	packetDescriptor byte = 'D'
	packetRecord     byte = 'R'
)

// maxStringLen bounds decoded string sizes to keep malformed streams from
// allocating unboundedly.
const maxStringLen = 1 << 20

// BinaryWriter encodes descriptors and records into the binary SDDF framing:
// a magic header, then length-prefixed packets.
type BinaryWriter struct {
	w     *bufio.Writer
	descs map[int]Descriptor
}

// NewBinaryWriter writes the stream header and returns a writer.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriter(w), descs: make(map[int]Descriptor)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	return bw, nil
}

// WriteDescriptor emits a descriptor packet and registers the tag.
func (bw *BinaryWriter) WriteDescriptor(d Descriptor) error {
	if _, dup := bw.descs[d.Tag]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateTag, d.Tag)
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(d.Tag))
	buf = appendString(buf, d.Name)
	buf = binary.AppendUvarint(buf, uint64(len(d.Fields)))
	for _, f := range d.Fields {
		buf = appendString(buf, f.Name)
		buf = append(buf, byte(f.Type))
	}
	bw.descs[d.Tag] = d
	return bw.packet(packetDescriptor, buf)
}

// WriteRecord validates the record against its descriptor and emits it.
func (bw *BinaryWriter) WriteRecord(r Record) error {
	d, ok := bw.descs[r.Tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTag, r.Tag)
	}
	if err := validate(d, r); err != nil {
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(r.Tag))
	for _, v := range r.Values {
		switch x := v.(type) {
		case int32:
			buf = binary.AppendVarint(buf, int64(x))
		case int64:
			buf = binary.AppendVarint(buf, x)
		case float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		case string:
			buf = appendString(buf, x)
		}
	}
	return bw.packet(packetRecord, buf)
}

// Flush pushes buffered output to the underlying writer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

func (bw *BinaryWriter) packet(kind byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.w.Write(payload)
	return err
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// BinaryReader decodes a binary SDDF stream.
type BinaryReader struct {
	r     *bufio.Reader
	descs map[int]Descriptor
}

// NewBinaryReader checks the stream header and returns a reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReader(r), descs: make(map[int]Descriptor)}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	return br, nil
}

// Next returns the next stream item: a Descriptor or a Record. At end of
// stream it returns io.EOF.
func (br *BinaryReader) Next() (any, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated packet header: %v", ErrBadFormat, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > 1<<26 {
		return nil, fmt.Errorf("%w: packet of %d bytes", ErrBadFormat, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br.r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated packet: %v", ErrBadFormat, err)
	}
	switch hdr[4] {
	case packetDescriptor:
		return br.decodeDescriptor(payload)
	case packetRecord:
		return br.decodeRecord(payload)
	default:
		return nil, fmt.Errorf("%w: unknown packet kind %q", ErrBadFormat, hdr[4])
	}
}

// Descriptors returns the descriptors seen so far, keyed by tag.
func (br *BinaryReader) Descriptors() map[int]Descriptor { return br.descs }

type byteCursor struct {
	buf []byte
	pos int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadFormat)
	}
	c.pos += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadFormat)
	}
	c.pos += n
	return v, nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || c.pos+int(n) > len(c.buf) {
		return "", fmt.Errorf("%w: bad string length %d", ErrBadFormat, n)
	}
	s := string(c.buf[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

func (c *byteCursor) f64() (float64, error) {
	if c.pos+8 > len(c.buf) {
		return 0, fmt.Errorf("%w: truncated float", ErrBadFormat)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.buf[c.pos:]))
	c.pos += 8
	return v, nil
}

func (br *BinaryReader) decodeDescriptor(payload []byte) (Descriptor, error) {
	c := &byteCursor{buf: payload}
	tag, err := c.uvarint()
	if err != nil {
		return Descriptor{}, err
	}
	name, err := c.str()
	if err != nil {
		return Descriptor{}, err
	}
	nf, err := c.uvarint()
	if err != nil {
		return Descriptor{}, err
	}
	if nf > 1<<16 {
		return Descriptor{}, fmt.Errorf("%w: %d fields", ErrBadFormat, nf)
	}
	d := Descriptor{Tag: int(tag), Name: name}
	for i := uint64(0); i < nf; i++ {
		fn, err := c.str()
		if err != nil {
			return Descriptor{}, err
		}
		if c.pos >= len(c.buf) {
			return Descriptor{}, fmt.Errorf("%w: truncated field type", ErrBadFormat)
		}
		ft := FieldType(c.buf[c.pos])
		c.pos++
		if ft < TInt32 || ft > TString {
			return Descriptor{}, fmt.Errorf("%w: field type %d", ErrBadFormat, ft)
		}
		d.Fields = append(d.Fields, Field{Name: fn, Type: ft})
	}
	if _, dup := br.descs[d.Tag]; dup {
		return Descriptor{}, fmt.Errorf("%w: %d", ErrDuplicateTag, d.Tag)
	}
	br.descs[d.Tag] = d
	return d, nil
}

func (br *BinaryReader) decodeRecord(payload []byte) (Record, error) {
	c := &byteCursor{buf: payload}
	tag, err := c.uvarint()
	if err != nil {
		return Record{}, err
	}
	d, ok := br.descs[int(tag)]
	if !ok {
		return Record{}, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	r := Record{Tag: int(tag), Values: make([]any, 0, len(d.Fields))}
	for _, f := range d.Fields {
		switch f.Type {
		case TInt32:
			v, err := c.varint()
			if err != nil {
				return Record{}, err
			}
			r.Values = append(r.Values, int32(v))
		case TInt64:
			v, err := c.varint()
			if err != nil {
				return Record{}, err
			}
			r.Values = append(r.Values, v)
		case TFloat64:
			v, err := c.f64()
			if err != nil {
				return Record{}, err
			}
			r.Values = append(r.Values, v)
		case TString:
			v, err := c.str()
			if err != nil {
				return Record{}, err
			}
			r.Values = append(r.Values, v)
		}
	}
	return r, nil
}
