package sddf

import (
	"bytes"
	"testing"

	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
)

// buildReductions feeds a small synthetic trace through all three reducers.
func buildReductions() (*pablo.LifetimeReducer, *pablo.WindowReducer, *pablo.RegionReducer) {
	lt := pablo.NewLifetimeReducer()
	win := pablo.NewWindowReducer(10 * sim.Second)
	reg := pablo.NewRegionReducer(4096)
	events := []iotrace.Event{
		{Op: iotrace.OpOpen, File: 1, Start: 0, End: sim.Second},
		{Op: iotrace.OpWrite, File: 1, Offset: 0, Bytes: 6000, Start: 2 * sim.Second, End: 3 * sim.Second},
		{Op: iotrace.OpRead, File: 1, Offset: 0, Bytes: 2000, Start: 15 * sim.Second, End: 16 * sim.Second},
		{Op: iotrace.OpClose, File: 1, Start: 20 * sim.Second, End: 21 * sim.Second},
		{Op: iotrace.OpWrite, File: 2, Offset: 8192, Bytes: 100, Start: 25 * sim.Second, End: 26 * sim.Second},
	}
	for _, e := range events {
		lt.Reduce(e)
		win.Reduce(e)
		reg.Reduce(e)
	}
	return lt, win, reg
}

func TestWriteSummariesRoundTripBothEncodings(t *testing.T) {
	lt, win, reg := buildReductions()
	for _, ascii := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteSummaries(&buf, ascii, lt, win, reg, 30*sim.Second); err != nil {
			t.Fatalf("ascii=%v: %v", ascii, err)
		}
		c, err := CountSummaries(&buf)
		if err != nil {
			t.Fatalf("ascii=%v: %v", ascii, err)
		}
		// 2 files; 3 windows (0s, 10s, 20s starts); regions: file1 blocks
		// 0+1 (write spans 6000) + block 0 read (same region) and file2
		// block 2 => 3 distinct regions.
		if c.Lifetimes != 2 {
			t.Errorf("ascii=%v lifetimes %d, want 2", ascii, c.Lifetimes)
		}
		if c.Windows != 3 {
			t.Errorf("ascii=%v windows %d, want 3", ascii, c.Windows)
		}
		if c.Regions != 3 {
			t.Errorf("ascii=%v regions %d, want 3", ascii, c.Regions)
		}
	}
}

func TestWriteSummariesNilReducersSkipped(t *testing.T) {
	lt, _, _ := buildReductions()
	var buf bytes.Buffer
	if err := WriteSummaries(&buf, false, lt, nil, nil, sim.Second); err != nil {
		t.Fatal(err)
	}
	c, err := CountSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lifetimes != 2 || c.Windows != 0 || c.Regions != 0 {
		t.Fatalf("counts %+v", c)
	}
}

func TestSummaryRecordFieldsValidate(t *testing.T) {
	// Every record constructor must match its descriptor.
	lt, win, reg := buildReductions()
	cases := []struct {
		d Descriptor
		r Record
	}{
		{LifetimeDescriptor(), LifetimeRecord(lt.Files()[0], sim.Second)},
		{WindowDescriptor(), WindowRecord(win.Windows()[0], win.Width())},
		{RegionDescriptor(), RegionRecord(reg.Regions()[0], reg.Size())},
	}
	for _, c := range cases {
		if err := validate(c.d, c.r); err != nil {
			t.Errorf("%s: %v", c.d.Name, err)
		}
	}
}

func TestLifetimeRecordContent(t *testing.T) {
	lt, _, _ := buildReductions()
	f := lt.File(1)
	rec := LifetimeRecord(f, 30*sim.Second)
	// First value is the file id.
	if rec.Values[0].(int32) != 1 {
		t.Fatalf("file id %v", rec.Values[0])
	}
	// Trailing triple: bytes read, bytes written, open time.
	n := len(rec.Values)
	if rec.Values[n-3].(int64) != 2000 || rec.Values[n-2].(int64) != 6000 {
		t.Fatalf("byte totals %v %v", rec.Values[n-3], rec.Values[n-2])
	}
	if rec.Values[n-1].(int64) != int64(20*sim.Second) {
		t.Fatalf("open time %v", rec.Values[n-1])
	}
}

func TestCountSummariesEmptyStream(t *testing.T) {
	if _, err := CountSummaries(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}
