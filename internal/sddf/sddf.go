// Package sddf implements a Self-Defining Data Format in the style of the
// Pablo environment's SDDF: a performance-data metaformat that "separates the
// structure of performance data records from their semantics" (§3.1). A
// stream consists of record *descriptors* — named, tagged field layouts —
// followed by data *records* that reference a descriptor by tag. Both a
// compact binary encoding and a human-readable ASCII encoding are provided,
// and they round-trip losslessly.
package sddf

import (
	"errors"
	"fmt"
)

// FieldType enumerates the primitive field types a descriptor may declare.
type FieldType int

// Supported field types.
const (
	TInt32 FieldType = iota
	TInt64
	TFloat64
	TString
)

var typeNames = [...]string{TInt32: "int32", TInt64: "int64", TFloat64: "float64", TString: "string"}

// String returns the type's name as used in the ASCII encoding.
func (t FieldType) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
	return typeNames[t]
}

// ParseFieldType is the inverse of FieldType.String.
func ParseFieldType(s string) (FieldType, error) {
	for i, n := range typeNames {
		if n == s {
			return FieldType(i), nil
		}
	}
	return 0, fmt.Errorf("sddf: unknown field type %q", s)
}

// Field is one named, typed slot in a record layout.
type Field struct {
	Name string
	Type FieldType
}

// Descriptor declares a record layout: a stream-unique tag, a record name,
// and an ordered field list.
type Descriptor struct {
	Tag    int
	Name   string
	Fields []Field
}

// Record is one data record: the tag of its descriptor and one value per
// descriptor field, with concrete types int32, int64, float64 or string.
type Record struct {
	Tag    int
	Values []any
}

// Errors shared by the encoders and decoders.
var (
	// ErrUnknownTag is returned when a record references a tag with no
	// preceding descriptor.
	ErrUnknownTag = errors.New("sddf: record references unknown descriptor tag")

	// ErrTypeMismatch is returned when a record's values do not match its
	// descriptor's field types.
	ErrTypeMismatch = errors.New("sddf: record value type mismatch")

	// ErrBadFormat is returned for malformed input streams.
	ErrBadFormat = errors.New("sddf: malformed stream")

	// ErrDuplicateTag is returned when two descriptors claim one tag.
	ErrDuplicateTag = errors.New("sddf: duplicate descriptor tag")
)

// validate checks a record's arity and value types against its descriptor.
func validate(d Descriptor, r Record) error {
	if len(r.Values) != len(d.Fields) {
		return fmt.Errorf("%w: record %q has %d values, descriptor has %d fields",
			ErrTypeMismatch, d.Name, len(r.Values), len(d.Fields))
	}
	for i, f := range d.Fields {
		ok := false
		switch f.Type {
		case TInt32:
			_, ok = r.Values[i].(int32)
		case TInt64:
			_, ok = r.Values[i].(int64)
		case TFloat64:
			_, ok = r.Values[i].(float64)
		case TString:
			_, ok = r.Values[i].(string)
		}
		if !ok {
			return fmt.Errorf("%w: field %q wants %v, got %T",
				ErrTypeMismatch, f.Name, f.Type, r.Values[i])
		}
	}
	return nil
}
