package sddf

import (
	"fmt"
	"io"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// EventTag is the descriptor tag used for I/O trace event records.
const EventTag = 1

// EventDescriptor returns the canonical SDDF descriptor for iotrace.Event.
func EventDescriptor() Descriptor {
	return Descriptor{
		Tag:  EventTag,
		Name: "io-event",
		Fields: []Field{
			{Name: "seq", Type: TInt64},
			{Name: "node", Type: TInt32},
			{Name: "op", Type: TInt32},
			{Name: "file", Type: TInt32},
			{Name: "offset", Type: TInt64},
			{Name: "bytes", Type: TInt64},
			{Name: "start_us", Type: TInt64},
			{Name: "end_us", Type: TInt64},
			{Name: "mode", Type: TInt32},
			{Name: "phase", Type: TString},
		},
	}
}

// EventRecord converts an event into an SDDF record.
func EventRecord(e iotrace.Event) Record {
	return Record{
		Tag: EventTag,
		Values: []any{
			e.Seq, int32(e.Node), int32(e.Op), int32(e.File),
			e.Offset, e.Bytes, int64(e.Start), int64(e.End),
			int32(e.Mode), e.Phase,
		},
	}
}

// RecordEvent converts an io-event SDDF record back into an event.
func RecordEvent(r Record) (iotrace.Event, error) {
	if r.Tag != EventTag || len(r.Values) != 10 {
		return iotrace.Event{}, fmt.Errorf("%w: not an io-event record", ErrBadFormat)
	}
	e := iotrace.Event{
		Seq:    r.Values[0].(int64),
		Node:   int(r.Values[1].(int32)),
		Op:     iotrace.Op(r.Values[2].(int32)),
		File:   iotrace.FileID(r.Values[3].(int32)),
		Offset: r.Values[4].(int64),
		Bytes:  r.Values[5].(int64),
		Start:  sim.Time(r.Values[6].(int64)),
		End:    sim.Time(r.Values[7].(int64)),
		Mode:   iotrace.AccessMode(r.Values[8].(int32)),
		Phase:  r.Values[9].(string),
	}
	if !e.Op.Valid() {
		return iotrace.Event{}, fmt.Errorf("%w: invalid op %d", ErrBadFormat, int(e.Op))
	}
	if !e.Mode.Valid() {
		return iotrace.Event{}, fmt.Errorf("%w: invalid mode %d", ErrBadFormat, int(e.Mode))
	}
	return e, nil
}

// traceWriter is the common surface of BinaryWriter and ASCIIWriter.
type traceWriter interface {
	WriteDescriptor(Descriptor) error
	WriteRecord(Record) error
	Flush() error
}

// WriteTrace encodes a full event trace — descriptor first, then one record
// per event — in binary (ascii=false) or ASCII (ascii=true) form.
func WriteTrace(w io.Writer, events []iotrace.Event, ascii bool) error {
	var tw traceWriter
	var err error
	if ascii {
		tw, err = NewASCIIWriter(w)
	} else {
		tw, err = NewBinaryWriter(w)
	}
	if err != nil {
		return err
	}
	if err := tw.WriteDescriptor(EventDescriptor()); err != nil {
		return err
	}
	for _, e := range events {
		if err := tw.WriteRecord(EventRecord(e)); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// traceReader is the common surface of BinaryReader and ASCIIReader.
type traceReader interface {
	Next() (any, error)
}

// ReadTrace decodes a trace written by WriteTrace, auto-detecting the
// encoding from the stream header.
func ReadTrace(r io.Reader) ([]iotrace.Event, error) {
	// Sniff the first byte: binary streams start with 'S', ASCII with '#'.
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, fmt.Errorf("%w: empty stream", ErrBadFormat)
	}
	combined := io.MultiReader(byteReader(first[0]), r)
	var tr traceReader
	var err error
	if first[0] == '#' {
		tr, err = NewASCIIReader(combined)
	} else {
		tr, err = NewBinaryReader(combined)
	}
	if err != nil {
		return nil, err
	}
	var events []iotrace.Event
	for {
		item, err := tr.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		rec, ok := item.(Record)
		if !ok {
			continue // descriptor
		}
		e, err := RecordEvent(rec)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}

// byteReader yields a single byte then EOF (for un-reading the sniffed byte).
type singleByte struct {
	b    byte
	done bool
}

func byteReader(b byte) io.Reader { return &singleByte{b: b} }

func (s *singleByte) Read(p []byte) (int, error) {
	if s.done || len(p) == 0 {
		return 0, io.EOF
	}
	p[0] = s.b
	s.done = true
	return 1, nil
}
