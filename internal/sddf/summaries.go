package sddf

import (
	"fmt"
	"io"

	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
)

// Descriptor tags for Pablo reduction records. Tag 1 is the raw event
// record (EventTag).
const (
	LifetimeTag = 2
	WindowTag   = 3
	RegionTag   = 4
)

// LifetimeDescriptor returns the SDDF layout of a file-lifetime summary
// record: per-operation counts and durations plus byte totals and open time.
func LifetimeDescriptor() Descriptor {
	d := Descriptor{Tag: LifetimeTag, Name: "file-lifetime-summary"}
	d.Fields = append(d.Fields, Field{Name: "file", Type: TInt32})
	for op := 0; op < iotrace.NumOps; op++ {
		name := iotrace.Op(op).String()
		d.Fields = append(d.Fields,
			Field{Name: "count_" + name, Type: TInt64},
			Field{Name: "us_" + name, Type: TInt64},
		)
	}
	d.Fields = append(d.Fields,
		Field{Name: "bytes_read", Type: TInt64},
		Field{Name: "bytes_written", Type: TInt64},
		Field{Name: "open_us", Type: TInt64},
	)
	return d
}

// LifetimeRecord converts one file's lifetime summary to a record. end is
// the run's final time (for still-open files).
func LifetimeRecord(f *pablo.FileLifetime, end sim.Time) Record {
	values := []any{int32(f.File)}
	for op := 0; op < iotrace.NumOps; op++ {
		values = append(values, f.Count[op], int64(f.Duration[op]))
	}
	values = append(values, f.BytesRead, f.BytesWritten, int64(f.FinalOpenTime(end)))
	return Record{Tag: LifetimeTag, Values: values}
}

// WindowDescriptor returns the SDDF layout of a time-window summary record.
func WindowDescriptor() Descriptor {
	d := Descriptor{Tag: WindowTag, Name: "time-window-summary"}
	d.Fields = append(d.Fields,
		Field{Name: "window", Type: TInt64},
		Field{Name: "width_us", Type: TInt64},
	)
	for op := 0; op < iotrace.NumOps; op++ {
		name := iotrace.Op(op).String()
		d.Fields = append(d.Fields,
			Field{Name: "count_" + name, Type: TInt64},
			Field{Name: "us_" + name, Type: TInt64},
			Field{Name: "bytes_" + name, Type: TInt64},
		)
	}
	return d
}

// WindowRecord converts one window summary to a record.
func WindowRecord(w *pablo.WindowSummary, width sim.Time) Record {
	values := []any{w.Index, int64(width)}
	for op := 0; op < iotrace.NumOps; op++ {
		values = append(values, w.Count[op], int64(w.Duration[op]), w.Bytes[op])
	}
	return Record{Tag: WindowTag, Values: values}
}

// RegionDescriptor returns the SDDF layout of a file-region summary record.
func RegionDescriptor() Descriptor {
	return Descriptor{
		Tag: RegionTag, Name: "file-region-summary",
		Fields: []Field{
			{Name: "file", Type: TInt32},
			{Name: "region", Type: TInt64},
			{Name: "size", Type: TInt64},
			{Name: "reads", Type: TInt64},
			{Name: "writes", Type: TInt64},
			{Name: "bytes", Type: TInt64},
		},
	}
}

// RegionRecord converts one region summary to a record.
func RegionRecord(r *pablo.RegionSummary, size int64) Record {
	return Record{Tag: RegionTag, Values: []any{
		int32(r.File), r.Index, size, r.Reads, r.Writes, r.Bytes,
	}}
}

// WriteSummaries encodes any combination of Pablo reductions (nil arguments
// are skipped) into one SDDF stream. end stamps open times of still-open
// files.
func WriteSummaries(w io.Writer, ascii bool,
	lt *pablo.LifetimeReducer, win *pablo.WindowReducer, reg *pablo.RegionReducer,
	end sim.Time) error {
	var tw traceWriter
	var err error
	if ascii {
		tw, err = NewASCIIWriter(w)
	} else {
		tw, err = NewBinaryWriter(w)
	}
	if err != nil {
		return err
	}
	if lt != nil {
		if err := tw.WriteDescriptor(LifetimeDescriptor()); err != nil {
			return err
		}
		for _, f := range lt.Files() {
			if err := tw.WriteRecord(LifetimeRecord(f, end)); err != nil {
				return err
			}
		}
	}
	if win != nil {
		if err := tw.WriteDescriptor(WindowDescriptor()); err != nil {
			return err
		}
		for _, s := range win.Windows() {
			if err := tw.WriteRecord(WindowRecord(s, win.Width())); err != nil {
				return err
			}
		}
	}
	if reg != nil {
		if err := tw.WriteDescriptor(RegionDescriptor()); err != nil {
			return err
		}
		for _, s := range reg.Regions() {
			if err := tw.WriteRecord(RegionRecord(s, reg.Size())); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

// SummaryCounts tallies the records of each summary kind in a stream
// written by WriteSummaries.
type SummaryCounts struct {
	Lifetimes int
	Windows   int
	Regions   int
}

// CountSummaries decodes a summary stream and tallies it (validating every
// record against its descriptor on the way).
func CountSummaries(r io.Reader) (SummaryCounts, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return SummaryCounts{}, fmt.Errorf("%w: empty stream", ErrBadFormat)
	}
	combined := io.MultiReader(byteReader(first[0]), r)
	var tr traceReader
	var err error
	if first[0] == '#' {
		tr, err = NewASCIIReader(combined)
	} else {
		tr, err = NewBinaryReader(combined)
	}
	if err != nil {
		return SummaryCounts{}, err
	}
	var c SummaryCounts
	for {
		item, err := tr.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return c, err
		}
		rec, ok := item.(Record)
		if !ok {
			continue
		}
		switch rec.Tag {
		case LifetimeTag:
			c.Lifetimes++
		case WindowTag:
			c.Windows++
		case RegionTag:
			c.Regions++
		}
	}
}
