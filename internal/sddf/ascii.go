package sddf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// asciiMagic introduces an ASCII SDDF stream.
const asciiMagic = "#SDDFA 1"

// ASCIIWriter encodes descriptors and records as text, one item per line:
//
//	#SDDFA 1
//	#D <tag> <name> <field>:<type>,<field>:<type>,...
//	<tag> <value> <value> ...
//
// Strings are Go-quoted, so arbitrary content survives the round trip.
type ASCIIWriter struct {
	w     *bufio.Writer
	descs map[int]Descriptor
}

// NewASCIIWriter writes the stream header and returns a writer.
func NewASCIIWriter(w io.Writer) (*ASCIIWriter, error) {
	aw := &ASCIIWriter{w: bufio.NewWriter(w), descs: make(map[int]Descriptor)}
	if _, err := fmt.Fprintln(aw.w, asciiMagic); err != nil {
		return nil, err
	}
	return aw, nil
}

// WriteDescriptor emits a descriptor line and registers the tag.
func (aw *ASCIIWriter) WriteDescriptor(d Descriptor) error {
	if _, dup := aw.descs[d.Tag]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateTag, d.Tag)
	}
	fields := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		fields[i] = f.Name + ":" + f.Type.String()
	}
	aw.descs[d.Tag] = d
	_, err := fmt.Fprintf(aw.w, "#D %d %s %s\n", d.Tag, strconv.Quote(d.Name), strings.Join(fields, ","))
	return err
}

// WriteRecord validates and emits a record line.
func (aw *ASCIIWriter) WriteRecord(r Record) error {
	d, ok := aw.descs[r.Tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTag, r.Tag)
	}
	if err := validate(d, r); err != nil {
		return err
	}
	parts := make([]string, 0, len(r.Values)+1)
	parts = append(parts, strconv.Itoa(r.Tag))
	for _, v := range r.Values {
		switch x := v.(type) {
		case int32:
			parts = append(parts, strconv.FormatInt(int64(x), 10))
		case int64:
			parts = append(parts, strconv.FormatInt(x, 10))
		case float64:
			parts = append(parts, strconv.FormatFloat(x, 'g', -1, 64))
		case string:
			parts = append(parts, strconv.Quote(x))
		}
	}
	_, err := fmt.Fprintln(aw.w, strings.Join(parts, " "))
	return err
}

// Flush pushes buffered output to the underlying writer.
func (aw *ASCIIWriter) Flush() error { return aw.w.Flush() }

// ASCIIReader decodes an ASCII SDDF stream.
type ASCIIReader struct {
	sc    *bufio.Scanner
	descs map[int]Descriptor
	line  int
}

// NewASCIIReader checks the header line and returns a reader.
func NewASCIIReader(r io.Reader) (*ASCIIReader, error) {
	ar := &ASCIIReader{sc: bufio.NewScanner(r), descs: make(map[int]Descriptor)}
	ar.sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !ar.sc.Scan() || strings.TrimSpace(ar.sc.Text()) != asciiMagic {
		return nil, fmt.Errorf("%w: missing ASCII header", ErrBadFormat)
	}
	ar.line = 1
	return ar, nil
}

// Next returns the next Descriptor or Record, or io.EOF.
func (ar *ASCIIReader) Next() (any, error) {
	for ar.sc.Scan() {
		ar.line++
		line := strings.TrimSpace(ar.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#D ") {
			return ar.parseDescriptor(line[3:])
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		return ar.parseRecord(line)
	}
	if err := ar.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Descriptors returns the descriptors seen so far, keyed by tag.
func (ar *ASCIIReader) Descriptors() map[int]Descriptor { return ar.descs }

func (ar *ASCIIReader) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadFormat, ar.line, fmt.Sprintf(format, args...))
}

func (ar *ASCIIReader) parseDescriptor(rest string) (Descriptor, error) {
	// <tag> <quoted-name> <fieldspec>
	tagStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return Descriptor{}, ar.errf("descriptor missing name")
	}
	tag, err := strconv.Atoi(tagStr)
	if err != nil {
		return Descriptor{}, ar.errf("bad tag %q", tagStr)
	}
	name, rest, err := cutQuoted(rest)
	if err != nil {
		return Descriptor{}, ar.errf("bad name: %v", err)
	}
	d := Descriptor{Tag: tag, Name: name}
	spec := strings.TrimSpace(rest)
	if spec != "" {
		for _, fs := range strings.Split(spec, ",") {
			fname, ftype, ok := strings.Cut(fs, ":")
			if !ok {
				return Descriptor{}, ar.errf("bad field spec %q", fs)
			}
			ft, err := ParseFieldType(ftype)
			if err != nil {
				return Descriptor{}, ar.errf("%v", err)
			}
			d.Fields = append(d.Fields, Field{Name: fname, Type: ft})
		}
	}
	if _, dup := ar.descs[d.Tag]; dup {
		return Descriptor{}, fmt.Errorf("%w: %d", ErrDuplicateTag, d.Tag)
	}
	ar.descs[d.Tag] = d
	return d, nil
}

func (ar *ASCIIReader) parseRecord(line string) (Record, error) {
	tagStr, rest, _ := strings.Cut(line, " ")
	tag, err := strconv.Atoi(tagStr)
	if err != nil {
		return Record{}, ar.errf("bad record tag %q", tagStr)
	}
	d, ok := ar.descs[tag]
	if !ok {
		return Record{}, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	r := Record{Tag: tag, Values: make([]any, 0, len(d.Fields))}
	for _, f := range d.Fields {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return Record{}, ar.errf("record for %q too short", d.Name)
		}
		switch f.Type {
		case TString:
			s, remain, err := cutQuoted(rest)
			if err != nil {
				return Record{}, ar.errf("field %q: %v", f.Name, err)
			}
			r.Values = append(r.Values, s)
			rest = remain
		default:
			tok, remain, _ := strings.Cut(rest, " ")
			switch f.Type {
			case TInt32:
				v, err := strconv.ParseInt(tok, 10, 32)
				if err != nil {
					return Record{}, ar.errf("field %q: %v", f.Name, err)
				}
				r.Values = append(r.Values, int32(v))
			case TInt64:
				v, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					return Record{}, ar.errf("field %q: %v", f.Name, err)
				}
				r.Values = append(r.Values, v)
			case TFloat64:
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return Record{}, ar.errf("field %q: %v", f.Name, err)
				}
				r.Values = append(r.Values, v)
			}
			rest = remain
		}
	}
	if strings.TrimSpace(rest) != "" {
		return Record{}, ar.errf("record for %q has trailing data %q", d.Name, rest)
	}
	return r, nil
}

// cutQuoted parses a leading Go-quoted string and returns it plus the rest
// of the line.
func cutQuoted(s string) (string, string, error) {
	s = strings.TrimLeft(s, " ")
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	// Find the closing quote, honoring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			q := s[:i+1]
			unq, err := strconv.Unquote(q)
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}
