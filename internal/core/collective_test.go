package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/collective"
	"repro/internal/exec"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/workload"
)

// collVariants are the PFS configurations the file-image regression compares:
// aggregation must never change what ends up in the files, under either disk
// scheduler.
var collVariants = []struct {
	name string
	coll collective.Config
	sch  ionode.SchedConfig
}{
	{name: "off"},
	{name: "coll-fifo", coll: collective.Config{Enabled: true}},
	{name: "coll-cscan", coll: collective.Config{Enabled: true},
		sch: ionode.SchedConfig{Policy: "cscan", Seed: 7}},
}

// fingerprint renders the final file image of a finished PFS: every file's
// identity and size, its end-of-run integrity audit verdict, and each I/O
// node's checksummed block coverage. Two runs that produce the same
// fingerprint wrote the same bytes to the same places.
func fingerprint(fs *pfs.FileSystem) string {
	fs.AuditIntegrity()
	var b strings.Builder
	for _, fi := range fs.Files() {
		fmt.Fprintf(&b, "file %d %s %d clean=%v\n",
			fi.ID, fi.Name, fi.Size, fs.VerifyFile(fi.Name, "regression"))
	}
	for _, st := range fs.IntegrityStats() {
		fmt.Fprintf(&b, "ion%d tracked=%d injected=%d\n",
			st.Node, st.TrackedBlocks, st.Injected)
	}
	return b.String()
}

// appImage runs one application study to completion and fingerprints the
// resulting file system.
func appImage(t *testing.T, app AppID, coll collective.Config, sch ionode.SchedConfig) string {
	t.Helper()
	study := SmallStudy(app)
	study.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	study.Machine.PFS.Collective = coll
	study.Machine.PFS.Sched = sch
	_, rt, err := prepare(study)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	if err := workload.Run(rt.m, rt.fs, rt.app); err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	if ae, ok := rt.app.(appErr); ok {
		if err := ae.Err(); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	return fingerprint(rt.m.PFS)
}

// TestCollectiveFileImageApps: every application must leave a byte-identical
// file image — same files, same sizes, same checksummed block coverage, same
// clean audit — whether its I/O went through two-phase aggregation or the
// per-request paths, under either disk scheduler.
func TestCollectiveFileImageApps(t *testing.T) {
	for _, app := range Apps() {
		base := appImage(t, app, collVariants[0].coll, collVariants[0].sch)
		if !strings.Contains(base, "clean=true") {
			t.Fatalf("%s: baseline audit found no clean files:\n%s", app, base)
		}
		if strings.Contains(base, "clean=false") {
			t.Fatalf("%s: baseline audit found corruption:\n%s", app, base)
		}
		for _, v := range collVariants[1:] {
			got := appImage(t, app, v.coll, v.sch)
			if got != base {
				t.Errorf("%s: file image differs with %s:\n--- off ---\n%s--- %s ---\n%s",
					app, v.name, base, v.name, got)
			}
		}
	}
}

// modeImage runs the phase-aligned synthetic workload under one access mode
// and fingerprints the resulting file system.
func modeImage(t *testing.T, mode iotrace.AccessMode, coll collective.Config, sch ionode.SchedConfig) string {
	t.Helper()
	pcfg := pfs.DefaultConfig()
	pcfg.Integrity = integrity.Config{Enabled: true}
	pcfg.Collective = coll
	pcfg.Sched = sch
	m, err := workload.NewMachine(workload.MachineConfig{ComputeNodes: 8, PFS: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	m.PFS.SetRecorder(pablo.NewTracer(false))
	app, err := workload.NewSynthetic(workload.SyntheticConfig{
		Nodes:       8,
		Mode:        mode,
		RecordBytes: 4096,
		Records:     16,
		Barrier:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	return fingerprint(m.PFS)
}

// TestCollectiveFileImageModes: the synthetic workload must leave a
// byte-identical file image under every access mode, collective on or off.
// M_RECORD and M_SYNC exercise the aggregated paths; the other modes prove
// the feature leaves them alone.
func TestCollectiveFileImageModes(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		base := modeImage(t, mode, collVariants[0].coll, collVariants[0].sch)
		if strings.Contains(base, "clean=false") {
			t.Fatalf("%s: baseline audit found corruption:\n%s", mode, base)
		}
		for _, v := range collVariants[1:] {
			got := modeImage(t, mode, v.coll, v.sch)
			if got != base {
				t.Errorf("%s: file image differs with %s:\n--- off ---\n%s--- %s ---\n%s",
					mode, v.name, base, v.name, got)
			}
		}
	}
}

// renderCollectiveSweeps runs both collective sweeps and renders the reports
// into one text blob for a byte comparison.
func renderCollectiveSweeps(t *testing.T) string {
	t.Helper()
	var out string
	rows, err := CollectiveSweep(true, collective.Config{},
		ionode.SchedConfig{Policy: "cscan", Seed: 3})
	if err != nil {
		t.Fatalf("CollectiveSweep: %v", err)
	}
	out += analysis.RenderCollectiveSweep("Collective sweep:", rows)
	mrows, err := ModeCollectiveSweep(collective.Config{}, ionode.SchedConfig{})
	if err != nil {
		t.Fatalf("ModeCollectiveSweep: %v", err)
	}
	out += analysis.RenderCollectiveSweep("Mode collective sweep:", mrows)
	return out
}

// TestCollectiveSweepByteIdenticalAcrossWorkerCounts: the collective sweeps
// must render byte-identically at any executor worker count — the aggregation
// machinery (round barriers, straggler timers, seeded schedulers) is entirely
// inside each run's own engine, so -parallel only changes real time.
func TestCollectiveSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	defer exec.SetWorkers(0)

	exec.SetWorkers(1)
	sequential := renderCollectiveSweeps(t)
	exec.SetWorkers(8)
	parallel := renderCollectiveSweeps(t)

	if sequential != parallel {
		t.Fatalf("collective sweep output differs between -parallel=1 and -parallel=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	if len(sequential) == 0 {
		t.Fatal("collective sweeps rendered nothing")
	}
}

// TestCollectiveSweepReductions pins the headline numbers: the round-
// structured modes collapse physical requests by at least 5x and do not slow
// down, while every other mode passes through untouched.
func TestCollectiveSweepReductions(t *testing.T) {
	rows, err := ModeCollectiveSweep(collective.Config{}, ionode.SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Name {
		case "M_SYNC", "M_RECORD":
			if r.RequestReduction() < 5 {
				t.Errorf("%s: request reduction %.1fx, want >= 5x", r.Name, r.RequestReduction())
			}
			if r.Speedup() < 1 {
				t.Errorf("%s: collective slowed the run down: %.2fx", r.Name, r.Speedup())
			}
			if r.Stats.Rounds == 0 || r.Stats.FullRounds != r.Stats.Rounds {
				t.Errorf("%s: rounds %d full %d, want all full", r.Name, r.Stats.Rounds, r.Stats.FullRounds)
			}
		default:
			if r.BasePhys != r.CollPhys {
				t.Errorf("%s: control mode physical requests changed: %d vs %d",
					r.Name, r.BasePhys, r.CollPhys)
			}
			if r.Stats.Rounds != 0 {
				t.Errorf("%s: control mode saw %d rounds", r.Name, r.Stats.Rounds)
			}
		}
	}
}
