package core

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

// jsonReport is the machine-readable projection of a Report: stable field
// names, no simulation-internal types, suitable for downstream tooling
// (plotting, regression tracking, cross-run diffing).
type jsonReport struct {
	App         AppID             `json:"app"`
	WallSeconds float64           `json:"wall_seconds"`
	Operations  []jsonOpRow       `json:"operations"`
	ReadSizes   []int64           `json:"read_size_buckets"`
	WriteSizes  []int64           `json:"write_size_buckets"`
	Purposes    []jsonFilePurpose `json:"file_purposes"`
	Patterns    jsonPatterns      `json:"patterns"`
}

type jsonOpRow struct {
	Op          string  `json:"op"`
	Count       int64   `json:"count"`
	Bytes       int64   `json:"bytes"`
	NodeSeconds float64 `json:"node_seconds"`
	Percent     float64 `json:"percent"`
}

type jsonFilePurpose struct {
	File         int    `json:"file"`
	Purpose      string `json:"purpose"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
	Readers      int    `json:"readers"`
	Writers      int    `json:"writers"`
}

type jsonPatterns struct {
	Streams            int     `json:"streams"`
	SequentialStreams  int     `json:"sequential_streams"`
	FixedSizeStreams   int     `json:"fixed_size_streams"`
	WeightedSequential float64 `json:"weighted_sequential_fraction"`
}

// WriteJSON emits the report's characterization results as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		App:         r.App,
		WallSeconds: r.Wall.Seconds(),
		ReadSizes:   r.Sizes.Read.Buckets(),
		WriteSizes:  r.Sizes.Write.Buckets(),
	}
	rows := append([]analysis.OpRow{r.Summary.Total}, r.Summary.Rows...)
	for _, row := range rows {
		out.Operations = append(out.Operations, jsonOpRow{
			Op: row.Label, Count: row.Count, Bytes: row.Volume,
			NodeSeconds: row.NodeTime.Seconds(), Percent: row.Pct,
		})
	}
	for _, fp := range r.Purposes() {
		out.Purposes = append(out.Purposes, jsonFilePurpose{
			File: int(fp.File), Purpose: fp.Purpose.String(),
			BytesRead: fp.BytesRead, BytesWritten: fp.BytesWritten,
			Readers: fp.Readers, Writers: fp.Writers,
		})
	}
	ps := r.PatternSummary()
	out.Patterns = jsonPatterns{
		Streams: ps.Streams, SequentialStreams: ps.SequentialStreams,
		FixedSizeStreams: ps.FixedSizeStreams, WeightedSequential: ps.WeightedSequential,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
