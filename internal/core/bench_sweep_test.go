package core

import (
	"testing"

	"repro/internal/cache"
)

// BenchmarkSweepCache runs the three-application cached-vs-uncached sweep at
// small scale: six independent core.Run invocations per iteration.
func BenchmarkSweepCache(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CacheSweep(true, cache.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCorruption runs the 3-app x 3-class corruption sweep at small
// scale: nine independent core.Run invocations per iteration.
func BenchmarkSweepCorruption(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CorruptionSweep(true, 11); err != nil {
			b.Fatal(err)
		}
	}
}
