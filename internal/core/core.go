// Package core is the public face of the reproduction: it composes a
// simulated Paragon, one of the paper's three application skeletons, the
// Pablo instrumentation, optional PPFS policies, and the analysis tools into
// a single Run call that yields every table and figure of the paper for that
// application.
package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/apps/render"
	"repro/internal/burst"
	"repro/internal/collective"
	"repro/internal/fault"
	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/ppfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AppID names one of the characterized applications.
type AppID string

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  AppID = "escat"
	RENDER AppID = "render"
	HTF    AppID = "htf"
)

// Apps lists the available applications.
func Apps() []AppID { return []AppID{ESCAT, RENDER, HTF} }

// Study describes one characterization run.
type Study struct {
	App     AppID
	Machine workload.MachineConfig

	// Policy, when non-nil, routes the application through a PPFS layer
	// with these policies (the §5.2 experiment); nil runs on raw PFS.
	Policy *ppfs.Policy

	// Burst, when enabled, interposes the per-compute-node burst-buffer
	// tier between the application and the PFS (checkpoint and M_LOG
	// writes commit locally and drain in the background). Mutually
	// exclusive with Policy — both are client-side layers over the same
	// seam.
	Burst burst.Config

	// KeepTrace buffers the full event trace (needed for figures); when
	// false only real-time reductions run (Pablo's low-perturbation mode).
	KeepTrace bool

	// TraceReserve pre-sizes the trace capture buffers (events). Zero uses
	// a small default suitable for paper-scale runs; scenario-generated
	// fleets set it from their expected event volume so capture never
	// reallocates mid-run.
	TraceReserve int

	// WindowWidth sets the time-window reduction granularity (default 10s).
	WindowWidth sim.Time

	// Faults is the chaos schedule injected into the machine. The zero
	// plan injects nothing and leaves the run bit-identical to a build
	// without the fault subsystem. FaultSeed seeds the plan's random
	// choices (exponential arrivals, AnyNode targets).
	Faults    fault.Plan
	FaultSeed uint64

	// Optional per-application overrides; nil selects the paper-scale
	// defaults.
	ESCATConfig  *escat.Config
	RENDERConfig *render.Config
	HTFConfig    *htf.Config
}

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study {
	s := Study{App: app, KeepTrace: true, WindowWidth: 10 * sim.Second}
	switch app {
	case ESCAT:
		s.Machine = escat.MachineConfig()
	case RENDER:
		s.Machine = render.MachineConfig()
	case HTF:
		s.Machine = htf.MachineConfig()
	}
	return s
}

// SmallStudy returns a fast, reduced-scale study of app (for tests and the
// quickstart example).
func SmallStudy(app AppID) Study {
	s := PaperStudy(app)
	switch app {
	case ESCAT:
		cfg := escat.SmallConfig()
		s.ESCATConfig = &cfg
		s.Machine.ComputeNodes = cfg.Nodes
	case RENDER:
		cfg := render.SmallConfig()
		s.RENDERConfig = &cfg
		s.Machine.ComputeNodes = cfg.RenderNodes + 1
	case HTF:
		cfg := htf.SmallConfig()
		s.HTFConfig = &cfg
		s.Machine.ComputeNodes = cfg.Nodes
	}
	return s
}

// Report is the outcome of a study: the captured traces plus the derived
// tables and reductions.
type Report struct {
	App  AppID
	Wall sim.Time

	// Events is the application-visible trace; Physical differs from it
	// only when a PPFS policy layer was interposed.
	Events   []iotrace.Event
	Physical []iotrace.Event

	Summary analysis.OpSummary
	Sizes   analysis.SizeTable

	Lifetime *pablo.LifetimeReducer
	Windows  *pablo.WindowReducer

	// PolicyStats is non-nil when the study ran through PPFS.
	PolicyStats *ppfs.Stats

	// Incidents is the realized fault timeline (empty without a fault
	// plan); Failover the PFS failover counters.
	Incidents []fault.Incident
	Failover  pfs.FailoverStats

	// Repair holds the replication repair control plane's counters (all
	// zeros when it is off); ReplicationFactor the effective copies per
	// chunk (1 = no replication).
	Repair            pfs.RepairStats
	ReplicationFactor int
	repairOn          bool

	// Cache is the I/O-node cache effectiveness report; nil when the
	// study ran without caching.
	Cache *analysis.CacheReport

	// Integrity is the end-to-end data-integrity report; nil when the
	// study ran without the checksum layer.
	Integrity *analysis.IntegrityReport

	// Collective holds the two-phase aggregation counters; nil when the
	// study ran without collective I/O.
	Collective *collective.Stats

	// Burst is the burst-tier report; nil when the study ran without the
	// tier.
	Burst *analysis.BurstReport

	// Sched is the per-I/O-node disk-scheduler report; empty when the nodes
	// ran the legacy FIFO queue.
	Sched []ionode.SchedStats

	// PhysRequests counts the physical array requests the I/O nodes served —
	// the quantity collective aggregation collapses.
	PhysRequests int64
}

// appErr lets Run surface failures collected inside node programs.
type appErr interface{ Err() error }

// traceReserve is the initial keep-trace buffer capacity (events). Large
// enough to skip the first ten append doublings, small enough (~90 KB of
// Events) not to burden the many short runs inside a sweep.
const traceReserve = 1024

// runtime bundles everything one simulation attempt needs: the machine, the
// instrumented file system stack, and the application.
type runtime struct {
	m          *workload.Machine
	fs         workload.FS
	tracer     *pablo.Tracer
	physTracer *pablo.Tracer
	lifetime   *pablo.LifetimeReducer
	windows    *pablo.WindowReducer
	layer      *ppfs.FileSystem
	burst      *burst.Tier
	app        workload.App
}

// prepare builds a fresh runtime for one attempt of the study. The returned
// study has defaults merged in.
func prepare(s Study) (Study, *runtime, error) {
	return prepareOn(s, nil)
}

// prepareOn is prepare with an engine supplied by the caller — the sharded
// fleet driver builds each cell's machine on its own fabric shard engine. A
// nil engine builds a fresh one (the serial path).
func prepareOn(s Study, eng *sim.Engine) (Study, *runtime, error) {
	if s.Machine.ComputeNodes == 0 {
		s = mergeDefaults(s)
	}
	var m *workload.Machine
	var err error
	if eng != nil {
		m, err = workload.NewMachineOn(eng, s.Machine)
	} else {
		m, err = workload.NewMachine(s.Machine)
	}
	if err != nil {
		return s, nil, err
	}
	return prepareMachine(s, m)
}

// preparePartitioned is prepare for an intra-machine sharded run: the
// machine's I/O nodes are split across the srv shards per assign, with every
// client-side layer (tracers, PPFS, burst tier, the application itself) on
// fe's engine. s must already have defaults merged (the caller needs the I/O
// node count to build assign).
func preparePartitioned(s Study, fe *sim.Shard, srv []*sim.Shard, assign []int) (Study, *runtime, error) {
	m, err := workload.NewPartitionedMachine(fe, srv, assign, s.Machine)
	if err != nil {
		return s, nil, err
	}
	return prepareMachine(s, m)
}

// prepareMachine builds the runtime stack above an already-constructed
// machine — the tail shared by the serial, fleet-cell, and intra-machine
// partitioned preparations.
func prepareMachine(s Study, m *workload.Machine) (Study, *runtime, error) {
	var err error
	if s.WindowWidth <= 0 {
		s.WindowWidth = 10 * sim.Second
	}
	reserve := traceReserve
	if s.TraceReserve > 0 {
		reserve = s.TraceReserve
	}
	rt := &runtime{
		m:        m,
		tracer:   pablo.NewTracer(s.KeepTrace),
		lifetime: pablo.NewLifetimeReducer(),
		windows:  pablo.NewWindowReducer(s.WindowWidth),
	}
	// Even the small studies capture thousands of events; seeding the buffer
	// skips the early growth reallocations on the per-event capture path.
	rt.tracer.Reserve(reserve)
	rt.tracer.Attach(rt.lifetime)
	rt.tracer.Attach(rt.windows)

	if s.Policy != nil {
		rt.physTracer = pablo.NewTracer(s.KeepTrace)
		rt.physTracer.Reserve(reserve)
		m.PFS.SetRecorder(rt.physTracer)
		rt.layer, err = ppfs.New(m.Eng, m.PFS, *s.Policy)
		if err != nil {
			return s, nil, err
		}
		rt.layer.SetRecorder(rt.tracer)
		rt.fs = rt.layer
	} else {
		m.PFS.SetRecorder(rt.tracer)
		rt.fs = workload.WrapPFS(m.PFS)
	}
	if s.Burst.Enabled {
		if s.Policy != nil {
			return s, nil, fmt.Errorf("core: the burst tier and a PPFS policy layer are mutually exclusive")
		}
		rt.burst, err = burst.New(m.Eng, m.PFS, m.Nodes, s.Burst)
		if err != nil {
			return s, nil, err
		}
		rt.fs = rt.burst
	}

	rt.app, err = buildApp(s)
	if err != nil {
		return s, nil, err
	}
	return s, rt, nil
}

// inject arms the study's fault plan against the runtime's machine: discrete
// events via the injector, corruption via the checksum stores' write-path
// policies and bit-rot drivers. It returns nil when no discrete events are
// scheduled (no injector processes are spawned, so the healthy path is
// untouched; corruption may still be armed).
func (rt *runtime) inject(s Study, events []fault.Event) *fault.Injector {
	if !s.Faults.Corruption.Empty() {
		fault.ArmCorruption(rt.m.Eng, rt.m.PFS.IONodes(), s.Faults.Corruption, s.FaultSeed)
	}
	if len(events) == 0 {
		return nil
	}
	hooks := fault.NodeLossHooks{Nodes: rt.m.Nodes, Halt: rt.m.Eng.Stop}
	if rt.burst != nil {
		hooks.Undrained = rt.burst.UndrainedNode
	}
	if rt.m.PFS.RepairEnabled() {
		hooks.OnOutageStart = rt.m.PFS.NoteOutageStart
		hooks.OnOutageEnd = rt.m.PFS.NoteOutageEnd
	}
	return fault.Inject(rt.m.Eng, rt.m.PFS.IONodes(), events, hooks)
}

// injectPartitioned arms the fault plan on a partitioned machine: each
// discrete event's driver runs on the owning engine of the node it targets,
// bit-rot drivers likewise, and outage windows are mirrored on the frontend
// for the repair planner. Two schedule shapes are rejected up front rather
// than mis-simulated: NodeLoss (halting every shard mid-run is unsupported —
// fault.InjectPartitioned reports it) and DiskFailure combined with
// replication repair (the repair planner would need cross-shard reads of
// array state; the frontend mirror only tracks outages).
func (rt *runtime) injectPartitioned(s Study, events []fault.Event) (*fault.Injector, error) {
	fs := rt.m.PFS
	if !s.Faults.Corruption.Empty() {
		fault.ArmCorruptionPartitioned(fs.OwnerEngine, fs.IONodes(), s.Faults.Corruption, s.FaultSeed)
	}
	if len(events) == 0 {
		return nil, nil
	}
	if fs.RepairEnabled() {
		for _, ev := range events {
			if ev.Kind == fault.DiskFailure {
				return nil, fmt.Errorf("core: DiskFailure events cannot combine with replication repair on a partitioned machine (the repair planner would read array state across shards); run serially or drop one of the two")
			}
		}
	}
	hooks := fault.NodeLossHooks{Nodes: rt.m.Nodes, Halt: rt.m.Eng.Stop}
	if rt.burst != nil {
		hooks.Undrained = rt.burst.UndrainedNode
	}
	if fs.RepairEnabled() {
		hooks.OnOutageStart = fs.NoteOutageStart
		hooks.OnOutageEnd = fs.NoteOutageEnd
	}
	return fault.InjectPartitioned(rt.m.Eng, fs.OwnerEngine, fs.IONodes(), events, hooks)
}

// clockPadded reports whether background processes (bit-rot drivers, the
// scrubber, collective straggler timers) keep the engine clock running past
// the application's finish, so the run's wall clock must come from the trace.
func (rt *runtime) clockPadded(s Study) bool {
	return !s.Faults.Corruption.Empty() || rt.m.PFS.ScrubWindowEnd() > 0 ||
		rt.m.PFS.CollectiveEnabled() || rt.m.PFS.RepairEnabled() || rt.burst != nil
}

// report assembles the study's report after a completed run.
func (rt *runtime) report(s Study) *Report {
	r := &Report{
		App:      s.App,
		Wall:     rt.m.Eng.Now(),
		Events:   rt.tracer.Events(),
		Summary:  analysis.Summarize(rt.tracer.Events()),
		Sizes:    analysis.Sizes(rt.tracer.Events()),
		Lifetime: rt.lifetime,
		Windows:  rt.windows,
		Failover: rt.m.PFS.FailoverStats(),
		Repair:   rt.m.PFS.RepairStats(),
	}
	r.ReplicationFactor = rt.m.PFS.ReplicationFactor()
	r.repairOn = rt.m.PFS.RepairEnabled()
	if rt.physTracer != nil {
		r.Physical = rt.physTracer.Events()
	} else {
		r.Physical = r.Events
	}
	if rt.layer != nil {
		st := rt.layer.Stats()
		r.PolicyStats = &st
	}
	r.Cache = analysis.BuildCacheReport(rt.m.PFS.CacheStats())
	if st, ok := rt.m.PFS.CollectiveStats(); ok {
		r.Collective = &st
	}
	if rt.burst != nil {
		r.Burst = analysis.BuildBurstReport(rt.burst.Stats(), r.Events)
	}
	r.Sched = rt.m.PFS.SchedStats()
	r.PhysRequests = rt.m.PFS.PhysRequests()
	if !s.Faults.Corruption.Empty() {
		// End-of-run audit: sweep every tracked block so latent corruption
		// is detected (and, where parity allows, repaired) before the report
		// tallies coverage. Accounting only — no simulated time.
		rt.m.PFS.AuditIntegrity()
	}
	r.Integrity = analysis.BuildIntegrityReport(
		rt.m.PFS.IntegrityStats(), rt.m.PFS.IntegrityEvents(), rt.m.PFS.ReliabilityStats())
	return r
}

// Run executes the study to completion. With a fault plan configured the run
// is a single attempt: an injected fault the application cannot absorb (via
// PFS failover) surfaces as an error, exactly like the real machine's job
// kill. Use RunResilient for checkpoint/restart semantics.
func Run(s Study) (*Report, error) {
	s, rt, err := prepare(s)
	if err != nil {
		return nil, err
	}
	var events []fault.Event
	if !s.Faults.Empty() {
		events = s.Faults.Materialize(s.FaultSeed, s.Machine.PFS.IONodes, s.Machine.ComputeNodes)
	}
	inj := rt.inject(s, events)
	runErr := workload.Run(rt.m, rt.fs, rt.app)
	if err := attemptFailure(s, rt, inj); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return finishReport(s, rt, inj), nil
}

// attemptFailure surfaces the failures a completed engine run can hide:
// node-program errors collected inside the application, and a compute-node
// loss that halted the engine (the job was killed, like the real machine
// would). Both Run and the sharded fleet driver check these the same way.
func attemptFailure(s Study, rt *runtime, inj *fault.Injector) error {
	if ae, ok := rt.app.(appErr); ok {
		if err := ae.Err(); err != nil {
			// Node-program failures are the root cause; a deadlock from the
			// abandoned barrier group is their symptom.
			return fmt.Errorf("%s: %w", s.App, err)
		}
	}
	if inj != nil {
		if nl, ok := inj.FirstNodeLoss(); ok {
			return fmt.Errorf("%s: compute node %d lost at %v (%d undrained burst-log bytes)",
				s.App, nl.Node, nl.At, nl.UndrainedBytes)
		}
	}
	return nil
}

// finishReport assembles a successful attempt's report: the trace-derived
// tables, the wall-clock correction for runs whose background daemons
// outlive the application, and the realized incident timeline.
func finishReport(s Study, rt *runtime, inj *fault.Injector) *Report {
	r := rt.report(s)
	if inj != nil || rt.clockPadded(s) {
		// Injector drivers (a background rebuild, a not-yet-due storm) and
		// integrity daemons (scrubber, bit-rot arrivals) can outlive the
		// application; the run's wall clock is the application's own finish.
		// Without a kept trace the engine clock stands in.
		if end := lastEventEnd(r.Events); end > 0 {
			r.Wall = end
		}
	}
	if inj != nil {
		inj.CloseOpen(rt.m.Eng.Now())
		incs := inj.Incidents()
		if end := lastEventEnd(r.Events); end > 0 {
			// The incident timeline ends with the application too: faults
			// realized after its last operation affected nothing.
			incs = capIncidents(incs, end)
		}
		r.Incidents = incs
	}
	if r.Integrity != nil && len(r.Integrity.Events) > 0 {
		// Corruption incidents are not capped at the application's finish:
		// the scrubber legitimately detects and repairs latent errors after
		// the last application operation, and the report should say so.
		r.Incidents = mergeIncidents(r.Incidents, fault.CorruptionIncidents(r.Integrity.Events))
	}
	return r
}

// mergeIncidents interleaves two incident timelines by start time.
func mergeIncidents(a, b []fault.Incident) []fault.Incident {
	out := make([]fault.Incident, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func mergeDefaults(s Study) Study {
	d := PaperStudy(s.App)
	d.Policy = s.Policy
	d.Burst = s.Burst
	d.KeepTrace = s.KeepTrace
	if s.WindowWidth > 0 {
		d.WindowWidth = s.WindowWidth
	}
	d.ESCATConfig, d.RENDERConfig, d.HTFConfig = s.ESCATConfig, s.RENDERConfig, s.HTFConfig
	return d
}

func buildApp(s Study) (workload.App, error) {
	switch s.App {
	case ESCAT:
		cfg := escat.DefaultConfig()
		if s.ESCATConfig != nil {
			cfg = *s.ESCATConfig
		}
		return escat.New(cfg)
	case RENDER:
		cfg := render.DefaultConfig()
		if s.RENDERConfig != nil {
			cfg = *s.RENDERConfig
		}
		return render.New(cfg)
	case HTF:
		cfg := htf.DefaultConfig()
		if s.HTFConfig != nil {
			cfg = *s.HTFConfig
		}
		return htf.New(cfg)
	default:
		return nil, fmt.Errorf("core: unknown app %q", s.App)
	}
}

// PhaseSummary computes the operation summary for one application phase
// (HTF's per-program tables are phase summaries).
func (r *Report) PhaseSummary(phase string) analysis.OpSummary {
	return analysis.Summarize(analysis.FilterPhase(r.Events, phase))
}

// PhaseSizes computes the size-bucket table for one phase.
func (r *Report) PhaseSizes(phase string) analysis.SizeTable {
	return analysis.Sizes(analysis.FilterPhase(r.Events, phase))
}

// Purposes classifies every file of the run into the §2 taxonomy
// (compulsory input/output, checkpoint, out-of-core).
func (r *Report) Purposes() []analysis.FilePurpose {
	return analysis.ClassifyPurposes(r.Events)
}

// PatternSummary aggregates the run's per-stream access patterns — the §10
// conclusions (sequentiality, fixed request sizes, open-access-close
// cycles).
func (r *Report) PatternSummary() analysis.PatternSummary {
	return analysis.SummarizePatterns(analysis.Patterns(r.Events))
}
