// Package core is the public face of the reproduction: it composes a
// simulated Paragon, one of the paper's three application skeletons, the
// Pablo instrumentation, optional PPFS policies, and the analysis tools into
// a single Run call that yields every table and figure of the paper for that
// application.
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/apps/render"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/ppfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AppID names one of the characterized applications.
type AppID string

// The three applications of the paper's initial SIO code suite.
const (
	ESCAT  AppID = "escat"
	RENDER AppID = "render"
	HTF    AppID = "htf"
)

// Apps lists the available applications.
func Apps() []AppID { return []AppID{ESCAT, RENDER, HTF} }

// Study describes one characterization run.
type Study struct {
	App     AppID
	Machine workload.MachineConfig

	// Policy, when non-nil, routes the application through a PPFS layer
	// with these policies (the §5.2 experiment); nil runs on raw PFS.
	Policy *ppfs.Policy

	// KeepTrace buffers the full event trace (needed for figures); when
	// false only real-time reductions run (Pablo's low-perturbation mode).
	KeepTrace bool

	// WindowWidth sets the time-window reduction granularity (default 10s).
	WindowWidth sim.Time

	// Optional per-application overrides; nil selects the paper-scale
	// defaults.
	ESCATConfig  *escat.Config
	RENDERConfig *render.Config
	HTFConfig    *htf.Config
}

// PaperStudy returns the study reproducing the paper's traced run of app.
func PaperStudy(app AppID) Study {
	s := Study{App: app, KeepTrace: true, WindowWidth: 10 * sim.Second}
	switch app {
	case ESCAT:
		s.Machine = escat.MachineConfig()
	case RENDER:
		s.Machine = render.MachineConfig()
	case HTF:
		s.Machine = htf.MachineConfig()
	}
	return s
}

// SmallStudy returns a fast, reduced-scale study of app (for tests and the
// quickstart example).
func SmallStudy(app AppID) Study {
	s := PaperStudy(app)
	switch app {
	case ESCAT:
		cfg := escat.SmallConfig()
		s.ESCATConfig = &cfg
		s.Machine.ComputeNodes = cfg.Nodes
	case RENDER:
		cfg := render.SmallConfig()
		s.RENDERConfig = &cfg
		s.Machine.ComputeNodes = cfg.RenderNodes + 1
	case HTF:
		cfg := htf.SmallConfig()
		s.HTFConfig = &cfg
		s.Machine.ComputeNodes = cfg.Nodes
	}
	return s
}

// Report is the outcome of a study: the captured traces plus the derived
// tables and reductions.
type Report struct {
	App  AppID
	Wall sim.Time

	// Events is the application-visible trace; Physical differs from it
	// only when a PPFS policy layer was interposed.
	Events   []iotrace.Event
	Physical []iotrace.Event

	Summary analysis.OpSummary
	Sizes   analysis.SizeTable

	Lifetime *pablo.LifetimeReducer
	Windows  *pablo.WindowReducer

	// PolicyStats is non-nil when the study ran through PPFS.
	PolicyStats *ppfs.Stats
}

// appErr lets Run surface failures collected inside node programs.
type appErr interface{ Err() error }

// Run executes the study to completion.
func Run(s Study) (*Report, error) {
	if s.Machine.ComputeNodes == 0 {
		s = mergeDefaults(s)
	}
	m, err := workload.NewMachine(s.Machine)
	if err != nil {
		return nil, err
	}

	if s.WindowWidth <= 0 {
		s.WindowWidth = 10 * sim.Second
	}
	tracer := pablo.NewTracer(s.KeepTrace)
	lifetime := pablo.NewLifetimeReducer()
	windows := pablo.NewWindowReducer(s.WindowWidth)
	tracer.Attach(lifetime)
	tracer.Attach(windows)

	var fs workload.FS
	var physTracer *pablo.Tracer
	var layer *ppfs.FileSystem
	if s.Policy != nil {
		physTracer = pablo.NewTracer(s.KeepTrace)
		m.PFS.SetRecorder(physTracer)
		layer, err = ppfs.New(m.Eng, m.PFS, *s.Policy)
		if err != nil {
			return nil, err
		}
		layer.SetRecorder(tracer)
		fs = layer
	} else {
		m.PFS.SetRecorder(tracer)
		fs = workload.WrapPFS(m.PFS)
	}

	app, err := buildApp(s)
	if err != nil {
		return nil, err
	}
	runErr := workload.Run(m, fs, app)
	if ae, ok := app.(appErr); ok {
		if err := ae.Err(); err != nil {
			// Node-program failures are the root cause; a deadlock from the
			// abandoned barrier group is their symptom.
			return nil, fmt.Errorf("%s: %w", s.App, err)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	r := &Report{
		App:      s.App,
		Wall:     m.Eng.Now(),
		Events:   tracer.Events(),
		Summary:  analysis.Summarize(tracer.Events()),
		Sizes:    analysis.Sizes(tracer.Events()),
		Lifetime: lifetime,
		Windows:  windows,
	}
	if physTracer != nil {
		r.Physical = physTracer.Events()
	} else {
		r.Physical = r.Events
	}
	if layer != nil {
		st := layer.Stats()
		r.PolicyStats = &st
	}
	return r, nil
}

func mergeDefaults(s Study) Study {
	d := PaperStudy(s.App)
	d.Policy = s.Policy
	d.KeepTrace = s.KeepTrace
	if s.WindowWidth > 0 {
		d.WindowWidth = s.WindowWidth
	}
	d.ESCATConfig, d.RENDERConfig, d.HTFConfig = s.ESCATConfig, s.RENDERConfig, s.HTFConfig
	return d
}

func buildApp(s Study) (workload.App, error) {
	switch s.App {
	case ESCAT:
		cfg := escat.DefaultConfig()
		if s.ESCATConfig != nil {
			cfg = *s.ESCATConfig
		}
		return escat.New(cfg)
	case RENDER:
		cfg := render.DefaultConfig()
		if s.RENDERConfig != nil {
			cfg = *s.RENDERConfig
		}
		return render.New(cfg)
	case HTF:
		cfg := htf.DefaultConfig()
		if s.HTFConfig != nil {
			cfg = *s.HTFConfig
		}
		return htf.New(cfg)
	default:
		return nil, fmt.Errorf("core: unknown app %q", s.App)
	}
}

// PhaseSummary computes the operation summary for one application phase
// (HTF's per-program tables are phase summaries).
func (r *Report) PhaseSummary(phase string) analysis.OpSummary {
	return analysis.Summarize(analysis.FilterPhase(r.Events, phase))
}

// PhaseSizes computes the size-bucket table for one phase.
func (r *Report) PhaseSizes(phase string) analysis.SizeTable {
	return analysis.Sizes(analysis.FilterPhase(r.Events, phase))
}

// Purposes classifies every file of the run into the §2 taxonomy
// (compulsory input/output, checkpoint, out-of-core).
func (r *Report) Purposes() []analysis.FilePurpose {
	return analysis.ClassifyPurposes(r.Events)
}

// PatternSummary aggregates the run's per-stream access patterns — the §10
// conclusions (sequentiality, fixed request sizes, open-access-close
// cycles).
func (r *Report) PatternSummary() analysis.PatternSummary {
	return analysis.SummarizePatterns(analysis.Patterns(r.Events))
}
