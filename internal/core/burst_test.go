package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/burst"
	"repro/internal/ckpt"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// identityBurstCfg is a tier configuration whose drained image must be
// byte-identical to a direct-PFS run: compression off, so wire bytes equal
// logical bytes, with prefixes covering every application output file.
func identityBurstCfg() burst.Config {
	cfg := burst.DefaultConfig()
	cfg.Compress = burst.CompressConfig{}
	cfg.Prefixes = []string{
		"escat.quad", "escat.sys", // ESCAT staging and outputs
		"frame",                              // RENDER frames
		"integrals.", "pscf.scratch", "htf.", // HTF integral/scratch/setup files
	}
	return cfg
}

// burstAppImage runs one application study to completion — with or without
// the burst tier — and fingerprints the resulting file system. The engine
// only goes idle once every drain daemon's queue is empty, so the image is
// the fully drained one.
func burstAppImage(t *testing.T, app AppID, bcfg burst.Config) string {
	t.Helper()
	study := SmallStudy(app)
	study.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	study.Burst = bcfg
	_, rt, err := prepare(study)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	if err := workload.Run(rt.m, rt.fs, rt.app); err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	if ae, ok := rt.app.(appErr); ok {
		if err := ae.Err(); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	if bcfg.Enabled {
		st := rt.burst.Stats()
		if st.Committed == 0 {
			t.Fatalf("%s: burst tier intercepted nothing", app)
		}
		if st.UndrainedRecords != 0 {
			t.Fatalf("%s: %d records undrained after the engine went idle",
				app, st.UndrainedRecords)
		}
	}
	return fingerprint(rt.m.PFS)
}

// TestBurstFileImageApps: every application must leave a byte-identical file
// image — same files, same sizes, same checksummed block coverage, same clean
// audit — whether its writes went through the burst tier (fully drained) or
// straight to the PFS.
func TestBurstFileImageApps(t *testing.T) {
	for _, app := range Apps() {
		base := burstAppImage(t, app, burst.Config{})
		if !strings.Contains(base, "clean=true") || strings.Contains(base, "clean=false") {
			t.Fatalf("%s: baseline audit not clean:\n%s", app, base)
		}
		got := burstAppImage(t, app, identityBurstCfg())
		if got != base {
			t.Errorf("%s: drained image differs from direct PFS:\n--- direct ---\n%s--- burst ---\n%s",
				app, base, got)
		}
	}
}

// burstModeImage runs the synthetic workload under one access mode, with or
// without the tier interposed, and fingerprints the file system. No prefixes
// are registered: M_LOG is the intercepted mode, the other five must pass
// through the tier untouched.
func burstModeImage(t *testing.T, mode iotrace.AccessMode, useBurst bool) string {
	t.Helper()
	pcfg := pfs.DefaultConfig()
	pcfg.Integrity = integrity.Config{Enabled: true}
	m, err := workload.NewMachine(workload.MachineConfig{ComputeNodes: 8, PFS: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	m.PFS.SetRecorder(pablo.NewTracer(false))
	var fs workload.FS = workload.WrapPFS(m.PFS)
	var tier *burst.Tier
	if useBurst {
		cfg := burst.DefaultConfig()
		cfg.Compress = burst.CompressConfig{}
		tier, err = burst.New(m.Eng, m.PFS, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs = tier
	}
	app, err := workload.NewSynthetic(workload.SyntheticConfig{
		Nodes:       8,
		Mode:        mode,
		RecordBytes: 4096,
		Records:     16,
		Barrier:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, fs, app); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	if tier != nil {
		st := tier.Stats()
		if mode == iotrace.ModeLog && st.Committed == 0 {
			t.Fatalf("M_LOG traffic was not intercepted")
		}
		if mode != iotrace.ModeLog && st.Committed != 0 {
			t.Fatalf("%s: tier intercepted %d records of a non-M_LOG mode",
				mode, st.Committed)
		}
	}
	return fingerprint(m.PFS)
}

// TestBurstFileImageModes: the synthetic workload must leave a byte-identical
// file image under every access mode with the tier interposed. M_LOG
// exercises the interception path; the other five prove pass-through.
func TestBurstFileImageModes(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		base := burstModeImage(t, mode, false)
		if strings.Contains(base, "clean=false") {
			t.Fatalf("%s: baseline audit found corruption:\n%s", mode, base)
		}
		got := burstModeImage(t, mode, true)
		if got != base {
			t.Errorf("%s: file image differs with burst tier:\n--- off ---\n%s--- on ---\n%s",
				mode, base, got)
		}
	}
}

// ckptBurstStudy is the shared resilient configuration for the node-loss
// tests: small ESCAT, checkpointing every unit through the burst tier.
func ckptBurstStudy(bcfg burst.Config, plan fault.Plan) ResilientStudy {
	study := SmallStudy(ESCAT)
	study.Burst = bcfg
	study.Faults = plan
	study.FaultSeed = 17
	return ResilientStudy{
		Study:       study,
		Ckpt:        ckpt.Config{Interval: 1, BytesPerNode: 256 << 10},
		RestartCost: sim.Second,
	}
}

// runNodeLoss executes the canonical node-loss scenario and returns the
// report.
func runNodeLoss(t *testing.T, bcfg burst.Config) *ResilientReport {
	t.Helper()
	plan := fault.Plan{Events: []fault.Event{
		{Kind: fault.NodeLoss, At: 5 * sim.Second, Node: 2},
	}}
	rr, err := RunResilient(ckptBurstStudy(bcfg, plan))
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestNodeLossLostWorkDeterministic: a compute-node loss kills the attempt at
// the injection instant, costs deterministic lost work, and the job completes
// on the restart.
func TestNodeLossLostWorkDeterministic(t *testing.T) {
	bcfg := burst.DefaultConfig()
	bcfg.Compress = burst.CompressConfig{}
	a := runNodeLoss(t, bcfg)
	b := runNodeLoss(t, bcfg)

	if len(a.Attempts) != 2 || !a.Attempts[0].Failed || a.Attempts[1].Failed {
		t.Fatalf("attempts %+v, want one failure then success", a.Attempts)
	}
	if got := a.Attempts[0].End; got != 5*sim.Second {
		t.Errorf("attempt died at %v, want the 5s loss instant", got)
	}
	if a.LostWork <= 0 {
		t.Errorf("lost work %v, want > 0", a.LostWork)
	}
	var loss int
	for _, inc := range a.Incidents {
		if inc.Kind == fault.NodeLoss {
			loss++
			if inc.Node != 2 {
				t.Errorf("loss incident on node %d, want 2", inc.Node)
			}
		}
	}
	if loss != 1 {
		t.Errorf("%d node-loss incidents, want 1", loss)
	}

	if a.Wall != b.Wall || a.LostWork != b.LostWork || a.BurstLostBytes != b.BurstLostBytes {
		t.Errorf("node-loss run not deterministic:\nwall %v vs %v\nlost %v vs %v\nburst-lost %d vs %d",
			a.Wall, b.Wall, a.LostWork, b.LostWork, a.BurstLostBytes, b.BurstLostBytes)
	}
	if len(a.Attempts) != len(b.Attempts) {
		t.Errorf("attempt counts differ: %d vs %d", len(a.Attempts), len(b.Attempts))
	}
}

// TestNodeLossRejectsUndrainedCheckpoint: with a drain daemon too slow to
// ever flush (30s wakeup against a ~9s run), every checkpoint generation's
// newest records die in the volatile log — the restart must reject those
// generations instead of restoring from data that never reached the PFS, and
// the lost log content must be accounted.
func TestNodeLossRejectsUndrainedCheckpoint(t *testing.T) {
	bcfg := burst.DefaultConfig()
	bcfg.Compress = burst.CompressConfig{}
	bcfg.CapacityBytes = 1 << 30 // never backpressure: records only accumulate
	bcfg.DrainDelay = 30 * sim.Second
	rr := runNodeLoss(t, bcfg)

	if rr.Ckpt.DrainRejects == 0 {
		t.Errorf("no checkpoint generation rejected for undrained records: %+v", rr.Ckpt)
	}
	if rr.BurstLostBytes == 0 {
		t.Error("node loss with an undrained log accounted no lost burst bytes")
	}
	if rr.Attempts[0].ResumeUnit != 0 || rr.Attempts[1].ResumeUnit != 0 {
		t.Errorf("restart resumed from a rejected checkpoint: %+v", rr.Attempts)
	}
	if rr.Final == nil {
		t.Fatal("run did not complete")
	}
}

// renderBurstSweep runs the small sweep and renders it for byte comparison.
func renderBurstSweep(t *testing.T) (string, []analysis.BurstComparison) {
	t.Helper()
	rows, err := BurstSweep(true, ckpt.Config{Interval: 1, BytesPerNode: 1 << 20},
		burst.DefaultConfig())
	if err != nil {
		t.Fatalf("BurstSweep: %v", err)
	}
	return analysis.RenderBurstSweep("Burst sweep:", rows), rows
}

// TestBurstSweepSmall is the CI smoke: the tier must cut checkpoint stall for
// the checkpointing applications (ESCAT, HTF) without slowing any app down,
// and the sweep must render byte-identically at any worker count.
func TestBurstSweepSmall(t *testing.T) {
	defer exec.SetWorkers(0)
	exec.SetWorkers(1)
	sequential, rows := renderBurstSweep(t)
	exec.SetWorkers(4)
	parallel, _ := renderBurstSweep(t)
	if sequential != parallel {
		t.Fatalf("burst sweep differs between -parallel=1 and -parallel=4:\n--- 1 ---\n%s--- 4 ---\n%s",
			sequential, parallel)
	}

	for _, r := range rows {
		if r.Report == nil || r.Report.Stats.Committed == 0 {
			t.Errorf("%s: tier absorbed nothing", r.Name)
			continue
		}
		if r.Speedup() < 1 {
			t.Errorf("%s: burst tier slowed the run: %.2fx", r.Name, r.Speedup())
		}
		switch r.Name {
		case "escat", "htf":
			if r.StallReduction() <= 1 {
				t.Errorf("%s: checkpoint stall not reduced: %v -> %v",
					r.Name, r.DirectStall, r.BurstStall)
			}
		}
	}
}

// TestHTFNodeLossRestart: HTF checkpoints its SCF passes — a compute-node
// loss after both passes committed restarts straight into the pscf tail,
// restoring every node's state from the checkpoint through the burst tier.
func TestHTFNodeLossRestart(t *testing.T) {
	study := SmallStudy(HTF)
	study.Burst = burst.DefaultConfig()
	study.Faults = fault.Plan{Events: []fault.Event{
		{Kind: fault.NodeLoss, At: 90 * sim.Second, Node: 1},
	}}
	rr, err := RunResilient(ResilientStudy{
		Study:       study,
		Ckpt:        ckpt.Config{Interval: 1, BytesPerNode: 512 << 10},
		RestartCost: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Final == nil || len(rr.Attempts) != 2 {
		t.Fatalf("attempts %+v, want a failure then success", rr.Attempts)
	}
	htfNodes := SmallStudy(HTF).HTFConfig.Nodes
	if got := rr.Attempts[1].ResumeUnit; got != 2 {
		t.Errorf("restart resumed at pass %d, want 2 (both passes committed)", got)
	}
	if rr.Ckpt.Restores != htfNodes {
		t.Errorf("Restores = %d, want one per node (%d)", rr.Ckpt.Restores, htfNodes)
	}
	if rr.LostWork <= 0 || rr.LostWork >= 90*sim.Second {
		t.Errorf("lost work %v, want in (0, 90s): the commit bounds the loss", rr.LostWork)
	}
}
