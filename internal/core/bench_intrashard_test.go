package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// intrashardApps is the serial-vs-sharded curve's app set: the three traced
// workloads of the paper, each at full paper scale.
var intrashardApps = []AppID{ESCAT, RENDER, HTF}

// benchSerialRun is the single-engine baseline: one paper-scale study per
// iteration on the plain serial path.
func benchSerialRun(b *testing.B, s Study) {
	b.ReportAllocs()
	var wall sim.Time
	for i := 0; i < b.N; i++ {
		r, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		wall = r.Wall
	}
	b.ReportMetric(wall.Seconds(), "sim-wall-s")
}

// benchShardedRun partitions the same study across the fabric (frontend +
// ioShards server shards) under one worker bound. Results are byte-identical
// across worker counts (TestSharded* hold them to it), so the sub-benchmarks
// differ only in host wall-clock — the single-run scaling curve
// BENCH_10.json records.
func benchShardedRun(b *testing.B, s Study, ioShards, workers int) {
	b.ReportAllocs()
	var wall sim.Time
	var mail int64
	for i := 0; i < b.N; i++ {
		sr, err := RunSharded(s, ShardedOptions{IOShards: ioShards, Workers: workers, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		wall = sr.Wall
		mail = sr.Fabric.Mail
	}
	b.ReportMetric(wall.Seconds(), "sim-wall-s")
	b.ReportMetric(float64(mail), "cross-shard-mails")
}

// BenchmarkSingleMachinePaperScale sweeps serial vs partitioned execution of
// one paper-scale run per app — the tentpole's acceptance measurement. The
// serial sub-benchmark is the "before"; workers=1 isolates the conservative
// protocol's overhead (same partition, no concurrency); higher worker counts
// show the fan-out a multi-core host gets. The worker sweep honors
// REPRO_SHARDS like the fleet benchmarks.
func BenchmarkSingleMachinePaperScale(b *testing.B) {
	const ioShards = 4
	for _, app := range intrashardApps {
		s := PaperStudy(app)
		s.KeepTrace = false
		b.Run(fmt.Sprintf("app=%s/serial", app), func(b *testing.B) {
			benchSerialRun(b, s)
		})
		for _, workers := range fleetShardCounts() {
			b.Run(fmt.Sprintf("app=%s/ioshards=%d/workers=%d", app, ioShards, workers), func(b *testing.B) {
				benchShardedRun(b, s, ioShards, workers)
			})
		}
	}
}
