// Intra-machine sharding: one paper-scale run split across the conservative
// fabric.
//
// Where shard.go scales out (many machine cells, one shard each), this file
// scales one machine up: the compute partition — application processes,
// tracers, client-side policy layers — stays on a frontend shard, and the
// machine's I/O nodes are split round-robin across IOShards server shards.
// Every client↔I/O-node interaction (reads, writes, syncs, cache drains,
// integrity heals, repair copies, scatter-gather sweeps) crosses the fabric
// as mailbox mail whose delay is the mesh transfer cost, never below the mesh
// lookahead (SWLatency + HopLatency); replies return as zero-lookahead
// direct-wake mail on the fabric's reply edges.
//
// Determinism: for a fixed topology (IOShards), every mail delivery is
// ordered by the canonical (time, source shard, send sequence) key and every
// engine consumes a pure function of its own events plus that mail stream, so
// results are byte-identical at every Workers value — Workers=1 executes the
// exact same event interleaving inline on one OS thread and is the regression
// oracle the worker sweep is held to. Changing IOShards changes which
// same-instant replies share a source shard, i.e. a different (legal) tie
// order, so the oracle fixes the topology and sweeps only the worker bound.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// ShardedOptions configure an intra-machine partitioned run.
type ShardedOptions struct {
	// IOShards is the number of I/O server shards the machine's I/O nodes
	// are split across (clamped to the I/O node count). Zero or negative
	// runs the study serially — RunSharded(s, ShardedOptions{}) is Run(s).
	IOShards int

	// Workers bounds how many shards execute concurrently: 0 = GOMAXPROCS,
	// 1 = the inline serial oracle (same results, one OS thread).
	Workers int

	// Seed derives the fabric shards' RNG substreams.
	Seed uint64
}

// ShardedReport is a partitioned run's outcome: the ordinary study report
// plus the conservative protocol's counters.
type ShardedReport struct {
	*Report

	// Fabric holds the sync-round, mail, and horizon-stall counters for the
	// run; zero-valued on the serial fallback path.
	Fabric sim.FabricStats
}

// partitionIONodes builds the round-robin node→shard assignment and the
// server shards themselves, named after the owning fabric cell. IOShards is
// clamped to the node count so every shard owns at least one node.
func partitionIONodes(fab *sim.Fabric, prefix string, ioNodes, ioShards int, seed uint64) ([]*sim.Shard, []int) {
	k := ioShards
	if k > ioNodes {
		k = ioNodes
	}
	srv := make([]*sim.Shard, k)
	for g := range srv {
		srv[g] = fab.AddShard(fmt.Sprintf("%sio%d", prefix, g), seed)
	}
	assign := make([]int, ioNodes)
	for i := range assign {
		assign[i] = i % k
	}
	return srv, assign
}

// RunSharded executes one study with its machine partitioned across the
// fabric. IOShards <= 0 falls back to the serial Run. Results are
// byte-identical at every Workers value for a fixed IOShards.
func RunSharded(s Study, opts ShardedOptions) (*ShardedReport, error) {
	r, _, err := runSharded(s, opts)
	return r, err
}

// runSharded is RunSharded exposing the runtime, which the worker-count
// determinism oracle fingerprints directly. rt is nil on the serial fallback.
func runSharded(s Study, opts ShardedOptions) (*ShardedReport, *runtime, error) {
	if opts.IOShards <= 0 {
		r, err := Run(s)
		if err != nil {
			return nil, nil, err
		}
		return &ShardedReport{Report: r}, nil, nil
	}
	if s.Machine.ComputeNodes == 0 {
		s = mergeDefaults(s)
	}

	fab := sim.NewFabric(opts.Workers)
	fe := fab.AddShard("frontend", opts.Seed)
	srv, assign := partitionIONodes(fab, "", s.Machine.PFS.IONodes, opts.IOShards, opts.Seed)
	s, rt, err := preparePartitioned(s, fe, srv, assign)
	if err != nil {
		return nil, nil, err
	}

	var events []fault.Event
	if !s.Faults.Empty() {
		events = s.Faults.Materialize(s.FaultSeed, s.Machine.PFS.IONodes, s.Machine.ComputeNodes)
	}
	inj, err := rt.injectPartitioned(s, events)
	if err != nil {
		return nil, nil, err
	}

	if err := rt.app.Launch(rt.m, rt.fs); err != nil {
		return nil, nil, fmt.Errorf("%s: launch: %w", rt.app.Name(), err)
	}
	runErr := fab.Run()
	if err := attemptFailure(s, rt, inj); err != nil {
		return nil, nil, err
	}
	if runErr != nil {
		return nil, nil, fmt.Errorf("%s: %w", s.App, runErr)
	}
	return &ShardedReport{Report: finishReport(s, rt, inj), Fabric: fab.Stats()}, rt, nil
}
