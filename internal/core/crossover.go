package core

import (
	"fmt"
	"strings"

	"repro/internal/exec"
)

// CrossoverModel captures §7.2's recompute-versus-reread analysis for the
// Hartree-Fock integrals: storing integrals pays only if reading one back
// takes less time than the ~500 floating-point operations needed to
// recompute it. With the traced data set's ~56 bytes per integral and a
// mid-1990s node's ~50 MFLOP/s, the break-even per-node I/O rate lands at
// 5-10 MB/s — the paper's conclusion that every processor would need a
// directly attached disk.
type CrossoverModel struct {
	FlopsPerIntegral float64 // recomputation cost (paper: ~500)
	NodeFlopRate     float64 // FLOP/s per node (Paragon i860: ~50e6 sustained)
	BytesPerIntegral float64 // storage per integral (~56 B for the 16-atom set)
	IntegralsPerFock float64 // optional scale factor for totals (0 = per-integral only)
}

// DefaultCrossoverModel returns the paper-calibrated parameters.
func DefaultCrossoverModel() CrossoverModel {
	return CrossoverModel{
		FlopsPerIntegral: 500,
		NodeFlopRate:     50e6,
		BytesPerIntegral: 56,
	}
}

// RecomputeTime returns the seconds to recompute one integral.
func (m CrossoverModel) RecomputeTime() float64 {
	return m.FlopsPerIntegral / m.NodeFlopRate
}

// ReadTime returns the seconds to read one integral back at the given
// per-node I/O rate (bytes/second).
func (m CrossoverModel) ReadTime(ioRate float64) float64 {
	return m.BytesPerIntegral / ioRate
}

// BreakEvenRate returns the per-node I/O rate (bytes/second) at which
// reading an integral costs exactly as much as recomputing it.
func (m CrossoverModel) BreakEvenRate() float64 {
	return m.BytesPerIntegral * m.NodeFlopRate / m.FlopsPerIntegral
}

// CrossoverPoint is one row of the sweep: an I/O rate and which strategy
// wins there.
type CrossoverPoint struct {
	IORate        float64 // bytes/second per node
	ReadTime      float64 // seconds per integral, reread strategy
	RecomputeTime float64 // seconds per integral, recompute strategy
	ReadWins      bool
}

// Sweep evaluates the model across per-node I/O rates. The points are
// independent, so they ride the sweep executor like the simulation sweeps
// (the closed-form math makes each point trivial, but the rate grids the
// CLIs pass can be arbitrarily fine).
func (m CrossoverModel) Sweep(rates []float64) []CrossoverPoint {
	rc := m.RecomputeTime()
	out, _ := exec.Map(rates, func(_ int, rate float64) (CrossoverPoint, error) {
		rt := m.ReadTime(rate)
		return CrossoverPoint{
			IORate: rate, ReadTime: rt, RecomputeTime: rc, ReadWins: rt < rc,
		}, nil
	})
	return out
}

// RenderSweep formats a sweep as the rows the §7.2 discussion implies.
func RenderSweep(pts []CrossoverPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%14s %16s %16s %10s\n", "I/O MB/s/node", "read us/integral", "recompute us", "winner")
	for _, p := range pts {
		winner := "recompute"
		if p.ReadWins {
			winner = "read"
		}
		fmt.Fprintf(&b, "%14.2f %16.3f %16.3f %10s\n",
			p.IORate/1e6, p.ReadTime*1e6, p.RecomputeTime*1e6, winner)
	}
	return b.String()
}
