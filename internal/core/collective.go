package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/collective"
	"repro/internal/exec"
	"repro/internal/ionode"
	"repro/internal/pfs"
)

// collCompare builds one comparison row from a baseline/collective report
// pair.
func collCompare(name string, sched ionode.SchedConfig, base, coll *Report) analysis.CollectiveComparison {
	row := analysis.CollectiveComparison{
		Name:     name,
		Sched:    sched.Policy,
		BaseWall: base.Wall, CollWall: coll.Wall,
		BasePhys: base.PhysRequests, CollPhys: coll.PhysRequests,
	}
	if coll.Collective != nil {
		row.Stats = *coll.Collective
	}
	return row
}

// CollectiveSweep runs each of the paper's three applications twice —
// collective I/O off, then on with ccfg and the given disk scheduler — and
// reports the physical-request collapse and makespan change. ESCAT's
// M_RECORD reload is the paper workload two-phase aggregation serves; RENDER
// and HTF move their data through M_UNIX and are honest controls (their
// request streams never meet a round barrier, so aggregation must not hurt
// them).
func CollectiveSweep(small bool, ccfg collective.Config, sched ionode.SchedConfig) ([]analysis.CollectiveComparison, error) {
	ccfg.Enabled = true
	apps := Apps()
	type job struct {
		app  AppID
		coll bool
	}
	jobs := make([]job, 0, 2*len(apps))
	for _, app := range apps {
		jobs = append(jobs, job{app, false}, job{app, true})
	}
	reports, err := exec.Map(jobs, func(_ int, j job) (*Report, error) {
		study := PaperStudy(j.app)
		if small {
			study = SmallStudy(j.app)
		}
		kind := "base"
		if j.coll {
			study.Machine.PFS.Collective = ccfg
			study.Machine.PFS.Sched = sched
			kind = "collective"
		}
		r, err := Run(study)
		if err != nil {
			return nil, fmt.Errorf("collective sweep: %s %s: %w", j.app, kind, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.CollectiveComparison, 0, len(apps))
	for i, app := range apps {
		rows = append(rows, collCompare(string(app), sched, reports[2*i], reports[2*i+1]))
	}
	return rows, nil
}

// ModeCollectiveSweep compares collective-on against collective-off runs of
// one synthetic workload (eight nodes moving fixed records through a shared
// file, phase-aligned by a barrier) under all six PFS access modes. Only the
// round-structured modes (M_RECORD, M_SYNC) have rounds to aggregate; the
// other four are controls that must pass through unchanged.
func ModeCollectiveSweep(ccfg collective.Config, sched ionode.SchedConfig) ([]analysis.CollectiveComparison, error) {
	ccfg.Enabled = true
	base := pfs.DefaultConfig()
	collCfg := base
	collCfg.Collective = ccfg
	collCfg.Sched = sched

	cells := modeCells()
	for i := range cells {
		// Phase-align the nodes so rounds actually meet at the barrier; the
		// baseline runs the identical workload, so the comparison isolates
		// the PFS configuration.
		cells[i].scfg.Barrier = true
	}
	pairs, err := runModePairs("collective mode sweep", "collective", cells, base, collCfg)
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.CollectiveComparison, 0, len(cells))
	for i, cell := range cells {
		rows = append(rows, collCompare(cell.name, sched, pairs[i][0], pairs[i][1]))
	}
	return rows, nil
}
