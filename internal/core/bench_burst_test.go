package core

import (
	"testing"

	"repro/internal/burst"
	"repro/internal/ckpt"
)

// benchBurstApp runs one application at paper scale under the burst-sweep
// checkpoint policy, direct to the PFS or through the tier, and reports the
// simulated makespan and checkpoint stall — the quantities BENCH_6.json
// compares per app. RENDER has no work-unit loop to checkpoint; its frame
// outputs route through the log by prefix, so its pair isolates the tier's
// effect on ordinary output writes.
func benchBurstApp(b *testing.B, app AppID, useBurst bool) {
	b.ReportAllocs()
	var last *ResilientReport
	for i := 0; i < b.N; i++ {
		study := PaperStudy(app)
		if useBurst {
			study.Burst = burst.DefaultConfig()
			if app == RENDER {
				study.Burst.Prefixes = []string{"frame"}
			}
		}
		rs := ResilientStudy{
			Study:       study,
			Ckpt:        ckpt.Config{Interval: 1, BytesPerNode: 1 << 20},
			MaxAttempts: 1,
		}
		if app == RENDER {
			rs.Ckpt.Interval = 0
		}
		rr, err := RunResilient(rs)
		if err != nil {
			b.Fatal(err)
		}
		last = rr
	}
	b.ReportMetric(last.Wall.Seconds(), "sim-wall-s")
	b.ReportMetric(last.Ckpt.Overhead.Seconds(), "ckpt-stall-s")
	if last.Final != nil && last.Final.Burst != nil {
		st := last.Final.Burst.Stats
		b.ReportMetric(st.AbsorbRatio(), "absorb")
		b.ReportMetric(float64(st.CompressSavedBytes()), "saved-bytes")
		b.ReportMetric(last.Final.Burst.StallTime().Seconds(), "burst-stall-s")
	}
}

// ESCAT checkpoints every SCF sweep: the densest bursty write traffic in the
// suite and the paper's headline stall case.
func BenchmarkBurstEscatDirect(b *testing.B) { benchBurstApp(b, ESCAT, false) }
func BenchmarkBurstEscatTier(b *testing.B)   { benchBurstApp(b, ESCAT, true) }

// HTF checkpoints each SCF pass; its integral files add ordinary write
// traffic alongside the checkpoint bursts.
func BenchmarkBurstHtfDirect(b *testing.B) { benchBurstApp(b, HTF, false) }
func BenchmarkBurstHtfTier(b *testing.B)   { benchBurstApp(b, HTF, true) }

// RENDER's frame outputs go through the log by name prefix — the
// no-checkpoint control pair.
func BenchmarkBurstRenderDirect(b *testing.B) { benchBurstApp(b, RENDER, false) }
func BenchmarkBurstRenderTier(b *testing.B)   { benchBurstApp(b, RENDER, true) }

// BenchmarkSweepBurst runs the full direct-versus-tier comparison at small
// scale: six independent resilient runs per iteration through the parallel
// executor.
func BenchmarkSweepBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BurstSweep(true,
			ckpt.Config{Interval: 1, BytesPerNode: 1 << 20},
			burst.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
