package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// meanFor returns the mean per-operation node time over the labelled summary
// rows (e.g. "Read" + "AsynchRead" for the paper's read columns).
func meanFor(s analysis.OpSummary, labels ...string) (sim.Time, int64) {
	var n int64
	var t sim.Time
	for _, l := range labels {
		if r := s.Row(l); r != nil {
			n += r.Count
			t += r.NodeTime
		}
	}
	if n == 0 {
		return 0, 0
	}
	return t / sim.Time(n), n
}

// compare fills the cache-side ratios of a comparison row from per-node
// stats.
func compare(name, op string, base, cached *Report, labels ...string) analysis.CacheComparison {
	bm, n := meanFor(base.Summary, labels...)
	cm, _ := meanFor(cached.Summary, labels...)
	row := analysis.CacheComparison{
		Name: name, Op: op, Ops: n,
		BaseMean: bm, CachedMean: cm,
		BaseWall: base.Wall, CachedWall: cached.Wall,
	}
	if cached.Cache != nil {
		t := cached.Cache.Total
		row.HitRatio = t.HitRatio()
		row.PrefetchAccuracy = t.PrefetchAccuracy()
		row.Coalescing = t.Coalescing()
	}
	return row
}

// CacheSweep runs each of the paper's three applications twice — cache
// disabled, then enabled with ccfg — and reports the mean read-latency
// change. It is the §8 what-if quantified: ESCAT's small sequential reads
// and HTF's record-oriented integral traffic are the patterns an I/O-node
// cache with pattern-driven prefetch serves well.
func CacheSweep(small bool, ccfg cache.Config) ([]analysis.CacheComparison, error) {
	ccfg.Enabled = true
	var rows []analysis.CacheComparison
	for _, app := range Apps() {
		study := PaperStudy(app)
		if small {
			study = SmallStudy(app)
		}
		base, err := Run(study)
		if err != nil {
			return nil, fmt.Errorf("cache sweep: %s base: %w", app, err)
		}
		study.Machine.PFS.Cache = ccfg
		cached, err := Run(study)
		if err != nil {
			return nil, fmt.Errorf("cache sweep: %s cached: %w", app, err)
		}
		rows = append(rows, compare(string(app), "Read", base, cached, "Read", "AsynchRead"))
	}
	return rows, nil
}

// syntheticReport runs one synthetic workload on a fresh machine and
// assembles the subset of a Report the sweep compares.
func syntheticReport(scfg workload.SyntheticConfig, pcfg pfs.Config) (*Report, error) {
	m, err := workload.NewMachine(workload.MachineConfig{
		ComputeNodes: scfg.Nodes,
		PFS:          pcfg,
	})
	if err != nil {
		return nil, err
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	app, err := workload.NewSynthetic(scfg)
	if err != nil {
		return nil, err
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		return nil, err
	}
	if err := app.Err(); err != nil {
		return nil, err
	}
	return &Report{
		Wall:    m.Eng.Now(),
		Events:  tr.Events(),
		Summary: analysis.Summarize(tr.Events()),
		Cache:   analysis.BuildCacheReport(m.PFS.CacheStats()),
	}, nil
}

// ModeCacheSweep compares cached against uncached runs of one synthetic
// workload (eight nodes moving fixed records through a shared file) under
// all six PFS access modes, plus a fully random read workload whose working
// set exceeds the cache — the control showing the cache buys nothing without
// locality.
func ModeCacheSweep(ccfg cache.Config) ([]analysis.CacheComparison, error) {
	ccfg.Enabled = true
	base := pfs.DefaultConfig()
	cachedCfg := base
	cachedCfg.Cache = ccfg

	run := func(name, op string, scfg workload.SyntheticConfig, labels ...string) (analysis.CacheComparison, error) {
		b, err := syntheticReport(scfg, base)
		if err != nil {
			return analysis.CacheComparison{}, fmt.Errorf("mode sweep: %s base: %w", name, err)
		}
		c, err := syntheticReport(scfg, cachedCfg)
		if err != nil {
			return analysis.CacheComparison{}, fmt.Errorf("mode sweep: %s cached: %w", name, err)
		}
		return compare(name, op, b, c, labels...), nil
	}

	var rows []analysis.CacheComparison
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		scfg := workload.SyntheticConfig{
			Nodes:       8,
			Mode:        mode,
			RecordBytes: 4096,
			Records:     32,
		}
		op, labels := "Write", []string{"Write"}
		if mode == iotrace.ModeGlobal {
			op, labels = "Read", []string{"Read"}
		}
		row, err := run(mode.String(), op, scfg, labels...)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// Control: uniform random 64 KB reads over a working set two orders of
	// magnitude beyond the per-node cache — every access misses, so the
	// cached and uncached runs should be indistinguishable.
	capBytes := ccfg.Normalized(base.StripeUnit).CapacityBytes
	random := workload.SyntheticConfig{
		Nodes:       8,
		Mode:        iotrace.ModeAsync,
		RecordBytes: 64 * 1024,
		Records:     32,
		Read:        true,
		Random:      true,
		Seed:        42,
		FileBytes:   128 * capBytes,
	}
	row, err := run("random-read", "Read", random, "Read")
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}
