package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// meanFor returns the mean per-operation node time over the labelled summary
// rows (e.g. "Read" + "AsynchRead" for the paper's read columns).
func meanFor(s analysis.OpSummary, labels ...string) (sim.Time, int64) {
	var n int64
	var t sim.Time
	for _, l := range labels {
		if r := s.Row(l); r != nil {
			n += r.Count
			t += r.NodeTime
		}
	}
	if n == 0 {
		return 0, 0
	}
	return t / sim.Time(n), n
}

// compare fills the cache-side ratios of a comparison row from per-node
// stats.
func compare(name, op string, base, cached *Report, labels ...string) analysis.CacheComparison {
	bm, n := meanFor(base.Summary, labels...)
	cm, _ := meanFor(cached.Summary, labels...)
	row := analysis.CacheComparison{
		Name: name, Op: op, Ops: n,
		BaseMean: bm, CachedMean: cm,
		BaseWall: base.Wall, CachedWall: cached.Wall,
	}
	if cached.Cache != nil {
		t := cached.Cache.Total
		row.HitRatio = t.HitRatio()
		row.PrefetchAccuracy = t.PrefetchAccuracy()
		row.Coalescing = t.Coalescing()
	}
	return row
}

// CacheSweep runs each of the paper's three applications twice — cache
// disabled, then enabled with ccfg — and reports the mean read-latency
// change. It is the §8 what-if quantified: ESCAT's small sequential reads
// and HTF's record-oriented integral traffic are the patterns an I/O-node
// cache with pattern-driven prefetch serves well.
func CacheSweep(small bool, ccfg cache.Config) ([]analysis.CacheComparison, error) {
	ccfg.Enabled = true
	apps := Apps()
	// One job per run — [app0 base, app0 cached, app1 base, ...] — so every
	// simulation fans out on the executor; rows pair up afterwards.
	type job struct {
		app    AppID
		cached bool
	}
	jobs := make([]job, 0, 2*len(apps))
	for _, app := range apps {
		jobs = append(jobs, job{app, false}, job{app, true})
	}
	reports, err := exec.Map(jobs, func(_ int, j job) (*Report, error) {
		study := PaperStudy(j.app)
		if small {
			study = SmallStudy(j.app)
		}
		kind := "base"
		if j.cached {
			study.Machine.PFS.Cache = ccfg
			kind = "cached"
		}
		r, err := Run(study)
		if err != nil {
			return nil, fmt.Errorf("cache sweep: %s %s: %w", j.app, kind, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.CacheComparison, 0, len(apps))
	for i, app := range apps {
		rows = append(rows, compare(string(app), "Read", reports[2*i], reports[2*i+1], "Read", "AsynchRead"))
	}
	return rows, nil
}

// syntheticReport runs one synthetic workload on a fresh machine and
// assembles the subset of a Report the sweep compares.
func syntheticReport(scfg workload.SyntheticConfig, pcfg pfs.Config) (*Report, error) {
	m, err := workload.NewMachine(workload.MachineConfig{
		ComputeNodes: scfg.Nodes,
		PFS:          pcfg,
	})
	if err != nil {
		return nil, err
	}
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	app, err := workload.NewSynthetic(scfg)
	if err != nil {
		return nil, err
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		return nil, err
	}
	if err := app.Err(); err != nil {
		return nil, err
	}
	r := &Report{
		Wall:         m.Eng.Now(),
		Events:       tr.Events(),
		Summary:      analysis.Summarize(tr.Events()),
		Cache:        analysis.BuildCacheReport(m.PFS.CacheStats()),
		Sched:        m.PFS.SchedStats(),
		PhysRequests: m.PFS.PhysRequests(),
	}
	if st, ok := m.PFS.CollectiveStats(); ok {
		r.Collective = &st
		// Straggler timers outlive the application by up to one window; the
		// run's wall clock is the application's own finish.
		if end := lastEventEnd(r.Events); end > 0 {
			r.Wall = end
		}
	}
	return r, nil
}

// modeCell is one row of a mode-by-mode comparison sweep: the workload plus
// the summary labels its latency column reads.
type modeCell struct {
	name   string
	op     string
	labels []string
	scfg   workload.SyntheticConfig
}

// modeCells builds the six per-mode synthetic workloads shared by the cache
// and integrity mode sweeps.
func modeCells() []modeCell {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	cells := make([]modeCell, 0, len(modes))
	for _, mode := range modes {
		cell := modeCell{
			name:   mode.String(),
			op:     "Write",
			labels: []string{"Write"},
			scfg: workload.SyntheticConfig{
				Nodes:       8,
				Mode:        mode,
				RecordBytes: 4096,
				Records:     32,
			},
		}
		if mode == iotrace.ModeGlobal {
			cell.op, cell.labels = "Read", []string{"Read"}
		}
		cells = append(cells, cell)
	}
	return cells
}

// runModePairs fans one syntheticReport job per (cell, config) out on the
// executor — [cell0 base, cell0 alt, cell1 base, ...] — and returns the
// reports paired by cell. sweep names the caller for error messages; altName
// labels the second config ("cached", "verified").
func runModePairs(sweep, altName string, cells []modeCell, base, alt pfs.Config) ([][2]*Report, error) {
	type job struct {
		cell modeCell
		alt  bool
	}
	jobs := make([]job, 0, 2*len(cells))
	for _, cell := range cells {
		jobs = append(jobs, job{cell, false}, job{cell, true})
	}
	reports, err := exec.Map(jobs, func(_ int, j job) (*Report, error) {
		pcfg, kind := base, "base"
		if j.alt {
			pcfg, kind = alt, altName
		}
		r, err := syntheticReport(j.cell.scfg, pcfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %s %s: %w", sweep, j.cell.name, kind, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	pairs := make([][2]*Report, len(cells))
	for i := range cells {
		pairs[i] = [2]*Report{reports[2*i], reports[2*i+1]}
	}
	return pairs, nil
}

// ModeCacheSweep compares cached against uncached runs of one synthetic
// workload (eight nodes moving fixed records through a shared file) under
// all six PFS access modes, plus a fully random read workload whose working
// set exceeds the cache — the control showing the cache buys nothing without
// locality.
func ModeCacheSweep(ccfg cache.Config) ([]analysis.CacheComparison, error) {
	ccfg.Enabled = true
	base := pfs.DefaultConfig()
	cachedCfg := base
	cachedCfg.Cache = ccfg

	cells := modeCells()
	// Control: uniform random 64 KB reads over a working set two orders of
	// magnitude beyond the per-node cache — every access misses, so the
	// cached and uncached runs should be indistinguishable.
	capBytes := ccfg.Normalized(base.StripeUnit).CapacityBytes
	cells = append(cells, modeCell{
		name:   "random-read",
		op:     "Read",
		labels: []string{"Read"},
		scfg: workload.SyntheticConfig{
			Nodes:       8,
			Mode:        iotrace.ModeAsync,
			RecordBytes: 64 * 1024,
			Records:     32,
			Read:        true,
			Random:      true,
			Seed:        42,
			FileBytes:   128 * capBytes,
		},
	})

	pairs, err := runModePairs("mode sweep", "cached", cells, base, cachedCfg)
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.CacheComparison, 0, len(cells))
	for i, cell := range cells {
		rows = append(rows, compare(cell.name, cell.op, pairs[i][0], pairs[i][1], cell.labels...))
	}
	return rows, nil
}
