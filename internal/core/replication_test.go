package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// threeZones labels a fleet's I/O nodes round-robin across three outage
// domains, the layout the scenario fleet templates generate.
func threeZones(cfg *pfs.Config) {
	cfg.Nodes = make([]pfs.NodeConfig, cfg.IONodes)
	for i := range cfg.Nodes {
		cfg.Nodes[i].Zone = i % 3
	}
}

// fileImage fingerprints only the logical file contents — identity, size and
// end-of-run audit verdict — so it compares across replication factors (the
// per-node block coverage legitimately grows with each copy).
func fileImage(fs *pfs.FileSystem) string {
	fs.AuditIntegrity()
	var b strings.Builder
	for _, fi := range fs.Files() {
		fmt.Fprintf(&b, "file %d %s %d clean=%v\n",
			fi.ID, fi.Name, fi.Size, fs.VerifyFile(fi.Name, "regression"))
	}
	return b.String()
}

// replicatedStudy configures a small study with integrity auditing, failover,
// N-way replication over three zones, and the repair daemon.
func replicatedStudy(app AppID, rf int) Study {
	study := SmallStudy(app)
	study.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	study.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
	study.Machine.PFS.Replication = pfs.ReplicationConfig{
		Factor: rf, Repair: pfs.DefaultRepairConfig(),
	}
	threeZones(&study.Machine.PFS)
	return study
}

// appImageAtRF runs one application study and fingerprints the logical file
// image.
func appImageAtRF(t *testing.T, app AppID, rf int) string {
	t.Helper()
	study := replicatedStudy(app, rf)
	_, rt, err := prepare(study)
	if err != nil {
		t.Fatalf("%s rf=%d: %v", app, rf, err)
	}
	if err := workload.Run(rt.m, rt.fs, rt.app); err != nil {
		t.Fatalf("%s rf=%d: %v", app, rf, err)
	}
	if ae, ok := rt.app.(appErr); ok {
		if err := ae.Err(); err != nil {
			t.Fatalf("%s rf=%d: %v", app, rf, err)
		}
	}
	return fileImage(rt.m.PFS)
}

// TestReplicationFileImageApps: every application must leave a byte-identical
// logical file image at RF 1, 2 and 3 — replication is a durability knob, not
// a semantics knob.
func TestReplicationFileImageApps(t *testing.T) {
	for _, app := range Apps() {
		base := appImageAtRF(t, app, 1)
		if !strings.Contains(base, "clean=true") || strings.Contains(base, "clean=false") {
			t.Fatalf("%s: rf=1 baseline audit unclean:\n%s", app, base)
		}
		for rf := 2; rf <= 3; rf++ {
			if got := appImageAtRF(t, app, rf); got != base {
				t.Errorf("%s: file image differs at rf=%d:\n--- rf=1 ---\n%s--- rf=%d ---\n%s",
					app, rf, base, rf, got)
			}
		}
	}
}

// modeImageAtRF runs the phase-aligned synthetic workload under one access
// mode and replication factor.
func modeImageAtRF(t *testing.T, mode iotrace.AccessMode, rf int) string {
	t.Helper()
	pcfg := pfs.DefaultConfig()
	pcfg.Integrity = integrity.Config{Enabled: true}
	pcfg.Failover = pfs.DefaultFailoverConfig()
	pcfg.Replication = pfs.ReplicationConfig{Factor: rf, Repair: pfs.DefaultRepairConfig()}
	threeZones(&pcfg)
	m, err := workload.NewMachine(workload.MachineConfig{ComputeNodes: 8, PFS: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	m.PFS.SetRecorder(pablo.NewTracer(false))
	app, err := workload.NewSynthetic(workload.SyntheticConfig{
		Nodes:       8,
		Mode:        mode,
		RecordBytes: 4096,
		Records:     16,
		Barrier:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Run(m, workload.WrapPFS(m.PFS), app); err != nil {
		t.Fatalf("%s rf=%d: %v", mode, rf, err)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("%s rf=%d: %v", mode, rf, err)
	}
	return fileImage(m.PFS)
}

// TestReplicationFileImageModes: the synthetic workload must leave a
// byte-identical logical file image under every access mode at every RF.
func TestReplicationFileImageModes(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		base := modeImageAtRF(t, mode, 1)
		if strings.Contains(base, "clean=false") {
			t.Fatalf("%s: rf=1 baseline audit unclean:\n%s", mode, base)
		}
		for rf := 2; rf <= 3; rf++ {
			if got := modeImageAtRF(t, mode, rf); got != base {
				t.Errorf("%s: file image differs at rf=%d:\n--- rf=1 ---\n%s--- rf=%d ---\n%s",
					mode, rf, base, rf, got)
			}
		}
	}
}

// zoneOutagePlan fails every zone-1 I/O node of a three-zone, 16-node fleet
// simultaneously.
func zoneOutagePlan(nion int, at, dur sim.Time) fault.Plan {
	var plan fault.Plan
	for n := 0; n < nion; n++ {
		if n%3 == 1 {
			plan.Events = append(plan.Events, fault.Event{
				Kind: fault.IONodeOutage, At: at, Node: n, Duration: dur,
			})
		}
	}
	return plan
}

// TestZoneOutageRF3PaperScale is the tentpole oracle at full paper scale: the
// ESCAT paper run with RF=3 over three zones must survive a complete zone
// outage with zero lost bytes — the final file image byte-identical to the
// no-fault run — and the repair daemon must restore full redundancy in
// finite time.
func TestZoneOutageRF3PaperScale(t *testing.T) {
	build := func(plan fault.Plan) Study {
		study := PaperStudy(ESCAT)
		study.KeepTrace = false
		study.Machine.PFS.Integrity = integrity.Config{Enabled: true}
		study.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
		study.Machine.PFS.Replication = pfs.ReplicationConfig{
			Factor: 3, Repair: pfs.DefaultRepairConfig(),
		}
		threeZones(&study.Machine.PFS)
		study.Faults = plan
		return study
	}

	run := func(study Study) (*Report, string) {
		s, rt, err := prepare(study)
		if err != nil {
			t.Fatal(err)
		}
		var events []fault.Event
		if !s.Faults.Empty() {
			events = s.Faults.Materialize(s.FaultSeed, s.Machine.PFS.IONodes, s.Machine.ComputeNodes)
		}
		rt.inject(s, events)
		if err := workload.Run(rt.m, rt.fs, rt.app); err != nil {
			t.Fatalf("app died despite RF=3: %v", err)
		}
		if ae, ok := rt.app.(appErr); ok {
			if err := ae.Err(); err != nil {
				t.Fatalf("app error despite RF=3: %v", err)
			}
		}
		return rt.report(s), fileImage(rt.m.PFS)
	}

	// ESCAT's quadrature writes start at ~170 s and run to the end; a 60 s
	// zone blackout at t=175 s lands mid-write.
	faulted, faultImage := run(build(zoneOutagePlan(16, 175*sim.Second, 60*sim.Second)))
	_, baseImage := run(build(fault.Plan{}))

	if strings.Contains(baseImage, "clean=false") {
		t.Fatalf("no-fault audit unclean:\n%s", baseImage)
	}
	if faultImage != baseImage {
		t.Errorf("zone outage lost bytes: file image differs\n--- no-fault ---\n%s--- outage ---\n%s",
			baseImage, faultImage)
	}
	fo := faulted.Failover
	if fo.Reroutes == 0 {
		t.Error("outage never bit: no failover reroutes recorded")
	}
	if fo.Failed != 0 {
		t.Errorf("Failed = %d, want 0 at RF=3", fo.Failed)
	}
	st := faulted.Repair
	if st.Outages == 0 {
		t.Error("repair plane observed no outages")
	}
	if st.LedgerPuts == 0 || st.ChunksRepaired != st.LedgerPuts {
		t.Errorf("repair incomplete: puts=%d repaired=%d abandoned=%d",
			st.LedgerPuts, st.ChunksRepaired, st.Abandoned)
	}
	if st.LedgerPuts != st.LedgerDrains {
		t.Errorf("ledger not drained: puts=%d drains=%d", st.LedgerPuts, st.LedgerDrains)
	}
	if st.TimeToFullRedundancy() <= 0 {
		t.Errorf("TimeToFullRedundancy = %v, want > 0 (repair takes finite, nonzero time)",
			st.TimeToFullRedundancy())
	}
	if st.WindowOfVulnerability() <= 0 {
		t.Errorf("WindowOfVulnerability = %v, want > 0", st.WindowOfVulnerability())
	}
}

// TestReplicatedSweepsByteIdenticalAcrossWorkers: the checkpoint-interval
// sweep of a replicated, repairing, zone-outage-riddled study must render
// byte-identically at any -parallel worker count.
func TestReplicatedSweepsByteIdenticalAcrossWorkers(t *testing.T) {
	defer exec.SetWorkers(0)

	sweep := func() string {
		rs := ResilientStudy{
			Study:       replicatedStudy(ESCAT, 3),
			RestartCost: 1500 * sim.Millisecond,
			MaxAttempts: 4,
		}
		rs.Study.Faults = zoneOutagePlan(16, 3*sim.Second, 1*sim.Second)
		pts, err := TradeoffSweep(rs, []int{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, pt := range pts {
			fmt.Fprintf(&b, "%+v\n", pt)
		}
		return b.String()
	}

	exec.SetWorkers(1)
	seq := sweep()
	exec.SetWorkers(8)
	par := sweep()
	if seq != par {
		t.Fatalf("sweep differs across worker counts:\n--- 1 ---\n%s--- 8 ---\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("sweep rendered nothing")
	}
}
