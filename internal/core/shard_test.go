package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// shardCounts is the oracle's sweep: shards=1 is the serial reference every
// other count must match byte for byte.
var shardCounts = []int{1, 2, 4, 8}

// fleetFingerprint renders everything the acceptance criteria hold fixed
// across shard counts: each cell's final file image (with audit verdicts and
// per-node checksum coverage), its full trace digest, and the headline
// report numbers.
func fleetFingerprint(fr *FleetReport, cells []*fleetCell) string {
	var b strings.Builder
	for i, c := range cells {
		r := fr.Cells[i]
		fmt.Fprintf(&b, "== cell %d start=%d wall=%d events=%d trace=%016x\n",
			i, fr.Starts[i], r.Wall, len(r.Events), traceDigest(r.Events))
		fmt.Fprintf(&b, "summary %+v\n", r.Summary)
		fmt.Fprintf(&b, "incidents %d failover %+v repair %+v\n",
			len(r.Incidents), r.Failover, r.Repair)
		b.WriteString(fingerprint(c.rt.m.PFS))
	}
	fmt.Fprintf(&b, "makespan %d\n", fr.Makespan)
	return b.String()
}

// traceDigest hashes a rendered event trace; two traces with equal digests
// and equal lengths are identical for the oracle's purposes.
func traceDigest(events []iotrace.Event) uint64 {
	h := fnv.New64a()
	for i := range events {
		fmt.Fprintf(h, "%+v\n", events[i])
	}
	return h.Sum64()
}

// fleetImage runs one fleet configuration and fingerprints it.
func fleetImage(t *testing.T, s Study, opts FleetOptions) string {
	t.Helper()
	fr, cells, err := runFleet(s, opts)
	if err != nil {
		t.Fatalf("fleet (shards=%d): %v", opts.Shards, err)
	}
	if want := int64(opts.Cells); fr.Fabric.Mail != want {
		t.Fatalf("fleet delivered %d launch mails, want %d", fr.Fabric.Mail, want)
	}
	return fleetFingerprint(fr, cells)
}

// TestFleetByteIdenticalAcrossShardCounts is the acceptance oracle for the
// three applications: a 4-cell staggered fleet must produce byte-identical
// file images, traces, and reports at shards ∈ {1, 2, 4, 8}, with shards=1
// (the serial engine driving every cell in turn) as the reference.
func TestFleetByteIdenticalAcrossShardCounts(t *testing.T) {
	for _, app := range Apps() {
		s := SmallStudy(app)
		s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
		base := FleetOptions{Cells: 4, Stagger: 50 * sim.Millisecond, Shards: 1, Seed: 99}
		ref := fleetImage(t, s, base)
		if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
			t.Fatalf("%s: fleet baseline audit not clean:\n%.600s", app, ref)
		}
		for _, shards := range shardCounts[1:] {
			opts := base
			opts.Shards = shards
			if got := fleetImage(t, s, opts); got != ref {
				t.Errorf("%s: fleet results at shards=%d differ from the serial oracle", app, shards)
			}
		}
	}
}

// syntheticFleetImage builds a fleet of synthetic-workload machines by hand
// on a fabric — the same coordinator-launch topology RunFleet uses, but with
// the mode-parameterized workload the Study API does not carry — and
// fingerprints the merged result.
func syntheticFleetImage(t *testing.T, mode iotrace.AccessMode, cells, workers int) string {
	t.Helper()
	type cell struct {
		m         *workload.Machine
		app       workload.App
		shard     *sim.Shard
		launchErr error
	}
	fab := sim.NewFabric(workers)
	coord := fab.AddShard("coord", 7)
	cs := make([]*cell, cells)
	for i := range cs {
		shard := fab.AddShard(fmt.Sprintf("cell%d", i), 7)
		pcfg := pfs.DefaultConfig()
		pcfg.Integrity = integrity.Config{Enabled: true}
		m, err := workload.NewMachineOn(shard.Engine(), workload.MachineConfig{ComputeNodes: 8, PFS: pcfg})
		if err != nil {
			t.Fatal(err)
		}
		m.PFS.SetRecorder(pablo.NewTracer(false))
		app, err := workload.NewSynthetic(workload.SyntheticConfig{
			Nodes:       8,
			Mode:        mode,
			RecordBytes: 4096,
			Records:     16,
			Barrier:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fab.Connect(coord, shard, m.Mesh.Lookahead())
		cs[i] = &cell{m: m, app: app, shard: shard}
	}
	coord.Engine().Spawn("launcher", func(p *sim.Process) {
		for i, c := range cs {
			c := c
			delay := c.m.Mesh.Lookahead() + sim.Time(i)*20*sim.Millisecond
			coord.Send(p, c.shard, delay, "launch", func(lp *sim.Process) {
				if err := c.app.Launch(c.m, workload.WrapPFS(c.m.PFS)); err != nil {
					c.launchErr = err
					lp.Engine().Stop()
				}
			})
		}
	})
	if err := fab.Run(); err != nil {
		t.Fatalf("mode %v (workers=%d): %v", mode, workers, err)
	}
	var b strings.Builder
	for i, c := range cs {
		if c.launchErr != nil {
			t.Fatalf("mode %v cell %d: %v", mode, i, c.launchErr)
		}
		fmt.Fprintf(&b, "== cell %d end=%d\n", i, c.m.Eng.Now())
		b.WriteString(fingerprint(c.m.PFS))
	}
	return b.String()
}

// TestFleetModeByteIdenticalAcrossShardCounts extends the oracle across all
// six PFS access modes via the phase-aligned synthetic workload.
func TestFleetModeByteIdenticalAcrossShardCounts(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		ref := syntheticFleetImage(t, mode, 4, 1)
		if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
			t.Fatalf("mode %v: baseline audit not clean:\n%.400s", mode, ref)
		}
		for _, shards := range shardCounts[1:] {
			if got := syntheticFleetImage(t, mode, 4, shards); got != ref {
				t.Errorf("mode %v: results at shards=%d differ from the serial oracle", mode, shards)
			}
		}
	}
}

// TestFleetRF3ZoneOutageBurst is the feature-stack oracle: RF=3 zone-aware
// replication riding out a full zone blackout, with the burst tier draining
// through the degraded PFS, must stay byte-identical at every shard count —
// and every cell must still audit clean.
func TestFleetRF3ZoneOutageBurst(t *testing.T) {
	s := SmallStudy(ESCAT)
	s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	s.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
	s.Machine.PFS.Replication = pfs.ReplicationConfig{
		Factor: 3, Repair: pfs.DefaultRepairConfig(),
	}
	threeZones(&s.Machine.PFS)
	s.Burst = identityBurstCfg()
	s.Faults = zoneOutagePlan(s.Machine.PFS.IONodes, 500*sim.Millisecond, sim.Second)
	s.FaultSeed = 11

	base := FleetOptions{Cells: 3, Stagger: 30 * sim.Millisecond, Shards: 1, Seed: 5}
	ref := fleetImage(t, s, base)
	if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
		t.Fatalf("RF3+outage+burst baseline audit not clean:\n%.600s", ref)
	}
	if strings.Contains(ref, "incidents 0 ") {
		t.Fatalf("zone outage was never realized — the oracle is not exercising the fault path:\n%.600s", ref)
	}
	for _, shards := range []int{2, 4} {
		opts := base
		opts.Shards = shards
		if got := fleetImage(t, s, opts); got != ref {
			t.Errorf("RF3+outage+burst results at shards=%d differ from the serial oracle", shards)
		}
	}
}

// TestFleetStaggerAndMakespan sanity-checks the fleet-level aggregates: cell
// starts honor the stagger, and the makespan is the latest cell finish.
func TestFleetStaggerAndMakespan(t *testing.T) {
	s := SmallStudy(RENDER)
	fr, err := RunFleet(s, FleetOptions{Cells: 3, Stagger: sim.Second, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fr.Starts); i++ {
		if fr.Starts[i]-fr.Starts[i-1] != sim.Second {
			t.Fatalf("stagger between cells %d and %d is %v, want 1s", i-1, i, fr.Starts[i]-fr.Starts[i-1])
		}
	}
	var latest sim.Time
	for _, r := range fr.Cells {
		if r.Wall > latest {
			latest = r.Wall
		}
	}
	if fr.Makespan != latest {
		t.Fatalf("makespan %v != latest cell wall %v", fr.Makespan, latest)
	}
	if fr.Fabric.Shards != 4 { // coordinator + 3 cells
		t.Fatalf("fabric has %d shards, want 4", fr.Fabric.Shards)
	}
}
