package core

import (
	"fmt"
	"sort"

	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ResilientStudy describes a chaos run with checkpoint/restart: the study's
// fault plan is injected, and when a fault kills the application the machine
// is rebuilt and the application restarted from its last committed
// checkpoint, with the remaining fault schedule carried over.
type ResilientStudy struct {
	Study

	// Ckpt is the checkpoint policy. Interval <= 0 runs without
	// checkpoints: every restart redoes the run from the beginning.
	Ckpt ckpt.Config

	// MaxAttempts bounds the restart loop (default 8).
	MaxAttempts int

	// RestartCost is the fixed wall-clock charge per restart (requeue,
	// relaunch, reload of the executable).
	RestartCost sim.Time

	// preVerify, when set, runs between carried-corruption re-injection and
	// checkpoint restart verification — a test seam for corrupting specific
	// files (e.g. the newest checkpoint generation) deterministically.
	preVerify func(attempt int, coord *ckpt.Coordinator, fs *pfs.FileSystem)
}

// Attempt is one execution attempt's outcome, in absolute time (restart
// costs included in the gaps between attempts).
type Attempt struct {
	Start, End sim.Time
	ResumeUnit int    // work unit the attempt started from
	Failed     bool   // attempt died to a fault
	Err        string // first node failure (empty on success)
}

// Wall returns the attempt's duration.
func (a Attempt) Wall() sim.Time { return a.End - a.Start }

// ResilientReport is the outcome of a resilient run.
type ResilientReport struct {
	// Final is the successful attempt's full report (attempt-local times).
	Final *Report

	Attempts  []Attempt
	Incidents []fault.Incident // realized faults across attempts, absolute times
	Ckpt      ckpt.Stats
	LostWork  sim.Time // computed work discarded by failures
	Wall      sim.Time // absolute completion time including restarts

	// BurstLostBytes counts burst-log bytes that died undrained with failed
	// attempts — committed by the application but never persisted to the PFS.
	BurstLostBytes int64
}

// failedAtter lets the driver read the simulated instant an app first died.
type failedAtter interface {
	FailedAt() (sim.Time, bool)
}

// attachCkpt wires a checkpointer into the study's application config and
// reports whether the application supports one.
func attachCkpt(s *Study, c workload.Checkpointer) bool {
	switch s.App {
	case ESCAT:
		cfg := escat.DefaultConfig()
		if s.ESCATConfig != nil {
			cfg = *s.ESCATConfig
		}
		cfg.Ckpt = c
		s.ESCATConfig = &cfg
		return true
	case HTF:
		cfg := htf.DefaultConfig()
		if s.HTFConfig != nil {
			cfg = *s.HTFConfig
		}
		cfg.Ckpt = c
		s.HTFConfig = &cfg
		return true
	}
	return false
}

// appNodes returns the application's compute-node count under the study's
// configuration.
func appNodes(s Study) int {
	switch s.App {
	case ESCAT:
		if s.ESCATConfig != nil {
			return s.ESCATConfig.Nodes
		}
		return escat.DefaultConfig().Nodes
	case HTF:
		if s.HTFConfig != nil {
			return s.HTFConfig.Nodes
		}
		return htf.DefaultConfig().Nodes
	}
	return s.Machine.ComputeNodes
}

// lastEventEnd returns the completion instant of the latest traced operation
// — the application's effective finish, excluding injector processes (a
// background RAID rebuild, say) and burst-tier drain writes that keep the
// simulated clock running after the application is done.
func lastEventEnd(events []iotrace.Event) sim.Time {
	var end sim.Time
	for _, e := range events {
		if e.Phase == pfs.PhaseBurstDrain {
			continue
		}
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// RunResilient executes the study under its fault plan with restart-from-
// checkpoint semantics. Determinism: the fault schedule is materialized once
// from (Faults, FaultSeed) and each attempt replays its still-relevant
// remainder, so the same study and seed produce the same attempt history.
func RunResilient(rs ResilientStudy) (*ResilientReport, error) {
	s := rs.Study
	if s.Machine.ComputeNodes == 0 {
		s = mergeDefaults(s)
	}
	// The driver measures attempt completion from the trace.
	s.KeepTrace = true
	if rs.MaxAttempts <= 0 {
		rs.MaxAttempts = 8
	}

	var coord *ckpt.Coordinator
	if rs.Ckpt.Interval > 0 {
		var err error
		coord, err = ckpt.New(rs.Ckpt, appNodes(s))
		if err != nil {
			return nil, err
		}
		if !attachCkpt(&s, coord) {
			return nil, fmt.Errorf("core: %s does not support checkpointing", s.App)
		}
	}

	var events []fault.Event
	if !s.Faults.Empty() {
		events = s.Faults.Materialize(s.FaultSeed, s.Machine.PFS.IONodes, s.Machine.ComputeNodes)
	}

	rr := &ResilientReport{}
	base := sim.Time(0)
	// carried is the corruption ledger harvested from each dying attempt's
	// storage: latent corruption does not go away because the application
	// restarted, so it is re-injected into the fresh instance.
	var carried []pfs.CorruptRange
	for attempt := 0; attempt < rs.MaxAttempts; attempt++ {
		s, rt, err := prepare(s)
		if err != nil {
			return nil, err
		}
		if coord != nil {
			if err := coord.Prepare(rt.m, rt.fs, base); err != nil {
				return nil, err
			}
			if rt.burst != nil {
				// Route checkpoint files through the burst tier regardless
				// of the I/O mode the checkpointer opens them with.
				rt.burst.InterceptPrefix(coord.FileBase())
			}
		}
		rt.m.PFS.InjectCorruption(carried)
		if coord != nil {
			if rs.preVerify != nil {
				rs.preVerify(attempt, coord, rt.m.PFS)
			}
			// Reject checkpoint generations whose storage holds latent
			// corruption before the application restores from them.
			coord.VerifyRestart(rt.m.PFS)
		}
		resume := 0
		if coord != nil {
			resume = coord.ResumeUnit()
		}
		inj := rt.inject(s, fault.ShiftForRestart(events, base))
		runErr := workload.Run(rt.m, rt.fs, rt.app)

		var nodeErr error
		if ae, ok := rt.app.(appErr); ok {
			nodeErr = ae.Err()
		}
		var nodeLoss *fault.NodeLossEvent
		if inj != nil {
			if nl, ok := inj.FirstNodeLoss(); ok {
				nodeLoss = &nl
				if nodeErr == nil {
					// The loss froze the engine before any node program
					// could observe an error; the attempt is dead anyway.
					nodeErr = fmt.Errorf("compute node %d lost at %v", nl.Node, nl.At)
				}
			}
		}
		if nodeErr == nil && runErr != nil {
			// Not an application death from a fault: a real failure.
			return nil, runErr
		}

		if nodeErr == nil {
			r := rt.report(s)
			r.Wall = lastEventEnd(r.Events)
			if inj != nil {
				inj.CloseOpen(r.Wall)
				rr.addIncidents(capIncidents(inj.Incidents(), r.Wall), base)
			}
			rr.Final = r
			rr.Attempts = append(rr.Attempts, Attempt{
				Start: base, End: base + r.Wall, ResumeUnit: resume,
			})
			rr.Wall = base + r.Wall
			if coord != nil {
				rr.Ckpt = coord.Stats()
				if r.Integrity != nil {
					r.Integrity.CkptVerifyRejects = rr.Ckpt.VerifyRejects
					r.Integrity.CkptFallbacks = rr.Ckpt.Fallbacks
				}
			}
			if r.Integrity != nil {
				rr.addIncidents(fault.CorruptionIncidents(r.Integrity.Events), base)
			}
			rr.sortIncidents()
			return rr, nil
		}

		// The attempt died. Its end is the first node failure; everything
		// after the last committed checkpoint is lost work.
		failedAt, ok := failAt(rt.app)
		if !ok {
			failedAt = rt.m.Eng.Now()
			if nodeLoss != nil {
				failedAt = nodeLoss.At
			}
		}
		if inj != nil {
			inj.CloseOpen(failedAt)
			// The attempt was abandoned at failedAt: anything the injector
			// timeline says happened after that (a rebuild completing in the
			// dead machine's engine) didn't.
			rr.addIncidents(capIncidents(inj.Incidents(), failedAt), base)
		}
		rr.addIncidents(fault.CorruptionIncidents(rt.m.PFS.IntegrityEvents()), base)
		// Harvest the dying storage's corruption ledger for the next attempt.
		carried = rt.m.PFS.HarvestCorruption()
		if rt.burst != nil {
			// Undrained log content dies with the attempt: it was committed
			// to volatile node memory, never to the PFS. Checkpoint
			// generations with pending records are not restartable.
			und := rt.burst.UndrainedFiles()
			for _, b := range und {
				rr.BurstLostBytes += b
			}
			if coord != nil {
				coord.RejectUndrained(und)
			}
		}
		lostFrom := base
		if coord != nil && coord.Have() && coord.LastCommitAt() > base {
			lostFrom = coord.LastCommitAt()
		}
		rr.LostWork += base + failedAt - lostFrom
		rr.Attempts = append(rr.Attempts, Attempt{
			Start: base, End: base + failedAt, ResumeUnit: resume,
			Failed: true, Err: nodeErr.Error(),
		})
		base += failedAt + rs.RestartCost
	}
	if coord != nil {
		rr.Ckpt = coord.Stats()
	}
	rr.sortIncidents()
	return rr, fmt.Errorf("core: %s did not complete within %d attempts (%d failures)",
		s.App, rs.MaxAttempts, len(rr.Attempts))
}

// sortIncidents restores global start-time order after per-attempt merges.
func (rr *ResilientReport) sortIncidents() {
	sort.SliceStable(rr.Incidents, func(i, j int) bool {
		return rr.Incidents[i].Start < rr.Incidents[j].Start
	})
}

func failAt(app workload.App) (sim.Time, bool) {
	if f, ok := app.(failedAtter); ok {
		return f.FailedAt()
	}
	return 0, false
}

// addIncidents rebases one attempt's incident timeline to absolute time.
func (rr *ResilientReport) addIncidents(incs []fault.Incident, base sim.Time) {
	for _, inc := range incs {
		inc.Start += base
		inc.End += base
		rr.Incidents = append(rr.Incidents, inc)
	}
}

// capIncidents truncates an attempt's incident timeline at the instant the
// application stopped mattering — the failure on an abandoned attempt, the
// last traced operation on a successful one. Incidents starting later are
// dropped, ones spanning the cut are left open-ended there.
func capIncidents(incs []fault.Incident, cut sim.Time) []fault.Incident {
	var out []fault.Incident
	for _, inc := range incs {
		if inc.Start > cut {
			continue
		}
		if inc.End > cut {
			inc.End = cut
			inc.Open = true
		}
		out = append(out, inc)
	}
	return out
}
