package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/burst"
	"repro/internal/ckpt"
	"repro/internal/exec"
)

// OutputPrefixes returns the file-name prefixes of an application's bulk
// write traffic, for routing ordinary output through the burst log (the
// iochar command's -burst mode; none of the paper's applications use M_LOG,
// and outside a resilient run there is no checkpoint traffic to absorb).
func OutputPrefixes(app AppID) []string {
	switch app {
	case ESCAT:
		return []string{"escat.quad", "escat.sys"}
	case RENDER:
		return []string{"frame"}
	case HTF:
		return []string{"integrals.", "pscf.scratch", "htf."}
	}
	return nil
}

// BurstSweep runs each of the paper's three applications twice — writing
// straight to the PFS, then through the burst tier — under the same
// checkpoint policy, and reports the makespan and checkpoint-stall changes.
// ESCAT and HTF checkpoint their work loops, producing exactly the bursty
// write traffic the tier absorbs; RENDER has no checkpointer, so its frame
// outputs are routed through the log by name prefix and its row isolates the
// tier's effect on ordinary output writes.
func BurstSweep(small bool, ck ckpt.Config, bcfg burst.Config) ([]analysis.BurstComparison, error) {
	bcfg.Enabled = true
	apps := Apps()
	type job struct {
		app   AppID
		burst bool
	}
	jobs := make([]job, 0, 2*len(apps))
	for _, app := range apps {
		jobs = append(jobs, job{app, false}, job{app, true})
	}
	reports, err := exec.Map(jobs, func(_ int, j job) (*ResilientReport, error) {
		study := PaperStudy(j.app)
		if small {
			study = SmallStudy(j.app)
		}
		kind := "direct"
		if j.burst {
			study.Burst = bcfg
			if j.app == RENDER {
				study.Burst.Prefixes = append(OutputPrefixes(RENDER), bcfg.Prefixes...)
			}
			kind = "burst"
		}
		rs := ResilientStudy{Study: study, Ckpt: ck, MaxAttempts: 1}
		if j.app == RENDER {
			// RENDER has no work-unit loop to checkpoint.
			rs.Ckpt.Interval = 0
		}
		rr, err := RunResilient(rs)
		if err != nil {
			return nil, fmt.Errorf("burst sweep: %s %s: %w", j.app, kind, err)
		}
		return rr, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.BurstComparison, 0, len(apps))
	for i, app := range apps {
		direct, withTier := reports[2*i], reports[2*i+1]
		rows = append(rows, analysis.BurstComparison{
			Name:        string(app),
			DirectWall:  direct.Wall,
			BurstWall:   withTier.Wall,
			DirectStall: direct.Ckpt.Overhead,
			BurstStall:  withTier.Ckpt.Overhead,
			Report:      withTier.Final.Burst,
		})
	}
	return rows, nil
}
