package core

import (
	"fmt"
	"strings"

	"repro/internal/apps/escat"
	"repro/internal/exec"
	"repro/internal/sim"
)

// ScalingPoint is one row of a node-scaling sweep.
type ScalingPoint struct {
	Nodes     int
	Wall      sim.Time // simulated wall clock
	IOTime    sim.Time // summed node time in I/O
	SeekWrite sim.Time // the contended quadrature path (ESCAT's bottleneck)
}

// ESCATScaling runs the ESCAT skeleton across compute-partition sizes with
// the per-node work held constant, quantifying how the shared-file
// small-write pattern scales — the paper's observation that production runs
// "generate similar behavior, but with ten to twenty hour executions on 512
// processors" and §8's warning that small-request patterns do not ride the
// hardware's parallelism.
func ESCATScaling(nodeCounts []int, iterations int) ([]ScalingPoint, error) {
	return exec.Map(nodeCounts, func(_ int, n int) (ScalingPoint, error) {
		cfg := escat.DefaultConfig()
		cfg.Nodes = n
		cfg.Iterations = iterations
		cfg.ComputeStart = 20 * sim.Second
		cfg.ComputeEnd = 10 * sim.Second
		study := PaperStudy(ESCAT)
		study.ESCATConfig = &cfg
		study.Machine.ComputeNodes = n
		r, err := Run(study)
		if err != nil {
			return ScalingPoint{}, fmt.Errorf("scaling at %d nodes: %w", n, err)
		}
		pt := ScalingPoint{Nodes: n, Wall: r.Wall, IOTime: r.Summary.Total.NodeTime}
		if w := r.Summary.Row("Write"); w != nil {
			pt.SeekWrite += w.NodeTime
		}
		if s := r.Summary.Row("Seek"); s != nil {
			pt.SeekWrite += s.NodeTime
		}
		return pt, nil
	})
}

// RenderScaling formats a scaling sweep.
func RenderScaling(pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %14s %16s\n", "nodes", "wall", "I/O node-time", "seek+write time")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %11.1fs %13.1fs %15.1fs\n",
			p.Nodes, p.Wall.Seconds(), p.IOTime.Seconds(), p.SeekWrite.Seconds())
	}
	return b.String()
}
