package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func TestCorruptionSweepDetectsEverything(t *testing.T) {
	rows, err := CorruptionSweep(true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 apps x 3 classes", len(rows))
	}
	perClass := map[integrity.Class]int{}
	for _, r := range rows {
		if r.Latent != 0 {
			t.Errorf("%s/%s: %d corruptions neither detected nor resolved", r.App, r.Class, r.Latent)
		}
		if r.Detected+r.Repaired < r.Injected {
			t.Errorf("%s/%s: injected %d > detected %d + repaired %d",
				r.App, r.Class, r.Injected, r.Detected, r.Repaired)
		}
		perClass[r.Class] += r.Injected
	}
	for _, c := range []integrity.Class{integrity.BitRot, integrity.TornWrite, integrity.Misdirected} {
		if perClass[c] == 0 {
			t.Errorf("sweep injected no %s anywhere — the class's detection path is unexercised", c)
		}
	}
}

func TestCorruptionSweepDeterministic(t *testing.T) {
	a, errA := CorruptionSweep(true, 11)
	b, errB := CorruptionSweep(true, 11)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed sweeps differ:\n%+v\n%+v", a, b)
	}
}

func TestModeIntegritySweepOverhead(t *testing.T) {
	rows, err := ModeIntegritySweep(integrity.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want all six access modes", len(rows))
	}
	anyOverhead := false
	for _, r := range rows {
		if r.Ops == 0 {
			t.Errorf("%s: no operations measured", r.Mode)
		}
		if r.Verified < r.BaseMean {
			t.Errorf("%s: verified mean %v below base %v — checksums cannot speed I/O up",
				r.Mode, r.Verified, r.BaseMean)
		}
		if r.Overhead() > 0 {
			anyOverhead = true
		}
	}
	if !anyOverhead {
		t.Error("no mode shows verify overhead; the cost model is not wired in")
	}
}

// Single-attempt corruption run: the integrity report must account for every
// injection, and the incident timeline must carry one entry per corruption.
func TestRunCorruptionReportAndIncidents(t *testing.T) {
	s := SmallStudy(ESCAT)
	s.Machine.PFS.Integrity = integrity.Config{
		Enabled: true,
		Scrub:   integrity.ScrubConfig{Enabled: true, RateBytesPerS: 16 << 20, Window: 30 * sim.Second},
	}
	s.Faults.Corruption = fault.CorruptionPlan{
		BitRotPerGBHour: 2e5, End: 30 * sim.Second,
		TornWriteProb: 0.02, MisdirectProb: 0.02,
	}
	s.FaultSeed = 5
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Integrity == nil {
		t.Fatal("no integrity report")
	}
	tot := r.Integrity.Total
	if tot.Injected == 0 {
		t.Fatal("corruption plan injected nothing")
	}
	if silent := tot.Silent(); silent != 0 {
		t.Errorf("%d corruptions left silent after the end-of-run audit", silent)
	}
	corrInc := 0
	for _, inc := range r.Incidents {
		switch inc.Kind {
		case fault.BitRot, fault.TornWrite, fault.MisdirectedWrite:
			corrInc++
		}
	}
	if corrInc != int(tot.Injected) {
		t.Errorf("incident timeline has %d corruption entries, want %d (one per injection)",
			corrInc, tot.Injected)
	}
	if r.Wall >= 30*sim.Second {
		t.Errorf("wall %v not capped at the application's finish", r.Wall)
	}
}

// Reliability layer under a node outage: deadlines and seeded retry jitter
// stay deterministic.
func TestRunReliabilityDeterministic(t *testing.T) {
	mk := func() Study {
		s := SmallStudy(ESCAT)
		s.Machine.PFS.Reliability = pfs.DefaultReliabilityConfig()
		s.Faults = fault.Plan{Events: []fault.Event{{
			Kind: fault.IONodeOutage, At: 2 * sim.Second, Node: 3,
			Duration: 300 * sim.Millisecond,
		}}}
		s.FaultSeed = 3
		return s
	}
	a, errA := Run(mk())
	b, errB := Run(mk())
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if a.Wall != b.Wall {
		t.Errorf("walls differ: %v vs %v", a.Wall, b.Wall)
	}
	if a.Integrity == nil || b.Integrity == nil {
		t.Fatal("reliability stats not surfaced")
	}
	if !reflect.DeepEqual(a.Integrity.Reliability, b.Integrity.Reliability) {
		t.Errorf("reliability counters differ:\n%+v\n%+v",
			a.Integrity.Reliability, b.Integrity.Reliability)
	}
	if a.Integrity.Reliability.Requests == 0 {
		t.Error("no requests counted by the reliability layer")
	}
}

// fallbackStudy kills ESCAT after two checkpoint commits (units 2 and 4), so
// a restart normally resumes from unit 4 off generation file .1.
func fallbackStudy() ResilientStudy {
	s := SmallStudy(ESCAT)
	s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	s.Faults = fault.Plan{Cascades: []fault.Cascade{{
		Kind: fault.IONodeOutage, At: 5900 * sim.Millisecond,
		Nodes: 16, FirstNode: 0, Spacing: 0, Duration: 1200 * sim.Millisecond,
	}}}
	s.FaultSeed = 7
	return ResilientStudy{
		Study:       s,
		Ckpt:        ckpt.Config{Interval: 2, BytesPerNode: 4096, FileName: "escat.ckpt"},
		RestartCost: 1500 * sim.Millisecond,
	}
}

// corruptNewestCkpt is the preVerify seam: it marks the newest committed
// checkpoint generation's first block corrupt before restart verification.
func corruptNewestCkpt(t *testing.T) func(int, *ckpt.Coordinator, *pfs.FileSystem) {
	return func(attempt int, coord *ckpt.Coordinator, fs *pfs.FileSystem) {
		if attempt != 1 {
			return
		}
		// Commits alternate starting at generation 1, so after k commits the
		// newest valid generation is k%2.
		newest := coord.Stats().Checkpoints % 2
		name := fmt.Sprintf("escat.ckpt.%d", newest)
		n := fs.InjectCorruption([]pfs.CorruptRange{{
			File: name, Offset: 0, Bytes: 1, Class: integrity.TornWrite,
		}})
		if n != 1 {
			t.Fatalf("corrupting %s: %d ranges applied, want 1", name, n)
		}
	}
}

// Satellite: a corrupted newest checkpoint is rejected at restart, the run
// falls back to the previous valid generation and completes — byte-
// identically to a reference run that resumed from that same generation.
func TestResilientCkptFallbackOnCorruptCheckpoint(t *testing.T) {
	rs := fallbackStudy()
	rs.preVerify = corruptNewestCkpt(t)
	rr, err := RunResilient(rs)
	if err != nil {
		t.Fatalf("RunResilient: %v", err)
	}
	if rr.Final == nil {
		t.Fatal("no final report")
	}
	if len(rr.Attempts) != 2 {
		t.Fatalf("attempts = %+v", rr.Attempts)
	}
	if got := rr.Attempts[1].ResumeUnit; got != 2 {
		t.Errorf("resumed from unit %d, want 2 (fallback to the older generation)", got)
	}
	if rr.Ckpt.VerifyRejects != 1 || rr.Ckpt.Fallbacks != 1 {
		t.Errorf("verify rejects/fallbacks = %d/%d, want 1/1",
			rr.Ckpt.VerifyRejects, rr.Ckpt.Fallbacks)
	}
	if rr.Final.Integrity == nil {
		t.Fatal("no integrity report on final attempt")
	}
	if rr.Final.Integrity.CkptVerifyRejects != 1 || rr.Final.Integrity.CkptFallbacks != 1 {
		t.Errorf("integrity report ckpt verify = %d/%d, want 1/1",
			rr.Final.Integrity.CkptVerifyRejects, rr.Final.Integrity.CkptFallbacks)
	}

	// Without the corruption the same study resumes from unit 4.
	clean, err := RunResilient(fallbackStudy())
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.Attempts[1].ResumeUnit; got != 4 {
		t.Errorf("clean run resumed from unit %d, want 4", got)
	}
	if clean.Ckpt.VerifyRejects != 0 || clean.Ckpt.Fallbacks != 0 {
		t.Errorf("clean run verify stats: %+v", clean.Ckpt)
	}

	// Reference: a run whose failure landed after only one commit resumes
	// from unit 2 legitimately. Its final attempt must be byte-identical to
	// the fallback run's final attempt — same resume unit, same restore,
	// same traced operations on each attempt-local clock.
	ref := fallbackStudy()
	ref.Study.Faults = fault.Plan{Cascades: []fault.Cascade{{
		Kind: fault.IONodeOutage, At: 4200 * sim.Millisecond,
		Nodes: 16, FirstNode: 0, Spacing: 0, Duration: 1200 * sim.Millisecond,
	}}}
	refRR, err := RunResilient(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := refRR.Attempts[1].ResumeUnit; got != 2 {
		t.Fatalf("reference resumed from unit %d, want 2", got)
	}
	if !reflect.DeepEqual(rr.Final.Events, refRR.Final.Events) {
		t.Error("fallback run's final attempt trace differs from the unit-2 reference")
	}
	if !reflect.DeepEqual(rr.Final.Summary, refRR.Final.Summary) {
		t.Errorf("fallback summary differs from reference:\n%+v\n%+v",
			rr.Final.Summary, refRR.Final.Summary)
	}

	// Determinism: the corrupted run replays byte-identically.
	rs2 := fallbackStudy()
	rs2.preVerify = corruptNewestCkpt(t)
	again, err := RunResilient(rs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr.Attempts, again.Attempts) ||
		!reflect.DeepEqual(rr.Incidents, again.Incidents) ||
		!reflect.DeepEqual(rr.Final.Events, again.Final.Events) {
		t.Error("same-seed corrupted runs differ")
	}
}
