package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
)

// PaperRow is one row of a paper table: the published values this
// reproduction targets.
type PaperRow struct {
	Op      string
	Count   int64
	Volume  int64 // -1 when the paper prints "-"
	Seconds float64
	Pct     float64
}

// PaperTable is one published operation-summary table.
type PaperTable struct {
	Name  string // e.g. "Table 1 (ESCAT)"
	App   AppID
	Phase string // empty = whole run; HTF uses per-program phases
	Rows  []PaperRow
}

// PaperTables returns the paper's Tables 1, 3 and 5 verbatim, for
// paper-vs-measured reporting.
func PaperTables() []PaperTable {
	return []PaperTable{
		{
			Name: "Table 1 (ESCAT)", App: ESCAT,
			Rows: []PaperRow{
				{"All I/O", 26418, 60983136, 38788.95, 100},
				{"Read", 560, 34226048, 81.19, 0.21},
				{"Write", 13330, 26757088, 16268.50, 41.94},
				{"Seek", 12034, -1, 20884.11, 53.84},
				{"Open", 262, -1, 1179.06, 3.04},
				{"Close", 262, -1, 376.06, 0.97},
			},
		},
		{
			Name: "Table 3 (RENDER)", App: RENDER,
			Rows: []PaperRow{
				{"All I/O", 1504, 979162982, 164.75, 100},
				{"Read", 121, 8457, 0.17, 0.10},
				{"AsynchRead", 436, 880849125, 4.60, 2.79},
				{"I/O Wait", 436, -1, 88.44, 53.68},
				{"Write", 300, 98305400, 31.76, 19.28},
				{"Seek", 4, 0, 0.13, 0.08},
				{"Open", 106, -1, 32.78, 19.90},
				{"Close", 101, -1, 6.87, 4.17},
			},
		},
		{
			Name: "Table 5 (HTF initialization)", App: HTF, Phase: "psetup",
			Rows: []PaperRow{
				{"All I/O", 832, 7267422, 55.23, 100},
				{"Read", 371, 3522497, 15.34, 27.77},
				{"Write", 452, 3744872, 5.50, 9.96},
				{"Seek", 2, 53, 0.43, 0.78},
				{"Open", 4, -1, 31.49, 57.02},
				{"Close", 3, -1, 2.47, 4.47},
			},
		},
		{
			Name: "Table 5 (HTF integral calculation)", App: HTF, Phase: "pargos",
			Rows: []PaperRow{
				{"All I/O", 17854, 698992502, 6398.03, 100},
				{"Read", 145, 34393, 0.47, 0.00},
				{"Write", 8535, 698958109, 1996.4, 31.20},
				{"Seek", 130, 0, 0.14, 0.00},
				{"Open", 130, -1, 4056.60, 63.40},
				{"Close", 129, -1, 11.43, 0.18},
				{"Lsize", 128, -1, 15.27, 0.24},
				{"Forflush", 8657, -1, 317.72, 4.98},
			},
		},
		{
			Name: "Table 5 (HTF self-consistent field)", App: HTF, Phase: "pscf",
			Rows: []PaperRow{
				{"All I/O", 52832, 4205483650, 32800.99, 100},
				{"Read", 51499, 4201634304, 32263.20, 98.36},
				{"Write", 207, 3849268, 5.88, 0.02},
				{"Seek", 813, 3495198798, 1.67, 0.00},
				{"Open", 157, -1, 518.74, 1.58},
				{"Close", 156, -1, 11.50, 0.04},
			},
		},
	}
}

// PaperSizeTable is one published size-bucket table.
type PaperSizeTable struct {
	Name  string
	App   AppID
	Phase string
	Read  [4]int64 // <4K, <64K, <256K, >=256K
	Write [4]int64
}

// PaperSizeTables returns the paper's Tables 2, 4 and 6 verbatim.
func PaperSizeTables() []PaperSizeTable {
	return []PaperSizeTable{
		{Name: "Table 2 (ESCAT)", App: ESCAT,
			Read: [4]int64{297, 3, 260, 0}, Write: [4]int64{13330, 0, 0, 0}},
		{Name: "Table 4 (RENDER)", App: RENDER,
			Read: [4]int64{121, 0, 0, 436}, Write: [4]int64{200, 0, 0, 100}},
		{Name: "Table 6 (HTF initialization)", App: HTF, Phase: "psetup",
			Read: [4]int64{151, 220, 0, 0}, Write: [4]int64{218, 234, 0, 0}},
		{Name: "Table 6 (HTF integral calculation)", App: HTF, Phase: "pargos",
			Read: [4]int64{143, 2, 0, 0}, Write: [4]int64{2, 1, 8532, 0}},
		{Name: "Table 6 (HTF self-consistent field)", App: HTF, Phase: "pscf",
			Read: [4]int64{165, 109, 51225, 0}, Write: [4]int64{43, 158, 6, 0}},
	}
}

// summaryFor picks the measured summary matching a paper table.
func summaryFor(r *Report, phase string) analysis.OpSummary {
	if phase == "" {
		return r.Summary
	}
	return r.PhaseSummary(phase)
}

// CompareTable renders a paper-vs-measured view of one operation table.
func CompareTable(pt PaperTable, r *Report) string {
	s := summaryFor(r, pt.Phase)
	var b strings.Builder
	fmt.Fprintf(&b, "%s — paper vs measured\n", pt.Name)
	fmt.Fprintf(&b, "%-12s %12s %12s %14s %14s %8s %8s\n",
		"Operation", "count(P)", "count(M)", "time s(P)", "time s(M)", "%(P)", "%(M)")
	for _, row := range pt.Rows {
		var m *analysis.OpRow
		if row.Op == "All I/O" {
			m = &s.Total
		} else {
			m = s.Row(row.Op)
		}
		if m == nil {
			fmt.Fprintf(&b, "%-12s %12d %12s %14.2f %14s %8.2f %8s\n",
				row.Op, row.Count, "-", row.Seconds, "-", row.Pct, "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s %12d %12d %14.2f %14.2f %8.2f %8.2f\n",
			row.Op, row.Count, m.Count, row.Seconds, m.NodeTime.Seconds(), row.Pct, m.Pct)
	}
	return b.String()
}

// CompareSizeTable renders a paper-vs-measured view of one size table.
func CompareSizeTable(pt PaperSizeTable, r *Report) string {
	var sz analysis.SizeTable
	if pt.Phase == "" {
		sz = r.Sizes
	} else {
		sz = r.PhaseSizes(pt.Phase)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — paper vs measured (buckets <4K / <64K / <256K / >=256K)\n", pt.Name)
	rb, wb := sz.Read.Buckets(), sz.Write.Buckets()
	fmt.Fprintf(&b, "Read  paper %v measured %v\n", pt.Read, rb)
	fmt.Fprintf(&b, "Write paper %v measured %v\n", pt.Write, wb)
	return b.String()
}
