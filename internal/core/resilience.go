package core

import (
	"repro/internal/analysis"
	"repro/internal/exec"
	"repro/internal/fault"
)

// Resilience reduces a single-attempt report to the analysis-layer
// resilience summary (exposure, per-fault latency impact, failover counters).
func (r *Report) Resilience() analysis.ResilienceReport {
	return analysis.ResilienceReport{
		Wall:         r.Wall,
		Attempts:     1,
		Exposure:     analysis.Exposures(r.Incidents),
		Impacts:      analysis.FaultImpacts(r.Events, r.Incidents),
		Timeouts:     r.Failover.Timeouts,
		Retries:      r.Failover.Retries,
		Reroutes:     r.Failover.Reroutes,
		MirrorWrites: r.Failover.MirrorWrites,
		FailedOps:    r.Failover.Failed,
		BackoffTime:  r.Failover.BackoffTime,
	}
}

// Resilience reduces the resilient run to the analysis-layer summary. The
// per-fault latency impact covers the successful attempt (the one whose full
// trace survives); exposure spans the whole timeline.
func (rr *ResilientReport) Resilience() analysis.ResilienceReport {
	out := analysis.ResilienceReport{
		Wall:         rr.Wall,
		Attempts:     len(rr.Attempts),
		LostWork:     rr.LostWork,
		Checkpoints:  rr.Ckpt.Checkpoints,
		CkptOverhead: rr.Ckpt.Overhead,
		Restores:     rr.Ckpt.Restores,
		RestoreTime:  rr.Ckpt.RestoreTime,
		Exposure:     analysis.Exposures(rr.Incidents),
	}
	for _, a := range rr.Attempts {
		if a.Failed {
			out.Failures++
		}
	}
	if rr.Final != nil && len(rr.Attempts) > 0 {
		// Rebase the final attempt's incidents onto its local clock so they
		// line up with the surviving trace.
		start := rr.Attempts[len(rr.Attempts)-1].Start
		var local []fault.Incident
		for _, inc := range rr.Incidents {
			if inc.End <= start {
				continue
			}
			inc.Start -= start
			if inc.Start < 0 {
				inc.Start = 0
			}
			inc.End -= start
			local = append(local, inc)
		}
		out.Impacts = analysis.FaultImpacts(rr.Final.Events, local)
		out.Timeouts = rr.Final.Failover.Timeouts
		out.Retries = rr.Final.Failover.Retries
		out.Reroutes = rr.Final.Failover.Reroutes
		out.MirrorWrites = rr.Final.Failover.MirrorWrites
		out.FailedOps = rr.Final.Failover.Failed
		out.BackoffTime = rr.Final.Failover.BackoffTime
	}
	return out
}

// TradeoffSweep reruns the resilient study once per checkpoint interval
// (0 meaning no checkpoints) and collects the overhead-versus-lost-work
// curve. Every run replays the same materialized fault schedule.
func TradeoffSweep(rs ResilientStudy, intervals []int) ([]analysis.TradeoffPoint, error) {
	return exec.Map(intervals, func(_ int, iv int) (analysis.TradeoffPoint, error) {
		r := rs
		r.Ckpt.Interval = iv
		rr, err := RunResilient(r)
		if err != nil {
			return analysis.TradeoffPoint{}, err
		}
		return analysis.TradeoffPoint{
			Interval:    iv,
			Checkpoints: rr.Ckpt.Checkpoints,
			Overhead:    rr.Ckpt.Overhead,
			LostWork:    rr.LostWork,
			Wall:        rr.Wall,
		}, nil
	})
}
