package core

import (
	"repro/internal/analysis"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/pfs"
)

// Resilience reduces a single-attempt report to the analysis-layer
// resilience summary (exposure, per-fault latency impact, failover counters).
func (r *Report) Resilience() analysis.ResilienceReport {
	return analysis.ResilienceReport{
		Wall:              r.Wall,
		Attempts:          1,
		Exposure:          analysis.Exposures(r.Incidents),
		Impacts:           analysis.FaultImpacts(r.Events, r.Incidents),
		Timeouts:          r.Failover.Timeouts,
		Retries:           r.Failover.Retries,
		Reroutes:          r.Failover.Reroutes,
		MirrorWrites:      r.Failover.MirrorWrites,
		FailedOps:         r.Failover.Failed,
		BackoffTime:       r.Failover.BackoffTime,
		ReplicationFactor: r.ReplicationFactor,
		Repair:            repairSummary(r.Repair.Capped(r.Wall), r.Incidents, r.RepairEnabled()),
	}
}

// RepairEnabled reports whether the repair control plane ran during the
// study (the stats carry no explicit flag; a sweep only spawns with work,
// so the authoritative signal is recorded at report time).
func (r *Report) RepairEnabled() bool { return r.repairOn }

// repairSummary maps the PFS repair counters into the analysis layer's
// availability summary. The outage count comes from the (already capped)
// incident timeline rather than the raw hook counter so that fault windows
// past the app's completion don't inflate the durability line.
func repairSummary(s pfs.RepairStats, incs []fault.Incident, enabled bool) analysis.RepairSummary {
	var outages int64
	for _, inc := range incs {
		if inc.Kind == fault.IONodeOutage {
			outages++
		}
	}
	return analysis.RepairSummary{
		Enabled:               enabled,
		Outages:               outages,
		SloppyWrites:          s.SloppyWrites,
		MirrorMisses:          s.MirrorMisses,
		LedgerPuts:            s.LedgerPuts,
		LedgerPeak:            s.LedgerPeak,
		Backlog:               s.LedgerPuts - s.LedgerDrains,
		ChunksRepaired:        s.ChunksRepaired,
		BytesRepaired:         s.BytesRepaired,
		Abandoned:             s.Abandoned,
		ThrottleTime:          s.ThrottleTime,
		TimeToFullRedundancy:  s.TimeToFullRedundancy(),
		WindowOfVulnerability: s.WindowOfVulnerability(),
	}
}

// Resilience reduces the resilient run to the analysis-layer summary. The
// per-fault latency impact covers the successful attempt (the one whose full
// trace survives); exposure spans the whole timeline.
func (rr *ResilientReport) Resilience() analysis.ResilienceReport {
	out := analysis.ResilienceReport{
		Wall:         rr.Wall,
		Attempts:     len(rr.Attempts),
		LostWork:     rr.LostWork,
		Checkpoints:  rr.Ckpt.Checkpoints,
		CkptOverhead: rr.Ckpt.Overhead,
		Restores:     rr.Ckpt.Restores,
		RestoreTime:  rr.Ckpt.RestoreTime,
		Exposure:     analysis.Exposures(rr.Incidents),
	}
	for _, a := range rr.Attempts {
		if a.Failed {
			out.Failures++
		}
	}
	if rr.Final != nil && len(rr.Attempts) > 0 {
		// Rebase the final attempt's incidents onto its local clock so they
		// line up with the surviving trace.
		start := rr.Attempts[len(rr.Attempts)-1].Start
		var local []fault.Incident
		for _, inc := range rr.Incidents {
			if inc.End <= start {
				continue
			}
			inc.Start -= start
			if inc.Start < 0 {
				inc.Start = 0
			}
			inc.End -= start
			local = append(local, inc)
		}
		out.Impacts = analysis.FaultImpacts(rr.Final.Events, local)
		out.Timeouts = rr.Final.Failover.Timeouts
		out.Retries = rr.Final.Failover.Retries
		out.Reroutes = rr.Final.Failover.Reroutes
		out.MirrorWrites = rr.Final.Failover.MirrorWrites
		out.FailedOps = rr.Final.Failover.Failed
		out.BackoffTime = rr.Final.Failover.BackoffTime
		out.ReplicationFactor = rr.Final.ReplicationFactor
		out.Repair = repairSummary(rr.Final.Repair.Capped(rr.Final.Wall), rr.Final.Incidents, rr.Final.RepairEnabled())
	}
	return out
}

// TradeoffSweep reruns the resilient study once per checkpoint interval
// (0 meaning no checkpoints) and collects the overhead-versus-lost-work
// curve. Every run replays the same materialized fault schedule.
func TradeoffSweep(rs ResilientStudy, intervals []int) ([]analysis.TradeoffPoint, error) {
	return exec.Map(intervals, func(_ int, iv int) (analysis.TradeoffPoint, error) {
		r := rs
		r.Ckpt.Interval = iv
		rr, err := RunResilient(r)
		if err != nil {
			return analysis.TradeoffPoint{}, err
		}
		return analysis.TradeoffPoint{
			Interval:    iv,
			Checkpoints: rr.Ckpt.Checkpoints,
			Overhead:    rr.Ckpt.Overhead,
			LostWork:    rr.LostWork,
			Wall:        rr.Wall,
		}, nil
	})
}
