// Sharded fleet execution: many machine cells on a conservative-parallel
// fabric.
//
// The paper characterized one 128-node partition against 16 I/O nodes; the
// roadmap's what-if sweeps want fleets orders of magnitude past that. A
// fleet here is N machine cells — each a complete Machine (mesh, PFS,
// tracers) running its own instance of the study's application — placed on
// one fabric shard each, plus a coordinator shard that launches the cells
// with a configurable stagger over the simulated interconnect. The
// coordinator's launch mail is real cross-shard traffic bounded by the mesh
// lookahead; once it quiesces, every cell's horizon is unbounded and the
// cells execute concurrently on up to Shards OS threads.
//
// Determinism: each cell's engine consumes only its own events plus mail
// delivered in the fabric's canonical order, so a cell's trace is a pure
// function of the study and its index — the shard/worker count can only
// change wall-clock time, never results. The serial engine (Shards=1)
// remains the regression oracle; TestFleetByteIdenticalAcrossShardCounts
// holds the fleet to it for every app × mode × feature combination.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// FleetOptions configure a sharded fleet run.
type FleetOptions struct {
	// Cells is the number of independent machine cells (>= 1).
	Cells int

	// Stagger is the launch delay between consecutive cells, modeling a
	// fleet scheduler dispatching jobs in sequence. Zero launches every
	// cell one mesh lookahead after time zero.
	Stagger sim.Time

	// Shards bounds how many cells execute concurrently: 0 = GOMAXPROCS,
	// 1 = the serial oracle.
	Shards int

	// IOShards, when positive, additionally partitions each cell's machine
	// internally: the cell shard keeps the compute partition and IOShards
	// extra shards per cell host its I/O nodes (see RunSharded). Zero keeps
	// whole cells on single shards.
	IOShards int

	// Seed derives each shard's RNG substream and, for cells past the
	// first, their fault-plan seeds (cell 0 keeps the study's own
	// FaultSeed, so a one-cell fleet realizes the exact serial timeline).
	Seed uint64
}

// FleetReport is the outcome of a fleet run: one full study report per cell
// in cell order, plus fleet-level aggregates.
type FleetReport struct {
	Cells []*Report

	// Starts records each cell's launch instant on the shared virtual
	// clock; Makespan is the latest cell finish.
	Starts   []sim.Time
	Makespan sim.Time

	// Fabric holds the conservative protocol's counters for the run.
	Fabric sim.FabricStats
}

// fleetCell bundles one cell's prepared runtime and its fabric shard.
type fleetCell struct {
	study     Study
	rt        *runtime
	inj       *fault.Injector
	shard     *sim.Shard
	start     sim.Time
	launchErr error
}

// RunFleet executes opts.Cells instances of the study as a sharded fleet.
// Results are byte-identical at every Shards value; errors are reported for
// the lowest-indexed failing cell, mirroring the sweep executor's
// deterministic error choice.
func RunFleet(s Study, opts FleetOptions) (*FleetReport, error) {
	fr, _, err := runFleet(s, opts)
	return fr, err
}

// runFleet is RunFleet exposing the per-cell runtimes, which the shard-count
// determinism oracle fingerprints directly.
func runFleet(s Study, opts FleetOptions) (*FleetReport, []*fleetCell, error) {
	if opts.Cells < 1 {
		return nil, nil, fmt.Errorf("core: fleet needs >= 1 cell, got %d", opts.Cells)
	}
	if opts.Stagger < 0 {
		return nil, nil, fmt.Errorf("core: negative fleet stagger %v", opts.Stagger)
	}

	fab := sim.NewFabric(opts.Shards)
	coord := fab.AddShard("coordinator", opts.Seed)
	cellSeeds := sim.NewRNG(s.FaultSeed)
	cells := make([]*fleetCell, opts.Cells)
	for i := range cells {
		cs := s
		if i > 0 {
			// Independent chaos per cell, all derived from the one study
			// seed; cell 0 keeps the study's own timeline.
			cs.FaultSeed = cellSeeds.Uint64()
		}
		shard := fab.AddShard(fmt.Sprintf("cell%d", i), opts.Seed)
		var rt *runtime
		var err error
		if opts.IOShards > 0 {
			if cs.Machine.ComputeNodes == 0 {
				cs = mergeDefaults(cs)
			}
			srv, assign := partitionIONodes(fab, fmt.Sprintf("cell%d.", i),
				cs.Machine.PFS.IONodes, opts.IOShards, opts.Seed)
			cs, rt, err = preparePartitioned(cs, shard, srv, assign)
		} else {
			cs, rt, err = prepareOn(cs, shard.Engine())
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: fleet cell %d: %w", i, err)
		}
		lookahead := rt.m.Mesh.Lookahead()
		fab.Connect(coord, shard, lookahead)
		start := lookahead + opts.Stagger*sim.Time(i)

		var events []fault.Event
		if !cs.Faults.Empty() {
			events = cs.Faults.Materialize(cs.FaultSeed, cs.Machine.PFS.IONodes, cs.Machine.ComputeNodes)
			// The plan's instants are relative to the job, not the fleet:
			// shift them past the cell's launch.
			for j := range events {
				events[j].At += start
			}
		}
		var inj *fault.Injector
		if opts.IOShards > 0 {
			inj, err = rt.injectPartitioned(cs, events)
			if err != nil {
				return nil, nil, fmt.Errorf("core: fleet cell %d: %w", i, err)
			}
		} else {
			inj = rt.inject(cs, events)
		}
		cells[i] = &fleetCell{
			study: cs,
			rt:    rt,
			inj:   inj,
			shard: shard,
			start: start,
		}
	}

	coord.Engine().Spawn("launcher", func(p *sim.Process) {
		for _, c := range cells {
			c := c
			coord.Send(p, c.shard, c.start, "launch:"+c.shard.Name(), func(lp *sim.Process) {
				if err := c.rt.app.Launch(c.rt.m, c.rt.fs); err != nil {
					c.launchErr = fmt.Errorf("%s: launch: %w", c.rt.app.Name(), err)
					lp.Engine().Stop()
				}
			})
		}
	})

	if err := fab.Run(); err != nil {
		return nil, nil, fmt.Errorf("core: fleet: %w", err)
	}

	fr := &FleetReport{
		Cells:  make([]*Report, opts.Cells),
		Starts: make([]sim.Time, opts.Cells),
		Fabric: fab.Stats(),
	}
	for i, c := range cells {
		if c.launchErr != nil {
			return nil, nil, fmt.Errorf("core: fleet cell %d: %w", i, c.launchErr)
		}
		if err := attemptFailure(c.study, c.rt, c.inj); err != nil {
			return nil, nil, fmt.Errorf("core: fleet cell %d: %w", i, err)
		}
		r := finishReport(c.study, c.rt, c.inj)
		fr.Cells[i] = r
		fr.Starts[i] = c.start
		if r.Wall > fr.Makespan {
			fr.Makespan = r.Wall
		}
	}
	return fr, cells, nil
}
