package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/sim"
)

// chaosStudy is a small ESCAT run with a machine-wide I/O-node outage placed
// after the first checkpoint commit (~3.5 s) and across the middle quadrature
// writes, so an unprotected run dies mid-flight.
func chaosStudy() ResilientStudy {
	s := SmallStudy(ESCAT)
	s.Faults = fault.Plan{Cascades: []fault.Cascade{{
		Kind: fault.IONodeOutage, At: 4200 * sim.Millisecond,
		Nodes: 16, FirstNode: 0, Spacing: 0, Duration: 1200 * sim.Millisecond,
	}}}
	s.FaultSeed = 7
	return ResilientStudy{
		Study:       s,
		Ckpt:        ckpt.Config{Interval: 2, BytesPerNode: 4096, FileName: "escat.ckpt"},
		RestartCost: 1500 * sim.Millisecond,
	}
}

func TestResilientEscatRestartsFromCheckpoint(t *testing.T) {
	rr, err := RunResilient(chaosStudy())
	if err != nil {
		t.Fatalf("RunResilient: %v", err)
	}
	if rr.Final == nil {
		t.Fatal("no final report")
	}
	if len(rr.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want one failure + one success", rr.Attempts)
	}
	fail, ok := rr.Attempts[0], rr.Attempts[1]
	if !fail.Failed || !strings.Contains(fail.Err, "I/O node down") {
		t.Errorf("first attempt %+v, want ErrIONodeDown death", fail)
	}
	if fail.End <= 4200*sim.Millisecond || fail.End >= 5400*sim.Millisecond {
		t.Errorf("failure at %v, want inside the outage window", fail.End)
	}
	if ok.Failed {
		t.Errorf("second attempt failed: %s", ok.Err)
	}
	if ok.ResumeUnit != 2 {
		t.Errorf("resumed from unit %d, want 2 (one committed checkpoint of interval 2)", ok.ResumeUnit)
	}
	if ok.Start != fail.End+1500*sim.Millisecond {
		t.Errorf("restart at %v, want failure end + restart cost", ok.Start)
	}

	// Lost work: everything between the last commit and the failure.
	commit := rr.Ckpt.LastCommitAt
	if rr.LostWork <= 0 || rr.LostWork >= fail.Wall() {
		t.Errorf("lost work %v outside (0, first attempt %v)", rr.LostWork, fail.Wall())
	}
	if commit <= 0 {
		t.Error("no commit time recorded")
	}
	if rr.Ckpt.Restores != 8 {
		t.Errorf("restores = %d, want 8 (one per node)", rr.Ckpt.Restores)
	}
	if rr.Ckpt.Checkpoints < 2 {
		t.Errorf("checkpoints = %d, want >= 2", rr.Ckpt.Checkpoints)
	}
	if rr.Wall != ok.End {
		t.Errorf("wall %v != successful attempt end %v", rr.Wall, ok.End)
	}

	// The incident timeline must cover both attempts' realized outages.
	if len(rr.Incidents) == 0 {
		t.Fatal("no incidents recorded")
	}
	for _, inc := range rr.Incidents {
		if inc.Kind != fault.IONodeOutage {
			t.Errorf("unexpected incident %+v", inc)
		}
	}
}

func TestResilientDeterministicHistory(t *testing.T) {
	a, errA := RunResilient(chaosStudy())
	b, errB := RunResilient(chaosStudy())
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a.Attempts, b.Attempts) {
		t.Errorf("attempt histories differ:\n%+v\n%+v", a.Attempts, b.Attempts)
	}
	if !reflect.DeepEqual(a.Incidents, b.Incidents) {
		t.Error("incident timelines differ")
	}
	if a.Wall != b.Wall || a.LostWork != b.LostWork {
		t.Errorf("wall/lost differ: %v/%v vs %v/%v", a.Wall, a.LostWork, b.Wall, b.LostWork)
	}
	if a.Ckpt != b.Ckpt {
		t.Errorf("ckpt stats differ: %+v vs %+v", a.Ckpt, b.Ckpt)
	}
}

// Without checkpoints the run still completes (the restart lands after the
// outage) but every failure discards the whole attempt — the
// checkpoint-overhead-versus-lost-work tradeoff in one assertion.
func TestResilientNoCheckpointLosesMore(t *testing.T) {
	withCkpt, err := RunResilient(chaosStudy())
	if err != nil {
		t.Fatal(err)
	}
	rs := chaosStudy()
	rs.Ckpt = ckpt.Config{}
	without, err := RunResilient(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Attempts) < 2 {
		t.Fatalf("attempts %+v", without.Attempts)
	}
	if got := without.Attempts[len(without.Attempts)-1].ResumeUnit; got != 0 {
		t.Errorf("uncheckpointed run resumed from unit %d", got)
	}
	if without.LostWork <= withCkpt.LostWork {
		t.Errorf("lost work without checkpoints (%v) not above with (%v)",
			without.LostWork, withCkpt.LostWork)
	}
	if without.Ckpt.Checkpoints != 0 || without.Ckpt.Restores != 0 {
		t.Errorf("ckpt stats on uncheckpointed run: %+v", without.Ckpt)
	}
}
