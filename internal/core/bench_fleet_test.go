package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/sim"
)

// fleetShardCounts is the scaling-curve sweep: powers of two from the serial
// oracle up to the host's configured parallelism. benchjson exports its
// -shards setting as REPRO_SHARDS; unset, the sweep covers the standard
// 1-to-8 curve.
func fleetShardCounts() []int {
	limit := 8
	if v := os.Getenv("REPRO_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			limit = n
		}
	}
	counts := []int{1}
	for n := 2; n <= limit; n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// benchFleet runs one fleet configuration per iteration. Results are
// byte-identical across shard counts (the determinism oracle holds them to
// it), so the sub-benchmarks differ only in wall-clock — the scaling curve
// BENCH_9.json records.
func benchFleet(b *testing.B, s Study, cells, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := RunFleet(s, FleetOptions{
			Cells:   cells,
			Stagger: 10 * sim.Millisecond,
			Shards:  shards,
			Seed:    3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(fr.Cells) != cells {
			b.Fatalf("fleet produced %d cell reports, want %d", len(fr.Cells), cells)
		}
	}
}

// BenchmarkFleetSmall8 sweeps the shard count over an 8-cell fleet of small
// ESCAT studies — the quick scaling curve the bench-smoke CI step runs.
func BenchmarkFleetSmall8(b *testing.B) {
	s := SmallStudy(ESCAT)
	s.KeepTrace = false
	for _, shards := range fleetShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchFleet(b, s, 8, shards)
		})
	}
}

// BenchmarkFleetPaperScale sweeps the shard count over a 4-cell fleet of
// full paper-scale ESCAT runs — the acceptance criterion's "paper-scale
// speedup" measurement.
func BenchmarkFleetPaperScale(b *testing.B) {
	s := PaperStudy(ESCAT)
	s.KeepTrace = false
	for _, shards := range fleetShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchFleet(b, s, 4, shards)
		})
	}
}
