package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// sweepCorruptionPlan builds the single-class corruption plan one sweep cell
// injects. Rates are calibrated for the small studies' resident data.
func sweepCorruptionPlan(class integrity.Class) fault.CorruptionPlan {
	switch class {
	case integrity.BitRot:
		return fault.CorruptionPlan{BitRotPerGBHour: 2e5, Start: 0, End: 60 * sim.Second}
	case integrity.TornWrite:
		return fault.CorruptionPlan{TornWriteProb: 0.05}
	case integrity.Misdirected:
		return fault.CorruptionPlan{MisdirectProb: 0.05}
	}
	return fault.CorruptionPlan{}
}

// CorruptionSweep runs each application under each corruption class with the
// integrity layer (and scrubber) enabled, and tallies detection coverage from
// the corruption event log. The invariant the robustness work claims — no
// injected error stays both undetected and unresolved — shows up as a zero
// Latent column: every corruption is either detected (by a read, the
// scrubber, or the end-of-run audit) or healed by a later full rewrite of its
// block. The sweep is deterministic: same seed, same rows.
func CorruptionSweep(small bool, seed uint64) ([]analysis.CorruptionSweepRow, error) {
	classes := []integrity.Class{integrity.BitRot, integrity.TornWrite, integrity.Misdirected}
	type cell struct {
		app   AppID
		class integrity.Class
	}
	var cells []cell
	for _, app := range Apps() {
		for _, class := range classes {
			cells = append(cells, cell{app, class})
		}
	}
	return exec.Map(cells, func(_ int, c cell) (analysis.CorruptionSweepRow, error) {
		study := PaperStudy(c.app)
		if small {
			study = SmallStudy(c.app)
		}
		study.Machine.PFS.Integrity = integrity.Config{
			Enabled: true,
			Scrub: integrity.ScrubConfig{
				Enabled:       true,
				RateBytesPerS: 16 << 20,
				Window:        60 * sim.Second,
			},
		}
		// Unrepairable classes (torn, misdirected) need the replica path
		// and the client's corrupt-read retries to survive the run.
		fo := pfs.DefaultFailoverConfig()
		fo.Replicate = true
		study.Machine.PFS.Failover = fo
		study.Machine.PFS.Reliability = pfs.DefaultReliabilityConfig()
		study.Faults.Corruption = sweepCorruptionPlan(c.class)
		study.FaultSeed = seed
		r, err := Run(study)
		if err != nil {
			return analysis.CorruptionSweepRow{}, fmt.Errorf("corruption sweep: %s/%s: %w", c.app, c.class, err)
		}
		row := analysis.CorruptionSweepRow{App: string(c.app), Class: c.class}
		if r.Integrity != nil {
			for _, cc := range r.Integrity.ByClass() {
				if cc.Class != c.class {
					continue
				}
				row.Injected = cc.Injected
				row.Detected = cc.Detected
				row.Repaired = cc.Repaired + cc.Rewritten
				row.Unrepairable = cc.Unrepairable
				row.Latent = cc.Latent
			}
		}
		return row, nil
	})
}

// ModeIntegritySweep measures the checksum layer's verify overhead under all
// six PFS access modes: one synthetic workload per mode, run with the layer
// off and then on, no corruption injected — the cost of integrity on the
// healthy path.
func ModeIntegritySweep(icfg integrity.Config) ([]analysis.IntegrityOverheadRow, error) {
	icfg.Enabled = true
	base := pfs.DefaultConfig()
	verCfg := base
	verCfg.Integrity = icfg

	cells := modeCells()
	pairs, err := runModePairs("integrity sweep", "verified", cells, base, verCfg)
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.IntegrityOverheadRow, 0, len(cells))
	for i, cell := range cells {
		b, v := pairs[i][0], pairs[i][1]
		bm, n := meanFor(b.Summary, cell.labels...)
		vm, _ := meanFor(v.Summary, cell.labels...)
		rows = append(rows, analysis.IntegrityOverheadRow{
			Mode: cell.name, Op: cell.op, Ops: n,
			BaseMean: bm, Verified: vm,
			BaseWall: b.Wall, VerWall: v.Wall,
		})
	}
	return rows, nil
}
