package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// sweepCorruptionPlan builds the single-class corruption plan one sweep cell
// injects. Rates are calibrated for the small studies' resident data.
func sweepCorruptionPlan(class integrity.Class) fault.CorruptionPlan {
	switch class {
	case integrity.BitRot:
		return fault.CorruptionPlan{BitRotPerGBHour: 2e5, Start: 0, End: 60 * sim.Second}
	case integrity.TornWrite:
		return fault.CorruptionPlan{TornWriteProb: 0.05}
	case integrity.Misdirected:
		return fault.CorruptionPlan{MisdirectProb: 0.05}
	}
	return fault.CorruptionPlan{}
}

// CorruptionSweep runs each application under each corruption class with the
// integrity layer (and scrubber) enabled, and tallies detection coverage from
// the corruption event log. The invariant the robustness work claims — no
// injected error stays both undetected and unresolved — shows up as a zero
// Latent column: every corruption is either detected (by a read, the
// scrubber, or the end-of-run audit) or healed by a later full rewrite of its
// block. The sweep is deterministic: same seed, same rows.
func CorruptionSweep(small bool, seed uint64) ([]analysis.CorruptionSweepRow, error) {
	classes := []integrity.Class{integrity.BitRot, integrity.TornWrite, integrity.Misdirected}
	var rows []analysis.CorruptionSweepRow
	for _, app := range Apps() {
		for _, class := range classes {
			study := PaperStudy(app)
			if small {
				study = SmallStudy(app)
			}
			study.Machine.PFS.Integrity = integrity.Config{
				Enabled: true,
				Scrub: integrity.ScrubConfig{
					Enabled:       true,
					RateBytesPerS: 16 << 20,
					Window:        60 * sim.Second,
				},
			}
			// Unrepairable classes (torn, misdirected) need the replica path
			// and the client's corrupt-read retries to survive the run.
			fo := pfs.DefaultFailoverConfig()
			fo.Replicate = true
			study.Machine.PFS.Failover = fo
			study.Machine.PFS.Reliability = pfs.DefaultReliabilityConfig()
			study.Faults.Corruption = sweepCorruptionPlan(class)
			study.FaultSeed = seed
			r, err := Run(study)
			if err != nil {
				return nil, fmt.Errorf("corruption sweep: %s/%s: %w", app, class, err)
			}
			row := analysis.CorruptionSweepRow{App: string(app), Class: class}
			if r.Integrity != nil {
				for _, c := range r.Integrity.ByClass() {
					if c.Class != class {
						continue
					}
					row.Injected = c.Injected
					row.Detected = c.Detected
					row.Repaired = c.Repaired + c.Rewritten
					row.Unrepairable = c.Unrepairable
					row.Latent = c.Latent
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ModeIntegritySweep measures the checksum layer's verify overhead under all
// six PFS access modes: one synthetic workload per mode, run with the layer
// off and then on, no corruption injected — the cost of integrity on the
// healthy path.
func ModeIntegritySweep(icfg integrity.Config) ([]analysis.IntegrityOverheadRow, error) {
	icfg.Enabled = true
	base := pfs.DefaultConfig()
	verCfg := base
	verCfg.Integrity = icfg

	var rows []analysis.IntegrityOverheadRow
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		scfg := workload.SyntheticConfig{
			Nodes:       8,
			Mode:        mode,
			RecordBytes: 4096,
			Records:     32,
		}
		op, labels := "Write", []string{"Write"}
		if mode == iotrace.ModeGlobal {
			op, labels = "Read", []string{"Read"}
		}
		b, err := syntheticReport(scfg, base)
		if err != nil {
			return nil, fmt.Errorf("integrity sweep: %s base: %w", mode, err)
		}
		v, err := syntheticReport(scfg, verCfg)
		if err != nil {
			return nil, fmt.Errorf("integrity sweep: %s verified: %w", mode, err)
		}
		bm, n := meanFor(b.Summary, labels...)
		vm, _ := meanFor(v.Summary, labels...)
		rows = append(rows, analysis.IntegrityOverheadRow{
			Mode: mode.String(), Op: op, Ops: n,
			BaseMean: bm, Verified: vm,
			BaseWall: b.Wall, VerWall: v.Wall,
		})
	}
	return rows, nil
}
