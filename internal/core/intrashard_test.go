package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/collective"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// workerCounts is the intra-machine oracle's sweep: for a fixed partition
// topology, workers=1 drives every shard inline on one OS thread and is the
// serial reference every other worker bound must match byte for byte.
var workerCounts = []int{1, 2, 4, 8}

// shardedImage runs one partitioned study configuration and fingerprints
// everything the oracle holds fixed across worker counts: the trace digest,
// the headline report numbers, and the final file image with audit verdicts.
func shardedImage(t *testing.T, s Study, opts ShardedOptions) string {
	t.Helper()
	sr, rt, err := runSharded(s, opts)
	if err != nil {
		t.Fatalf("sharded (ioshards=%d workers=%d): %v", opts.IOShards, opts.Workers, err)
	}
	if sr.Fabric.Mail == 0 {
		t.Fatalf("partitioned run delivered no cross-shard mail — the RPC path is not engaged")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall=%d events=%d trace=%016x\n", sr.Wall, len(sr.Events), traceDigest(sr.Events))
	fmt.Fprintf(&b, "summary %+v\n", sr.Summary)
	fmt.Fprintf(&b, "incidents %d failover %+v repair %+v physreq %d\n",
		len(sr.Incidents), sr.Failover, sr.Repair, sr.PhysRequests)
	b.WriteString(fingerprint(rt.m.PFS))
	return b.String()
}

// TestShardedByteIdenticalAcrossWorkerCounts is the tentpole oracle for the
// three applications: one machine split over a frontend shard plus four I/O
// shards must produce byte-identical traces, reports, and file images at
// workers ∈ {1, 2, 4, 8}.
func TestShardedByteIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, app := range Apps() {
		s := SmallStudy(app)
		s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
		base := ShardedOptions{IOShards: 4, Workers: 1, Seed: 21}
		ref := shardedImage(t, s, base)
		if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
			t.Fatalf("%s: partitioned baseline audit not clean:\n%.600s", app, ref)
		}
		for _, w := range workerCounts[1:] {
			opts := base
			opts.Workers = w
			if got := shardedImage(t, s, opts); got != ref {
				t.Errorf("%s: partitioned results at workers=%d differ from the workers=1 oracle", app, w)
			}
		}
	}
}

// TestShardedFeatureStacksByteIdentical extends the oracle across the client-
// and server-side feature stacks the RPC seam has to carry: write-behind
// caching (drain mail), collective aggregation (shuffle then aggregated
// sweeps), and the burst tier (background drain traffic).
func TestShardedFeatureStacksByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Study)
	}{
		{"cache", func(s *Study) { s.Machine.PFS.Cache = cache.DefaultConfig() }},
		{"collective", func(s *Study) { s.Machine.PFS.Collective = collective.Config{Enabled: true} }},
		{"burst", func(s *Study) { s.Burst = identityBurstCfg() }},
	}
	for _, tc := range cases {
		s := SmallStudy(ESCAT)
		s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
		tc.mut(&s)
		base := ShardedOptions{IOShards: 2, Workers: 1, Seed: 3}
		ref := shardedImage(t, s, base)
		if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
			t.Fatalf("%s: baseline audit not clean:\n%.600s", tc.name, ref)
		}
		for _, w := range workerCounts[1:] {
			opts := base
			opts.Workers = w
			if got := shardedImage(t, s, opts); got != ref {
				t.Errorf("%s: results at workers=%d differ from the workers=1 oracle", tc.name, w)
			}
		}
	}
}

// TestShardedRF3ZoneOutageBurst is the feature-stack oracle under faults:
// RF=3 zone-aware replication riding out a full zone blackout — outage
// actuators on the owning shards, the repair planner reading the frontend
// mirror, repair copies crossing shards as RPCs, the burst tier draining
// through it all — must stay byte-identical at every worker count and still
// audit clean.
func TestShardedRF3ZoneOutageBurst(t *testing.T) {
	s := SmallStudy(ESCAT)
	s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	s.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
	s.Machine.PFS.Replication = pfs.ReplicationConfig{
		Factor: 3, Repair: pfs.DefaultRepairConfig(),
	}
	threeZones(&s.Machine.PFS)
	s.Burst = identityBurstCfg()
	s.Faults = zoneOutagePlan(s.Machine.PFS.IONodes, 500*sim.Millisecond, sim.Second)
	s.FaultSeed = 11

	base := ShardedOptions{IOShards: 2, Workers: 1, Seed: 5}
	ref := shardedImage(t, s, base)
	if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
		t.Fatalf("RF3+outage+burst baseline audit not clean:\n%.600s", ref)
	}
	if strings.Contains(ref, "incidents 0 ") {
		t.Fatalf("zone outage was never realized — the oracle is not exercising the fault path:\n%.600s", ref)
	}
	for _, w := range workerCounts[1:] {
		opts := base
		opts.Workers = w
		if got := shardedImage(t, s, opts); got != ref {
			t.Errorf("RF3+outage+burst results at workers=%d differ from the workers=1 oracle", w)
		}
	}
}

// shardedModeImage builds a partitioned machine by hand and drives the
// phase-aligned synthetic workload under one access mode, fingerprinting the
// resulting file image.
func shardedModeImage(t *testing.T, mode iotrace.AccessMode, ioShards, workers int) string {
	t.Helper()
	fab := sim.NewFabric(workers)
	fe := fab.AddShard("frontend", 7)
	pcfg := pfs.DefaultConfig()
	pcfg.Integrity = integrity.Config{Enabled: true}
	srv, assign := partitionIONodes(fab, "", pcfg.IONodes, ioShards, 7)
	m, err := workload.NewPartitionedMachine(fe, srv, assign,
		workload.MachineConfig{ComputeNodes: 8, PFS: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	m.PFS.SetRecorder(pablo.NewTracer(false))
	app, err := workload.NewSynthetic(workload.SyntheticConfig{
		Nodes:       8,
		Mode:        mode,
		RecordBytes: 4096,
		Records:     16,
		Barrier:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Launch(m, workload.WrapPFS(m.PFS)); err != nil {
		t.Fatalf("mode %v: launch: %v", mode, err)
	}
	if err := fab.Run(); err != nil {
		t.Fatalf("mode %v (workers=%d): %v", mode, workers, err)
	}
	if err := app.Err(); err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "end=%d\n", m.Eng.Now())
	b.WriteString(fingerprint(m.PFS))
	return b.String()
}

// TestShardedModeByteIdenticalAcrossWorkerCounts extends the oracle across
// all six PFS access modes.
func TestShardedModeByteIdenticalAcrossWorkerCounts(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		ref := shardedModeImage(t, mode, 2, 1)
		if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
			t.Fatalf("mode %v: baseline audit not clean:\n%.400s", mode, ref)
		}
		for _, w := range workerCounts[1:] {
			if got := shardedModeImage(t, mode, 2, w); got != ref {
				t.Errorf("mode %v: results at workers=%d differ from the workers=1 oracle", mode, w)
			}
		}
	}
}

// TestShardedMatchesSerialImage holds the partitioned engine to the serial
// machine's logical outcome: timing (and hence the trace) legitimately
// differs — every request now pays at least one mesh lookahead — but the
// final file image, audit verdicts, per-node block coverage, and event count
// must match the plain serial run exactly.
func TestShardedMatchesSerialImage(t *testing.T) {
	for _, app := range Apps() {
		s := SmallStudy(app)
		s.Machine.PFS.Integrity = integrity.Config{Enabled: true}

		ss, rt, err := prepare(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Run(rt.m, rt.fs, rt.app); err != nil {
			t.Fatal(err)
		}
		serial := finishReport(ss, rt, nil)
		serialImg := fingerprint(rt.m.PFS)

		sr, prt, err := runSharded(s, ShardedOptions{IOShards: 2, Workers: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(prt.m.PFS); got != serialImg {
			t.Errorf("%s: partitioned file image differs from the serial machine's:\nserial:\n%s\nsharded:\n%s",
				app, serialImg, got)
		}
		if len(sr.Events) != len(serial.Events) {
			t.Errorf("%s: partitioned run traced %d events, serial %d", app, len(sr.Events), len(serial.Events))
		}
	}
}

// fleetShardedImage is fleetImage for fleets whose cells are themselves
// partitioned (the launch-mail count check no longer applies: every RPC is
// mail too).
func fleetShardedImage(t *testing.T, s Study, opts FleetOptions) string {
	t.Helper()
	fr, cells, err := runFleet(s, opts)
	if err != nil {
		t.Fatalf("fleet (shards=%d ioshards=%d): %v", opts.Shards, opts.IOShards, err)
	}
	if fr.Fabric.Mail <= int64(opts.Cells) {
		t.Fatalf("fleet delivered %d mails — partitioned cells should add RPC traffic past the %d launches",
			fr.Fabric.Mail, opts.Cells)
	}
	return fleetFingerprint(fr, cells)
}

// TestFleetIOShardsByteIdentical composes the two sharding axes: a fleet of
// cells each internally partitioned must stay byte-identical across the
// worker bound, and the fabric must carry 1 + Cells×(1+IOShards) shards.
func TestFleetIOShardsByteIdentical(t *testing.T) {
	s := SmallStudy(HTF)
	s.Machine.PFS.Integrity = integrity.Config{Enabled: true}
	base := FleetOptions{Cells: 2, Stagger: 20 * sim.Millisecond, Shards: 1, Seed: 42, IOShards: 2}
	ref := fleetShardedImage(t, s, base)
	if !strings.Contains(ref, "clean=true") || strings.Contains(ref, "clean=false") {
		t.Fatalf("partitioned-fleet baseline audit not clean:\n%.600s", ref)
	}
	for _, shards := range []int{2, 8} {
		opts := base
		opts.Shards = shards
		if got := fleetShardedImage(t, s, opts); got != ref {
			t.Errorf("partitioned-fleet results at shards=%d differ from the serial oracle", shards)
		}
	}
}

// TestShardedRejectsUnsupportedFaults pins the partitioned engine's two
// refusal paths: NodeLoss (no way to halt all shards mid-run) and
// DiskFailure combined with replication repair (the planner would need
// cross-shard array reads).
func TestShardedRejectsUnsupportedFaults(t *testing.T) {
	s := SmallStudy(ESCAT)
	s.Faults = fault.Plan{Events: []fault.Event{
		{Kind: fault.NodeLoss, At: sim.Second, Node: 0},
	}}
	if _, err := RunSharded(s, ShardedOptions{IOShards: 2, Workers: 1}); err == nil ||
		!strings.Contains(err.Error(), "NodeLoss") {
		t.Fatalf("NodeLoss on a partitioned machine: got err %v, want a NodeLoss rejection", err)
	}

	s = SmallStudy(ESCAT)
	s.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
	s.Machine.PFS.Replication = pfs.ReplicationConfig{Factor: 3, Repair: pfs.DefaultRepairConfig()}
	threeZones(&s.Machine.PFS)
	s.Faults = fault.Plan{Events: []fault.Event{
		{Kind: fault.DiskFailure, At: sim.Second, Node: 0},
	}}
	if _, err := RunSharded(s, ShardedOptions{IOShards: 2, Workers: 1}); err == nil ||
		!strings.Contains(err.Error(), "DiskFailure") {
		t.Fatalf("DiskFailure+repair on a partitioned machine: got err %v, want a rejection", err)
	}
}
