package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/apps/render"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Figure is one reproduced paper figure: its identity and the timeline
// points that regenerate it.
type Figure struct {
	ID     string // paper figure number, e.g. "figure-04"
	Title  string
	Points []analysis.Point
	LogY   bool // request-size axes are logarithmic; file-id axes are not
}

// Figures extracts every paper figure this report's application contributes,
// in figure-number order.
func (r *Report) Figures() []Figure {
	var figs []Figure
	ev := r.Events
	switch r.App {
	case ESCAT:
		initEv := analysis.FilterPhase(ev, escat.PhaseInit)
		figs = []Figure{
			{ID: "figure-02", Title: "Read operation timeline (ESCAT)", Points: analysis.ReadTimeline(ev), LogY: true},
			{ID: "figure-03", Title: "Read operation detail (ESCAT)", Points: analysis.ReadTimeline(initEv), LogY: true},
			{ID: "figure-04", Title: "Write operation timeline (ESCAT)", Points: analysis.WriteTimeline(ev), LogY: true},
			{ID: "figure-05", Title: "File access timeline (ESCAT)", Points: analysis.FileTimeline(ev)},
		}
	case RENDER:
		figs = []Figure{
			{ID: "figure-06", Title: "Read operation timeline (RENDER)", Points: analysis.ReadTimeline(ev), LogY: true},
			{ID: "figure-07", Title: "Write operation timeline (RENDER)", Points: analysis.WriteTimeline(ev), LogY: true},
			{ID: "figure-08", Title: "File access timeline (RENDER)", Points: analysis.FileTimeline(ev)},
		}
	case HTF:
		phases := []struct {
			name       string
			rfig, wfig int
			ffig       int
		}{
			{htf.PhasePsetup, 9, 10, 15},
			{htf.PhasePargos, 11, 12, 16},
			{htf.PhasePscf, 13, 14, 17},
		}
		for _, ph := range phases {
			phEv := analysis.FilterPhase(ev, ph.name)
			figs = append(figs,
				Figure{ID: fmt.Sprintf("figure-%02d", ph.rfig),
					Title:  fmt.Sprintf("Read operation timeline (HTF %s)", ph.name),
					Points: analysis.ReadTimeline(phEv), LogY: true},
				Figure{ID: fmt.Sprintf("figure-%02d", ph.wfig),
					Title:  fmt.Sprintf("Write operation timeline (HTF %s)", ph.name),
					Points: analysis.WriteTimeline(phEv), LogY: true},
				Figure{ID: fmt.Sprintf("figure-%02d", ph.ffig),
					Title:  fmt.Sprintf("File access timeline (HTF %s)", ph.name),
					Points: analysis.FileTimeline(phEv)},
			)
		}
		sort.Slice(figs, func(i, j int) bool { return figs[i].ID < figs[j].ID })
	}
	return figs
}

// Figure returns one figure by paper number (e.g. 4), or an error if this
// report's application does not produce it.
func (r *Report) Figure(number int) (Figure, error) {
	id := fmt.Sprintf("figure-%02d", number)
	for _, f := range r.Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("core: %s has no %s", r.App, id)
}

// Tables renders the report's operation-summary and size tables with the
// paper's table numbers.
func (r *Report) Tables() []string {
	switch r.App {
	case ESCAT:
		return []string{
			r.Summary.Render("Table 1: Number, size, and duration of I/O operations (ESCAT)"),
			r.Sizes.Render("Table 2: Read/write sizes (ESCAT)"),
		}
	case RENDER:
		return []string{
			r.Summary.Render("Table 3: Number, size, and duration of I/O operations (RENDER)"),
			r.Sizes.Render("Table 4: The sizes of reads and writes in RENDER"),
		}
	case HTF:
		var out []string
		for _, ph := range []string{htf.PhasePsetup, htf.PhasePargos, htf.PhasePscf} {
			out = append(out,
				r.PhaseSummary(ph).Render(fmt.Sprintf("Table 5: I/O operations (HTF %s)", ph)),
				r.PhaseSizes(ph).Render(fmt.Sprintf("Table 6: Read/write sizes (HTF %s)", ph)),
			)
		}
		return out
	}
	return nil
}

// WriteBurstTrend returns the spacing between synchronized write bursts at
// the start and end of ESCAT's quadrature phase (Figure 4's "roughly 160
// seconds ... to half that"). gap is the idle time that separates bursts;
// pass a value below the inter-cycle compute time (30 s suits the
// paper-scale run).
func (r *Report) WriteBurstTrend(gap sim.Time) (early, late sim.Time, bursts int) {
	writes := analysis.WriteTimeline(analysis.FilterPhase(r.Events, escat.PhaseQuadrature))
	bs := analysis.Bursts(writes, gap)
	sp := analysis.BurstSpacings(bs)
	if len(sp) == 0 {
		return 0, 0, len(bs)
	}
	return sp[0], sp[len(sp)-1], len(bs)
}

// InitReadThroughput returns the sustained read rate of RENDER's
// initialization phase in bytes/second (§6.2 quotes ~9.5 MB/s).
func (r *Report) InitReadThroughput() float64 {
	init := analysis.FilterPhase(r.Events, render.PhaseInit)
	reads := analysis.OpTimeline(init, iotrace.OpAsyncRead)
	if len(reads) == 0 {
		return 0
	}
	var last sim.Time
	for _, e := range init {
		if (e.Op == iotrace.OpIOWait || e.Op == iotrace.OpAsyncRead) && e.End > last {
			last = e.End
		}
	}
	return analysis.Throughput(reads, last-reads[0].T)
}
