package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
)

func TestCacheSweepSmallShowsReadReduction(t *testing.T) {
	rows, err := CacheSweep(true, cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byName := map[string]analysis.CacheComparison{}
	for _, r := range rows {
		t.Logf("%-8s ops=%d base=%v cached=%v reduction=%.1f%% hit=%.1f%% pf=%.2f coalesce=%.1f",
			r.Name, r.Ops, r.BaseMean, r.CachedMean, 100*r.Reduction(),
			100*r.HitRatio, r.PrefetchAccuracy, r.Coalescing)
		byName[r.Name] = r
	}
	if r := byName["escat"]; r.Reduction() <= 0 {
		t.Errorf("escat: cache did not reduce mean read latency (%.1f%%)", 100*r.Reduction())
	}
	if r := byName["htf"]; r.Reduction() <= 0 {
		t.Errorf("htf: cache did not reduce mean read latency (%.1f%%)", 100*r.Reduction())
	}
}

func TestModeCacheSweepRandomControlShowsNoBenefit(t *testing.T) {
	rows, err := ModeCacheSweep(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 6 modes + random control", len(rows))
	}
	var random analysis.CacheComparison
	for _, r := range rows {
		t.Logf("%-12s op=%-6s ops=%d base=%v cached=%v reduction=%.1f%% hit=%.1f%%",
			r.Name, r.Op, r.Ops, r.BaseMean, r.CachedMean, 100*r.Reduction(), 100*r.HitRatio)
		if r.Name == "random-read" {
			random = r
		}
	}
	if random.Name == "" {
		t.Fatal("no random-read control row")
	}
	if random.HitRatio > 0.05 {
		t.Errorf("random control hit ratio %.1f%%, want ~0", 100*random.HitRatio)
	}
	if red := random.Reduction(); red > 0.05 || red < -0.05 {
		t.Errorf("random control latency moved %.1f%%, want no significant change", 100*red)
	}
}

func TestCachedRunDeterministic(t *testing.T) {
	run := func() string {
		s := SmallStudy(ESCAT)
		s.Machine.PFS.Cache = cache.DefaultConfig()
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cache == nil {
			t.Fatal("cached study produced no cache report")
		}
		return analysis.RenderCacheReport(r.Cache) + r.Summary.Render("summary") +
			r.Wall.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical cached runs diverged:\n%s\nvs\n%s", a, b)
	}
}
