package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ckpt"
)

func TestResilienceSummaryFromResilientRun(t *testing.T) {
	rr, err := RunResilient(chaosStudy())
	if err != nil {
		t.Fatal(err)
	}
	r := rr.Resilience()
	if r.Attempts != 2 || r.Failures != 1 {
		t.Errorf("attempts/failures = %d/%d, want 2/1", r.Attempts, r.Failures)
	}
	if r.Wall != rr.Wall || r.LostWork != rr.LostWork {
		t.Errorf("wall/lost = %v/%v, want %v/%v", r.Wall, r.LostWork, rr.Wall, rr.LostWork)
	}
	if r.Exposure.Outage <= 0 {
		t.Errorf("outage exposure = %v, want > 0", r.Exposure.Outage)
	}
	if r.Checkpoints != rr.Ckpt.Checkpoints || r.Restores != rr.Ckpt.Restores {
		t.Errorf("ckpt counters not carried: %+v vs %+v", r, rr.Ckpt)
	}
	text := analysis.RenderResilience(r)
	if !strings.Contains(text, "Resilience report:") ||
		!strings.Contains(text, "2 attempts, 1 failures") {
		t.Errorf("render:\n%s", text)
	}
}

func TestTradeoffSweepMonotoneLostWork(t *testing.T) {
	pts, err := TradeoffSweep(chaosStudy(), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	none, freq := pts[0], pts[1]
	if none.Checkpoints != 0 || none.Overhead != 0 {
		t.Errorf("interval-0 point has checkpoint activity: %+v", none)
	}
	if freq.Checkpoints < 2 || freq.Overhead <= 0 {
		t.Errorf("interval-2 point missing checkpoint activity: %+v", freq)
	}
	if none.LostWork <= freq.LostWork {
		t.Errorf("lost work: none=%v should exceed interval-2=%v",
			none.LostWork, freq.LostWork)
	}
	out := analysis.RenderTradeoff(pts)
	if !strings.Contains(out, "none") || !strings.Contains(out, "2") {
		t.Errorf("render:\n%s", out)
	}
}

// TradeoffSweep must not leak coordinator state between intervals: each run
// starts from scratch.
func TestTradeoffSweepIndependentRuns(t *testing.T) {
	pts, err := TradeoffSweep(chaosStudy(), []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0] != pts[1] {
		t.Errorf("identical intervals diverged: %+v vs %+v", pts[0], pts[1])
	}
	solo, err := RunResilient(func() ResilientStudy {
		rs := chaosStudy()
		rs.Ckpt = ckpt.Config{Interval: 2, BytesPerNode: 4096, FileName: "escat.ckpt"}
		return rs
	}())
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Wall != solo.Wall || pts[0].LostWork != solo.LostWork {
		t.Errorf("sweep point %+v differs from direct run wall=%v lost=%v",
			pts[0], solo.Wall, solo.LostWork)
	}
}
