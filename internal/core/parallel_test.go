package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/integrity"
)

// renderAllSweeps runs every executor-backed sweep and renders the reports
// into one text blob, so a byte comparison covers rows, ordering, and
// formatting at once.
func renderAllSweeps(t *testing.T) string {
	t.Helper()
	var out string

	cacheRows, err := CacheSweep(true, cache.DefaultConfig())
	if err != nil {
		t.Fatalf("CacheSweep: %v", err)
	}
	out += analysis.RenderCacheSweep("Cache sweep:", cacheRows)

	modeRows, err := ModeCacheSweep(cache.DefaultConfig())
	if err != nil {
		t.Fatalf("ModeCacheSweep: %v", err)
	}
	out += analysis.RenderCacheSweep("Mode cache sweep:", modeRows)

	corrRows, err := CorruptionSweep(true, 11)
	if err != nil {
		t.Fatalf("CorruptionSweep: %v", err)
	}
	out += analysis.RenderCorruptionSweep(corrRows)

	integRows, err := ModeIntegritySweep(integrity.DefaultConfig())
	if err != nil {
		t.Fatalf("ModeIntegritySweep: %v", err)
	}
	out += analysis.RenderIntegrityOverhead(integRows)

	scalePts, err := ESCATScaling([]int{4, 8}, 4)
	if err != nil {
		t.Fatalf("ESCATScaling: %v", err)
	}
	out += RenderScaling(scalePts)

	out += RenderSweep(DefaultCrossoverModel().Sweep([]float64{1e6, 3e6, 5.6e6, 10e6}))

	tradePts, err := TradeoffSweep(chaosStudy(), []int{0, 2})
	if err != nil {
		t.Fatalf("TradeoffSweep: %v", err)
	}
	out += analysis.RenderTradeoff(tradePts)

	return out
}

// Every sweep must render byte-identically at any worker count: results are
// delivered by submission index and each run builds all of its own state, so
// -parallel only changes wall-clock time, never output. This is the
// executor's core guarantee; run the suite with -race to also prove the
// concurrent runs share no mutable state.
func TestSweepsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	defer exec.SetWorkers(0)

	exec.SetWorkers(1)
	sequential := renderAllSweeps(t)
	exec.SetWorkers(8)
	parallel := renderAllSweeps(t)

	if sequential != parallel {
		t.Fatalf("sweep output differs between -parallel=1 and -parallel=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	if len(sequential) == 0 {
		t.Fatal("sweeps rendered nothing")
	}
}
