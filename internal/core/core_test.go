package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps/escat"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

func TestSmallStudiesRunForAllApps(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(string(app), func(t *testing.T) {
			r, err := Run(SmallStudy(app))
			if err != nil {
				t.Fatal(err)
			}
			if r.App != app || r.Wall <= 0 || len(r.Events) == 0 {
				t.Fatalf("report %+v", r)
			}
			if r.Summary.Total.Count == 0 {
				t.Fatal("empty summary")
			}
			if len(r.Tables()) == 0 {
				t.Fatal("no tables")
			}
			if len(r.Figures()) == 0 {
				t.Fatal("no figures")
			}
		})
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Run(Study{App: "bogus", Machine: PaperStudy(ESCAT).Machine}); err == nil {
		t.Fatal("bogus app accepted")
	}
}

func TestZeroMachineTakesDefaults(t *testing.T) {
	cfg := escat.SmallConfig()
	r, err := Run(Study{App: ESCAT, ESCATConfig: &cfg, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 {
		t.Fatal("no events")
	}
}

func TestFigureLookup(t *testing.T) {
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	fig, err := r.Figure(4)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figure-04" || len(fig.Points) == 0 {
		t.Fatalf("figure %+v", fig)
	}
	if _, err := r.Figure(6); err == nil {
		t.Fatal("ESCAT produced RENDER's figure 6")
	}
}

func TestHTFFigureSetComplete(t *testing.T) {
	r, err := Run(SmallStudy(HTF))
	if err != nil {
		t.Fatal(err)
	}
	figs := r.Figures()
	if len(figs) != 9 {
		t.Fatalf("HTF figures %d, want 9 (9-17)", len(figs))
	}
	if figs[0].ID != "figure-09" || figs[8].ID != "figure-17" {
		t.Fatalf("figure range %s..%s", figs[0].ID, figs[8].ID)
	}
}

func TestPolicyStudyProducesBothStreams(t *testing.T) {
	pol := ppfs.DefaultPolicy()
	s := SmallStudy(ESCAT)
	s.Policy = &pol
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.PolicyStats == nil {
		t.Fatal("no policy stats")
	}
	if len(r.Physical) == 0 || len(r.Events) == 0 {
		t.Fatal("missing a stream")
	}
	if &r.Physical[0] == &r.Events[0] {
		t.Fatal("physical stream aliases app stream under PPFS")
	}
	// Write-behind absorbed the quadrature writes.
	if r.PolicyStats.BufferedWrites == 0 {
		t.Fatalf("stats %+v", *r.PolicyStats)
	}
}

func TestAblationWriteBehindShrinksAppVisibleWriteTime(t *testing.T) {
	base, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	pol := ppfs.DefaultPolicy()
	s := SmallStudy(ESCAT)
	s.Policy = &pol
	layered, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	bw := base.Summary.Row("Write").NodeTime
	lw := layered.Summary.Row("Write").NodeTime
	if lw*5 > bw {
		t.Fatalf("PPFS write time %v not far below PFS %v", lw, bw)
	}
	// And seeks became client-local.
	bs := base.Summary.Row("Seek").NodeTime
	ls := layered.Summary.Row("Seek").NodeTime
	if ls*5 > bs {
		t.Fatalf("PPFS seek time %v not far below PFS %v", ls, bs)
	}
}

func TestLifetimeReductionAgreesWithTrace(t *testing.T) {
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	// Sum of per-file op counts equals the trace totals.
	var reads, writes int64
	for _, f := range r.Lifetime.Files() {
		reads += f.Count[2-2] // OpRead == 0
		writes += f.Count[1]  // OpWrite == 1
	}
	if reads != r.Summary.Row("Read").Count {
		t.Fatalf("lifetime reads %d vs summary %d", reads, r.Summary.Row("Read").Count)
	}
	if writes != r.Summary.Row("Write").Count {
		t.Fatalf("lifetime writes %d vs summary %d", writes, r.Summary.Row("Write").Count)
	}
}

func TestWindowReductionCoversWholeRun(t *testing.T) {
	s := SmallStudy(ESCAT)
	s.WindowWidth = 100 * sim.Millisecond
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, w := range r.Windows.Windows() {
		for _, c := range w.Count {
			total += c
		}
	}
	if total != r.Summary.Total.Count {
		t.Fatalf("windows hold %d events, trace %d", total, r.Summary.Total.Count)
	}
}

func TestCrossoverModelBreakEven(t *testing.T) {
	m := DefaultCrossoverModel()
	be := m.BreakEvenRate()
	// §7.2: "approximately 5-10 Mbytes/second per node".
	if be < 5e6 || be > 10e6 {
		t.Fatalf("break-even %f MB/s, paper 5-10", be/1e6)
	}
	pts := m.Sweep([]float64{1e6, 3e6, be * 1.01, 20e6})
	if pts[0].ReadWins || pts[1].ReadWins {
		t.Fatal("slow I/O should lose to recomputation")
	}
	if !pts[2].ReadWins || !pts[3].ReadWins {
		t.Fatal("fast I/O should beat recomputation")
	}
	out := RenderSweep(pts)
	if !strings.Contains(out, "recompute") || !strings.Contains(out, "read") {
		t.Fatalf("sweep render:\n%s", out)
	}
	if math.Abs(m.RecomputeTime()-1e-5) > 1e-9 {
		t.Fatalf("recompute time %g, want 10 us", m.RecomputeTime())
	}
}

func TestCompareTablesRender(t *testing.T) {
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	pt := PaperTables()[0]
	out := CompareTable(pt, r)
	if !strings.Contains(out, "paper vs measured") || !strings.Contains(out, "All I/O") {
		t.Fatalf("compare table:\n%s", out)
	}
	st := PaperSizeTables()[0]
	sout := CompareSizeTable(st, r)
	if !strings.Contains(sout, "Read") || !strings.Contains(sout, "measured") {
		t.Fatalf("compare sizes:\n%s", sout)
	}
}

func TestPaperExpectationsConsistency(t *testing.T) {
	// The hard-coded paper tables must at least be self-describing: every
	// app referenced exists and rows are non-empty.
	apps := map[AppID]bool{ESCAT: true, RENDER: true, HTF: true}
	for _, pt := range PaperTables() {
		if !apps[pt.App] {
			t.Errorf("%s references unknown app %q", pt.Name, pt.App)
		}
		if len(pt.Rows) == 0 || pt.Rows[0].Op != "All I/O" {
			t.Errorf("%s rows malformed", pt.Name)
		}
	}
	if len(PaperSizeTables()) != 5 {
		t.Errorf("size tables %d, want 5", len(PaperSizeTables()))
	}
}

func TestWriteBurstTrendSmall(t *testing.T) {
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	// At the reduced scale the compute/burst ratio is too tight for exact
	// burst counting (the paper-scale assertion lives in the escat package
	// tests); here just check the helper clusters and orders sanely.
	early, late, bursts := r.WriteBurstTrend(50 * sim.Millisecond)
	iters := escat.SmallConfig().Iterations
	if bursts < iters || bursts > 3*iters {
		t.Fatalf("bursts %d, want within [%d, %d]", bursts, iters, 3*iters)
	}
	if early <= 0 || late <= 0 {
		t.Fatalf("spacings %v %v", early, late)
	}
}

func TestRenderThroughputHelper(t *testing.T) {
	r, err := Run(SmallStudy(RENDER))
	if err != nil {
		t.Fatal(err)
	}
	if tput := r.InitReadThroughput(); tput <= 0 {
		t.Fatalf("throughput %f", tput)
	}
	// The helper returns zero for apps without an init read stream.
	e, _ := Run(SmallStudy(ESCAT))
	if e.InitReadThroughput() != 0 {
		t.Fatal("ESCAT reported RENDER throughput")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(SmallStudy(HTF))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SmallStudy(HTF))
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall != b.Wall || len(a.Events) != len(b.Events) {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Wall, len(a.Events), b.Wall, len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

var _ = analysis.Summarize // keep import if helpers change

func TestPurposesMatchPaperNarratives(t *testing.T) {
	// ESCAT (§2/§5): inputs compulsory, staging checkpoint-style reuse of
	// each node's own data, outputs compulsory.
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	byFile := map[int]analysis.Purpose{}
	for _, fp := range r.Purposes() {
		byFile[int(fp.File)] = fp.Purpose
	}
	for _, id := range []int{9, 10, 11} {
		if byFile[id] != analysis.PurposeCompulsoryInput {
			t.Errorf("input file %d classified %v", id, byFile[id])
		}
	}
	for _, id := range []int{7, 8} {
		if byFile[id] != analysis.PurposeCheckpoint {
			t.Errorf("staging file %d classified %v", id, byFile[id])
		}
	}
	for _, id := range []int{3, 4, 5} {
		if byFile[id] != analysis.PurposeCompulsoryOutput {
			t.Errorf("output file %d classified %v", id, byFile[id])
		}
	}

	// HTF (§7): integral files are out-of-core ("too large to retain in
	// memory", reread every pass).
	h, err := Run(SmallStudy(HTF))
	if err != nil {
		t.Fatal(err)
	}
	outOfCore := 0
	for _, fp := range h.Purposes() {
		if fp.Purpose == analysis.PurposeOutOfCore && fp.RereadOwn {
			outOfCore++
		}
	}
	if outOfCore < 8 { // one integral file per node in SmallConfig
		t.Errorf("out-of-core integral files %d, want >= 8", outOfCore)
	}
}

func TestESCATScalingSuperlinearIOTime(t *testing.T) {
	pts, err := ESCATScaling([]int{8, 32}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %v", pts)
	}
	// The token-serialized small-write pattern costs superlinearly in node
	// time: 4x the nodes should cost much more than 4x the seek+write time.
	ratio := float64(pts[1].SeekWrite) / float64(pts[0].SeekWrite)
	if ratio < 6 {
		t.Fatalf("seek+write scaled only %.1fx for 4x nodes: %v", ratio, pts)
	}
	out := RenderScaling(pts)
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "seek+write") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestReportPatternSummaryMatchesPaperConclusion(t *testing.T) {
	// §10: "the majority of the request patterns are sequential" and
	// "requests tend to be of fixed size".
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	s := r.PatternSummary()
	if s.Streams == 0 {
		t.Fatal("no streams")
	}
	if s.WeightedSequential < 0.5 {
		t.Fatalf("sequential fraction %.2f, paper says majority", s.WeightedSequential)
	}
	if s.FixedSizeStreams == 0 {
		t.Fatal("no fixed-size streams in ESCAT (quadrature records are fixed)")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r, err := Run(SmallStudy(ESCAT))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if decoded["app"] != "escat" {
		t.Fatalf("app %v", decoded["app"])
	}
	ops := decoded["operations"].([]any)
	if len(ops) < 5 || ops[0].(map[string]any)["op"] != "All I/O" {
		t.Fatalf("operations %v", ops)
	}
	if decoded["patterns"].(map[string]any)["streams"].(float64) == 0 {
		t.Fatal("no pattern streams in json")
	}
}
