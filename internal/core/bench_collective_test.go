package core

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/ionode"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/workload"
)

// benchCollectiveMode runs the phase-aligned synthetic workload under one
// access mode and PFS configuration per iteration, reporting the simulated
// wall clock and the physical array request count alongside the harness
// timing — the quantities BENCH_5.json compares across Base / AggFCFS /
// AggCSCAN.
func benchCollectiveMode(b *testing.B, mode iotrace.AccessMode, pcfg pfs.Config) {
	b.ReportAllocs()
	var last *Report
	for i := 0; i < b.N; i++ {
		r, err := syntheticReport(workload.SyntheticConfig{
			Nodes:       8,
			Mode:        mode,
			RecordBytes: 4096,
			Records:     32,
			Barrier:     true,
		}, pcfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Wall.Seconds(), "sim-wall-s")
	b.ReportMetric(float64(last.PhysRequests), "phys-requests")
	if last.Collective != nil {
		b.ReportMetric(last.Collective.Reduction(), "req-reduction")
	}
}

func baseCfg() pfs.Config { return pfs.DefaultConfig() }

func aggCfg(policy string) pfs.Config {
	cfg := pfs.DefaultConfig()
	cfg.Collective = collective.Config{Enabled: true}
	if policy != "" {
		cfg.Sched = ionode.SchedConfig{Policy: policy, Seed: 5}
	}
	return cfg
}

// The paper's M_RECORD discipline (§4, ESCAT's reload pattern): eight nodes,
// 32 records of 4 KB each, phase-aligned. The aggregated variants collapse
// each round's eight records into one stripe run.
func BenchmarkCollectiveRecordBase(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeRecord, baseCfg())
}

func BenchmarkCollectiveRecordAggFCFS(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeRecord, aggCfg(""))
}

func BenchmarkCollectiveRecordAggCSCAN(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeRecord, aggCfg("cscan"))
}

// The M_SYNC discipline: same record stream, offsets assigned in node order
// by the shared pointer. Collectively the round barrier replaces the
// sequencer's one-at-a-time turn taking.
func BenchmarkCollectiveSyncBase(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeSync, baseCfg())
}

func BenchmarkCollectiveSyncAggFCFS(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeSync, aggCfg(""))
}

func BenchmarkCollectiveSyncAggCSCAN(b *testing.B) {
	benchCollectiveMode(b, iotrace.ModeSync, aggCfg("cscan"))
}

// BenchmarkSweepCollective runs the three-application collective-versus-base
// sweep at small scale: six independent core.Run invocations per iteration.
func BenchmarkSweepCollective(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CollectiveSweep(true, collective.Config{},
			ionode.SchedConfig{Policy: "cscan", Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
