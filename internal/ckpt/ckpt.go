// Package ckpt implements coordinated checkpoint/restart for the application
// skeletons — the defensive-I/O pattern of §2's purpose taxonomy, here used
// to carry runs across injected faults. An application structured as numbered
// work units calls the Coordinator at each unit boundary; on checkpoint units
// every node rendezvouses, writes its state slice to a shared checkpoint
// file, and the checkpoint commits once all slices are durable. After a fatal
// fault the driver rebuilds the machine and the application resumes from the
// last committed unit, re-reading the checkpoint; work after the commit is
// lost and accounted as such.
//
// The Coordinator persists across machine rebuilds (attempts) — that is the
// point: its committed unit and commit instant survive the crash, everything
// else is rebuilt via Prepare.
package ckpt

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PhaseCheckpoint labels trace events issued inside checkpoint rounds, so the
// analysis side can separate defensive I/O from the application's own.
const PhaseCheckpoint = "checkpoint"

// Config parameterizes the checkpoint policy.
type Config struct {
	// Interval checkpoints after every Interval-th work unit (1 = every
	// unit). Zero or negative disables periodic checkpoints — the
	// Coordinator then only tracks units for restart bookkeeping.
	Interval int

	// BytesPerNode is each node's state slice size.
	BytesPerNode int64

	// FileName is the checkpoint file base name (default "app.ckpt").
	// Checkpoints double-buffer across FileName+".0" and FileName+".1",
	// alternating per commit, so a corrupt newest checkpoint still leaves
	// the previous one to restart from.
	FileName string
}

// Stats summarizes the checkpoint subsystem's activity across all attempts.
type Stats struct {
	Checkpoints   int      // committed checkpoints
	CommittedUnit int      // units safely covered by the last commit
	LastCommitAt  sim.Time // absolute instant of the last commit
	Overhead      sim.Time // summed node-time spent inside checkpoint rounds
	RestoreTime   sim.Time // summed node-time re-reading checkpoints on restart
	Restores      int      // node restore reads performed
	VerifyRejects int      // checkpoint generations rejected by restart verification
	DrainRejects  int      // generations rejected for records lost in a volatile burst log
	Fallbacks     int      // restarts that fell back to the older generation
}

// slot is one committed checkpoint generation.
type slot struct {
	unit     int
	commitAt sim.Time // absolute
	have     bool
}

// Coordinator implements workload.Checkpointer. One Coordinator serves one
// logical application run across all its restart attempts.
type Coordinator struct {
	cfg   Config
	nodes int

	// Committed state: survives machine rebuilds. Two generations
	// double-buffer across alternating files; cur indexes the newest valid
	// one, and each commit targets the other slot — so the generation a
	// restart would restore from is never overwritten mid-write, and a
	// rejected generation is the next one recycled.
	slots [2]slot
	cur   int

	// Per-attempt machinery, rebuilt by Prepare.
	base      sim.Time // absolute start of the current attempt
	barrier   *sim.Barrier
	phase     phaseSetter
	prevPhase string  // label to restore after a checkpoint round
	created   [2]bool // generation files installed on this attempt's machine

	st Stats
}

type phaseSetter interface {
	SetPhase(string)
	Phase() string
}

// New builds a coordinator for an application running on nodes compute nodes.
func New(cfg Config, nodes int) (*Coordinator, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("ckpt: %d nodes", nodes)
	}
	if cfg.BytesPerNode < 0 {
		return nil, fmt.Errorf("ckpt: negative slice size %d", cfg.BytesPerNode)
	}
	if cfg.FileName == "" {
		cfg.FileName = "app.ckpt"
	}
	return &Coordinator{cfg: cfg, nodes: nodes}, nil
}

// fileOf names one checkpoint generation's file.
func (c *Coordinator) fileOf(gen int) string {
	return fmt.Sprintf("%s.%d", c.cfg.FileName, gen)
}

// Prepare arms the coordinator for one attempt on a freshly built machine:
// it installs both checkpoint generation files (at their committed sizes, so
// a restart can re-read them), rebuilds the rendezvous barrier, and rebases
// absolute time. base is the absolute instant the attempt's engine clock
// zero corresponds to.
func (c *Coordinator) Prepare(m *workload.Machine, fs workload.FS, base sim.Time) error {
	// Install the generations that hold committed state (a restart re-reads
	// them) plus the next commit target; an empty generation that is not the
	// next target has no file yet and is created when a commit first reaches
	// it — so a cold start installs exactly one file, like a fresh run would.
	next := 1 - c.cur
	c.created = [2]bool{}
	for gen := range c.slots {
		if !c.slots[gen].have && gen != next {
			continue
		}
		size := int64(0)
		if c.slots[gen].have {
			size = int64(c.nodes) * c.cfg.BytesPerNode
		}
		if _, err := fs.Preload(c.fileOf(gen), size); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		c.created[gen] = true
	}
	c.base = base
	c.barrier = sim.NewBarrier(m.Eng, "ckpt", c.nodes)
	c.phase, _ = fs.(phaseSetter)
	return nil
}

// IntegrityVerifier is the storage capability restart verification needs;
// *pfs.FileSystem implements it when its integrity layer is enabled.
type IntegrityVerifier interface {
	VerifyFile(name, by string) bool
}

// VerifyRestart checks the committed checkpoint generations against the
// storage integrity layer, newest first, before an attempt restores: a
// generation whose file holds latent corruption is rejected and the
// coordinator falls back to the older one (or to a cold start when both are
// bad). Call after Prepare — and after any carried corruption ledger has
// been re-injected. A nil verifier is a no-op.
func (c *Coordinator) VerifyRestart(v IntegrityVerifier) {
	if v == nil {
		return
	}
	for tries := 0; tries < len(c.slots); tries++ {
		if !c.slots[c.cur].have {
			return
		}
		if v.VerifyFile(c.fileOf(c.cur), "restart") {
			return
		}
		c.st.VerifyRejects++
		c.slots[c.cur] = slot{}
		other := 1 - c.cur
		if !c.slots[other].have {
			return // both generations bad: cold start
		}
		c.st.Fallbacks++
		c.cur = other
	}
}

// RejectUndrained invalidates checkpoint generations whose files still had
// committed-but-undrained burst-log records when the attempt died: those
// records lived in volatile node-local memory, so the generation on the PFS
// is incomplete even though the application saw its writes complete. Like
// VerifyRestart it walks newest-first and falls back to the older generation
// (or to a cold start when both are incomplete). pending maps file name to
// undrained bytes, as harvested from the dying tier.
func (c *Coordinator) RejectUndrained(pending map[string]int64) {
	for tries := 0; tries < len(c.slots); tries++ {
		if !c.slots[c.cur].have {
			return
		}
		if pending[c.fileOf(c.cur)] == 0 {
			return
		}
		c.st.DrainRejects++
		c.slots[c.cur] = slot{}
		other := 1 - c.cur
		if !c.slots[other].have {
			return // both generations incomplete: cold start
		}
		c.st.Fallbacks++
		c.cur = other
	}
}

// FileBase returns the checkpoint file base name; the burst tier intercepts
// writes under this prefix.
func (c *Coordinator) FileBase() string { return c.cfg.FileName }

// ResumeUnit implements workload.Checkpointer.
func (c *Coordinator) ResumeUnit() int {
	if !c.slots[c.cur].have {
		return 0
	}
	return c.slots[c.cur].unit
}

// Restore implements workload.Checkpointer: the node re-reads its slice of
// the newest valid checkpoint generation.
func (c *Coordinator) Restore(p *sim.Process, fs workload.FS, node int) error {
	if !c.slots[c.cur].have || c.cfg.BytesPerNode == 0 {
		return nil
	}
	start := p.Now()
	h, err := fs.Open(p, node, c.fileOf(c.cur), iotrace.ModeUnix)
	if err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if _, err := h.Seek(p, int64(node)*c.cfg.BytesPerNode, pfs.SeekStart); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if _, err := h.Read(p, c.cfg.BytesPerNode); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if err := h.Close(p); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	c.st.Restores++
	c.st.RestoreTime += p.Now() - start
	return nil
}

// AfterUnit implements workload.Checkpointer. On a checkpoint unit every
// node: rendezvouses (a checkpoint is globally consistent), writes its slice
// to the target generation's file, flushes, rendezvouses again, and then
// node 0 commits. Commits alternate between the two generation files, so the
// previous checkpoint stays intact while the next one is written. An I/O
// failure inside the round surfaces to the caller and the checkpoint does
// not commit — the previous one remains the restart point.
//
// Reading c.cur after the first barrier is consistent across nodes: node 0
// only updates it after the second barrier, and must re-enter the first
// barrier before any node can pass it again.
func (c *Coordinator) AfterUnit(p *sim.Process, fs workload.FS, node, unit int) error {
	if c.cfg.Interval <= 0 || (unit+1)%c.cfg.Interval != 0 {
		return nil
	}
	start := p.Now()
	c.barrier.Wait(p)
	target := 1 - c.cur
	if node == 0 && c.phase != nil {
		c.prevPhase = c.phase.Phase()
		c.phase.SetPhase(PhaseCheckpoint)
	}
	if c.cfg.BytesPerNode > 0 {
		if !c.created[target] {
			// First commit to this generation on this attempt's machine:
			// install its file (free, like Prepare would have). Only the
			// first node past the barrier creates it.
			if _, err := fs.Preload(c.fileOf(target), 0); err != nil {
				return fmt.Errorf("ckpt write: %w", err)
			}
			c.created[target] = true
		}
		h, err := fs.Open(p, node, c.fileOf(target), iotrace.ModeUnix)
		if err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if _, err := h.Seek(p, int64(node)*c.cfg.BytesPerNode, pfs.SeekStart); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if _, err := h.Write(p, c.cfg.BytesPerNode); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if err := h.Flush(p); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if err := h.Close(p); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
	}
	c.barrier.Wait(p)
	if node == 0 {
		c.slots[target] = slot{
			unit:     unit + 1,
			commitAt: c.base + p.Now(),
			have:     true,
		}
		c.cur = target
		c.st.Checkpoints++
		c.st.CommittedUnit = unit + 1
		c.st.LastCommitAt = c.slots[target].commitAt
		if c.phase != nil {
			c.phase.SetPhase(c.prevPhase)
		}
	}
	c.st.Overhead += p.Now() - start
	return nil
}

// Have reports whether a checkpoint has committed (and survived
// verification).
func (c *Coordinator) Have() bool { return c.slots[c.cur].have }

// LastCommitAt returns the absolute instant of the newest valid commit (zero
// if none).
func (c *Coordinator) LastCommitAt() sim.Time { return c.slots[c.cur].commitAt }

// Stats returns accumulated checkpoint statistics.
func (c *Coordinator) Stats() Stats { return c.st }

// Interface-satisfaction check.
var _ workload.Checkpointer = (*Coordinator)(nil)
