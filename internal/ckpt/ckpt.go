// Package ckpt implements coordinated checkpoint/restart for the application
// skeletons — the defensive-I/O pattern of §2's purpose taxonomy, here used
// to carry runs across injected faults. An application structured as numbered
// work units calls the Coordinator at each unit boundary; on checkpoint units
// every node rendezvouses, writes its state slice to a shared checkpoint
// file, and the checkpoint commits once all slices are durable. After a fatal
// fault the driver rebuilds the machine and the application resumes from the
// last committed unit, re-reading the checkpoint; work after the commit is
// lost and accounted as such.
//
// The Coordinator persists across machine rebuilds (attempts) — that is the
// point: its committed unit and commit instant survive the crash, everything
// else is rebuilt via Prepare.
package ckpt

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PhaseCheckpoint labels trace events issued inside checkpoint rounds, so the
// analysis side can separate defensive I/O from the application's own.
const PhaseCheckpoint = "checkpoint"

// Config parameterizes the checkpoint policy.
type Config struct {
	// Interval checkpoints after every Interval-th work unit (1 = every
	// unit). Zero or negative disables periodic checkpoints — the
	// Coordinator then only tracks units for restart bookkeeping.
	Interval int

	// BytesPerNode is each node's state slice size.
	BytesPerNode int64

	// FileName is the checkpoint file (default "app.ckpt").
	FileName string
}

// Stats summarizes the checkpoint subsystem's activity across all attempts.
type Stats struct {
	Checkpoints   int      // committed checkpoints
	CommittedUnit int      // units safely covered by the last commit
	LastCommitAt  sim.Time // absolute instant of the last commit
	Overhead      sim.Time // summed node-time spent inside checkpoint rounds
	RestoreTime   sim.Time // summed node-time re-reading checkpoints on restart
	Restores      int      // node restore reads performed
}

// Coordinator implements workload.Checkpointer. One Coordinator serves one
// logical application run across all its restart attempts.
type Coordinator struct {
	cfg   Config
	nodes int

	// Committed state: survives machine rebuilds.
	unit     int
	commitAt sim.Time // absolute
	have     bool

	// Per-attempt machinery, rebuilt by Prepare.
	base      sim.Time // absolute start of the current attempt
	barrier   *sim.Barrier
	phase     phaseSetter
	prevPhase string // label to restore after a checkpoint round

	st Stats
}

type phaseSetter interface {
	SetPhase(string)
	Phase() string
}

// New builds a coordinator for an application running on nodes compute nodes.
func New(cfg Config, nodes int) (*Coordinator, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("ckpt: %d nodes", nodes)
	}
	if cfg.BytesPerNode < 0 {
		return nil, fmt.Errorf("ckpt: negative slice size %d", cfg.BytesPerNode)
	}
	if cfg.FileName == "" {
		cfg.FileName = "app.ckpt"
	}
	return &Coordinator{cfg: cfg, nodes: nodes}, nil
}

// Prepare arms the coordinator for one attempt on a freshly built machine:
// it installs the checkpoint file (at its committed size, so a restart can
// re-read it), rebuilds the rendezvous barrier, and rebases absolute time.
// base is the absolute instant the attempt's engine clock zero corresponds
// to.
func (c *Coordinator) Prepare(m *workload.Machine, fs workload.FS, base sim.Time) error {
	size := int64(0)
	if c.have {
		size = int64(c.nodes) * c.cfg.BytesPerNode
	}
	if _, err := fs.Preload(c.cfg.FileName, size); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	c.base = base
	c.barrier = sim.NewBarrier(m.Eng, "ckpt", c.nodes)
	c.phase, _ = fs.(phaseSetter)
	return nil
}

// ResumeUnit implements workload.Checkpointer.
func (c *Coordinator) ResumeUnit() int { return c.unit }

// Restore implements workload.Checkpointer: the node re-reads its slice of
// the last committed checkpoint.
func (c *Coordinator) Restore(p *sim.Process, fs workload.FS, node int) error {
	if !c.have || c.cfg.BytesPerNode == 0 {
		return nil
	}
	start := p.Now()
	h, err := fs.Open(p, node, c.cfg.FileName, iotrace.ModeUnix)
	if err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if _, err := h.Seek(p, int64(node)*c.cfg.BytesPerNode, pfs.SeekStart); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if _, err := h.Read(p, c.cfg.BytesPerNode); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	if err := h.Close(p); err != nil {
		return fmt.Errorf("ckpt restore: %w", err)
	}
	c.st.Restores++
	c.st.RestoreTime += p.Now() - start
	return nil
}

// AfterUnit implements workload.Checkpointer. On a checkpoint unit every
// node: rendezvouses (a checkpoint is globally consistent), writes its slice,
// flushes, rendezvouses again, and then node 0 commits. An I/O failure
// inside the round surfaces to the caller and the checkpoint does not commit
// — the previous one remains the restart point.
func (c *Coordinator) AfterUnit(p *sim.Process, fs workload.FS, node, unit int) error {
	if c.cfg.Interval <= 0 || (unit+1)%c.cfg.Interval != 0 {
		return nil
	}
	start := p.Now()
	c.barrier.Wait(p)
	if node == 0 && c.phase != nil {
		c.prevPhase = c.phase.Phase()
		c.phase.SetPhase(PhaseCheckpoint)
	}
	if c.cfg.BytesPerNode > 0 {
		h, err := fs.Open(p, node, c.cfg.FileName, iotrace.ModeUnix)
		if err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if _, err := h.Seek(p, int64(node)*c.cfg.BytesPerNode, pfs.SeekStart); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if _, err := h.Write(p, c.cfg.BytesPerNode); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if err := h.Flush(p); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
		if err := h.Close(p); err != nil {
			return fmt.Errorf("ckpt write: %w", err)
		}
	}
	c.barrier.Wait(p)
	if node == 0 {
		c.unit = unit + 1
		c.commitAt = c.base + p.Now()
		c.have = true
		c.st.Checkpoints++
		c.st.CommittedUnit = c.unit
		c.st.LastCommitAt = c.commitAt
		if c.phase != nil {
			c.phase.SetPhase(c.prevPhase)
		}
	}
	c.st.Overhead += p.Now() - start
	return nil
}

// Have reports whether a checkpoint has committed.
func (c *Coordinator) Have() bool { return c.have }

// LastCommitAt returns the absolute instant of the last commit (zero if
// none).
func (c *Coordinator) LastCommitAt() sim.Time { return c.commitAt }

// Stats returns accumulated checkpoint statistics.
func (c *Coordinator) Stats() Stats { return c.st }

// Interface-satisfaction check.
var _ workload.Checkpointer = (*Coordinator)(nil)
