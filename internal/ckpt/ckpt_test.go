package ckpt

import (
	"testing"

	"repro/internal/pablo"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newTestMachine(t *testing.T, nodes int) (*workload.Machine, workload.PFS) {
	t.Helper()
	m, err := workload.NewMachine(workload.MachineConfig{
		ComputeNodes: nodes,
		PFS:          pfs.DefaultConfig(),
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m, workload.WrapPFS(m.PFS)
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}, 0); err == nil {
		t.Fatal("New accepted 0 nodes")
	}
	if _, err := New(Config{BytesPerNode: -1}, 2); err == nil {
		t.Fatal("New accepted a negative slice size")
	}
	c, err := New(Config{Interval: 1}, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.cfg.FileName != "app.ckpt" {
		t.Fatalf("default FileName = %q, want app.ckpt", c.cfg.FileName)
	}
}

// runUnits drives nodes work units 0..units-1 through the coordinator on a
// fresh machine and returns the first error any node hit.
func runUnits(t *testing.T, c *Coordinator, nodes, units int, base sim.Time) (*workload.Machine, error) {
	t.Helper()
	m, fs := newTestMachine(t, nodes)
	if err := c.Prepare(m, fs, base); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var firstErr error
	for n := 0; n < nodes; n++ {
		node := n
		m.Eng.Spawn("app", func(p *sim.Process) {
			if err := c.Restore(p, fs, node); err != nil && firstErr == nil {
				firstErr = err
				return
			}
			for unit := c.ResumeUnit(); unit < units; unit++ {
				p.Sleep(sim.FromSeconds(0.001)) // the "work"
				if err := c.AfterUnit(p, fs, node, unit); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return m, firstErr
}

func TestCommitSemantics(t *testing.T) {
	c, err := New(Config{Interval: 2, BytesPerNode: 1024}, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Have() {
		t.Fatal("fresh coordinator claims a committed checkpoint")
	}
	if _, err := runUnits(t, c, 2, 5, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := c.Stats()
	// Units 0..4 with interval 2 checkpoint after units 1 and 3; unit 4 is
	// uncovered.
	if st.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", st.Checkpoints)
	}
	if st.CommittedUnit != 4 || c.ResumeUnit() != 4 {
		t.Fatalf("CommittedUnit = %d, ResumeUnit = %d, want 4", st.CommittedUnit, c.ResumeUnit())
	}
	if !c.Have() {
		t.Fatal("Have() = false after commits")
	}
	if st.LastCommitAt <= 0 || c.LastCommitAt() != st.LastCommitAt {
		t.Fatalf("LastCommitAt = %v (stats %v)", c.LastCommitAt(), st.LastCommitAt)
	}
	if st.Overhead <= 0 {
		t.Fatalf("Overhead = %v, want > 0", st.Overhead)
	}
	if st.Restores != 0 {
		t.Fatalf("Restores = %d on a first attempt, want 0", st.Restores)
	}
}

func TestDisabledIntervalIsNoOp(t *testing.T) {
	c, err := New(Config{Interval: 0, BytesPerNode: 1024}, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := runUnits(t, c, 2, 4, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("disabled coordinator accumulated stats: %+v", st)
	}
	if c.Have() || c.ResumeUnit() != 0 {
		t.Fatalf("disabled coordinator committed: have=%v unit=%d", c.Have(), c.ResumeUnit())
	}
}

func TestRestartRestoresFromCommit(t *testing.T) {
	const nodes = 2
	c, err := New(Config{Interval: 2, BytesPerNode: 2048}, nodes)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// First attempt covers units 0..3 (commits after 1 and 3).
	if _, err := runUnits(t, c, nodes, 4, 0); err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	commit := c.LastCommitAt()
	if c.ResumeUnit() != 4 {
		t.Fatalf("ResumeUnit = %d after attempt 1, want 4", c.ResumeUnit())
	}

	// Second attempt on a rebuilt machine: each node restores, then runs the
	// remaining units 4..5.
	base := sim.FromSeconds(10)
	if _, err := runUnits(t, c, nodes, 6, base); err != nil {
		t.Fatalf("attempt 2: %v", err)
	}
	st := c.Stats()
	if st.Restores != nodes {
		t.Fatalf("Restores = %d, want %d", st.Restores, nodes)
	}
	if st.RestoreTime <= 0 {
		t.Fatalf("RestoreTime = %v, want > 0", st.RestoreTime)
	}
	if st.CommittedUnit != 6 {
		t.Fatalf("CommittedUnit = %d after attempt 2, want 6", st.CommittedUnit)
	}
	// The new commit is stamped in absolute time: past the attempt's base,
	// and strictly after the first attempt's commit.
	if c.LastCommitAt() <= base || c.LastCommitAt() <= commit {
		t.Fatalf("LastCommitAt = %v, want > base %v and > %v", c.LastCommitAt(), base, commit)
	}
	if st.Checkpoints != 3 {
		t.Fatalf("Checkpoints = %d across attempts, want 3", st.Checkpoints)
	}
}

func TestRestoreWithoutCommitIsNoOp(t *testing.T) {
	c, err := New(Config{Interval: 2, BytesPerNode: 1024}, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, fs := newTestMachine(t, 1)
	if err := c.Prepare(m, fs, 0); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var rerr error
	m.Eng.Spawn("restore", func(p *sim.Process) {
		rerr = c.Restore(p, fs, 0)
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if rerr != nil {
		t.Fatalf("Restore: %v", rerr)
	}
	if st := c.Stats(); st.Restores != 0 || st.RestoreTime != 0 {
		t.Fatalf("no-commit restore did I/O: %+v", st)
	}
}

func TestCheckpointPhaseLabel(t *testing.T) {
	c, err := New(Config{Interval: 1, BytesPerNode: 512}, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, fs := newTestMachine(t, 1)
	tr := pablo.NewTracer(true)
	m.PFS.SetRecorder(tr)
	if err := c.Prepare(m, fs, 0); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	fs.SetPhase("compute")
	m.Eng.Spawn("app", func(p *sim.Process) {
		if err := c.AfterUnit(p, fs, 0, 0); err != nil {
			t.Errorf("AfterUnit: %v", err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if got := fs.Phase(); got != "compute" {
		t.Fatalf("phase after checkpoint round = %q, want restored %q", got, "compute")
	}
	var tagged int
	for _, e := range tr.Events() {
		if e.Phase == PhaseCheckpoint {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no trace events tagged with the checkpoint phase")
	}
}

// TestRejectUndrainedFallsBack: a generation whose file still held undrained
// burst-log records at the crash is incomplete on the PFS — the restart must
// fall back to the older generation, and to a cold start when both are
// pending.
func TestRejectUndrainedFallsBack(t *testing.T) {
	c, err := New(Config{Interval: 1, BytesPerNode: 1024}, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Units 0..2 with interval 1 commit three times: generations alternate,
	// newest covers unit 3, the surviving older one unit 2.
	if _, err := runUnits(t, c, 2, 3, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.ResumeUnit() != 3 {
		t.Fatalf("ResumeUnit = %d, want 3", c.ResumeUnit())
	}
	newest := c.fileOf(c.cur)

	// Newest generation partially drained at the crash: reject it, resume
	// from the older one.
	c.RejectUndrained(map[string]int64{newest: 4096})
	st := c.Stats()
	if st.DrainRejects != 1 || st.Fallbacks != 1 {
		t.Fatalf("DrainRejects = %d Fallbacks = %d, want 1/1", st.DrainRejects, st.Fallbacks)
	}
	if c.ResumeUnit() != 2 {
		t.Fatalf("ResumeUnit = %d after fallback, want 2", c.ResumeUnit())
	}
	if !c.Have() {
		t.Fatal("older generation lost in fallback")
	}

	// A fully drained ledger rejects nothing.
	c.RejectUndrained(map[string]int64{})
	if got := c.Stats().DrainRejects; got != 1 {
		t.Fatalf("clean ledger bumped DrainRejects to %d", got)
	}

	// Both generations pending: cold start.
	c.RejectUndrained(map[string]int64{c.fileOf(0): 1, c.fileOf(1): 1})
	if c.Have() || c.ResumeUnit() != 0 {
		t.Fatalf("both-pending reject left have=%v resume=%d", c.Have(), c.ResumeUnit())
	}
	if got := c.Stats().DrainRejects; got != 2 {
		t.Fatalf("DrainRejects = %d after cold-start reject, want 2", got)
	}
}
