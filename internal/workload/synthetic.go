package workload

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// SyntheticConfig parameterizes a Synthetic workload: every node moves
// Records records of RecordBytes each through one shared file under the given
// PFS access mode. It is the sixmodes demonstration workload generalized into
// a reusable App, so mode sweeps (and the cache what-if) can drive arbitrary
// record sizes, read/write direction, and access order from one skeleton.
type SyntheticConfig struct {
	Name        string // file name; defaults to "synthetic-<mode>"
	Nodes       int
	Mode        iotrace.AccessMode
	RecordBytes int64
	Records     int

	// Read makes every access a read of a preloaded file instead of a
	// write. M_GLOBAL is a read discipline and always reads.
	Read bool

	// Random replaces each node's sequential record order with a uniform
	// random record pick (seeded per node from Seed, so runs are
	// deterministic). Only meaningful for the independent-pointer modes
	// (M_UNIX, M_ASYNC); the shared-pointer disciplines define the order
	// themselves.
	Random bool
	Seed   uint64

	// FileBytes overrides the preloaded file size for read workloads. Zero
	// derives it from the record layout; set it larger than the cache to
	// build a working set that cannot become resident.
	FileBytes int64

	// Barrier synchronizes the nodes between opening the shared file and
	// starting the record loop — the barrier-then-I/O-phase structure of the
	// paper's applications. Opens serialize at the metadata server, so
	// without it the nodes enter the I/O phase staggered by a full open
	// service time each; round-structured what-ifs (collective I/O's
	// straggler window) need the phase alignment.
	Barrier bool
}

// Validate reports nonsensical configurations.
func (c SyntheticConfig) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("workload: synthetic needs >= 1 node, got %d", c.Nodes)
	}
	if c.RecordBytes < 1 || c.Records < 1 {
		return fmt.Errorf("workload: synthetic needs positive records, got %d x %d B",
			c.Records, c.RecordBytes)
	}
	return nil
}

// Synthetic is the configurable one-shared-file workload.
type Synthetic struct {
	cfg  SyntheticConfig
	errs NodeErrors
}

// NewSynthetic builds the workload.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "synthetic-" + cfg.Mode.String()
	}
	return &Synthetic{cfg: cfg}, nil
}

// Name implements App.
func (s *Synthetic) Name() string { return "synthetic" }

// Err returns the first node failure, if any.
func (s *Synthetic) Err() error { return s.errs.Err() }

// reads reports whether the workload's data motion is reads.
func (s *Synthetic) reads() bool {
	return s.cfg.Read || s.cfg.Mode == iotrace.ModeGlobal
}

// fileSize returns the preloaded extent.
func (s *Synthetic) fileSize() int64 {
	if !s.reads() {
		return 0
	}
	if s.cfg.FileBytes > 0 {
		return s.cfg.FileBytes
	}
	per := int64(s.cfg.Records) * s.cfg.RecordBytes
	if s.cfg.Mode == iotrace.ModeGlobal {
		// Every node reads the same records.
		return per
	}
	return int64(s.cfg.Nodes) * per
}

// Launch implements App: it preloads the shared file and spawns one process
// per node.
func (s *Synthetic) Launch(m *Machine, fs FS) error {
	s.errs.Attach(m.Eng)
	cfg := s.cfg
	if _, err := fs.Preload(cfg.Name, s.fileSize()); err != nil {
		return err
	}
	var bar *sim.Barrier
	if cfg.Barrier {
		bar = sim.NewBarrier(m.Eng, "syn-phase", cfg.Nodes)
	}
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		m.Eng.Spawn(fmt.Sprintf("syn%d", node), func(p *sim.Process) {
			if err := s.runNode(p, fs, node, bar); err != nil {
				s.errs.Addf("node %d: %w", node, err)
			}
		})
	}
	return nil
}

func (s *Synthetic) runNode(p *sim.Process, fs FS, node int, bar *sim.Barrier) error {
	cfg := s.cfg
	var h Handle
	var err error
	if cfg.Mode == iotrace.ModeRecord {
		h, err = fs.OpenRecord(p, node, cfg.Name, cfg.RecordBytes)
	} else {
		h, err = fs.Open(p, node, cfg.Name, cfg.Mode)
	}
	if err != nil {
		return err
	}
	independent := cfg.Mode == iotrace.ModeUnix || cfg.Mode == iotrace.ModeAsync
	if independent && !cfg.Random {
		// Each node owns a disjoint sequential partition.
		off := int64(node) * int64(cfg.Records) * cfg.RecordBytes
		if _, err := h.Seek(p, off, pfs.SeekStart); err != nil {
			return err
		}
	}
	var rng *sim.RNG
	if cfg.Random && independent {
		// Split hashes the seed through the generator, so per-node streams
		// are decorrelated (adjacent raw seeds would overlap: splitmix64
		// advances its state by a fixed increment per draw).
		rng = sim.NewRNG(cfg.Seed + uint64(node)).Split()
	}
	if bar != nil {
		bar.Wait(p)
	}
	slots := s.fileSize() / cfg.RecordBytes
	for r := 0; r < cfg.Records; r++ {
		if rng != nil && slots > 0 {
			off := rng.Int63n(slots) * cfg.RecordBytes
			if _, err := h.Seek(p, off, pfs.SeekStart); err != nil {
				return err
			}
		}
		if s.reads() {
			_, err = h.Read(p, cfg.RecordBytes)
		} else {
			_, err = h.Write(p, cfg.RecordBytes)
		}
		if err != nil {
			return err
		}
	}
	return h.Close(p)
}
