// Package workload defines the application-facing abstractions of the
// reproduction: the FS interface the application skeletons program against
// (implemented both by raw PFS and by the PPFS policy layer, so the §5.2
// policy ablation runs the identical application code on both), the Machine
// bundle describing one simulated Paragon, and the App registry.
package workload

import (
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// FS is the parallel file system surface used by applications.
type FS interface {
	// Create makes a new file and returns node's open handle on it.
	Create(p *sim.Process, node int, name string, mode iotrace.AccessMode) (Handle, error)
	// Open opens an existing file.
	Open(p *sim.Process, node int, name string, mode iotrace.AccessMode) (Handle, error)
	// OpenRecord opens an existing file in M_RECORD mode with a fixed
	// record length.
	OpenRecord(p *sim.Process, node int, name string, recordLen int64) (Handle, error)
	// Preload installs a pre-existing data set (no cost, no trace events).
	Preload(name string, size int64) (pfs.FileInfo, error)
	// ReserveIDs skips low file ids so traces align with descriptor
	// numbering conventions.
	ReserveIDs(n int)
	// SetPhase labels subsequent trace events with an application phase.
	SetPhase(name string)
	// Stat reports a file's identity and extent (bookkeeping; free).
	Stat(name string) (pfs.FileInfo, bool)
}

// Handle is one node's open descriptor.
type Handle interface {
	Read(p *sim.Process, n int64) (int64, error)
	Write(p *sim.Process, n int64) (int64, error)
	ReadAsync(p *sim.Process, n int64) (AsyncRead, error)
	Seek(p *sim.Process, offset int64, whence int) (int64, error)
	Close(p *sim.Process) error
	Lsize(p *sim.Process) (int64, error)
	Flush(p *sim.Process) error
	SetIOMode(p *sim.Process, mode iotrace.AccessMode, recordLen int64) error
	Offset() int64
	Mode() iotrace.AccessMode
}

// AsyncRead is an in-flight asynchronous read.
type AsyncRead interface {
	Wait(p *sim.Process) (int64, error)
	Done() bool
	Bytes() int64
}

// PFS adapts a *pfs.FileSystem to the FS interface.
type PFS struct {
	*pfs.FileSystem
}

// WrapPFS wraps a PFS instance as a workload FS.
func WrapPFS(fs *pfs.FileSystem) PFS { return PFS{fs} }

// Create implements FS.
func (w PFS) Create(p *sim.Process, node int, name string, mode iotrace.AccessMode) (Handle, error) {
	h, err := w.FileSystem.Create(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	return pfsHandle{h}, nil
}

// Open implements FS.
func (w PFS) Open(p *sim.Process, node int, name string, mode iotrace.AccessMode) (Handle, error) {
	h, err := w.FileSystem.Open(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	return pfsHandle{h}, nil
}

// OpenRecord implements FS.
func (w PFS) OpenRecord(p *sim.Process, node int, name string, recordLen int64) (Handle, error) {
	h, err := w.FileSystem.OpenRecord(p, node, name, recordLen)
	if err != nil {
		return nil, err
	}
	return pfsHandle{h}, nil
}

type pfsHandle struct {
	*pfs.Handle
}

func (h pfsHandle) ReadAsync(p *sim.Process, n int64) (AsyncRead, error) {
	ar, err := h.Handle.ReadAsync(p, n)
	if err != nil {
		return nil, err
	}
	return ar, nil
}

// Interface-satisfaction checks.
var (
	_ FS        = PFS{}
	_ Handle    = pfsHandle{}
	_ AsyncRead = (*pfs.AsyncRead)(nil)
)
