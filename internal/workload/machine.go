package workload

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// MachineConfig describes one simulated Paragon XP/S: the compute partition
// size plus the PFS (which embeds the I/O node and disk models).
type MachineConfig struct {
	ComputeNodes int
	PFS          pfs.Config
}

// DefaultMachineConfig returns the paper's measurement configuration: a
// 128-node compute partition in the CCSF machine's 512-node mesh, with 16
// I/O nodes.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		ComputeNodes: 128,
		PFS:          pfs.DefaultConfig(),
	}
}

// Machine bundles the simulation substrate one application run needs.
type Machine struct {
	Eng   *sim.Engine
	Mesh  *mesh.Mesh
	PFS   *pfs.FileSystem
	Nodes int // compute nodes (node ids 0..Nodes-1)
}

// Validate checks the machine shape up front with actionable messages, so a
// bad configuration (a scenario file, a sweep override) fails here instead of
// deep inside pfs.New or mesh construction.
func (cfg MachineConfig) Validate() error {
	if cfg.ComputeNodes < 1 {
		return fmt.Errorf("workload: machine needs >= 1 compute node, got %d (set MachineConfig.ComputeNodes, or use DefaultMachineConfig for the paper's 128)",
			cfg.ComputeNodes)
	}
	if cfg.PFS.IONodes < 1 {
		return fmt.Errorf("workload: machine needs >= 1 I/O node, got %d (set MachineConfig.PFS.IONodes; the paper's shape is 16)",
			cfg.PFS.IONodes)
	}
	if n := len(cfg.PFS.Nodes); n != 0 && n != cfg.PFS.IONodes {
		return fmt.Errorf("workload: fleet templates expanded to %d per-node configs but the machine has %d I/O nodes (PFS.Nodes must be empty for a homogeneous fleet or exactly IONodes long)",
			n, cfg.PFS.IONodes)
	}
	if err := cfg.PFS.Validate(); err != nil {
		return fmt.Errorf("workload: invalid PFS configuration: %w", err)
	}
	return nil
}

// NewMachine builds a machine: an engine, a mesh sized for compute plus I/O
// nodes, and a PFS instance whose I/O nodes sit at the top of the mesh.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	return NewMachineOn(sim.NewEngine(), cfg)
}

// NewMachineOn builds a machine against an existing engine — the hook the
// sharded fleet driver uses to place each machine cell on its own fabric
// shard. The engine must not have run yet.
func NewMachineOn(eng *sim.Engine, cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	msh := mesh.New(mesh.DefaultConfig(cfg.ComputeNodes + cfg.PFS.IONodes))
	cfg.PFS.ComputeNodes = cfg.ComputeNodes
	fs, err := pfs.New(eng, msh, cfg.PFS)
	if err != nil {
		return nil, err
	}
	return &Machine{Eng: eng, Mesh: msh, PFS: fs, Nodes: cfg.ComputeNodes}, nil
}

// NewPartitionedMachine builds a machine whose I/O nodes are split across
// fabric shards: the compute partition (and every client-side PFS structure)
// lives on fe's engine, while each I/O node's service loop runs on the shard
// assign[i] names. The mesh is shared read-only for cost lookups; all
// client↔I/O-node traffic crosses the fabric as bounded-lookahead mail, so
// one application run executes on len(srv)+1 engines with results
// byte-identical to the serial machine's partition-aware mode at any worker
// count.
func NewPartitionedMachine(fe *sim.Shard, srv []*sim.Shard, assign []int, cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	msh := mesh.New(mesh.DefaultConfig(cfg.ComputeNodes + cfg.PFS.IONodes))
	cfg.PFS.ComputeNodes = cfg.ComputeNodes
	fs, err := pfs.NewPartitioned(fe, srv, assign, msh, cfg.PFS)
	if err != nil {
		return nil, err
	}
	return &Machine{Eng: fe.Engine(), Mesh: msh, PFS: fs, Nodes: cfg.ComputeNodes}, nil
}

// App is one runnable application skeleton. Launch spawns the application's
// processes on the machine; the caller then drives m.Eng.Run().
type App interface {
	// Name returns the application's short name (escat, render, htf).
	Name() string
	// Launch spawns the application's node programs against fs.
	Launch(m *Machine, fs FS) error
}

// Run launches the app and executes the simulation to completion.
func Run(m *Machine, fs FS, app App) error {
	if err := app.Launch(m, fs); err != nil {
		return fmt.Errorf("%s: launch: %w", app.Name(), err)
	}
	if err := m.Eng.Run(); err != nil {
		return fmt.Errorf("%s: %w", app.Name(), err)
	}
	return nil
}

// NodeErrors collects per-node failures from application processes; apps use
// it so a failure inside a spawned node program surfaces from Run instead of
// being lost (or deadlocking the barrier group).
type NodeErrors struct {
	eng     *sim.Engine
	errs    []error
	firstAt sim.Time
}

// Attach binds the collector to the run's engine so failures are stamped with
// the simulated time they occurred — the fault-injection driver uses the
// first failure's instant for lost-work accounting.
func (n *NodeErrors) Attach(eng *sim.Engine) { n.eng = eng }

// Addf records a failure.
func (n *NodeErrors) Addf(format string, args ...any) {
	if len(n.errs) == 0 && n.eng != nil {
		n.firstAt = n.eng.Now()
	}
	n.errs = append(n.errs, fmt.Errorf(format, args...))
}

// FirstAt returns the simulated instant of the first failure, if any was
// recorded on an engine-attached collector.
func (n *NodeErrors) FirstAt() (sim.Time, bool) {
	if len(n.errs) == 0 || n.eng == nil {
		return 0, false
	}
	return n.firstAt, true
}

// Err returns the first recorded failure annotated with the total count, or
// nil.
func (n *NodeErrors) Err() error {
	if len(n.errs) == 0 {
		return nil
	}
	return fmt.Errorf("%d node failures, first: %w", len(n.errs), n.errs[0])
}
