package workload

import "repro/internal/sim"

// Checkpointer is the application-facing surface of the checkpoint/restart
// subsystem (package ckpt implements it). An application that supports
// checkpointing structures its main loop as numbered work units and, when a
// Checkpointer is configured:
//
//   - starts the loop at ResumeUnit() instead of 0 (skipping initialization
//     work already covered by the checkpoint),
//   - has every node call Restore before resuming from a non-zero unit (the
//     restart read of its checkpoint slice), and
//   - has every node call AfterUnit at the end of each unit, which runs a
//     coordinated checkpoint when the unit falls on the checkpoint interval.
//
// Applications without natural units, or runs without fault injection, simply
// leave the Checkpointer nil.
type Checkpointer interface {
	// ResumeUnit returns the first work unit to execute: 0 on a cold start,
	// the unit after the last committed checkpoint on a restart.
	ResumeUnit() int

	// Restore charges node's restart read of its checkpoint slice. Called
	// by every node before resuming from a non-zero unit.
	Restore(p *sim.Process, fs FS, node int) error

	// AfterUnit marks unit complete on node. On checkpoint units all nodes
	// rendezvous inside it and write their state slices; the checkpoint
	// commits only after every node's write finished.
	AfterUnit(p *sim.Process, fs FS, node, unit int) error
}
