package workload

import (
	"testing"

	"repro/internal/iotrace"
	"repro/internal/pfs"
)

func runSynthetic(t *testing.T, cfg SyntheticConfig) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{ComputeNodes: cfg.Nodes, PFS: pfs.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(m, WrapPFS(m.PFS), app); err != nil {
		t.Fatal(err)
	}
	if err := app.Err(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSyntheticAllModes(t *testing.T) {
	modes := []iotrace.AccessMode{
		iotrace.ModeUnix, iotrace.ModeLog, iotrace.ModeSync,
		iotrace.ModeRecord, iotrace.ModeGlobal, iotrace.ModeAsync,
	}
	for _, mode := range modes {
		m := runSynthetic(t, SyntheticConfig{
			Nodes: 4, Mode: mode, RecordBytes: 4096, Records: 4,
		})
		if m.Eng.Now() == 0 {
			t.Errorf("%v: run took no simulated time", mode)
		}
	}
}

func TestSyntheticWriteExtent(t *testing.T) {
	// 4 nodes x 4 x 4 KB sequential M_UNIX writes over disjoint partitions.
	m := runSynthetic(t, SyntheticConfig{
		Nodes: 4, Mode: iotrace.ModeUnix, RecordBytes: 4096, Records: 4,
	})
	info, ok := m.PFS.Stat("synthetic-M_UNIX")
	if !ok {
		t.Fatal("file missing")
	}
	if info.Size != 4*4*4096 {
		t.Fatalf("extent %d, want %d", info.Size, 4*4*4096)
	}
}

func TestSyntheticRandomReadsDeterministicAndSpread(t *testing.T) {
	cfg := SyntheticConfig{
		Nodes: 4, Mode: iotrace.ModeAsync, RecordBytes: 4096, Records: 16,
		Read: true, Random: true, Seed: 7, FileBytes: 1 << 22,
	}
	a := runSynthetic(t, cfg).Eng.Now()
	b := runSynthetic(t, cfg).Eng.Now()
	if a != b {
		t.Fatalf("two identical random runs diverged: %v vs %v", a, b)
	}
	// A different seed must change the access sequence (and hence timing).
	cfg.Seed = 8
	if c := runSynthetic(t, cfg).Eng.Now(); c == a {
		t.Fatal("seed change did not change the run")
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	if _, err := NewSynthetic(SyntheticConfig{Nodes: 0, RecordBytes: 1, Records: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewSynthetic(SyntheticConfig{Nodes: 1, RecordBytes: 0, Records: 1}); err == nil {
		t.Error("zero record size accepted")
	}
}
