package workload

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func TestNewMachineBuildsConsistentTopology(t *testing.T) {
	cfg := DefaultMachineConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 128 {
		t.Fatalf("nodes %d", m.Nodes)
	}
	// Mesh must hold compute + I/O nodes.
	if m.Mesh.Nodes() < cfg.ComputeNodes+cfg.PFS.IONodes {
		t.Fatalf("mesh %d positions for %d+%d nodes",
			m.Mesh.Nodes(), cfg.ComputeNodes, cfg.PFS.IONodes)
	}
	if len(m.PFS.IONodes()) != cfg.PFS.IONodes {
		t.Fatalf("ionodes %d", len(m.PFS.IONodes()))
	}
}

func TestNewMachineRejectsBadConfigs(t *testing.T) {
	bad := DefaultMachineConfig()
	bad.ComputeNodes = 0
	if _, err := NewMachine(bad); err == nil {
		t.Fatal("0 compute nodes accepted")
	}
	bad = DefaultMachineConfig()
	bad.PFS.StripeUnit = 0
	if _, err := NewMachine(bad); err == nil {
		t.Fatal("invalid PFS config accepted")
	}
}

// testApp is a trivial App used to exercise Run.
type testApp struct {
	fail    bool
	ran     bool
	ioDone  bool
	errColl NodeErrors
}

func (a *testApp) Name() string { return "testapp" }

func (a *testApp) Launch(m *Machine, fs FS) error {
	if a.fail {
		return errors.New("boom")
	}
	a.ran = true
	m.Eng.Spawn("t", func(p *sim.Process) {
		h, err := fs.Create(p, 0, "x", iotrace.ModeUnix)
		if err != nil {
			a.errColl.Addf("create: %v", err)
			return
		}
		if _, err := h.Write(p, 1000); err != nil {
			a.errColl.Addf("write: %v", err)
			return
		}
		a.ioDone = true
	})
	return nil
}

func TestRunDrivesAppToCompletion(t *testing.T) {
	m, err := NewMachine(MachineConfig{ComputeNodes: 4, PFS: pfs.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	app := &testApp{}
	if err := Run(m, WrapPFS(m.PFS), app); err != nil {
		t.Fatal(err)
	}
	if !app.ran || !app.ioDone {
		t.Fatalf("app state %+v", app)
	}
	if err := app.errColl.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSurfacesLaunchFailure(t *testing.T) {
	m, _ := NewMachine(MachineConfig{ComputeNodes: 4, PFS: pfs.DefaultConfig()})
	err := Run(m, WrapPFS(m.PFS), &testApp{fail: true})
	if err == nil || err.Error() != "testapp: launch: boom" {
		t.Fatalf("err %v", err)
	}
}

func TestNodeErrorsAggregation(t *testing.T) {
	var ne NodeErrors
	if ne.Err() != nil {
		t.Fatal("empty NodeErrors not nil")
	}
	ne.Addf("first %d", 1)
	ne.Addf("second")
	err := ne.Err()
	if err == nil {
		t.Fatal("nil after Addf")
	}
	want := "2 node failures, first: first 1"
	if err.Error() != want {
		t.Fatalf("err %q, want %q", err.Error(), want)
	}
}

func TestWrapPFSImplementsFullSurface(t *testing.T) {
	m, err := NewMachine(MachineConfig{ComputeNodes: 4, PFS: pfs.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	fs := WrapPFS(m.PFS)
	fs.ReserveIDs(2)
	if _, err := fs.Preload("pre", 100_000); err != nil {
		t.Fatal(err)
	}
	fs.SetPhase("ph")
	if info, ok := fs.Stat("pre"); !ok || info.ID != 3 {
		t.Fatalf("stat %+v %v", info, ok)
	}
	m.Eng.Spawn("t", func(p *sim.Process) {
		h, err := fs.Open(p, 0, "pre", iotrace.ModeUnix)
		if err != nil {
			t.Error(err)
			return
		}
		ar, err := h.ReadAsync(p, 50_000)
		if err != nil {
			t.Error(err)
			return
		}
		if n, err := ar.Wait(p); err != nil || n != 50_000 {
			t.Errorf("async n=%d err=%v", n, err)
		}
		if !ar.Done() || ar.Bytes() != 50_000 {
			t.Error("async state")
		}
		hr, err := fs.OpenRecord(p, 1, "pre", 4096)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := hr.Read(p, 4096); err != nil {
			t.Error(err)
		}
		if err := h.SetIOMode(p, iotrace.ModeAsync, 0); err != nil {
			t.Error(err)
		}
		if h.Mode() != iotrace.ModeAsync {
			t.Error("mode not switched")
		}
		if _, err := h.Lsize(p); err != nil {
			t.Error(err)
		}
		if err := h.Flush(p); err != nil {
			t.Error(err)
		}
		if err := h.Close(p); err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMachineValidateActionableMessages(t *testing.T) {
	cases := []struct {
		mut  func(*MachineConfig)
		want string
	}{
		{func(c *MachineConfig) { c.ComputeNodes = 0 }, "needs >= 1 compute node"},
		{func(c *MachineConfig) { c.PFS.IONodes = 0 }, "needs >= 1 I/O node"},
		{func(c *MachineConfig) { c.PFS.Nodes = make([]pfs.NodeConfig, 5) },
			"5 per-node configs but the machine has 16 I/O nodes"},
		{func(c *MachineConfig) { c.PFS.StripeUnit = 0 }, "invalid PFS configuration"},
	}
	for i, tc := range cases {
		cfg := DefaultMachineConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q missing %q", i, err, tc.want)
		}
		if _, err := NewMachine(cfg); err == nil {
			t.Fatalf("case %d: NewMachine accepted bad config", i)
		}
	}
	good := DefaultMachineConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
