package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		Cols:        4,
		Rows:        4,
		SWLatency:   100 * sim.Microsecond,
		HopLatency:  1 * sim.Microsecond,
		BWBytesPerS: 1e6, // 1 MB/s: 1 byte = 1 µs, easy arithmetic
	}
}

func TestHopsManhattan(t *testing.T) {
	m := New(testConfig())
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},  // one row down
		{0, 5, 2},  // diagonal neighbor
		{0, 15, 6}, // opposite corner of 4x4
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := New(testConfig())
	prop := func(a, b uint8) bool {
		s, d := int(a)%16, int(b)%16
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostComponents(t *testing.T) {
	m := New(testConfig())
	// 0 -> 5: 2 hops; 1000 bytes at 1 MB/s = 1000 µs.
	got := m.Cost(0, 5, 1000)
	want := 100*sim.Microsecond + 2*sim.Microsecond + 1000*sim.Microsecond
	if got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestCostMonotoneInSize(t *testing.T) {
	m := New(testConfig())
	prop := func(a, b uint16) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.Cost(0, 15, lo) <= m.Cost(0, 15, hi)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferChargesSender(t *testing.T) {
	eng := sim.NewEngine()
	m := New(testConfig())
	var charged sim.Time
	eng.Spawn("tx", func(p *sim.Process) {
		charged = m.Transfer(p, 0, 3, 500)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if charged != m.Cost(0, 3, 500) {
		t.Fatalf("charged %v, want %v", charged, m.Cost(0, 3, 500))
	}
	if eng.Now() != charged {
		t.Fatalf("clock %v, want %v", eng.Now(), charged)
	}
	if m.Messages() != 1 || m.Bytes() != 500 {
		t.Fatalf("stats: %d msgs %d bytes", m.Messages(), m.Bytes())
	}
}

func TestBroadcastLogStages(t *testing.T) {
	m := New(testConfig())
	// 16 participants -> ceil(log2 16) = 4 stages.
	c16 := m.BroadcastCost(0, 16, 0)
	c2 := m.BroadcastCost(0, 2, 0)
	if c16 != 4*c2 {
		t.Fatalf("16-way broadcast %v, want 4x 2-way %v", c16, c2)
	}
	if m.BroadcastCost(0, 1, 1000) != 0 {
		t.Fatal("self-broadcast should be free")
	}
}

func TestGatherLinearInParticipants(t *testing.T) {
	m := New(testConfig())
	c3 := m.GatherCost(0, 3, 100)
	c5 := m.GatherCost(0, 5, 100)
	per := c3 / 2
	if c5 != 4*per {
		t.Fatalf("gather not linear: 3->%v 5->%v", c3, c5)
	}
}

func TestDefaultConfigCoversNodes(t *testing.T) {
	for _, n := range []int{1, 2, 5, 128, 512, 513} {
		cfg := DefaultConfig(n)
		if cfg.Cols*cfg.Rows < n {
			t.Errorf("DefaultConfig(%d): %dx%d too small", n, cfg.Cols, cfg.Rows)
		}
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero-cols": {Cols: 0, Rows: 4, BWBytesPerS: 1},
		"zero-bw":   {Cols: 2, Rows: 2, BWBytesPerS: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBroadcastAndGatherChargeCaller(t *testing.T) {
	eng := sim.NewEngine()
	m := New(testConfig())
	var bcast, gather sim.Time
	eng.Spawn("root", func(p *sim.Process) {
		t0 := p.Now()
		m.Broadcast(p, 0, 16, 1000)
		bcast = p.Now() - t0
		t1 := p.Now()
		m.Gather(p, 0, 16, 100)
		gather = p.Now() - t1
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if bcast != m.BroadcastCost(0, 16, 1000) {
		t.Fatalf("broadcast charged %v, want %v", bcast, m.BroadcastCost(0, 16, 1000))
	}
	if gather != m.GatherCost(0, 16, 100) {
		t.Fatalf("gather charged %v, want %v", gather, m.GatherCost(0, 16, 100))
	}
	// Traffic accounting: 15 messages each way.
	if m.Messages() != 30 {
		t.Fatalf("messages %d", m.Messages())
	}
	if m.Bytes() != 15*1000+15*100 {
		t.Fatalf("bytes %d", m.Bytes())
	}
}

func TestConfigAndNodesAccessors(t *testing.T) {
	m := New(testConfig())
	if m.Nodes() != 16 {
		t.Fatalf("nodes %d", m.Nodes())
	}
	if m.Config().Cols != 4 || m.Config().BWBytesPerS != 1e6 {
		t.Fatalf("config %+v", m.Config())
	}
}

func TestNegativeMessagePanics(t *testing.T) {
	m := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	m.Cost(0, 1, -1)
}
