// Package mesh models the Intel Paragon XP/S interconnect: a 2-D wormhole-
// routed mesh with per-hop latency and per-link bandwidth. The model is a
// cost calculator — senders charge themselves the injection plus network time
// — which is the right granularity for an I/O characterization study: only
// the latency experienced by communicating processes matters, not packet-
// level behaviour.
package mesh

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config describes the mesh geometry and link performance.
type Config struct {
	Cols int // mesh width; nodes are numbered row-major
	Rows int // mesh height

	SWLatency   sim.Time // per-message software overhead (send+receive)
	HopLatency  sim.Time // per-hop routing delay
	BWBytesPerS float64  // point-to-point link bandwidth, bytes/second
}

// DefaultConfig returns parameters representative of the Paragon XP/S: ~70 µs
// one-way software latency, sub-microsecond hop delay, and ~90 MB/s links
// (of which applications typically sustained far less; the cost model's
// software latency dominates small messages as it did in practice).
func DefaultConfig(nodes int) Config {
	cols := int(math.Ceil(math.Sqrt(float64(nodes))))
	rows := (nodes + cols - 1) / cols
	return Config{
		Cols:        cols,
		Rows:        rows,
		SWLatency:   70 * sim.Microsecond,
		HopLatency:  1 * sim.Microsecond,
		BWBytesPerS: 90e6,
	}
}

// Mesh is the interconnect model shared by all nodes of a simulated machine.
type Mesh struct {
	cfg Config

	// statistics
	messages int64
	bytes    int64
}

// New creates a mesh. The configuration must describe at least one node.
func New(cfg Config) *Mesh {
	if cfg.Cols < 1 || cfg.Rows < 1 {
		panic(fmt.Sprintf("mesh: invalid geometry %dx%d", cfg.Cols, cfg.Rows))
	}
	if cfg.BWBytesPerS <= 0 {
		panic("mesh: non-positive bandwidth")
	}
	return &Mesh{cfg: cfg}
}

// Lookahead returns the guaranteed minimum latency of any message crossing
// the mesh: the per-message software overhead plus one hop of routing delay.
// No transfer, broadcast, or gather can complete faster, which makes this
// the conservative-parallel engine's safe horizon bound — a shard whose
// clock reads t cannot affect another shard before t+Lookahead.
func (c Config) Lookahead() sim.Time { return c.SWLatency + c.HopLatency }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Lookahead returns the mesh's minimum cross-node message latency (see
// Config.Lookahead).
func (m *Mesh) Lookahead() sim.Time { return m.cfg.Lookahead() }

// Nodes returns the number of node positions in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Cols * m.cfg.Rows }

// Hops returns the Manhattan distance between two node numbers.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := src%m.cfg.Cols, src/m.cfg.Cols
	dx, dy := dst%m.cfg.Cols, dst/m.cfg.Cols
	return abs(sx-dx) + abs(sy-dy)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Cost returns the modeled one-way time for a message of the given size
// between two nodes: software latency + hop delays + serialization.
func (m *Mesh) Cost(src, dst int, bytes int64) sim.Time {
	if bytes < 0 {
		panic("mesh: negative message size")
	}
	ser := sim.Time(float64(bytes) / m.cfg.BWBytesPerS * float64(sim.Second))
	return m.cfg.SWLatency + sim.Time(m.Hops(src, dst))*m.cfg.HopLatency + ser
}

// Count records the traffic of one message from src to dst and returns its
// modeled cost without charging any simulated time. It is the accounting half
// of Transfer, used by the partitioned PFS where the latency is realized as a
// cross-shard mail delay rather than a client-side sleep.
func (m *Mesh) Count(src, dst int, bytes int64) sim.Time {
	c := m.Cost(src, dst, bytes)
	m.messages++
	m.bytes += bytes
	return c
}

// Transfer charges the calling process the cost of sending bytes from src to
// dst and records the traffic. It returns the charged time.
func (m *Mesh) Transfer(p *sim.Process, src, dst int, bytes int64) sim.Time {
	c := m.Count(src, dst, bytes)
	p.Sleep(c)
	return c
}

// BroadcastCost returns the modeled time for a software-tree broadcast of the
// given payload from root to n participants: ceil(log2(n)) stages, each
// costing one worst-case message. This is the pattern ESCAT and RENDER use
// after their single-reader initialization (§5.1, §6.1).
func (m *Mesh) BroadcastCost(root int, participants int, bytes int64) sim.Time {
	if participants <= 1 {
		return 0
	}
	stages := bitsLen(participants - 1)
	worst := m.cfg.SWLatency +
		sim.Time(m.cfg.Cols+m.cfg.Rows)*m.cfg.HopLatency +
		sim.Time(float64(bytes)/m.cfg.BWBytesPerS*float64(sim.Second))
	return sim.Time(stages) * worst
}

// Broadcast charges the calling process (the root) the broadcast time.
func (m *Mesh) Broadcast(p *sim.Process, root, participants int, bytes int64) sim.Time {
	c := m.BroadcastCost(root, participants, bytes)
	m.messages += int64(participants - 1)
	m.bytes += bytes * int64(participants-1)
	p.Sleep(c)
	return c
}

// GatherCost returns the modeled time for the root to collect one payload of
// the given size from each participant (serialized arrivals at the root's
// injection port — the conservative model for a 1995 gather).
func (m *Mesh) GatherCost(root, participants int, bytesEach int64) sim.Time {
	if participants <= 1 {
		return 0
	}
	per := m.cfg.SWLatency +
		sim.Time(m.cfg.Cols+m.cfg.Rows)*m.cfg.HopLatency +
		sim.Time(float64(bytesEach)/m.cfg.BWBytesPerS*float64(sim.Second))
	return sim.Time(participants-1) * per
}

// Gather charges the calling process (the root) the gather time.
func (m *Mesh) Gather(p *sim.Process, root, participants int, bytesEach int64) sim.Time {
	c := m.GatherCost(root, participants, bytesEach)
	m.messages += int64(participants - 1)
	m.bytes += bytesEach * int64(participants-1)
	p.Sleep(c)
	return c
}

// Messages returns the number of messages charged so far.
func (m *Mesh) Messages() int64 { return m.messages }

// Bytes returns the number of payload bytes charged so far.
func (m *Mesh) Bytes() int64 { return m.bytes }

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
