// Package stats provides the descriptive statistics and fixed-bucket
// histograms used throughout the characterization: the paper's off-line
// analyses report "means, variances, minima, maxima, and distributions of
// file operation durations and sizes" (§3.1), and its size tables bucket
// requests at 4 KB, 64 KB and 256 KB boundaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds running descriptive statistics over a stream of float64
// observations (Welford's algorithm, numerically stable).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the population variance (0 with fewer than 2 samples).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds another summary into s, as if all its observations had been
// added here (used to combine per-node statistics).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
	s.sum += o.sum
}

// PaperBuckets are the request-size bucket upper bounds of Tables 2, 4 and 6:
// <4 KB, <64 KB, <256 KB, and >=256 KB (the final open bucket).
var PaperBuckets = []int64{4 * 1024, 64 * 1024, 256 * 1024}

// PaperBucketLabels are the column headings for PaperBuckets.
var PaperBucketLabels = []string{"< 4 KB", "< 64 KB", "< 256 KB", ">= 256 KB"}

// Histogram counts observations in half-open ranges defined by ascending
// upper bounds, with one extra open-ended bucket at the top. Bucket i holds
// values in [bounds[i-1], bounds[i]); the last bucket holds values >=
// bounds[len-1].
type Histogram struct {
	bounds []int64
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(bounds)+1)}
}

// NewPaperHistogram creates a histogram with the paper's size buckets.
func NewPaperHistogram() *Histogram { return NewHistogram(PaperBuckets) }

// Add counts one observation.
func (h *Histogram) Add(v int64) {
	h.total++
	for i, b := range h.bounds {
		if v < b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Buckets returns a copy of the per-bucket counts (len(bounds)+1 entries).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// NumBuckets returns the number of buckets (bounds + 1).
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Merge adds another histogram's counts; the bucket bounds must match.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("stats: merging histograms with different bounds")
	}
	for i, b := range o.bounds {
		if h.bounds[i] != b {
			panic("stats: merging histograms with different bounds")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Percentile returns the p-th percentile (0..100) of a sample, by sorting a
// copy. It returns 0 for an empty sample.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
