package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-4) > 1e-9 {
		t.Fatalf("variance = %f, want 4", s.Variance())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Fatalf("stddev = %f, want 2", s.StdDev())
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %f", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Variance() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

// Property: merging two summaries equals adding all observations to one.
func TestSummaryMergeProperty(t *testing.T) {
	prop := func(a, b []float64) bool {
		// Keep magnitudes in a physically plausible range; near-MaxFloat64
		// inputs overflow any variance algorithm.
		ok := func(v float64) bool {
			return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100
		}
		var all, left, right Summary
		for _, v := range a {
			if !ok(v) {
				return true
			}
			all.Add(v)
			left.Add(v)
		}
		for _, v := range b {
			if !ok(v) {
				return true
			}
			all.Add(v)
			right.Add(v)
		}
		left.Merge(right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			return math.Abs(x-y) <= 1e-6*scale
		}
		return closeEnough(left.Mean(), all.Mean()) &&
			closeEnough(left.Variance(), all.Variance()) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPaperBuckets(t *testing.T) {
	h := NewPaperHistogram()
	h.Add(0)
	h.Add(4095)            // < 4 KB
	h.Add(4096)            // < 64 KB
	h.Add(64*1024 - 1)     // < 64 KB
	h.Add(64 * 1024)       // < 256 KB
	h.Add(256*1024 - 1)    // < 256 KB
	h.Add(256 * 1024)      // >= 256 KB
	h.Add(3 * 1024 * 1024) // >= 256 KB
	want := []int64{2, 2, 2, 2}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets %v, want %v", got, want)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total %d", h.Total())
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("buckets %d", h.NumBuckets())
	}
}

// Property: bucket counts always sum to the total.
func TestHistogramTotalProperty(t *testing.T) {
	prop := func(vals []int64) bool {
		h := NewPaperHistogram()
		for _, v := range vals {
			h.Add(v)
		}
		var sum int64
		for _, c := range h.Buckets() {
			sum += c
		}
		return sum == h.Total() && h.Total() == int64(len(vals))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewPaperHistogram(), NewPaperHistogram()
	a.Add(100)
	b.Add(100_000)
	b.Add(1_000_000)
	a.Merge(b)
	got := a.Buckets()
	if got[0] != 1 || got[2] != 1 || got[3] != 1 || a.Total() != 3 {
		t.Fatalf("merged %v total %d", got, a.Total())
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	NewHistogram([]int64{10}).Merge(NewHistogram([]int64{20}))
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 5})
}

func TestPercentile(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(sample, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestSummaryMergeIntoEmptyAndFromEmpty(t *testing.T) {
	var a, b Summary
	b.Add(3)
	b.Add(5)
	a.Merge(b) // into empty
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var empty Summary
	a.Merge(empty) // from empty: unchanged
	if a.N() != 2 || a.Min() != 3 || a.Max() != 5 {
		t.Fatalf("merge from empty changed state: %+v", a)
	}
}

func TestHistogramCountAccessor(t *testing.T) {
	h := NewPaperHistogram()
	h.Add(100)
	h.Add(100_000)
	if h.Count(0) != 1 || h.Count(2) != 1 || h.Count(3) != 0 {
		t.Fatalf("counts %v", h.Buckets())
	}
}
