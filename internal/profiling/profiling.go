// Package profiling wires the conventional -cpuprofile/-memprofile flags
// into the CLIs, so hot-path work on the engine and the sweeps can be
// measured on the real binaries, not only through go test.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags carries the profile destinations parsed from a FlagSet.
type Flags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// struct the parsed values land in.
func AddFlags(fs *flag.FlagSet) *Flags {
	p := &Flags{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Pair with a
// deferred Stop.
func (p *Flags) Start() error {
	if p.CPU == "" {
		return nil
	}
	f, err := os.Create(p.CPU)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and, when -memprofile was given, writes the
// heap profile after a final GC. Safe to call when Start did nothing.
func (p *Flags) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.Mem == "" {
		return nil
	}
	f, err := os.Create(p.Mem)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
