package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvancesWithSleep(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("sleeper", func(p *Process) {
		p.Sleep(5 * Second)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Second {
		t.Fatalf("woke at %v, want 5s", at)
	}
	if e.Now() != 5*Second {
		t.Fatalf("engine now %v, want 5s", e.Now())
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1 b1 a2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestDeterministicTieBreaking(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Process) {
				p.Sleep(1 * Second) // all wake at the same instant
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
		if a[i] != i {
			t.Fatalf("spawn-order ties broken wrong: %v", a)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Process) {
		p.Park("nothing")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Process) {
		p.Sleep(3 * Second)
		e.SpawnAt("child", 2*Second, func(c *Process) {
			childAt = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 5*Second {
		t.Fatalf("child ran at %v, want 5s", childAt)
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Spawn("ticker", func(p *Process) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * Second)
			hits = append(hits, p.Now())
		}
	})
	if err := e.RunUntil(25 * Second); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits before limit, want 2", len(hits))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 || hits[3] != 40*Second {
		t.Fatalf("resume failed: %v", hits)
	}
}

func TestResourceFIFOAndMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(fmt.Sprintf("u%d", i), Time(i)*Millisecond, func(p *Process) {
			r.Acquire(p)
			p.Sleep(10 * Millisecond)
			order = append(order, i)
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	// 5 serialized 10 ms services starting at t=0 finish at 50 ms.
	if e.Now() != 50*Millisecond {
		t.Fatalf("end time %v, want 50ms", e.Now())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "array", 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Process) {
			r.Use(p, 10*Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs, 2 at a time: 20 ms total.
	if e.Now() != 20*Millisecond {
		t.Fatalf("end time %v, want 20ms", e.Now())
	}
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dev", 1)
	for i := 0; i < 2; i++ {
		e.Spawn("u", func(p *Process) { r.Use(p, 10*Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.StatsAt(e.Now())
	if st.Acquires != 2 {
		t.Fatalf("acquires = %d, want 2", st.Acquires)
	}
	if st.Utilization < 0.99 || st.Utilization > 1.01 {
		t.Fatalf("utilization = %f, want ~1", st.Utilization)
	}
	if st.TotalWait != 10*Millisecond {
		t.Fatalf("total wait = %v, want 10ms", st.TotalWait)
	}
}

func TestBarrierReleasesTogetherAndIsReusable(t *testing.T) {
	e := NewEngine()
	const n = 8
	b := NewBarrier(e, "phase", n)
	var times []Time
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("n%d", i), func(p *Process) {
			for round := 0; round < 3; round++ {
				p.Sleep(Time(i+1) * Millisecond) // stagger arrivals
				b.Wait(p)
				times = append(times, p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3*n {
		t.Fatalf("got %d releases, want %d", len(times), 3*n)
	}
	for round := 0; round < 3; round++ {
		first := times[round*n]
		for i := 0; i < n; i++ {
			if times[round*n+i] != first {
				t.Fatalf("round %d not released together: %v", round, times[round*n:round*n+n])
			}
		}
	}
	if b.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", b.Rounds())
	}
}

func TestSequencerEnforcesOrder(t *testing.T) {
	e := NewEngine()
	s := NewSequencer(e, "msync")
	var order []int
	const n = 6
	for i := 0; i < n; i++ {
		i := i
		// Spawn in reverse so arrival order opposes turn order.
		e.SpawnAt(fmt.Sprintf("n%d", i), Time(n-i)*Millisecond, func(p *Process) {
			s.WaitTurn(p, i)
			order = append(order, i)
			p.Sleep(1 * Millisecond)
			s.Done(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequencer order violated: %v", order)
		}
	}
}

func TestQueueBlocksAndDelivers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "mail")
	var got []int
	e.Spawn("consumer", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(1 * Second)
			q.Put(p, i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e, "m")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	e.Spawn("p", func(p *Process) { q.Put(p, "x") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestCompletionAwaitBeforeAndAfterFire(t *testing.T) {
	e := NewEngine()
	c := NewCompletion("io")
	var waited, lateWaited Time
	e.Spawn("waiter", func(p *Process) {
		waited = c.Await(p)
	})
	e.Spawn("late", func(p *Process) {
		p.Sleep(10 * Second)
		lateWaited = c.Await(p)
	})
	e.Spawn("firer", func(p *Process) {
		p.Sleep(4 * Second)
		c.Complete(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 4*Second {
		t.Fatalf("early waiter waited %v, want 4s", waited)
	}
	if lateWaited != 0 {
		t.Fatalf("late waiter waited %v, want 0", lateWaited)
	}
	if c.CompletedAt() != 4*Second {
		t.Fatalf("completed at %v", c.CompletedAt())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("loop", func(p *Process) {
		for {
			p.Sleep(1 * Second)
			count++
			if count == 5 {
				e.Stop()
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 || e.Now() != 5*Second {
		t.Fatalf("count=%d now=%v", count, e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	_ = e.Run()
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMilliseconds(2.5) != 2500*Microsecond {
		t.Fatalf("FromMilliseconds(2.5) = %v", FromMilliseconds(2.5))
	}
	if got := (90 * Second).Seconds(); got != 90 {
		t.Fatalf("Seconds = %f", got)
	}
	if s := (Second + 345*Microsecond).String(); s != "1.000345s" {
		t.Fatalf("String = %q", s)
	}
}

// Property: the engine clock is monotonically non-decreasing across an
// arbitrary mix of sleeps by several processes.
func TestClockMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var last Time
		mono := true
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Process) {
				for j := i; j < len(delays); j += 4 {
					p.Sleep(Time(delays[j]) * Microsecond)
					if p.Now() < last {
						mono = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return mono
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for capacity-1 resources, total time equals the sum of service
// times when all requests arrive at t=0 (perfect serialization, no overlap).
func TestResourceSerializationProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		e := NewEngine()
		r := NewResource(e, "d", 1)
		var sum Time
		for i, v := range raw {
			d := Time(v) * Microsecond
			sum += d
			e.Spawn(fmt.Sprintf("u%d", i), func(p *Process) { r.Use(p, d) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministicAndSplit(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(42)
	d := c.Split()
	if c.Uint64() == d.Uint64() {
		t.Fatal("split stream identical to parent (suspicious)")
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		if n := r.Intn(13); n < 0 || n >= 13 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if u := r.Uniform(5, 9); u < 5 || u > 9 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
	if r.Uniform(4, 4) != 4 {
		t.Fatal("Uniform degenerate range")
	}
}

func TestRNGJitterStaysClose(t *testing.T) {
	r := NewRNG(3)
	base := 100 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.25)
		if j < 75*Millisecond || j > 125*Millisecond {
			t.Fatalf("jitter out of band: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero jitter changed value")
	}
}

// TestDeadlockDiagnosticListing exercises the failure-path diagnostic: the
// blocked processes must be listed sorted by name (id as tiebreak) with their
// wait reasons, and the listing truncated past twelve entries.
func TestDeadlockDiagnosticListing(t *testing.T) {
	e := NewEngine()
	// Spawn in an order that is neither name- nor id-sorted so the test fails
	// if the diagnostic just dumps the live-process slice.
	names := []string{"m", "c", "z", "f", "a", "q", "t", "b", "k", "x", "d", "h", "p", "e", "g"}
	for _, name := range names {
		name := name
		e.Spawn(name, func(p *Process) {
			p.Park("waiting-" + name)
		})
	}
	err := e.Run()
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "15 processes blocked forever") {
		t.Fatalf("missing blocked count: %v", msg)
	}
	// Sorted, the first twelve of the 15 names are a..p; q, t, x fall off the
	// end, so the truncation suffix must report 3 more.
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var last int
	for _, name := range sorted[:12] {
		want := name + "(id="
		i := strings.Index(msg, want)
		if i < 0 {
			t.Fatalf("diagnostic missing %q: %v", want, msg)
		}
		if i < last {
			t.Fatalf("diagnostic out of name order at %q: %v", name, msg)
		}
		last = i
	}
	for _, name := range sorted[12:] {
		if strings.Contains(msg, name+"(id=") {
			t.Fatalf("diagnostic shows truncated process %q: %v", name, msg)
		}
	}
	if !strings.Contains(msg, "waiting-a") {
		t.Fatalf("diagnostic missing wait reason: %v", msg)
	}
	if !strings.Contains(msg, "... (3 more)") {
		t.Fatalf("diagnostic missing truncation suffix: %v", msg)
	}
}
