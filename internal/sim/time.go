package sim

import "fmt"

// Time is a point on (or a span of) the simulated clock, measured in
// microseconds. All simulation components share one virtual clock owned by
// the Engine; wall-clock time never enters the simulation, which keeps every
// run deterministic.
type Time int64

// Convenient duration units expressed in simulated microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders t as seconds with microsecond precision, e.g. "12.000345s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds into simulated Time, rounding
// to the nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMilliseconds converts floating-point milliseconds into simulated Time.
func FromMilliseconds(ms float64) Time { return Time(ms*float64(Millisecond) + 0.5) }
