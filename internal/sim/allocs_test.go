package sim

import (
	"fmt"
	"testing"
)

// TestEventLoopAllocCeiling guards the hot-path optimizations: the
// schedule/pop/handoff cycle must not allocate per event. Before the value-type
// 4-ary heap and the process free list this workload allocated ~26k times per
// simulation (roughly 2/event); now the total is dominated by the fixed
// per-process setup (goroutine, channel, name), so the ceiling is a small
// multiple of the process count, not the event count.
func TestEventLoopAllocCeiling(t *testing.T) {
	const procs, sleeps = 64, 200 // 12800 events per run
	names := make([]string, procs)
	for j := range names {
		names[j] = fmt.Sprintf("p%d", j)
	}
	avg := testing.AllocsPerRun(5, func() {
		e := NewEngine()
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(names[j], func(p *Process) {
				for k := 0; k < sleeps; k++ {
					p.Sleep(Time(j+1) * Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// 64 processes × a handful of setup allocations each, plus slack for heap
	// growth. 12800 events at even 0.25 allocs/event would blow through this.
	const ceiling = 1500
	if avg > ceiling {
		t.Fatalf("event loop allocated %.0f times per run (%d events); ceiling %d",
			avg, procs*sleeps, ceiling)
	}
}

// TestSequentialChainAllocCeiling pins the uncontended fast path — a lone
// process sleeping when its own wake is the next event — at effectively zero
// allocations per event.
func TestSequentialChainAllocCeiling(t *testing.T) {
	const sleeps = 10000
	avg := testing.AllocsPerRun(5, func() {
		e := NewEngine()
		e.Spawn("solo", func(p *Process) {
			for k := 0; k < sleeps; k++ {
				p.Sleep(Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// One process's setup plus heap-slice growth: tens, not thousands.
	const ceiling = 64
	if avg > ceiling {
		t.Fatalf("sequential chain allocated %.0f times per run (%d events); ceiling %d",
			avg, sleeps, ceiling)
	}
}

// TestShardedEventLoopAllocCeiling guards the fabric's hot path: once shard
// engines, mailboxes, and outbox slices have grown, a window's execution must
// not allocate per event — only the per-window goroutines and per-mail
// closures remain, a small multiple of the message count, never of the event
// count.
func TestShardedEventLoopAllocCeiling(t *testing.T) {
	const shards, procs, rounds = 4, 8, 100
	avg := testing.AllocsPerRun(5, func() {
		f := NewFabric(2)
		sh := make([]*Shard, shards)
		for s := range sh {
			sh[s] = f.AddShard(fmt.Sprintf("s%d", s), 5)
		}
		for s := range sh {
			f.Connect(sh[s], sh[(s+1)%shards], 5*Microsecond)
		}
		for s := range sh {
			src, dst := sh[s], sh[(s+1)%shards]
			for j := 0; j < procs; j++ {
				src.Engine().Spawn(fmt.Sprintf("w%d", j), func(p *Process) {
					for k := 0; k < rounds; k++ {
						p.Sleep(20 * Microsecond)
						src.Send(p, dst, 5*Microsecond, "m", func(*Process) {})
					}
				})
			}
		}
		if err := f.Run(); err != nil {
			t.Error(err)
		}
	})
	// 3200 mail messages each cost a closure, a mail-process spawn (goroutine
	// + free-list miss at the margin), and their share of window bookkeeping;
	// 6400 events on top must contribute nothing. Measured ~4.5 allocs/mail;
	// the ceiling leaves headroom without letting a per-event regression hide.
	const ceiling = 26000
	if avg > ceiling {
		t.Fatalf("sharded event loop allocated %.0f times per run; ceiling %d", avg, ceiling)
	}
}
