package sim

import (
	"fmt"
	"testing"
)

// TestEventLoopAllocCeiling guards the hot-path optimizations: the
// schedule/pop/handoff cycle must not allocate per event. Before the value-type
// 4-ary heap and the process free list this workload allocated ~26k times per
// simulation (roughly 2/event); now the total is dominated by the fixed
// per-process setup (goroutine, channel, name), so the ceiling is a small
// multiple of the process count, not the event count.
func TestEventLoopAllocCeiling(t *testing.T) {
	const procs, sleeps = 64, 200 // 12800 events per run
	names := make([]string, procs)
	for j := range names {
		names[j] = fmt.Sprintf("p%d", j)
	}
	avg := testing.AllocsPerRun(5, func() {
		e := NewEngine()
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(names[j], func(p *Process) {
				for k := 0; k < sleeps; k++ {
					p.Sleep(Time(j+1) * Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// 64 processes × a handful of setup allocations each, plus slack for heap
	// growth. 12800 events at even 0.25 allocs/event would blow through this.
	const ceiling = 1500
	if avg > ceiling {
		t.Fatalf("event loop allocated %.0f times per run (%d events); ceiling %d",
			avg, procs*sleeps, ceiling)
	}
}

// TestSequentialChainAllocCeiling pins the uncontended fast path — a lone
// process sleeping when its own wake is the next event — at effectively zero
// allocations per event.
func TestSequentialChainAllocCeiling(t *testing.T) {
	const sleeps = 10000
	avg := testing.AllocsPerRun(5, func() {
		e := NewEngine()
		e.Spawn("solo", func(p *Process) {
			for k := 0; k < sleeps; k++ {
				p.Sleep(Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// One process's setup plus heap-slice growth: tens, not thousands.
	const ceiling = 64
	if avg > ceiling {
		t.Fatalf("sequential chain allocated %.0f times per run (%d events); ceiling %d",
			avg, sleeps, ceiling)
	}
}
