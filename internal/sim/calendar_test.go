package sim

import (
	"fmt"
	"strings"
	"testing"
)

// calendarWorkload runs a contended mixed workload — jittered sleeps, a
// shared capacity-2 resource, a barrier — and returns the execution trace.
// The workload deliberately produces same-instant ties so the (time, seq)
// tie-break is exercised, and event spacings both below and far above the
// calendar bucket width so aliasing and wrap paths are hit.
func calendarWorkload(t testing.TB, useCalendar bool, width Time) string {
	const procs, rounds = 24, 60
	e := NewEngine()
	if useCalendar {
		e.UseCalendar(width)
	}
	var log []string
	rng := NewRNG(7)
	res := NewResource(e, "disk", 2)
	bar := NewBarrier(e, "round", procs)
	for j := 0; j < procs; j++ {
		j := j
		r := rng.Split()
		e.Spawn(fmt.Sprintf("p%d", j), func(p *Process) {
			for k := 0; k < rounds; k++ {
				if k%10 == 0 {
					bar.Wait(p) // every process, so the group always completes
				}
				switch r.Intn(3) {
				case 0:
					p.Sleep(Time(r.Intn(8)) * Microsecond) // dense, often zero (ties)
				case 1:
					p.Sleep(r.Uniform(Microsecond, 3*Millisecond)) // far past one bucket year
				case 2:
					res.Use(p, r.Uniform(Microsecond, 20*Microsecond))
				}
				log = append(log, fmt.Sprintf("p%d k%d t=%d", j, k, p.Now()))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(log, "\n")
}

// TestCalendarQueueMatchesHeap is the differential oracle: the calendar queue
// must pop the identical unique (time, seq) total order as the 4-ary heap,
// so the full execution trace of a contended workload is byte-identical.
// Several bucket widths stress different occupancy regimes.
func TestCalendarQueueMatchesHeap(t *testing.T) {
	ref := calendarWorkload(t, false, 0)
	for _, width := range []Time{1, 13, DefaultCalendarWidth, 100 * Millisecond} {
		if got := calendarWorkload(t, true, width); got != ref {
			t.Fatalf("calendar(width=%v) trace differs from heap trace", width)
		}
	}
}

// TestCalendarLateUseCalendar pins the misuse panic: switching queue
// structures after events exist would silently strand them.
func TestCalendarLateUseCalendar(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Process) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic from late UseCalendar")
		}
	}()
	e.UseCalendar(DefaultCalendarWidth)
}
