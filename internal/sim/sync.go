package sim

import "fmt"

// Barrier synchronizes a fixed group of processes: each caller of Wait blocks
// until n processes have arrived, then all are released at the same simulated
// instant (resuming in arrival order). Barriers are reusable across rounds.
// The application skeletons use barriers for the paper's "synchronized
// compute/write cycles" (ESCAT §5.1).
type Barrier struct {
	eng     *Engine
	name    string
	n       int
	arrived []*Process
	rounds  int64
}

// NewBarrier creates a barrier for groups of n processes (n >= 1).
func NewBarrier(eng *Engine, name string, n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("sim: barrier %q size %d < 1", name, n))
	}
	return &Barrier{eng: eng, name: name, n: n}
}

// Wait blocks p until the barrier's group is complete.
func (b *Barrier) Wait(p *Process) {
	if b.n == 1 {
		b.rounds++
		return
	}
	if len(b.arrived) == b.n-1 {
		// Last arrival releases everyone, in arrival order, as one batched
		// heap insertion.
		waiting := b.arrived
		b.arrived = nil
		b.rounds++
		p.eng.scheduleBatch(waiting, p.eng.now)
		return
	}
	b.arrived = append(b.arrived, p)
	p.Park("barrier:" + b.name)
}

// Rounds reports how many times the barrier has completed.
func (b *Barrier) Rounds() int64 { return b.rounds }

// Sequencer releases waiters in a caller-specified total order: a process
// calling WaitTurn(p, k) blocks until all turns < k have completed and then
// runs its critical section; Done advances the sequence. It models PFS's
// M_SYNC mode, where nodes must perform I/O in node-number order.
type Sequencer struct {
	eng     *Engine
	name    string
	next    int
	waiting map[int]*Process
}

// NewSequencer creates a sequencer whose first turn is 0.
func NewSequencer(eng *Engine, name string) *Sequencer {
	return &Sequencer{eng: eng, name: name, waiting: make(map[int]*Process)}
}

// WaitTurn blocks p until turn becomes current. Turns must be used exactly
// once each and every turn up to the largest used must eventually be claimed,
// or the simulation deadlocks (and Engine.Run reports it).
func (s *Sequencer) WaitTurn(p *Process, turn int) {
	if turn == s.next {
		return
	}
	if _, dup := s.waiting[turn]; dup {
		panic(fmt.Sprintf("sim: sequencer %q turn %d claimed twice", s.name, turn))
	}
	s.waiting[turn] = p
	p.Park(fmt.Sprintf("sequencer:%s[%d]", s.name, turn))
}

// Done completes the current turn and wakes the owner of the next one, if it
// is already waiting.
func (s *Sequencer) Done(p *Process) {
	s.next++
	if w, ok := s.waiting[s.next]; ok {
		delete(s.waiting, s.next)
		p.Wake(w)
	}
}

// Next reports the turn number that will run next.
func (s *Sequencer) Next() int { return s.next }

// Queue is an unbounded FIFO mailbox carrying values of type T between
// processes. Get blocks while the queue is empty. It is the engine's
// message-passing primitive; the mesh model layers latency on top of it.
type Queue[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*Process
}

// NewQueue creates an empty queue.
func NewQueue[T any](eng *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: eng, name: name}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes one waiting consumer, if any.
func (q *Queue[T]) Put(p *Process, v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		p.Wake(w)
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Process) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.Park("queue:" + q.name)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the head item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Completion is a one-shot event that processes can wait on; it models the
// completion side of asynchronous I/O. Multiple processes may wait; all are
// released when Complete fires. Waiting on an already-completed Completion
// returns immediately.
type Completion struct {
	name    string
	done    bool
	at      Time
	waiters []*Process
}

// NewCompletion creates a pending completion.
func NewCompletion(name string) *Completion {
	return &Completion{name: name}
}

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.done }

// CompletedAt returns the simulated time Complete fired (zero if pending).
func (c *Completion) CompletedAt() Time { return c.at }

// Complete fires the event, waking all waiters.
func (c *Completion) Complete(p *Process) {
	if c.done {
		panic(fmt.Sprintf("sim: completion %q fired twice", c.name))
	}
	c.done = true
	c.at = p.Now()
	p.eng.scheduleBatch(c.waiters, p.eng.now)
	c.waiters = nil
}

// Await blocks p until the completion fires (or returns immediately if it
// already has). It returns the time spent waiting.
func (c *Completion) Await(p *Process) Time {
	if c.done {
		return 0
	}
	start := p.Now()
	c.waiters = append(c.waiters, p)
	p.Park("completion:" + c.name)
	return p.Now() - start
}
