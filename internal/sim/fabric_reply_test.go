package sim

import (
	"fmt"
	"strings"
	"testing"
)

// tieSend describes one cross-shard send in the tie-break tests: the source
// shard index, the instant the sender transmits, an extra delay on top of the
// edge lookahead, and a label the receiver logs at delivery.
type tieSend struct {
	src   int
	send  Time
	extra Time
	label string
}

// runTieBreak executes the sends against a star of source shards around one
// hub and returns the labels in the order the hub executed them.
func runTieBreak(t *testing.T, sources, workers int, sends []tieSend) []string {
	t.Helper()
	const lookahead = 5 * Microsecond
	f := NewFabric(workers)
	hub := f.AddShard("hub", 1)
	srcs := make([]*Shard, sources)
	for i := range srcs {
		srcs[i] = f.AddShard(fmt.Sprintf("src%d", i), 1)
		f.Connect(srcs[i], hub, lookahead)
	}
	var got []string
	for i := range srcs {
		i := i
		var mine []tieSend
		for _, sd := range sends {
			if sd.src == i {
				mine = append(mine, sd)
			}
		}
		if len(mine) == 0 {
			continue
		}
		srcs[i].Engine().Spawn("sender", func(p *Process) {
			for _, sd := range mine {
				sd := sd
				if sd.send > p.Now() {
					p.Sleep(sd.send - p.Now())
				}
				srcs[i].Send(p, hub, lookahead+sd.extra, "tie", func(mp *Process) {
					got = append(got, fmt.Sprintf("%s@%d", sd.label, mp.Now()))
				})
			}
		})
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// expectTieOrder computes the canonical delivery order: by arrival time, then
// source shard index, then per-source send order (the sequence number).
func expectTieOrder(sends []tieSend) []string {
	const lookahead = 5 * Microsecond
	type key struct {
		at  Time
		src int
		seq int
	}
	seqs := map[int]int{}
	keyed := make([]struct {
		k     key
		label string
	}, len(sends))
	for i, sd := range sends {
		seqs[sd.src]++
		keyed[i].k = key{at: sd.send + lookahead + sd.extra, src: sd.src, seq: seqs[sd.src]}
		keyed[i].label = fmt.Sprintf("%s@%d", sd.label, keyed[i].k.at)
	}
	for i := range keyed {
		for j := i + 1; j < len(keyed); j++ {
			a, b := keyed[i].k, keyed[j].k
			if b.at < a.at || (b.at == a.at && (b.src < a.src || (b.src == a.src && b.seq < a.seq))) {
				keyed[i], keyed[j] = keyed[j], keyed[i]
			}
		}
	}
	out := make([]string, len(keyed))
	for i := range keyed {
		out[i] = keyed[i].label
	}
	return out
}

// TestFabricMailTieBreakOrder pins the canonical delivery order for
// equal-timestamp mail from different source shards: (time, src, seq), with
// the per-source sequence preserving each sender's own send order.
func TestFabricMailTieBreakOrder(t *testing.T) {
	const tick = Microsecond
	cases := []struct {
		name    string
		sources int
		sends   []tieSend
	}{
		{
			name:    "simultaneous-across-sources",
			sources: 4,
			sends: []tieSend{
				{src: 3, send: 10 * tick, label: "d"},
				{src: 1, send: 10 * tick, label: "b"},
				{src: 0, send: 10 * tick, label: "a"},
				{src: 2, send: 10 * tick, label: "c"},
			},
		},
		{
			name:    "sequence-within-source",
			sources: 2,
			sends: []tieSend{
				{src: 0, send: 10 * tick, extra: 2 * tick, label: "a1"},
				{src: 0, send: 12 * tick, label: "a2"}, // same arrival as a1, later seq
				{src: 1, send: 12 * tick, label: "b1"},
			},
		},
		{
			name:    "time-beats-source",
			sources: 3,
			sends: []tieSend{
				{src: 2, send: 8 * tick, label: "late-src-early-mail"},
				{src: 0, send: 10 * tick, label: "x"},
				{src: 1, send: 10 * tick, label: "y"},
			},
		},
		{
			name:    "interleaved-bursts",
			sources: 3,
			sends: []tieSend{
				{src: 1, send: 5 * tick, label: "b1"},
				{src: 1, send: 5 * tick, label: "b2"},
				{src: 0, send: 5 * tick, label: "a1"},
				{src: 2, send: 5 * tick, label: "c1"},
				{src: 0, send: 9 * tick, label: "a2"},
				{src: 2, send: 5 * tick, extra: 4 * tick, label: "c2"}, // ties with a2
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := expectTieOrder(tc.sends)
			for _, workers := range []int{1, 2, 4} {
				got := runTieBreak(t, tc.sources, workers, tc.sends)
				if strings.Join(got, " ") != strings.Join(want, " ") {
					t.Errorf("workers=%d: delivery order\n got %v\nwant %v", workers, got, want)
				}
			}
		})
	}
}

// FuzzFabricMailTieBreak generates random bursts of simultaneous cross-shard
// sends and checks the delivered order against the canonical (time, src, seq)
// sort at one and at four workers.
func FuzzFabricMailTieBreak(f *testing.F) {
	f.Add(uint64(1), 3, 8)
	f.Add(uint64(42), 5, 16)
	f.Add(uint64(0xdecaf), 2, 12)
	// The satellite seed: every source fires at the same instant, so every
	// arrival ties and only (src, seq) decides.
	f.Add(uint64(7777), 4, 4)
	f.Fuzz(func(t *testing.T, seed uint64, sources, mails int) {
		if sources < 0 {
			sources = -sources
		}
		if mails < 0 {
			mails = -mails
		}
		sources = 2 + sources%6
		mails = 1 + mails%24
		rng := NewRNG(seed)
		sends := make([]tieSend, 0, mails)
		// Quantized send times and a small extra-delay range make
		// equal-arrival collisions the common case, not the exception.
		last := make([]Time, sources)
		for i := 0; i < mails; i++ {
			src := rng.Intn(sources)
			at := last[src] + Time(rng.Intn(3))*5*Microsecond
			last[src] = at
			sends = append(sends, tieSend{
				src:   src,
				send:  at,
				extra: Time(rng.Intn(2)) * 5 * Microsecond,
				label: fmt.Sprintf("m%d", i),
			})
		}
		want := strings.Join(expectTieOrder(sends), " ")
		for _, workers := range []int{1, 4} {
			got := strings.Join(runTieBreak(t, sources, workers, sends), " ")
			if got != want {
				t.Fatalf("workers=%d: delivery order\n got %s\nwant %s", workers, got, want)
			}
		}
	})
}

// replyWorkload drives an RPC-style client/server pair over a Connect request
// edge and a ConnectReply zero-lookahead reply edge, returning the client's
// observed completion log.
func replyWorkload(t *testing.T, workers int) string {
	const lookahead = 5 * Microsecond
	f := NewFabric(workers)
	client := f.AddShard("client", 1)
	server := f.AddShard("server", 1)
	f.Connect(client, server, lookahead)
	f.ConnectReply(server, client)
	var b strings.Builder
	client.Engine().Spawn("rpc", func(p *Process) {
		for r := 0; r < 6; r++ {
			p.Sleep(Microsecond)
			service := Time(r+1) * 2 * Microsecond
			sentAt := p.Now()
			reply := ""
			client.Send(p, server, lookahead, "request", func(sp *Process) {
				sp.Sleep(service)
				r := r
				server.SendWake(sp, client, 0, "reply", p, func() {
					reply = fmt.Sprintf("done%d", r)
				})
			})
			p.Park("pfs: awaiting reply")
			if want := sentAt + lookahead + service; p.Now() != want {
				t.Errorf("rpc %d: woke at %v, want %v", r, p.Now(), want)
			}
			if reply == "" {
				t.Errorf("rpc %d: reply closure never applied", r)
			}
			fmt.Fprintf(&b, "%s@%d\n", reply, p.Now())
		}
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestFabricReplyRoundTrip exercises the zero-lookahead reply path: the
// requester parks, the server wakes it at exactly request-arrival + service
// time, and the trace is byte-identical at every worker count.
func TestFabricReplyRoundTrip(t *testing.T) {
	ref := replyWorkload(t, 1)
	if !strings.Contains(ref, "done5@") {
		t.Fatalf("reply workload incomplete:\n%s", ref)
	}
	for _, workers := range []int{2, 4} {
		if got := replyWorkload(t, workers); got != ref {
			t.Errorf("workers=%d: reply trace differs from serial reference", workers)
		}
	}
}

// TestFabricConnectReplyCycleRejected pins the structural guard: reply edges
// are zero-lookahead, so any cycle composed purely of reply edges would
// collapse the horizon fixpoint and deadlock the protocol — ConnectReply must
// refuse to close one.
func TestFabricConnectReplyCycleRejected(t *testing.T) {
	mustPanic := func(name string, build func(f *Fabric)) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected a panic")
				}
			}()
			build(NewFabric(1))
		})
	}
	mustPanic("two-cycle", func(f *Fabric) {
		a, b := f.AddShard("a", 1), f.AddShard("b", 1)
		f.ConnectReply(a, b)
		f.ConnectReply(b, a)
	})
	mustPanic("three-cycle", func(f *Fabric) {
		a, b, c := f.AddShard("a", 1), f.AddShard("b", 1), f.AddShard("c", 1)
		f.ConnectReply(a, b)
		f.ConnectReply(b, c)
		f.ConnectReply(c, a)
	})
	mustPanic("self-edge", func(f *Fabric) {
		a := f.AddShard("a", 1)
		f.ConnectReply(a, a)
	})
	// The legal RPC shape must not trip the guard: the request edge carries
	// positive lookahead, so the cycle it closes is not zero-weight.
	f := NewFabric(1)
	a, b := f.AddShard("a", 1), f.AddShard("b", 1)
	f.Connect(a, b, Microsecond)
	f.ConnectReply(b, a)
}
