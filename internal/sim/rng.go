package sim

// RNG is a small, fast, explicitly-seeded pseudo-random generator
// (splitmix64). Every stochastic component of the simulation owns its own
// RNG seeded from the run configuration, so runs are reproducible and
// components are statistically independent of spawn order.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Uniform returns a uniform duration in [lo, hi].
func (r *RNG) Uniform(lo, hi Time) Time {
	if hi < lo {
		panic("sim: Uniform with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)+1))
}

// Jitter returns d perturbed by a uniform factor in [1-frac, 1+frac]. It
// gives timelines the paper's visible "temporal irregularity" without
// affecting totals much. frac must be in [0, 1).
func (r *RNG) Jitter(d Time, frac float64) Time {
	if frac <= 0 {
		return d
	}
	f := 1 - frac + 2*frac*r.Float64()
	return Time(float64(d) * f)
}

// Split derives an independent generator; useful for giving each node its
// own stream from one configured seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
