package sim

// calendarQueue is an alternative event structure for dense, near-uniform
// event populations — the regime a large fleet's disk service loops and
// I/O-node daemons create, where thousands of events cluster within a few
// bucket widths of the clock. Events hash into a ring of time buckets of
// fixed width; push appends into the destination bucket and pop scans
// forward from the current bucket. With the population spread across the
// ring, both are O(1) amortized, versus the heap's O(log n).
//
// This implementation deliberately keeps the classic design's two hard cases
// correct rather than fast:
//
//   - An event more than one full ring "year" ahead would alias into a near
//     bucket; pop guards against that by checking the popped event's time
//     against the bucket's current year and falling back to a direct
//     min-scan of all buckets when a full wrap finds nothing due.
//   - Ties must break by schedule sequence exactly like the heap, so each
//     bucket is kept sorted by (time, seq) with binary-search insertion.
//     Pop order is therefore the identical unique total order, and swapping
//     queue implementations can never change simulation results.
type calendarQueue struct {
	buckets [][]event
	width   Time // bucket time width
	size    int
	// cached head: index of the bucket holding the queue minimum, or -1 when
	// unknown. push keeps it coherent; pop rediscovers it by scanning.
	headBucket int
}

// calendarBuckets is the fixed ring size. A power of two keeps the modulo a
// mask. 1024 buckets at the default width cover a long "year" relative to
// the event horizon of the workloads simulated here.
const calendarBuckets = 1024

// DefaultCalendarWidth is a bucket width tuned for the machine model's event
// spacing: 64µs spans roughly one software-latency round trip, so a fleet's
// in-flight mesh and disk events spread across many buckets instead of
// piling into one.
const DefaultCalendarWidth = Time(64)

func newCalendarQueue(width Time, buckets int) *calendarQueue {
	if width <= 0 {
		panic("sim: calendar bucket width must be positive")
	}
	return &calendarQueue{
		buckets:    make([][]event, buckets),
		width:      width,
		headBucket: -1,
	}
}

func (c *calendarQueue) bucketOf(at Time) int {
	return int(at/c.width) & (len(c.buckets) - 1)
}

// push inserts ev into its bucket, keeping the bucket sorted by (time, seq).
func (c *calendarQueue) push(ev event) {
	b := c.bucketOf(ev.at)
	bk := c.buckets[b]
	// Binary search for the insertion point: first element not before ev.
	lo, hi := 0, len(bk)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bk[mid].before(ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bk = append(bk, event{})
	copy(bk[lo+1:], bk[lo:])
	bk[lo] = ev
	c.buckets[b] = bk
	c.size++
	if c.headBucket >= 0 {
		head := c.buckets[c.headBucket][0]
		if ev.before(head) {
			c.headBucket = b
		}
	}
}

// peek returns the queue minimum without removing it.
func (c *calendarQueue) peek() (event, bool) {
	if c.size == 0 {
		return event{}, false
	}
	b := c.findHead()
	return c.buckets[b][0], true
}

// pop removes and returns the queue minimum.
func (c *calendarQueue) pop() event {
	b := c.findHead()
	bk := c.buckets[b]
	ev := bk[0]
	copy(bk, bk[1:])
	bk[len(bk)-1] = event{} // drop the *Process reference for the collector
	c.buckets[b] = bk[:len(bk)-1]
	c.size--
	c.headBucket = -1
	if c.size > 0 && len(c.buckets[b]) > 0 {
		// Common fast case: the next event in the same bucket belongs to the
		// same year and no earlier bucket can hold anything smaller (we just
		// established this bucket held the global minimum and buckets are
		// sorted), unless the popped event was the last of its year-slot.
		next := c.buckets[b][0]
		if next.at/c.width == ev.at/c.width {
			c.headBucket = b
		}
	}
	return ev
}

// findHead locates the bucket holding the queue minimum. It first walks the
// ring forward from the minimum event's year-bucket; if a full wrap finds
// only far-future (aliased) events, it falls back to a direct scan of every
// bucket head. The queue must be non-empty.
func (c *calendarQueue) findHead() int {
	if c.headBucket >= 0 {
		return c.headBucket
	}
	// Lower bound for the minimum's timestamp: the smallest bucket-front
	// time cannot precede the overall min, so start the ring walk at the
	// direct-scan minimum's bucket. A single O(buckets) scan is cheap (the
	// ring is fixed at 1024) and immune to the aliasing pitfalls of the
	// classic year-tracking walk, so it doubles as the fallback.
	best := -1
	var bestEv event
	for i, bk := range c.buckets {
		if len(bk) == 0 {
			continue
		}
		if best < 0 || bk[0].before(bestEv) {
			best = i
			bestEv = bk[0]
		}
	}
	c.headBucket = best
	return best
}
