// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine is the substrate for the whole reproduction: the simulated Intel
// Paragon XP/S machine model, the PFS parallel file system, and the
// application skeletons all run as sim processes against one virtual clock.
//
// Concurrency model: processes are goroutines, but they execute in strict
// lock-step with the engine — exactly one goroutine (either the engine or a
// single process) runs at any instant. A process runs until it blocks on a
// simulation primitive (Sleep, Park, Resource.Acquire, Barrier.Wait, ...),
// which hands control back to the engine; the engine then pops the next event
// from a stable priority queue (ordered by time, then by schedule sequence
// number) and resumes the corresponding process. Because scheduling order is
// a pure function of the event heap contents, identical inputs produce
// identical traces, bit for bit.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Engine owns the virtual clock and the event queue, and coordinates the
// lock-step execution of all simulation processes. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64 // monotonically increasing schedule sequence, breaks ties
	nextID int

	living  int // processes spawned and not yet finished
	stopped bool
	procs   map[int]*Process // live processes, for deadlock diagnostics
}

// NewEngine returns an engine with the clock at time zero and no processes.
func NewEngine() *Engine {
	return &Engine{procs: make(map[int]*Process)}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64
	p   *Process
}

// eventHeap is a min-heap of events ordered by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func (e *Engine) schedule(p *Process, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past (%v < %v)", p.name, at, e.now))
	}
	if p.pendingWake {
		panic(fmt.Sprintf("sim: process %q woken twice", p.name))
	}
	p.pendingWake = true
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, p: p})
}

// Spawn creates a new process named name executing fn and schedules it to
// start at the current simulated time. It may be called before Run or from
// within a running process.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	return e.SpawnAt(name, 0, fn)
}

// SpawnAt creates a new process that starts after the given delay from the
// current simulated time.
func (e *Engine) SpawnAt(name string, delay Time, fn func(p *Process)) *Process {
	if delay < 0 {
		panic("sim: negative spawn delay")
	}
	e.nextID++
	p := &Process{
		eng:    e,
		id:     e.nextID,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.living++
	e.procs[p.id] = p
	go func() {
		<-p.resume // wait for the engine to start us
		defer func() {
			if r := recover(); r != nil {
				// A real fault: crash loudly rather than yielding, so the
				// runtime reports the panic with this goroutine's stack.
				panic(r)
			}
			// Normal return, or runtime.Goexit (e.g. t.Fatal inside a
			// process during tests): terminate the process cleanly so the
			// engine keeps running.
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(p, e.now+delay)
	return p
}

// step resumes process p and blocks until it yields control back.
func (e *Engine) step(p *Process) {
	p.resume <- struct{}{}
	<-p.yield
	if p.done {
		e.living--
		delete(e.procs, p.id)
	}
}

// Run executes events until the event queue drains or Stop is called. It
// returns an error if processes remain blocked with no pending events
// (deadlock) or if a process panicked with a simulation fault.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// limit). Events beyond the limit stay queued, so the simulation can be
// resumed with a later call.
func (e *Engine) RunUntil(limit Time) error {
	for len(e.events) > 0 && !e.stopped {
		if limit >= 0 && e.events[0].at > limit {
			return nil
		}
		ev := heap.Pop(&e.events).(event)
		if ev.p.done {
			continue // stale event for a finished process
		}
		e.now = ev.at
		ev.p.pendingWake = false
		e.step(ev.p)
	}
	if e.stopped {
		return nil
	}
	if e.living > 0 {
		return e.deadlockError()
	}
	return nil
}

// Stop halts Run after the currently running event completes. Blocked
// processes are abandoned in place; Stop is intended for "simulate this many
// frames then stop caring" scenarios, mirroring the paper's abbreviated
// RENDER runs.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Living reports the number of processes spawned and not yet finished.
func (e *Engine) Living() int { return e.living }

func (e *Engine) deadlockError() error {
	names := make([]string, 0, len(e.procs))
	for _, p := range e.procs {
		names = append(names, fmt.Sprintf("%s(id=%d,%s)", p.name, p.id, p.blockedOn))
	}
	sort.Strings(names)
	const max = 12
	shown := names
	if len(shown) > max {
		shown = shown[:max]
	}
	return fmt.Errorf("sim: deadlock at %v: %d processes blocked forever: %s",
		e.now, e.living, strings.Join(shown, ", "))
}
