// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine is the substrate for the whole reproduction: the simulated Intel
// Paragon XP/S machine model, the PFS parallel file system, and the
// application skeletons all run as sim processes against one virtual clock.
//
// Concurrency model: processes are goroutines, but they execute in strict
// lock-step — exactly one goroutine (the engine or a single process) runs at
// any instant. A process runs until it blocks on a simulation primitive
// (Sleep, Park, Resource.Acquire, Barrier.Wait, ...); the next event is then
// popped from a stable priority queue (ordered by time, then by schedule
// sequence number) and the corresponding process resumed. Because scheduling
// order is a pure function of the event queue contents, identical inputs
// produce identical traces, bit for bit.
//
// Hot-path design: the event queue is an inlined 4-ary min-heap specialized
// to the event struct — no interface boxing, no per-event allocation once the
// backing array has grown. Control transfers are direct: a blocking process
// runs the dispatch loop itself (Engine.advance) and resumes the next due
// process with a single channel handoff, without bouncing through the engine
// goroutine; when its own wake-up is the next event it simply keeps running.
// The engine goroutine is only woken when no process is runnable (queue
// drained, run limit reached, Stop, or deadlock). Dispatch runs the same
// advance() whoever holds control, so the executed event order is identical
// to the classic two-handoff engine loop.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine owns the virtual clock and the event queue, and coordinates the
// lock-step execution of all simulation processes. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now    Time
	events eventQueue
	seq    uint64 // monotonically increasing schedule sequence, breaks ties
	nextID int

	living  int
	stopped bool
	limit   Time          // active RunUntil horizon (< 0: none); gates in-place resumes
	wake    chan struct{} // signals the engine goroutine that no process is runnable
	procs   []*Process    // live processes, for deadlock diagnostics
	free    []*Process    // finished processes whose struct and channels are reusable
}

// NewEngine returns an engine with the clock at time zero and no processes.
func NewEngine() *Engine {
	return &Engine{limit: -1, wake: make(chan struct{})}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64
	p   *Process
}

// before is the queue's strict total order: time, then schedule sequence.
// Sequences are unique, so no two distinct events compare equal and the pop
// order is fully determined by the queue contents.
func (ev event) before(o event) bool {
	return ev.at < o.at || (ev.at == o.at && ev.seq < o.seq)
}

// eventQueue is a 4-ary min-heap of events ordered by (time, sequence). It
// is specialized to the event type: push and pop move values within one
// backing slice, so the steady-state event loop performs zero allocations —
// unlike container/heap, whose interface methods box every element through
// `any` on the way in and out. The higher arity halves the tree depth, which
// matters because pops (the sift-down path) dominate a simulation's queue
// traffic.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts ev, sifting the hole up toward the root.
func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, ev)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = ev
}

// pop removes and returns the minimum event, sifting the displaced tail
// element down from the root.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // drop the *Process reference for the collector
	q.ev = q.ev[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for k := c + 1; k < end; k++ {
				if q.ev[k].before(q.ev[min]) {
					min = k
				}
			}
			if !q.ev[min].before(last) {
				break
			}
			q.ev[i] = q.ev[min]
			i = min
		}
		q.ev[i] = last
	}
	return top
}

func (e *Engine) schedule(p *Process, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past (%v < %v)", p.name, at, e.now))
	}
	if p.pendingWake {
		panic(fmt.Sprintf("sim: process %q woken twice", p.name))
	}
	if p.done {
		// The process finished and may already have been reissued to a new
		// Spawn; a wake here means some primitive still believes it owns it.
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	p.pendingWake = true
	e.seq++
	e.events.push(event{at: at, seq: e.seq, p: p})
}

// Spawn creates a new process named name executing fn and schedules it to
// start at the current simulated time. It may be called before Run or from
// within a running process.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	return e.SpawnAt(name, 0, fn)
}

// SpawnAt creates a new process that starts after the given delay from the
// current simulated time. Process structs and their handoff channels are
// recycled from finished processes when possible; only the goroutine itself
// is created fresh per spawn.
func (e *Engine) SpawnAt(name string, delay Time, fn func(p *Process)) *Process {
	if delay < 0 {
		panic("sim: negative spawn delay")
	}
	e.nextID++
	var p *Process
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.done = false
	} else {
		p = &Process{
			eng:    e,
			resume: make(chan struct{}),
		}
	}
	p.id = e.nextID
	p.name = name
	e.living++
	p.procIdx = len(e.procs)
	e.procs = append(e.procs, p)
	go p.top(fn)
	e.schedule(p, e.now+delay)
	return p
}

// advance pops events until it finds a process to run, advancing the clock
// and discarding stale wakes of finished processes along the way. It returns
// nil when control belongs to the engine goroutine instead: queue drained,
// run limit reached, or Stop called. Both the engine loop and blocking
// processes dispatch through advance, so the executed event order is the
// same regardless of which goroutine runs it.
func (e *Engine) advance() *Process {
	for !e.stopped && e.events.len() > 0 {
		if e.limit >= 0 && e.events.ev[0].at > e.limit {
			return nil
		}
		ev := e.events.pop()
		if ev.p.done {
			// Stale event for a finished process. Now that it has left the
			// queue nothing references the process, so it can be reused.
			ev.p.pendingWake = false
			e.recycle(ev.p)
			continue
		}
		e.now = ev.at
		ev.p.pendingWake = false
		return ev.p
	}
	return nil
}

// dispatch hands control to next, or back to the engine goroutine when next
// is nil. Called by a process that is about to stop running (blocking or
// finishing); the caller must not touch engine state afterwards.
func (e *Engine) dispatch(next *Process) {
	if next != nil {
		next.resume <- struct{}{}
	} else {
		e.wake <- struct{}{}
	}
}

// unregister removes a finished process from the live-process list
// (swap-remove; the list is unordered and only read by the deadlock
// diagnostic, which sorts on the failure path).
func (e *Engine) unregister(p *Process) {
	last := len(e.procs) - 1
	e.procs[p.procIdx] = e.procs[last]
	e.procs[p.procIdx].procIdx = p.procIdx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// recycle returns a finished process's struct and channels to the spawn free
// list. A process with a wake still pending has a stale event in the queue
// referencing it; it is recycled when that event pops instead, so a reused
// struct can never be resumed by a dead process's event.
func (e *Engine) recycle(p *Process) {
	if p.pendingWake {
		return
	}
	e.free = append(e.free, p)
}

// Run executes events until the event queue drains or Stop is called. It
// returns an error if processes remain blocked with no pending events
// (deadlock) or if a process panicked with a simulation fault.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// limit). Events beyond the limit stay queued, so the simulation can be
// resumed with a later call.
func (e *Engine) RunUntil(limit Time) error {
	e.limit = limit
	// Hand control to the first runnable process; it and its successors pass
	// control among themselves directly (see Process.block), and the engine
	// goroutine sleeps until a process finds nothing left to run.
	if next := e.advance(); next != nil {
		next.resume <- struct{}{}
		<-e.wake
	}
	e.limit = -1
	if e.stopped {
		return nil
	}
	if e.living > 0 && e.events.len() == 0 {
		return e.deadlockError()
	}
	return nil
}

// Stop halts Run after the currently running event completes. Blocked
// processes are abandoned in place; Stop is intended for "simulate this many
// frames then stop caring" scenarios, mirroring the paper's abbreviated
// RENDER runs.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Living reports the number of processes spawned and not yet finished.
func (e *Engine) Living() int { return e.living }

// deadlockError builds the blocked-process listing. It runs only on the
// failure path, so healthy runs never pay for the copy, sort, or formatting.
func (e *Engine) deadlockError() error {
	blocked := make([]*Process, len(e.procs))
	copy(blocked, e.procs)
	sort.Slice(blocked, func(i, j int) bool {
		if blocked[i].name != blocked[j].name {
			return blocked[i].name < blocked[j].name
		}
		return blocked[i].id < blocked[j].id
	})
	const max = 12
	shown := blocked
	if len(shown) > max {
		shown = shown[:max]
	}
	parts := make([]string, len(shown))
	for i, p := range shown {
		parts[i] = fmt.Sprintf("%s(id=%d,%s)", p.name, p.id, p.blockedOn)
	}
	suffix := ""
	if len(blocked) > max {
		suffix = fmt.Sprintf(", ... (%d more)", len(blocked)-max)
	}
	return fmt.Errorf("sim: deadlock at %v: %d processes blocked forever: %s%s",
		e.now, e.living, strings.Join(parts, ", "), suffix)
}
