// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine is the substrate for the whole reproduction: the simulated Intel
// Paragon XP/S machine model, the PFS parallel file system, and the
// application skeletons all run as sim processes against one virtual clock.
//
// Concurrency model: processes are goroutines, but they execute in strict
// lock-step — exactly one goroutine (the engine or a single process) runs at
// any instant. A process runs until it blocks on a simulation primitive
// (Sleep, Park, Resource.Acquire, Barrier.Wait, ...); the next event is then
// popped from a stable priority queue (ordered by time, then by schedule
// sequence number) and the corresponding process resumed. Because scheduling
// order is a pure function of the event queue contents, identical inputs
// produce identical traces, bit for bit.
//
// Hot-path design: the event queue is an inlined 4-ary min-heap specialized
// to the event struct — no interface boxing, no per-event allocation once the
// backing array has grown. Control transfers are direct: a blocking process
// runs the dispatch loop itself (Engine.advance) and resumes the next due
// process with a single channel handoff, without bouncing through the engine
// goroutine; when its own wake-up is the next event it simply keeps running.
// The engine goroutine is only woken when no process is runnable (queue
// drained, run limit reached, Stop, or deadlock). Dispatch runs the same
// advance() whoever holds control, so the executed event order is identical
// to the classic two-handoff engine loop.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine owns the virtual clock and the event queue, and coordinates the
// lock-step execution of all simulation processes. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now    Time
	events eventQueue
	cal    *calendarQueue // non-nil: calendar queue replaces the binary heap
	seq    uint64         // monotonically increasing schedule sequence, breaks ties
	nextID int

	living  int
	stopped bool
	limit   Time          // active RunUntil horizon (< 0: none); gates in-place resumes
	wake    chan struct{} // signals the engine goroutine that no process is runnable
	procs   []*Process    // live processes, for deadlock diagnostics
	free    []*Process    // finished processes whose struct and channels are reusable

	// external marks an engine owned by a Fabric shard: processes may park
	// waiting for cross-shard mail, so a drained queue with living processes
	// is not a deadlock — the fabric decides that globally.
	external bool

	// stopOnMail marks a solo free-run window: the fabric is executing this
	// shard with no horizon because every other shard is quiescent and can
	// only act after this one sends. A cross-shard send must then surface
	// promptly — Shard.checkSend clamps the run limit to the current instant,
	// so the shard finishes the instant's events and yields through the
	// ordinary limit machinery (including Sleep's in-place fast path).
	stopOnMail bool

	batch []event // scratch for scheduleBatch
}

// NewEngine returns an engine with the clock at time zero and no processes.
func NewEngine() *Engine {
	return &Engine{limit: -1, wake: make(chan struct{})}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64
	p   *Process
}

// before is the queue's strict total order: time, then schedule sequence.
// Sequences are unique, so no two distinct events compare equal and the pop
// order is fully determined by the queue contents.
func (ev event) before(o event) bool {
	return ev.at < o.at || (ev.at == o.at && ev.seq < o.seq)
}

// eventQueue is a 4-ary min-heap of events ordered by (time, sequence). It
// is specialized to the event type: push and pop move values within one
// backing slice, so the steady-state event loop performs zero allocations —
// unlike container/heap, whose interface methods box every element through
// `any` on the way in and out. The higher arity halves the tree depth, which
// matters because pops (the sift-down path) dominate a simulation's queue
// traffic.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts ev, sifting the hole up toward the root.
func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, ev)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = ev
}

// pop removes and returns the minimum event, sifting the displaced tail
// element down from the root.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // drop the *Process reference for the collector
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(0, last)
	}
	return top
}

// siftDown places ev at hole i, pushing smaller children up toward the root's
// former position. The slice beyond i must already satisfy the heap property.
func (q *eventQueue) siftDown(i int, ev event) {
	n := len(q.ev)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for k := c + 1; k < end; k++ {
			if q.ev[k].before(q.ev[min]) {
				min = k
			}
		}
		if !q.ev[min].before(ev) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = ev
}

// pushBatch inserts evs. Small batches sift each element up as push does;
// batches comparable to the queue size append everything and re-heapify,
// which is O(n+m) instead of O(m log n). Either way the heap's pop order is
// the total (time, sequence) order, so batching cannot change scheduling.
func (q *eventQueue) pushBatch(evs []event) {
	n := len(q.ev)
	if m := len(evs); m < 16 || m < n/4 {
		for _, ev := range evs {
			q.push(ev)
		}
		return
	}
	q.ev = append(q.ev, evs...)
	for i := (len(q.ev) - 2) >> 2; i >= 0; i-- {
		q.siftDown(i, q.ev[i])
	}
}

// The engine's queue operations dispatch to the active structure: the inlined
// 4-ary heap (default) or the optional calendar queue (UseCalendar). One
// predictable nil check per operation — no interface boxing on the hot path.

func (e *Engine) qPush(ev event) {
	if e.cal != nil {
		e.cal.push(ev)
		return
	}
	e.events.push(ev)
}

func (e *Engine) qPushBatch(evs []event) {
	if e.cal != nil {
		for _, ev := range evs {
			e.cal.push(ev)
		}
		return
	}
	e.events.pushBatch(evs)
}

func (e *Engine) qLen() int {
	if e.cal != nil {
		return e.cal.size
	}
	return e.events.len()
}

// qMin peeks at the next due event without removing it.
func (e *Engine) qMin() (event, bool) {
	if e.cal != nil {
		return e.cal.peek()
	}
	if len(e.events.ev) == 0 {
		return event{}, false
	}
	return e.events.ev[0], true
}

func (e *Engine) qPop() event {
	if e.cal != nil {
		return e.cal.pop()
	}
	return e.events.pop()
}

// UseCalendar replaces the engine's binary heap with a calendar queue of the
// given bucket width — O(1) amortized holds for the dense, near-uniform event
// populations a large fleet's disk and I/O-node service loops generate, where
// a heap pays log(n) per operation. Pop order is the identical total (time,
// sequence) order, so the queue choice never changes simulation results.
// Must be called before any process is spawned.
func (e *Engine) UseCalendar(width Time) {
	if e.qLen() > 0 || e.living > 0 {
		panic("sim: UseCalendar on an engine that already has events")
	}
	e.cal = newCalendarQueue(width, calendarBuckets)
}

func (e *Engine) schedule(p *Process, at Time) {
	e.checkWake(p, at)
	p.pendingWake = true
	e.seq++
	e.qPush(event{at: at, seq: e.seq, p: p})
}

// scheduleBatch schedules every process in procs to resume at the same
// instant, in slice order — the sequence numbers are assigned in order, so
// the pop order matches what repeated schedule calls would produce, but the
// heap is rebuilt once instead of sifted per wake. Barrier releases and
// completion broadcasts are the callers: a 1024-node barrier release is one
// heapify, not 1024 sift-ups.
func (e *Engine) scheduleBatch(procs []*Process, at Time) {
	if len(procs) == 0 {
		return
	}
	e.batch = e.batch[:0]
	for _, p := range procs {
		e.checkWake(p, at)
		p.pendingWake = true
		e.seq++
		e.batch = append(e.batch, event{at: at, seq: e.seq, p: p})
	}
	e.qPushBatch(e.batch)
	for i := range e.batch {
		e.batch[i] = event{} // drop *Process refs for the collector
	}
}

func (e *Engine) checkWake(p *Process, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past (%v < %v)", p.name, at, e.now))
	}
	if p.pendingWake {
		panic(fmt.Sprintf("sim: process %q woken twice", p.name))
	}
	if p.done {
		// The process finished and may already have been reissued to a new
		// Spawn; a wake here means some primitive still believes it owns it.
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
}

// Spawn creates a new process named name executing fn and schedules it to
// start at the current simulated time. It may be called before Run or from
// within a running process.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	return e.SpawnAt(name, 0, fn)
}

// SpawnAt creates a new process that starts after the given delay from the
// current simulated time. Process structs and their handoff channels are
// recycled from finished processes when possible; only the goroutine itself
// is created fresh per spawn.
func (e *Engine) SpawnAt(name string, delay Time, fn func(p *Process)) *Process {
	if delay < 0 {
		panic("sim: negative spawn delay")
	}
	e.nextID++
	var p *Process
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.done = false
	} else {
		p = &Process{
			eng:    e,
			resume: make(chan struct{}),
		}
	}
	p.id = e.nextID
	p.name = name
	e.living++
	p.procIdx = len(e.procs)
	e.procs = append(e.procs, p)
	go p.top(fn)
	e.schedule(p, e.now+delay)
	return p
}

// advance pops events until it finds a process to run, advancing the clock
// and discarding stale wakes of finished processes along the way. It returns
// nil when control belongs to the engine goroutine instead: queue drained,
// run limit reached, or Stop called. Both the engine loop and blocking
// processes dispatch through advance, so the executed event order is the
// same regardless of which goroutine runs it.
func (e *Engine) advance() *Process {
	for !e.stopped {
		head, ok := e.qMin()
		if !ok {
			break
		}
		if e.limit >= 0 && head.at > e.limit {
			return nil
		}
		ev := e.qPop()
		if ev.p.done {
			// Stale event for a finished process. Now that it has left the
			// queue nothing references the process, so it can be reused.
			ev.p.pendingWake = false
			e.recycle(ev.p)
			continue
		}
		e.now = ev.at
		ev.p.pendingWake = false
		return ev.p
	}
	return nil
}

// dispatch hands control to next, or back to the engine goroutine when next
// is nil. Called by a process that is about to stop running (blocking or
// finishing); the caller must not touch engine state afterwards.
func (e *Engine) dispatch(next *Process) {
	if next != nil {
		next.resume <- struct{}{}
	} else {
		e.wake <- struct{}{}
	}
}

// unregister removes a finished process from the live-process list
// (swap-remove; the list is unordered and only read by the deadlock
// diagnostic, which sorts on the failure path).
func (e *Engine) unregister(p *Process) {
	last := len(e.procs) - 1
	e.procs[p.procIdx] = e.procs[last]
	e.procs[p.procIdx].procIdx = p.procIdx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// recycle returns a finished process's struct and channels to the spawn free
// list. A process with a wake still pending has a stale event in the queue
// referencing it; it is recycled when that event pops instead, so a reused
// struct can never be resumed by a dead process's event.
func (e *Engine) recycle(p *Process) {
	if p.pendingWake {
		return
	}
	e.free = append(e.free, p)
}

// Run executes events until the event queue drains or Stop is called. It
// returns an error if processes remain blocked with no pending events
// (deadlock) or if a process panicked with a simulation fault.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// limit). Events beyond the limit stay queued, so the simulation can be
// resumed with a later call.
func (e *Engine) RunUntil(limit Time) error {
	e.limit = limit
	// Hand control to the first runnable process; it and its successors pass
	// control among themselves directly (see Process.block), and the engine
	// goroutine sleeps until a process finds nothing left to run.
	if next := e.advance(); next != nil {
		next.resume <- struct{}{}
		<-e.wake
	}
	e.limit = -1
	if e.stopped {
		return nil
	}
	if e.living > 0 && e.qLen() == 0 && !e.external {
		// A fabric-owned engine defers this verdict: its processes may be
		// parked awaiting cross-shard mail that another shard will deliver.
		return e.deadlockError()
	}
	return nil
}

// clampLimit caps the active run limit at the current instant. Shard.checkSend
// calls it on a cross-shard send during a solo free-run window (stopOnMail):
// the shard finishes the current instant's events — mail is timestamped at
// least one lookahead ahead, so those events cannot observe it — and then
// yields through the ordinary limit checks so the fabric can exchange mail.
func (e *Engine) clampLimit() {
	if e.limit < 0 || e.limit > e.now {
		e.limit = e.now
	}
}

// NextEventAt reports the timestamp of the earliest queued event. ok is false
// when the queue is empty. The fabric's horizon reduction reads this between
// windows; it must not be called while events are being executed.
func (e *Engine) NextEventAt() (Time, bool) {
	ev, ok := e.qMin()
	return ev.at, ok
}

// SetExternal marks the engine as owned by a conservative-parallel fabric
// shard: a drained queue with living processes is no longer reported as a
// deadlock by RunUntil, because those processes may be waiting on cross-shard
// mail. The fabric makes the global deadlock determination instead.
func (e *Engine) SetExternal() { e.external = true }

// Stop halts Run after the currently running event completes. Blocked
// processes are abandoned in place; Stop is intended for "simulate this many
// frames then stop caring" scenarios, mirroring the paper's abbreviated
// RENDER runs.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Living reports the number of processes spawned and not yet finished.
func (e *Engine) Living() int { return e.living }

// deadlockError builds the blocked-process listing. It runs only on the
// failure path, so healthy runs never pay for the copy, sort, or formatting.
func (e *Engine) deadlockError() error {
	blocked := make([]*Process, len(e.procs))
	copy(blocked, e.procs)
	sort.Slice(blocked, func(i, j int) bool {
		if blocked[i].name != blocked[j].name {
			return blocked[i].name < blocked[j].name
		}
		return blocked[i].id < blocked[j].id
	})
	const max = 12
	shown := blocked
	if len(shown) > max {
		shown = shown[:max]
	}
	parts := make([]string, len(shown))
	for i, p := range shown {
		parts[i] = fmt.Sprintf("%s(id=%d,%s)", p.name, p.id, p.blockedOn)
	}
	suffix := ""
	if len(blocked) > max {
		suffix = fmt.Sprintf(", ... (%d more)", len(blocked)-max)
	}
	return fmt.Errorf("sim: deadlock at %v: %d processes blocked forever: %s%s",
		e.now, e.living, strings.Join(parts, ", "), suffix)
}
