package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineEventLoop is the engine's headline microbenchmark: 64
// processes interleaving timed sleeps, so every resumption goes through the
// full schedule/pop/handoff path. One iteration is a complete simulation of
// 64*200 = 12800 events.
func BenchmarkEngineEventLoop(b *testing.B) {
	b.ReportAllocs()
	const procs, sleeps = 64, 200
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(fmt.Sprintf("p%d", j), func(p *Process) {
				for k := 0; k < sleeps; k++ {
					p.Sleep(Time(j+1) * Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs*sleeps), "ns/event")
}

// BenchmarkEngineSequentialChain measures the uncontended case — a single
// process sleeping repeatedly with nothing else scheduled. This is the shape
// of a compute phase or an exclusive device service interval.
func BenchmarkEngineSequentialChain(b *testing.B) {
	b.ReportAllocs()
	const sleeps = 10000
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.Spawn("solo", func(p *Process) {
			for k := 0; k < sleeps; k++ {
				p.Sleep(Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sleeps), "ns/event")
}

// BenchmarkEngineSpawnChurn measures process creation/teardown: a driver
// spawns a short-lived child per tick, so finished-process bookkeeping is the
// dominant cost.
func BenchmarkEngineSpawnChurn(b *testing.B) {
	b.ReportAllocs()
	const children = 2000
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.Spawn("driver", func(p *Process) {
			for k := 0; k < children; k++ {
				e.Spawn("child", func(c *Process) {
					c.Sleep(Microsecond)
				})
				p.Sleep(2 * Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*children), "ns/spawn")
}

// BenchmarkEngineContendedResource measures the Park/Wake handoff path: 32
// processes round-robin through a capacity-1 resource.
func BenchmarkEngineContendedResource(b *testing.B) {
	b.ReportAllocs()
	const procs, uses = 32, 100
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewResource(e, "disk", 1)
		for j := 0; j < procs; j++ {
			e.Spawn(fmt.Sprintf("u%d", j), func(p *Process) {
				for k := 0; k < uses; k++ {
					r.Use(p, Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs*uses), "ns/use")
}

// BenchmarkEngineShardedFabric measures the conservative-parallel protocol:
// 4 ring-connected shards of sleeping/sending processes, windows bounded by
// a 5µs lookahead. ns/event includes horizon reductions and mail exchange,
// so it is the honest per-event cost of sharding, not just queue ops.
func BenchmarkEngineShardedFabric(b *testing.B) {
	b.ReportAllocs()
	const shards, procs, rounds = 4, 16, 100
	for i := 0; i < b.N; i++ {
		f := NewFabric(0)
		sh := make([]*Shard, shards)
		for s := range sh {
			sh[s] = f.AddShard(fmt.Sprintf("s%d", s), 9)
		}
		for s := range sh {
			f.Connect(sh[s], sh[(s+1)%shards], 5*Microsecond)
		}
		for s := range sh {
			src, dst := sh[s], sh[(s+1)%shards]
			rng := src.RNG()
			for j := 0; j < procs; j++ {
				src.Engine().Spawn(fmt.Sprintf("w%d", j), func(p *Process) {
					for k := 0; k < rounds; k++ {
						p.Sleep(rng.Uniform(Microsecond, 40*Microsecond))
						src.Send(p, dst, 5*Microsecond, "m", func(*Process) {})
					}
				})
			}
		}
		if err := f.Run(); err != nil {
			b.Fatal(err)
		}
	}
	// Two events per round per process: the sleep wake and the mail delivery.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*shards*procs*rounds*2), "ns/event")
}

// BenchmarkEngineCalendarQueue is BenchmarkEngineEventLoop on the calendar
// queue, so the two headline numbers are directly comparable.
func BenchmarkEngineCalendarQueue(b *testing.B) {
	b.ReportAllocs()
	const procs, sleeps = 64, 200
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.UseCalendar(DefaultCalendarWidth)
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(fmt.Sprintf("p%d", j), func(p *Process) {
				for k := 0; k < sleeps; k++ {
					p.Sleep(Time(j+1) * Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs*sleeps), "ns/event")
}

// BenchmarkEngineBarrierRelease measures the batched barrier-release path: a
// wide group arriving at a barrier repeatedly, so scheduleBatch's single
// heapify (rather than per-waiter sift-ups) dominates.
func BenchmarkEngineBarrierRelease(b *testing.B) {
	b.ReportAllocs()
	const procs, roundsPer = 256, 50
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		bar := NewBarrier(e, "wide", procs)
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(fmt.Sprintf("p%d", j), func(p *Process) {
				for k := 0; k < roundsPer; k++ {
					p.Sleep(Time(j%7) * Microsecond)
					bar.Wait(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*procs*roundsPer), "ns/arrival")
}
