package sim

import "fmt"

// Process is a single thread of simulated activity — in this reproduction, a
// compute node's program, an I/O node server, or a background policy daemon.
// A Process must only be used from its own goroutine (inside the fn passed to
// Spawn); the lock-step scheduler guarantees no two processes ever run
// concurrently.
type Process struct {
	eng  *Engine
	id   int
	name string

	resume chan struct{}
	yield  chan struct{}

	done        bool
	pendingWake bool
	blockedOn   string // diagnostic: what primitive the process is parked in
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// ID returns the process's unique id (assigned in spawn order).
func (p *Process) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Process) Now() Time { return p.eng.now }

// block yields control to the engine and waits to be resumed.
func (p *Process) block(why string) {
	p.blockedOn = why
	p.yield <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Sleep advances this process's local activity by d: it blocks and resumes
// once the simulated clock has advanced by d. Sleeping for zero time yields
// to other processes scheduled at the same instant.
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %q", d, p.name))
	}
	p.eng.schedule(p, p.eng.now+d)
	p.block("sleep")
}

// Park blocks the process indefinitely until some other process wakes it via
// Wake. It is the building block for resources, barriers and queues. Parking
// with nobody to wake you is a deadlock, which Engine.Run reports.
func (p *Process) Park(why string) {
	p.block(why)
}

// Wake schedules a parked process to resume at the current simulated time.
// It must be called by the currently running process (or before Run starts).
// Waking a process that already has a pending wake is a programming error and
// panics, because it indicates two primitives both believe they own the
// parked process.
func (p *Process) Wake(target *Process) {
	p.eng.schedule(target, p.eng.now)
}

// WakeAt schedules a parked process to resume at the given absolute time.
func (p *Process) WakeAt(target *Process, at Time) {
	p.eng.schedule(target, at)
}
