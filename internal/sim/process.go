package sim

import "fmt"

// Process is a single thread of simulated activity — in this reproduction, a
// compute node's program, an I/O node server, or a background policy daemon.
// A Process must only be used from its own goroutine (inside the fn passed to
// Spawn); the lock-step scheduler guarantees no two processes ever run
// concurrently.
//
// The struct and its handoff channels outlive the process: when a process
// finishes, the engine parks them on a free list and reissues them to a
// later Spawn, so process churn costs one goroutine, not a goroutine plus
// three heap objects.
type Process struct {
	eng  *Engine
	id   int
	name string

	resume chan struct{}

	procIdx     int // index in the engine's live-process list
	done        bool
	pendingWake bool
	blockedOn   string // diagnostic: what primitive the process is parked in
}

// top is the body of a process goroutine: wait to be started, run fn, and
// terminate cleanly.
func (p *Process) top(fn func(p *Process)) {
	<-p.resume // wait for the scheduler to start us
	defer func() {
		if r := recover(); r != nil {
			// A real fault: crash loudly rather than dispatching, so the
			// runtime reports the panic with this goroutine's stack.
			panic(r)
		}
		// Normal return, or runtime.Goexit (e.g. t.Fatal inside a process
		// during tests): retire the process and hand control to whoever is
		// due next so the simulation keeps running.
		p.done = true
		e := p.eng
		e.living--
		e.unregister(p)
		e.recycle(p)
		e.dispatch(e.advance())
	}()
	fn(p)
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// ID returns the process's unique id (assigned in spawn order).
func (p *Process) ID() int { return p.id }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Process) Now() Time { return p.eng.now }

// block suspends the process until its next wake event pops. The blocking
// process dispatches its successor itself: it runs the engine's advance loop
// and resumes the next due process with a single direct channel handoff —
// the engine goroutine stays asleep. When the next due event is the caller's
// own wake-up, block returns without any handoff at all.
func (p *Process) block(why string) {
	p.blockedOn = why
	e := p.eng
	next := e.advance()
	if next == p {
		// Our own wake-up is the next event; keep running in place.
		p.blockedOn = ""
		return
	}
	e.dispatch(next)
	<-p.resume
	p.blockedOn = ""
}

// Sleep advances this process's local activity by d: it blocks and resumes
// once the simulated clock has advanced by d. Sleeping for zero time yields
// to other processes scheduled at the same instant.
//
// Fast path: when this process's own wake-up is the head of the queue
// (nothing else is due at or before it) and lies within the engine's run
// horizon, the process pops its event, advances the clock, and keeps running
// — no dispatch loop, no handoff. The popped event is exactly the one
// advance would have popped, so scheduling order, tie-breaking, and the
// clock are bit-identical to the general path.
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %q", d, p.name))
	}
	e := p.eng
	at := e.now + d
	e.schedule(p, at)
	if !e.stopped && (e.limit < 0 || at <= e.limit) {
		if head, ok := e.qMin(); ok && head.p == p {
			// A process has at most one pending event (double wakes panic),
			// so the queue head being ours means our fresh wake is the
			// strict minimum.
			e.qPop()
			p.pendingWake = false
			e.now = at
			return
		}
	}
	p.block("sleep")
}

// Park blocks the process indefinitely until some other process wakes it via
// Wake. It is the building block for resources, barriers and queues. Parking
// with nobody to wake you is a deadlock, which Engine.Run reports.
func (p *Process) Park(why string) {
	p.block(why)
}

// Wake schedules a parked process to resume at the current simulated time.
// It must be called by the currently running process (or before Run starts).
// Waking a process that already has a pending wake is a programming error and
// panics, because it indicates two primitives both believe they own the
// parked process.
func (p *Process) Wake(target *Process) {
	p.eng.schedule(target, p.eng.now)
}

// WakeAt schedules a parked process to resume at the given absolute time.
func (p *Process) WakeAt(target *Process, at Time) {
	p.eng.schedule(target, at)
}
