package sim

import (
	"errors"
	"fmt"
)

// ErrBroken is returned by AcquireWait when the resource has been broken by
// Break — the modeled device failed while the caller was queued (or before it
// arrived).
var ErrBroken = errors.New("sim: resource is broken")

// Resource is a FIFO server with fixed capacity: at most cap processes hold
// it at once; further acquirers queue in arrival order. It models contended
// physical devices and logical tokens — an I/O node's disk array, the PFS
// metadata server, or a shared file pointer.
//
// Resource also keeps simple utilization statistics so analyses can report
// device busy time and queueing delay.
//
// A resource can be interrupted: Break marks it broken and ejects every
// queued waiter (their AcquireWait returns ErrBroken), modeling a device
// failure under load; Repair restores normal service. Holders at Break time
// keep their unit — the request already in service completes.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Process
	broken   bool
	granted  map[*Process]bool // waiters woken by a direct unit hand-off

	// statistics
	lastChange Time
	busyArea   float64 // integral of inUse over time, in unit·µs
	acquires   int64
	waitTotal  Time
	queuePeak  int
	breaks     int64
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of simultaneous holders allowed.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	now := r.eng.now
	r.busyArea += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}

// Acquire blocks p until it holds one unit of the resource. Units are granted
// strictly in request order. Acquire must not be used on resources that can
// break (use AcquireWait there); acquiring a broken resource panics.
func (r *Resource) Acquire(p *Process) {
	if err := r.AcquireWait(p); err != nil {
		panic(fmt.Sprintf("sim: Acquire on broken resource %q", r.name))
	}
}

// AcquireWait blocks p until it holds one unit of the resource, like Acquire,
// but returns ErrBroken instead of granting a unit if the resource is broken
// on arrival or breaks while p is queued.
func (r *Resource) AcquireWait(p *Process) error {
	if r.broken {
		return ErrBroken
	}
	r.acquires++
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account()
		r.inUse++
		return nil
	}
	start := r.eng.now
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.queuePeak {
		r.queuePeak = len(r.waiters)
	}
	p.Park("resource:" + r.name)
	if r.granted[p] {
		delete(r.granted, p)
		r.waitTotal += r.eng.now - start
		return nil
	}
	// Woken without a unit hand-off: ejected by Break.
	r.waitTotal += r.eng.now - start
	return ErrBroken
}

// Release returns one unit. If processes are queued, the unit passes directly
// to the head of the queue (preserving FIFO order and keeping inUse
// constant); otherwise the unit becomes free.
func (r *Resource) Release(p *Process) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		if r.granted == nil {
			r.granted = make(map[*Process]bool)
		}
		r.granted[next] = true
		p.Wake(next) // unit transfers; inUse unchanged
		return
	}
	r.account()
	r.inUse--
}

// Break marks the resource broken and ejects all queued waiters, whose
// AcquireWait calls return ErrBroken. Current holders are unaffected (their
// in-flight service completes). Subsequent AcquireWait calls fail until
// Repair.
func (r *Resource) Break(p *Process) {
	if r.broken {
		return
	}
	r.broken = true
	r.breaks++
	ejected := r.waiters
	r.waiters = nil
	p.eng.scheduleBatch(ejected, p.eng.now)
}

// Repair restores a broken resource to service.
func (r *Resource) Repair() { r.broken = false }

// Broken reports whether the resource is out of service.
func (r *Resource) Broken() bool { return r.broken }

// Use acquires the resource, holds it for the service time, and releases it.
// It returns the total elapsed time including queueing delay.
func (r *Resource) Use(p *Process, service Time) Time {
	start := p.Now()
	r.Acquire(p)
	p.Sleep(service)
	r.Release(p)
	return p.Now() - start
}

// Stats summarizes resource usage since creation.
type ResourceStats struct {
	Name        string
	Acquires    int64   // total successful acquisitions
	Utilization float64 // mean fraction of capacity busy, up to `at`
	TotalWait   Time    // sum of queueing delays over all acquirers
	QueuePeak   int     // maximum observed queue length
	Breaks      int64   // times the resource was broken (fault injection)
}

// StatsAt returns usage statistics evaluated at simulated time at (usually
// engine.Now() after a run).
func (r *Resource) StatsAt(at Time) ResourceStats {
	area := r.busyArea + float64(r.inUse)*float64(at-r.lastChange)
	util := 0.0
	if at > 0 {
		util = area / (float64(at) * float64(r.capacity))
	}
	return ResourceStats{
		Name:        r.name,
		Acquires:    r.acquires,
		Utilization: util,
		TotalWait:   r.waitTotal,
		QueuePeak:   r.queuePeak,
		Breaks:      r.breaks,
	}
}
