package sim

import (
	"fmt"
	"strings"
	"testing"
)

// fabricWorkload builds a K-shard ring with real cross-shard traffic and
// returns the merged execution trace: every shard runs several processes that
// interleave RNG-jittered local sleeps with mail to the next shard, and a
// fraction of deliveries hop one shard further, so nested sends, tie-breaks,
// and the horizon protocol are all exercised. The trace is a pure function of
// (shards, seed) — worker count must not leak into it.
func fabricWorkload(t testing.TB, shards, workers int, seed uint64) string {
	const (
		procs     = 6
		rounds    = 40
		lookahead = 5 * Microsecond
	)
	f := NewFabric(workers)
	sh := make([]*Shard, shards)
	logs := make([][]string, shards)
	for i := range sh {
		sh[i] = f.AddShard(fmt.Sprintf("shard%d", i), seed)
	}
	for i := range sh {
		f.Connect(sh[i], sh[(i+1)%shards], lookahead)
	}
	for i := range sh {
		i := i
		s := sh[i]
		e := s.Engine()
		rng := s.RNG()
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn(fmt.Sprintf("worker%d", j), func(p *Process) {
				for r := 0; r < rounds; r++ {
					p.Sleep(rng.Uniform(Microsecond, 50*Microsecond))
					logs[i] = append(logs[i], fmt.Sprintf("s%d w%d r%d t=%d", i, j, r, p.Now()))
					dst := sh[(i+1)%shards]
					delay := lookahead + Time(rng.Intn(30))*Microsecond
					hop := rng.Intn(4) == 0
					msg := fmt.Sprintf("mail s%d->s%d w%d r%d", i, dst.idx, j, r)
					s.Send(p, dst, delay, "mail", func(mp *Process) {
						logs[dst.idx] = append(logs[dst.idx], fmt.Sprintf("%s t=%d", msg, mp.Now()))
						if hop {
							next := sh[(dst.idx+1)%shards]
							dst.Send(mp, next, lookahead, "hop", func(hp *Process) {
								logs[next.idx] = append(logs[next.idx], fmt.Sprintf("%s hop t=%d", msg, hp.Now()))
							})
						}
					})
				}
			})
		}
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := range logs {
		for _, l := range logs[i] {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestFabricByteIdenticalAcrossWorkerCounts is the sim-layer determinism
// oracle: the same sharded workload must produce an identical merged trace at
// every worker count, with workers=1 as the serial reference.
func TestFabricByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const shards, seed = 4, 1234
	ref := fabricWorkload(t, shards, 1, seed)
	if !strings.Contains(ref, "mail s0->s1") || !strings.Contains(ref, "hop t=") {
		t.Fatalf("workload generated no cross-shard traffic:\n%.400s", ref)
	}
	for _, workers := range []int{2, 4, 8} {
		got := fabricWorkload(t, shards, workers, seed)
		if got != ref {
			t.Fatalf("trace at workers=%d differs from serial reference", workers)
		}
	}
}

// TestFabricHorizonBoundary guards the exclusive window edge: mail sent with
// delay exactly equal to the edge lookahead — timestamped precisely at the
// receiver's horizon — must still be delivered before it is due.
func TestFabricHorizonBoundary(t *testing.T) {
	const lookahead = 3 * Microsecond
	f := NewFabric(2)
	a := f.AddShard("a", 1)
	b := f.AddShard("b", 1)
	f.Connect(a, b, lookahead)
	var got []Time
	a.Engine().Spawn("sender", func(p *Process) {
		for r := 0; r < 10; r++ {
			p.Sleep(Microsecond)
			a.Send(p, b, lookahead, "edge", func(mp *Process) {
				got = append(got, mp.Now())
			})
		}
	})
	// Keep b's clock moving so its windows actually advance.
	b.Engine().Spawn("ticker", func(p *Process) {
		for r := 0; r < 20; r++ {
			p.Sleep(Microsecond)
		}
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10 horizon-edge messages", len(got))
	}
	for i, at := range got {
		want := Time(i+1)*Microsecond + lookahead
		if at != want {
			t.Fatalf("message %d ran at %v, want %v", i, at, want)
		}
	}
}

// TestFabricDeadlock verifies the global deadlock determination: a process
// parked forever with no mail in flight anywhere must be reported (by the
// fabric — the shard engine itself defers the verdict).
func TestFabricDeadlock(t *testing.T) {
	f := NewFabric(2)
	a := f.AddShard("a", 1)
	b := f.AddShard("b", 1)
	f.Connect(a, b, Microsecond)
	b.Engine().Spawn("stuck", func(p *Process) {
		p.Park("waiting for mail that never comes")
	})
	err := f.Run()
	if err == nil {
		t.Fatal("expected a fabric deadlock error")
	}
	if !strings.Contains(err.Error(), "fabric deadlock") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error missing detail: %v", err)
	}
}

// TestFabricStoppedShard verifies a stopped engine is treated as quiescent:
// the fabric terminates even though the shard still has queued events and
// living processes, mirroring the serial engine's Stop semantics.
func TestFabricStoppedShard(t *testing.T) {
	f := NewFabric(2)
	a := f.AddShard("a", 1)
	b := f.AddShard("b", 1)
	f.Connect(a, b, Microsecond)
	a.Engine().Spawn("halter", func(p *Process) {
		p.Sleep(5 * Microsecond)
		p.Engine().Stop()
		p.Park("abandoned by Stop")
	})
	b.Engine().Spawn("worker", func(p *Process) {
		p.Sleep(10 * Microsecond)
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Engine().Stopped() {
		t.Fatal("shard a should be stopped")
	}
	if got := b.Engine().Now(); got != 10*Microsecond {
		t.Fatalf("shard b halted at %v, want 10µs", got)
	}
}

// TestFabricSendValidation pins the misuse panics: sending without an edge
// and sending below the edge lookahead both indicate a broken partitioning
// and must fail loudly.
func TestFabricSendValidation(t *testing.T) {
	mustPanic := func(name string, build func(f *Fabric, a, b *Shard, p *Process)) {
		t.Run(name, func(t *testing.T) {
			f := NewFabric(1)
			a := f.AddShard("a", 1)
			b := f.AddShard("b", 1)
			f.Connect(a, b, 2*Microsecond)
			a.Engine().Spawn("bad", func(p *Process) {
				defer func() {
					if recover() == nil {
						t.Error("expected a panic")
					}
					p.Engine().Stop()
				}()
				build(f, a, b, p)
			})
			_ = f.Run()
		})
	}
	mustPanic("no-edge", func(f *Fabric, a, b *Shard, p *Process) {
		b.Send(p, a, 2*Microsecond, "x", func(*Process) {}) // b->a never connected (and wrong engine)
	})
	mustPanic("below-lookahead", func(f *Fabric, a, b *Shard, p *Process) {
		a.Send(p, b, Microsecond, "x", func(*Process) {})
	})
}

// TestPartitionProperties checks the shard-partition helper's contract
// directly (the fuzz target widens the input space).
func TestPartitionProperties(t *testing.T) {
	for _, tc := range []struct{ n, groups int }{
		{0, 1}, {1, 1}, {7, 3}, {100, 8}, {1000, 7}, {16, 16}, {5, 8},
	} {
		a := Partition(tc.n, tc.groups, 42)
		if len(a) != tc.n {
			t.Fatalf("Partition(%d,%d): got %d assignments", tc.n, tc.groups, len(a))
		}
		counts := make([]int, tc.groups)
		for i, g := range a {
			if g < 0 || g >= tc.groups {
				t.Fatalf("Partition(%d,%d): item %d assigned to shard %d", tc.n, tc.groups, i, g)
			}
			counts[g]++
		}
		min, max := tc.n, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if tc.n >= tc.groups && max-min > 1 {
			t.Fatalf("Partition(%d,%d): unbalanced shard sizes %v", tc.n, tc.groups, counts)
		}
		b := Partition(tc.n, tc.groups, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Partition(%d,%d) not deterministic at item %d", tc.n, tc.groups, i)
			}
		}
	}
}

// FuzzShardPartition fuzzes the partition assignment: every item must map to
// exactly one in-range shard, sizes must stay balanced, and the mapping must
// be a pure function of (n, groups, seed).
func FuzzShardPartition(f *testing.F) {
	f.Add(100, 8, uint64(42))
	f.Add(0, 1, uint64(0))
	f.Add(1000, 3, uint64(7))
	f.Add(17, 17, uint64(99))
	f.Add(100000, 64, uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, n, groups int, seed uint64) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 17
		if groups <= 0 {
			groups = 1
		}
		groups = 1 + (groups-1)%256
		a := Partition(n, groups, seed)
		if len(a) != n {
			t.Fatalf("got %d assignments for n=%d", len(a), n)
		}
		counts := make([]int, groups)
		for i, g := range a {
			if g < 0 || g >= groups {
				t.Fatalf("item %d assigned to out-of-range shard %d (groups=%d)", i, g, groups)
			}
			counts[g]++
		}
		min, max := n, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if n >= groups && max-min > 1 {
			t.Fatalf("unbalanced partition: min %d max %d (n=%d groups=%d)", min, max, n, groups)
		}
		b := Partition(n, groups, seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("not deterministic at item %d", i)
			}
		}
	})
}
