package sim

import (
	"errors"
	"testing"
)

// A Break while requests are queued must eject every waiter with ErrBroken,
// leave the in-service holder to finish, and refuse new arrivals until Repair.
func TestBreakEjectsQueuedWaiters(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dev", 1)
	var ejected int
	var holderDone Time

	e.Spawn("holder", func(p *Process) {
		if err := r.AcquireWait(p); err != nil {
			t.Errorf("holder acquire: %v", err)
		}
		p.Sleep(10 * Millisecond)
		r.Release(p)
		holderDone = p.Now()
	})
	for i := 0; i < 2; i++ {
		e.Spawn("waiter", func(p *Process) {
			p.Sleep(1 * Millisecond) // queue behind the holder
			if err := r.AcquireWait(p); errors.Is(err, ErrBroken) {
				ejected++
			} else if err == nil {
				r.Release(p)
			}
		})
	}
	e.Spawn("breaker", func(p *Process) {
		p.Sleep(2 * Millisecond)
		r.Break(p)
		if !r.Broken() {
			t.Error("Broken() false after Break")
		}
		if err := r.AcquireWait(p); !errors.Is(err, ErrBroken) {
			t.Errorf("acquire on broken resource: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ejected != 2 {
		t.Errorf("ejected waiters = %d, want 2", ejected)
	}
	if holderDone != 10*Millisecond {
		t.Errorf("holder finished at %v, want 10ms (in-flight service completes)", holderDone)
	}
	if st := r.StatsAt(e.Now()); st.Breaks != 1 {
		t.Errorf("Breaks = %d, want 1", st.Breaks)
	}
}

// A unit handed off by Release just before a Break stays granted: the woken
// waiter proceeds as a normal holder rather than seeing ErrBroken.
func TestGrantSurvivesImmediateBreak(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dev", 1)
	var gotUnit bool

	e.Spawn("holder", func(p *Process) {
		r.Acquire(p)
		p.Sleep(5 * Millisecond)
		r.Release(p) // hands the unit to the waiter...
		r.Break(p)   // ...then the device fails, same instant
	})
	e.Spawn("waiter", func(p *Process) {
		p.Sleep(1 * Millisecond)
		if err := r.AcquireWait(p); err != nil {
			t.Errorf("granted waiter saw %v", err)
			return
		}
		gotUnit = true
		p.Sleep(1 * Millisecond)
		r.Release(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotUnit {
		t.Error("waiter never received the handed-off unit")
	}
}

// Repair restores service: post-repair acquisitions succeed and are counted.
func TestRepairRestoresService(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dev", 1)
	e.Spawn("cycle", func(p *Process) {
		r.Break(p)
		if err := r.AcquireWait(p); !errors.Is(err, ErrBroken) {
			t.Fatalf("broken acquire: %v", err)
		}
		r.Repair()
		if r.Broken() {
			t.Error("Broken() true after Repair")
		}
		if err := r.AcquireWait(p); err != nil {
			t.Fatalf("post-repair acquire: %v", err)
		}
		p.Sleep(Millisecond)
		r.Release(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
