package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Fabric coordinates a set of independently-clocked shard engines with the
// classic conservative-parallel bounded-horizon protocol: between global
// synchronization points each shard executes its own event queue up to a
// horizon no cross-shard message can penetrate, so shards run concurrently on
// OS threads while the merged execution remains deterministic.
//
// Topology is declared up front: Connect(src, dst, lookahead) states that src
// may send mail to dst, and that any mail sent while src's clock reads t
// arrives no earlier than t+lookahead. The lookahead is the physical link
// latency of the modeled system (for the mesh, software latency plus hop
// delay — see mesh.Lookahead), and it is what makes conservative execution
// possible: a shard can safely run to
//
//	horizon(X) = min over in-edges (src, L) of nextAt(src) + L
//
// because no connected shard, executing no earlier than its own next event,
// can produce mail for X before that bound. Shards with no in-edges have an
// infinite horizon and free-run to completion. Lookaheads are strictly
// positive, so the shard holding the globally minimal next event always makes
// progress and the protocol cannot stall.
//
// Windows are exclusive at the top: a shard runs events with timestamps
// strictly below its horizon, so mail timestamped exactly at the horizon is
// delivered before it could ever be due. Mail is buffered in per-sender
// outboxes during a window (no cross-thread mutation), moved to the
// destination's inbox at the synchronization point, and delivered in
// (time, sender, sender-sequence) order — a total order independent of how
// the OS interleaved the window, which is what makes results byte-identical
// at any worker count.
type Fabric struct {
	shards  []*Shard
	workers int

	windows int64
	mail    int64
}

// Shard is one independently-clocked partition of the simulation: its own
// engine, its own RNG substream, and mailboxes to the shards it is connected
// to.
type Shard struct {
	fab  *Fabric
	idx  int
	name string
	eng  *Engine
	rng  *RNG

	inEdges []inEdge
	outL    []Time   // lookahead to each destination shard; 0 = not connected
	outbox  [][]mail // per-destination mail buffered during the current window
	inbox   []mail
	sendSeq uint64
}

type inEdge struct {
	src       int
	lookahead Time
}

// mail is a cross-shard message: a closure to run on the destination engine
// at an absolute simulated time. The (at, src, seq) triple is its delivery
// sort key.
type mail struct {
	at   Time
	src  int
	seq  uint64
	name string
	fn   func(p *Process)
}

// NewFabric creates an empty fabric. workers bounds how many shards execute
// concurrently during a window; 0 means GOMAXPROCS. workers=1 is the serial
// oracle: the very same protocol, windows, and delivery order on one thread.
func NewFabric(workers int) *Fabric {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Fabric{workers: workers}
}

// Workers reports the fabric's concurrency bound.
func (f *Fabric) Workers() int { return f.workers }

// AddShard creates a shard with its own engine and an RNG substream derived
// from seed and the shard's index (splitmix64 streams, so substreams are
// independent and stable under shard-count changes).
func (f *Fabric) AddShard(name string, seed uint64) *Shard {
	e := NewEngine()
	e.SetExternal()
	s := &Shard{
		fab:  f,
		idx:  len(f.shards),
		name: name,
		eng:  e,
		rng:  NewRNG(seed).Split(),
	}
	f.shards = append(f.shards, s)
	return s
}

// Engine returns the shard's engine. Processes, resources, and all other sim
// primitives are created against it exactly as against a standalone engine.
func (s *Shard) Engine() *Engine { return s.eng }

// RNG returns the shard's private random stream.
func (s *Shard) RNG() *RNG { return s.rng }

// Name returns the shard name given at AddShard.
func (s *Shard) Name() string { return s.name }

// Index returns the shard's position in the fabric.
func (s *Shard) Index() int { return s.idx }

// Connect declares that src may send mail to dst with the given minimum
// latency (lookahead). The lookahead must be strictly positive — it is the
// protocol's progress guarantee. Connecting the same pair twice keeps the
// smaller lookahead.
func (f *Fabric) Connect(src, dst *Shard, lookahead Time) {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: fabric edge %s->%s lookahead %v must be positive", src.name, dst.name, lookahead))
	}
	if src == dst {
		panic(fmt.Sprintf("sim: fabric self-edge on %s (local sends need no edge)", src.name))
	}
	for i := range dst.inEdges {
		if dst.inEdges[i].src == src.idx {
			if lookahead < dst.inEdges[i].lookahead {
				dst.inEdges[i].lookahead = lookahead
				src.outL[dst.idx] = lookahead
			}
			return
		}
	}
	dst.inEdges = append(dst.inEdges, inEdge{src: src.idx, lookahead: lookahead})
	for len(src.outL) <= dst.idx {
		src.outL = append(src.outL, 0)
		src.outbox = append(src.outbox, nil)
	}
	src.outL[dst.idx] = lookahead
}

// Send queues mail from the running process p (which must belong to this
// shard) to shard dst: fn will run in a fresh process on dst's engine at
// p.Now()+delay. The shards must be connected and delay must be at least the
// edge's lookahead — sending faster than the declared link latency would
// break the conservative horizon.
func (s *Shard) Send(p *Process, dst *Shard, delay Time, name string, fn func(p *Process)) {
	if p.eng != s.eng {
		panic(fmt.Sprintf("sim: Send on shard %s from a process of another engine", s.name))
	}
	if dst.idx >= len(s.outL) || s.outL[dst.idx] == 0 {
		panic(fmt.Sprintf("sim: Send %s->%s without a Connect edge", s.name, dst.name))
	}
	if delay < s.outL[dst.idx] {
		panic(fmt.Sprintf("sim: Send %s->%s delay %v below edge lookahead %v", s.name, dst.name, delay, s.outL[dst.idx]))
	}
	s.sendSeq++
	s.outbox[dst.idx] = append(s.outbox[dst.idx], mail{
		at:   p.Now() + delay,
		src:  s.idx,
		seq:  s.sendSeq,
		name: name,
		fn:   fn,
	})
}

// quiescent reports whether the shard can execute nothing further: engine
// stopped, or no queued events and no undelivered inbox mail.
func (s *Shard) quiescent() bool {
	if s.eng.Stopped() {
		return true
	}
	return s.eng.qLen() == 0 && len(s.inbox) == 0
}

// nextAt is the earliest time the shard could still execute an event — the
// lower bound other shards' horizons are derived from. ok is false when the
// shard is quiescent (treated as +infinity by the reduction: a stopped or
// drained shard can send no more mail).
func (s *Shard) nextAt() (Time, bool) {
	if s.eng.Stopped() {
		return 0, false
	}
	return s.eng.NextEventAt()
}

// deliver sorts the inbox into the global (time, sender, sender-sequence)
// order and spawns each mail closure on the shard's engine. Spawn order
// assigns engine sequence numbers, so delivery order — and therefore every
// downstream tie-break — is a pure function of the mail set, not of OS
// scheduling.
func (s *Shard) deliver() {
	if len(s.inbox) == 0 {
		return
	}
	sort.Slice(s.inbox, func(i, j int) bool {
		a, b := s.inbox[i], s.inbox[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	now := s.eng.Now()
	for _, m := range s.inbox {
		if m.at < now {
			// Cannot happen under the protocol (the horizon excludes it);
			// check anyway so a lookahead bug fails loudly, not silently.
			panic(fmt.Sprintf("sim: shard %s received mail for the past (%v < %v)", s.name, m.at, now))
		}
		s.eng.SpawnAt(m.name, m.at-now, m.fn)
	}
	s.fab.mail += int64(len(s.inbox))
	s.inbox = s.inbox[:0]
}

// Run executes the fabric to completion: windows of concurrent shard
// execution separated by global horizon reductions and mail exchanges. It
// returns the first (lowest shard index) error, or a global deadlock error
// when processes remain parked with no mail in flight anywhere.
func (f *Fabric) Run() error {
	n := len(f.shards)
	nexts := make([]Time, n)
	haveNext := make([]bool, n)
	limits := make([]Time, n)
	runnable := make([]bool, n)
	errs := make([]error, n)
	sem := make(chan struct{}, f.workers)
	done := make(chan int, n)

	for {
		// Synchronization point: deliver all in-flight mail, then take the
		// global snapshot of every shard's next event time.
		for _, s := range f.shards {
			s.deliver()
		}
		any := false
		for i, s := range f.shards {
			nexts[i], haveNext[i] = s.nextAt()
			any = any || haveNext[i]
		}
		if !any {
			return f.deadlockCheck()
		}

		// Horizon reduction: each shard may run strictly below the minimum
		// over its in-edges of the source's next event plus the edge
		// lookahead. No in-edges (or all sources quiescent) means no bound.
		launched := 0
		for i, s := range f.shards {
			runnable[i] = false
			if !haveNext[i] {
				continue
			}
			horizon, bounded := Time(0), false
			for _, e := range s.inEdges {
				if !haveNext[e.src] {
					continue // quiescent source: sends nothing, bounds nothing
				}
				h := nexts[e.src] + e.lookahead
				if !bounded || h < horizon {
					horizon, bounded = h, true
				}
			}
			if bounded {
				if nexts[i] >= horizon {
					continue // nothing due inside this shard's window
				}
				limits[i] = horizon - 1 // exclusive: mail at the horizon is safe
			} else {
				limits[i] = -1 // free-run
			}
			runnable[i] = true
			launched++
		}

		// Execute the window: each runnable shard on its own goroutine,
		// concurrency bounded by the worker semaphore. Shards only touch
		// their own engine and their own outboxes, so the window is
		// data-race-free by construction.
		f.windows++
		for i, s := range f.shards {
			if !runnable[i] {
				continue
			}
			go func(i int, s *Shard) {
				sem <- struct{}{}
				errs[i] = s.eng.RunUntil(limits[i])
				<-sem
				done <- i
			}(i, s)
		}
		for k := 0; k < launched; k++ {
			<-done
		}
		for i := 0; i < n; i++ {
			if runnable[i] && errs[i] != nil {
				return fmt.Errorf("fabric shard %s: %w", f.shards[i].name, errs[i])
			}
		}

		// Mail exchange: move every outbox into its destination's inbox.
		// Single-threaded, so append order (by source shard index) is fixed —
		// and irrelevant anyway, since deliver sorts.
		for _, s := range f.shards {
			for d := range s.outbox {
				if len(s.outbox[d]) == 0 {
					continue
				}
				f.shards[d].inbox = append(f.shards[d].inbox, s.outbox[d]...)
				s.outbox[d] = s.outbox[d][:0]
			}
		}
	}
}

// deadlockCheck runs when every shard is quiescent: success if no live
// processes remain (or their engines were stopped), a global deadlock
// otherwise.
func (f *Fabric) deadlockCheck() error {
	var stuck []string
	for _, s := range f.shards {
		if s.eng.Stopped() {
			continue
		}
		if s.eng.Living() > 0 {
			stuck = append(stuck, fmt.Sprintf("%s: %v", s.name, s.eng.deadlockError()))
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	return fmt.Errorf("sim: fabric deadlock, no mail in flight and %d shards blocked:\n  %s",
		len(stuck), strings.Join(stuck, "\n  "))
}

// FabricStats summarizes a completed run.
type FabricStats struct {
	Shards  int
	Workers int
	Windows int64 // synchronization rounds executed
	Mail    int64 // cross-shard messages delivered
}

// Stats reports protocol counters for the run so far.
func (f *Fabric) Stats() FabricStats {
	return FabricStats{
		Shards:  len(f.shards),
		Workers: f.workers,
		Windows: f.windows,
		Mail:    f.mail,
	}
}

// Partition deterministically assigns n items (nodes, cells, mesh regions)
// to groups shards: a seeded Fisher-Yates shuffle dealt round-robin, so
// every item maps to exactly one shard, shard sizes differ by at most one,
// and the mapping is a pure function of (n, groups, seed).
func Partition(n, groups int, seed uint64) []int {
	if n < 0 {
		panic("sim: Partition with negative n")
	}
	if groups < 1 {
		panic("sim: Partition with groups < 1")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	assign := make([]int, n)
	for pos, item := range order {
		assign[item] = pos % groups
	}
	return assign
}
