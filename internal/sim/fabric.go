package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Fabric coordinates a set of independently-clocked shard engines with the
// classic conservative-parallel bounded-horizon protocol: between global
// synchronization points each shard executes its own event queue up to a
// horizon no cross-shard message can penetrate, so shards run concurrently on
// OS threads while the merged execution remains deterministic.
//
// Topology is declared up front: Connect(src, dst, lookahead) states that src
// may send mail to dst, and that any mail sent while src's clock reads t
// arrives no earlier than t+lookahead. The lookahead is the physical link
// latency of the modeled system (for the mesh, software latency plus hop
// delay — see mesh.Lookahead), and it is what makes conservative execution
// possible: a shard can safely run to
//
//	horizon(X) = min over in-edges (src, L) of nextAt(src) + L
//
// because no connected shard, executing no earlier than its own next event,
// can produce mail for X before that bound. Shards with no in-edges have an
// infinite horizon and free-run to completion.
//
// Two kinds of edge exist. Connect declares a strictly-positive lookahead —
// the physical request latency. ConnectReply declares a zero-lookahead reply
// edge for RPC-style topologies (a server completing a request at time t may
// wake the client at exactly t, because the request already paid the full
// round-trip latency on the way in). Zero edges mean nextAt(src) alone is no
// longer a safe bound: a shard with no events of its own can still be woken
// by mail and reply instantly. The horizon reduction therefore relaxes a
// send-time lower bound B over the whole graph (B(i) = min(nextAt(i),
// min over in-edges B(src)+L) to fixpoint, Bellman-Ford style) and uses
// B(src)+L per in-edge as the horizon. Every cycle must contain a
// positive-lookahead edge (ConnectReply rejects zero-edge cycles), so the
// shard holding the globally minimal next event is always runnable and the
// protocol cannot stall.
//
// Windows are exclusive at the top: a shard runs events with timestamps
// strictly below its horizon, so mail timestamped exactly at the horizon is
// delivered before it could ever be due. Mail is buffered in per-sender
// outboxes during a window (no cross-thread mutation), moved to the
// destination's inbox at the synchronization point, and delivered in
// (time, sender, sender-sequence) order — a total order independent of how
// the OS interleaved the window, which is what makes results byte-identical
// at any worker count.
type Fabric struct {
	shards  []*Shard
	workers int

	windows int64
	mail    int64
}

// Shard is one independently-clocked partition of the simulation: its own
// engine, its own RNG substream, and mailboxes to the shards it is connected
// to.
type Shard struct {
	fab  *Fabric
	idx  int
	name string
	eng  *Engine
	rng  *RNG

	inEdges []inEdge
	outL    []Time   // lookahead to each destination shard
	outSet  []bool   // whether an edge to each destination exists
	outbox  [][]mail // per-destination mail buffered during the current window
	inbox   []mail
	sendSeq uint64
}

type inEdge struct {
	src       int
	lookahead Time
}

// mail is a cross-shard message delivered on the destination engine at an
// absolute simulated time: either a closure to run in a fresh process (fn),
// or a direct wake of an already-parked process (target, with an optional
// apply closure staging the result before the wake). The (at, src, seq)
// triple is its delivery sort key.
type mail struct {
	at     Time
	src    int
	seq    uint64
	name   string
	fn     func(p *Process)
	target *Process
	apply  func()
}

// NewFabric creates an empty fabric. workers bounds how many shards execute
// concurrently during a window; 0 means GOMAXPROCS. workers=1 is the serial
// oracle: the very same protocol, windows, and delivery order on one thread.
func NewFabric(workers int) *Fabric {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Fabric{workers: workers}
}

// Workers reports the fabric's concurrency bound.
func (f *Fabric) Workers() int { return f.workers }

// AddShard creates a shard with its own engine and an RNG substream derived
// from seed and the shard's index (splitmix64 streams, so substreams are
// independent and stable under shard-count changes).
func (f *Fabric) AddShard(name string, seed uint64) *Shard {
	e := NewEngine()
	e.SetExternal()
	s := &Shard{
		fab:  f,
		idx:  len(f.shards),
		name: name,
		eng:  e,
		rng:  NewRNG(seed).Split(),
	}
	f.shards = append(f.shards, s)
	return s
}

// Engine returns the shard's engine. Processes, resources, and all other sim
// primitives are created against it exactly as against a standalone engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Fabric returns the fabric the shard belongs to, so subsystems handed only
// shards (e.g. a partitioned file system) can declare their own edges.
func (s *Shard) Fabric() *Fabric { return s.fab }

// RNG returns the shard's private random stream.
func (s *Shard) RNG() *RNG { return s.rng }

// Name returns the shard name given at AddShard.
func (s *Shard) Name() string { return s.name }

// Index returns the shard's position in the fabric.
func (s *Shard) Index() int { return s.idx }

// Connect declares that src may send mail to dst with the given minimum
// latency (lookahead). The lookahead must be strictly positive — it is the
// protocol's progress guarantee. Connecting the same pair twice keeps the
// smaller lookahead.
func (f *Fabric) Connect(src, dst *Shard, lookahead Time) {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: fabric edge %s->%s lookahead %v must be positive", src.name, dst.name, lookahead))
	}
	f.addEdge(src, dst, lookahead)
}

// ConnectReply declares a zero-lookahead reply edge: src may send mail to dst
// that arrives at src's current instant. This is only sound for RPC reply
// paths — the request edge in the other direction carried the full latency —
// and only while every edge cycle retains at least one positive lookahead, so
// ConnectReply rejects a reply edge that would close a zero-lookahead cycle.
func (f *Fabric) ConnectReply(src, dst *Shard) {
	if f.zeroPath(dst, src) {
		panic(fmt.Sprintf("sim: fabric reply edge %s->%s closes a zero-lookahead cycle", src.name, dst.name))
	}
	f.addEdge(src, dst, 0)
}

// zeroPath reports whether dst is reachable from src over zero-lookahead
// edges only (including src == dst).
func (f *Fabric) zeroPath(src, dst *Shard) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(f.shards))
	stack := []int{src.idx}
	seen[src.idx] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.shards {
			for _, e := range s.inEdges {
				if e.src != cur || e.lookahead != 0 || seen[s.idx] {
					continue
				}
				if s.idx == dst.idx {
					return true
				}
				seen[s.idx] = true
				stack = append(stack, s.idx)
			}
		}
	}
	return false
}

func (f *Fabric) addEdge(src, dst *Shard, lookahead Time) {
	if src == dst {
		panic(fmt.Sprintf("sim: fabric self-edge on %s (local sends need no edge)", src.name))
	}
	for i := range dst.inEdges {
		if dst.inEdges[i].src == src.idx {
			if lookahead < dst.inEdges[i].lookahead {
				dst.inEdges[i].lookahead = lookahead
				src.outL[dst.idx] = lookahead
			}
			return
		}
	}
	dst.inEdges = append(dst.inEdges, inEdge{src: src.idx, lookahead: lookahead})
	for len(src.outL) <= dst.idx {
		src.outL = append(src.outL, 0)
		src.outSet = append(src.outSet, false)
		src.outbox = append(src.outbox, nil)
	}
	src.outL[dst.idx] = lookahead
	src.outSet[dst.idx] = true
}

// Send queues mail from the running process p (which must belong to this
// shard) to shard dst: fn will run in a fresh process on dst's engine at
// p.Now()+delay. The shards must be connected and delay must be at least the
// edge's lookahead — sending faster than the declared link latency would
// break the conservative horizon.
func (s *Shard) Send(p *Process, dst *Shard, delay Time, name string, fn func(p *Process)) {
	s.checkSend(p, dst, delay)
	s.sendSeq++
	s.outbox[dst.idx] = append(s.outbox[dst.idx], mail{
		at:   p.Now() + delay,
		src:  s.idx,
		seq:  s.sendSeq,
		name: name,
		fn:   fn,
	})
}

// SendWake queues reply mail that wakes an already-parked process on shard
// dst instead of spawning a fresh one: at delivery, apply (if non-nil) runs
// first to stage the result, then target resumes at the mail's timestamp.
// The target must be parked with no pending wake of its own — this is the
// RPC reply primitive, and the requester parks awaiting exactly one reply.
func (s *Shard) SendWake(p *Process, dst *Shard, delay Time, name string, target *Process, apply func()) {
	s.checkSend(p, dst, delay)
	if target.eng != dst.eng {
		panic(fmt.Sprintf("sim: SendWake %s->%s target belongs to another engine", s.name, dst.name))
	}
	s.sendSeq++
	s.outbox[dst.idx] = append(s.outbox[dst.idx], mail{
		at:     p.Now() + delay,
		src:    s.idx,
		seq:    s.sendSeq,
		name:   name,
		target: target,
		apply:  apply,
	})
}

func (s *Shard) checkSend(p *Process, dst *Shard, delay Time) {
	if p.eng != s.eng {
		panic(fmt.Sprintf("sim: Send on shard %s from a process of another engine", s.name))
	}
	if dst.idx >= len(s.outSet) || !s.outSet[dst.idx] {
		panic(fmt.Sprintf("sim: Send %s->%s without a Connect edge", s.name, dst.name))
	}
	if delay < s.outL[dst.idx] {
		panic(fmt.Sprintf("sim: Send %s->%s delay %v below edge lookahead %v", s.name, dst.name, delay, s.outL[dst.idx]))
	}
	if s.eng.stopOnMail {
		// Solo free-run window: the first send ends it. Clamp the run limit
		// to the current instant so the shard yields back to the fabric once
		// this instant's events finish.
		s.eng.clampLimit()
	}
}

// quiescent reports whether the shard can execute nothing further: engine
// stopped, or no queued events and no undelivered inbox mail.
func (s *Shard) quiescent() bool {
	if s.eng.Stopped() {
		return true
	}
	return s.eng.qLen() == 0 && len(s.inbox) == 0
}

// nextAt is the earliest time the shard could still execute an event — the
// lower bound other shards' horizons are derived from. ok is false when the
// shard is quiescent (treated as +infinity by the reduction: a stopped or
// drained shard can send no more mail).
func (s *Shard) nextAt() (Time, bool) {
	if s.eng.Stopped() {
		return 0, false
	}
	return s.eng.NextEventAt()
}

// deliver sorts the inbox into the global (time, sender, sender-sequence)
// order and spawns each mail closure on the shard's engine. Spawn order
// assigns engine sequence numbers, so delivery order — and therefore every
// downstream tie-break — is a pure function of the mail set, not of OS
// scheduling.
func (s *Shard) deliver() {
	if len(s.inbox) == 0 {
		return
	}
	sort.Slice(s.inbox, func(i, j int) bool {
		a, b := s.inbox[i], s.inbox[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	now := s.eng.Now()
	for _, m := range s.inbox {
		if m.at < now {
			// Cannot happen under the protocol (the horizon excludes it);
			// check anyway so a lookahead bug fails loudly, not silently.
			panic(fmt.Sprintf("sim: shard %s received mail for the past (%v < %v)", s.name, m.at, now))
		}
		if m.target != nil {
			// Reply mail: stage the result, then wake the parked requester
			// at the mail's instant. Runs at a synchronization point, so
			// the apply closure touches requester state race-free.
			if m.apply != nil {
				m.apply()
			}
			s.eng.schedule(m.target, m.at)
			continue
		}
		s.eng.SpawnAt(m.name, m.at-now, m.fn)
	}
	s.fab.mail += int64(len(s.inbox))
	s.inbox = s.inbox[:0]
}

// Run executes the fabric to completion: windows of concurrent shard
// execution separated by global horizon reductions and mail exchanges. It
// returns the first (lowest shard index) error, or a global deadlock error
// when processes remain parked with no mail in flight anywhere.
func (f *Fabric) Run() error {
	n := len(f.shards)
	nexts := make([]Time, n)
	haveNext := make([]bool, n)
	bounds := make([]Time, n) // B: lower bound on each shard's earliest future send
	haveB := make([]bool, n)  // false = unbounded (can never send again)
	limits := make([]Time, n)
	runnable := make([]bool, n)
	errs := make([]error, n)
	sem := make(chan struct{}, f.workers)
	done := make(chan int, n)

	for {
		// Synchronization point: deliver all in-flight mail, then take the
		// global snapshot of every shard's next event time.
		for _, s := range f.shards {
			s.deliver()
		}
		active, solo := 0, -1
		for i, s := range f.shards {
			nexts[i], haveNext[i] = s.nextAt()
			if haveNext[i] {
				active++
				solo = i
			}
		}
		if active == 0 {
			return f.deadlockCheck()
		}

		// Solo free-run: when exactly one shard has queued events, every
		// other shard is quiescent (inboxes were just delivered, outboxes are
		// empty) and can only act after the solo shard sends it mail. The
		// solo shard therefore needs no horizon at all — it runs until its
		// first cross-shard send (checkSend clamps the limit to that instant)
		// or until it drains. This collapses the lookahead-stepped windows a
		// lone compute phase would otherwise pay into one, and is a pure
		// function of simulation state, so the window structure — and with it
		// every delivery batch and tie-break — is identical at any worker
		// count.
		if active == 1 {
			s := f.shards[solo]
			f.windows++
			s.eng.stopOnMail = true
			err := s.eng.RunUntil(-1)
			s.eng.stopOnMail = false
			if err != nil {
				return fmt.Errorf("fabric shard %s: %w", s.name, err)
			}
			f.exchange()
			continue
		}

		// Send-bound relaxation: B(i) starts at the shard's own next event
		// time (unbounded when quiescent — a shard with nothing queued only
		// acts again after mail wakes it) and is relaxed over in-edges to
		// B(i) = min(B(i), B(src)+L) until fixpoint. The relaxed bound
		// accounts for wake-and-forward chains through quiescent shards,
		// which nextAt alone misses once zero-lookahead reply edges exist.
		// Edge weights are non-negative and every cycle has positive total
		// lookahead, so Bellman-Ford converges within n passes.
		copy(bounds, nexts)
		copy(haveB, haveNext)
		for pass := 0; pass < n; pass++ {
			changed := false
			for i, s := range f.shards {
				for _, e := range s.inEdges {
					if !haveB[e.src] {
						continue
					}
					h := bounds[e.src] + e.lookahead
					if !haveB[i] || h < bounds[i] {
						bounds[i], haveB[i] = h, true
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}

		// Horizon reduction: each shard may run strictly below the minimum
		// over its in-edges of the source's send bound plus the edge
		// lookahead. No in-edges (or all sources silenced) means no bound.
		launched := 0
		for i, s := range f.shards {
			runnable[i] = false
			if !haveNext[i] {
				continue
			}
			horizon, bounded := Time(0), false
			for _, e := range s.inEdges {
				if !haveB[e.src] {
					continue // source can never send again, bounds nothing
				}
				h := bounds[e.src] + e.lookahead
				if !bounded || h < horizon {
					horizon, bounded = h, true
				}
			}
			if bounded {
				if nexts[i] >= horizon {
					continue // nothing due inside this shard's window
				}
				limits[i] = horizon - 1 // exclusive: mail at the horizon is safe
			} else {
				limits[i] = -1 // free-run
			}
			runnable[i] = true
			launched++
		}

		// Execute the window. With one worker, run the shards inline in
		// index order — no goroutines, no semaphore — which keeps the
		// serial-oracle configuration within a few percent of the plain
		// engine. Otherwise each runnable shard gets its own goroutine,
		// concurrency bounded by the worker semaphore. Shards only touch
		// their own engine and their own outboxes, so the window is
		// data-race-free by construction.
		f.windows++
		if f.workers == 1 {
			for i, s := range f.shards {
				if runnable[i] {
					errs[i] = s.eng.RunUntil(limits[i])
				}
			}
		} else {
			for i, s := range f.shards {
				if !runnable[i] {
					continue
				}
				go func(i int, s *Shard) {
					sem <- struct{}{}
					errs[i] = s.eng.RunUntil(limits[i])
					<-sem
					done <- i
				}(i, s)
			}
			for k := 0; k < launched; k++ {
				<-done
			}
		}
		for i := 0; i < n; i++ {
			if runnable[i] && errs[i] != nil {
				return fmt.Errorf("fabric shard %s: %w", f.shards[i].name, errs[i])
			}
		}

		f.exchange()
	}
}

// exchange moves every outbox into its destination's inbox. Single-threaded,
// so append order (by source shard index) is fixed — and irrelevant anyway,
// since deliver sorts.
func (f *Fabric) exchange() {
	for _, s := range f.shards {
		for d := range s.outbox {
			if len(s.outbox[d]) == 0 {
				continue
			}
			f.shards[d].inbox = append(f.shards[d].inbox, s.outbox[d]...)
			s.outbox[d] = s.outbox[d][:0]
		}
	}
}

// deadlockCheck runs when every shard is quiescent: success if no live
// processes remain (or their engines were stopped), a global deadlock
// otherwise.
func (f *Fabric) deadlockCheck() error {
	var stuck []string
	for _, s := range f.shards {
		if s.eng.Stopped() {
			continue
		}
		if s.eng.Living() > 0 {
			stuck = append(stuck, fmt.Sprintf("%s: %v", s.name, s.eng.deadlockError()))
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	return fmt.Errorf("sim: fabric deadlock, no mail in flight and %d shards blocked:\n  %s",
		len(stuck), strings.Join(stuck, "\n  "))
}

// FabricStats summarizes a completed run.
type FabricStats struct {
	Shards  int
	Workers int
	Windows int64 // synchronization rounds executed
	Mail    int64 // cross-shard messages delivered
}

// Stats reports protocol counters for the run so far.
func (f *Fabric) Stats() FabricStats {
	return FabricStats{
		Shards:  len(f.shards),
		Workers: f.workers,
		Windows: f.windows,
		Mail:    f.mail,
	}
}

// Partition deterministically assigns n items (nodes, cells, mesh regions)
// to groups shards: a seeded Fisher-Yates shuffle dealt round-robin, so
// every item maps to exactly one shard, shard sizes differ by at most one,
// and the mapping is a pure function of (n, groups, seed).
func Partition(n, groups int, seed uint64) []int {
	if n < 0 {
		panic("sim: Partition with negative n")
	}
	if groups < 1 {
		panic("sim: Partition with groups < 1")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	assign := make([]int, n)
	for pos, item := range order {
		assign[item] = pos % groups
	}
	return assign
}
