// Package cliflags defines the PFS-configuration flag groups shared by the
// iochar and stress commands — the cache, data-integrity/reliability, and
// collective-I/O knobs — so both binaries register identical flags with
// identical help text and wire them into a pfs.Config the same way.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/burst"
	"repro/internal/cache"
	"repro/internal/collective"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Cache bundles the I/O-node block-cache flags.
type Cache struct {
	On          *bool
	MB          *float64
	Prefetch    *bool
	FlushOnFail *bool // nil unless AddFlushOnFail was called
}

// AddCache registers -cache, -cache-mb and -prefetch on fs.
func AddCache(fs *flag.FlagSet) *Cache {
	return &Cache{
		On:       fs.Bool("cache", false, "attach a block cache with pattern-driven prefetch to every I/O node"),
		MB:       fs.Float64("cache-mb", 8, "per-node cache capacity in MB (with -cache)"),
		Prefetch: fs.Bool("prefetch", true, "enable pattern-driven prefetch (with -cache)"),
	}
}

// AddFlushOnFail additionally registers -flush-on-fail (the stress command's
// outage-drain knob).
func (c *Cache) AddFlushOnFail(fs *flag.FlagSet) {
	c.FlushOnFail = fs.Bool("flush-on-fail", false, "drain dirty cache blocks synchronously when a node fails instead of losing them")
}

// Apply wires the parsed cache flags into cfg.
func (c *Cache) Apply(cfg *pfs.Config) {
	if !*c.On {
		return
	}
	ccfg := cache.DefaultConfig()
	ccfg.CapacityBytes = int64(*c.MB * float64(1<<20))
	ccfg.Prefetch = *c.Prefetch
	if c.FlushOnFail != nil {
		ccfg.FlushOnFail = *c.FlushOnFail
	}
	cfg.Cache = ccfg
}

// Reliability bundles the corruption-injection, checksum-layer, and client
// reliability flags.
type Reliability struct {
	Corrupt  *string
	Scrub    *bool
	Deadline *float64
	Retries  *int
}

// AddReliability registers -corrupt, -scrub, -deadline and -retries on fs.
func AddReliability(fs *flag.FlagSet) *Reliability {
	return &Reliability{
		Corrupt:  fs.String("corrupt", "", "inject silent data corruption: comma-separated classes (bit-rot, torn-write, misdirected-write) or 'all'; enables the checksum layer"),
		Scrub:    fs.Bool("scrub", false, "run the background scrubber on every I/O node (enables the checksum layer)"),
		Deadline: fs.Float64("deadline", 0, "per-request deadline in seconds (enables the client reliability layer)"),
		Retries:  fs.Int("retries", 0, "max client retries after a corrupt read, >= 1 (0 uses the reliability layer's default)"),
	}
}

// Apply wires the checksum layer (when corruption or scrubbing is requested)
// and the client reliability layer (when corruption, a deadline, or retries
// are requested) into cfg. window bounds the scrubber.
func (r *Reliability) Apply(cfg *pfs.Config, window sim.Time) {
	if *r.Corrupt != "" || *r.Scrub {
		icfg := integrity.DefaultConfig()
		if *r.Scrub {
			icfg.Scrub = integrity.DefaultScrubConfig()
			icfg.Scrub.Window = window
		}
		cfg.Integrity = icfg
	}
	if *r.Corrupt != "" || *r.Deadline > 0 || *r.Retries > 0 {
		rel := pfs.DefaultReliabilityConfig()
		if *r.Deadline > 0 {
			rel.Deadline = sim.FromSeconds(*r.Deadline)
		}
		if *r.Retries > 0 {
			rel.MaxRetries = *r.Retries
		}
		cfg.Reliability = rel
	}
}

// CorruptionPlan parses -corrupt into a fault plan bounded by window and
// arms the replica path in cfg (unrepairable classes need reroute-on-read so
// corrupt reads don't kill the run). ok is false when -corrupt was not given.
func (r *Reliability) CorruptionPlan(cfg *pfs.Config, window sim.Time) (cp fault.CorruptionPlan, ok bool, err error) {
	if *r.Corrupt == "" {
		return fault.CorruptionPlan{}, false, nil
	}
	cp, err = fault.ParseCorruptionClasses(*r.Corrupt, window)
	if err != nil {
		return fault.CorruptionPlan{}, false, err
	}
	if !cfg.Failover.Enabled {
		cfg.Failover = pfs.DefaultFailoverConfig()
	}
	cfg.Failover.Replicate = true
	return cp, true, nil
}

// Replication bundles the N-way replication and repair-daemon flags.
type Replication struct {
	Factor        *int
	PlacementSeed *uint64
	ReadPolicy    *string
	Repair        *bool
	RepairMBs     *float64
	RepairGiveUp  *float64
}

// AddReplication registers -rf, -placement-seed, -read-policy, -repair,
// -repair-mb-s and -repair-give-up on fs.
func AddReplication(fs *flag.FlagSet) *Replication {
	return &Replication{
		Factor:        fs.Int("rf", 0, "replication factor 1..4, zone-aware placement (0 defers to -replicate; needs failover)"),
		PlacementSeed: fs.Uint64("placement-seed", 0, "seed perturbing the replica ring's within-zone node order (0 = index order)"),
		ReadPolicy:    fs.String("read-policy", "", "replicated read policy: primary-first (default), any-replica, quorum"),
		Repair:        fs.Bool("repair", false, "run the background repair daemon restoring redundancy after outages (needs replication)"),
		RepairMBs:     fs.Float64("repair-mb-s", 32, "repair daemon bandwidth throttle in MB/s, 0 = unthrottled (with -repair)"),
		RepairGiveUp:  fs.Float64("repair-give-up", 0, "abandon a repair entry still queued after this many seconds, 0 = never (with -repair)"),
	}
}

// Apply wires the parsed replication flags into cfg.
func (r *Replication) Apply(cfg *pfs.Config) error {
	if *r.Factor < 0 || *r.Factor > pfs.MaxReplicationFactor {
		return fmt.Errorf("-rf %d: want 0 (legacy) or 1..%d", *r.Factor, pfs.MaxReplicationFactor)
	}
	switch *r.ReadPolicy {
	case "", pfs.ReadPrimaryFirst, pfs.ReadAnyReplica, pfs.ReadQuorum:
	default:
		return fmt.Errorf("-read-policy %q: want %s, %s or %s",
			*r.ReadPolicy, pfs.ReadPrimaryFirst, pfs.ReadAnyReplica, pfs.ReadQuorum)
	}
	cfg.Replication.Factor = *r.Factor
	cfg.Replication.Seed = *r.PlacementSeed
	cfg.Replication.ReadPolicy = *r.ReadPolicy
	if *r.Repair {
		if *r.RepairMBs < 0 {
			return fmt.Errorf("-repair-mb-s %g is negative", *r.RepairMBs)
		}
		if *r.RepairGiveUp < 0 {
			return fmt.Errorf("-repair-give-up %g is negative", *r.RepairGiveUp)
		}
		cfg.Replication.Repair = pfs.RepairConfig{
			Enabled:            true,
			BandwidthBytesPerS: *r.RepairMBs * float64(1<<20),
			GiveUp:             sim.FromSeconds(*r.RepairGiveUp),
		}
	}
	if *r.Factor > 1 && !cfg.Failover.Enabled {
		cfg.Failover = pfs.DefaultFailoverConfig()
	}
	return nil
}

// Burst bundles the host-side burst-log flags.
type Burst struct {
	On       *bool
	MB       *float64
	DrainMBs *float64
	Compress *float64
}

// AddBurst registers -burst, -burst-mb, -burst-drain and -compress on fs.
func AddBurst(fs *flag.FlagSet) *Burst {
	return &Burst{
		On:       fs.Bool("burst", false, "absorb checkpoint and M_LOG writes into per-compute-node burst logs, drained to the PFS asynchronously"),
		MB:       fs.Float64("burst-mb", 64, "per-node burst-log capacity in MB (with -burst)"),
		DrainMBs: fs.Float64("burst-drain", 0, "per-node drain bandwidth cap in MB/s, 0 = PFS-limited (with -burst)"),
		Compress: fs.Float64("compress", 1.8, "drain-stage compression ratio, logical/wire; 1 disables the stage (with -burst)"),
	}
}

// Config builds the burst tier configuration the parsed flags describe; the
// zero (disabled) Config when -burst was not given.
func (b *Burst) Config() (burst.Config, error) {
	if !*b.On {
		return burst.Config{}, nil
	}
	cfg := burst.DefaultConfig()
	cfg.CapacityBytes = int64(*b.MB * float64(1<<20))
	cfg.DrainBWBytesPerS = *b.DrainMBs * float64(1<<20)
	if *b.Compress <= 1 {
		cfg.Compress = burst.CompressConfig{}
	} else {
		cfg.Compress.Ratio = *b.Compress
	}
	if err := cfg.Validate(); err != nil {
		return burst.Config{}, err
	}
	return cfg, nil
}

// Collective bundles the two-phase aggregation and disk-scheduling flags.
type Collective struct {
	On          *bool
	Aggregators *int
	Sched       *string
}

// AddCollective registers -collective, -aggregators and -sched on fs.
func AddCollective(fs *flag.FlagSet) *Collective {
	return &Collective{
		On:          fs.Bool("collective", false, "aggregate each M_RECORD/M_SYNC round's requests into stripe-aligned bulk transfers (two-phase collective I/O)"),
		Aggregators: fs.Int("aggregators", 0, "aggregator nodes per collective round (0 = one per I/O node; with -collective)"),
		Sched:       fs.String("sched", "", "I/O-node disk scheduling policy: fcfs, cscan, sstf, random (empty = legacy FIFO queue)"),
	}
}

// Apply wires the parsed collective and scheduling flags into cfg.
func (c *Collective) Apply(cfg *pfs.Config) error {
	if *c.On {
		cfg.Collective = collective.Config{
			Enabled:     true,
			Aggregators: *c.Aggregators,
		}
	} else if *c.Aggregators != 0 {
		return fmt.Errorf("-aggregators needs -collective")
	}
	if *c.Sched != "" {
		cfg.Sched = ionode.SchedConfig{Policy: *c.Sched, Window: ionode.DefaultWindow}
		if err := cfg.Sched.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Shards bundles the sharded-engine flags every binary that can run on the
// conservative fabric shares. Results are byte-identical at any -shards
// setting — the flag only bounds how many shards execute concurrently.
type Shards struct {
	N        *int
	IOShards *int // nil unless AddIOShards was called
}

// AddShards registers -shards on fs.
func AddShards(fs *flag.FlagSet) *Shards {
	return &Shards{
		N: fs.Int("shards", 0, "fabric shards executing concurrently: 0 = GOMAXPROCS, 1 = the serial oracle (results identical at any setting)"),
	}
}

// AddIOShards additionally registers -ioshards, the intra-machine partition
// degree: a single-machine run splits its I/O nodes round-robin across this
// many fabric shards, with the compute partition on a frontend shard and all
// client↔I/O traffic crossing as lookahead-bounded mail. For a fixed
// -ioshards value, results are byte-identical at every -shards bound.
func (s *Shards) AddIOShards(fs *flag.FlagSet) {
	s.IOShards = fs.Int("ioshards", 0, "split the machine's I/O nodes across this many fabric shards (0 = single-engine run; results identical at any -shards for a fixed -ioshards)")
}

// Count returns the raw flag value (0 = auto), the form core.FleetOptions
// takes.
func (s *Shards) Count() int { return *s.N }

// IOShardCount returns the -ioshards value; 0 when the flag was not
// registered or not set.
func (s *Shards) IOShardCount() int {
	if s.IOShards == nil {
		return 0
	}
	return *s.IOShards
}

// Resolve returns the effective worker count: GOMAXPROCS when the flag is 0
// or negative.
func (s *Shards) Resolve() int {
	if *s.N < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return *s.N
}

// Scenario bundles the declarative scenario-file flag: both commands load
// scenario files through internal/scenario the same way, and the stress
// command's legacy -config chaos files ride the same loader.
type Scenario struct {
	File *string
}

// AddScenario registers a scenario-file flag under the given name (iochar
// uses -scenario; a file there overrides the app/feature flags).
func AddScenario(fs *flag.FlagSet, name string) *Scenario {
	return &Scenario{
		File: fs.String(name, "", "declarative scenario file (YAML/JSON; overrides app, feature and chaos flags)"),
	}
}

// Load parses the scenario file. ok is false when the flag was not given.
func (s *Scenario) Load() (sc *scenario.Scenario, ok bool, err error) {
	if *s.File == "" {
		return nil, false, nil
	}
	sc, err = scenario.Load(*s.File)
	if err != nil {
		return nil, false, err
	}
	return sc, true, nil
}

// LoadChaosPlan loads a legacy chaos-only file (the stress command's
// deprecated -config format — the scenario DSL's chaos section at top level)
// and converts it to a fault plan.
func LoadChaosPlan(path string) (fault.Plan, error) {
	c, err := scenario.LoadChaos(path)
	if err != nil {
		return fault.Plan{}, err
	}
	return c.Plan(nil)
}
