package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

func loadFull(t *testing.T) *Scenario {
	t.Helper()
	s, err := Load(filepath.Join("testdata", "full.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFleetGenDeterminism(t *testing.T) {
	s := loadFull(t)
	_, f1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("same seed produced different fleets:\n%+v\n%+v", f1, f2)
	}

	// A different seed must reshuffle the layout (8 nodes across 2 templates:
	// a collision is astronomically unlikely for these two specific seeds).
	s2 := loadFull(t)
	s2.Seed = 43
	_, f3, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(f1.Assignment, f3.Assignment) && reflect.DeepEqual(f1.Startup, f3.Startup) {
		t.Fatalf("seed change did not alter the fleet: %v", f1.Assignment)
	}
}

func TestFleetExpansionShape(t *testing.T) {
	s := loadFull(t)
	_, f, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.ComputeNodes != 32 || f.IONodes != 8 {
		t.Fatalf("shape: %d/%d", f.ComputeNodes, f.IONodes)
	}
	counts := map[string]int{}
	for _, name := range f.Assignment {
		counts[name]++
	}
	// fast pins 2 by count; slow (the only weighted template) absorbs the rest.
	if counts["fast"] != 2 || counts["slow"] != 6 {
		t.Fatalf("assignment counts: %v", counts)
	}
	for i, n := range f.Nodes {
		switch f.Assignment[i] {
		case "fast":
			if n.Disk == nil || n.Disk.BWBytesPerS != 9e6 || n.CacheBytes != 2<<20 || n.Zone != 0 {
				t.Fatalf("fast node %d: %+v", i, n)
			}
		case "slow":
			if n.Disk == nil || n.Disk.BWBytesPerS != 2e6 || n.BurstBytes != 4<<20 || n.Zone != 1 {
				t.Fatalf("slow node %d: %+v", i, n)
			}
		}
	}
	if len(f.BurstPerNode) != 32 {
		t.Fatalf("burst per node: %d entries", len(f.BurstPerNode))
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		name    string
		ts      []Template
		ioNodes int
		want    []int
		wantErr string
	}{
		{"weights only", []Template{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}, 8, []int{6, 2}, ""},
		{"default weight", []Template{{Name: "a"}, {Name: "b"}}, 5, []int{3, 2}, ""},
		{"count plus weight", []Template{{Name: "a", Count: 3}, {Name: "b"}}, 8, []int{3, 5}, ""},
		{"counts exact", []Template{{Name: "a", Count: 2}, {Name: "b", Count: 6}}, 8, []int{2, 6}, ""},
		{"counts overflow", []Template{{Name: "a", Count: 9}}, 8, nil, "pin 9 nodes"},
		{"leftover unabsorbed", []Template{{Name: "a", Count: 3}}, 8, nil, "absorb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := apportion(tc.ts, tc.ioNodes)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %v want %v", got, tc.want)
			}
		})
	}
}

func TestStartupPatterns(t *testing.T) {
	const n = 8
	linear := startupEvents(&Startup{Pattern: "linear", OverS: 7}, n, 1)
	// Node 0 comes up at t=0 (no event); all others are held down.
	if len(linear) != n-1 {
		t.Fatalf("linear: %d events, want %d", len(linear), n-1)
	}
	for i, e := range linear {
		if e.Kind != fault.IONodeOutage || e.At != 0 || e.Node != i+1 {
			t.Fatalf("linear event %d: %+v", i, e)
		}
		if i > 0 && linear[i].Duration <= linear[i-1].Duration {
			t.Fatalf("linear durations not increasing: %v then %v",
				linear[i-1].Duration, linear[i].Duration)
		}
	}
	last := linear[len(linear)-1].Duration.Seconds()
	if last < 6.99 || last > 7.01 {
		t.Fatalf("linear last node online at %gs, want ~7", last)
	}

	exp := startupEvents(&Startup{Pattern: "exponential", OverS: 7}, n, 1)
	// Exponential front-loads: the median node comes up earlier than linear's.
	if exp[3].Duration >= linear[3].Duration {
		t.Fatalf("exponential median %v not earlier than linear %v",
			exp[3].Duration, linear[3].Duration)
	}

	wave := startupEvents(&Startup{Pattern: "wave", OverS: 6, Waves: 3}, 9, 1)
	times := map[float64]int{}
	for _, e := range wave {
		times[e.Duration.Seconds()]++
	}
	// 9 nodes in 3 waves at t=0/3/6: waves 2 and 3 are held down, 3 nodes each.
	if len(wave) != 6 || times[3] != 3 || times[6] != 3 {
		t.Fatalf("wave batches: %v", times)
	}

	if ev := startupEvents(&Startup{Pattern: "instant"}, n, 1); ev != nil {
		t.Fatalf("instant produced events: %v", ev)
	}
	if ev := startupEvents(nil, n, 1); ev != nil {
		t.Fatalf("nil startup produced events: %v", ev)
	}

	// Jitter only ever delays, and is deterministic per seed.
	j1 := startupEvents(&Startup{Pattern: "linear", OverS: 7, JitterFrac: 0.2}, n, 1)
	j2 := startupEvents(&Startup{Pattern: "linear", OverS: 7, JitterFrac: 0.2}, n, 1)
	if !reflect.DeepEqual(j1, j2) {
		t.Fatal("jitter is not deterministic for a fixed seed")
	}
	for i, e := range j1 {
		base := linear[i].Duration
		if e.Duration < base || e.Duration.Seconds() > base.Seconds()+0.2*7 {
			t.Fatalf("jittered node %d at %v outside [%v, +20%%]", e.Node, e.Duration, base)
		}
	}
}

func TestZoneOutageNeedsMembers(t *testing.T) {
	s, err := Parse([]byte(`
workload:
  app: escat
chaos:
  zone_outages:
    - zone: 3
      at_s: 1
      duration_s: 0.5
`), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Build(); err == nil || !strings.Contains(err.Error(), "zone 3 has no member") {
		t.Fatalf("want zone-membership error, got %v", err)
	}
}

func TestZoneOutageExpansion(t *testing.T) {
	s := loadFull(t)
	rs, f, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, n := range f.Nodes {
		if n.Zone == 1 {
			members++
		}
	}
	// One hold-down event per zone-1 node, plus the explicit disk failure and
	// the startup hold-downs.
	zoneEvents := 0
	for _, e := range rs.Study.Faults.Events {
		if e.Kind == fault.IONodeOutage && e.At.Seconds() >= 4 {
			zoneEvents++
		}
	}
	if zoneEvents != members {
		t.Fatalf("zone outage expanded to %d events for %d members", zoneEvents, members)
	}
}
