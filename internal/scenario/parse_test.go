package scenario

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestParseFullGolden(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "full.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "full-coverage" || s.Seed != 42 {
		t.Fatalf("identity: name=%q seed=%d", s.Name, s.Seed)
	}
	if s.Workload.App != "escat" || s.Workload.Scale != "small" || s.Workload.WindowS != 5 {
		t.Fatalf("workload: %+v", s.Workload)
	}
	fg := s.FleetGen
	if fg == nil || fg.ComputeNodes != 32 || fg.IONodes != 8 || fg.StripeKB != 64 {
		t.Fatalf("fleet_gen: %+v", fg)
	}
	if len(fg.Templates) != 2 {
		t.Fatalf("templates: %+v", fg.Templates)
	}
	fast := fg.Templates[0]
	if fast.Name != "fast" || fast.Count != 2 || fast.DiskMBs != 9 ||
		fast.PositionMs != 15 || fast.DiskStreams != 4 || fast.CacheMB != 2 {
		t.Fatalf("fast template: %+v", fast)
	}
	if slow := fg.Templates[1]; slow.BurstMB != 4 || slow.Zone != 1 {
		t.Fatalf("slow template: %+v", slow)
	}
	if st := fg.Startup; st == nil || st.Pattern != "wave" || st.OverS != 1.5 ||
		st.Waves != 2 || st.JitterFrac != 0.1 {
		t.Fatalf("startup: %+v", fg.Startup)
	}
	f := s.Features
	if f.Cache == nil || !f.Cache.Enabled || f.Cache.MB != 1 ||
		f.Cache.Prefetch == nil || *f.Cache.Prefetch || !f.Cache.FlushOnFail {
		t.Fatalf("cache feature: %+v", f.Cache)
	}
	if f.Collective == nil || f.Collective.Aggregators != 4 || f.Sched != "cscan" {
		t.Fatalf("collective/sched: %+v %q", f.Collective, f.Sched)
	}
	if f.Burst == nil || f.Burst.MB != 8 || f.Burst.Compress != 1.8 {
		t.Fatalf("burst feature: %+v", f.Burst)
	}
	if f.Integrity == nil || !f.Integrity.Scrub || f.Reliability == nil ||
		f.Reliability.DeadlineS != 0.5 || f.Failover == nil || !f.Failover.Replicate {
		t.Fatalf("integrity/reliability/failover: %+v %+v %+v",
			f.Integrity, f.Reliability, f.Failover)
	}
	c := s.Chaos
	if len(c.Events) != 1 || len(c.Exps) != 1 || len(c.Cascades) != 1 ||
		len(c.ZoneOutages) != 1 || c.Corrupt == nil {
		t.Fatalf("chaos: %+v", c)
	}
	if int(c.Exps[0].Node) != fault.AnyNode {
		t.Fatalf("exp node: want AnyNode, got %d", c.Exps[0].Node)
	}
	if c.ZoneOutages[0].Zone != 1 || c.ZoneOutages[0].SpacingS != 0.1 {
		t.Fatalf("zone outage: %+v", c.ZoneOutages[0])
	}
	if s.Run.CkptInterval == nil || *s.Run.CkptInterval != 2 ||
		s.Run.RestartCostS == nil || *s.Run.RestartCostS != 1.5 {
		t.Fatalf("run: %+v", s.Run)
	}
	a := s.Assertions
	if a == nil || a.Expected != "degraded" || a.MaxMakespanS != 600 ||
		a.MaxLostBytes == nil || *a.MaxLostBytes != 1<<20 ||
		a.MaxFailedAttempts == nil || *a.MaxFailedAttempts != 7 {
		t.Fatalf("assertions: %+v", a)
	}
}

func TestParseMinimalDefaultsNameFromFilename(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "minimal.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "minimal" {
		t.Fatalf("name: want %q (from filename), got %q", "minimal", s.Name)
	}
	if s.FleetGen != nil || s.Assertions != nil || !s.Chaos.Empty() {
		t.Fatalf("minimal scenario grew sections: %+v", s)
	}
}

func TestParseJSONDetection(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "json-shape" || s.Workload.App != "render" {
		t.Fatalf("json scenario: %+v", s)
	}
	if int(s.Chaos.Events[0].Node) != fault.AnyNode {
		t.Fatalf("node \"any\": got %d", s.Chaos.Events[0].Node)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "empty scenario"},
		{"unknown field", "workload:\n  app: escat\nbogus: 1\n", "unknown field"},
		{"unknown nested field", "workload:\n  app: escat\n  turbo: true\n", "unknown field"},
		{"bad app", "workload:\n  app: doom\n", "workload.app"},
		{"bad policy", "workload:\n  app: escat\n  policy: magic\n", "workload.policy"},
		{"bad expected", "workload:\n  app: escat\nassertions:\n  expected: maybe\n", "assertions.expected"},
		{"hit ratio without cache", "workload:\n  app: escat\nassertions:\n  min_cache_hit_ratio: 0.5\n", "features.cache"},
		{"cache_mb without cache", "workload:\n  app: escat\nfleet_gen:\n  templates:\n    - name: t\n      cache_mb: 4\n", "features.cache"},
		{"counts exceed fleet", "workload:\n  app: escat\nfleet_gen:\n  io_nodes: 4\n  templates:\n    - name: t\n      count: 5\n", "pin 5 nodes"},
		{"bad chaos kind", "workload:\n  app: escat\nchaos:\n  events:\n    - kind: meteor\n      at_s: 1\n", "chaos.events[0]"},
		{"exp bad window", "workload:\n  app: escat\nchaos:\n  exps:\n    - kind: ionode-outage\n      mean_between_s: 5\n      start_s: 9\n      end_s: 3\n", "end_s"},
		{"waves without wave", "workload:\n  app: escat\nfleet_gen:\n  startup:\n    pattern: linear\n    waves: 3\n", "pattern: wave"},
		{"burst with policy", "workload:\n  app: escat\n  policy: ppfs\nfeatures:\n  burst:\n    enabled: true\n", "mutually exclusive"},
		{"render with ckpt", "workload:\n  app: render\nrun:\n  ckpt_interval: 2\n", "render"},
		{"negative cells", "workload:\n  app: escat\nfleet_gen:\n  cells: -2\n", "fleet_gen.cells"},
		{"stagger without cells", "workload:\n  app: escat\nfleet_gen:\n  stagger_s: 0.5\n", "cells > 1"},
		{"fleet with ckpt", "workload:\n  app: escat\nfleet_gen:\n  cells: 4\nrun:\n  ckpt_interval: 2\n", "single attempt"},
		{"fleet with attempts", "workload:\n  app: escat\nfleet_gen:\n  cells: 4\nrun:\n  max_attempts: 3\n", "single attempt"},
		{"bad node ref", "workload:\n  app: escat\nchaos:\n  events:\n    - kind: disk-failure\n      at_s: 1\n      node: some\n", "node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src), "")
			if err == nil {
				t.Fatalf("Parse(%q): want error, got none", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestLegacyChaosLoad(t *testing.T) {
	c, err := LoadChaos(filepath.Join("testdata", "chaos_legacy.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 1 || len(c.Cascades) != 1 {
		t.Fatalf("legacy chaos: %+v", c)
	}
	plan, err := c.Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 1 || len(plan.Cascades) != 1 {
		t.Fatalf("plan: %+v", plan)
	}
	if plan.Cascades[0].Nodes != 16 {
		t.Fatalf("cascade nodes: %d", plan.Cascades[0].Nodes)
	}
}

func TestLegacyChaosRejectsScenarioSections(t *testing.T) {
	_, err := ParseChaos([]byte(`{"workload": {"app": "escat"}}`), "")
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("want unknown-field error for scenario-shaped chaos file, got %v", err)
	}
}
