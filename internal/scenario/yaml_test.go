package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func mustYAML(t *testing.T, src string) any {
	t.Helper()
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML(%q): %v", src, err)
	}
	return v
}

func TestYAMLScalars(t *testing.T) {
	got := mustYAML(t, `
a: 1
b: 2.5
c: true
d: null
e: hello world
f: "quoted: string"
g: 'single # quoted'
h: [1, 2, 3]
`)
	want := map[string]any{
		"a": float64(1), "b": 2.5, "c": true, "d": nil,
		"e": "hello world", "f": "quoted: string", "g": "single # quoted",
		"h": []any{float64(1), float64(2), float64(3)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLNesting(t *testing.T) {
	got := mustYAML(t, `
workload:
  app: escat
  scale: small
chaos:
  events:
    - kind: disk-failure
      at_s: 2
    - kind: latency-storm
      at_s: 3
      node: any
`)
	want := map[string]any{
		"workload": map[string]any{"app": "escat", "scale": "small"},
		"chaos": map[string]any{
			"events": []any{
				map[string]any{"kind": "disk-failure", "at_s": float64(2)},
				map[string]any{"kind": "latency-storm", "at_s": float64(3), "node": "any"},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLComments(t *testing.T) {
	got := mustYAML(t, `
# leading comment
a: 1  # trailing comment
b: "kept # inside quotes"
`)
	want := map[string]any{"a": float64(1), "b": "kept # inside quotes"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLSequenceOfScalars(t *testing.T) {
	got := mustYAML(t, `
items:
  - one
  - two
`)
	want := map[string]any{"items": []any{"one", "two"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate"},
		{"anchor", "a: &x 1\n", ""},
		{"flow map", "a: {b: 1}\n", ""},
		{"block scalar", "a: |\n  text\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseYAML(%q): want error, got none", tc.src)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
