package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ParseChaos decodes a standalone chaos file — the legacy cmd/stress -config
// format, which is exactly the scenario DSL's chaos section at top level
// (JSON or the YAML subset).
func ParseChaos(data []byte, path string) (Chaos, error) {
	var c Chaos
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return c, loc(path, fmt.Errorf("empty chaos file"))
	}
	jsonBytes := trimmed
	if trimmed[0] != '{' {
		tree, err := parseYAML(data)
		if err != nil {
			return c, loc(path, err)
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return c, loc(path, err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, loc(path, fmt.Errorf("chaos schema: %v", friendlyDecodeError(err)))
	}
	if err := c.validate(); err != nil {
		return c, loc(path, err)
	}
	return c, nil
}

// LoadChaos reads and parses a standalone chaos file.
func LoadChaos(path string) (Chaos, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Chaos{}, err
	}
	return ParseChaos(data, path)
}
