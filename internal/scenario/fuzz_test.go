package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseScenario hammers the YAML/JSON front door: whatever the input,
// Parse must return cleanly or error — never panic — and anything it accepts
// must satisfy its own Validate.
func FuzzParseScenario(f *testing.F) {
	// Seed with the checked-in corpus plus targeted edge shapes.
	for _, name := range []string{"full.yaml", "minimal.yaml", "scenario.json", "chaos_legacy.json"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("workload:\n  app: escat\nchaos:\n  events:\n    - kind: disk-failure\n      at_s: 1\n      node: any\n"))
	f.Add([]byte(`{"workload":{"app":"escat"},"seed":18446744073709551615}`))
	f.Add([]byte("a: [1, \"two\", 3.5]\n"))
	f.Add([]byte("\t"))
	f.Add([]byte("- 1\n- 2\n"))
	f.Add([]byte("key: \"unterminated\n"))
	f.Add([]byte("a:\n  - b: 1\n    c: 2\n"))
	f.Add([]byte("{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data, "fuzz.yaml")
		if err != nil {
			return
		}
		// Accepted scenarios must be internally consistent and re-validate.
		if s.Name == "" {
			t.Fatal("accepted scenario with empty name")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails its own Validate: %v", err)
		}
	})
}
